// E16 — Composable table scans: multi-column filter → gather → aggregate.
//
// Claim (ROADMAP "Snapshot-consistent multi-column scans"; cf. the late-
// materialization argument in "Revisiting Data Compression in Column-
// Stores"): a scan that intersects zone-map pruning across filter columns,
// evaluates predicates on the compressed form, and only then gathers the
// payload columns at the surviving positions beats decompress-everything-
// then-scan — and the win grows as selectivity drops, because pruning and
// late materialization skip exactly the work the baseline always pays.
//
// Tables: (a) selectivity sweep — exec::Scan (filter date ∧ amount, gather
// qty, fold SUM) vs the decompress-then-scan baseline; (b) thread sweep at
// fixed selectivity over the chunk-parallel scan. Timing series: the scan,
// the baseline, and a snapshot+scan round trip on a live (unflushed) table.
// Every timed configuration is first verified against the plain oracle.

#include <algorithm>
#include <chrono>
#include <string>

#include "bench_common.h"
#include "exec/scan.h"
#include "gen/generators.h"
#include "store/table.h"
#include "util/thread_pool.h"

namespace {

using namespace recomp;
using bench::ValueOrDie;
using exec::AggregateOp;
using exec::RangePredicate;
using exec::ScanSpec;

constexpr uint64_t kRows = 1u << 22;  // 4Mi rows x 3 uint32 columns.
constexpr uint64_t kChunkRows = 64 * 1024;

struct Workload {
  Column<uint32_t> date, amount, qty;
};

const Workload& SharedWorkload() {
  static const Workload* w = [] {
    auto* out = new Workload();
    out->date = gen::SortedRuns(kRows, 70.0, 2, 161);   // Prunable.
    out->amount = gen::Uniform(kRows, 1u << 20, 162);   // Noise.
    out->qty = gen::Uniform(kRows, 50, 163);            // Payload.
    return out;
  }();
  return *w;
}

/// Builds and flushes the three-column table once, against its own
/// static pool (the table stores the ExecContext for later seal jobs, so
/// the pool must outlive it — a caller's local pool would dangle).
store::Table& SharedTable() {
  static store::Table* table = [] {
    static ThreadPool* seal_pool = new ThreadPool(4);
    const Workload& w = SharedWorkload();
    auto t = store::Table::Create(
        {
            {"date", TypeId::kUInt32, {kChunkRows}, ""},
            {"amount", TypeId::kUInt32, {kChunkRows}, ""},
            {"qty", TypeId::kUInt32, {kChunkRows}, ""},
        },
        ExecContext{seal_pool, 1});
    bench::CheckOk(t.status(), "create");
    bench::CheckOk(t->AppendBatch({AnyColumn(w.date), AnyColumn(w.amount),
                                   AnyColumn(w.qty)}),
                   "append");
    bench::CheckOk(t->Flush(), "flush");
    return new store::Table(std::move(*t));
  }();
  return *table;
}

/// A date predicate covering roughly `fraction` of the rows (the dates are
/// sorted, so a prefix of the value range is a prefix of the rows).
RangePredicate DatePredicate(double fraction) {
  const Workload& w = SharedWorkload();
  const uint64_t hi_row =
      std::min<uint64_t>(kRows - 1, static_cast<uint64_t>(fraction * kRows));
  return {w.date.front(), w.date[hi_row]};
}

ScanSpec QuerySpec(const RangePredicate& date_pred) {
  ScanSpec spec;
  spec.Filter("date", date_pred)
      .Filter("amount", RangePredicate{0, (1u << 19) + (1u << 18)})  // ~75%.
      .Project({"qty"})
      .Aggregate("qty", AggregateOp::kSum);
  return spec;
}

struct OracleResult {
  uint64_t matches = 0;
  uint64_t qty_sum = 0;
};

/// The decompress-everything baseline: materialize all three columns from
/// the snapshot, then filter + gather + fold plain.
OracleResult DecompressThenScan(const store::TableSnapshot& snap,
                                const RangePredicate& date_pred,
                                const ExecContext& ctx) {
  const RangePredicate amount_pred{0, (1u << 19) + (1u << 18)};
  auto date = ValueOrDie(
      DecompressChunked(snap.column(0).chunked(), ctx), "decompress date");
  auto amount = ValueOrDie(
      DecompressChunked(snap.column(1).chunked(), ctx), "decompress amount");
  auto qty = ValueOrDie(
      DecompressChunked(snap.column(2).chunked(), ctx), "decompress qty");
  const Column<uint32_t>& d = date.As<uint32_t>();
  const Column<uint32_t>& a = amount.As<uint32_t>();
  const Column<uint32_t>& q = qty.As<uint32_t>();
  OracleResult out;
  for (uint64_t i = 0; i < d.size(); ++i) {
    if (d[i] >= date_pred.lo && d[i] <= date_pred.hi && a[i] >= amount_pred.lo &&
        a[i] <= amount_pred.hi) {
      ++out.matches;
      out.qty_sum += q[i];
    }
  }
  return out;
}

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Runs the scan, checks it against the oracle, returns best-of-3 seconds.
double TimedScan(const store::TableSnapshot& snap, const ScanSpec& spec,
                 const ExecContext& ctx, const OracleResult& oracle) {
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    auto start = std::chrono::steady_clock::now();
    auto result = ValueOrDie(exec::Scan(snap, spec, ctx), "scan");
    best = std::min(best, SecondsSince(start));
    if (result.rows_matched != oracle.matches ||
        result.aggregates[0].value() != oracle.qty_sum) {
      bench::CheckOk(Status::Corruption("scan disagrees with oracle"),
                     "verify");
    }
  }
  return best;
}

void PrintTables() {
  ThreadPool pool(4);
  const ExecContext ctx{&pool, 1};
  store::Table& table = SharedTable();
  auto snap = ValueOrDie(table.Snapshot(), "snapshot");

  bench::Section(
      "E16: composable table scan (4Mi rows x 3 cols, 64Ki chunks, 4 "
      "threads): filter date AND amount, gather qty, SUM(qty)");
  std::printf("\n%-12s %10s %10s %14s %10s %12s\n", "selectivity", "matches",
              "scan ms", "baseline ms", "speedup", "date pruned");
  for (const double fraction : {0.001, 0.01, 0.1, 0.5, 1.0}) {
    const RangePredicate date_pred = DatePredicate(fraction);
    const ScanSpec spec = QuerySpec(date_pred);
    const OracleResult oracle = DecompressThenScan(snap, date_pred, ctx);

    const double scan_s = TimedScan(snap, spec, ctx, oracle);
    double base_s = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      auto start = std::chrono::steady_clock::now();
      const OracleResult check = DecompressThenScan(snap, date_pred, ctx);
      base_s = std::min(base_s, SecondsSince(start));
      if (check.matches != oracle.matches) {
        bench::CheckOk(Status::Corruption("baseline not deterministic"),
                       "verify");
      }
    }
    auto result = ValueOrDie(exec::Scan(snap, spec, ctx), "scan");
    std::printf("%-12.3f %10llu %10.2f %14.2f %9.1fx %12llu\n", fraction,
                static_cast<unsigned long long>(oracle.matches),
                scan_s * 1e3, base_s * 1e3, base_s / scan_s,
                static_cast<unsigned long long>(
                    result.filters[0].stats.chunks_pruned));
  }
  std::printf(
      "\nExpected shape: at low selectivity the date filter's zone maps "
      "prune most chunks before any payload is touched and the gather "
      "materializes only the survivors, so the scan wins big; as "
      "selectivity approaches 100%% the per-position gather loses to bulk "
      "decompression — the classic late-vs-early materialization "
      "crossover.\n");

  bench::Section("E16: thread sweep (selectivity 10%)");
  const RangePredicate date_pred = DatePredicate(0.1);
  const ScanSpec spec = QuerySpec(date_pred);
  const OracleResult oracle = DecompressThenScan(snap, date_pred, ctx);
  std::printf("\n%-10s %12s %10s\n", "threads", "scan ms", "speedup");
  double seq_s = 0;
  for (const uint64_t threads : {0ull, 1ull, 2ull, 4ull, 8ull}) {
    ThreadPool sweep_pool(threads);
    const ExecContext sweep_ctx{threads == 0 ? nullptr : &sweep_pool, 1};
    const double s = TimedScan(snap, spec, sweep_ctx, oracle);
    if (threads == 0) seq_s = s;
    std::printf("%-10llu %12.2f %9.1fx\n",
                static_cast<unsigned long long>(threads), s * 1e3, seq_s / s);
  }
}

void BM_TableScan(benchmark::State& state) {
  const uint64_t threads = static_cast<uint64_t>(state.range(0));
  ThreadPool pool(threads);
  const ExecContext ctx{threads == 0 ? nullptr : &pool, 1};
  auto snap = ValueOrDie(SharedTable().Snapshot(), "snapshot");
  const RangePredicate date_pred = DatePredicate(0.1);
  const ScanSpec spec = QuerySpec(date_pred);
  for (auto _ : state) {
    auto result = ValueOrDie(exec::Scan(snap, spec, ctx), "scan");
    benchmark::DoNotOptimize(result.rows_matched);
  }
  state.SetLabel(threads == 0 ? "sequential"
                              : std::to_string(threads) + " threads");
  bench::SetThroughput(state, kRows * 3 * sizeof(uint32_t));
}
BENCHMARK(BM_TableScan)->Arg(0)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_DecompressThenScan(benchmark::State& state) {
  ThreadPool pool(4);
  const ExecContext ctx{&pool, 1};
  auto snap = ValueOrDie(SharedTable().Snapshot(), "snapshot");
  const RangePredicate date_pred = DatePredicate(0.1);
  for (auto _ : state) {
    const OracleResult result = DecompressThenScan(snap, date_pred, ctx);
    benchmark::DoNotOptimize(result.qty_sum);
  }
  bench::SetThroughput(state, kRows * 3 * sizeof(uint32_t));
}
BENCHMARK(BM_DecompressThenScan)->Unit(benchmark::kMillisecond);

void BM_LiveSnapshotScan(benchmark::State& state) {
  // Snapshot + scan on a live, never-flushed table: tails served as
  // stored-plain ID chunks through the kPlainScan fast path.
  ThreadPool pool(4);
  const ExecContext ctx{&pool, 1};
  const Workload& w = SharedWorkload();
  auto table = ValueOrDie(
      store::Table::Create(
          {
              {"date", TypeId::kUInt32, {kChunkRows}, ""},
              {"amount", TypeId::kUInt32, {kChunkRows}, ""},
              {"qty", TypeId::kUInt32, {kChunkRows}, ""},
          },
          ctx),
      "create");
  const uint64_t keep = kRows / 4;
  Column<uint32_t> date(w.date.begin(), w.date.begin() + keep);
  Column<uint32_t> amount(w.amount.begin(), w.amount.begin() + keep);
  Column<uint32_t> qty(w.qty.begin(), w.qty.begin() + keep);
  bench::CheckOk(table.AppendBatch({AnyColumn(date), AnyColumn(amount),
                                    AnyColumn(qty)}),
                 "append");
  const ScanSpec spec = QuerySpec(DatePredicate(0.1));
  for (auto _ : state) {
    auto snap = ValueOrDie(table.Snapshot(), "snapshot");
    auto result = ValueOrDie(exec::Scan(snap, spec, ctx), "scan");
    benchmark::DoNotOptimize(result.rows_matched);
  }
  bench::SetThroughput(state, keep * 3 * sizeof(uint32_t));
}
BENCHMARK(BM_LiveSnapshotScan)->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
