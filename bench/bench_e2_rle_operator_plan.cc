// E2 — RLE decompression as a columnar-operator plan (paper Algorithm 1).
//
// Claim (§II-A, Lessons 1): RLE decompression is expressible with the same
// columnar operators that appear in query plans. This bench prints the plan
// our builder derives (node-for-node the paper's listing) and prices the
// operator formulation against progressively fused executions:
//   naive plan -> optimizer-fused plan -> per-scheme kernels -> single-pass.

#include "bench_common.h"
#include "core/catalog.h"
#include "core/fused.h"
#include "core/plan_builder.h"
#include "core/plan_executor.h"
#include "core/plan_optimizer.h"
#include "gen/generators.h"

namespace {

using namespace recomp;
using bench::MustCompress;
using bench::ValueOrDie;

constexpr uint64_t kRows = 1u << 22;
constexpr double kAvgRunLength = 32.0;

CompressedColumn MakeInput() {
  Column<uint32_t> col = gen::SortedRuns(kRows, kAvgRunLength, 3, 11);
  return MustCompress(AnyColumn(col), MakeRle());
}

void PrintTables() {
  bench::Section("E2: the RLE decompression plan (paper Algorithm 1)");
  CompressedColumn compressed = MakeInput();
  Plan plan = ValueOrDie(BuildDecompressionPlan(compressed), "plan");
  std::printf("%s", plan.ToString().c_str());
  std::printf("operator count: %llu (Algorithm 1 lists 7)\n",
              static_cast<unsigned long long>(plan.OperatorCount()));

  Plan optimized = ValueOrDie(OptimizePlan(plan), "optimize");
  bench::Section("E2: after classic columnar fusion rewrites");
  std::printf("%s", optimized.ToString().c_str());

  // All four strategies must agree.
  auto a = ValueOrDie(ExecutePlan(plan, compressed), "naive plan");
  auto b = ValueOrDie(ExecutePlan(optimized, compressed), "optimized plan");
  auto c = ValueOrDie(Decompress(compressed), "kernels");
  auto d = ValueOrDie(FusedDecompress(compressed), "fused");
  if (!(a == b && b == c && c == d)) {
    std::fprintf(stderr, "FATAL: strategies disagree\n");
    std::exit(1);
  }
  std::printf("\nall four strategies produce identical columns: OK\n");
  std::printf(
      "Expected shape: fused fastest; the operator plan within a small "
      "factor (it materializes intermediates), shrinking after fusion.\n");
}

enum Strategy { kNaivePlan, kOptimizedPlan, kKernels, kSinglePass };

void BM_RleDecompress(benchmark::State& state) {
  CompressedColumn compressed = MakeInput();
  Plan plan = ValueOrDie(BuildDecompressionPlan(compressed), "plan");
  Plan optimized = ValueOrDie(OptimizePlan(plan), "optimize");
  const char* labels[] = {"operator-plan/naive", "operator-plan/fused-ops",
                          "per-scheme-kernels", "single-pass-fused"};
  for (auto _ : state) {
    Result<AnyColumn> out = [&]() -> Result<AnyColumn> {
      switch (state.range(0)) {
        case kNaivePlan:
          return ExecutePlan(plan, compressed);
        case kOptimizedPlan:
          return ExecutePlan(optimized, compressed);
        case kKernels:
          return Decompress(compressed);
        default:
          return FusedDecompress(compressed);
      }
    }();
    bench::CheckOk(out.status(), "decompress");
    benchmark::DoNotOptimize(out->size());
  }
  state.SetLabel(labels[state.range(0)]);
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_RleDecompress)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
