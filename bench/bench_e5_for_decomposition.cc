// E5 — FOR ≡ STEP + NS, measured (paper §II-B).
//
// The additive decomposition is an identity on bytes: the FOR footprint is
// exactly the STEP model's refs plus the NS-packed residual, with the
// segment length trading refs overhead against residual width. The table
// sweeps segment length × in-segment variation and verifies the identity;
// timings decompress at the footprint-optimal and extreme settings.

#include "bench_common.h"
#include "core/catalog.h"
#include "gen/generators.h"
#include "util/bits.h"

namespace {

using namespace recomp;
using bench::MustCompress;

constexpr uint64_t kRows = 1u << 21;

void PrintTables() {
  for (int noise_bits : {2, 6, 10}) {
    bench::Section(
        "E5: FOR footprint vs segment length (in-segment variation = " +
        std::to_string(noise_bits) + " bits, rows=2^21)");
    std::printf("%-10s %12s %14s %16s %14s %8s\n", "ell", "refs B",
                "residual w", "residual B", "total B", "check");
    // Generate once at locality scale 1024; smaller ells over-segment,
    // larger ells widen the residual.
    Column<uint32_t> col = gen::StepLevels(kRows, 1024, 24, noise_bits, 31);
    for (uint64_t ell : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
      CompressedColumn compressed =
          MustCompress(AnyColumn(col), MakeFor(ell));
      const uint64_t refs_bytes =
          compressed.root().parts.at("refs").column->ByteSize();
      const CompressedNode& residual =
          *compressed.root().parts.at("residual").sub;
      const uint64_t residual_bytes = residual.PayloadBytes();
      const int width = residual.scheme.params.width;
      const bool identity =
          compressed.PayloadBytes() == refs_bytes + residual_bytes;
      std::printf("%-10llu %12llu %14d %16llu %14llu %8s\n",
                  static_cast<unsigned long long>(ell),
                  static_cast<unsigned long long>(refs_bytes), width,
                  static_cast<unsigned long long>(residual_bytes),
                  static_cast<unsigned long long>(compressed.PayloadBytes()),
                  identity ? "ok" : "FAIL");
      if (!identity) std::exit(1);
    }
  }
  std::printf(
      "\nExpected shape: total bytes are U-shaped in ell; the optimum sits "
      "at the data's locality scale (1024) and shifts with the variation.\n");
}

void BM_ForDecompressAtEll(benchmark::State& state) {
  const uint64_t ell = static_cast<uint64_t>(state.range(0));
  Column<uint32_t> col = gen::StepLevels(kRows, 1024, 24, 6, 31);
  CompressedColumn compressed = MustCompress(AnyColumn(col), MakeFor(ell));
  for (auto _ : state) {
    auto out = Decompress(compressed);
    bench::CheckOk(out.status(), "decompress");
    benchmark::DoNotOptimize(out->size());
  }
  state.SetLabel("ell=" + std::to_string(ell));
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_ForDecompressAtEll)
    ->Arg(16)
    ->Arg(1024)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
