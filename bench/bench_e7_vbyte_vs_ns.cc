// E7 — The log-metric residual: variable-width vs fixed-width encoding
// (paper §II-B).
//
// Claim: under d(x,y) = ceil(log2|x-y|+1), a variable-width encoding pays
// each value its own magnitude instead of the global maximum. The table
// mixes value magnitudes: NS pays the max everywhere, PATCHED-NS pays the
// bulk width plus exceptions, VBYTE pays per value (in byte quanta). Timing
// contrasts decode speed — the price of variable width.

#include "bench_common.h"
#include "core/catalog.h"
#include "gen/generators.h"

namespace {

using namespace recomp;
using bench::MustCompress;

constexpr uint64_t kRows = 1u << 21;

void PrintTables() {
  bench::Section("E7: NS vs PATCHED-NS vs VBYTE across magnitude mixes");
  std::printf("%-14s %14s %16s %14s\n", "wide frac", "NS bytes",
              "PATCHED-NS bytes", "VBYTE bytes");
  for (double wide : {0.0, 0.001, 0.01, 0.1, 0.5, 1.0}) {
    Column<uint32_t> col = gen::OutlierMix(kRows, 6, 27, wide, 51);
    const uint64_t ns =
        MustCompress(AnyColumn(col), Ns()).PayloadBytes();
    const uint64_t patched =
        MustCompress(AnyColumn(col), Patched().With("base", Ns()))
            .PayloadBytes();
    const uint64_t vbyte =
        MustCompress(AnyColumn(col), VByte()).PayloadBytes();
    std::printf("%-14.3f %14llu %16llu %14llu\n", wide,
                static_cast<unsigned long long>(ns),
                static_cast<unsigned long long>(patched),
                static_cast<unsigned long long>(vbyte));
  }
  std::printf(
      "\nExpected shape: NS flat at the wide width once any outlier exists; "
      "VBYTE tracks the mix linearly; PATCHED-NS wins the sparse regime, "
      "VBYTE the mixed-magnitude middle (in byte quanta).\n");
}

void BM_Decode(benchmark::State& state) {
  Column<uint32_t> col = gen::OutlierMix(kRows, 6, 27, 0.01, 52);
  const SchemeDescriptor descriptors[] = {Ns(),
                                          Patched().With("base", Ns()),
                                          VByte()};
  const char* labels[] = {"NS", "PATCHED-NS", "VBYTE"};
  CompressedColumn compressed =
      MustCompress(AnyColumn(col), descriptors[state.range(0)]);
  for (auto _ : state) {
    auto out = Decompress(compressed);
    bench::CheckOk(out.status(), "decode");
    benchmark::DoNotOptimize(out->size());
  }
  state.SetLabel(labels[state.range(0)]);
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_Decode)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
