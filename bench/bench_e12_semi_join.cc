// E12 (extension) — joins accelerated by the compressed form (paper §II-B's
// "speed up selections ... and joins").
//
// A semi-join probe (FK ⋉ key set) pushed into the compressed forms: DICT
// probes dictionary entries instead of rows, RLE probes run values, and the
// STEP model skips segments whose value window contains no key.

#include <algorithm>

#include "bench_common.h"
#include "core/catalog.h"
#include "exec/join.h"
#include "gen/generators.h"
#include "util/random.h"

namespace {

using namespace recomp;
using bench::MustCompress;

constexpr uint64_t kRows = 1u << 22;

Column<uint64_t> SampleKeys(const Column<uint32_t>& col, uint64_t count,
                            uint64_t seed) {
  Rng rng(seed);
  Column<uint64_t> keys;
  for (uint64_t i = 0; i < count; ++i) {
    keys.push_back(col[rng.Below(col.size())]);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

void PrintTables() {
  bench::Section("E12: semi-join probe counts by compressed shape (rows=2^22)");
  std::printf("%-26s %-14s %14s %14s %12s\n", "workload/scheme", "strategy",
              "probes", "rows matched", "probes/row");

  struct Case {
    const char* name;
    Column<uint32_t> column;
    SchemeDescriptor descriptor;
  };
  std::vector<Case> cases;
  cases.push_back({"runs / RLE", gen::SortedRuns(kRows, 64.0, 3, 1),
                   MakeRle()});
  cases.push_back({"zipf / DICT-NS", gen::ZipfValues(kRows, 4096, 1.1, 2),
                   MakeDictNs()});
  cases.push_back({"steps / FOR", gen::StepLevels(kRows, 1024, 24, 6, 3),
                   MakeFor(1024)});
  cases.push_back({"uniform / DELTA-NS (scan)", gen::Uniform(kRows, 1 << 24, 4),
                   MakeDeltaNs()});

  for (const Case& c : cases) {
    CompressedColumn compressed = MustCompress(AnyColumn(c.column),
                                               c.descriptor);
    Column<uint64_t> keys = SampleKeys(c.column, 64, 5);
    auto result = exec::SemiJoinCompressed(compressed, keys);
    bench::CheckOk(result.status(), c.name);
    std::printf("%-26s %-14s %14llu %14zu %12.4f\n", c.name,
                exec::StrategyName(result->strategy),
                static_cast<unsigned long long>(result->probes),
                result->positions.size(),
                static_cast<double>(result->probes) /
                    static_cast<double>(kRows));
  }
  std::printf(
      "\nExpected shape: pushdown probes are orders of magnitude below one "
      "per row (runs, dictionary entries, or surviving segments only).\n");
}

void BM_SemiJoin(benchmark::State& state) {
  const bool pushdown = state.range(0) == 1;
  Column<uint32_t> col = gen::SortedRuns(kRows, 64.0, 3, 6);
  CompressedColumn compressed = MustCompress(
      AnyColumn(col), pushdown ? MakeRle() : MakeDeltaNs());
  Column<uint64_t> keys = SampleKeys(col, 64, 7);
  for (auto _ : state) {
    auto result = exec::SemiJoinCompressed(compressed, keys);
    bench::CheckOk(result.status(), "join");
    benchmark::DoNotOptimize(result->positions.size());
  }
  state.SetLabel(pushdown ? "RLE run-probe" : "decompress-scan");
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_SemiJoin)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
