// E18 — Query service: shared-scan batch execution for concurrent clients.
//
// Claim (ROADMAP "Query service layer"; cf. "Main Memory Scan Sharing For
// Multi-Core CPUs" and the shared-scan literature): when many concurrent
// queries target the same table version, executing each one solo repeats
// the dominant cost — fused-decoding every surviving chunk — once per
// query. Batching the queries of a short admission window into ONE
// chunk-parallel pass decodes each chunk once and evaluates every query
// against the shared decoded buffer, with selection vectors recycled
// across identical predicates. Throughput then scales with the sharing
// ratio (chunk evaluations per physical decode) instead of degrading
// linearly with client count.
//
// Tables: a 64-concurrent-query HOT mix (8 distinct dashboard predicates,
// 8 clients each) and a COLD mix (64 unique predicates) against the same
// sealed two-column table; each mix runs naive-sequential (solo exec::Scan
// per query, what a non-batching server does) and batched through the
// QueryService. Every batched result is checked bit-identical to its solo
// run (exec::ScanOutputsEqual) before any number is reported, and the
// sharing ratio comes out of the process metrics snapshot
// (service.chunk_evaluations / service.chunks_decoded).
//
// Acceptance gate: batched QPS must be >= 2x naive QPS on the hot mix —
// the binary exits non-zero otherwise, so the CI bench smoke IS the check.

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exec/scan.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "store/table.h"
#include "util/random.h"

namespace {

using namespace recomp;
using bench::ValueOrDie;
using exec::AggregateOp;
using exec::ScanSpec;
using service::QueryService;
using service::ServiceOptions;
using store::Table;

constexpr uint64_t kRows = 1u << 19;  // 512Ki rows x 2 columns.
constexpr uint64_t kChunkRows = 16 * 1024;
constexpr uint64_t kValueBound = 1u << 20;
constexpr uint64_t kQueries = 64;  // >= 32-concurrent acceptance floor.

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

double PercentileSeconds(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[index];
}

/// The sealed shared table: "k" (filter column) and "v" (aggregate column),
/// both uniform — every chunk straddles any interior predicate band, so
/// nothing is zone-pruned or zone-contained and selection must decode.
const Table& SharedTable() {
  static const Table* table = [] {
    auto created = ValueOrDie(
        Table::Create({{"k", TypeId::kUInt32, {kChunkRows}, ""},
                       {"v", TypeId::kUInt32, {kChunkRows}, ""}}),
        "create");
    bench::CheckOk(
        created.AppendBatch(
            {AnyColumn(gen::Uniform(kRows, kValueBound, 181)),
             AnyColumn(gen::Uniform(kRows, kValueBound, 182))}),
        "append");
    bench::CheckOk(created.Seal(), "seal");
    bench::CheckOk(created.Flush(), "flush");
    return new Table(std::move(created));
  }();
  return *table;
}

/// HOT mix: 8 distinct dashboard predicates (~5% selectivity bands), each
/// issued by 8 clients — the repeated-predicate shape selection-vector
/// reuse exists for.
std::vector<ScanSpec> HotSpecs() {
  std::vector<ScanSpec> specs;
  specs.reserve(kQueries);
  for (uint64_t q = 0; q < kQueries; ++q) {
    const uint64_t band = q % 8;
    const uint64_t lo = kValueBound / 10 + band * (kValueBound / 12);
    const uint64_t hi = lo + kValueBound / 20;
    ScanSpec spec;
    spec.Filter("k", {lo, hi}).Aggregate("v", AggregateOp::kSum);
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// COLD mix: 64 unique predicates — no selection vector is ever reused, so
/// any win must come from decode sharing alone.
std::vector<ScanSpec> ColdSpecs() {
  Rng rng(183);
  std::vector<ScanSpec> specs;
  specs.reserve(kQueries);
  for (uint64_t q = 0; q < kQueries; ++q) {
    const uint64_t lo = 1 + rng.Below(kValueBound / 2);
    const uint64_t hi = lo + 1 + rng.Below(kValueBound / 4);
    ScanSpec spec;
    spec.Filter("k", {lo, hi}).Aggregate("v", AggregateOp::kSum);
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct MixResult {
  double naive_seconds = 0;
  double batched_seconds = 0;
  double naive_p50 = 0, naive_p99 = 0;
  double batched_p50 = 0, batched_p99 = 0;
  double sharing_ratio = 0;

  double naive_qps() const { return kQueries / naive_seconds; }
  double batched_qps() const { return kQueries / batched_seconds; }
  double speedup() const { return batched_qps() / naive_qps(); }
};

/// Runs one mix both ways, asserting bit-identity per query.
MixResult RunMix(const std::vector<ScanSpec>& specs) {
  const Table& table = SharedTable();
  const auto snapshot = ValueOrDie(table.Snapshot(), "snapshot");
  MixResult result;

  // Naive sequential: what a server answering each client solo pays.
  std::vector<exec::ScanResult> solo;
  solo.reserve(specs.size());
  std::vector<double> naive_latency;
  const auto naive_start = std::chrono::steady_clock::now();
  for (const ScanSpec& spec : specs) {
    const auto query_start = std::chrono::steady_clock::now();
    solo.push_back(ValueOrDie(exec::Scan(snapshot, spec), "solo scan"));
    naive_latency.push_back(SecondsSince(query_start));
  }
  result.naive_seconds = SecondsSince(naive_start);
  result.naive_p50 = PercentileSeconds(naive_latency, 0.5);
  result.naive_p99 = PercentileSeconds(naive_latency, 0.99);

  // Batched: all queries land inside one admission window. The measured
  // time includes the window itself — the real latency a client pays.
  // Result caching is off so hot/cold keep measuring the shared-scan
  // execution path itself (every admitted query executes, as in PR 9's
  // numbers); the cache's own win is gated by RunRepeated below.
  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(5000);
  options.max_in_flight_per_client = kQueries;
  options.result_cache_bytes = 0;
  auto service = ValueOrDie(QueryService::Create(&table, options), "service");
  const obs::MetricsSnapshot before = Table::MetricsSnapshot();

  std::vector<uint64_t> clients;
  for (uint64_t c = 0; c < 8; ++c) clients.push_back(service->RegisterClient());
  std::vector<QueryService::ResultFuture> futures;
  futures.reserve(specs.size());
  const auto batched_start = std::chrono::steady_clock::now();
  for (size_t q = 0; q < specs.size(); ++q) {
    futures.push_back(ValueOrDie(
        service->Submit(clients[q % clients.size()], specs[q]), "submit"));
  }
  std::vector<exec::ScanResult> batched;
  batched.reserve(futures.size());
  std::vector<double> batched_latency;
  for (auto& future : futures) {
    batched.push_back(ValueOrDie(future.get(), "batched scan"));
    // Slight overestimate for queries whose future settled before this
    // loop reached them; honest for the drain-everything client pattern.
    batched_latency.push_back(SecondsSince(batched_start));
  }
  result.batched_seconds = SecondsSince(batched_start);
  result.batched_p50 = PercentileSeconds(batched_latency, 0.5);
  result.batched_p99 = PercentileSeconds(batched_latency, 0.99);

  // Bit-identity: batching must never change an answer.
  for (size_t q = 0; q < specs.size(); ++q) {
    if (!exec::ScanOutputsEqual(batched[q], solo[q])) {
      std::fprintf(stderr, "FATAL query %zu: batched != solo\n", q);
      std::exit(1);
    }
  }

  // Sharing ratio out of the process metrics snapshot.
  const obs::MetricsSnapshot after = Table::MetricsSnapshot();
  const uint64_t decoded = after.counter("service.chunks_decoded") -
                           before.counter("service.chunks_decoded");
  const uint64_t evaluated = after.counter("service.chunk_evaluations") -
                             before.counter("service.chunk_evaluations");
  result.sharing_ratio =
      decoded == 0 ? 0.0
                   : static_cast<double>(evaluated) /
                         static_cast<double>(decoded);
  service->Stop();
  return result;
}

/// REPEATED mix: ~90% duplicates — 64 queries drawn from 6 distinct specs,
/// the dashboard-refresh shape the result cache exists for.
std::vector<ScanSpec> RepeatedSpecs() {
  std::vector<ScanSpec> specs;
  specs.reserve(kQueries);
  for (uint64_t q = 0; q < kQueries; ++q) {
    const uint64_t band = q % 6;
    const uint64_t lo = kValueBound / 10 + band * (kValueBound / 12);
    const uint64_t hi = lo + kValueBound / 8;
    ScanSpec spec;
    spec.Filter("k", {lo, hi}).Aggregate("v", AggregateOp::kSum);
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct RepeatedResult {
  double uncached_seconds = 0;
  double cached_seconds = 0;
  double hit_ratio = 0;

  double speedup() const { return uncached_seconds / cached_seconds; }
};

/// Submits `specs` through `service` and drains every future, returning the
/// wall time and the results (bit-identity is the caller's concern).
double DrainBurst(QueryService& service, uint64_t client,
                  const std::vector<ScanSpec>& specs,
                  std::vector<exec::ScanResult>* out) {
  std::vector<QueryService::ResultFuture> futures;
  futures.reserve(specs.size());
  const auto start = std::chrono::steady_clock::now();
  for (const ScanSpec& spec : specs) {
    futures.push_back(ValueOrDie(service.Submit(client, spec), "submit"));
  }
  for (auto& future : futures) {
    out->push_back(ValueOrDie(future.get(), "result"));
  }
  return SecondsSince(start);
}

/// The repeated-workload phase: the same 90%-duplicate burst through a
/// cache-disabled service (every query executes, PR 9's behavior) and a
/// warm cache-enabled one (every query is a result-cache hit). The gate is
/// the hits actually being cheap: >= 5x on wall time.
RepeatedResult RunRepeated() {
  const Table& table = SharedTable();
  const auto snapshot = ValueOrDie(table.Snapshot(), "snapshot");
  const std::vector<ScanSpec> specs = RepeatedSpecs();
  std::vector<exec::ScanResult> solo;
  solo.reserve(specs.size());
  for (const ScanSpec& spec : specs) {
    solo.push_back(ValueOrDie(exec::Scan(snapshot, spec), "solo scan"));
  }

  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(5000);
  // A full burst dispatches the moment the last query queues, so neither
  // side's time is dominated by waiting out the window.
  options.max_batch_queries = kQueries;
  options.max_in_flight_per_client = kQueries;
  RepeatedResult result;

  // Cache off: all 64 execute (shared-scan batched, as before this PR).
  {
    ServiceOptions off = options;
    off.result_cache_bytes = 0;
    auto service = ValueOrDie(QueryService::Create(&table, off), "service");
    const uint64_t client = service->RegisterClient();
    std::vector<exec::ScanResult> batched;
    result.uncached_seconds = DrainBurst(*service, client, specs, &batched);
    for (size_t q = 0; q < specs.size(); ++q) {
      if (!exec::ScanOutputsEqual(batched[q], solo[q])) {
        std::fprintf(stderr, "FATAL repeated/off query %zu != solo\n", q);
        std::exit(1);
      }
    }
    service->Stop();
  }

  // Cache on: a cold pass populates (and re-checks identity), then the
  // measured burst is served entirely from the result cache.
  {
    auto service = ValueOrDie(QueryService::Create(&table, options), "service");
    const uint64_t client = service->RegisterClient();
    std::vector<exec::ScanResult> cold;
    DrainBurst(*service, client, specs, &cold);
    const obs::MetricsSnapshot before = Table::MetricsSnapshot();
    std::vector<exec::ScanResult> warm;
    result.cached_seconds = DrainBurst(*service, client, specs, &warm);
    const obs::MetricsSnapshot after = Table::MetricsSnapshot();
    for (size_t q = 0; q < specs.size(); ++q) {
      if (!exec::ScanOutputsEqual(cold[q], solo[q]) ||
          !exec::ScanOutputsEqual(warm[q], solo[q])) {
        std::fprintf(stderr, "FATAL repeated/on query %zu != solo\n", q);
        std::exit(1);
      }
    }
    const uint64_t hits = after.counter("service.result_cache.hits") -
                          before.counter("service.result_cache.hits");
    result.hit_ratio =
        static_cast<double>(hits) / static_cast<double>(specs.size());
    service->Stop();
  }
  return result;
}

struct NestedResult {
  double sharing_off = 0;
  double sharing_on = 0;
  uint64_t subsumed_evaluations = 0;
  uint64_t chunk_evaluations = 0;

  double subsumption_ratio() const {
    return chunk_evaluations == 0
               ? 0.0
               : static_cast<double>(subsumed_evaluations) /
                     static_cast<double>(chunk_evaluations);
  }
};

/// One generation of the nested mix: 8 disjoint families of mid-range bands
/// on "k", each generation strictly inside the previous one. Filter-only:
/// the decode cost under measurement is the filter column's.
ScanSpec NestedSpec(uint64_t family, uint64_t generation) {
  const uint64_t width = kValueBound / 8;
  const uint64_t lo0 = family * width + width / 8;
  const uint64_t hi0 = (family + 1) * width - width / 8;
  const uint64_t step = (hi0 - lo0) / 20;
  ScanSpec spec;
  spec.Filter("k", {lo0 + generation * step, hi0 - generation * step});
  return spec;
}

/// Runs the nested mix through one service configuration and returns its
/// stats. Window g batches generation g together with generation g-1; with
/// the decoded-chunk cache disabled (budget 0, evicted between windows),
/// generation g-1 is answered by the cross-window selection cache, and the
/// only way generation g avoids re-decoding every chunk is subsuming into
/// g-1's cached (position, value) pairs. Sharing ratio — evaluations per
/// physical decode — is exactly what subsumption should move.
service::ServiceStats RunNestedConfig(bool subsume) {
  const Table& table = SharedTable();
  const auto snapshot = ValueOrDie(table.Snapshot(), "snapshot");
  constexpr uint64_t kFamilies = 8;
  constexpr uint64_t kGenerations = 8;

  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(10000);
  options.max_batch_queries = 2 * kFamilies;
  options.max_in_flight_per_client = kQueries;
  options.decoded_cache_bytes = 0;
  // The result cache would serve the repeated g-1 specs without executing,
  // leaving the batch without the containing bands the lattice needs.
  options.result_cache_bytes = 0;
  options.subsume_predicates = subsume;
  auto service = ValueOrDie(QueryService::Create(&table, options), "service");
  const uint64_t client = service->RegisterClient();

  for (uint64_t generation = 0; generation < kGenerations; ++generation) {
    std::vector<ScanSpec> window;
    for (uint64_t family = 0; family < kFamilies; ++family) {
      if (generation > 0) window.push_back(NestedSpec(family, generation - 1));
      window.push_back(NestedSpec(family, generation));
    }
    std::vector<exec::ScanResult> batched;
    DrainBurst(*service, client, window, &batched);
    for (size_t q = 0; q < window.size(); ++q) {
      const auto solo = ValueOrDie(exec::Scan(snapshot, window[q]), "solo");
      if (!exec::ScanOutputsEqual(batched[q], solo)) {
        std::fprintf(stderr, "FATAL nested gen %llu query %zu != solo\n",
                     static_cast<unsigned long long>(generation), q);
        std::exit(1);
      }
    }
  }
  const service::ServiceStats stats = service->stats();
  service->Stop();
  return stats;
}

NestedResult RunNested() {
  const service::ServiceStats off = RunNestedConfig(false);
  const service::ServiceStats on = RunNestedConfig(true);
  NestedResult result;
  result.sharing_off = off.sharing_ratio();
  result.sharing_on = on.sharing_ratio();
  result.subsumed_evaluations = on.subsumed_evaluations;
  result.chunk_evaluations = on.chunk_evaluations;
  return result;
}

void PrintMixRow(const char* name, const MixResult& mix) {
  std::printf("%-10s %9.0f %9.0f %7.2fx %7.2f %8.2f %8.2f %8.2f %8.2f\n",
              name, mix.naive_qps(), mix.batched_qps(), mix.speedup(),
              mix.sharing_ratio, mix.naive_p50 * 1e3, mix.naive_p99 * 1e3,
              mix.batched_p50 * 1e3, mix.batched_p99 * 1e3);
}

void PrintTables() {
  bench::Section(
      "E18: shared-scan service, 64 concurrent queries, naive vs batched");
  std::printf("rows=%llu chunks=%llu window=5ms queries=%llu\n",
              static_cast<unsigned long long>(kRows),
              static_cast<unsigned long long>(kRows / kChunkRows),
              static_cast<unsigned long long>(kQueries));
  std::printf("%-10s %9s %9s %8s %7s %8s %8s %8s %8s\n", "mix",
              "naiveQPS", "batchQPS", "speedup", "share", "n_p50ms",
              "n_p99ms", "b_p50ms", "b_p99ms");

  const MixResult hot = RunMix(HotSpecs());
  PrintMixRow("hot", hot);
  const MixResult cold = RunMix(ColdSpecs());
  PrintMixRow("cold", cold);

  auto& report = bench::JsonReport::Instance();
  report.Set("e18.hot.naive_qps", hot.naive_qps());
  report.Set("e18.hot.batched_qps", hot.batched_qps());
  report.Set("e18.hot.speedup", hot.speedup());
  report.Set("e18.hot.sharing_ratio", hot.sharing_ratio);
  report.Set("e18.hot.naive_p99_ms", hot.naive_p99 * 1e3);
  report.Set("e18.hot.batched_p99_ms", hot.batched_p99 * 1e3);
  report.Set("e18.cold.naive_qps", cold.naive_qps());
  report.Set("e18.cold.batched_qps", cold.batched_qps());
  report.Set("e18.cold.speedup", cold.speedup());
  report.Set("e18.cold.sharing_ratio", cold.sharing_ratio);

  // The acceptance gate: >= 2x on the hot mix, with sharing actually
  // materializing (more evaluations than physical decodes).
  if (hot.speedup() < 2.0) {
    std::fprintf(stderr, "FATAL hot-mix speedup %.2fx < 2.0x gate\n",
                 hot.speedup());
    std::exit(1);
  }
  if (hot.sharing_ratio <= 1.0) {
    std::fprintf(stderr, "FATAL hot-mix sharing ratio %.2f <= 1\n",
                 hot.sharing_ratio);
    std::exit(1);
  }

  bench::Section("E18: result cache, 90%-duplicate burst (64 queries / 6 specs)");
  const RepeatedResult repeated = RunRepeated();
  std::printf("%-10s %10s %10s %8s %9s\n", "mix", "off_ms", "warm_ms",
              "speedup", "hit_ratio");
  std::printf("%-10s %10.2f %10.2f %7.2fx %9.2f\n", "repeated",
              repeated.uncached_seconds * 1e3, repeated.cached_seconds * 1e3,
              repeated.speedup(), repeated.hit_ratio);
  report.Set("e18.repeated.uncached_ms", repeated.uncached_seconds * 1e3);
  report.Set("e18.repeated.cached_ms", repeated.cached_seconds * 1e3);
  report.Set("e18.repeated.speedup", repeated.speedup());
  report.Set("e18.repeated.hit_ratio", repeated.hit_ratio);
  if (repeated.speedup() < 5.0) {
    std::fprintf(stderr, "FATAL repeated-mix cache speedup %.2fx < 5.0x gate\n",
                 repeated.speedup());
    std::exit(1);
  }

  bench::Section("E18: predicate subsumption, nested bands (8 families x 8 gens)");
  const NestedResult nested = RunNested();
  std::printf("%-10s %12s %12s %12s\n", "mix", "share_off", "share_on",
              "subsumed");
  std::printf("%-10s %12.2f %12.2f %12llu\n", "nested", nested.sharing_off,
              nested.sharing_on,
              static_cast<unsigned long long>(nested.subsumed_evaluations));
  report.Set("e18.nested.sharing_off", nested.sharing_off);
  report.Set("e18.nested.sharing_on", nested.sharing_on);
  report.Set("e18.nested.subsumption_ratio", nested.subsumption_ratio());
  // Subsumption must strictly raise the sharing ratio over the PR 9
  // behavior (same mix, subsumption off), and must actually fire.
  if (nested.sharing_on <= nested.sharing_off) {
    std::fprintf(stderr, "FATAL nested sharing %.2f (on) <= %.2f (off)\n",
                 nested.sharing_on, nested.sharing_off);
    std::exit(1);
  }
  if (nested.subsumed_evaluations == 0) {
    std::fprintf(stderr, "FATAL nested mix subsumed 0 evaluations\n");
    std::exit(1);
  }
}

void BM_NaiveSequentialHotMix(benchmark::State& state) {
  const auto snapshot = ValueOrDie(SharedTable().Snapshot(), "snapshot");
  const std::vector<ScanSpec> specs = HotSpecs();
  for (auto _ : state) {
    uint64_t total = 0;
    for (const ScanSpec& spec : specs) {
      const auto result = ValueOrDie(exec::Scan(snapshot, spec), "scan");
      total += result.aggregates[0].value();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kQueries));
}
BENCHMARK(BM_NaiveSequentialHotMix);

void BM_BatchedHotMix(benchmark::State& state) {
  const Table& table = SharedTable();
  ServiceOptions options;
  // No window hold: every iteration submits its burst back to back and the
  // dispatcher groups whatever is queued, the steady-state server shape.
  options.batch_window = std::chrono::microseconds(0);
  options.max_in_flight_per_client = kQueries;
  auto service = ValueOrDie(QueryService::Create(&table, options), "service");
  const uint64_t client = service->RegisterClient();
  const std::vector<ScanSpec> specs = HotSpecs();
  for (auto _ : state) {
    std::vector<QueryService::ResultFuture> futures;
    futures.reserve(specs.size());
    for (const ScanSpec& spec : specs) {
      futures.push_back(
          ValueOrDie(service->Submit(client, spec), "submit"));
    }
    uint64_t total = 0;
    for (auto& future : futures) {
      total += ValueOrDie(future.get(), "result").aggregates[0].value();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kQueries));
  service->Stop();
}
BENCHMARK(BM_BatchedHotMix);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
