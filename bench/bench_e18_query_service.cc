// E18 — Query service: shared-scan batch execution for concurrent clients.
//
// Claim (ROADMAP "Query service layer"; cf. "Main Memory Scan Sharing For
// Multi-Core CPUs" and the shared-scan literature): when many concurrent
// queries target the same table version, executing each one solo repeats
// the dominant cost — fused-decoding every surviving chunk — once per
// query. Batching the queries of a short admission window into ONE
// chunk-parallel pass decodes each chunk once and evaluates every query
// against the shared decoded buffer, with selection vectors recycled
// across identical predicates. Throughput then scales with the sharing
// ratio (chunk evaluations per physical decode) instead of degrading
// linearly with client count.
//
// Tables: a 64-concurrent-query HOT mix (8 distinct dashboard predicates,
// 8 clients each) and a COLD mix (64 unique predicates) against the same
// sealed two-column table; each mix runs naive-sequential (solo exec::Scan
// per query, what a non-batching server does) and batched through the
// QueryService. Every batched result is checked bit-identical to its solo
// run (exec::ScanOutputsEqual) before any number is reported, and the
// sharing ratio comes out of the process metrics snapshot
// (service.chunk_evaluations / service.chunks_decoded).
//
// Acceptance gate: batched QPS must be >= 2x naive QPS on the hot mix —
// the binary exits non-zero otherwise, so the CI bench smoke IS the check.

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exec/scan.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "store/table.h"
#include "util/random.h"

namespace {

using namespace recomp;
using bench::ValueOrDie;
using exec::AggregateOp;
using exec::ScanSpec;
using service::QueryService;
using service::ServiceOptions;
using store::Table;

constexpr uint64_t kRows = 1u << 19;  // 512Ki rows x 2 columns.
constexpr uint64_t kChunkRows = 16 * 1024;
constexpr uint64_t kValueBound = 1u << 20;
constexpr uint64_t kQueries = 64;  // >= 32-concurrent acceptance floor.

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

double PercentileSeconds(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[index];
}

/// The sealed shared table: "k" (filter column) and "v" (aggregate column),
/// both uniform — every chunk straddles any interior predicate band, so
/// nothing is zone-pruned or zone-contained and selection must decode.
const Table& SharedTable() {
  static const Table* table = [] {
    auto created = ValueOrDie(
        Table::Create({{"k", TypeId::kUInt32, {kChunkRows}, ""},
                       {"v", TypeId::kUInt32, {kChunkRows}, ""}}),
        "create");
    bench::CheckOk(
        created.AppendBatch(
            {AnyColumn(gen::Uniform(kRows, kValueBound, 181)),
             AnyColumn(gen::Uniform(kRows, kValueBound, 182))}),
        "append");
    bench::CheckOk(created.Seal(), "seal");
    bench::CheckOk(created.Flush(), "flush");
    return new Table(std::move(created));
  }();
  return *table;
}

/// HOT mix: 8 distinct dashboard predicates (~5% selectivity bands), each
/// issued by 8 clients — the repeated-predicate shape selection-vector
/// reuse exists for.
std::vector<ScanSpec> HotSpecs() {
  std::vector<ScanSpec> specs;
  specs.reserve(kQueries);
  for (uint64_t q = 0; q < kQueries; ++q) {
    const uint64_t band = q % 8;
    const uint64_t lo = kValueBound / 10 + band * (kValueBound / 12);
    const uint64_t hi = lo + kValueBound / 20;
    ScanSpec spec;
    spec.Filter("k", {lo, hi}).Aggregate("v", AggregateOp::kSum);
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// COLD mix: 64 unique predicates — no selection vector is ever reused, so
/// any win must come from decode sharing alone.
std::vector<ScanSpec> ColdSpecs() {
  Rng rng(183);
  std::vector<ScanSpec> specs;
  specs.reserve(kQueries);
  for (uint64_t q = 0; q < kQueries; ++q) {
    const uint64_t lo = 1 + rng.Below(kValueBound / 2);
    const uint64_t hi = lo + 1 + rng.Below(kValueBound / 4);
    ScanSpec spec;
    spec.Filter("k", {lo, hi}).Aggregate("v", AggregateOp::kSum);
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct MixResult {
  double naive_seconds = 0;
  double batched_seconds = 0;
  double naive_p50 = 0, naive_p99 = 0;
  double batched_p50 = 0, batched_p99 = 0;
  double sharing_ratio = 0;

  double naive_qps() const { return kQueries / naive_seconds; }
  double batched_qps() const { return kQueries / batched_seconds; }
  double speedup() const { return batched_qps() / naive_qps(); }
};

/// Runs one mix both ways, asserting bit-identity per query.
MixResult RunMix(const std::vector<ScanSpec>& specs) {
  const Table& table = SharedTable();
  const auto snapshot = ValueOrDie(table.Snapshot(), "snapshot");
  MixResult result;

  // Naive sequential: what a server answering each client solo pays.
  std::vector<exec::ScanResult> solo;
  solo.reserve(specs.size());
  std::vector<double> naive_latency;
  const auto naive_start = std::chrono::steady_clock::now();
  for (const ScanSpec& spec : specs) {
    const auto query_start = std::chrono::steady_clock::now();
    solo.push_back(ValueOrDie(exec::Scan(snapshot, spec), "solo scan"));
    naive_latency.push_back(SecondsSince(query_start));
  }
  result.naive_seconds = SecondsSince(naive_start);
  result.naive_p50 = PercentileSeconds(naive_latency, 0.5);
  result.naive_p99 = PercentileSeconds(naive_latency, 0.99);

  // Batched: all queries land inside one admission window. The measured
  // time includes the window itself — the real latency a client pays.
  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(5000);
  options.max_in_flight_per_client = kQueries;
  auto service = ValueOrDie(QueryService::Create(&table, options), "service");
  const obs::MetricsSnapshot before = Table::MetricsSnapshot();

  std::vector<uint64_t> clients;
  for (uint64_t c = 0; c < 8; ++c) clients.push_back(service->RegisterClient());
  std::vector<QueryService::ResultFuture> futures;
  futures.reserve(specs.size());
  const auto batched_start = std::chrono::steady_clock::now();
  for (size_t q = 0; q < specs.size(); ++q) {
    futures.push_back(ValueOrDie(
        service->Submit(clients[q % clients.size()], specs[q]), "submit"));
  }
  std::vector<exec::ScanResult> batched;
  batched.reserve(futures.size());
  std::vector<double> batched_latency;
  for (auto& future : futures) {
    batched.push_back(ValueOrDie(future.get(), "batched scan"));
    // Slight overestimate for queries whose future settled before this
    // loop reached them; honest for the drain-everything client pattern.
    batched_latency.push_back(SecondsSince(batched_start));
  }
  result.batched_seconds = SecondsSince(batched_start);
  result.batched_p50 = PercentileSeconds(batched_latency, 0.5);
  result.batched_p99 = PercentileSeconds(batched_latency, 0.99);

  // Bit-identity: batching must never change an answer.
  for (size_t q = 0; q < specs.size(); ++q) {
    if (!exec::ScanOutputsEqual(batched[q], solo[q])) {
      std::fprintf(stderr, "FATAL query %zu: batched != solo\n", q);
      std::exit(1);
    }
  }

  // Sharing ratio out of the process metrics snapshot.
  const obs::MetricsSnapshot after = Table::MetricsSnapshot();
  const uint64_t decoded = after.counter("service.chunks_decoded") -
                           before.counter("service.chunks_decoded");
  const uint64_t evaluated = after.counter("service.chunk_evaluations") -
                             before.counter("service.chunk_evaluations");
  result.sharing_ratio =
      decoded == 0 ? 0.0
                   : static_cast<double>(evaluated) /
                         static_cast<double>(decoded);
  service->Stop();
  return result;
}

void PrintMixRow(const char* name, const MixResult& mix) {
  std::printf("%-10s %9.0f %9.0f %7.2fx %7.2f %8.2f %8.2f %8.2f %8.2f\n",
              name, mix.naive_qps(), mix.batched_qps(), mix.speedup(),
              mix.sharing_ratio, mix.naive_p50 * 1e3, mix.naive_p99 * 1e3,
              mix.batched_p50 * 1e3, mix.batched_p99 * 1e3);
}

void PrintTables() {
  bench::Section(
      "E18: shared-scan service, 64 concurrent queries, naive vs batched");
  std::printf("rows=%llu chunks=%llu window=5ms queries=%llu\n",
              static_cast<unsigned long long>(kRows),
              static_cast<unsigned long long>(kRows / kChunkRows),
              static_cast<unsigned long long>(kQueries));
  std::printf("%-10s %9s %9s %8s %7s %8s %8s %8s %8s\n", "mix",
              "naiveQPS", "batchQPS", "speedup", "share", "n_p50ms",
              "n_p99ms", "b_p50ms", "b_p99ms");

  const MixResult hot = RunMix(HotSpecs());
  PrintMixRow("hot", hot);
  const MixResult cold = RunMix(ColdSpecs());
  PrintMixRow("cold", cold);

  auto& report = bench::JsonReport::Instance();
  report.Set("e18.hot.naive_qps", hot.naive_qps());
  report.Set("e18.hot.batched_qps", hot.batched_qps());
  report.Set("e18.hot.speedup", hot.speedup());
  report.Set("e18.hot.sharing_ratio", hot.sharing_ratio);
  report.Set("e18.hot.naive_p99_ms", hot.naive_p99 * 1e3);
  report.Set("e18.hot.batched_p99_ms", hot.batched_p99 * 1e3);
  report.Set("e18.cold.naive_qps", cold.naive_qps());
  report.Set("e18.cold.batched_qps", cold.batched_qps());
  report.Set("e18.cold.speedup", cold.speedup());
  report.Set("e18.cold.sharing_ratio", cold.sharing_ratio);

  // The acceptance gate: >= 2x on the hot mix, with sharing actually
  // materializing (more evaluations than physical decodes).
  if (hot.speedup() < 2.0) {
    std::fprintf(stderr, "FATAL hot-mix speedup %.2fx < 2.0x gate\n",
                 hot.speedup());
    std::exit(1);
  }
  if (hot.sharing_ratio <= 1.0) {
    std::fprintf(stderr, "FATAL hot-mix sharing ratio %.2f <= 1\n",
                 hot.sharing_ratio);
    std::exit(1);
  }
}

void BM_NaiveSequentialHotMix(benchmark::State& state) {
  const auto snapshot = ValueOrDie(SharedTable().Snapshot(), "snapshot");
  const std::vector<ScanSpec> specs = HotSpecs();
  for (auto _ : state) {
    uint64_t total = 0;
    for (const ScanSpec& spec : specs) {
      const auto result = ValueOrDie(exec::Scan(snapshot, spec), "scan");
      total += result.aggregates[0].value();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kQueries));
}
BENCHMARK(BM_NaiveSequentialHotMix);

void BM_BatchedHotMix(benchmark::State& state) {
  const Table& table = SharedTable();
  ServiceOptions options;
  // No window hold: every iteration submits its burst back to back and the
  // dispatcher groups whatever is queued, the steady-state server shape.
  options.batch_window = std::chrono::microseconds(0);
  options.max_in_flight_per_client = kQueries;
  auto service = ValueOrDie(QueryService::Create(&table, options), "service");
  const uint64_t client = service->RegisterClient();
  const std::vector<ScanSpec> specs = HotSpecs();
  for (auto _ : state) {
    std::vector<QueryService::ResultFuture> futures;
    futures.reserve(specs.size());
    for (const ScanSpec& spec : specs) {
      futures.push_back(
          ValueOrDie(service->Submit(client, spec), "submit"));
    }
    uint64_t total = 0;
    for (auto& future : futures) {
      total += ValueOrDie(future.get(), "result").aggregates[0].value();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kQueries));
  service->Stop();
}
BENCHMARK(BM_BatchedHotMix);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
