// E17 — Background recompression: re-sealing cold and stored-plain chunks.
//
// Claim (ROADMAP "Recompression under load"; cf. "Reducing Storage in
// Large-Scale Photo Sharing Services using Recompression" and "Revisiting
// Data Compression in Column-Stores"): per-chunk scheme choice pays off
// only if it can be corrected over time. A background Recompressor that
// re-runs the analyzer off the scan path and atomically swaps chunk slots
// recoups storage (pinned or cost-constrained first choices shrink to the
// fresh analyzer's pick) and scan bandwidth (smaller payloads, better
// pushdown strategies), and drains the stored-plain backlog left behind by
// wedged seal jobs — all while ingest and scans stay live.
//
// Tables: (a) pinned-NS ingest → RecompressAll storage/scan deltas with the
// scheme migration histogram; (b) stored-plain backlog drain: bytes and
// scan time before/after the Recompressor seals what a wedged pool could
// not; (c) recompression with ingest still live (background maintenance).
// Timing series: sum/select scans before vs after recompression, the
// steady-state no-op maintenance tick, and RecompressAll itself.

#include <chrono>
#include <future>
#include <map>

#include "bench_common.h"
#include "core/chunked.h"
#include "exec/aggregate.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "store/recompress.h"
#include "store/table.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace {

using namespace recomp;
using bench::ValueOrDie;

constexpr uint64_t kRows = 1u << 21;  // 2Mi rows, 8 MiB of uint32.
constexpr uint64_t kChunkRows = 64 * 1024;

/// Run-heavy rows: the shape where a pinned bit-packing loses hardest to a
/// fresh analyzer choice (RLE-family compositions).
const Column<uint32_t>& SharedRows() {
  static const Column<uint32_t>* rows =
      new Column<uint32_t>(gen::SortedRuns(kRows, 80.0, 3, 171));
  return *rows;
}

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

uint64_t ReferenceSum() {
  static uint64_t sum = [] {
    uint64_t s = 0;
    for (const uint32_t v : SharedRows()) s += v;
    return s;
  }();
  return sum;
}

/// An AppendableColumn holding SharedRows() pinned to plain NS, flushed.
std::unique_ptr<store::AppendableColumn> PinnedNsColumn(const ExecContext& ctx) {
  store::IngestOptions options;
  options.chunk_rows = kChunkRows;
  options.descriptor = Ns();
  auto column = std::make_unique<store::AppendableColumn>(TypeId::kUInt32,
                                                          options, ctx);
  bench::CheckOk(column->AppendBatch(AnyColumn(SharedRows())), "append");
  bench::CheckOk(column->Flush(), "flush");
  return column;
}

store::RecompressionPolicy MigrationPolicy() {
  store::RecompressionPolicy policy;
  policy.recompress_pinned = true;
  policy.min_gain = 1.0;
  return policy;
}

void VerifyColumn(const store::AppendableColumn& column, const char* what) {
  auto snap = ValueOrDie(column.Snapshot(), "snapshot");
  const auto sum = ValueOrDie(exec::SumCompressed(snap.chunked()), what);
  if (sum.value != ReferenceSum()) {
    std::fprintf(stderr, "FATAL %s: sum mismatch\n", what);
    std::exit(1);
  }
}

double TimeSumScan(const ChunkedCompressedColumn& chunked) {
  auto start = std::chrono::steady_clock::now();
  const auto sum = ValueOrDie(exec::SumCompressed(chunked), "sum");
  benchmark::DoNotOptimize(sum.value);
  return SecondsSince(start);
}

void PrintPinnedMigrationTable() {
  bench::Section("E17a: pinned-NS column, RecompressAll storage/scan delta");
  ThreadPool pool(4);
  const ExecContext ctx{&pool, 1};
  auto column = PinnedNsColumn(ctx);
  VerifyColumn(*column, "pre-recompression scan");
  auto before = ValueOrDie(column->Snapshot(), "snapshot");
  const uint64_t bytes_before = before.chunked().PayloadBytes();
  const double scan_before = TimeSumScan(before.chunked());

  store::Recompressor recompressor(MigrationPolicy(), ctx);
  auto start = std::chrono::steady_clock::now();
  const auto report =
      ValueOrDie(recompressor.RecompressAll(*column), "recompress");
  const double recompress_seconds = SecondsSince(start);
  VerifyColumn(*column, "post-recompression scan");
  auto after = ValueOrDie(column->Snapshot(), "snapshot");
  const double scan_after = TimeSumScan(after.chunked());

  std::printf("%-28s %14s %14s %9s\n", "", "before", "after", "delta");
  std::printf("%-28s %14llu %14llu %8.1f%%\n", "payload bytes",
              static_cast<unsigned long long>(bytes_before),
              static_cast<unsigned long long>(after.chunked().PayloadBytes()),
              100.0 * (1.0 - static_cast<double>(after.chunked().PayloadBytes()) /
                                 static_cast<double>(bytes_before)));
  std::printf("%-28s %14.4f %14.4f %8.1fx\n", "sum scan seconds", scan_before,
              scan_after, scan_before / scan_after);
  std::printf("%-28s %llu of %llu chunks in %.3fs (%s saved)\n", "reswapped",
              static_cast<unsigned long long>(report.chunks_reswapped),
              static_cast<unsigned long long>(report.chunks_examined),
              recompress_seconds, HumanBytes(report.BytesSaved()).c_str());

  std::map<std::string, uint64_t> migrations;
  for (const auto& swap : report.swaps) {
    ++migrations[swap.scheme_before + " -> " + swap.scheme_after];
  }
  for (const auto& [migration, count] : migrations) {
    std::printf("  %3llu x %s\n", static_cast<unsigned long long>(count),
                migration.c_str());
  }
}

void PrintBacklogDrainTable() {
  bench::Section("E17b: stored-plain backlog drain (wedged seal pool)");
  ThreadPool pool(1);
  const ExecContext ctx{&pool, 1};
  store::AppendableColumn column(TypeId::kUInt32, {kChunkRows}, ctx);
  // Wedge the only worker: every rolled chunk stays a stored-plain ID
  // envelope, exactly the backlog a slow or failed seal job leaves behind.
  std::promise<void> release;
  {
    std::shared_future<void> gate = release.get_future().share();
    pool.Submit([gate] { gate.wait(); });
  }
  bench::CheckOk(column.AppendBatch(AnyColumn(SharedRows())), "append");

  auto before = ValueOrDie(column.Snapshot(), "snapshot");
  const uint64_t backlog =
      column.num_chunks() - column.sealed_chunks();
  const uint64_t bytes_before = before.chunked().PayloadBytes();
  const double scan_before = TimeSumScan(before.chunked());

  // The drain runs on the calling thread (sequential context): the wedged
  // ingest pool is exactly what it must route around.
  store::Recompressor recompressor({}, ExecContext{});
  auto start = std::chrono::steady_clock::now();
  const auto report = ValueOrDie(recompressor.RecompressAll(column), "drain");
  const double drain_seconds = SecondsSince(start);
  VerifyColumn(column, "post-drain scan");
  auto after = ValueOrDie(column.Snapshot(), "snapshot");
  const double scan_after = TimeSumScan(after.chunked());

  std::printf("backlog: %llu stored-plain chunks, %s\n",
              static_cast<unsigned long long>(backlog),
              HumanBytes(bytes_before).c_str());
  std::printf("drained: %llu chunks in %.3fs -> %s (%s saved)\n",
              static_cast<unsigned long long>(report.stored_plain_drained),
              drain_seconds, HumanBytes(after.chunked().PayloadBytes()).c_str(),
              HumanBytes(report.BytesSaved()).c_str());
  std::printf("sum scan: %.4fs plain -> %.4fs compressed (%.1fx)\n",
              scan_before, scan_after, scan_before / scan_after);
  release.set_value();
  column.WaitForSeals();
}

void PrintLiveIngestTable() {
  bench::Section("E17c: recompression with ingest still live");
  ThreadPool pool(4);
  auto table = ValueOrDie(store::Table::Create(
                              {
                                  {"v", TypeId::kUInt32, {kChunkRows}, "NS"},
                              },
                              ExecContext{&pool, 1}),
                          "create");
  bench::CheckOk(
      table.StartMaintenance(MigrationPolicy(), std::chrono::milliseconds(1)),
      "start maintenance");

  const Column<uint32_t>& rows = SharedRows();
  auto start = std::chrono::steady_clock::now();
  constexpr uint64_t kBatch = 16 * 1024;
  for (uint64_t at = 0; at < rows.size(); at += kBatch) {
    const uint64_t end = std::min<uint64_t>(rows.size(), at + kBatch);
    Column<uint32_t> batch(rows.begin() + at, rows.begin() + end);
    bench::CheckOk(table.AppendBatch({AnyColumn(batch)}), "append");
  }
  bench::CheckOk(table.Flush(), "flush");
  const double ingest_seconds = SecondsSince(start);
  // Let maintenance reach the fixpoint, then stop.
  const auto drained = ValueOrDie(table.RecompressAll(MigrationPolicy()),
                                  "drain");
  table.StopMaintenance();
  const auto background = table.maintenance_report();

  auto snap = ValueOrDie(table.Snapshot(), "snapshot");
  const auto sum =
      ValueOrDie(exec::SumCompressed((*ValueOrDie(snap.column("v"), "col"))
                                         .chunked()),
                 "sum");
  if (sum.value != ReferenceSum()) {
    std::fprintf(stderr, "FATAL live-ingest sum mismatch\n");
    std::exit(1);
  }
  std::printf("ingested %llu rows in %.3fs with maintenance ticking\n",
              static_cast<unsigned long long>(rows.size()), ingest_seconds);
  std::printf("background ticks reswapped %llu chunks (%s saved); "
              "final drain added %llu\n",
              static_cast<unsigned long long>(background.chunks_reswapped),
              HumanBytes(background.BytesSaved()).c_str(),
              static_cast<unsigned long long>(drained.chunks_reswapped));
}

void PrintTables() {
  PrintPinnedMigrationTable();
  PrintBacklogDrainTable();
  PrintLiveIngestTable();
}

// ---------------------------------------------------------------------------
// Timing series.
// ---------------------------------------------------------------------------

/// The pinned column and its recompressed twin, built once.
const ChunkedCompressedColumn& PinnedView() {
  static const ChunkedCompressedColumn* view = [] {
    static ThreadPool pool(4);
    auto column = PinnedNsColumn(ExecContext{&pool, 1});
    auto snap = ValueOrDie(column->Snapshot(), "snapshot");
    return new ChunkedCompressedColumn(snap.chunked());
  }();
  return *view;
}

const ChunkedCompressedColumn& RecompressedView() {
  static const ChunkedCompressedColumn* view = [] {
    static ThreadPool pool(4);
    const ExecContext ctx{&pool, 1};
    auto column = PinnedNsColumn(ctx);
    store::Recompressor recompressor(MigrationPolicy(), ctx);
    ValueOrDie(recompressor.RecompressAll(*column), "recompress");
    auto snap = ValueOrDie(column->Snapshot(), "snapshot");
    return new ChunkedCompressedColumn(snap.chunked());
  }();
  return *view;
}

void BM_SumScan(benchmark::State& state, const ChunkedCompressedColumn& view) {
  for (auto _ : state) {
    const auto sum = ValueOrDie(exec::SumCompressed(view), "sum");
    benchmark::DoNotOptimize(sum.value);
  }
  bench::SetThroughput(state, view.UncompressedBytes());
}

void BM_SumBeforeRecompression(benchmark::State& state) {
  BM_SumScan(state, PinnedView());
}
BENCHMARK(BM_SumBeforeRecompression);

void BM_SumAfterRecompression(benchmark::State& state) {
  BM_SumScan(state, RecompressedView());
}
BENCHMARK(BM_SumAfterRecompression);

void BM_SelectScan(benchmark::State& state,
                   const ChunkedCompressedColumn& view) {
  // A thin band early in the value range: most chunks zone-map-prune once
  // recompressed, while the pinned form pays the full scan.
  const exec::RangePredicate pred{1200, 1200 + 6};
  for (auto _ : state) {
    const auto selection =
        ValueOrDie(exec::SelectCompressed(view, pred), "select");
    benchmark::DoNotOptimize(selection.positions.size());
  }
  bench::SetThroughput(state, view.UncompressedBytes());
}

void BM_SelectBeforeRecompression(benchmark::State& state) {
  BM_SelectScan(state, PinnedView());
}
BENCHMARK(BM_SelectBeforeRecompression);

void BM_SelectAfterRecompression(benchmark::State& state) {
  BM_SelectScan(state, RecompressedView());
}
BENCHMARK(BM_SelectAfterRecompression);

void BM_MaintenanceTickAtFixpoint(benchmark::State& state) {
  // The steady-state cost of a no-op tick: candidate selection plus the
  // kept re-analyses, the price of leaving background maintenance on.
  static ThreadPool pool(4);
  const ExecContext ctx{&pool, 1};
  static store::AppendableColumn* column = [] {
    auto owned = PinnedNsColumn(ExecContext{});
    return owned.release();
  }();
  store::Recompressor recompressor(MigrationPolicy(), ctx);
  ValueOrDie(recompressor.RecompressAll(*column), "warmup");
  for (auto _ : state) {
    const auto report = ValueOrDie(recompressor.Tick(*column), "tick");
    benchmark::DoNotOptimize(report.chunks_reswapped);
  }
}
BENCHMARK(BM_MaintenanceTickAtFixpoint);

void BM_RecompressAllPinned(benchmark::State& state) {
  static ThreadPool pool(4);
  const ExecContext ctx{&pool, 1};
  for (auto _ : state) {
    state.PauseTiming();
    auto column = PinnedNsColumn(ctx);
    state.ResumeTiming();
    store::Recompressor recompressor(MigrationPolicy(), ctx);
    const auto report =
        ValueOrDie(recompressor.RecompressAll(*column), "recompress");
    benchmark::DoNotOptimize(report.chunks_reswapped);
  }
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_RecompressAllPinned);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
