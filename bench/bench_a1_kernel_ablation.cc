// A1 (ablation) — scalar vs AVX2 kernels underneath the schemes.
//
// DESIGN.md §4 substitutes CPU SIMD lanes for the paper's GPU context ([8]);
// this ablation quantifies what the substitution buys per kernel: bit
// unpacking across widths, inclusive prefix sum (DELTA and Algorithm 1/2's
// scans), constant addition (FOR's final +) and gather (RLE/DICT's final
// step). Each case runs both dispatch paths on identical inputs.

#include "bench_common.h"
#include "gen/generators.h"
#include "ops/dispatch.h"
#include "ops/elementwise.h"
#include "ops/gather.h"
#include "ops/kernels_avx2.h"
#include "ops/pack.h"
#include "ops/prefix_sum.h"
#include "util/bits.h"

namespace {

using namespace recomp;

constexpr uint64_t kValues = 1u << 22;

void PrintTables() {
  bench::Section("A1: kernel ablation — scalar vs AVX2 dispatch");
  std::printf(
      "AVX2 compiled in and supported: %s (unpack widths 1..%d take the "
      "vector path)\n",
      ops::HasAvx2() ? "yes" : "no", ops::avx2::kMaxUnpackWidth);
}

void BM_UnpackByWidth(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const bool scalar = state.range(1) == 1;
  Column<uint32_t> col =
      gen::Uniform(kValues, uint64_t{1} << width, width);
  PackedColumn packed =
      bench::ValueOrDie(ops::Pack(col, width), "pack");
  ops::ForceScalar(scalar);
  for (auto _ : state) {
    auto out = ops::Unpack<uint32_t>(packed);
    bench::CheckOk(out.status(), "unpack");
    benchmark::DoNotOptimize(out->data());
  }
  ops::ForceScalar(false);
  state.SetLabel(std::string("w=") + std::to_string(width) +
                 (scalar ? " scalar" : " avx2"));
  bench::SetThroughput(state, kValues * sizeof(uint32_t));
}
BENCHMARK(BM_UnpackByWidth)
    ->Args({1, 1})
    ->Args({1, 0})
    ->Args({7, 1})
    ->Args({7, 0})
    ->Args({13, 1})
    ->Args({13, 0})
    ->Args({25, 1})
    ->Args({25, 0})
    ->Args({31, 1})  // Wide widths: covered since the width-generic unpacker.
    ->Args({31, 0})
    ->Unit(benchmark::kMillisecond);

void BM_PrefixSum(benchmark::State& state) {
  const bool scalar = state.range(0) == 1;
  Column<uint32_t> col = gen::Uniform(kValues, 1 << 8, 3);
  ops::ForceScalar(scalar);
  for (auto _ : state) {
    Column<uint32_t> out = ops::PrefixSumInclusive(col);
    benchmark::DoNotOptimize(out.data());
  }
  ops::ForceScalar(false);
  state.SetLabel(scalar ? "scalar" : "avx2");
  bench::SetThroughput(state, kValues * sizeof(uint32_t));
}
BENCHMARK(BM_PrefixSum)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_AddConstant(benchmark::State& state) {
  const bool scalar = state.range(0) == 1;
  Column<uint32_t> col = gen::Uniform(kValues, 1 << 20, 4);
  ops::ForceScalar(scalar);
  for (auto _ : state) {
    auto out = ops::ElementwiseScalar<uint32_t>(ops::BinOp::kAdd, col, 12345);
    bench::CheckOk(out.status(), "add");
    benchmark::DoNotOptimize(out->data());
  }
  ops::ForceScalar(false);
  state.SetLabel(scalar ? "scalar" : "avx2");
  bench::SetThroughput(state, kValues * sizeof(uint32_t));
}
BENCHMARK(BM_AddConstant)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_Gather(benchmark::State& state) {
  const bool scalar = state.range(0) == 1;
  Column<uint32_t> values = gen::Uniform(1 << 16, ~uint32_t{0}, 5);
  Column<uint32_t> indices = gen::Uniform(kValues, 1 << 16, 6);
  ops::ForceScalar(scalar);
  for (auto _ : state) {
    Column<uint32_t> out = ops::GatherUnchecked(values, indices);
    benchmark::DoNotOptimize(out.data());
  }
  ops::ForceScalar(false);
  state.SetLabel(scalar ? "scalar" : "avx2");
  bench::SetThroughput(state, kValues * sizeof(uint32_t));
}
BENCHMARK(BM_Gather)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
