// E10 — The composition space forms a ratio/speed Pareto frontier
// (paper Lessons 1: partial decompression trades "some of the potential
// compression ratio of the composite scheme for ease of decompression").
//
// For each workload, every analyzer candidate is actually compressed and
// decompression is wall-timed; the table marks the Pareto-optimal points
// (no other candidate is both smaller and faster). A second table walks a
// single composite through successive PeelPart steps — the decomposition
// ladder — showing bytes rising as operators fall away.

#include <chrono>

#include "bench_common.h"
#include "core/analyzer.h"
#include "core/catalog.h"
#include "core/plan_builder.h"
#include "core/rewrite.h"
#include "gen/generators.h"

namespace {

using namespace recomp;
using bench::MustCompress;
using bench::ValueOrDie;

constexpr uint64_t kRows = 1u << 20;

double MeasureDecompressSeconds(const CompressedColumn& compressed) {
  // Warm once, then take the best of 5 (robust on a noisy single core).
  bench::CheckOk(Decompress(compressed).status(), "warmup");
  double best = 1e99;
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    auto out = Decompress(compressed);
    const auto stop = std::chrono::steady_clock::now();
    bench::CheckOk(out.status(), "decompress");
    benchmark::DoNotOptimize(out->size());
    best = std::min(best, std::chrono::duration<double>(stop - start).count());
  }
  return best;
}

void ParetoTable(const std::string& title, const Column<uint32_t>& col) {
  bench::Section("E10: ratio/speed frontier — " + title);
  auto outcomes = ValueOrDie(TrialCompressCandidates(AnyColumn(col)),
                             "analyzer");
  struct Point {
    std::string name;
    uint64_t bytes;
    double gbps;
  };
  std::vector<Point> points;
  for (const TrialOutcome& outcome : *&outcomes) {
    auto compressed = Compress(AnyColumn(col), outcome.descriptor);
    if (!compressed.ok()) continue;
    const double seconds = MeasureDecompressSeconds(*compressed);
    points.push_back({outcome.name, outcome.measured_bytes,
                      static_cast<double>(kRows * sizeof(uint32_t)) /
                          seconds / 1e9});
  }
  std::printf("%-20s %14s %10s %12s  %s\n", "candidate", "bytes", "ratio",
              "decomp GB/s", "pareto");
  for (const Point& p : points) {
    bool dominated = false;
    for (const Point& q : points) {
      if (q.bytes < p.bytes && q.gbps > p.gbps) dominated = true;
    }
    std::printf("%-20s %14llu %9.1fx %12.2f  %s\n", p.name.c_str(),
                static_cast<unsigned long long>(p.bytes),
                static_cast<double>(kRows * 4) / static_cast<double>(p.bytes),
                p.gbps, dominated ? "" : "*");
  }
}

void DecompositionLadder() {
  bench::Section(
      "E10: the decomposition ladder — peeling one sub-scheme at a time");
  Column<uint32_t> col = gen::ShippedOrderDates(kRows, 200.0, 81);
  CompressedColumn current = MustCompress(AnyColumn(col), MakeRleDelta());
  const char* steps[] = {"positions/deltas", "positions",
                         "values/deltas/recoded/base", "values/deltas/recoded",
                         "values/deltas", "values"};
  std::printf("%-44s %12s %10s\n", "descriptor", "bytes", "plan ops");
  auto report = [&](const CompressedColumn& compressed) {
    Plan plan = ValueOrDie(BuildDecompressionPlan(compressed), "plan");
    std::string desc = compressed.Descriptor().ToString();
    if (desc.size() > 43) desc = desc.substr(0, 40) + "...";
    std::printf("%-44s %12llu %10llu\n", desc.c_str(),
                static_cast<unsigned long long>(compressed.PayloadBytes()),
                static_cast<unsigned long long>(plan.OperatorCount()));
  };
  report(current);
  for (const char* path : steps) {
    auto peeled = PeelPart(current, path);
    if (!peeled.ok()) continue;  // Path may already be terminal.
    current = std::move(*peeled);
    report(current);
  }
  std::printf(
      "\nExpected shape: every peel weakly increases bytes and strictly "
      "decreases plan operators — the paper's ratio-for-ease trade, step by "
      "step.\n");
}

}  // namespace

// E10 is entirely table-driven (its timings are measured inline with
// steady_clock, not via google-benchmark), so it uses a plain main.
int main() {
  ParetoTable("shipped-order dates", gen::ShippedOrderDates(kRows, 150.0, 82));
  ParetoTable("sensor step levels", gen::StepLevels(kRows, 512, 24, 6, 83));
  ParetoTable("zipf categories", gen::ZipfValues(kRows, 512, 1.1, 84));
  DecompositionLadder();
  return 0;
}
