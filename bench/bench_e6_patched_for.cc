// E6 — The L0 patch extension (paper §II-B).
//
// Claim: for data that is "'really' a step function, but with the occasional
// divergent arbitrary-value element", adding patches to the model keeps the
// residual narrow where plain FOR's width explodes. The table sweeps the
// outlier fraction: FOR's bytes jump as soon as one outlier per column
// appears; PFOR degrades smoothly and converges back to FOR when everything
// is an outlier.

#include "bench_common.h"
#include "core/catalog.h"
#include "gen/generators.h"

namespace {

using namespace recomp;
using bench::MustCompress;

constexpr uint64_t kRows = 1u << 21;
constexpr uint64_t kSegment = 1024;

Column<uint32_t> MakeData(double outlier_fraction, uint64_t seed) {
  // Step levels plus occasional wide spikes.
  Column<uint32_t> col = gen::StepLevels(kRows, kSegment, 20, 6, seed);
  Column<uint32_t> spikes =
      gen::OutlierMix(kRows, 1, 28, outlier_fraction, seed + 1);
  for (uint64_t i = 0; i < kRows; ++i) {
    if (spikes[i] > 1) col[i] += spikes[i];
  }
  return col;
}

void PrintTables() {
  bench::Section("E6: FOR vs PFOR bytes across outlier fractions (rows=2^21)");
  std::printf("%-12s %14s %14s %12s %14s\n", "outliers", "FOR bytes",
              "PFOR bytes", "PFOR/FOR", "patches");
  for (double fraction :
       {0.0, 0.0001, 0.001, 0.01, 0.05, 0.2, 0.5, 1.0}) {
    Column<uint32_t> col = MakeData(fraction, 41);
    CompressedColumn plain = MustCompress(AnyColumn(col), MakeFor(kSegment));
    CompressedColumn patched = MustCompress(AnyColumn(col), MakePfor(kSegment));
    const CompressedNode& residual =
        *patched.root().parts.at("residual").sub;
    const uint64_t patches =
        residual.parts.at("patch_positions").column->size();
    std::printf("%-12.4f %14llu %14llu %11.2fx %14llu\n", fraction,
                static_cast<unsigned long long>(plain.PayloadBytes()),
                static_cast<unsigned long long>(patched.PayloadBytes()),
                static_cast<double>(patched.PayloadBytes()) /
                    static_cast<double>(plain.PayloadBytes()),
                static_cast<unsigned long long>(patches));
  }
  std::printf(
      "\nExpected shape: equal at fraction 0; PFOR << FOR through the "
      "small-fraction regime; converging again (no patches chosen) as "
      "outliers dominate.\n");
}

void BM_DecompressPatched(benchmark::State& state) {
  const bool use_pfor = state.range(1) == 1;
  const double fraction = static_cast<double>(state.range(0)) / 10000.0;
  Column<uint32_t> col = MakeData(fraction, 42);
  CompressedColumn compressed = MustCompress(
      AnyColumn(col), use_pfor ? MakePfor(kSegment) : MakeFor(kSegment));
  for (auto _ : state) {
    auto out = Decompress(compressed);
    bench::CheckOk(out.status(), "decompress");
    benchmark::DoNotOptimize(out->size());
  }
  state.SetLabel(std::string(use_pfor ? "PFOR" : "FOR") + " @" +
                 std::to_string(fraction));
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_DecompressPatched)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
