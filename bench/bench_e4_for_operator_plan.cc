// E4 — FOR decompression as a columnar-operator plan (paper Algorithm 2).
//
// Prints the derived plan (the paper's listing: ones, id, ells, ÷, Gather,
// +, with an Unpack for the NS-packed offsets) and prices the strategies:
// naive plan, optimizer-fused plan (Replicate), per-scheme kernels, and the
// single-pass fused kernel.

#include "bench_common.h"
#include "core/catalog.h"
#include "core/fused.h"
#include "core/plan_builder.h"
#include "core/plan_executor.h"
#include "core/plan_optimizer.h"
#include "gen/generators.h"
#include "ops/dispatch.h"

namespace {

using namespace recomp;
using bench::MustCompress;
using bench::ValueOrDie;

constexpr uint64_t kRows = 1u << 22;
constexpr uint64_t kSegment = 1024;

CompressedColumn MakeInput() {
  Column<uint32_t> col = gen::StepLevels(kRows, kSegment, 24, 8, 21);
  return MustCompress(AnyColumn(col), MakeFor(kSegment));
}

void PrintTables() {
  bench::Section("E4: the FOR decompression plan (paper Algorithm 2)");
  CompressedColumn compressed = MakeInput();
  std::printf("descriptor: %s\n\n",
              compressed.Descriptor().ToString().c_str());
  Plan plan = ValueOrDie(BuildDecompressionPlan(compressed), "plan");
  std::printf("%s", plan.ToString().c_str());
  std::printf("operator count: %llu (Algorithm 2 lists 6, +1 for Unpack)\n",
              static_cast<unsigned long long>(plan.OperatorCount()));

  Plan optimized = ValueOrDie(OptimizePlan(plan), "optimize");
  bench::Section("E4: after fusion (id generation + divide + gather -> Replicate)");
  std::printf("%s", optimized.ToString().c_str());

  auto a = ValueOrDie(ExecutePlan(plan, compressed), "naive");
  auto b = ValueOrDie(ExecutePlan(optimized, compressed), "optimized");
  auto c = ValueOrDie(Decompress(compressed), "kernels");
  auto d = ValueOrDie(FusedDecompress(compressed), "fused");
  if (!(a == b && b == c && c == d)) {
    std::fprintf(stderr, "FATAL: strategies disagree\n");
    std::exit(1);
  }
  std::printf("\nall four strategies produce identical columns: OK\n");
}

void BM_ForDecompress(benchmark::State& state) {
  CompressedColumn compressed = MakeInput();
  Plan plan = ValueOrDie(BuildDecompressionPlan(compressed), "plan");
  Plan optimized = ValueOrDie(OptimizePlan(plan), "optimize");
  const char* labels[] = {"operator-plan/naive", "operator-plan/fused-ops",
                          "per-scheme-kernels", "single-pass-fused"};
  for (auto _ : state) {
    Result<AnyColumn> out = [&]() -> Result<AnyColumn> {
      switch (state.range(0)) {
        case 0:
          return ExecutePlan(plan, compressed);
        case 1:
          return ExecutePlan(optimized, compressed);
        case 2:
          return Decompress(compressed);
        default:
          return FusedDecompress(compressed);
      }
    }();
    bench::CheckOk(out.status(), "decompress");
    benchmark::DoNotOptimize(out->size());
  }
  state.SetLabel(labels[state.range(0)]);
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_ForDecompress)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_ForDecompressScalarVsSimd(benchmark::State& state) {
  // The NS unpack inside FOR is the SIMD-sensitive kernel.
  ops::ForceScalar(state.range(0) == 0);
  CompressedColumn compressed = MakeInput();
  for (auto _ : state) {
    auto out = FusedDecompress(compressed);
    bench::CheckOk(out.status(), "decompress");
    benchmark::DoNotOptimize(out->size());
  }
  ops::ForceScalar(false);
  state.SetLabel(state.range(0) == 0 ? "forced-scalar" : "avx2-dispatch");
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_ForDecompressScalarVsSimd)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
