// E1 — Composition beats every single scheme on the paper's intro workload.
//
// Claim (paper §I): on a shipped-orders date column, "applying an RLE scheme
// to the dates, then applying DELTA to the run values, achieves a much
// stronger compression ratio than any single scheme individually."
//
// Table: compression ratio of each classic scheme and of the composite, on
// the dates column at several order rates. Timing: compression and
// decompression throughput of the single vs composite schemes.

#include "bench_common.h"
#include "core/catalog.h"
#include "gen/generators.h"

namespace {

using namespace recomp;
using bench::MustCompress;

constexpr uint64_t kRows = 1u << 20;

struct Contender {
  const char* name;
  SchemeDescriptor descriptor;
};

std::vector<Contender> Contenders() {
  return {
      {"ID", Id()},
      {"NS", Ns()},
      {"VBYTE", VByte()},
      {"DICT-NS", MakeDictNs()},
      {"DELTA-NS", MakeDeltaNs()},
      {"FOR", MakeFor()},
      {"RLE-NS", MakeRleNs()},
      {"RLE-DELTA (composite)", MakeRleDelta()},
  };
}

void PrintTables() {
  bench::Section(
      "E1: scheme vs composite ratio on shipped-order dates "
      "(rows=" + std::to_string(kRows) + ")");
  std::printf("%-22s", "scheme \\ orders/day");
  for (double opd : {20.0, 100.0, 500.0}) std::printf(" %14.0f", opd);
  std::printf("\n");

  for (const Contender& contender : Contenders()) {
    std::printf("%-22s", contender.name);
    for (double orders_per_day : {20.0, 100.0, 500.0}) {
      Column<uint32_t> dates =
          gen::ShippedOrderDates(kRows, orders_per_day, /*seed=*/2018);
      CompressedColumn compressed =
          MustCompress(AnyColumn(dates), contender.descriptor);
      auto back = Decompress(compressed);
      bench::CheckOk(back.status(), contender.name);
      if (!(back->As<uint32_t>() == dates)) {
        std::fprintf(stderr, "FATAL roundtrip mismatch: %s\n", contender.name);
        std::exit(1);
      }
      std::printf(" %13.1fx", compressed.Ratio());
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: the composite's ratio exceeds every single scheme "
      "by an order of magnitude on run-heavy dates.\n");
}

void BM_Compress(benchmark::State& state) {
  const auto contenders = Contenders();
  const Contender& contender = contenders[state.range(0)];
  Column<uint32_t> dates = gen::ShippedOrderDates(kRows, 100.0, 2018);
  const AnyColumn input(dates);
  for (auto _ : state) {
    CompressedColumn compressed = MustCompress(input, contender.descriptor);
    benchmark::DoNotOptimize(compressed.PayloadBytes());
  }
  state.SetLabel(contender.name);
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_Compress)->DenseRange(1, 7)->Unit(benchmark::kMillisecond);

void BM_Decompress(benchmark::State& state) {
  const auto contenders = Contenders();
  const Contender& contender = contenders[state.range(0)];
  Column<uint32_t> dates = gen::ShippedOrderDates(kRows, 100.0, 2018);
  CompressedColumn compressed =
      MustCompress(AnyColumn(dates), contender.descriptor);
  for (auto _ : state) {
    auto back = Decompress(compressed);
    bench::CheckOk(back.status(), contender.name);
    benchmark::DoNotOptimize(back->size());
  }
  state.SetLabel(contender.name);
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_Decompress)->DenseRange(1, 7)->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
