// E14 — Parallel chunk scan: thread-pool execution of chunked operators.
//
// Claim (Sitaridi et al., "Massively-Parallel Lossless Data Decompression";
// ROADMAP north star): independently decodable chunks are exactly what
// unlocks parallel scan throughput. The ExecContext fans per-chunk selection
// and aggregation out over a fixed thread pool with a deterministic ordered
// merge, so results are bit-identical to the sequential path at every thread
// count — which this binary verifies before it times anything.
//
// Table: wall-clock of selection + SUM on a >= 16M-row drifting column,
// swept over 1/2/4/8 threads, with speedup vs the sequential chunked path
// and vs decompress-then-scan. Timing series: the same sweep under
// google-benchmark. On a single-core container the speedups flatten to ~1x;
// the CI runners (and any real multi-core box) show the parallel win.

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>

#include "bench_common.h"
#include "core/analyzer.h"
#include "core/chunked.h"
#include "exec/aggregate.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "util/thread_pool.h"

namespace {

using namespace recomp;
using bench::ValueOrDie;

constexpr uint64_t kRows = 1u << 24;  // 16Mi rows, 64 MiB of uint32.
constexpr uint64_t kChunkRows = 64 * 1024;

/// A drifting column: a run-heavy third, a noisy third, a sorted third.
Column<uint32_t> MakeDriftingColumn() {
  const uint64_t part = kRows / 3;
  Column<uint32_t> col = gen::SortedRuns(part, 60.0, 2, 141);
  Column<uint32_t> noise = gen::Uniform(part, uint64_t{1} << 22, 142);
  col.insert(col.end(), noise.begin(), noise.end());
  for (uint64_t i = 0; col.size() < kRows; ++i) {
    col.push_back((uint32_t{1} << 23) + static_cast<uint32_t>(2 * i));
  }
  return col;
}

/// The shared workload: built once, reused by the tables and every timing
/// series (16M-row auto-chunked compression is too heavy to repeat).
struct Workload {
  Column<uint32_t> plain;
  ChunkedCompressedColumn chunked;
  exec::RangePredicate predicate;
};

const Workload& SharedWorkload() {
  static const Workload* workload = [] {
    auto* w = new Workload();
    w->plain = MakeDriftingColumn();
    // Compress with however many cores the build machine has — this also
    // exercises the parallel compression path end-to-end.
    ThreadPool pool(ThreadPool::DefaultThreadCount());
    w->chunked = ValueOrDie(CompressChunkedAuto(AnyColumn(w->plain),
                                                {kChunkRows}, {},
                                                ExecContext{&pool, 1}),
                            "compress chunked");
    // A predicate overlapping the noisy third and part of the sorted tail:
    // plenty of chunks actually execute, some prune, some emit whole.
    w->predicate = {uint64_t{1} << 21, (uint64_t{1} << 23) + (1u << 20)};
    return w;
  }();
  return *workload;
}

double SecondsOf(const std::function<void()>& fn) {
  // Best of 3: parallel timings on shared CI machines are noisy.
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

void PrintTables() {
  const Workload& w = SharedWorkload();

  bench::Section("E14: parallel chunk scan (rows=2^24, chunk=64Ki)");
  std::printf("column: %llu chunks, %.2fx compressed\n",
              static_cast<unsigned long long>(w.chunked.num_chunks()),
              w.chunked.Ratio());

  // Reference outcomes (sequential) — every parallel result must be
  // bit-identical before its timing means anything.
  auto ref_select = ValueOrDie(exec::SelectCompressed(w.chunked, w.predicate),
                               "sequential select");
  auto ref_sum = ValueOrDie(exec::SumCompressed(w.chunked), "sequential sum");

  const double seq_select = SecondsOf([&] {
    auto r = exec::SelectCompressed(w.chunked, w.predicate);
    bench::CheckOk(r.status(), "select");
  });
  const double seq_sum = SecondsOf([&] {
    auto r = exec::SumCompressed(w.chunked);
    bench::CheckOk(r.status(), "sum");
  });

  // Decompress-then-scan baseline: materialize, then filter/fold the rows.
  const double decompress_select = SecondsOf([&] {
    auto plain = DecompressChunked(w.chunked);
    bench::CheckOk(plain.status(), "decompress");
    const Column<uint32_t>& values = plain->As<uint32_t>();
    Column<uint32_t> positions;
    for (uint64_t i = 0; i < values.size(); ++i) {
      if (values[i] >= w.predicate.lo && values[i] <= w.predicate.hi) {
        positions.push_back(static_cast<uint32_t>(i));
      }
    }
    if (positions.size() != ref_select.positions.size()) {
      bench::CheckOk(Status::Corruption("decompress-then-scan disagrees"),
                     "reference");
    }
  });
  const double decompress_sum = SecondsOf([&] {
    auto plain = DecompressChunked(w.chunked);
    bench::CheckOk(plain.status(), "decompress");
    uint64_t acc = 0;
    for (const uint32_t v : plain->As<uint32_t>()) acc += v;
    if (acc != ref_sum.value) {
      bench::CheckOk(Status::Corruption("decompress-then-sum disagrees"),
                     "reference");
    }
  });

  std::printf("\n%-22s %12s %12s %12s %12s\n", "configuration", "select ms",
              "vs seq", "sum ms", "vs seq");
  std::printf("%-22s %12.2f %12s %12.2f %12s\n", "sequential chunked",
              seq_select * 1e3, "1.00x", seq_sum * 1e3, "1.00x");
  std::printf("%-22s %12.2f %11.2fx %12.2f %11.2fx\n", "decompress-then-scan",
              decompress_select * 1e3, seq_select / decompress_select,
              decompress_sum * 1e3, seq_sum / decompress_sum);

  for (const uint64_t threads : {1ull, 2ull, 4ull, 8ull}) {
    ThreadPool pool(threads);
    const ExecContext ctx{&pool, 1};
    const double par_select = SecondsOf([&] {
      auto r = exec::SelectCompressed(w.chunked, w.predicate, ctx);
      bench::CheckOk(r.status(), "parallel select");
      // Bit-identical to sequential, or the speedup is meaningless.
      if (r->positions != ref_select.positions ||
          r->stats.chunks_pruned != ref_select.stats.chunks_pruned ||
          r->stats.values_decoded != ref_select.stats.values_decoded) {
        bench::CheckOk(Status::Corruption("parallel select disagrees"),
                       "agreement");
      }
    });
    const double par_sum = SecondsOf([&] {
      auto r = exec::SumCompressed(w.chunked, ctx);
      bench::CheckOk(r.status(), "parallel sum");
      if (r->value != ref_sum.value) {
        bench::CheckOk(Status::Corruption("parallel sum disagrees"),
                       "agreement");
      }
    });
    std::printf("%-19s %2llu %12.2f %11.2fx %12.2f %11.2fx\n", "thread pool",
                static_cast<unsigned long long>(threads), par_select * 1e3,
                seq_select / par_select, par_sum * 1e3, seq_sum / par_sum);
  }
  std::printf(
      "\nExpected shape: speedup scales with cores (>= 2x at 4 threads on a "
      ">= 4-core box) because chunks decode independently; every parallel "
      "result above was verified bit-identical to the sequential path.\n");
}

void BM_ParallelSelect(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  const uint64_t threads = static_cast<uint64_t>(state.range(0));
  ThreadPool pool(threads == 0 ? 1 : threads);
  const ExecContext ctx{threads == 0 ? nullptr : &pool, 1};
  for (auto _ : state) {
    auto r = exec::SelectCompressed(w.chunked, w.predicate, ctx);
    bench::CheckOk(r.status(), "select");
    benchmark::DoNotOptimize(r->positions.size());
  }
  state.SetLabel(threads == 0 ? "sequential"
                              : std::to_string(threads) + " threads");
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_ParallelSelect)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelSum(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  const uint64_t threads = static_cast<uint64_t>(state.range(0));
  ThreadPool pool(threads == 0 ? 1 : threads);
  const ExecContext ctx{threads == 0 ? nullptr : &pool, 1};
  for (auto _ : state) {
    auto r = exec::SumCompressed(w.chunked, ctx);
    bench::CheckOk(r.status(), "sum");
    benchmark::DoNotOptimize(r->value);
  }
  state.SetLabel(threads == 0 ? "sequential"
                              : std::to_string(threads) + " threads");
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_ParallelSum)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelDecompress(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  const uint64_t threads = static_cast<uint64_t>(state.range(0));
  ThreadPool pool(threads == 0 ? 1 : threads);
  const ExecContext ctx{threads == 0 ? nullptr : &pool, 1};
  for (auto _ : state) {
    auto r = DecompressChunked(w.chunked, ctx);
    bench::CheckOk(r.status(), "decompress");
    benchmark::DoNotOptimize(r->size());
  }
  state.SetLabel(threads == 0 ? "sequential"
                              : std::to_string(threads) + " threads");
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_ParallelDecompress)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
