// E8 — Enriching the model: piecewise-linear instead of step (paper §II-B).
//
// Claim: "it is appealing to consider piecewise-linear functions, i.e. keep
// an offset from a diagonal line at some slope rather than the offset from a
// horizontal step." On trending data the line model leaves a far narrower
// residual; on flat data the extra slopes column is pure overhead — a
// crossover the table exposes by sweeping the slope.

#include "bench_common.h"
#include "core/catalog.h"
#include "gen/generators.h"

namespace {

using namespace recomp;
using bench::MustCompress;

constexpr uint64_t kRows = 1u << 21;
constexpr uint64_t kSegment = 1024;

void PrintTables() {
  bench::Section("E8: STEP vs PLIN models across slopes (ell=1024, noise=16)");
  std::printf("%-10s %16s %16s %14s %14s\n", "slope", "FOR bytes",
              "LFOR bytes", "FOR resid w", "LFOR resid w");
  for (double slope : {0.0, 0.05, 0.5, 2.0, 8.0, 64.0}) {
    Column<uint32_t> col = gen::LinearTrend(kRows, slope, 16, 61);
    CompressedColumn step = MustCompress(AnyColumn(col), MakeFor(kSegment));
    CompressedColumn line = MustCompress(AnyColumn(col), MakeLfor(kSegment));
    const int step_w = step.root()
                           .parts.at("residual")
                           .sub->scheme.params.width;
    const int line_w = line.root()
                           .parts.at("residual")
                           .sub->scheme.params.width;
    std::printf("%-10.2f %16llu %16llu %14d %14d\n", slope,
                static_cast<unsigned long long>(step.PayloadBytes()),
                static_cast<unsigned long long>(line.PayloadBytes()),
                step_w, line_w);
  }
  std::printf(
      "\nExpected shape: at slope 0 the slopes column makes LFOR slightly "
      "larger; as slope grows, FOR's residual width climbs with "
      "log2(slope*ell) while LFOR's stays at the noise width.\n");

  bench::Section("E8: model enrichment on real-ish mixed curvature");
  // Piecewise curvature: trend + sinusoid-ish bend via varying slope.
  Column<uint32_t> col(kRows);
  for (uint64_t i = 0; i < kRows; ++i) {
    const double x = static_cast<double>(i);
    col[i] = static_cast<uint32_t>(1e6 + 3.0 * x + 2e4 * (x / kRows) * (x / kRows) * 4);
  }
  for (const auto& [name, desc] :
       std::vector<std::pair<const char*, SchemeDescriptor>>{
           {"FOR", MakeFor(kSegment)}, {"LFOR", MakeLfor(kSegment)}}) {
    CompressedColumn compressed = MustCompress(AnyColumn(col), desc);
    std::printf("%-6s %12llu bytes  (%5.1fx)  %s\n", name,
                static_cast<unsigned long long>(compressed.PayloadBytes()),
                compressed.Ratio(),
                compressed.Descriptor().ToString().c_str());
  }
}

void BM_ModelDecompress(benchmark::State& state) {
  const bool use_plin = state.range(0) == 1;
  Column<uint32_t> col = gen::LinearTrend(kRows, 2.0, 16, 62);
  CompressedColumn compressed = MustCompress(
      AnyColumn(col), use_plin ? MakeLfor(kSegment) : MakeFor(kSegment));
  for (auto _ : state) {
    auto out = Decompress(compressed);
    bench::CheckOk(out.status(), "decompress");
    benchmark::DoNotOptimize(out->size());
  }
  state.SetLabel(use_plin ? "MODELED(PLIN)+NS" : "MODELED(STEP)+NS");
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_ModelDecompress)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
