// A2 (decode bandwidth) — the fused decode cascade against the seed's
// materializing decode, in bytes of output per cycle with a memcpy ceiling.
//
// "Decode at memory bandwidth" is the tentpole claim behind the fused
// kernels (core/fused.h): common cascades decompress register-to-register
// in one pass instead of materializing every operator's output. This bench
// makes that a tracked number. For each shape the deterministic table
// reports
//   - fused:    FusedDecompress under the live dispatch (AVX2 when present),
//   - seed:     the materializing per-scheme recursion with every kernel
//               forced scalar — exactly what the tree decoded before the
//               cascade existed,
//   - gather:   the same recursion with the legacy gather-based unpack
//               (widths <= 25) instead of the width-specialized kernels,
//   - memcpy:   a copy of the same output bytes, the bandwidth ceiling.
// Scalar and AVX2 dispatch are asserted bit-identical in-bench before any
// timing, and the gated shapes must decode at >= 2x the seed's bytes/cycle
// whenever AVX2 is live. Run with --json[=PATH] to dump shape -> bytes/cycle
// (BENCH_A2.json by default).

#include <chrono>
#include <cstring>
#include <vector>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

#include "bench_common.h"
#include "core/catalog.h"
#include "core/fused.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "ops/dispatch.h"

namespace {

using namespace recomp;

constexpr uint64_t kValues = uint64_t{1} << 22;  // 16 MiB of u32 output.
constexpr int kRepetitions = 7;
constexpr double kRequiredSpeedup = 2.0;

/// Cycle counter on x86-64; nanoseconds elsewhere (the table's unit label
/// follows suit, and the 2x gates compare like against like either way).
uint64_t TicksNow() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
#endif
}

const char* TickUnit() {
#if defined(__x86_64__)
  return "cycle";
#else
  return "ns";
#endif
}

struct Measurement {
  double bytes_per_tick = 0.0;
  double mbps = 0.0;
};

/// Best-of-kRepetitions measurement of `fn`, which must produce (and
/// consume) `bytes` bytes of output per call.
template <typename Fn>
Measurement MeasureBest(uint64_t bytes, Fn&& fn) {
  fn();  // Warm caches and any lazy dispatch.
  Measurement best;
  for (int r = 0; r < kRepetitions; ++r) {
    const auto wall0 = std::chrono::steady_clock::now();
    const uint64_t t0 = TicksNow();
    fn();
    const uint64_t t1 = TicksNow();
    const auto wall1 = std::chrono::steady_clock::now();
    const double ticks = static_cast<double>(t1 - t0);
    const double seconds =
        std::chrono::duration<double>(wall1 - wall0).count();
    if (ticks > 0) {
      best.bytes_per_tick =
          std::max(best.bytes_per_tick, static_cast<double>(bytes) / ticks);
    }
    if (seconds > 0) {
      best.mbps =
          std::max(best.mbps, static_cast<double>(bytes) / seconds / 1e6);
    }
  }
  return best;
}

struct ShapeCase {
  std::string name;
  AnyColumn data;
  CompressedColumn compressed;
  uint64_t output_bytes = 0;
  bool gated = false;  // Subject to the >= 2x acceptance gate.
};

bool SameColumn(const AnyColumn& a, const AnyColumn& b) {
  if (a.is_packed() || b.is_packed() || a.type() != b.type() ||
      a.size() != b.size()) {
    return false;
  }
  switch (a.type()) {
    case TypeId::kUInt32:
      return std::memcmp(a.As<uint32_t>().data(), b.As<uint32_t>().data(),
                         a.size() * sizeof(uint32_t)) == 0;
    case TypeId::kUInt64:
      return std::memcmp(a.As<uint64_t>().data(), b.As<uint64_t>().data(),
                         a.size() * sizeof(uint64_t)) == 0;
    default:
      return false;
  }
}

uint64_t OutputBytes(const AnyColumn& col) {
  return col.size() *
         (col.type() == TypeId::kUInt64 ? sizeof(uint64_t) : sizeof(uint32_t));
}

ShapeCase MakeCase(std::string name, AnyColumn data,
                   const SchemeDescriptor& desc, bool gated) {
  ShapeCase c;
  c.output_bytes = OutputBytes(data);
  c.compressed = bench::MustCompress(data, desc);
  c.name = std::move(name);
  c.data = std::move(data);
  c.gated = gated;
  return c;
}

std::vector<ShapeCase>& Shapes() {
  static std::vector<ShapeCase>* shapes = [] {
    auto* s = new std::vector<ShapeCase>();
    s->push_back(MakeCase("NS-w13",
                          AnyColumn(gen::Uniform(kValues, 1u << 13, 1)), Ns(),
                          /*gated=*/true));
    s->push_back(MakeCase("NS-w27",
                          AnyColumn(gen::Uniform(kValues, 1u << 27, 2)), Ns(),
                          /*gated=*/false));
    s->push_back(MakeCase(
        "FOR-NS", AnyColumn(gen::StepLevels(kValues, 1024, 28, 6, 3)),
        MakeFor(1024), /*gated=*/true));
    s->push_back(MakeCase("DELTA-ZZ-NS",
                          AnyColumn(gen::SortedRuns(kValues, 1.0, 3, 4)),
                          MakeDeltaNs(), /*gated=*/true));
    s->push_back(MakeCase(
        "PATCHED-NS", AnyColumn(gen::OutlierMix(kValues, 8, 27, 0.01, 5)),
        Patched().With("base", Ns()), /*gated=*/false));
    s->push_back(MakeCase("RLE-NS",
                          AnyColumn(gen::SortedRuns(kValues, 64.0, 3, 6)),
                          MakeRleNs(), /*gated=*/false));
    // u64 via the same delta cascade: small sorted steps, wide values.
    {
      Column<uint64_t> steps = gen::Uniform64(kValues, 8, 7);
      uint64_t acc = uint64_t{1} << 40;
      for (uint64_t i = 0; i < steps.size(); ++i) {
        acc += steps[i] + 1;
        steps[i] = acc;
      }
      s->push_back(MakeCase("DELTA-ZZ-NS-u64", AnyColumn(std::move(steps)),
                            MakeDeltaNs(), /*gated=*/false));
    }
    return s;
  }();
  return *shapes;
}

/// The seed's decode: the materializing recursion with all-scalar kernels
/// (the AVX2 dispatch was not compiled in before the cascade landed).
Result<AnyColumn> SeedDecode(const CompressedColumn& compressed) {
  ops::ForceScalar(true);
  Result<AnyColumn> out = Decompress(compressed);
  ops::ForceScalar(false);
  return out;
}

/// The materializing recursion with the legacy gather-based unpack — the
/// strongest non-fused decode this tree ever shipped.
Result<AnyColumn> GatherDecode(const CompressedColumn& compressed) {
  ops::ForceBaselineUnpack(true);
  Result<AnyColumn> out = Decompress(compressed);
  ops::ForceBaselineUnpack(false);
  return out;
}

void PrintTables() {
  bench::Section(
      "A2: decode bandwidth — fused cascade vs materializing decode");
  std::printf("AVX2 compiled in and supported: %s\n",
              ops::HasAvx2() ? "yes" : "no");

  // The bandwidth ceiling: copying the same output bytes.
  {
    const uint64_t bytes = kValues * sizeof(uint32_t);
    Column<uint32_t> src = gen::Uniform(kValues, ~uint32_t{0}, 11);
    Column<uint32_t> dst(kValues);
    const Measurement m = MeasureBest(bytes, [&] {
      std::memcpy(dst.data(), src.data(), bytes);
      benchmark::DoNotOptimize(dst.data());
    });
    std::printf("%-18s %8.3f bytes/%s  %9.1f MB/s\n", "memcpy",
                m.bytes_per_tick, TickUnit(), m.mbps);
    bench::JsonReport::Instance().Set("memcpy", m.bytes_per_tick);
  }

  std::printf("%-18s %7s %14s %15s %15s %9s\n", "shape", "kernel",
              (std::string("fused B/") + TickUnit()).c_str(), "seed", "gather",
              "speedup");
  for (const ShapeCase& c : Shapes()) {
    // Agreement first: AVX2 dispatch, forced-scalar dispatch, and the
    // reference recursion must all decode to identical bytes.
    const AnyColumn fused =
        bench::ValueOrDie(FusedDecompress(c.compressed), c.name.c_str());
    ops::ForceScalar(true);
    const AnyColumn fused_scalar =
        bench::ValueOrDie(FusedDecompress(c.compressed), c.name.c_str());
    ops::ForceScalar(false);
    const AnyColumn reference =
        bench::ValueOrDie(Decompress(c.compressed), c.name.c_str());
    if (!SameColumn(fused, c.data) || !SameColumn(fused_scalar, c.data) ||
        !SameColumn(reference, c.data)) {
      std::fprintf(stderr, "FATAL %s: scalar/AVX2/reference decodes disagree\n",
                   c.name.c_str());
      std::exit(1);
    }

    const Measurement fused_m = MeasureBest(c.output_bytes, [&] {
      auto out = FusedDecompress(c.compressed);
      bench::CheckOk(out.status(), c.name.c_str());
      benchmark::DoNotOptimize(out->size());
    });
    const Measurement seed_m = MeasureBest(c.output_bytes, [&] {
      auto out = SeedDecode(c.compressed);
      bench::CheckOk(out.status(), c.name.c_str());
      benchmark::DoNotOptimize(out->size());
    });
    const Measurement gather_m = MeasureBest(c.output_bytes, [&] {
      auto out = GatherDecode(c.compressed);
      bench::CheckOk(out.status(), c.name.c_str());
      benchmark::DoNotOptimize(out->size());
    });
    const double speedup =
        seed_m.bytes_per_tick > 0
            ? fused_m.bytes_per_tick / seed_m.bytes_per_tick
            : 0.0;
    const FusedShape shape = ClassifyFusedShape(c.compressed.root());
    std::printf("%-18s %7s %10.3f %17.3f %15.3f %8.2fx\n", c.name.c_str(),
                shape == FusedShape::kGeneric ? "generic" : "fused",
                fused_m.bytes_per_tick, seed_m.bytes_per_tick,
                gather_m.bytes_per_tick, speedup);

    bench::JsonReport::Instance().Set(c.name, fused_m.bytes_per_tick);
    bench::JsonReport::Instance().Set(c.name + ".seed", seed_m.bytes_per_tick);
    bench::JsonReport::Instance().Set(c.name + ".gather",
                                      gather_m.bytes_per_tick);
    bench::JsonReport::Instance().Set(c.name + ".fused_mbps", fused_m.mbps);
    bench::JsonReport::Instance().Set(c.name + ".speedup_vs_seed", speedup);

    if (shape == FusedShape::kGeneric) {
      std::fprintf(stderr, "FATAL %s: expected a fused shape, got generic\n",
                   c.name.c_str());
      std::exit(1);
    }
    if (c.gated && ops::HasAvx2() && speedup < kRequiredSpeedup) {
      std::fprintf(stderr,
                   "FATAL %s: fused decode is %.2fx the seed decode; the "
                   "acceptance gate requires >= %.1fx\n",
                   c.name.c_str(), speedup, kRequiredSpeedup);
      std::exit(1);
    }
  }

  // Instrumentation overhead gate: the fused decode with the metric
  // registry live vs obs::SetEnabled(false) must stay within
  // kMaxObsOverhead on the gated shapes. The decode path's whole cost is
  // two sharded relaxed adds per column, so a failure here means someone
  // put metric work inside a per-value loop.
  bench::Section("A2: observability overhead (obs enabled vs disabled)");
  constexpr double kMaxObsOverhead = 0.02;
  std::printf("%-18s %14s %15s %9s\n", "shape",
              (std::string("on B/") + TickUnit()).c_str(), "off", "on/off");
  for (const ShapeCase& c : Shapes()) {
    if (!c.gated) continue;
    // The paired measurement is noisy at the ±3% level (frequency scaling,
    // neighbors on the core), so one unlucky pair must not fail the build:
    // retry up to 5 times and gate on the best ratio seen — real overhead
    // is deterministic and would depress every repeat, not just one.
    Measurement on{};
    Measurement off{};
    double ratio = 0.0;
    for (int attempt = 0; attempt < 5 && ratio < 1.0 - kMaxObsOverhead;
         ++attempt) {
      on = MeasureBest(c.output_bytes, [&] {
        auto out = FusedDecompress(c.compressed);
        bench::CheckOk(out.status(), c.name.c_str());
        benchmark::DoNotOptimize(out->size());
      });
      obs::SetEnabled(false);
      off = MeasureBest(c.output_bytes, [&] {
        auto out = FusedDecompress(c.compressed);
        bench::CheckOk(out.status(), c.name.c_str());
        benchmark::DoNotOptimize(out->size());
      });
      obs::SetEnabled(true);
      const double attempt_ratio = off.bytes_per_tick > 0
                                       ? on.bytes_per_tick / off.bytes_per_tick
                                       : 1.0;
      if (attempt_ratio > ratio) ratio = attempt_ratio;
    }
    std::printf("%-18s %10.3f %15.3f %8.3fx\n", c.name.c_str(),
                on.bytes_per_tick, off.bytes_per_tick, ratio);
    bench::JsonReport::Instance().Set(c.name + ".obs_overhead_ratio", ratio);
    if (ratio < 1.0 - kMaxObsOverhead) {
      std::fprintf(stderr,
                   "FATAL %s: instrumentation costs %.1f%% of decode "
                   "bandwidth; the gate allows %.0f%%\n",
                   c.name.c_str(), (1.0 - ratio) * 100.0,
                   kMaxObsOverhead * 100.0);
      std::exit(1);
    }
  }

  // Registry snapshot alongside the bench metrics — every decode above just
  // exercised the fused counters, so CI's artifact shows live numbers.
  if (bench::JsonReport::Instance().enabled()) {
    std::FILE* f = std::fopen("METRICS.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL cannot write METRICS.json\n");
      std::exit(1);
    }
    const std::string json = obs::Registry::Get().Snapshot().ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("metrics snapshot: METRICS.json\n");
  }
}

void BM_Memcpy(benchmark::State& state) {
  const uint64_t bytes = kValues * sizeof(uint32_t);
  Column<uint32_t> src = gen::Uniform(kValues, ~uint32_t{0}, 11);
  Column<uint32_t> dst(kValues);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), bytes);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetLabel("memcpy ceiling");
  bench::SetThroughput(state, bytes);
}
BENCHMARK(BM_Memcpy);

void BM_FusedDecode(benchmark::State& state) {
  const ShapeCase& c = Shapes()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    auto out = FusedDecompress(c.compressed);
    bench::CheckOk(out.status(), c.name.c_str());
    benchmark::DoNotOptimize(out->size());
  }
  state.SetLabel(c.name + " fused");
  bench::SetThroughput(state, c.output_bytes);
}

void BM_SeedDecode(benchmark::State& state) {
  const ShapeCase& c = Shapes()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    auto out = SeedDecode(c.compressed);
    bench::CheckOk(out.status(), c.name.c_str());
    benchmark::DoNotOptimize(out->size());
  }
  state.SetLabel(c.name + " seed");
  bench::SetThroughput(state, c.output_bytes);
}

BENCHMARK(BM_FusedDecode)->DenseRange(0, 6);
BENCHMARK(BM_SeedDecode)->DenseRange(0, 6);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
