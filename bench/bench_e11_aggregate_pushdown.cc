// E11 — No line between decompression and query execution (paper Lessons 1).
//
// Aggregates computed *inside* the compressed forms: SUM over RLE is a dot
// product of lengths and values (work proportional to runs, not rows); SUM
// over FOR is ref-mass plus residual-mass; MIN/MAX over DICT read code
// extrema. The table verifies every pushdown against decompress-then-
// aggregate; the timings price pushdown vs materialization.

#include "bench_common.h"
#include "core/catalog.h"
#include "exec/aggregate.h"
#include "gen/generators.h"
#include "ops/reduce.h"

namespace {

using namespace recomp;
using bench::MustCompress;
using bench::ValueOrDie;

constexpr uint64_t kRows = 1u << 22;

struct Case {
  const char* name;
  SchemeDescriptor descriptor;
  Column<uint32_t> column;
};

std::vector<Case> Cases() {
  std::vector<Case> cases;
  cases.push_back({"RLE over runs", MakeRle(),
                   gen::SortedRuns(kRows, 64.0, 3, 91)});
  cases.push_back({"FOR over step levels", MakeFor(1024),
                   gen::StepLevels(kRows, 1024, 24, 6, 92)});
  cases.push_back({"DICT over zipf", MakeDictNs(),
                   gen::ZipfValues(kRows, 1024, 1.1, 93)});
  return cases;
}

void PrintTables() {
  bench::Section("E11: aggregate pushdown correctness and strategies");
  std::printf("%-22s %-12s %22s %10s %10s\n", "workload", "aggregate",
              "value", "strategy", "check");
  for (const Case& c : Cases()) {
    CompressedColumn compressed = MustCompress(AnyColumn(c.column),
                                               c.descriptor);
    const uint64_t ref_sum = ops::Sum(c.column);
    const uint64_t ref_min = *ops::Min(c.column);
    const uint64_t ref_max = *ops::Max(c.column);

    auto sum = ValueOrDie(exec::SumCompressed(compressed), "sum");
    auto min = ValueOrDie(exec::MinCompressed(compressed), "min");
    auto max = ValueOrDie(exec::MaxCompressed(compressed), "max");
    const struct {
      const char* name;
      uint64_t got, want;
      exec::Strategy strategy;
    } rows[] = {{"SUM", sum.value, ref_sum, sum.strategy},
                {"MIN", min.value, ref_min, min.strategy},
                {"MAX", max.value, ref_max, max.strategy}};
    for (const auto& row : rows) {
      std::printf("%-22s %-12s %22llu %10s %10s\n", c.name, row.name,
                  static_cast<unsigned long long>(row.got),
                  exec::StrategyName(row.strategy), row.got == row.want ? "ok" : "FAIL");
      if (row.got != row.want) std::exit(1);
    }
  }
  std::printf(
      "\nExpected shape: run/dictionary pushdowns do work proportional to "
      "runs/codes, not rows — visible in the timings below.\n");
}

void BM_Sum(benchmark::State& state) {
  auto cases = Cases();
  const Case& c = cases[static_cast<size_t>(state.range(0))];
  const bool pushdown = state.range(1) == 1;
  CompressedColumn compressed = MustCompress(AnyColumn(c.column),
                                             c.descriptor);
  for (auto _ : state) {
    if (pushdown) {
      auto sum = exec::SumCompressed(compressed);
      bench::CheckOk(sum.status(), "sum");
      benchmark::DoNotOptimize(sum->value);
    } else {
      auto column = Decompress(compressed);
      bench::CheckOk(column.status(), "decompress");
      benchmark::DoNotOptimize(ops::Sum(column->As<uint32_t>()));
    }
  }
  state.SetLabel(std::string(c.name) +
                 (pushdown ? " / pushdown" : " / decompress+scan"));
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_Sum)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
