// Shared helpers for the experiment benchmarks (E1..E11, DESIGN.md §3).
//
// Every binary prints (a) a deterministic paper-style table computed before
// any timing, then (b) google-benchmark timing series. Binaries exit
// non-zero if a structural expectation (e.g. a roundtrip) fails, so the
// bench suite doubles as an integration check.

#ifndef RECOMP_BENCH_BENCH_COMMON_H_
#define RECOMP_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.h"
#include "util/result.h"

namespace recomp::bench {

/// Prints a rule line and a section title.
inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Aborts the binary with a message when a Result/Status is not OK
/// (benchmarks must not time broken configurations).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).ValueOrDie();
}

/// Compresses or dies; returns the envelope.
inline CompressedColumn MustCompress(const AnyColumn& input,
                                     const SchemeDescriptor& desc) {
  return ValueOrDie(Compress(input, desc), desc.ToString().c_str());
}

/// Sets bytes-per-second throughput (uncompressed bytes pushed per
/// iteration) on a benchmark state.
inline void SetThroughput(benchmark::State& state, uint64_t bytes) {
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}

}  // namespace recomp::bench

/// Standard main: deterministic tables first, then timing.
#define RECOMP_BENCH_MAIN(print_tables)                       \
  int main(int argc, char** argv) {                           \
    print_tables();                                           \
    benchmark::Initialize(&argc, argv);                       \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                               \
    }                                                         \
    benchmark::RunSpecifiedBenchmarks();                      \
    benchmark::Shutdown();                                    \
    return 0;                                                 \
  }

#endif  // RECOMP_BENCH_BENCH_COMMON_H_
