// Shared helpers for the experiment benchmarks (E1..E11, DESIGN.md §3).
//
// Every binary prints (a) a deterministic paper-style table computed before
// any timing, then (b) google-benchmark timing series. Binaries exit
// non-zero if a structural expectation (e.g. a roundtrip) fails, so the
// bench suite doubles as an integration check.

#ifndef RECOMP_BENCH_BENCH_COMMON_H_
#define RECOMP_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/pipeline.h"
#include "util/result.h"

namespace recomp::bench {

/// Prints a rule line and a section title.
inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Aborts the binary with a message when a Result/Status is not OK
/// (benchmarks must not time broken configurations).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).ValueOrDie();
}

/// Compresses or dies; returns the envelope.
inline CompressedColumn MustCompress(const AnyColumn& input,
                                     const SchemeDescriptor& desc) {
  return ValueOrDie(Compress(input, desc), desc.ToString().c_str());
}

/// Sets bytes-per-second throughput (uncompressed bytes pushed per
/// iteration) on a benchmark state.
inline void SetThroughput(benchmark::State& state, uint64_t bytes) {
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}

/// Flat metric sink for machine-readable bench output. Metrics set during
/// the deterministic tables are written as one JSON object (string key →
/// number) when the binary runs with `--json[=PATH]`; without the flag the
/// report is a no-op.
class JsonReport {
 public:
  static JsonReport& Instance() {
    static JsonReport report;
    return report;
  }

  void Enable(std::string path) {
    enabled_ = true;
    path_ = std::move(path);
  }

  bool enabled() const { return enabled_; }

  void Set(const std::string& key, double value) { metrics_[key] = value; }

  /// Writes the collected metrics; dies if the file cannot be written so CI
  /// never mistakes a missing report for an empty one.
  void Write() const {
    if (!enabled_) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL cannot write %s\n", path_.c_str());
      std::exit(1);
    }
    std::fprintf(f, "{");
    bool first = true;
    for (const auto& [key, value] : metrics_) {
      std::fprintf(f, "%s\n  \"%s\": %.6f", first ? "" : ",", key.c_str(),
                   value);
      first = false;
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("JSON report: %s (%zu metrics)\n", path_.c_str(),
                metrics_.size());
  }

 private:
  bool enabled_ = false;
  std::string path_;
  std::map<std::string, double> metrics_;
};

/// Consumes `--json[=PATH]` from argv before google-benchmark sees it
/// (benchmark::Initialize rejects flags it does not recognize). PATH
/// defaults to `default_path`.
inline void StripJsonFlag(int* argc, char** argv, const char* default_path) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      JsonReport::Instance().Enable(default_path);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      JsonReport::Instance().Enable(argv[i] + 7);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

}  // namespace recomp::bench

/// Standard main: deterministic tables first, then timing. Accepts
/// `--json[=PATH]` (default BENCH_A2.json) to dump metrics recorded via
/// JsonReport during the tables.
#define RECOMP_BENCH_MAIN(print_tables)                                \
  int main(int argc, char** argv) {                                    \
    recomp::bench::StripJsonFlag(&argc, argv, "BENCH_A2.json");        \
    print_tables();                                                    \
    recomp::bench::JsonReport::Instance().Write();                     \
    benchmark::Initialize(&argc, argv);                                \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {          \
      return 1;                                                        \
    }                                                                  \
    benchmark::RunSpecifiedBenchmarks();                               \
    benchmark::Shutdown();                                             \
    return 0;                                                          \
  }

#endif  // RECOMP_BENCH_BENCH_COMMON_H_
