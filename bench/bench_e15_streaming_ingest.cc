// E15 — Streaming ingest: appendable chunked columns under load.
//
// Claim (ROADMAP "Appends / streaming ingest"; cf. the recompression-under-
// load pressure in "Reducing Storage in Large-Scale Photo Sharing Services
// using Recompression"): with the tail chunk sealed off the ingest path —
// analyzer choice + compression running as background jobs on the shared
// ExecContext pool — append throughput decouples from compression cost, and
// snapshot scans stay cheap because sealed chunks are shared by reference
// and only the tail rows are copied.
//
// Tables: (a) append+flush wall-clock over chunk sizes × pool threads, with
// ingest-only (appends, compression in background) separated from drain
// (Flush waiting on the last seal jobs); (b) scan-freshness latency —
// Snapshot() + range select on a live column at varying tail fill. Timing
// series: appends, snapshot+select, and parallel DeserializeChunked. Every
// timed configuration is first verified against the statically compressed
// oracle.

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>

#include "bench_common.h"
#include "core/chunked.h"
#include "core/serialize.h"
#include "exec/aggregate.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "store/appendable_column.h"
#include "util/thread_pool.h"

namespace {

using namespace recomp;
using bench::ValueOrDie;

constexpr uint64_t kRows = 1u << 22;  // 4Mi rows, 16 MiB of uint32.
constexpr uint64_t kBatchRows = 16 * 1024;

/// A drifting column: a run-heavy third, a noisy third, a sorted third.
Column<uint32_t> MakeDriftingColumn() {
  const uint64_t part = kRows / 3;
  Column<uint32_t> col = gen::SortedRuns(part, 60.0, 2, 151);
  Column<uint32_t> noise = gen::Uniform(part, uint64_t{1} << 22, 152);
  col.insert(col.end(), noise.begin(), noise.end());
  for (uint64_t i = 0; col.size() < kRows; ++i) {
    col.push_back((uint32_t{1} << 23) + static_cast<uint32_t>(2 * i));
  }
  return col;
}

const Column<uint32_t>& SharedRows() {
  static const Column<uint32_t>* rows = new Column<uint32_t>(
      MakeDriftingColumn());
  return *rows;
}

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Appends SharedRows() in kBatchRows batches and flushes; reports ingest
/// seconds (appends only) and drain seconds (Flush), verifying the result.
struct IngestRun {
  double ingest_seconds = 0;
  double drain_seconds = 0;
};

IngestRun RunIngest(uint64_t chunk_rows, ThreadPool* pool,
                    uint64_t reference_sum) {
  const Column<uint32_t>& rows = SharedRows();
  const ExecContext ctx{pool, 1};
  store::AppendableColumn column(TypeId::kUInt32, {chunk_rows}, ctx);

  IngestRun run;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t at = 0; at < rows.size(); at += kBatchRows) {
    const uint64_t end = std::min<uint64_t>(rows.size(), at + kBatchRows);
    Column<uint32_t> batch(rows.begin() + at, rows.begin() + end);
    bench::CheckOk(column.AppendBatch(AnyColumn(batch)), "append");
  }
  run.ingest_seconds = SecondsSince(start);
  start = std::chrono::steady_clock::now();
  bench::CheckOk(column.Flush(), "flush");
  run.drain_seconds = SecondsSince(start);

  // The flushed column must agree with the oracle before timing means
  // anything (SUM is a full-column checksum here).
  auto snap = ValueOrDie(column.Snapshot(), "snapshot");
  auto sum = ValueOrDie(exec::SumCompressed(snap.chunked()), "sum");
  if (sum.value != reference_sum) {
    bench::CheckOk(Status::Corruption("ingested column disagrees"), "verify");
  }
  return run;
}

void PrintTables() {
  const Column<uint32_t>& rows = SharedRows();
  uint64_t reference_sum = 0;
  for (const uint32_t v : rows) reference_sum += v;

  bench::Section("E15: streaming ingest (rows=2^22, batches of 16Ki)");

  std::printf("\n%-12s %8s %12s %12s %12s %14s\n", "chunk rows", "threads",
              "ingest ms", "drain ms", "total ms", "ingest MB/s");
  for (const uint64_t chunk_rows : {16384ull, 65536ull, 262144ull}) {
    for (const uint64_t threads : {0ull, 1ull, 2ull, 4ull}) {
      ThreadPool pool(threads);
      const IngestRun run =
          RunIngest(chunk_rows, threads == 0 ? nullptr : &pool, reference_sum);
      const double mb = static_cast<double>(rows.size() * sizeof(uint32_t)) /
                        (1024.0 * 1024.0);
      std::printf("%-12llu %8llu %12.2f %12.2f %12.2f %14.1f\n",
                  static_cast<unsigned long long>(chunk_rows),
                  static_cast<unsigned long long>(threads),
                  run.ingest_seconds * 1e3, run.drain_seconds * 1e3,
                  (run.ingest_seconds + run.drain_seconds) * 1e3,
                  mb / run.ingest_seconds);
    }
  }
  std::printf(
      "\nExpected shape: with 0 threads every chunk compresses inline on the "
      "appending thread (ingest ms includes compression); with a pool the "
      "ingest column drops toward memcpy speed and compression drains in "
      "the background.\n");

  // Scan freshness: snapshot + select latency on a live column whose tail
  // is partially filled.
  bench::Section("E15: scan freshness (64Ki chunks, 4 pool threads)");
  ThreadPool pool(4);
  const ExecContext ctx{&pool, 1};
  const exec::RangePredicate predicate{uint64_t{1} << 21,
                                       (uint64_t{1} << 23) + (1u << 20)};
  std::printf("\n%-16s %12s %12s %12s\n", "tail fill", "snapshot us",
              "select ms", "matches");
  for (const double fill : {0.0, 0.25, 0.75}) {
    store::AppendableColumn column(TypeId::kUInt32, {65536}, ctx);
    const uint64_t keep =
        (kRows / 65536 - 1) * 65536 +
        static_cast<uint64_t>(fill * 65536);
    Column<uint32_t> prefix(rows.begin(), rows.begin() + keep);
    bench::CheckOk(column.AppendBatch(AnyColumn(prefix)), "append");
    column.WaitForSeals();

    // Best of 5: snapshot latency is microseconds.
    double best_snap = 1e100, best_select = 1e100;
    uint64_t matches = 0;
    for (int rep = 0; rep < 5; ++rep) {
      auto start = std::chrono::steady_clock::now();
      auto snap = ValueOrDie(column.Snapshot(), "snapshot");
      best_snap = std::min(best_snap, SecondsSince(start));
      start = std::chrono::steady_clock::now();
      auto selection = ValueOrDie(
          exec::SelectCompressed(snap.chunked(), predicate, ctx), "select");
      best_select = std::min(best_select, SecondsSince(start));
      matches = selection.positions.size();
    }
    std::printf("%-16.2f %12.1f %12.2f %12llu\n", fill, best_snap * 1e6,
                best_select * 1e3, static_cast<unsigned long long>(matches));
  }
  std::printf(
      "\nExpected shape: snapshot cost stays flat in column size (sealed "
      "chunks are shared by reference); only the tail rows are copied, so "
      "latency grows with tail fill, not with history.\n");
}

void BM_AppendFlush(benchmark::State& state) {
  const uint64_t threads = static_cast<uint64_t>(state.range(0));
  uint64_t reference_sum = 0;
  for (const uint32_t v : SharedRows()) reference_sum += v;
  for (auto _ : state) {
    ThreadPool pool(threads);
    const IngestRun run =
        RunIngest(65536, threads == 0 ? nullptr : &pool, reference_sum);
    benchmark::DoNotOptimize(run.ingest_seconds);
  }
  state.SetLabel(threads == 0 ? "inline seal"
                              : std::to_string(threads) + " threads");
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_AppendFlush)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotSelect(benchmark::State& state) {
  const Column<uint32_t>& rows = SharedRows();
  ThreadPool pool(4);
  const ExecContext ctx{&pool, 1};
  store::AppendableColumn column(TypeId::kUInt32, {65536}, ctx);
  // Half-full tail: the live-scan steady state.
  Column<uint32_t> prefix(rows.begin(), rows.begin() + kRows - 32768);
  bench::CheckOk(column.AppendBatch(AnyColumn(prefix)), "append");
  column.WaitForSeals();
  const exec::RangePredicate predicate{uint64_t{1} << 21,
                                       (uint64_t{1} << 23) + (1u << 20)};
  for (auto _ : state) {
    auto snap = ValueOrDie(column.Snapshot(), "snapshot");
    auto selection = ValueOrDie(
        exec::SelectCompressed(snap.chunked(), predicate, ctx), "select");
    benchmark::DoNotOptimize(selection.positions.size());
  }
  bench::SetThroughput(state, (kRows - 32768) * sizeof(uint32_t));
}
BENCHMARK(BM_SnapshotSelect)->Unit(benchmark::kMillisecond);

void BM_ParallelDeserialize(benchmark::State& state) {
  const uint64_t threads = static_cast<uint64_t>(state.range(0));
  static const std::vector<uint8_t>* buffer = [] {
    auto chunked = ValueOrDie(
        CompressChunkedAuto(AnyColumn(SharedRows()), {65536}),
        "compress");
    return new std::vector<uint8_t>(
        ValueOrDie(Serialize(chunked), "serialize"));
  }();
  ThreadPool pool(threads == 0 ? 1 : threads);
  const ExecContext ctx{threads == 0 ? nullptr : &pool, 1};
  for (auto _ : state) {
    auto restored = ValueOrDie(DeserializeChunked(*buffer, ctx), "parse");
    benchmark::DoNotOptimize(restored.num_chunks());
  }
  state.SetLabel(threads == 0 ? "sequential"
                              : std::to_string(threads) + " threads");
  bench::SetThroughput(state, buffer->size());
}
BENCHMARK(BM_ParallelDeserialize)->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
