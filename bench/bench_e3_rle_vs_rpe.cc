// E3 — RPE: trading compression ratio for decompression speed (paper §II-A).
//
// Claim: holding run_positions instead of lengths removes the integration
// (PrefixSum) from decompression, at no ratio cost before packing and a
// modest cost after packing (positions need bits(n), lengths only
// bits(max_run)). This bench sweeps run lengths for the ratio side and
// prices decompression of both forms — including RPE obtained from RLE *by
// peeling*, never recompressing.

#include "bench_common.h"
#include "core/catalog.h"
#include "core/fused.h"
#include "core/plan_builder.h"
#include "core/plan_executor.h"
#include "core/rewrite.h"
#include "gen/generators.h"

namespace {

using namespace recomp;
using bench::MustCompress;
using bench::ValueOrDie;

constexpr uint64_t kRows = 1u << 22;

void PrintTables() {
  bench::Section("E3: RLE vs RPE footprint across run lengths (rows=2^22)");
  std::printf("%-14s %16s %16s %16s %10s\n", "avg run len", "RLE-NS bytes",
              "RPE-NS bytes", "overhead", "plan ops");
  for (double run_length : {2.0, 8.0, 32.0, 128.0, 512.0}) {
    Column<uint32_t> col = gen::SortedRuns(kRows, run_length, 3, 12);
    // Packed RLE vs packed RPE (positions NS'd instead of DELTA+NS'd).
    CompressedColumn rle = MustCompress(AnyColumn(col), MakeRleNs());
    CompressedColumn rpe = MustCompress(
        AnyColumn(col),
        Rpe().With("positions", Ns()).With("values", Ns()));
    Plan rle_plan = ValueOrDie(BuildDecompressionPlan(rle), "plan");
    Plan rpe_plan = ValueOrDie(BuildDecompressionPlan(rpe), "plan");
    std::printf("%-14.0f %16llu %16llu %15.2f%% %4llu vs %llu\n", run_length,
                static_cast<unsigned long long>(rle.PayloadBytes()),
                static_cast<unsigned long long>(rpe.PayloadBytes()),
                100.0 * (static_cast<double>(rpe.PayloadBytes()) /
                             static_cast<double>(rle.PayloadBytes()) -
                         1.0),
                static_cast<unsigned long long>(rle_plan.OperatorCount()),
                static_cast<unsigned long long>(rpe_plan.OperatorCount()));
  }
  std::printf(
      "\nExpected shape: RPE pays a bounded byte overhead (bits(n) vs "
      "bits(max_run) per run) and always saves one PrefixSum.\n");

  bench::Section("E3: unpacked forms are byte-identical to peeled RLE");
  Column<uint32_t> col = gen::SortedRuns(1u << 18, 32.0, 3, 13);
  CompressedColumn rle = MustCompress(AnyColumn(col), MakeRle());
  CompressedColumn peeled = ValueOrDie(PeelPart(rle, "positions"), "peel");
  CompressedColumn direct = MustCompress(AnyColumn(col), Rpe());
  const bool identical =
      *peeled.root().parts.at("positions").column ==
          *direct.root().parts.at("positions").column &&
      *peeled.root().parts.at("values").column ==
          *direct.root().parts.at("values").column;
  std::printf("PeelPart(RLE, positions) == Compress(RPE): %s\n",
              identical ? "byte-identical" : "MISMATCH");
  if (!identical) std::exit(1);
}

void BM_DecompressViaPlan(benchmark::State& state) {
  const bool use_rpe = state.range(0) == 1;
  Column<uint32_t> col = gen::SortedRuns(kRows, 32.0, 3, 14);
  CompressedColumn rle = MustCompress(AnyColumn(col), MakeRle());
  CompressedColumn compressed =
      use_rpe ? ValueOrDie(PeelPart(rle, "positions"), "peel") : rle.Clone();
  Plan plan = ValueOrDie(BuildDecompressionPlan(compressed), "plan");
  for (auto _ : state) {
    auto out = ExecutePlan(plan, compressed);
    bench::CheckOk(out.status(), "decompress");
    benchmark::DoNotOptimize(out->size());
  }
  state.SetLabel(use_rpe ? "RPE (one fewer PrefixSum)" : "RLE");
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_DecompressViaPlan)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_DecompressFusedKernels(benchmark::State& state) {
  const bool use_rpe = state.range(0) == 1;
  Column<uint32_t> col = gen::SortedRuns(kRows, 32.0, 3, 14);
  CompressedColumn rle = MustCompress(AnyColumn(col), MakeRle());
  CompressedColumn compressed =
      use_rpe ? ValueOrDie(PeelPart(rle, "positions"), "peel") : rle.Clone();
  for (auto _ : state) {
    auto out = FusedDecompress(compressed);
    bench::CheckOk(out.status(), "decompress");
    benchmark::DoNotOptimize(out->size());
  }
  state.SetLabel(use_rpe ? "RPE" : "RLE");
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_DecompressFusedKernels)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
