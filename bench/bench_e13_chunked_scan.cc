// E13 — Chunked columns: per-chunk scheme selection and zone-map pushdown.
//
// Claim (ROADMAP north star + Slesarev et al.): real columns drift, so
// choosing one composition per *chunk* beats one per column on ratio, and
// chunk zone maps prune whole chunks from selections before any per-chunk
// strategy runs.
//
// Table 1: footprint of whole-column auto choice vs per-chunk auto choice on
// a drifting column. Table 2: zone-map pruning counts under a selectivity
// sweep. Timing: chunked vs whole-column selection.

#include <algorithm>

#include "bench_common.h"
#include "core/analyzer.h"
#include "core/catalog.h"
#include "core/chunked.h"
#include "exec/selection.h"
#include "gen/generators.h"

namespace {

using namespace recomp;
using bench::ValueOrDie;

constexpr uint64_t kRows = 1u << 21;
constexpr uint64_t kChunkRows = 64 * 1024;

/// A drifting column: a run-heavy third, a noisy third, a sorted third.
Column<uint32_t> MakeDriftingColumn() {
  const uint64_t part = kRows / 3;
  Column<uint32_t> col = gen::SortedRuns(part, 60.0, 2, 131);
  Column<uint32_t> noise = gen::Uniform(part, uint64_t{1} << 22, 132);
  col.insert(col.end(), noise.begin(), noise.end());
  for (uint64_t i = 0; col.size() < kRows; ++i) {
    col.push_back((uint32_t{1} << 23) + static_cast<uint32_t>(2 * i));
  }
  return col;
}

void PrintTables() {
  const Column<uint32_t> col = MakeDriftingColumn();
  const AnyColumn input(col);

  bench::Section("E13: whole-column vs per-chunk scheme choice (rows=2^21)");
  auto whole_desc = ValueOrDie(ChooseScheme(input), "choose whole");
  CompressedColumn whole =
      ValueOrDie(Compress(input, whole_desc), "compress whole");
  ChunkedCompressedColumn chunked =
      ValueOrDie(CompressChunkedAuto(input, {kChunkRows}), "compress chunked");
  std::printf("%-22s %14s %10s %s\n", "strategy", "payload", "ratio",
              "descriptor(s)");
  std::printf("%-22s %14llu %9.2fx %s\n", "whole-column",
              static_cast<unsigned long long>(whole.PayloadBytes()),
              whole.Ratio(), whole.Descriptor().ToString().c_str());
  std::printf("%-22s %14llu %9.2fx %llu chunks\n", "per-chunk",
              static_cast<unsigned long long>(chunked.PayloadBytes()),
              chunked.Ratio(),
              static_cast<unsigned long long>(chunked.num_chunks()));
  std::printf(
      "\nExpected shape: the per-chunk choice matches each regime (RLE on "
      "runs, NS/FOR on noise, DELTA on the sorted tail) and its payload is "
      "no larger than the single whole-column compromise.\n");

  bench::Section("E13: zone-map pruning under a selectivity sweep");
  std::printf("%-14s %8s %8s %8s %8s %16s %10s\n", "predicate", "chunks",
              "pruned", "full", "exec", "values decoded", "matches");
  const uint64_t sorted_base = uint64_t{1} << 23;
  const struct {
    const char* name;
    exec::RangePredicate pred;
  } sweeps[] = {
      {"point-ish", {sorted_base + 1000, sorted_base + 1040}},
      {"narrow", {sorted_base, sorted_base + (1u << 16)}},
      {"third", {sorted_base, ~uint64_t{0}}},
      {"everything", {0, ~uint64_t{0}}},
  };
  for (const auto& sweep : sweeps) {
    auto result = ValueOrDie(exec::SelectCompressed(chunked, sweep.pred),
                             "chunked select");
    std::printf("%-14s %8llu %8llu %8llu %8llu %16llu %10zu\n", sweep.name,
                static_cast<unsigned long long>(result.stats.chunks_total),
                static_cast<unsigned long long>(result.stats.chunks_pruned),
                static_cast<unsigned long long>(result.stats.chunks_full),
                static_cast<unsigned long long>(result.stats.chunks_executed),
                static_cast<unsigned long long>(result.stats.values_decoded),
                result.positions.size());
  }
  std::printf(
      "\nExpected shape: selective predicates prune most chunks outright; "
      "covering predicates emit whole chunks from zone maps without decoding "
      "a value.\n");
}

void BM_ChunkedSelection(benchmark::State& state) {
  const bool use_chunked = state.range(0) == 1;
  const Column<uint32_t> col = MakeDriftingColumn();
  const AnyColumn input(col);
  auto whole_desc = ValueOrDie(ChooseScheme(input), "choose whole");
  CompressedColumn whole =
      ValueOrDie(Compress(input, whole_desc), "compress whole");
  ChunkedCompressedColumn chunked =
      ValueOrDie(CompressChunkedAuto(input, {kChunkRows}), "compress chunked");
  const uint64_t sorted_base = uint64_t{1} << 23;
  const exec::RangePredicate pred{sorted_base, sorted_base + (1u << 16)};
  for (auto _ : state) {
    if (use_chunked) {
      auto result = exec::SelectCompressed(chunked, pred);
      bench::CheckOk(result.status(), "chunked select");
      benchmark::DoNotOptimize(result->positions.size());
    } else {
      auto result = exec::SelectCompressed(whole, pred);
      bench::CheckOk(result.status(), "whole select");
      benchmark::DoNotOptimize(result->positions.size());
    }
  }
  state.SetLabel(use_chunked ? "chunked+zone-maps" : "whole-column");
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_ChunkedSelection)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
