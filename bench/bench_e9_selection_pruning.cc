// E9 — The model accelerates selections; approximate answers carry proven
// bounds (paper §II-B).
//
// Claim: "the rough correspondence of the column data to a simple model can
// be used to speed up selections (e.g. range queries) and joins, or in the
// context of approximate or gradual-refinement query processing."
//
// Table 1: selectivity sweep — segments skipped / decoded under pruned
// selection vs the full decompress-and-scan. Table 2: gradual refinement of
// an approximate SUM. Timing: pruned vs scan selection across
// selectivities.

#include <algorithm>

#include "bench_common.h"
#include "core/catalog.h"
#include "exec/approx.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "ops/reduce.h"

namespace {

using namespace recomp;
using bench::MustCompress;
using bench::ValueOrDie;

constexpr uint64_t kRows = 1u << 22;
constexpr uint64_t kSegment = 1024;

CompressedColumn MakeInput() {
  Column<uint32_t> col = gen::StepLevels(kRows, kSegment, 24, 8, 71);
  return MustCompress(AnyColumn(col), MakeFor(kSegment));
}

/// Predicate hitting roughly `selectivity` of the level domain.
exec::RangePredicate PredicateFor(double selectivity) {
  const uint64_t domain = uint64_t{1} << 24;
  const uint64_t span = static_cast<uint64_t>(selectivity * domain);
  return {domain / 3, domain / 3 + span};
}

void PrintTables() {
  bench::Section("E9: segment pruning under a selectivity sweep (rows=2^22)");
  CompressedColumn compressed = MakeInput();
  std::printf("%-14s %10s %10s %10s %16s %10s\n", "selectivity", "skipped",
              "full", "partial", "values decoded", "matches");
  for (double selectivity : {0.0001, 0.001, 0.01, 0.1, 0.5, 1.0}) {
    auto result =
        exec::SelectCompressed(compressed, PredicateFor(selectivity));
    bench::CheckOk(result.status(), "select");
    std::printf("%-14.4f %10llu %10llu %10llu %16llu %10zu\n", selectivity,
                static_cast<unsigned long long>(result->stats.segments_skipped),
                static_cast<unsigned long long>(result->stats.segments_full),
                static_cast<unsigned long long>(result->stats.segments_partial),
                static_cast<unsigned long long>(result->stats.values_decoded),
                result->positions.size());
  }
  std::printf(
      "\nExpected shape: at low selectivity nearly every segment is skipped "
      "and almost no residual bits are decoded; decoded values grow with "
      "selectivity until pruning stops helping.\n");

  bench::Section("E9: gradual refinement of SUM from the model");
  auto column = ValueOrDie(Decompress(compressed), "decompress");
  const uint64_t exact = ops::Sum(column.As<uint32_t>());
  std::printf("exact sum = %llu\n", static_cast<unsigned long long>(exact));
  std::printf("%-20s %22s %22s %14s\n", "refined segments", "lower", "upper",
              "rel err");
  auto initial = ValueOrDie(exec::ApproximateSum(compressed), "approx");
  for (uint64_t k :
       {uint64_t{0}, initial.total_segments / 16, initial.total_segments / 4,
        initial.total_segments}) {
    auto refined = ValueOrDie(exec::RefineSum(compressed, k), "refine");
    if (refined.lower > exact || refined.upper < exact) {
      std::fprintf(stderr, "FATAL: bound violation\n");
      std::exit(1);
    }
    std::printf("%8llu / %-9llu %22llu %22llu %13.5f%%\n",
                static_cast<unsigned long long>(refined.refined_segments),
                static_cast<unsigned long long>(refined.total_segments),
                static_cast<unsigned long long>(refined.lower),
                static_cast<unsigned long long>(refined.upper),
                100.0 * static_cast<double>(refined.Width()) /
                    static_cast<double>(exact));
  }
}

void BM_Selection(benchmark::State& state) {
  const bool pruned = state.range(1) == 1;
  const double selectivity =
      1.0 / static_cast<double>(uint64_t{1} << state.range(0));
  CompressedColumn for_compressed = MakeInput();
  // The scan baseline goes through a shape without a pruning fast path.
  auto input = ValueOrDie(Decompress(for_compressed), "decompress");
  CompressedColumn scan_compressed = MustCompress(input, MakeDeltaNs());
  const exec::RangePredicate pred = PredicateFor(selectivity);
  for (auto _ : state) {
    auto result = exec::SelectCompressed(
        pruned ? for_compressed : scan_compressed, pred);
    bench::CheckOk(result.status(), "select");
    benchmark::DoNotOptimize(result->positions.size());
  }
  state.SetLabel(std::string(pruned ? "model-pruned" : "decompress-scan") +
                 " sel=2^-" + std::to_string(state.range(0)));
  bench::SetThroughput(state, kRows * sizeof(uint32_t));
}
BENCHMARK(BM_Selection)
    ->Args({12, 0})
    ->Args({12, 1})
    ->Args({6, 0})
    ->Args({6, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

RECOMP_BENCH_MAIN(PrintTables)
