#!/usr/bin/env bash
# Apply (default) or check (--check, what CI runs) clang-format over every
# first-party source file, using the repo's .clang-format.
#
# Usage: tools/run_format.sh [--check]

set -euo pipefail

cd "$(dirname "$0")/.."

MODE="apply"
if [[ "${1:-}" == "--check" ]]; then MODE="check"; fi

FORMAT="${CLANG_FORMAT:-}"
if [[ -z "${FORMAT}" ]]; then
  for candidate in clang-format clang-format-19 clang-format-18 \
                   clang-format-17 clang-format-16 clang-format-15 \
                   clang-format-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      FORMAT="${candidate}"
      break
    fi
  done
fi
if [[ -z "${FORMAT}" ]]; then
  echo "error: clang-format not found on PATH (set CLANG_FORMAT to override)" >&2
  exit 2
fi

mapfile -t SOURCES < <(find src tests bench examples tools \
  \( -name '*.cc' -o -name '*.cpp' -o -name '*.h' \) | sort)

if [[ "${MODE}" == "check" ]]; then
  echo "clang-format --dry-run over ${#SOURCES[@]} files..."
  "${FORMAT}" --dry-run -Werror "${SOURCES[@]}"
  echo "clang-format: clean"
else
  "${FORMAT}" -i "${SOURCES[@]}"
  echo "clang-format: formatted ${#SOURCES[@]} files"
fi
