// recomp_statsz: run a mixed ingest / scan / recompress workload and dump
// the metric registry — the quickest way to see what the analyzer, the
// dispatch layer, the pool, and the recompressor actually did.
//
//   recomp_statsz [--rows N] [--json]
//
// With --json the snapshot prints as one JSON object (obs::ToJson) instead
// of the text exposition; --rows sizes the workload (default 200000).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exec/scan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/table.h"
#include "util/thread_pool.h"

namespace {

using namespace recomp;        // NOLINT(google-build-using-namespace)
using namespace recomp::store; // NOLINT(google-build-using-namespace)

void Die(const Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Get(Result<T> result, const char* what) {
  Die(result.status(), what);
  return std::move(result).ValueOrDie();
}

int Run(uint64_t rows, bool json) {
  ThreadPool pool(ThreadPool::DefaultThreadCount());
  const ExecContext ctx{&pool};

  // Three columns with distinct shapes so the analyzer has real choices:
  // a slowly growing timestamp (DELTA territory), a low-cardinality status
  // (RLE/DICT territory), and a noisy amount (NS/FOR territory).
  std::vector<ColumnSpec> specs(3);
  specs[0].name = "ts";
  specs[0].type = TypeId::kUInt64;
  specs[1].name = "status";
  specs[1].type = TypeId::kUInt32;
  specs[2].name = "amount";
  specs[2].type = TypeId::kUInt32;
  Table table = Get(Table::Create(specs, ctx), "Table::Create");

  // Deterministic data (no std::random: the dump should be reproducible).
  uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<AnyColumn> batch(3);
  Column<uint64_t> ts;
  Column<uint32_t> status;
  Column<uint32_t> amount;
  for (uint64_t i = 0; i < rows; ++i) {
    ts.push_back(1700000000000ull + i * 37 + (next() & 15));
    status.push_back(static_cast<uint32_t>(next() % 5));
    amount.push_back(static_cast<uint32_t>(next() % 100000));
  }
  batch[0] = AnyColumn(std::move(ts));
  batch[1] = AnyColumn(std::move(status));
  batch[2] = AnyColumn(std::move(amount));
  Die(table.AppendBatch(batch), "AppendBatch");
  Die(table.Flush(), "Flush");

  // A profiled multi-column scan: filter on two columns, project one,
  // aggregate another.
  obs::ScanProfile profile;
  {
    const obs::ProfileScope scope(&profile);
    const obs::Span span("statsz.query");
    const TableSnapshot snap = Get(table.Snapshot(), "Snapshot");
    exec::ScanSpec spec;
    spec.Filter("status", {1, 3})
        .Filter("amount", {0, 50000})
        .Project({"ts"})
        .Aggregate("amount", exec::AggregateOp::kSum);
    const exec::ScanResult result = Get(exec::Scan(snap, spec, ctx), "Scan");
    if (!json) {
      std::printf("scan: %llu of %llu rows matched\n",
                  static_cast<unsigned long long>(result.rows_matched),
                  static_cast<unsigned long long>(result.rows_scanned));
      for (const exec::ScanFilterStats& f : result.filters) {
        std::printf("  filter %-8s %s\n", f.column.c_str(),
                    f.stats.ToString().c_str());
      }
      for (const exec::ScanProjection& p : result.projections) {
        std::printf("  gather %-8s %s\n", p.column.c_str(),
                    p.gather.ToString().c_str());
      }
    }
  }

  // One maintenance pass so the recompressor's counters move too.
  RecompressionPolicy policy;
  policy.revisit_sealed = true;
  policy.min_age_chunks = 0;
  const RecompressionReport report =
      Get(table.RecompressAll(policy), "RecompressAll");

  if (json) {
    std::fputs(Table::MetricsSnapshot().ToJson().c_str(), stdout);
    return 0;
  }
  std::printf("\n%s\n", profile.ToString().c_str());
  std::fputs(report.ToString().c_str(), stdout);
  std::printf("\n%s", table.DebugString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t rows = 200000;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--rows N] [--json]\n", argv[0]);
      return 2;
    }
  }
  return Run(rows, json);
}
