#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over every first-party translation
# unit, using the compile database the build exports.
#
# Usage: tools/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#   build-dir defaults to ./build and must contain compile_commands.json
#   (configure with cmake first; CMAKE_EXPORT_COMPILE_COMMANDS is always on).
#
# Exits non-zero on any diagnostic: .clang-tidy sets WarningsAsErrors '*',
# so this script is the same hard gate CI runs.

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi

TIDY="${CLANG_TIDY:-}"
if [[ -z "${TIDY}" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      TIDY="${candidate}"
      break
    fi
  done
fi
if [[ -z "${TIDY}" ]]; then
  echo "error: clang-tidy not found on PATH (set CLANG_TIDY to override)" >&2
  exit 2
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "  configure first:  cmake -B ${BUILD_DIR} -S ." >&2
  exit 2
fi

# All first-party TUs. Headers are covered transitively via
# HeaderFilterRegex in .clang-tidy.
mapfile -t SOURCES < <(find src tests bench examples tools \
  \( -name '*.cc' -o -name '*.cpp' \) -not -path 'tests/compile_fail/*' \
  | sort)

echo "clang-tidy (${TIDY}) over ${#SOURCES[@]} files..."
"${TIDY}" -p "${BUILD_DIR}" --quiet "$@" "${SOURCES[@]}"
echo "clang-tidy: clean"
