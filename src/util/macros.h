// Common macros used across the recomp library.
//
// Follows the Arrow/RocksDB convention of propagating recoverable errors via
// Status / Result<T> return values rather than exceptions; the macros below
// remove most of the boilerplate that convention creates.

#ifndef RECOMP_UTIL_MACROS_H_
#define RECOMP_UTIL_MACROS_H_

#define RECOMP_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define RECOMP_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))

#define RECOMP_CONCAT_IMPL(x, y) x##y
#define RECOMP_CONCAT(x, y) RECOMP_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Status; returns from the enclosing
/// function if it is not OK.
#define RECOMP_RETURN_NOT_OK(expr)                                   \
  do {                                                               \
    ::recomp::Status _recomp_status = (expr);                        \
    if (RECOMP_PREDICT_FALSE(!_recomp_status.ok())) {                \
      return _recomp_status;                                         \
    }                                                                \
  } while (false)

/// Evaluates an expression returning Result<T>; on success moves the value
/// into `lhs`, otherwise returns the error from the enclosing function.
#define RECOMP_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto&& result_name = (rexpr);                               \
  if (RECOMP_PREDICT_FALSE(!result_name.ok())) {              \
    return result_name.status();                              \
  }                                                           \
  lhs = std::move(result_name).ValueUnsafe();

#define RECOMP_ASSIGN_OR_RETURN(lhs, rexpr)                                          \
  RECOMP_ASSIGN_OR_RETURN_IMPL(RECOMP_CONCAT(_recomp_result_, __COUNTER__), lhs, \
                               rexpr)

/// Internal invariant check. Unlike Status propagation this is for programmer
/// errors; it aborts in all build types (database kernels must not run past
/// corrupted state).
#define RECOMP_DCHECK(cond, msg)                                              \
  do {                                                                        \
    if (RECOMP_PREDICT_FALSE(!(cond))) {                                      \
      ::recomp::internal::DCheckFailed(__FILE__, __LINE__, #cond, (msg));     \
    }                                                                         \
  } while (false)

namespace recomp::internal {
[[noreturn]] void DCheckFailed(const char* file, int line, const char* expr,
                               const char* msg);
}  // namespace recomp::internal

#endif  // RECOMP_UTIL_MACROS_H_
