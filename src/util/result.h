// Result<T>: a value-or-Status return type, modeled on arrow::Result.

#ifndef RECOMP_UTIL_RESULT_H_
#define RECOMP_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/macros.h"
#include "util/status.h"

namespace recomp {

/// Holds either a successfully produced T or the Status explaining why one
/// could not be produced. Accessing the value of an errored Result aborts.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. Constructing from an OK
  /// status is a programmer error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    RECOMP_DCHECK(!std::get<Status>(repr_).ok(),
                  "constructing Result<T> from OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK when a value is held.
  Status status() const& {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }
  Status status() && {
    return ok() ? Status::OK() : std::move(std::get<Status>(repr_));
  }

  /// Returns the held value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    RECOMP_DCHECK(ok(), status().ToString().c_str());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    RECOMP_DCHECK(ok(), status().ToString().c_str());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    RECOMP_DCHECK(ok(), status().ToString().c_str());
    return std::move(std::get<T>(repr_));
  }

  /// Unchecked access used by RECOMP_ASSIGN_OR_RETURN after ok() was checked.
  T ValueUnsafe() && { return std::move(std::get<T>(repr_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace recomp

#endif  // RECOMP_UTIL_RESULT_H_
