// Small string helpers (printf-style formatting, joining) used for
// diagnostics, descriptor rendering and benchmark tables.

#ifndef RECOMP_UTIL_STRING_UTIL_H_
#define RECOMP_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace recomp {

/// printf into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Renders a byte count as a human-friendly quantity ("1.50 KiB").
std::string HumanBytes(uint64_t bytes);

}  // namespace recomp

#endif  // RECOMP_UTIL_STRING_UTIL_H_
