// Deterministic pseudo-random generation for data generators and tests.
//
// We avoid <random>'s engines/distributions because their outputs are not
// guaranteed identical across standard libraries; every generated workload in
// this repository must be byte-reproducible from its seed.

#ifndef RECOMP_UTIL_RANDOM_H_
#define RECOMP_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace recomp {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Deterministic across platforms and standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform over the full uint64 range.
  uint64_t Next();

  /// Uniform over [0, bound) using Lemire's multiply-shift rejection method;
  /// bound must be > 0.
  uint64_t Below(uint64_t bound);

  /// Uniform over the inclusive range [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Geometric number of trials >= 1 with success probability `p` in (0, 1].
  /// Mean 1/p; used for run lengths.
  uint64_t Geometric(double p);

  /// True with probability `p`.
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

/// Zipf(s) sampler over ranks {0, ..., n-1}: rank k has probability
/// proportional to 1/(k+1)^s. Uses an inverted-CDF table; construction is
/// O(n), sampling O(log n). Deterministic given the Rng.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  uint64_t universe() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace recomp

#endif  // RECOMP_UTIL_RANDOM_H_
