// Annotated mutex primitives: std::mutex/condition_variable wrapped so that
// clang's -Wthread-safety analysis (util/thread_annotations.h) can see them.
//
// The analysis is annotation-driven: a raw std::mutex is invisible to it, so
// every lock that protects RECOMP_GUARDED_BY state must be one of these
// wrappers. The wrappers add no state and no behavior beyond the standard
// primitives — on GCC the annotations expand to nothing and the whole header
// is a zero-cost veneer; under TSan the underlying std primitives are
// instrumented exactly as before.
//
//   Mutex      an exclusive capability; Lock/Unlock/TryLock.
//   MutexLock  scoped acquisition (the only idiomatic way to lock; bare
//              Lock/Unlock is for tests and special lifetimes).
//   CondVar    condition variable waiting on a MutexLock. Waits are
//              lock-neutral for the analysis (held before, held after),
//              which matches std::condition_variable::wait semantics.
//
// Wait loops must be written inline in the locked function —
//   while (!predicate_over_guarded_state) cv.Wait(lock);
// — not as a predicate lambda: a lambda body is analyzed as a separate
// function that does not hold the lock, so it would (correctly) fail the
// guarded-state check even though the wait itself is safe.

#ifndef RECOMP_UTIL_MUTEX_H_
#define RECOMP_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace recomp {

class CondVar;

/// An exclusive mutex the thread-safety analysis can track. Same semantics
/// (and same object, underneath) as std::mutex.
class RECOMP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until the mutex is acquired.
  void Lock() RECOMP_ACQUIRE() { mu_.lock(); }

  /// Releases the mutex; the caller must hold it.
  void Unlock() RECOMP_RELEASE() { mu_.unlock(); }

  /// Acquires the mutex iff it is free; returns whether it did.
  bool TryLock() RECOMP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over a Mutex: acquires in the constructor, releases in the
/// destructor. The std::lock_guard/std::unique_lock of this codebase.
class RECOMP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RECOMP_ACQUIRE(mu) : lock_(mu->mu_) {}
  ~MutexLock() RECOMP_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over Mutex/MutexLock. Every Wait* takes the scoped
/// lock, releases it while blocked, and holds it again on return — the
/// analysis treats the capability as held across the call, which is exactly
/// the caller-visible contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken): always re-check the
  /// predicate in a loop.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Blocks until notified or `deadline` passes; returns true on timeout.
  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline) == std::cv_status::timeout;
  }

  /// Blocks until notified or `timeout` elapses; returns true on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace recomp

#endif  // RECOMP_UTIL_MUTEX_H_
