#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace recomp {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  RECOMP_DCHECK(bound > 0, "Rng::Below requires bound > 0");
  // Lemire's nearly-divisionless method, specialized to 64 bits via 128-bit
  // multiply.
  while (true) {
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (RECOMP_PREDICT_TRUE(low >= bound || low >= (-bound) % bound)) {
      return static_cast<uint64_t>(m >> 64);
    }
  }
}

uint64_t Rng::Range(uint64_t lo, uint64_t hi) {
  RECOMP_DCHECK(lo <= hi, "Rng::Range requires lo <= hi");
  uint64_t span = hi - lo;
  if (span == ~uint64_t{0}) return Next();
  return lo + Below(span + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::Geometric(double p) {
  RECOMP_DCHECK(p > 0.0 && p <= 1.0, "Geometric requires p in (0, 1]");
  if (p >= 1.0) return 1;
  double u = NextDouble();
  // Avoid log(0); NextDouble() < 1 so 1-u > 0.
  uint64_t k = 1 + static_cast<uint64_t>(std::log1p(-u) / std::log1p(-p));
  return k;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(uint64_t n, double s) {
  RECOMP_DCHECK(n > 0, "ZipfSampler requires n > 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace recomp
