// Status: the library-wide recoverable-error type.
//
// Modeled on arrow::Status / rocksdb::Status. A Status is cheap to return in
// the OK case (single pointer compare) and carries a code plus a message in
// the error case.

#ifndef RECOMP_UTIL_STATUS_H_
#define RECOMP_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

#include "util/macros.h"

namespace recomp {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed something malformed.
  kOutOfRange = 2,        ///< Index/width/length outside the valid domain.
  kNotImplemented = 3,    ///< Feature intentionally absent (yet).
  kCorruption = 4,        ///< Compressed form failed validation.
  kKeyError = 5,          ///< Lookup of a named part/attribute failed.
  kUnknown = 6,
  kResourceExhausted = 7, ///< Admission control refused more work (queue
                          ///< depth, per-client in-flight limits).
  kDeadlineExceeded = 8,  ///< The caller's deadline passed before execution.
};

/// Returns a stable human-readable name for `code` (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error return value; OK is represented by a null state
/// pointer so the happy path costs one branch.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }

  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

}  // namespace recomp

#endif  // RECOMP_UTIL_STATUS_H_
