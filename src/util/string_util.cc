#include "util/string_util.h"

#include <cstdio>

namespace recomp {

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StringFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StringFormat("%.2f %s", v, kUnits[unit]);
}

}  // namespace recomp
