// Fixed-size thread pool and the ExecContext handle the chunked operators
// parallelize over.
//
// Chunks are the independent unit of work (core/chunked.h); everything that
// visits them — compression, decompression, the per-chunk analyzer search,
// and the exec-layer scans — takes an ExecContext and fans chunk indices out
// over the pool with ParallelFor. The design is deliberately minimal: a
// fixed worker count, one FIFO queue, no work stealing. Determinism is the
// contract that matters: ParallelFor only decides *where* fn(i) runs; every
// caller writes into a pre-sized per-index slot and merges slots in index
// order afterwards, so results are bit-identical to the sequential path for
// any thread count.

#ifndef RECOMP_UTIL_THREAD_POOL_H_
#define RECOMP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace recomp {

/// Queue priority of one submitted task. Low-priority work (the store's
/// background recompression jobs) runs only when no normal- or high-priority
/// task is queued, so maintenance never delays ingest seal jobs or scan
/// fan-out sharing the same pool. High-priority work (the query service's
/// batch scans) jumps ahead of queued normal tasks, so an interactive query
/// never waits behind a burst of seal jobs. Starvation is acceptable by
/// design: every queue drains eventually because work per operation is
/// finite at each priority.
enum class TaskPriority { kNormal = 0, kLow = 1, kHigh = 2 };

/// Number of priorities (queue/metric array index = PriorityIndex below).
inline constexpr int kNumTaskPriorities = 3;

/// Stable array index of a priority: 0 = normal, 1 = low, 2 = high
/// (the enumerator values, kept explicit so metric arrays stay aligned).
constexpr int PriorityIndex(TaskPriority priority) {
  return static_cast<int>(priority);
}

/// A fixed-size pool of worker threads draining one FIFO queue per priority
/// (high before normal, low only when both others are empty).
/// Tasks must not throw and must not block on work scheduled behind them in
/// the same queue (no nested ParallelFor over the same pool).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 is valid and spawns none: Submit then
  /// runs every task inline on the calling thread, so a zero-thread pool is
  /// the sequential path without any null-pool special casing at call sites.
  explicit ThreadPool(uint64_t num_threads);

  /// Finishes every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint64_t num_threads() const { return workers_.size(); }

  /// One worker per hardware thread (at least 1): the sizing callers used to
  /// spell ThreadPool(0) before 0 came to mean sequential.
  static uint64_t DefaultThreadCount();

  /// Enqueues one task for execution on a worker thread; with zero workers,
  /// runs it inline before returning. High-priority tasks run before queued
  /// normal tasks; low-priority tasks wait behind both (see TaskPriority).
  void Submit(std::function<void()> task,
              TaskPriority priority = TaskPriority::kNormal);

  /// Number of tasks currently queued at `priority` (not yet picked up by a
  /// worker). A point-in-time reading: the depth can change before the
  /// caller acts on it.
  uint64_t queue_depth(TaskPriority priority) const;

  /// Number of workers currently running a task (as opposed to blocked on
  /// the queues). Point-in-time, like queue_depth().
  uint64_t active_workers() const {
    return active_workers_.load(std::memory_order_relaxed);
  }

 private:
  /// One queued task plus its enqueue time, so workers can report how long
  /// it sat behind other work (pool.wait_ns.* histograms).
  struct QueuedTask {
    std::function<void()> fn;
    uint64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  /// Serializes queue state; workers block on cv_ while every queue is
  /// empty. Never held while a task runs.
  mutable Mutex mu_;
  CondVar cv_;
  /// One FIFO queue per priority, indexed by PriorityIndex.
  std::deque<QueuedTask> queues_[kNumTaskPriorities] RECOMP_GUARDED_BY(mu_);
  bool stop_ RECOMP_GUARDED_BY(mu_) = false;
  /// Workers running a task right now; relaxed — a count, not a lock.
  std::atomic<uint64_t> active_workers_{0};
  /// Written by the constructor, joined by the destructor; num_threads()
  /// reads only the size, which is immutable in between. Not guarded.
  std::vector<std::thread> workers_;
};

/// How the chunked operators execute: which pool to fan out over (nullptr —
/// or a zero-thread pool — means the sequential path; nullptr stays the
/// default, so existing call sites are unchanged) and the grain size, i.e.
/// the smallest number of consecutive chunks worth one task. Larger grains
/// amortize queue traffic when chunks are tiny; 1 maximizes parallelism when
/// per-chunk work dominates.
struct ExecContext {
  ThreadPool* pool = nullptr;
  uint64_t min_chunks_per_task = 1;
  /// The queue every ParallelFor fan-out submits at. kNormal for the
  /// library's own operators; the query service raises its batch execution
  /// to kHigh so interactive scans jump ahead of queued seal jobs.
  TaskPriority priority = TaskPriority::kNormal;

  /// True when work can actually fan out.
  bool parallel() const { return pool != nullptr && pool->num_threads() > 1; }

  /// True when work can run *somewhere else* than the calling thread — the
  /// background-seal criterion, weaker than parallel(): one worker is enough
  /// to take compression off an ingest thread.
  bool async() const { return pool != nullptr && pool->num_threads() > 0; }
};

/// Runs fn(i) exactly once for every i in [0, n) and returns when all calls
/// have finished. Indices are partitioned into contiguous ranges of at least
/// ctx.min_chunks_per_task; with no usable pool (or a single task) everything
/// runs inline on the calling thread, in index order. fn must not throw and
/// must not touch the same pool again (nested fan-out deadlocks a saturated
/// fixed-size pool).
void ParallelFor(const ExecContext& ctx, uint64_t n,
                 const std::function<void(uint64_t)>& fn);

/// ParallelFor for fallible work: every fn(i) runs to completion (no early
/// exit — indices must stay independent), each status lands in its own slot,
/// and the first non-OK status *in index order* is returned — the same error
/// a sequential loop would surface. fn typically writes its payload into a
/// caller-pre-sized slot vector and returns only the Status.
Status ParallelForOk(const ExecContext& ctx, uint64_t n,
                     const std::function<Status(uint64_t)>& fn);

/// A handle over a batch of independently submitted tasks: Run() hands each
/// task to ctx's pool (or runs it inline when there is none), Wait() blocks
/// until every task handed out so far has finished. Unlike ParallelFor the
/// caller does not block per batch — this is the fire-and-forget shape the
/// streaming store's background seal jobs need, with the completion wait
/// Flush() requires. Tasks must not throw; destruction waits.
class TaskGroup {
 public:
  TaskGroup() = default;
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Runs `task` on ctx's pool, or inline (before returning) without one.
  /// `priority` is handed through to ThreadPool::Submit: kLow keeps
  /// maintenance work (recompression) behind live seal jobs and scans.
  void Run(const ExecContext& ctx, std::function<void()> task,
           TaskPriority priority = TaskPriority::kNormal);

  /// Blocks until every task passed to Run() has completed.
  void Wait();

  /// Number of tasks handed to a pool and not yet finished.
  uint64_t pending() const;

 private:
  mutable Mutex mu_;
  CondVar cv_;
  uint64_t pending_ RECOMP_GUARDED_BY(mu_) = 0;
};

}  // namespace recomp

#endif  // RECOMP_UTIL_THREAD_POOL_H_
