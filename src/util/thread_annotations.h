// Clang Thread Safety Analysis annotations: compile-time lock contracts.
//
// These macros attach capability annotations (mutexes, here) to types,
// members, and functions so that clang's -Wthread-safety analysis can prove
// at compile time that every access to a GUARDED_BY member happens with the
// right mutex held, that ACQUIRE/RELEASE pairs balance on every path, and
// that REQUIRES contracts hold at every call site. On compilers without the
// attributes (GCC builds, including the ASan/TSan CI jobs) every macro
// expands to nothing, so annotated code compiles identically everywhere.
//
// Conventions in this codebase:
//   - Lock discipline lives in the type: members are RECOMP_GUARDED_BY the
//     mutex that protects them, private *Locked() helpers are
//     RECOMP_REQUIRES the mutex their caller must hold.
//   - Use util/mutex.h's Mutex/MutexLock/CondVar (annotated wrappers) for
//     anything the analysis should see; raw std::mutex is invisible to it.
//   - The contracts are regression-tested: tests/compile_fail/ holds
//     translation units that must FAIL to compile under clang
//     -Wthread-safety -Werror (wired as ctest cases on clang builds), so a
//     broken macro or wrapper cannot silently disable the analysis.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef RECOMP_UTIL_THREAD_ANNOTATIONS_H_
#define RECOMP_UTIL_THREAD_ANNOTATIONS_H_

// NOLINTBEGIN(bugprone-macro-parentheses): capability expressions (`mu_`,
// `s.mu`, ...) must be spliced into the attribute verbatim — wrapping them
// in parentheses is not valid in every attribute position and adds nothing,
// since the expansion site is an attribute, never arithmetic.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define RECOMP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RECOMP_THREAD_ANNOTATION
#define RECOMP_THREAD_ANNOTATION(x)  // no-op on GCC and MSVC
#endif

/// Marks a class as a capability (a lock): its Lock/Unlock methods carry
/// ACQUIRE/RELEASE annotations and GUARDED_BY can name instances of it.
#define RECOMP_CAPABILITY(x) \
  RECOMP_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (e.g. MutexLock).
#define RECOMP_SCOPED_CAPABILITY \
  RECOMP_THREAD_ANNOTATION(scoped_lockable)

/// Declares that the annotated member may only be read or written while
/// holding the given capability.
#define RECOMP_GUARDED_BY(x) \
  RECOMP_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the *pointee* of the annotated pointer member may only be
/// dereferenced while holding the given capability.
#define RECOMP_PT_GUARDED_BY(x) \
  RECOMP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention documentation the
/// analysis checks when both locks are annotated).
#define RECOMP_ACQUIRED_BEFORE(...) \
  RECOMP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RECOMP_ACQUIRED_AFTER(...) \
  RECOMP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The calling thread must hold the given capability(ies) exclusively when
/// calling the annotated function, and still holds them afterwards.
#define RECOMP_REQUIRES(...) \
  RECOMP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared (reader) variant of RECOMP_REQUIRES.
#define RECOMP_REQUIRES_SHARED(...) \
  RECOMP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the capability and holds it on return
/// (on a member function with no argument, the capability is *this).
#define RECOMP_ACQUIRE(...) \
  RECOMP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RECOMP_ACQUIRE_SHARED(...) \
  RECOMP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases the capability the caller held.
#define RECOMP_RELEASE(...) \
  RECOMP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RECOMP_RELEASE_SHARED(...) \
  RECOMP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RECOMP_RELEASE_GENERIC(...) \
  RECOMP_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// The annotated function acquires the capability iff it returns the given
/// value (e.g. TRY_ACQUIRE(true) on a bool TryLock()).
#define RECOMP_TRY_ACQUIRE(...) \
  RECOMP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RECOMP_TRY_ACQUIRE_SHARED(...)    \
  RECOMP_THREAD_ANNOTATION(  \
      try_acquire_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the given capability (the function acquires it
/// itself, or hands work to something that does — calling with it held
/// would self-deadlock).
#define RECOMP_EXCLUDES(...) \
  RECOMP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Informs the analysis that the capability is held (a runtime-checked
/// assertion, e.g. for code reachable only with the lock held).
#define RECOMP_ASSERT_CAPABILITY(x) \
  RECOMP_THREAD_ANNOTATION(assert_capability(x))
#define RECOMP_ASSERT_SHARED_CAPABILITY(x) \
  RECOMP_THREAD_ANNOTATION(assert_shared_capability(x))

/// The annotated function returns a reference to the given capability.
#define RECOMP_RETURN_CAPABILITY(x) \
  RECOMP_THREAD_ANNOTATION(lock_returned(x))

/// Turns the analysis off for one function (last resort; say why inline).
#define RECOMP_NO_THREAD_SAFETY_ANALYSIS \
  RECOMP_THREAD_ANNOTATION(no_thread_safety_analysis)

// NOLINTEND(bugprone-macro-parentheses)

#endif  // RECOMP_UTIL_THREAD_ANNOTATIONS_H_
