#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace recomp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kKeyError:
      return "Key error";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

namespace internal {

void DCheckFailed(const char* file, int line, const char* expr, const char* msg) {
  std::fprintf(stderr, "recomp DCHECK failure at %s:%d: (%s) %s\n", file, line,
               expr, msg);
  std::abort();
}

}  // namespace internal
}  // namespace recomp
