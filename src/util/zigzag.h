// ZigZag recoding between signed and unsigned integers.
//
// Maps 0, -1, 1, -2, 2, ... to 0, 1, 2, 3, 4, ... so that small-magnitude
// signed values (e.g. deltas of nearly-sorted data) become small unsigned
// values amenable to null suppression.

#ifndef RECOMP_UTIL_ZIGZAG_H_
#define RECOMP_UTIL_ZIGZAG_H_

#include <cstdint>
#include <type_traits>

namespace recomp::zigzag {

/// Encodes a signed value into its zigzag unsigned representation.
template <typename S>
constexpr std::make_unsigned_t<S> Encode(S v) {
  static_assert(std::is_signed_v<S>);
  using U = std::make_unsigned_t<S>;
  // (v << 1) ^ (v >> (bits-1)), written without signed-overflow UB.
  return (static_cast<U>(v) << 1) ^
         static_cast<U>(v >> (sizeof(S) * 8 - 1));
}

/// Decodes a zigzag unsigned representation back to the signed value.
template <typename U>
constexpr std::make_signed_t<U> Decode(U v) {
  static_assert(std::is_unsigned_v<U>);
  using S = std::make_signed_t<U>;
  return static_cast<S>((v >> 1) ^ (~(v & 1) + 1));
}

/// Encodes the unsigned *difference* a - b (mod 2^bits) as if it were a
/// signed delta; useful for delta chains over unsigned columns.
template <typename U>
constexpr U EncodeDiff(U a, U b) {
  static_assert(std::is_unsigned_v<U>);
  using S = std::make_signed_t<U>;
  return Encode(static_cast<S>(a - b));
}

}  // namespace recomp::zigzag

#endif  // RECOMP_UTIL_ZIGZAG_H_
