#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace recomp {

namespace {

/// Pool metrics, resolved once. Indexed [priority] where it applies
/// (0 = normal, 1 = low, matching TaskPriority's enumerator values).
struct PoolMetrics {
  obs::Counter* tasks[2];
  obs::Counter* tasks_inline;
  obs::Histogram* wait_ns[2];
  obs::Histogram* run_ns;
  obs::Counter* busy_ns;
  obs::Gauge* depth[2];

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      PoolMetrics m;
      obs::Registry& registry = obs::Registry::Get();
      m.tasks[0] = &registry.GetCounter("pool.tasks.normal");
      m.tasks[1] = &registry.GetCounter("pool.tasks.low");
      m.tasks_inline = &registry.GetCounter("pool.tasks.inline");
      m.wait_ns[0] = &registry.GetHistogram("pool.wait_ns.normal");
      m.wait_ns[1] = &registry.GetHistogram("pool.wait_ns.low");
      m.run_ns = &registry.GetHistogram("pool.run_ns");
      m.busy_ns = &registry.GetCounter("pool.busy_ns");
      m.depth[0] = &registry.GetGauge("pool.queue_depth.normal");
      m.depth[1] = &registry.GetGauge("pool.queue_depth.low");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(uint64_t num_threads) {
  workers_.reserve(num_threads);
  for (uint64_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

uint64_t ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task, TaskPriority priority) {
  const PoolMetrics& metrics = PoolMetrics::Get();
  if (workers_.empty()) {
    // No worker will ever drain the queue: run inline so a zero-thread pool
    // behaves exactly like the sequential path.
    metrics.tasks_inline->Increment();
    task();
    return;
  }
  const int pri = priority == TaskPriority::kLow ? 1 : 0;
  metrics.tasks[pri]->Increment();
  {
    MutexLock lock(&mu_);
    std::deque<QueuedTask>& target =
        priority == TaskPriority::kLow ? low_queue_ : queue_;
    target.push_back({std::move(task), obs::MonotonicNanos()});
    metrics.depth[pri]->Set(static_cast<int64_t>(target.size()));
  }
  cv_.NotifyOne();
}

uint64_t ThreadPool::queue_depth(TaskPriority priority) const {
  MutexLock lock(&mu_);
  return priority == TaskPriority::kLow ? low_queue_.size() : queue_.size();
}

void ThreadPool::WorkerLoop() {
  const PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    QueuedTask task;
    int pri = 0;
    {
      MutexLock lock(&mu_);
      // Inline wait loop, not a predicate lambda: the lambda body would be
      // analyzed as a function that does not hold mu_ (see util/mutex.h).
      while (!stop_ && queue_.empty() && low_queue_.empty()) cv_.Wait(lock);
      // Drain both queues even when stopping: destruction must not drop work
      // a ParallelFor or TaskGroup caller is still waiting on.
      pri = !queue_.empty() ? 0 : 1;
      std::deque<QueuedTask>& source = pri == 0 ? queue_ : low_queue_;
      if (source.empty()) return;
      task = std::move(source.front());
      source.pop_front();
      metrics.depth[pri]->Set(static_cast<int64_t>(source.size()));
    }
    const uint64_t start_ns = obs::MonotonicNanos();
    if (task.enqueue_ns != 0 && start_ns > task.enqueue_ns) {
      metrics.wait_ns[pri]->Record(start_ns - task.enqueue_ns);
    }
    active_workers_.fetch_add(1, std::memory_order_relaxed);
    task.fn();
    active_workers_.fetch_sub(1, std::memory_order_relaxed);
    const uint64_t run_ns = obs::MonotonicNanos() - start_ns;
    metrics.run_ns->Record(run_ns);
    metrics.busy_ns->Add(run_ns);
  }
}

void ParallelFor(const ExecContext& ctx, uint64_t n,
                 const std::function<void(uint64_t)>& fn) {
  if (n == 0) return;
  const uint64_t grain = std::max<uint64_t>(1, ctx.min_chunks_per_task);
  const uint64_t num_tasks = (n + grain - 1) / grain;
  if (!ctx.parallel() || num_tasks <= 1) {
    for (uint64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Completion latch: the caller owns all state, tasks only decrement.
  Mutex mu;
  CondVar done;
  uint64_t pending = num_tasks - 1;

  for (uint64_t task = 1; task < num_tasks; ++task) {
    const uint64_t begin = task * grain;
    const uint64_t end = std::min(n, begin + grain);
    ctx.pool->Submit([&, begin, end] {
      for (uint64_t i = begin; i < end; ++i) fn(i);
      MutexLock lock(&mu);
      if (--pending == 0) done.NotifyOne();
    });
  }
  // The calling thread takes the first range instead of idling.
  for (uint64_t i = 0; i < std::min(n, grain); ++i) fn(i);

  MutexLock lock(&mu);
  while (pending != 0) done.Wait(lock);
}

Status ParallelForOk(const ExecContext& ctx, uint64_t n,
                     const std::function<Status(uint64_t)>& fn) {
  std::vector<Status> statuses(n, Status::OK());
  ParallelFor(ctx, n, [&](uint64_t i) { statuses[i] = fn(i); });
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

void TaskGroup::Run(const ExecContext& ctx, std::function<void()> task,
                    TaskPriority priority) {
  if (!ctx.async()) {
    task();
    return;
  }
  {
    MutexLock lock(&mu_);
    ++pending_;
  }
  ctx.pool->Submit(
      [this, task = std::move(task)] {
        task();
        MutexLock lock(&mu_);
        --pending_;
        cv_.NotifyAll();
      },
      priority);
}

void TaskGroup::Wait() {
  MutexLock lock(&mu_);
  while (pending_ != 0) cv_.Wait(lock);
}

uint64_t TaskGroup::pending() const {
  MutexLock lock(&mu_);
  return pending_;
}

}  // namespace recomp
