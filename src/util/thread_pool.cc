#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace recomp {

namespace {

/// Pool metrics, resolved once. Indexed [PriorityIndex(priority)] where it
/// applies (0 = normal, 1 = low, 2 = high).
struct PoolMetrics {
  obs::Counter* tasks[kNumTaskPriorities];
  obs::Counter* tasks_inline;
  obs::Histogram* wait_ns[kNumTaskPriorities];
  obs::Histogram* run_ns;
  obs::Counter* busy_ns;
  obs::Gauge* depth[kNumTaskPriorities];

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      PoolMetrics m;
      obs::Registry& registry = obs::Registry::Get();
      static constexpr const char* kNames[kNumTaskPriorities] = {
          "normal", "low", "high"};
      for (int p = 0; p < kNumTaskPriorities; ++p) {
        m.tasks[p] =
            &registry.GetCounter(std::string("pool.tasks.") + kNames[p]);
        m.wait_ns[p] =
            &registry.GetHistogram(std::string("pool.wait_ns.") + kNames[p]);
        m.depth[p] =
            &registry.GetGauge(std::string("pool.queue_depth.") + kNames[p]);
      }
      m.tasks_inline = &registry.GetCounter("pool.tasks.inline");
      m.run_ns = &registry.GetHistogram("pool.run_ns");
      m.busy_ns = &registry.GetCounter("pool.busy_ns");
      return m;
    }();
    return metrics;
  }
};

/// Queue drain order: high first, then normal, low last.
constexpr int kDrainOrder[kNumTaskPriorities] = {
    PriorityIndex(TaskPriority::kHigh), PriorityIndex(TaskPriority::kNormal),
    PriorityIndex(TaskPriority::kLow)};

}  // namespace

ThreadPool::ThreadPool(uint64_t num_threads) {
  workers_.reserve(num_threads);
  for (uint64_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

uint64_t ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task, TaskPriority priority) {
  const PoolMetrics& metrics = PoolMetrics::Get();
  if (workers_.empty()) {
    // No worker will ever drain the queue: run inline so a zero-thread pool
    // behaves exactly like the sequential path.
    metrics.tasks_inline->Increment();
    task();
    return;
  }
  const int pri = PriorityIndex(priority);
  metrics.tasks[pri]->Increment();
  {
    MutexLock lock(&mu_);
    std::deque<QueuedTask>& target = queues_[pri];
    target.push_back({std::move(task), obs::MonotonicNanos()});
    metrics.depth[pri]->Set(static_cast<int64_t>(target.size()));
  }
  cv_.NotifyOne();
}

uint64_t ThreadPool::queue_depth(TaskPriority priority) const {
  MutexLock lock(&mu_);
  return queues_[PriorityIndex(priority)].size();
}

void ThreadPool::WorkerLoop() {
  const PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    QueuedTask task;
    int pri = 0;
    {
      MutexLock lock(&mu_);
      // Inline wait loop, not a predicate lambda: the lambda body would be
      // analyzed as a function that does not hold mu_ (see util/mutex.h).
      while (!stop_ && queues_[0].empty() && queues_[1].empty() &&
             queues_[2].empty()) {
        cv_.Wait(lock);
      }
      // Drain every queue even when stopping: destruction must not drop work
      // a ParallelFor or TaskGroup caller is still waiting on.
      pri = -1;
      for (const int candidate : kDrainOrder) {
        if (!queues_[candidate].empty()) {
          pri = candidate;
          break;
        }
      }
      if (pri < 0) return;
      std::deque<QueuedTask>& source = queues_[pri];
      task = std::move(source.front());
      source.pop_front();
      metrics.depth[pri]->Set(static_cast<int64_t>(source.size()));
    }
    const uint64_t start_ns = obs::MonotonicNanos();
    if (task.enqueue_ns != 0 && start_ns > task.enqueue_ns) {
      metrics.wait_ns[pri]->Record(start_ns - task.enqueue_ns);
    }
    active_workers_.fetch_add(1, std::memory_order_relaxed);
    task.fn();
    active_workers_.fetch_sub(1, std::memory_order_relaxed);
    const uint64_t run_ns = obs::MonotonicNanos() - start_ns;
    metrics.run_ns->Record(run_ns);
    metrics.busy_ns->Add(run_ns);
  }
}

void ParallelFor(const ExecContext& ctx, uint64_t n,
                 const std::function<void(uint64_t)>& fn) {
  if (n == 0) return;
  const uint64_t grain = std::max<uint64_t>(1, ctx.min_chunks_per_task);
  const uint64_t num_tasks = (n + grain - 1) / grain;
  if (!ctx.parallel() || num_tasks <= 1) {
    for (uint64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Completion latch: the caller owns all state, tasks only decrement.
  Mutex mu;
  CondVar done;
  uint64_t pending = num_tasks - 1;

  for (uint64_t task = 1; task < num_tasks; ++task) {
    const uint64_t begin = task * grain;
    const uint64_t end = std::min(n, begin + grain);
    ctx.pool->Submit(
        [&, begin, end] {
          for (uint64_t i = begin; i < end; ++i) fn(i);
          MutexLock lock(&mu);
          if (--pending == 0) done.NotifyOne();
        },
        ctx.priority);
  }
  // The calling thread takes the first range instead of idling.
  for (uint64_t i = 0; i < std::min(n, grain); ++i) fn(i);

  MutexLock lock(&mu);
  while (pending != 0) done.Wait(lock);
}

Status ParallelForOk(const ExecContext& ctx, uint64_t n,
                     const std::function<Status(uint64_t)>& fn) {
  std::vector<Status> statuses(n, Status::OK());
  ParallelFor(ctx, n, [&](uint64_t i) { statuses[i] = fn(i); });
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

void TaskGroup::Run(const ExecContext& ctx, std::function<void()> task,
                    TaskPriority priority) {
  if (!ctx.async()) {
    task();
    return;
  }
  {
    MutexLock lock(&mu_);
    ++pending_;
  }
  ctx.pool->Submit(
      [this, task = std::move(task)] {
        task();
        MutexLock lock(&mu_);
        --pending_;
        cv_.NotifyAll();
      },
      priority);
}

void TaskGroup::Wait() {
  MutexLock lock(&mu_);
  while (pending_ != 0) cv_.Wait(lock);
}

uint64_t TaskGroup::pending() const {
  MutexLock lock(&mu_);
  return pending_;
}

}  // namespace recomp
