#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace recomp {

ThreadPool::ThreadPool(uint64_t num_threads) {
  workers_.reserve(num_threads);
  for (uint64_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

uint64_t ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task, TaskPriority priority) {
  if (workers_.empty()) {
    // No worker will ever drain the queue: run inline so a zero-thread pool
    // behaves exactly like the sequential path.
    task();
    return;
  }
  {
    MutexLock lock(&mu_);
    (priority == TaskPriority::kLow ? low_queue_ : queue_)
        .push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      // Inline wait loop, not a predicate lambda: the lambda body would be
      // analyzed as a function that does not hold mu_ (see util/mutex.h).
      while (!stop_ && queue_.empty() && low_queue_.empty()) cv_.Wait(lock);
      // Drain both queues even when stopping: destruction must not drop work
      // a ParallelFor or TaskGroup caller is still waiting on.
      std::deque<std::function<void()>>& source =
          !queue_.empty() ? queue_ : low_queue_;
      if (source.empty()) return;
      task = std::move(source.front());
      source.pop_front();
    }
    task();
  }
}

void ParallelFor(const ExecContext& ctx, uint64_t n,
                 const std::function<void(uint64_t)>& fn) {
  if (n == 0) return;
  const uint64_t grain = std::max<uint64_t>(1, ctx.min_chunks_per_task);
  const uint64_t num_tasks = (n + grain - 1) / grain;
  if (!ctx.parallel() || num_tasks <= 1) {
    for (uint64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Completion latch: the caller owns all state, tasks only decrement.
  Mutex mu;
  CondVar done;
  uint64_t pending = num_tasks - 1;

  for (uint64_t task = 1; task < num_tasks; ++task) {
    const uint64_t begin = task * grain;
    const uint64_t end = std::min(n, begin + grain);
    ctx.pool->Submit([&, begin, end] {
      for (uint64_t i = begin; i < end; ++i) fn(i);
      MutexLock lock(&mu);
      if (--pending == 0) done.NotifyOne();
    });
  }
  // The calling thread takes the first range instead of idling.
  for (uint64_t i = 0; i < std::min(n, grain); ++i) fn(i);

  MutexLock lock(&mu);
  while (pending != 0) done.Wait(lock);
}

Status ParallelForOk(const ExecContext& ctx, uint64_t n,
                     const std::function<Status(uint64_t)>& fn) {
  std::vector<Status> statuses(n, Status::OK());
  ParallelFor(ctx, n, [&](uint64_t i) { statuses[i] = fn(i); });
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

void TaskGroup::Run(const ExecContext& ctx, std::function<void()> task,
                    TaskPriority priority) {
  if (!ctx.async()) {
    task();
    return;
  }
  {
    MutexLock lock(&mu_);
    ++pending_;
  }
  ctx.pool->Submit(
      [this, task = std::move(task)] {
        task();
        MutexLock lock(&mu_);
        --pending_;
        cv_.NotifyAll();
      },
      priority);
}

void TaskGroup::Wait() {
  MutexLock lock(&mu_);
  while (pending_ != 0) cv_.Wait(lock);
}

uint64_t TaskGroup::pending() const {
  MutexLock lock(&mu_);
  return pending_;
}

}  // namespace recomp
