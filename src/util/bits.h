// Bit-manipulation utilities shared by the packing kernels and schemes.

#ifndef RECOMP_UTIL_BITS_H_
#define RECOMP_UTIL_BITS_H_

#include <cstdint>
#include <limits>
#include <type_traits>

namespace recomp::bits {

/// Number of bits needed to represent `v` (0 for v == 0).
/// Equivalent to ceil(log2(v + 1)).
template <typename T>
constexpr int BitWidth(T v) {
  static_assert(std::is_unsigned_v<T>, "BitWidth requires an unsigned type");
  if (v == 0) return 0;
  if constexpr (sizeof(T) <= 4) {
    return 32 - __builtin_clz(static_cast<uint32_t>(v));
  } else {
    return 64 - __builtin_clzll(static_cast<uint64_t>(v));
  }
}

/// A mask with the low `width` bits set. `width` must be in [0, 64].
constexpr uint64_t LowMask64(int width) {
  return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

/// A mask with the low `width` bits set. `width` must be in [0, 32].
constexpr uint32_t LowMask32(int width) {
  return width >= 32 ? ~uint32_t{0} : ((uint32_t{1} << width) - 1);
}

/// ceil(a / b) for b > 0.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Rounds `v` up to the next multiple of `multiple` (> 0).
constexpr uint64_t RoundUp(uint64_t v, uint64_t multiple) {
  return CeilDiv(v, multiple) * multiple;
}

/// Bytes needed to store `n` values of `bit_width` bits, bit-contiguously.
constexpr uint64_t PackedByteSize(uint64_t n, int bit_width) {
  return CeilDiv(n * static_cast<uint64_t>(bit_width), 8);
}

/// The number of bits in T's value representation.
template <typename T>
constexpr int TypeBits() {
  return static_cast<int>(sizeof(T) * 8);
}

/// Saturating narrowing check: true iff `v` fits in `width` bits.
template <typename T>
constexpr bool FitsInWidth(T v, int width) {
  static_assert(std::is_unsigned_v<T>);
  return BitWidth(v) <= width;
}

}  // namespace recomp::bits

#endif  // RECOMP_UTIL_BITS_H_
