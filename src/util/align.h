// Cache-line / SIMD-friendly aligned allocation.

#ifndef RECOMP_UTIL_ALIGN_H_
#define RECOMP_UTIL_ALIGN_H_

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>

namespace recomp {

/// Alignment used for all column buffers; covers AVX-512 loads and avoids
/// split cache lines.
inline constexpr std::size_t kColumnAlignment = 64;

/// STL-compatible allocator returning kColumnAlignment-aligned memory.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    // Aligned size must be a multiple of the alignment for std::aligned_alloc.
    std::size_t bytes = n * sizeof(T);
    bytes = (bytes + kColumnAlignment - 1) / kColumnAlignment * kColumnAlignment;
    void* p = std::aligned_alloc(kColumnAlignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace recomp

#endif  // RECOMP_UTIL_ALIGN_H_
