#include "gen/generators.h"

#include <algorithm>

#include "util/bits.h"
#include "util/random.h"

namespace recomp::gen {

Column<uint32_t> ShippedOrderDates(uint64_t n, double orders_per_day,
                                   uint64_t seed) {
  Rng rng(seed);
  Column<uint32_t> col;
  col.reserve(n);
  uint32_t day = 7300;  // Epoch day of the first order (arbitrary origin).
  const double p = 1.0 / std::max(1.0, orders_per_day);
  while (col.size() < n) {
    const uint64_t orders = rng.Geometric(p);
    for (uint64_t i = 0; i < orders && col.size() < n; ++i) {
      col.push_back(day);
    }
    ++day;
  }
  return col;
}

Column<uint32_t> SortedRuns(uint64_t n, double avg_run_length,
                            uint32_t max_step, uint64_t seed) {
  Rng rng(seed);
  Column<uint32_t> col;
  col.reserve(n);
  uint32_t value = 1000;
  const double p = 1.0 / std::max(1.0, avg_run_length);
  while (col.size() < n) {
    const uint64_t run = rng.Geometric(p);
    for (uint64_t i = 0; i < run && col.size() < n; ++i) col.push_back(value);
    value += 1 + static_cast<uint32_t>(rng.Below(std::max<uint32_t>(1, max_step)));
  }
  return col;
}

Column<uint32_t> Uniform(uint64_t n, uint64_t bound, uint64_t seed) {
  Rng rng(seed);
  Column<uint32_t> col(n);
  for (auto& v : col) v = static_cast<uint32_t>(rng.Below(bound));
  return col;
}

Column<uint64_t> Uniform64(uint64_t n, uint64_t bound, uint64_t seed) {
  Rng rng(seed);
  Column<uint64_t> col(n);
  for (auto& v : col) v = rng.Below(bound);
  return col;
}

Column<uint32_t> ZipfValues(uint64_t n, uint64_t distinct, double s,
                            uint64_t seed) {
  Rng rng(seed);
  ZipfSampler zipf(distinct, s);
  // Map ranks to scattered domain values so DICT has real work to do.
  Column<uint32_t> domain(distinct);
  for (uint64_t i = 0; i < distinct; ++i) {
    domain[i] = static_cast<uint32_t>(rng.Next());
  }
  Column<uint32_t> col(n);
  for (auto& v : col) v = domain[zipf.Sample(rng)];
  return col;
}

Column<uint32_t> StepLevels(uint64_t n, uint64_t segment_length,
                            int level_bits, int noise_bits, uint64_t seed) {
  Rng rng(seed);
  Column<uint32_t> col(n);
  uint32_t level = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (i % segment_length == 0) {
      level = static_cast<uint32_t>(
          rng.Below(uint64_t{1} << std::min(level_bits, 31)));
    }
    const uint32_t noise =
        noise_bits <= 0
            ? 0
            : static_cast<uint32_t>(rng.Below(uint64_t{1} << noise_bits));
    col[i] = level + noise;
  }
  return col;
}

Column<uint32_t> LinearTrend(uint64_t n, double slope, uint32_t noise_bound,
                             uint64_t seed) {
  Rng rng(seed);
  Column<uint32_t> col(n);
  for (uint64_t i = 0; i < n; ++i) {
    const double base = 1000.0 + slope * static_cast<double>(i);
    const uint64_t noise = noise_bound == 0 ? 0 : rng.Below(noise_bound);
    col[i] = static_cast<uint32_t>(
        std::clamp(base, 0.0, 4294967295.0 - static_cast<double>(noise))) +
             static_cast<uint32_t>(noise);
  }
  return col;
}

Column<uint32_t> OutlierMix(uint64_t n, int base_bits, int outlier_bits,
                            double outlier_fraction, uint64_t seed) {
  Rng rng(seed);
  Column<uint32_t> col(n);
  const uint64_t base_bound = uint64_t{1} << std::min(base_bits, 31);
  const uint64_t outlier_bound = uint64_t{1} << std::min(outlier_bits, 31);
  for (auto& v : col) {
    if (rng.Bernoulli(outlier_fraction)) {
      // Force a genuinely wide value: set the top bit of the outlier range.
      v = static_cast<uint32_t>(rng.Below(outlier_bound) | (outlier_bound >> 1));
    } else {
      v = static_cast<uint32_t>(rng.Below(base_bound));
    }
  }
  return col;
}

}  // namespace recomp::gen
