// Synthetic column generators.
//
// Substitution note (DESIGN.md §4): the paper motivates its claims with
// DBMS-resident data such as shipped-order date columns. These generators
// reproduce the *structural* properties those claims depend on — runs,
// monotonicity, locality, trends, outliers, skew — deterministically from a
// seed, so every experiment in bench/ is exactly reproducible.

#ifndef RECOMP_GEN_GENERATORS_H_
#define RECOMP_GEN_GENERATORS_H_

#include <cstdint>

#include "columnar/column.h"

namespace recomp::gen {

/// The paper's intro example: a date column of shipped orders. Dates are
/// days since an epoch; orders accrue over `days` days with a mean of
/// `orders_per_day`, so the column is monotone with one run per day
/// (geometrically distributed lengths).
Column<uint32_t> ShippedOrderDates(uint64_t n, double orders_per_day,
                                   uint64_t seed);

/// Sorted values with geometric runs: run lengths have mean `avg_run_length`
/// and consecutive run values step up by 1..max_step.
Column<uint32_t> SortedRuns(uint64_t n, double avg_run_length,
                            uint32_t max_step, uint64_t seed);

/// Uniform values in [0, bound).
Column<uint32_t> Uniform(uint64_t n, uint64_t bound, uint64_t seed);

/// Uniform values in [0, bound) as uint64.
Column<uint64_t> Uniform64(uint64_t n, uint64_t bound, uint64_t seed);

/// Zipf-distributed references into a value domain of `distinct` arbitrary
/// values (skew parameter `s`); models categorical columns.
Column<uint32_t> ZipfValues(uint64_t n, uint64_t distinct, double s,
                            uint64_t seed);

/// Per-segment levels drawn from [0, 2^level_bits) plus uniform in-segment
/// noise below 2^noise_bits: FOR's favorite shape.
Column<uint32_t> StepLevels(uint64_t n, uint64_t segment_length,
                            int level_bits, int noise_bits, uint64_t seed);

/// y = intercept + slope * i + noise, clamped to uint32: PLIN's shape.
Column<uint32_t> LinearTrend(uint64_t n, double slope, uint32_t noise_bound,
                             uint64_t seed);

/// Mostly-narrow values (below 2^base_bits) with `outlier_fraction` of wide
/// outliers (bit widths up to `outlier_bits`): PATCHED's shape.
Column<uint32_t> OutlierMix(uint64_t n, int base_bits, int outlier_bits,
                            double outlier_fraction, uint64_t seed);

}  // namespace recomp::gen

#endif  // RECOMP_GEN_GENERATORS_H_
