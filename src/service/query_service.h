// QueryService: the front door for thousands of concurrent scan clients.
//
// Clients register, then submit ScanSpecs; each submit returns a future.
// Admission control keeps an overload from queueing unbounded work: a
// client over its in-flight limit or a full queue is refused immediately
// with ResourceExhausted (fail fast beats queueing forever), and a query
// whose deadline passes while queued is answered DeadlineExceeded without
// executing. Admitted queries wait out a short batching window, then every
// query of the window executes as ONE shared-scan batch over one table
// snapshot (service/shared_scan.h): surviving chunks are fused-decoded once
// and every query's predicate evaluates against the shared buffer, with
// selection vectors recycled across queries and windows, nested predicates
// subsumed into their containing bands, and whole results recycled through
// the ResultCache — an identical spec at the same data version never
// touches the pipeline at all (and identical specs *within* one window
// execute once, the rest deduplicated onto that execution).
//
// The batching window is the classic shared-scan latency/throughput knob: a
// longer window groups more queries per pass (higher sharing ratio, higher
// throughput) at the cost of adding up to one window to each query's
// latency. Batches run at TaskPriority::kHigh on the shared pool, so
// interactive queries jump ahead of queued seal and recompression jobs.
//
// Deadlines are honored at three points: the dispatcher cuts the window
// early when the oldest queued deadline precedes the window deadline (a
// query that could still execute must not die waiting for companions); a
// query whose deadline already passed at batch pickup is refused without
// executing (service.queries.deadline_expired); and every result is
// re-checked after execution — a result that arrived past its deadline is
// reported DeadlineExceeded (service.deadline_missed_in_flight), never a
// late OK, so clients see one consistent contract.
//
// Results are bit-identical to running each spec through solo exec::Scan
// against the same snapshot (exec::ScanOutputsEqual) — batching is purely
// an execution strategy, never a semantic change.

#ifndef RECOMP_SERVICE_QUERY_SERVICE_H_
#define RECOMP_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/result_cache.h"
#include "service/shared_scan.h"
#include "store/table.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace recomp::service {

/// Tuning knobs of a QueryService.
struct ServiceOptions {
  /// Max queries one client may have queued or executing; the next submit
  /// is refused with ResourceExhausted.
  uint64_t max_in_flight_per_client = 64;
  /// Max queries queued across all clients; further submits are refused
  /// with ResourceExhausted until the dispatcher drains.
  uint64_t max_queue_depth = 4096;
  /// How long the dispatcher holds the first query of a window open for
  /// companions before executing the batch. 0 dispatches immediately
  /// (batching still groups whatever queued while the previous batch ran).
  std::chrono::microseconds batch_window{200};
  /// Max queries per batch; a longer queue dispatches in successive batches.
  uint64_t max_batch_queries = 1024;
  /// Recycle per-chunk selection vectors across queries and windows.
  bool reuse_selection_vectors = true;
  /// Entry capacity of the selection-vector cache.
  uint64_t selection_cache_capacity = 1u << 16;
  /// Byte budget of decoded chunks kept warm across windows.
  uint64_t decoded_cache_bytes = uint64_t{256} << 20;
  /// Byte budget of whole cached results; 0 disables result caching *and*
  /// in-batch deduplication (every admitted query then executes).
  uint64_t result_cache_bytes = uint64_t{64} << 20;
  /// Evaluate a band nested inside another band of the same batch over the
  /// containing band's selection instead of the full chunk.
  bool subsume_predicates = true;

  Status Validate() const;
};

/// Aggregated work accounting since the service started (see BatchStats for
/// the per-batch meaning of each field).
struct ServiceStats {
  uint64_t batches = 0;
  uint64_t queries_executed = 0;
  uint64_t chunks_decoded = 0;
  uint64_t chunk_evaluations = 0;
  uint64_t selection_cache_hits = 0;
  /// Queries answered from the result cache without executing.
  uint64_t result_cache_hits = 0;
  /// Queries answered by an identical companion within their own batch.
  uint64_t batch_dedup_hits = 0;
  /// Chunk evaluations served by re-filtering a containing band's selection.
  uint64_t subsumed_evaluations = 0;

  /// chunk_evaluations per physical decode; the shared-scan win.
  double sharing_ratio() const {
    return chunks_decoded == 0
               ? 0.0
               : static_cast<double>(chunk_evaluations) /
                     static_cast<double>(chunks_decoded);
  }
};

/// The concurrent-client scan service over one Table. The table and the
/// ExecContext's pool must outlive the service. All public methods are
/// thread-safe except Stop(), which only the owning thread should call.
class QueryService {
 public:
  /// A submitted query's eventual outcome.
  using ResultFuture = std::future<Result<exec::ScanResult>>;

  /// Validates `options` and starts the dispatcher thread. `ctx` is the
  /// pool batches fan out over; its priority is raised to kHigh so batch
  /// scans jump ahead of queued seal jobs (util/thread_pool.h).
  static Result<std::unique_ptr<QueryService>> Create(const store::Table* table,
                                                      ServiceOptions options = {},
                                                      ExecContext ctx = {});

  /// Stops the service (draining queued queries) and joins the dispatcher.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers a client and returns its id (admission is per client).
  uint64_t RegisterClient();

  /// Submits `spec` for client `client`. On admission, returns the future
  /// delivering the scan result (or its per-query error); the optional
  /// `deadline` is relative to now — a query still queued when it passes is
  /// answered DeadlineExceeded instead of executing, and a result completed
  /// past it is answered DeadlineExceeded as well (never a late OK). A
  /// queued deadline tighter than the batching window cuts the window
  /// early. Refusals:
  ///   InvalidArgument    the service is stopped,
  ///   KeyError           unknown client id,
  ///   ResourceExhausted  client at max in-flight, or queue full.
  Result<ResultFuture> Submit(
      uint64_t client, exec::ScanSpec spec,
      std::optional<std::chrono::nanoseconds> deadline = std::nullopt);

  /// Blocks until every query admitted so far has been answered.
  void Flush();

  /// Drains queued queries, then stops and joins the dispatcher. Submits
  /// arriving after Stop are refused. Idempotent; not safe to race with
  /// itself (the destructor calls it).
  void Stop();

  /// Queries queued but not yet picked up by the dispatcher.
  uint64_t queue_depth() const;

  /// Aggregated execution accounting (point-in-time copy).
  ServiceStats stats() const;

 private:
  /// One admitted query waiting for its window.
  struct Pending {
    uint64_t client = 0;
    exec::ScanSpec spec;
    std::promise<Result<exec::ScanResult>> promise;
    std::chrono::steady_clock::time_point enqueued;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
  };

  QueryService(const store::Table* table, ServiceOptions options,
               ExecContext ctx);

  void DispatcherLoop();

  /// Executes one popped window: answers expired deadlines, resolves the
  /// snapshot (cached while the table version stands), serves result-cache
  /// hits and in-batch duplicates without executing, runs the rest as one
  /// shared-scan batch, fulfills every promise (re-checking deadlines
  /// post-execution). Runs on the dispatcher thread only.
  void ExecuteWindow(std::vector<Pending>* batch);

  /// Delivers one executed (or cache-served) result: a query whose deadline
  /// passed before `completed` is answered DeadlineExceeded instead — a
  /// result the client could no longer use must not masquerade as OK.
  void Deliver(Pending* pending, Result<exec::ScanResult> result,
               std::chrono::steady_clock::time_point completed);

  /// Fulfills one query's promise and releases its in-flight slot.
  void Finish(Pending* pending, Result<exec::ScanResult> result);

  const store::Table* const table_;
  const ServiceOptions options_;
  /// The batch ExecContext: caller's pool, priority raised to kHigh.
  ExecContext ctx_;

  /// Null when options_.reuse_selection_vectors is false.
  std::unique_ptr<SelectionVectorCache> selection_cache_;
  std::unique_ptr<DecodedChunkCache> decoded_cache_;
  std::unique_ptr<ResultCache> result_cache_;

  /// Dispatcher-thread-only: the snapshot served while table_->version()
  /// stands. Never read from other threads, so unguarded by design.
  std::optional<store::TableSnapshot> snapshot_;

  mutable Mutex mu_;
  /// Wakes the dispatcher on submit and stop.
  CondVar cv_;
  /// Wakes Flush() when a batch finishes.
  CondVar idle_cv_;
  bool stop_ RECOMP_GUARDED_BY(mu_) = false;
  std::deque<Pending> queue_ RECOMP_GUARDED_BY(mu_);
  /// Per-client queued-or-executing counts; registration inserts, Finish
  /// decrements.
  std::unordered_map<uint64_t, uint64_t> in_flight_ RECOMP_GUARDED_BY(mu_);
  uint64_t next_client_ RECOMP_GUARDED_BY(mu_) = 0;
  bool executing_ RECOMP_GUARDED_BY(mu_) = false;
  ServiceStats totals_ RECOMP_GUARDED_BY(mu_);

  /// Started last in Create (after construction), joined by Stop.
  std::thread dispatcher_;
};

}  // namespace recomp::service

#endif  // RECOMP_SERVICE_QUERY_SERVICE_H_
