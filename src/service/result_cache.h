// Result-level caching: the terminal rung of the service's reuse ladder.
//
// The shared-scan layer amortizes *decodes* (DecodedChunkCache) and
// *selections* (SelectionVectorCache); this cache amortizes the whole
// query. Serving workloads repeat — dashboards re-issue identical specs
// every refresh ("Revisiting Data Compression in Column-Stores", PAPERS.md)
// — and a ScanResult is a pure function of (spec, table data version), so
// an identical spec arriving at the same version can be answered from the
// cached result without touching the pipeline at all.
//
// Keys are canonical spec strings (exec::CanonicalSpecKey): filter order is
// normalized away, so `Filter(a).Filter(b)` and `Filter(b).Filter(a)` share
// one entry. Versioning follows the selection cache exactly: entries belong
// to one current version, a lookup or insert carrying a newer version
// purges everything first, and stale-version inserts are dropped. Results
// carry materialized projections, so the budget is bytes (not entries) with
// FIFO eviction; an entry alone exceeding the budget is never cached.

#ifndef RECOMP_SERVICE_RESULT_CACHE_H_
#define RECOMP_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "exec/scan.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace recomp::service {

/// Thread-safe (version, canonical spec) → ScanResult cache.
class ResultCache {
 public:
  /// `max_bytes` bounds the cached results' approximate footprint; 0
  /// disables caching (every lookup misses, every insert is dropped).
  explicit ResultCache(uint64_t max_bytes) : max_bytes_(max_bytes) {}

  /// On hit, copies the cached result into `*out` and returns true. A
  /// `version` newer than the cache's purges every entry first (counted
  /// once per purge in service.result_cache.invalidations).
  bool Lookup(uint64_t version, const std::string& key, exec::ScanResult* out);

  /// Caches `result` for `key` at `version`, FIFO-evicting oldest entries
  /// until it fits the byte budget. Inserts for an older version than the
  /// cache's are dropped (a racing straggler must not resurrect stale
  /// data), as are results that alone exceed the budget. Callers must not
  /// cache errors — a transient failure must not poison later retries.
  void Insert(uint64_t version, const std::string& key,
              const exec::ScanResult& result);

  /// Current entry count / approximate byte footprint (point-in-time).
  uint64_t size() const;
  uint64_t bytes() const;

  /// The version the cached entries belong to (point-in-time; 0 when empty
  /// and never advanced).
  uint64_t version() const;

  /// The footprint charged against the budget: the owned buffers a cached
  /// copy retains (positions, projected values, per-chunk stats vectors).
  static uint64_t ApproxResultBytes(const exec::ScanResult& result);

 private:
  struct Entry {
    exec::ScanResult result;
    uint64_t bytes = 0;
  };

  void PurgeIfStaleLocked(uint64_t version) RECOMP_REQUIRES(mu_);

  const uint64_t max_bytes_;
  mutable Mutex mu_;
  uint64_t version_ RECOMP_GUARDED_BY(mu_) = 0;
  std::unordered_map<std::string, Entry> entries_ RECOMP_GUARDED_BY(mu_);
  /// Insertion order for FIFO eviction.
  std::deque<std::string> fifo_ RECOMP_GUARDED_BY(mu_);
  uint64_t bytes_ RECOMP_GUARDED_BY(mu_) = 0;
};

}  // namespace recomp::service

#endif  // RECOMP_SERVICE_RESULT_CACHE_H_
