#include "service/shared_scan.h"

#include <algorithm>
#include <utility>

#include "core/fused.h"
#include "obs/service_metrics.h"

namespace recomp::service {

namespace {

/// Reads one element of a decoded (plain, unsigned) chunk as uint64.
uint64_t ValueAt(const AnyColumn& values, uint64_t index) {
  return values.VisitPlain([&](const auto& col) -> uint64_t {
    return static_cast<uint64_t>(col[index]);
  });
}

/// The shared per-chunk execution: one pipeline instance serves every query
/// of a batch concurrently. SelectChunk answers from the selection cache
/// when it can, re-filters a containing band's cached selection when the
/// batch's containment lattice offers one, and only otherwise scans the
/// shared decoded buffer; GatherRows reads the shared buffers directly. All
/// counters are atomics — pool workers running different queries call in
/// simultaneously.
class SharedScanPipeline final : public exec::ChunkPipeline {
 public:
  SharedScanPipeline(const store::TableSnapshot& snapshot,
                     const std::vector<const exec::ScanSpec*>& specs,
                     SelectionVectorCache* selection_cache,
                     DecodedChunkCache* decoded_cache, bool subsume_predicates)
      : version_(snapshot.version()),
        selection_cache_(selection_cache),
        decoded_cache_(decoded_cache),
        subsume_(subsume_predicates) {
    columns_.reserve(snapshot.num_columns());
    for (uint64_t i = 0; i < snapshot.num_columns(); ++i) {
      columns_.push_back(&snapshot.column(i).chunked());
    }
    if (subsume_) BuildLattice(snapshot, specs);
  }

  Result<exec::SelectionResult> SelectChunk(
      uint64_t column, uint64_t chunk,
      const exec::RangePredicate& predicate) override {
    chunk_evaluations_.fetch_add(1, std::memory_order_relaxed);
    RECOMP_ASSIGN_OR_RETURN(const std::shared_ptr<const CachedSelection> entry,
                            EvalBand(column, chunk, predicate));
    return entry->selection;
  }

  Result<exec::GatherResult> GatherRows(uint64_t column,
                                        const std::vector<uint64_t>& rows,
                                        const ExecContext& ctx) override {
    (void)ctx;  // Buffers are already decoded; nothing to fan out.
    const ChunkedCompressedColumn& chunked = *columns_[column];
    exec::GatherResult out;
    out.stats.rows = rows.size();
    out.points.resize(rows.size());
    // Rows arrive ascending (the driver gathers its sorted selection), so a
    // forward walk visits each touched chunk once; the reset handles any
    // out-of-order caller.
    uint64_t chunk = 0;
    bool loaded = false;
    std::shared_ptr<const AnyColumn> values;
    for (size_t i = 0; i < rows.size(); ++i) {
      const uint64_t row = rows[i];
      if (row >= chunked.size()) {
        return Status::OutOfRange("row out of range");
      }
      if (loaded && row < chunked.chunk(chunk).zone.row_begin) {
        chunk = 0;
        loaded = false;
      }
      while (row >= chunked.chunk(chunk).zone.row_begin +
                        chunked.chunk(chunk).zone.row_count) {
        ++chunk;
        loaded = false;
      }
      if (!loaded) {
        RECOMP_ASSIGN_OR_RETURN(values, Decoded(column, chunk));
        loaded = true;
        ++out.stats.chunks_touched;
      }
      const uint64_t local = row - chunked.chunk(chunk).zone.row_begin;
      out.points[i] = {ValueAt(*values, local),
                       exec::Strategy::kDecompressScan};
    }
    out.stats.strategy_rows[static_cast<int>(
        exec::Strategy::kDecompressScan)] = rows.size();
    return out;
  }

  uint64_t chunk_evaluations() const {
    return chunk_evaluations_.load(std::memory_order_relaxed);
  }
  uint64_t selection_hits() const {
    return selection_hits_.load(std::memory_order_relaxed);
  }
  uint64_t subsumed_evaluations() const {
    return subsumed_.load(std::memory_order_relaxed);
  }
  uint64_t subsumption_values_examined() const {
    return values_examined_.load(std::memory_order_relaxed);
  }

 private:
  /// Identity of one filter band on one (snapshot-indexed) column.
  struct BandKey {
    uint64_t column = 0;
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool operator==(const BandKey& other) const {
      return column == other.column && lo == other.lo && hi == other.hi;
    }
  };
  struct BandKeyHash {
    size_t operator()(const BandKey& key) const {
      uint64_t h = 1469598103934665603ull;
      for (const uint64_t w : {key.column, key.lo, key.hi}) {
        h = (h ^ w) * 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };

  /// Maps every band of the batch to its *narrowest strict container* on
  /// the same column (absent = a maximal band that must scan). Narrowest
  /// wins because a tighter parent leaves fewer pairs to re-filter; chains
  /// resolve recursively, so the widest band of a nest scans once and each
  /// tier below it filters its parent's survivors.
  void BuildLattice(const store::TableSnapshot& snapshot,
                    const std::vector<const exec::ScanSpec*>& specs) {
    std::unordered_map<uint64_t, std::vector<exec::RangePredicate>> bands;
    for (const exec::ScanSpec* spec : specs) {
      for (const exec::ScanSpec::FilterSpec& filter : spec->filters()) {
        // A name the snapshot cannot resolve fails that query in its own
        // slot later; it contributes nothing to the lattice.
        const Result<uint64_t> column = snapshot.column_index(filter.column);
        if (!column.ok()) continue;
        std::vector<exec::RangePredicate>& column_bands = bands[*column];
        if (std::find(column_bands.begin(), column_bands.end(),
                      filter.predicate) == column_bands.end()) {
          column_bands.push_back(filter.predicate);
        }
      }
    }
    for (const auto& [column, column_bands] : bands) {
      for (const exec::RangePredicate& band : column_bands) {
        const exec::RangePredicate* best = nullptr;
        for (const exec::RangePredicate& candidate : column_bands) {
          if (!candidate.StrictlyContains(band)) continue;
          if (best == nullptr ||
              candidate.hi - candidate.lo < best->hi - best->lo ||
              (candidate.hi - candidate.lo == best->hi - best->lo &&
               candidate.lo < best->lo)) {
            best = &candidate;
          }
        }
        if (best != nullptr) {
          parents_.emplace(BandKey{column, band.lo, band.hi}, *best);
        }
      }
    }
  }

  const exec::RangePredicate* FindParent(uint64_t column,
                                         const exec::RangePredicate& band)
      const {
    const auto it = parents_.find(BandKey{column, band.lo, band.hi});
    return it == parents_.end() ? nullptr : &it->second;
  }

  /// Evaluates one band over one chunk, preferring (in order) the
  /// cross-batch selection cache, the batch-local memo, a containing band's
  /// selection (recursively), and only last a scan of the shared decoded
  /// buffer. Returns the positions *and* the matched values so callers one
  /// tier down can do the same.
  Result<std::shared_ptr<const CachedSelection>> EvalBand(
      uint64_t column, uint64_t chunk, const exec::RangePredicate& pred) {
    const SelectionKey key{column, chunk, pred.lo, pred.hi};
    if (selection_cache_ != nullptr) {
      CachedSelection cached;
      if (selection_cache_->Lookup(version_, key, &cached)) {
        selection_hits_.fetch_add(1, std::memory_order_relaxed);
        return std::make_shared<const CachedSelection>(std::move(cached));
      }
    }
    if (subsume_) {
      MutexLock lock(&memo_mu_);
      const auto it = memo_.find(key);
      if (it != memo_.end()) return it->second;
    }
    std::shared_ptr<CachedSelection> entry = std::make_shared<CachedSelection>();
    entry->selection.stats.strategy = exec::Strategy::kDecompressScan;
    const exec::RangePredicate* parent =
        subsume_ ? FindParent(column, pred) : nullptr;
    if (parent != nullptr) {
      RECOMP_ASSIGN_OR_RETURN(
          const std::shared_ptr<const CachedSelection> base,
          EvalBand(column, chunk, *parent));
      const uint64_t n = base->selection.positions.size();
      subsumed_.fetch_add(1, std::memory_order_relaxed);
      values_examined_.fetch_add(n, std::memory_order_relaxed);
      for (uint64_t i = 0; i < n; ++i) {
        const uint64_t v = base->values[i];
        if (v >= pred.lo && v <= pred.hi) {
          entry->selection.positions.push_back(base->selection.positions[i]);
          entry->values.push_back(v);
        }
      }
    } else {
      RECOMP_ASSIGN_OR_RETURN(const std::shared_ptr<const AnyColumn> values,
                              Decoded(column, chunk));
      entry->selection.stats.values_decoded = values->size();
      const uint64_t n = values->size();
      for (uint64_t i = 0; i < n; ++i) {
        const uint64_t v = ValueAt(*values, i);
        if (v >= pred.lo && v <= pred.hi) {
          entry->selection.positions.push_back(static_cast<uint32_t>(i));
          entry->values.push_back(v);
        }
      }
    }
    if (selection_cache_ != nullptr) {
      selection_cache_->Insert(version_, key, *entry);
    }
    if (subsume_) {
      MutexLock lock(&memo_mu_);
      memo_.emplace(key, entry);  // First computation wins; dups are equal.
    }
    return std::shared_ptr<const CachedSelection>(std::move(entry));
  }

  Result<std::shared_ptr<const AnyColumn>> Decoded(uint64_t column,
                                                   uint64_t chunk) {
    return decoded_cache_->GetOrDecode(
        version_, column, chunk, columns_[column]->chunk(chunk).column);
  }

  const uint64_t version_;
  std::vector<const ChunkedCompressedColumn*> columns_;
  SelectionVectorCache* const selection_cache_;
  DecodedChunkCache* const decoded_cache_;
  const bool subsume_;
  /// Read-only after construction: band → narrowest strict container.
  std::unordered_map<BandKey, exec::RangePredicate, BandKeyHash> parents_;
  /// Batch-local memo so a band evaluates once per chunk even with the
  /// selection cache disabled (and so parent selections stay shared).
  Mutex memo_mu_;
  std::unordered_map<SelectionKey, std::shared_ptr<const CachedSelection>,
                     SelectionKeyHash>
      memo_ RECOMP_GUARDED_BY(memo_mu_);
  std::atomic<uint64_t> chunk_evaluations_{0};
  std::atomic<uint64_t> selection_hits_{0};
  std::atomic<uint64_t> subsumed_{0};
  std::atomic<uint64_t> values_examined_{0};
};

}  // namespace

void DecodedChunkCache::PurgeIfStaleLocked(uint64_t version) {
  if (version <= version_) return;
  cells_.clear();
  fifo_.clear();
  settled_bytes_.clear();
  bytes_ = 0;
  version_ = version;
}

Result<std::shared_ptr<const AnyColumn>> DecodedChunkCache::GetOrDecode(
    uint64_t version, uint64_t column, uint64_t chunk,
    const CompressedColumn& compressed) {
  std::shared_ptr<Cell> cell;
  bool decoder = false;
  {
    MutexLock lock(&mu_);
    PurgeIfStaleLocked(version);
    if (version == version_) {
      const uint64_t key = Key(column, chunk);
      const auto it = cells_.find(key);
      if (it != cells_.end()) {
        cell = it->second;
      } else {
        cell = std::make_shared<Cell>();
        cells_.emplace(key, cell);
        fifo_.push_back(key);
        decoder = true;
      }
    }
  }
  if (cell == nullptr) {
    // A version older than the cache's (a straggling batch): decode without
    // caching — stale data must never enter the map.
    decodes_.fetch_add(1, std::memory_order_relaxed);
    obs::ServiceMetrics::Get().chunks_decoded->Increment();
    RECOMP_ASSIGN_OR_RETURN(AnyColumn decoded, FusedDecompress(compressed));
    return std::make_shared<const AnyColumn>(std::move(decoded));
  }
  if (decoder) {
    decodes_.fetch_add(1, std::memory_order_relaxed);
    obs::ServiceMetrics::Get().chunks_decoded->Increment();
    Result<AnyColumn> decoded = FusedDecompress(compressed);
    uint64_t added_bytes = 0;
    {
      MutexLock lock(&cell->mu);
      if (decoded.ok()) {
        cell->values = std::make_shared<const AnyColumn>(
            std::move(decoded).ValueUnsafe());
        added_bytes = cell->values->ByteSize();
      } else {
        cell->status = std::move(decoded).status();
      }
      cell->done = true;
    }
    cell->cv.NotifyAll();
    {
      // Settle the accounting only if this cell is still the mapped one: a
      // version purge may have dropped it while we decoded, and charging a
      // dropped cell's bytes would leak them forever (nothing could ever
      // evict them back out). A failed decode settles at 0 bytes so the
      // dead cell stays evictable.
      MutexLock lock(&mu_);
      const auto it = cells_.find(Key(column, chunk));
      if (it != cells_.end() && it->second == cell) {
        settled_bytes_[Key(column, chunk)] = added_bytes;
        bytes_ += added_bytes;
      }
    }
  } else {
    MutexLock lock(&cell->mu);
    while (!cell->done) cell->cv.Wait(lock);
  }
  MutexLock lock(&cell->mu);
  if (!cell->status.ok()) return cell->status;
  return cell->values;
}

void DecodedChunkCache::EvictToBudget() {
  MutexLock lock(&mu_);
  // An unsettled key is a decode still in flight: evicting it would strand
  // its eventual bytes with no owner (the decoder would charge a cell no
  // longer in the map — or, with the identity check, never charge it, and
  // waiters would re-decode a chunk we just paid for). Skip it; it keeps
  // its place in eviction order for the next pass.
  std::vector<uint64_t> in_flight;
  while (bytes_ > max_bytes_ && !fifo_.empty()) {
    const uint64_t key = fifo_.front();
    fifo_.pop_front();
    const auto it = cells_.find(key);
    if (it == cells_.end()) continue;
    const auto settled = settled_bytes_.find(key);
    if (settled == settled_bytes_.end()) {
      in_flight.push_back(key);
      continue;
    }
    bytes_ -= std::min(bytes_, settled->second);
    settled_bytes_.erase(settled);
    cells_.erase(it);
  }
  // Back at the front: a skipped cell keeps its oldest-first priority.
  fifo_.insert(fifo_.begin(), in_flight.begin(), in_flight.end());
}

uint64_t DecodedChunkCache::size() const {
  MutexLock lock(&mu_);
  return cells_.size();
}

uint64_t DecodedChunkCache::bytes() const {
  MutexLock lock(&mu_);
  return bytes_;
}

std::vector<Result<exec::ScanResult>> ExecuteBatch(
    const store::TableSnapshot& snapshot,
    const std::vector<const exec::ScanSpec*>& specs, const ExecContext& ctx,
    SelectionVectorCache* selection_cache, DecodedChunkCache* decoded_cache,
    BatchStats* stats, bool subsume_predicates) {
  // Without a caller-retained working set, decode-once still holds within
  // the batch via a batch-local cache.
  DecodedChunkCache local_cache(0);
  DecodedChunkCache* cache =
      decoded_cache != nullptr ? decoded_cache : &local_cache;
  const uint64_t decodes_before = cache->decodes();

  SharedScanPipeline pipeline(snapshot, specs, selection_cache, cache,
                              subsume_predicates);
  std::vector<Result<exec::ScanResult>> results(
      specs.size(),
      Result<exec::ScanResult>(Status::InvalidArgument("query not executed")));
  ParallelFor(ctx, specs.size(), [&](uint64_t q) {
    // Each query's driver runs sequentially inside its own task: nesting a
    // fan-out on the shared pool would deadlock a saturated fixed-size pool,
    // and cross-query parallelism already covers the batch.
    results[q] = exec::ScanWithPipeline(snapshot, *specs[q], ExecContext{},
                                        pipeline);
  });

  BatchStats batch;
  batch.queries = specs.size();
  batch.chunks_decoded = cache->decodes() - decodes_before;
  batch.chunk_evaluations = pipeline.chunk_evaluations();
  batch.selection_cache_hits = pipeline.selection_hits();
  batch.subsumed_evaluations = pipeline.subsumed_evaluations();
  batch.subsumption_values_examined = pipeline.subsumption_values_examined();
  const obs::ServiceMetrics& metrics = obs::ServiceMetrics::Get();
  metrics.chunk_evaluations->Add(batch.chunk_evaluations);
  metrics.subsumed_evaluations->Add(batch.subsumed_evaluations);
  metrics.subsumption_values_examined->Add(batch.subsumption_values_examined);
  if (stats != nullptr) *stats = batch;
  return results;
}

}  // namespace recomp::service
