#include "service/shared_scan.h"

#include <algorithm>
#include <utility>

#include "core/fused.h"
#include "obs/service_metrics.h"

namespace recomp::service {

namespace {

/// Reads one element of a decoded (plain, unsigned) chunk as uint64.
uint64_t ValueAt(const AnyColumn& values, uint64_t index) {
  return values.VisitPlain([&](const auto& col) -> uint64_t {
    return static_cast<uint64_t>(col[index]);
  });
}

/// The shared per-chunk execution: one pipeline instance serves every query
/// of a batch concurrently. SelectChunk answers from the selection cache
/// when it can, otherwise scans the shared decoded buffer; GatherRows reads
/// the shared buffers directly. All counters are atomics — pool workers
/// running different queries call in simultaneously.
class SharedScanPipeline final : public exec::ChunkPipeline {
 public:
  SharedScanPipeline(const store::TableSnapshot& snapshot,
                     SelectionVectorCache* selection_cache,
                     DecodedChunkCache* decoded_cache)
      : version_(snapshot.version()),
        selection_cache_(selection_cache),
        decoded_cache_(decoded_cache) {
    columns_.reserve(snapshot.num_columns());
    for (uint64_t i = 0; i < snapshot.num_columns(); ++i) {
      columns_.push_back(&snapshot.column(i).chunked());
    }
  }

  Result<exec::SelectionResult> SelectChunk(
      uint64_t column, uint64_t chunk,
      const exec::RangePredicate& predicate) override {
    chunk_evaluations_.fetch_add(1, std::memory_order_relaxed);
    const SelectionKey key{column, chunk, predicate.lo, predicate.hi};
    if (selection_cache_ != nullptr) {
      exec::SelectionResult cached;
      if (selection_cache_->Lookup(version_, key, &cached)) {
        selection_hits_.fetch_add(1, std::memory_order_relaxed);
        return cached;
      }
    }
    RECOMP_ASSIGN_OR_RETURN(const std::shared_ptr<const AnyColumn> values,
                            Decoded(column, chunk));
    exec::SelectionResult result;
    result.stats.strategy = exec::Strategy::kDecompressScan;
    result.stats.values_decoded = values->size();
    const uint64_t n = values->size();
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t v = ValueAt(*values, i);
      if (v >= predicate.lo && v <= predicate.hi) {
        result.positions.push_back(static_cast<uint32_t>(i));
      }
    }
    if (selection_cache_ != nullptr) {
      selection_cache_->Insert(version_, key, result);
    }
    return result;
  }

  Result<exec::GatherResult> GatherRows(uint64_t column,
                                        const std::vector<uint64_t>& rows,
                                        const ExecContext& ctx) override {
    (void)ctx;  // Buffers are already decoded; nothing to fan out.
    const ChunkedCompressedColumn& chunked = *columns_[column];
    exec::GatherResult out;
    out.stats.rows = rows.size();
    out.points.resize(rows.size());
    // Rows arrive ascending (the driver gathers its sorted selection), so a
    // forward walk visits each touched chunk once; the reset handles any
    // out-of-order caller.
    uint64_t chunk = 0;
    bool loaded = false;
    std::shared_ptr<const AnyColumn> values;
    for (size_t i = 0; i < rows.size(); ++i) {
      const uint64_t row = rows[i];
      if (row >= chunked.size()) {
        return Status::OutOfRange("row out of range");
      }
      if (loaded && row < chunked.chunk(chunk).zone.row_begin) {
        chunk = 0;
        loaded = false;
      }
      while (row >= chunked.chunk(chunk).zone.row_begin +
                        chunked.chunk(chunk).zone.row_count) {
        ++chunk;
        loaded = false;
      }
      if (!loaded) {
        RECOMP_ASSIGN_OR_RETURN(values, Decoded(column, chunk));
        loaded = true;
        ++out.stats.chunks_touched;
      }
      const uint64_t local = row - chunked.chunk(chunk).zone.row_begin;
      out.points[i] = {ValueAt(*values, local),
                       exec::Strategy::kDecompressScan};
    }
    out.stats.strategy_rows[static_cast<int>(
        exec::Strategy::kDecompressScan)] = rows.size();
    return out;
  }

  uint64_t chunk_evaluations() const {
    return chunk_evaluations_.load(std::memory_order_relaxed);
  }
  uint64_t selection_hits() const {
    return selection_hits_.load(std::memory_order_relaxed);
  }

 private:
  Result<std::shared_ptr<const AnyColumn>> Decoded(uint64_t column,
                                                   uint64_t chunk) {
    return decoded_cache_->GetOrDecode(
        version_, column, chunk, columns_[column]->chunk(chunk).column);
  }

  const uint64_t version_;
  std::vector<const ChunkedCompressedColumn*> columns_;
  SelectionVectorCache* const selection_cache_;
  DecodedChunkCache* const decoded_cache_;
  std::atomic<uint64_t> chunk_evaluations_{0};
  std::atomic<uint64_t> selection_hits_{0};
};

}  // namespace

void DecodedChunkCache::PurgeIfStaleLocked(uint64_t version) {
  if (version <= version_) return;
  cells_.clear();
  fifo_.clear();
  bytes_ = 0;
  version_ = version;
}

Result<std::shared_ptr<const AnyColumn>> DecodedChunkCache::GetOrDecode(
    uint64_t version, uint64_t column, uint64_t chunk,
    const CompressedColumn& compressed) {
  std::shared_ptr<Cell> cell;
  bool decoder = false;
  {
    MutexLock lock(&mu_);
    PurgeIfStaleLocked(version);
    if (version == version_) {
      const uint64_t key = Key(column, chunk);
      const auto it = cells_.find(key);
      if (it != cells_.end()) {
        cell = it->second;
      } else {
        cell = std::make_shared<Cell>();
        cells_.emplace(key, cell);
        fifo_.push_back(key);
        decoder = true;
      }
    }
  }
  if (cell == nullptr) {
    // A version older than the cache's (a straggling batch): decode without
    // caching — stale data must never enter the map.
    decodes_.fetch_add(1, std::memory_order_relaxed);
    obs::ServiceMetrics::Get().chunks_decoded->Increment();
    RECOMP_ASSIGN_OR_RETURN(AnyColumn decoded, FusedDecompress(compressed));
    return std::make_shared<const AnyColumn>(std::move(decoded));
  }
  if (decoder) {
    decodes_.fetch_add(1, std::memory_order_relaxed);
    obs::ServiceMetrics::Get().chunks_decoded->Increment();
    Result<AnyColumn> decoded = FusedDecompress(compressed);
    uint64_t added_bytes = 0;
    {
      MutexLock lock(&cell->mu);
      if (decoded.ok()) {
        cell->values = std::make_shared<const AnyColumn>(
            std::move(decoded).ValueUnsafe());
        added_bytes = cell->values->ByteSize();
      } else {
        cell->status = std::move(decoded).status();
      }
      cell->done = true;
    }
    cell->cv.NotifyAll();
    if (added_bytes != 0) {
      MutexLock lock(&mu_);
      bytes_ += added_bytes;
    }
  } else {
    MutexLock lock(&cell->mu);
    while (!cell->done) cell->cv.Wait(lock);
  }
  MutexLock lock(&cell->mu);
  if (!cell->status.ok()) return cell->status;
  return cell->values;
}

void DecodedChunkCache::EvictToBudget() {
  MutexLock lock(&mu_);
  while (bytes_ > max_bytes_ && !fifo_.empty()) {
    const uint64_t key = fifo_.front();
    fifo_.pop_front();
    const auto it = cells_.find(key);
    if (it == cells_.end()) continue;
    {
      // Only settled cells carry bytes; an in-flight cell (still decoding)
      // accounts its bytes after we dropped it from the map, which is fine:
      // bytes_ only ever overestimates until the next eviction pass.
      MutexLock cell_lock(&it->second->mu);
      if (it->second->done && it->second->values != nullptr) {
        bytes_ -= std::min(bytes_, it->second->values->ByteSize());
      }
    }
    cells_.erase(it);
  }
}

uint64_t DecodedChunkCache::size() const {
  MutexLock lock(&mu_);
  return cells_.size();
}

uint64_t DecodedChunkCache::bytes() const {
  MutexLock lock(&mu_);
  return bytes_;
}

std::vector<Result<exec::ScanResult>> ExecuteBatch(
    const store::TableSnapshot& snapshot,
    const std::vector<const exec::ScanSpec*>& specs, const ExecContext& ctx,
    SelectionVectorCache* selection_cache, DecodedChunkCache* decoded_cache,
    BatchStats* stats) {
  // Without a caller-retained working set, decode-once still holds within
  // the batch via a batch-local cache.
  DecodedChunkCache local_cache(0);
  DecodedChunkCache* cache =
      decoded_cache != nullptr ? decoded_cache : &local_cache;
  const uint64_t decodes_before = cache->decodes();

  SharedScanPipeline pipeline(snapshot, selection_cache, cache);
  std::vector<Result<exec::ScanResult>> results(
      specs.size(),
      Result<exec::ScanResult>(Status::InvalidArgument("query not executed")));
  ParallelFor(ctx, specs.size(), [&](uint64_t q) {
    // Each query's driver runs sequentially inside its own task: nesting a
    // fan-out on the shared pool would deadlock a saturated fixed-size pool,
    // and cross-query parallelism already covers the batch.
    results[q] = exec::ScanWithPipeline(snapshot, *specs[q], ExecContext{},
                                        pipeline);
  });

  BatchStats batch;
  batch.queries = specs.size();
  batch.chunks_decoded = cache->decodes() - decodes_before;
  batch.chunk_evaluations = pipeline.chunk_evaluations();
  batch.selection_cache_hits = pipeline.selection_hits();
  obs::ServiceMetrics::Get().chunk_evaluations->Add(batch.chunk_evaluations);
  if (stats != nullptr) *stats = batch;
  return results;
}

}  // namespace recomp::service
