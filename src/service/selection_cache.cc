#include "service/selection_cache.h"

#include "obs/service_metrics.h"

namespace recomp::service {

void SelectionVectorCache::PurgeIfStaleLocked(uint64_t version) {
  if (version <= version_) return;
  if (!entries_.empty()) {
    obs::ServiceMetrics::Get().selection_cache_invalidations->Increment();
    entries_.clear();
    fifo_.clear();
  }
  version_ = version;
}

bool SelectionVectorCache::Lookup(uint64_t version, const SelectionKey& key,
                                  CachedSelection* out) {
  const obs::ServiceMetrics& metrics = obs::ServiceMetrics::Get();
  MutexLock lock(&mu_);
  PurgeIfStaleLocked(version);
  const auto it = entries_.find(key);
  if (it == entries_.end() || version != version_) {
    metrics.selection_cache_misses->Increment();
    return false;
  }
  *out = it->second;
  metrics.selection_cache_hits->Increment();
  return true;
}

void SelectionVectorCache::Insert(uint64_t version, const SelectionKey& key,
                                  const CachedSelection& entry) {
  if (capacity_ == 0) return;
  MutexLock lock(&mu_);
  PurgeIfStaleLocked(version);
  if (version != version_) return;  // Stale straggler: drop.
  if (entries_.count(key) != 0) return;
  while (entries_.size() >= capacity_) {
    entries_.erase(fifo_.front());
    fifo_.pop_front();
  }
  entries_.emplace(key, entry);
  fifo_.push_back(key);
}

uint64_t SelectionVectorCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

uint64_t SelectionVectorCache::version() const {
  MutexLock lock(&mu_);
  return version_;
}

}  // namespace recomp::service
