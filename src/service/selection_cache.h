// Selection-vector reuse across batches: the "recycling intermediates" leg
// of shared-scan execution.
//
// Concurrent dashboards re-issue the same predicates every window. Once a
// (column, chunk, predicate) selection has been computed against some table
// version, every later query asking the same question against the *same*
// version can reuse the positions verbatim — the data cannot have changed,
// because appends are the only mutation that alters logical rows and every
// append bumps the version (store/table.h). Sealing and background
// recompression rewrite the representation only, so they neither bump the
// version nor invalidate cached selections.
//
// The cache therefore keys on one current version: a lookup or insert
// carrying a newer version purges everything from the older one first (a
// table's versions move forward, so stale entries can never be asked for
// again). Capacity is bounded by entry count with FIFO eviction — selection
// vectors are small (positions plus matched values), so a simple bound
// beats byte accounting here.
//
// Entries carry the matched VALUES alongside the positions. That is what
// predicate subsumption (shared_scan.cc) feeds on: a band nested inside a
// cached band re-filters the cached (position, value) pairs directly — no
// chunk decode, no full scan — because a row passing the narrow band
// necessarily passed the wide one.

#ifndef RECOMP_SERVICE_SELECTION_CACHE_H_
#define RECOMP_SERVICE_SELECTION_CACHE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "exec/selection.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace recomp::service {

/// Identity of one cached per-chunk selection: which chunk of which column,
/// filtered by which inclusive range.
struct SelectionKey {
  uint64_t column = 0;
  uint64_t chunk = 0;
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const SelectionKey& other) const {
    return column == other.column && chunk == other.chunk && lo == other.lo &&
           hi == other.hi;
  }
};

struct SelectionKeyHash {
  size_t operator()(const SelectionKey& key) const {
    // FNV-1a over the four words: cheap and good enough for a cache map.
    uint64_t h = 1469598103934665603ull;
    for (const uint64_t w : {key.column, key.chunk, key.lo, key.hi}) {
      h = (h ^ w) * 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

/// One cached per-chunk selection: the matching chunk-local positions plus
/// the column values at those positions (index-aligned with
/// selection.positions). The values make the entry a self-contained
/// evaluation substrate for any predicate nested inside this one.
struct CachedSelection {
  exec::SelectionResult selection;
  Column<uint64_t> values;
};

/// Thread-safe (version, column, chunk, predicate) → selection-vector cache.
/// All methods may be called concurrently from pool workers.
class SelectionVectorCache {
 public:
  /// `capacity` = max cached entries; 0 disables caching (every lookup
  /// misses, every insert is dropped).
  explicit SelectionVectorCache(uint64_t capacity) : capacity_(capacity) {}

  /// On hit, copies the cached selection into `*out` and returns true.
  /// A `version` newer than the cache's purges every entry first (counted
  /// once per purge in service.selection_cache.invalidations).
  bool Lookup(uint64_t version, const SelectionKey& key, CachedSelection* out);

  /// Caches `entry` for `key` at `version`, evicting the oldest entry at
  /// capacity. Inserts for an older version than the cache's are dropped
  /// (a racing straggler must not resurrect stale data).
  void Insert(uint64_t version, const SelectionKey& key,
              const CachedSelection& entry);

  /// Current entry count (point-in-time).
  uint64_t size() const;

  /// The version the cached entries belong to (point-in-time; 0 when empty
  /// and never advanced).
  uint64_t version() const;

 private:
  /// Drops every entry when `version` is newer than the cached one.
  void PurgeIfStaleLocked(uint64_t version) RECOMP_REQUIRES(mu_);

  const uint64_t capacity_;
  mutable Mutex mu_;
  uint64_t version_ RECOMP_GUARDED_BY(mu_) = 0;
  std::unordered_map<SelectionKey, CachedSelection, SelectionKeyHash> entries_
      RECOMP_GUARDED_BY(mu_);
  /// Insertion order for FIFO eviction.
  std::deque<SelectionKey> fifo_ RECOMP_GUARDED_BY(mu_);
};

}  // namespace recomp::service

#endif  // RECOMP_SERVICE_SELECTION_CACHE_H_
