#include "service/query_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/service_metrics.h"

namespace recomp::service {

namespace {

uint64_t ElapsedNanos(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace

Status ServiceOptions::Validate() const {
  if (max_in_flight_per_client == 0) {
    return Status::InvalidArgument(
        "max_in_flight_per_client must be positive");
  }
  if (max_queue_depth == 0) {
    return Status::InvalidArgument("max_queue_depth must be positive");
  }
  if (max_batch_queries == 0) {
    return Status::InvalidArgument("max_batch_queries must be positive");
  }
  if (batch_window.count() < 0) {
    return Status::InvalidArgument("batch_window must be non-negative");
  }
  return Status::OK();
}

Result<std::unique_ptr<QueryService>> QueryService::Create(
    const store::Table* table, ServiceOptions options, ExecContext ctx) {
  if (table == nullptr) {
    return Status::InvalidArgument("query service needs a table");
  }
  RECOMP_RETURN_NOT_OK(options.Validate());
  // unique_ptr, not value: the dispatcher thread holds `this`, so the
  // service must never move. new because the constructor is private.
  std::unique_ptr<QueryService> service(
      new QueryService(table, options, ctx));
  service->dispatcher_ = std::thread([s = service.get()] {
    s->DispatcherLoop();
  });
  return service;
}

QueryService::QueryService(const store::Table* table, ServiceOptions options,
                           ExecContext ctx)
    : table_(table), options_(options), ctx_(ctx) {
  ctx_.priority = TaskPriority::kHigh;
  if (options_.reuse_selection_vectors) {
    selection_cache_ = std::make_unique<SelectionVectorCache>(
        options_.selection_cache_capacity);
  }
  decoded_cache_ =
      std::make_unique<DecodedChunkCache>(options_.decoded_cache_bytes);
  if (options_.result_cache_bytes > 0) {
    result_cache_ = std::make_unique<ResultCache>(options_.result_cache_bytes);
  }
}

QueryService::~QueryService() { Stop(); }

uint64_t QueryService::RegisterClient() {
  MutexLock lock(&mu_);
  const uint64_t id = next_client_++;
  in_flight_.emplace(id, 0);
  return id;
}

Result<QueryService::ResultFuture> QueryService::Submit(
    uint64_t client, exec::ScanSpec spec,
    std::optional<std::chrono::nanoseconds> deadline) {
  const obs::ServiceMetrics& metrics = obs::ServiceMetrics::Get();
  const auto now = std::chrono::steady_clock::now();
  ResultFuture future;
  {
    MutexLock lock(&mu_);
    if (stop_) {
      return Status::InvalidArgument("query service is stopped");
    }
    const auto it = in_flight_.find(client);
    if (it == in_flight_.end()) {
      return Status::KeyError("no client registered with id " +
                              std::to_string(client));
    }
    if (it->second >= options_.max_in_flight_per_client) {
      metrics.rejected_client_limit->Increment();
      return Status::ResourceExhausted(
          "client " + std::to_string(client) + " already has " +
          std::to_string(it->second) + " queries in flight");
    }
    if (queue_.size() >= options_.max_queue_depth) {
      metrics.rejected_queue_full->Increment();
      return Status::ResourceExhausted("query queue is full");
    }
    ++it->second;
    Pending pending;
    pending.client = client;
    pending.spec = std::move(spec);
    pending.enqueued = now;
    if (deadline.has_value()) {
      pending.has_deadline = true;
      pending.deadline = now + *deadline;
    }
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
  }
  metrics.admitted->Increment();
  cv_.NotifyOne();
  return future;
}

void QueryService::Flush() {
  MutexLock lock(&mu_);
  while (!queue_.empty() || executing_) idle_cv_.Wait(lock);
}

void QueryService::Stop() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  if (dispatcher_.joinable()) dispatcher_.join();
}

uint64_t QueryService::queue_depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

ServiceStats QueryService::stats() const {
  MutexLock lock(&mu_);
  return totals_;
}

void QueryService::DispatcherLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(lock);
      if (queue_.empty()) return;  // Stopped with nothing left to drain.
      // Hold the window open for companion queries — unless stopping, the
      // batch is full, or the window (anchored at the oldest queued query)
      // has already closed. A queued deadline earlier than the window
      // deadline cuts the hold IMMEDIATELY: that query cannot survive the
      // full window (pickup would find it expired), so batching gains
      // nothing a live answer wouldn't lose. Submits notify cv_, so a
      // tight-deadline query arriving mid-hold re-runs this scan.
      const auto window_deadline =
          queue_.front().enqueued + options_.batch_window;
      bool early_cut = false;
      for (;;) {
        if (stop_ || queue_.size() >= options_.max_batch_queries) break;
        if (std::chrono::steady_clock::now() >= window_deadline) break;
        auto earliest = window_deadline;
        for (const Pending& pending : queue_) {
          if (pending.has_deadline && pending.deadline < earliest) {
            earliest = pending.deadline;
          }
        }
        if (earliest < window_deadline) {
          early_cut = true;
          break;
        }
        cv_.WaitUntil(lock, window_deadline);
      }
      if (early_cut) {
        obs::ServiceMetrics::Get().window_early_cuts->Increment();
      }
      const uint64_t take = std::min<uint64_t>(
          queue_.size(), options_.max_batch_queries);
      batch.reserve(take);
      for (uint64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      executing_ = true;
    }
    ExecuteWindow(&batch);
    {
      MutexLock lock(&mu_);
      executing_ = false;
    }
    idle_cv_.NotifyAll();
  }
}

void QueryService::ExecuteWindow(std::vector<Pending>* batch) {
  const obs::ServiceMetrics& metrics = obs::ServiceMetrics::Get();
  const auto picked_up = std::chrono::steady_clock::now();

  // Expired deadlines are answered without executing; the rest run.
  std::vector<Pending*> live;
  live.reserve(batch->size());
  for (Pending& pending : *batch) {
    metrics.queue_wait_ns->Record(ElapsedNanos(pending.enqueued, picked_up));
    if (pending.has_deadline && picked_up > pending.deadline) {
      metrics.deadline_expired->Increment();
      Finish(&pending, Status::DeadlineExceeded(
                           "deadline passed while the query was queued"));
      continue;
    }
    live.push_back(&pending);
  }
  if (live.empty()) return;

  // Snapshot cache: cutting a snapshot is O(columns × chunks) pointer work,
  // so reuse the cached one while the table's data version stands. The
  // version is stamped under the table mutex in the same critical section
  // that cuts the columns (store/table.h), so a cached snapshot whose
  // version matches is exactly the snapshot a fresh cut would produce.
  if (!snapshot_.has_value() || snapshot_->version() != table_->version()) {
    Result<store::TableSnapshot> snap = table_->Snapshot();
    if (!snap.ok()) {
      const Status status = snap.status();
      for (Pending* pending : live) {
        metrics.failed->Increment();
        Finish(pending, status);
      }
      return;
    }
    snapshot_.emplace(std::move(snap).ValueUnsafe());
    metrics.snapshot_cache_misses->Increment();
  } else {
    metrics.snapshot_cache_hits->Increment();
  }

  const uint64_t version = snapshot_->version();

  // Result-level reuse pass: a spec cached at this version is answered
  // without executing; of identical specs within the window, only the
  // first executes and the rest receive copies of its result.
  std::vector<Pending*> to_run;
  std::vector<std::string> run_keys;  // Aligned with to_run; result_cache_ on.
  std::vector<std::pair<Pending*, size_t>> duplicates;  // (query, to_run idx).
  std::vector<std::pair<Pending*, exec::ScanResult>> hits;
  std::unordered_map<std::string, size_t> first_by_key;
  to_run.reserve(live.size());
  for (Pending* pending : live) {
    if (result_cache_ == nullptr) {
      to_run.push_back(pending);
      continue;
    }
    std::string key = exec::CanonicalSpecKey(pending->spec);
    exec::ScanResult cached;
    if (result_cache_->Lookup(version, key, &cached)) {
      hits.emplace_back(pending, std::move(cached));
      continue;
    }
    const auto [it, inserted] = first_by_key.emplace(std::move(key),
                                                    to_run.size());
    if (inserted) {
      to_run.push_back(pending);
      run_keys.push_back(it->first);
    } else {
      duplicates.emplace_back(pending, it->second);
    }
  }

  // Fold the accounting BEFORE fulfilling any promise: a client that
  // observes its future ready must see its query in stats(). Cache hits
  // deliver before the batch runs — they owe the pipeline nothing.
  if (!hits.empty()) {
    {
      MutexLock lock(&mu_);
      totals_.result_cache_hits += hits.size();
    }
    const auto served = std::chrono::steady_clock::now();
    for (auto& [pending, result] : hits) {
      Deliver(pending, std::move(result), served);
    }
  }

  if (!to_run.empty()) {
    metrics.batches->Increment();
    metrics.batch_size->Record(to_run.size());

    std::vector<const exec::ScanSpec*> specs;
    specs.reserve(to_run.size());
    for (const Pending* pending : to_run) specs.push_back(&pending->spec);
    BatchStats stats;
    std::vector<Result<exec::ScanResult>> results =
        ExecuteBatch(*snapshot_, specs, ctx_, selection_cache_.get(),
                     decoded_cache_.get(), &stats,
                     options_.subsume_predicates);
    const auto completed = std::chrono::steady_clock::now();

    if (result_cache_ != nullptr) {
      for (size_t i = 0; i < to_run.size(); ++i) {
        // Never cache errors: a transient failure must not poison retries.
        if (results[i].ok()) {
          result_cache_->Insert(version, run_keys[i], *results[i]);
        }
      }
    }

    {
      MutexLock lock(&mu_);
      ++totals_.batches;
      totals_.queries_executed += stats.queries;
      totals_.chunks_decoded += stats.chunks_decoded;
      totals_.chunk_evaluations += stats.chunk_evaluations;
      totals_.selection_cache_hits += stats.selection_cache_hits;
      totals_.subsumed_evaluations += stats.subsumed_evaluations;
      totals_.batch_dedup_hits += duplicates.size();
    }
    metrics.result_cache_dedup_hits->Add(duplicates.size());

    // Duplicates first: their promises must not outwait their runner's by
    // more than delivery order (copies, so the runner's slot stays intact).
    for (const auto& [pending, runner] : duplicates) {
      Deliver(pending, results[runner], completed);
    }
    for (size_t i = 0; i < to_run.size(); ++i) {
      Deliver(to_run[i], std::move(results[i]), completed);
    }
  }

  // Shrink the warm decoded working set back to budget between batches.
  decoded_cache_->EvictToBudget();
}

void QueryService::Deliver(Pending* pending, Result<exec::ScanResult> result,
                           std::chrono::steady_clock::time_point completed) {
  const obs::ServiceMetrics& metrics = obs::ServiceMetrics::Get();
  // The post-execution deadline check: a result completed past its deadline
  // is useless to the client and must be reported as the miss it is — the
  // queued-expiry path and this one together make DeadlineExceeded the
  // answer whenever the deadline passed, no matter where it passed.
  if (pending->has_deadline && completed > pending->deadline) {
    metrics.deadline_missed_in_flight->Increment();
    Finish(pending, Status::DeadlineExceeded(
                        "deadline passed while the query was executing"));
    return;
  }
  (result.ok() ? metrics.succeeded : metrics.failed)->Increment();
  Finish(pending, std::move(result));
}

void QueryService::Finish(Pending* pending, Result<exec::ScanResult> result) {
  // Release the in-flight slot BEFORE fulfilling the promise: a client that
  // observes its future ready must be able to submit again immediately.
  {
    MutexLock lock(&mu_);
    const auto it = in_flight_.find(pending->client);
    if (it != in_flight_.end() && it->second > 0) --it->second;
  }
  pending->promise.set_value(std::move(result));
  obs::ServiceMetrics::Get().e2e_ns->Record(
      ElapsedNanos(pending->enqueued, std::chrono::steady_clock::now()));
}

}  // namespace recomp::service
