#include "service/result_cache.h"

#include <algorithm>

#include "obs/service_metrics.h"

namespace recomp::service {

uint64_t ResultCache::ApproxResultBytes(const exec::ScanResult& result) {
  uint64_t bytes = sizeof(exec::ScanResult);
  bytes += result.positions.size() * sizeof(uint32_t);
  for (const exec::ScanFilterStats& filter : result.filters) {
    bytes += filter.column.size();
    bytes += filter.stats.per_chunk.size() * sizeof(exec::ChunkSelectionStats);
  }
  for (const exec::ScanProjection& projection : result.projections) {
    bytes += projection.column.size();
    bytes += projection.values.ByteSize();
  }
  for (const exec::ScanAggregate& aggregate : result.aggregates) {
    bytes += sizeof(exec::ScanAggregate) + aggregate.column.size();
  }
  return bytes;
}

void ResultCache::PurgeIfStaleLocked(uint64_t version) {
  if (version <= version_) return;
  if (!entries_.empty()) {
    obs::ServiceMetrics::Get().result_cache_invalidations->Increment();
    entries_.clear();
    fifo_.clear();
    bytes_ = 0;
  }
  version_ = version;
}

bool ResultCache::Lookup(uint64_t version, const std::string& key,
                         exec::ScanResult* out) {
  const obs::ServiceMetrics& metrics = obs::ServiceMetrics::Get();
  if (max_bytes_ == 0) {
    metrics.result_cache_misses->Increment();
    return false;
  }
  MutexLock lock(&mu_);
  PurgeIfStaleLocked(version);
  const auto it = entries_.find(key);
  if (it == entries_.end() || version != version_) {
    metrics.result_cache_misses->Increment();
    return false;
  }
  *out = it->second.result;
  metrics.result_cache_hits->Increment();
  return true;
}

void ResultCache::Insert(uint64_t version, const std::string& key,
                         const exec::ScanResult& result) {
  if (max_bytes_ == 0) return;
  const uint64_t entry_bytes = ApproxResultBytes(result);
  if (entry_bytes > max_bytes_) return;  // Could never fit alongside anything.
  const obs::ServiceMetrics& metrics = obs::ServiceMetrics::Get();
  MutexLock lock(&mu_);
  PurgeIfStaleLocked(version);
  if (version != version_) return;  // Stale straggler: drop.
  if (entries_.count(key) != 0) return;
  while (bytes_ + entry_bytes > max_bytes_ && !fifo_.empty()) {
    const auto it = entries_.find(fifo_.front());
    fifo_.pop_front();
    if (it == entries_.end()) continue;
    bytes_ -= std::min(bytes_, it->second.bytes);
    entries_.erase(it);
    metrics.result_cache_evictions->Increment();
  }
  entries_.emplace(key, Entry{result, entry_bytes});
  fifo_.push_back(key);
  bytes_ += entry_bytes;
  metrics.result_cache_insertions->Increment();
}

uint64_t ResultCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

uint64_t ResultCache::bytes() const {
  MutexLock lock(&mu_);
  return bytes_;
}

uint64_t ResultCache::version() const {
  MutexLock lock(&mu_);
  return version_;
}

}  // namespace recomp::service
