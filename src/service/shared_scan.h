// Shared-scan batch execution: many queries, one pass over the data.
//
// The query service's core bet (after "Main-Memory Scan Sharing For
// Multi-Core CPUs" and the cooperative-scans line of work, PAPERS.md): when
// thousands of clients scan the same table, the dominant cost — fused
// decompression of the surviving chunks — is identical work repeated per
// query. A batch executor runs every query of a window through the factored
// scan driver (exec::ScanWithPipeline), substituting a SharedScanPipeline
// that serves all of them from one decoded copy of each chunk:
//
//   * zone-map planning stays *per query* (each query prunes independently,
//     so a selective query never pays for a broad one's chunks);
//   * a chunk needed by any query is fused-decoded exactly once per batch —
//     and, via the DecodedChunkCache, at most once per table version while
//     it stays within the byte budget;
//   * each query's predicate then evaluates against the shared decoded
//     buffer, and per-chunk selection vectors are recycled across queries
//     and batches through the SelectionVectorCache;
//   * nested predicates subsume: the batch builds a containment lattice
//     over the window's filter bands, and a band strictly inside another
//     band on the same column evaluates by re-filtering the containing
//     band's cached (position, value) pairs — no decode, no full scan —
//     because a row passing the narrow band necessarily passed the wide
//     one. Chains compose (each band leans on its narrowest strict
//     container), and the cached values let the reuse span windows even
//     after the decoded chunks were evicted.
//
// Outputs are bit-identical to running each query through solo exec::Scan
// (exec::ScanOutputsEqual); only the execution stats differ — a shared
// chunk reports decompress-scan instead of whatever pushdown strategy the
// solo path would have picked. Results are deterministic for any thread
// count: each query writes its own slot, and within a query the factored
// driver keeps its usual index-order merges.

#ifndef RECOMP_SERVICE_SHARED_SCAN_H_
#define RECOMP_SERVICE_SHARED_SCAN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/scan.h"
#include "service/selection_cache.h"
#include "store/table.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace recomp::service {

/// Decoded chunks shared by every query in a batch and kept warm across
/// batching windows while the table version stands. Keyed (column, chunk)
/// under one current version — a newer version purges everything, exactly
/// like the selection cache. Thread-safe; concurrent requests for the same
/// chunk block until the single decode finishes (per-entry latch), so a
/// chunk is never decoded twice within a version no matter how many queries
/// race for it.
class DecodedChunkCache {
 public:
  /// `max_bytes` bounds the *retained* working set: EvictToBudget() drops
  /// the oldest decoded chunks beyond it between batches. During a batch
  /// the cache grows as needed — evicting mid-batch would just force
  /// re-decodes.
  explicit DecodedChunkCache(uint64_t max_bytes) : max_bytes_(max_bytes) {}

  /// The decoded values of chunk `chunk` of column `column` (whose payload
  /// is `compressed`), decoding via FusedDecompress on first touch. The
  /// returned buffer is immutable and stays valid independent of eviction.
  Result<std::shared_ptr<const AnyColumn>> GetOrDecode(
      uint64_t version, uint64_t column, uint64_t chunk,
      const CompressedColumn& compressed);

  /// Drops oldest settled entries until the retained bytes fit max_bytes.
  /// Cells still decoding (or that a straggler just latched onto) are never
  /// evicted out from under their decoder — an unsettled cell is skipped
  /// and stays in eviction order for the next pass. Never blocks on a
  /// decode: settlement is tracked in the cache's own ledger, so eviction
  /// takes no per-cell locks.
  void EvictToBudget();

  /// Physical decodes performed so far (monotonic; snapshot before/after a
  /// batch for per-batch counts).
  uint64_t decodes() const { return decodes_.load(std::memory_order_relaxed); }

  /// Current retained entry count / byte footprint (point-in-time).
  uint64_t size() const;
  uint64_t bytes() const;

 private:
  /// One chunk's decode latch: filled exactly once, then immutable.
  struct Cell {
    Mutex mu;
    CondVar cv;
    bool done RECOMP_GUARDED_BY(mu) = false;
    Status status RECOMP_GUARDED_BY(mu);
    std::shared_ptr<const AnyColumn> values RECOMP_GUARDED_BY(mu);
  };

  static uint64_t Key(uint64_t column, uint64_t chunk) {
    // Columns are few and chunk indices fit 32 bits (rows < 2^32).
    return (column << 32) | chunk;
  }

  void PurgeIfStaleLocked(uint64_t version) RECOMP_REQUIRES(mu_);

  const uint64_t max_bytes_;
  std::atomic<uint64_t> decodes_{0};
  mutable Mutex mu_;
  uint64_t version_ RECOMP_GUARDED_BY(mu_) = 0;
  std::unordered_map<uint64_t, std::shared_ptr<Cell>> cells_
      RECOMP_GUARDED_BY(mu_);
  std::deque<uint64_t> fifo_ RECOMP_GUARDED_BY(mu_);
  uint64_t bytes_ RECOMP_GUARDED_BY(mu_) = 0;
  /// Bytes each *settled* cell contributed to bytes_ (0 for a failed
  /// decode). A key absent here is still decoding and must not be evicted;
  /// a decoder only settles if its cell is still the mapped one, so a purge
  /// or eviction racing the decode can never corrupt the accounting.
  std::unordered_map<uint64_t, uint64_t> settled_bytes_ RECOMP_GUARDED_BY(mu_);
};

/// Work accounting of one executed batch. The sharing ratio is
/// chunk_evaluations / chunks_decoded: how many per-query evaluations each
/// physical decode served (1 ≈ no sharing, N ≈ perfect sharing across an
/// N-query batch).
struct BatchStats {
  uint64_t queries = 0;
  uint64_t chunks_decoded = 0;      ///< FusedDecompress calls this batch.
  uint64_t chunk_evaluations = 0;   ///< Per-query chunk filter evaluations.
  uint64_t selection_cache_hits = 0;
  /// Evaluations answered by re-filtering a containing band's selection
  /// instead of scanning the chunk.
  uint64_t subsumed_evaluations = 0;
  /// Cached (position, value) pairs those subsumed evaluations examined —
  /// the work that replaced full-chunk scans.
  uint64_t subsumption_values_examined = 0;
};

/// Executes every spec in `specs` against `snapshot` as one shared-scan
/// batch: queries fan out over `ctx` (each driver running sequentially
/// inside its task — the pool is never nested), per-chunk work routes
/// through the shared pipeline. results[i] is query i's outcome; a failing
/// query (bad column name, unsupported type) fails only its own slot.
///
/// `selection_cache` and `decoded_cache` may be null: without a selection
/// cache every evaluation scans the shared buffer; without a decoded cache
/// a batch-local cache is used (decode-once within the batch, nothing
/// retained). `stats`, when non-null, receives this batch's accounting;
/// the same numbers also fold into the service.* registry metrics.
/// `subsume_predicates` enables the containment lattice; off, every band
/// evaluates independently (PR 9 behavior).
std::vector<Result<exec::ScanResult>> ExecuteBatch(
    const store::TableSnapshot& snapshot,
    const std::vector<const exec::ScanSpec*>& specs, const ExecContext& ctx,
    SelectionVectorCache* selection_cache, DecodedChunkCache* decoded_cache,
    BatchStats* stats = nullptr, bool subsume_predicates = true);

}  // namespace recomp::service

#endif  // RECOMP_SERVICE_SHARED_SCAN_H_
