#include "store/recompress.h"

#include <algorithm>
#include <utility>

#include "core/chunked.h"
#include "core/fused.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace recomp::store {

Status RecompressionPolicy::Validate() const {
  if (min_gain < 1.0) {
    return Status::InvalidArgument(
        "RecompressionPolicy::min_gain must be >= 1.0 (a swap must not "
        "grow the chunk)");
  }
  return Status::OK();
}

void RecompressionReport::MergeFrom(const RecompressionReport& other) {
  chunks_examined += other.chunks_examined;
  chunks_scheduled += other.chunks_scheduled;
  chunks_reswapped += other.chunks_reswapped;
  stored_plain_drained += other.stored_plain_drained;
  chunks_kept += other.chunks_kept;
  chunks_failed += other.chunks_failed;
  bytes_before += other.bytes_before;
  bytes_after += other.bytes_after;
  swaps.insert(swaps.end(), other.swaps.begin(), other.swaps.end());
}

std::string RecompressionReport::ToString() const {
  std::string out = StringFormat(
      "recompression: examined=%llu scheduled=%llu reswapped=%llu "
      "(backlog=%llu) kept=%llu failed=%llu, %s -> %s (saved %s)\n",
      static_cast<unsigned long long>(chunks_examined),
      static_cast<unsigned long long>(chunks_scheduled),
      static_cast<unsigned long long>(chunks_reswapped),
      static_cast<unsigned long long>(stored_plain_drained),
      static_cast<unsigned long long>(chunks_kept),
      static_cast<unsigned long long>(chunks_failed),
      HumanBytes(bytes_before).c_str(), HumanBytes(bytes_after).c_str(),
      HumanBytes(BytesSaved()).c_str());
  for (const ChunkRecompression& swap : swaps) {
    out += StringFormat(
        "  %s[%llu]%s: %s (%s) -> %s (%s)\n",
        swap.column.empty() ? "chunk" : swap.column.c_str(),
        static_cast<unsigned long long>(swap.slot),
        swap.was_stored_plain ? " backlog" : "",
        swap.scheme_before.c_str(), HumanBytes(swap.bytes_before).c_str(),
        swap.scheme_after.c_str(), HumanBytes(swap.bytes_after).c_str());
  }
  return out;
}

namespace {

/// What one scheduled job resolved to; folded into the report in schedule
/// order so the report is deterministic for any thread count.
struct JobOutcome {
  enum class Kind { kSwapped, kKept, kFailed } kind = Kind::kKept;
  ChunkRecompression swap;  ///< Filled for kSwapped.
};

/// Recompression-job metrics, resolved once. cas_lost counts jobs whose
/// replacement was ready but whose slot changed under them (the original
/// seal job landed first); kept counts chunks priced and left alone.
struct RecompressMetrics {
  obs::Histogram* job_ns;
  obs::Counter* swapped;
  obs::Counter* kept;
  obs::Counter* failed;
  obs::Counter* cas_lost;
  obs::Counter* bytes_saved;

  static const RecompressMetrics& Get() {
    static const RecompressMetrics metrics = [] {
      RecompressMetrics m;
      obs::Registry& registry = obs::Registry::Get();
      m.job_ns = &registry.GetHistogram("store.recompress_ns");
      m.swapped = &registry.GetCounter("store.recompress.swapped");
      m.kept = &registry.GetCounter("store.recompress.kept");
      m.failed = &registry.GetCounter("store.recompress.failed");
      m.cas_lost = &registry.GetCounter("store.recompress.cas_lost");
      m.bytes_saved = &registry.GetCounter("store.recompress.bytes_saved");
      return m;
    }();
    return metrics;
  }
};

/// One recompression attempt over an already-claimed slot. Runs entirely
/// without the column lock: rows come from the claimed (immutable) chunk,
/// the swap at the end is the only locked step.
JobOutcome RecompressOne(AppendableColumn& column, uint64_t slot,
                         const std::shared_ptr<const CompressedChunk>& claimed,
                         bool claimed_sealed,
                         const RecompressionPolicy& policy,
                         const std::string& column_name) {
  const RecompressMetrics& metrics = RecompressMetrics::Get();
  const uint64_t start_ns = obs::MonotonicNanos();
  JobOutcome outcome;
  const auto fail = [&]() {
    column.AbortRecompress(slot);
    outcome.kind = JobOutcome::Kind::kFailed;
    metrics.failed->Increment();
    metrics.job_ns->Record(obs::MonotonicNanos() - start_ns);
    return outcome;
  };

  // The rows this chunk decodes to. Stored-plain envelopes are read in
  // place; everything else decompresses (one chunk's worth of work, on a
  // maintenance thread).
  const CompressedColumn& current = claimed->column;
  Result<AnyColumn> decompressed = AnyColumn();
  const AnyColumn* rows = StoredPlainData(current.root());
  if (rows == nullptr) {
    decompressed = FusedDecompress(current);
    if (!decompressed.ok()) return fail();
    rows = &*decompressed;
  }

  // The fresh choice: a pinned backlog chunk finishes its seal job's work
  // with the pinned descriptor — unless the policy may override pins
  // (recompress_pinned, with analyzable data), which is also how a column
  // whose pin cannot represent its rows (a failed seal job) gets healed.
  // Everything else re-runs the analyzer under the policy's constraints.
  SchemeDescriptor desc;
  const bool finish_pinned_seal =
      !claimed_sealed && column.options().descriptor.has_value() &&
      !(policy.recompress_pinned && TypeIdIsUnsigned(column.type()));
  if (finish_pinned_seal) {
    desc = *column.options().descriptor;
  } else {
    Result<SchemeDescriptor> choice = ChooseScheme(*rows, policy.analyzer);
    if (!choice.ok()) return fail();
    desc = std::move(*choice);
  }

  Result<CompressedColumn> next = Compress(*rows, desc);
  if (!next.ok()) return fail();

  const uint64_t bytes_before = current.PayloadBytes();
  const uint64_t bytes_after = next->PayloadBytes();
  // Backlog chunks are always taken (sealing them is the point, and their
  // stored-plain footprint is the thing being drained); sealed chunks must
  // beat the gain threshold to be worth the churn.
  const bool take =
      !claimed_sealed || static_cast<double>(bytes_before) >
                             static_cast<double>(bytes_after) * policy.min_gain;
  if (!take) {
    column.AbortRecompress(slot);
    outcome.kind = JobOutcome::Kind::kKept;
    metrics.kept->Increment();
    metrics.job_ns->Record(obs::MonotonicNanos() - start_ns);
    return outcome;
  }

  outcome.swap.column = column_name;
  outcome.swap.slot = slot;
  outcome.swap.was_stored_plain = !claimed_sealed;
  outcome.swap.scheme_before = current.Descriptor().ToString();
  outcome.swap.scheme_after = next->Descriptor().ToString();
  outcome.swap.bytes_before = bytes_before;
  outcome.swap.bytes_after = bytes_after;

  // Recomputed, not copied: the zone map is part of what a re-seal
  // refreshes (it equals the old one — same rows — but the claim is
  // re-derived from data, not trusted).
  const ZoneMap zone = ComputeZoneMap(*rows, claimed->zone.row_begin);
  const bool swapped = column.CompleteRecompress(
      slot, claimed, CompressedChunk{zone, std::move(*next)});
  outcome.kind =
      swapped ? JobOutcome::Kind::kSwapped : JobOutcome::Kind::kKept;
  if (swapped) {
    metrics.swapped->Increment();
    if (bytes_before > bytes_after) {
      metrics.bytes_saved->Add(bytes_before - bytes_after);
    }
  } else {
    metrics.cas_lost->Increment();
  }
  metrics.job_ns->Record(obs::MonotonicNanos() - start_ns);
  return outcome;
}

}  // namespace

Recompressor::Recompressor(RecompressionPolicy policy, ExecContext ctx)
    : policy_(std::move(policy)), ctx_(ctx) {}

Result<RecompressionReport> Recompressor::Tick(AppendableColumn& column,
                                               const std::string& column_name) {
  RECOMP_RETURN_NOT_OK(policy_.Validate());

  RecompressionReport report;
  const std::vector<AppendableColumn::ChunkInfo> infos = column.ChunkInfos();
  report.chunks_examined = infos.size();

  const bool pinned = column.options().descriptor.has_value();
  const bool analyzable = TypeIdIsUnsigned(column.type());

  // Candidate order: the stored-plain backlog first (slot order — those
  // chunks pay full-width storage today), then sealed chunks.
  std::vector<uint64_t> candidates;
  for (const auto& info : infos) {
    if (info.sealed || info.recompress_pending) continue;
    if (!policy_.drain_stored_plain) continue;
    if (info.age_chunks < policy_.min_age_chunks) continue;
    if (!pinned && !analyzable) continue;  // Nothing could compress it.
    candidates.push_back(info.slot);
  }
  std::vector<uint64_t> sealed;
  for (const auto& info : infos) {
    if (!info.sealed || info.recompress_pending) continue;
    if (!policy_.revisit_sealed || !analyzable) continue;
    if (pinned && !policy_.recompress_pinned) continue;
    if (info.age_chunks < policy_.min_age_chunks) continue;
    sealed.push_back(info.slot);
  }
  // Under a budget, a fixed oldest-first order would re-price the same
  // (possibly unimprovable) prefix every tick and never reach the rest:
  // rotate where this tick's sealed scan starts, advancing the cursor by
  // what the previous ticks consumed, so every candidate is reached within
  // ceil(candidates / budget) ticks of the same Recompressor.
  if (!sealed.empty()) {
    const uint64_t offset =
        cursor_.load(std::memory_order_relaxed) % sealed.size();
    std::rotate(sealed.begin(), sealed.begin() + offset, sealed.end());
  }
  const size_t backlog_count = candidates.size();
  candidates.insert(candidates.end(), sealed.begin(), sealed.end());
  if (candidates.size() > policy_.max_chunks_per_tick) {
    candidates.resize(policy_.max_chunks_per_tick);
  }
  // Advance by the sealed candidates this tick covers, so the next tick's
  // window starts right after this one's. A backlog-saturated tick (no
  // sealed candidate fit the budget) leaves the cursor alone.
  const size_t sealed_taken =
      candidates.size() > backlog_count ? candidates.size() - backlog_count
                                        : 0;
  cursor_.fetch_add(sealed_taken, std::memory_order_relaxed);

  // Claim + schedule. Jobs run at low priority so a shared pool serves live
  // seal jobs and scan fan-out first; each outcome lands in its own slot
  // and is folded below in schedule order (deterministic report).
  const bool may_revisit_sealed =
      policy_.revisit_sealed && analyzable &&
      (!pinned || policy_.recompress_pinned);
  std::vector<JobOutcome> outcomes(candidates.size());
  std::vector<char> scheduled(candidates.size(), 0);
  {
    TaskGroup jobs;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const uint64_t slot = candidates[i];
      bool sealed_now = false;
      std::shared_ptr<const CompressedChunk> claimed =
          column.TryBeginRecompress(slot, &sealed_now);
      if (claimed == nullptr) continue;  // Raced with another recompressor.
      if (sealed_now && !may_revisit_sealed) {
        // A backlog candidate whose seal job landed between selection and
        // the claim: it is a sealed chunk now, and this policy does not
        // revisit sealed chunks (of this column) — release the claim.
        column.AbortRecompress(slot);
        continue;
      }
      scheduled[i] = 1;
      ++report.chunks_scheduled;
      jobs.Run(
          ctx_,
          [&column, &outcomes, i, slot, claimed = std::move(claimed),
           sealed_now, this, &column_name]() {
            outcomes[i] = RecompressOne(column, slot, claimed, sealed_now,
                                        policy_, column_name);
          },
          TaskPriority::kLow);
    }
    jobs.Wait();
  }

  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!scheduled[i]) continue;
    JobOutcome& outcome = outcomes[i];
    switch (outcome.kind) {
      case JobOutcome::Kind::kSwapped:
        ++report.chunks_reswapped;
        if (outcome.swap.was_stored_plain) ++report.stored_plain_drained;
        report.bytes_before += outcome.swap.bytes_before;
        report.bytes_after += outcome.swap.bytes_after;
        report.swaps.push_back(std::move(outcome.swap));
        break;
      case JobOutcome::Kind::kKept:
        ++report.chunks_kept;
        break;
      case JobOutcome::Kind::kFailed:
        ++report.chunks_failed;
        break;
    }
  }
  return report;
}

Result<RecompressionReport> Recompressor::RecompressAll(
    AppendableColumn& column, const std::string& column_name) {
  // The per-tick budget is a maintenance-bandwidth knob; draining ignores
  // it (a budgeted pass always revisits the oldest candidates first, so
  // looping budgeted passes would starve the younger ones).
  RecompressionPolicy drain = policy_;
  drain.max_chunks_per_tick = ~uint64_t{0};
  Recompressor unbudgeted(std::move(drain), ctx_);

  RecompressionReport total;
  // Each productive pass strictly shrinks the reswapped chunks (min_gain >=
  // 1 and backlog chunks seal exactly once), so this terminates; the cap is
  // a safety net, not a tuning knob.
  for (int pass = 0; pass < 1000; ++pass) {
    RECOMP_ASSIGN_OR_RETURN(RecompressionReport report,
                            unbudgeted.Tick(column, column_name));
    const bool progress = report.chunks_reswapped > 0;
    total.MergeFrom(report);
    if (!progress) break;
  }
  return total;
}

}  // namespace recomp::store
