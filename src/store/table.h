// A table of appendable columns: row-aligned streaming ingest.
//
// Groups AppendableColumns under one name space and keeps them row-aligned:
// AppendRow/AppendBatch land the same number of rows in every column, and
// Snapshot() cuts every column at the same row count, so a multi-column
// reader sees one consistent prefix of the ingested rows. Columns may pin
// their compression to a classic from the catalog (core/catalog.h) by name,
// or leave the per-chunk analyzer search to choose.

#ifndef RECOMP_STORE_TABLE_H_
#define RECOMP_STORE_TABLE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/appendable_column.h"

namespace recomp::store {

/// One column of a Table.
struct ColumnSpec {
  std::string name;
  TypeId type = TypeId::kUInt32;
  IngestOptions options;
  /// When nonempty, the scheme is looked up in the classic catalog
  /// (CatalogLookup) and pinned as options.descriptor — "RLE", "FOR", ….
  std::string catalog_scheme;
};

/// A row-aligned set of column snapshots: every column is cut at rows().
class TableSnapshot {
 public:
  uint64_t rows() const { return rows_; }
  uint64_t num_columns() const { return columns_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  /// Index of the named column, or KeyError. O(1): the name→index map is
  /// built once when the snapshot is cut, not per lookup — scans resolve
  /// every referenced column through this.
  Result<uint64_t> column_index(const std::string& name) const;

  /// The snapshot of the named column, or KeyError.
  Result<const ColumnSnapshot*> column(const std::string& name) const;

  const ColumnSnapshot& column(uint64_t i) const { return columns_[i]; }

 private:
  friend class Table;
  uint64_t rows_ = 0;
  std::vector<std::string> names_;
  std::vector<ColumnSnapshot> columns_;
  std::unordered_map<std::string, uint64_t> index_;
};

/// A growing table. Appends are row-aligned across columns and thread-safe;
/// per-column seal jobs run on the ExecContext handed to Create. The pool
/// must outlive the table.
class Table {
 public:
  /// Validates the specs (nonempty unique names, at least one column,
  /// resolvable catalog schemes) and builds the columns.
  static Result<Table> Create(const std::vector<ColumnSpec>& specs,
                              ExecContext ctx = {});

  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  uint64_t num_columns() const { return columns_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  /// Rows fully appended so far.
  uint64_t num_rows() const;

  /// The live column, or KeyError — for per-column appends, snapshots, or
  /// introspection. Per-column appends break row alignment; mixing them
  /// with AppendRow is the caller's responsibility.
  Result<AppendableColumn*> column(const std::string& name);

  /// Appends one row: values[i] goes to column i (unsigned columns; each
  /// value must fit its column's type). Arity, value fit, and every
  /// column's sticky status are validated before any column is touched, so
  /// a rejected row leaves every column unchanged. If an append still
  /// fails mid-row (a seal job failing concurrently), the table records the
  /// misalignment as its own sticky error and every later append/snapshot
  /// reports it.
  Status AppendRow(const std::vector<uint64_t>& values);

  /// Appends columns[i] (all the same length) to column i. Same validation
  /// and failure semantics as AppendRow.
  Status AppendBatch(const std::vector<AnyColumn>& columns);

  /// Seals every column's tail (jobs scheduled, not awaited).
  Status Seal();

  /// Flushes every column; reports the first failure after flushing all.
  Status Flush();

  /// A row-aligned snapshot of every column.
  Result<TableSnapshot> Snapshot() const;

 private:
  Table() : mu_(std::make_unique<std::mutex>()) {}

  /// Refuses ingest when the table is already misaligned or any column's
  /// sticky status is failed. Requires mu_ held.
  Status CheckColumnsHealthyLocked();

  /// Passes `append_status` through; when it failed after column 0 already
  /// landed the row, also records the broken alignment in table_status_.
  /// Requires mu_ held.
  Status RecordMisalignmentLocked(Status append_status, size_t column);

  std::vector<std::string> names_;
  std::vector<std::unique_ptr<AppendableColumn>> columns_;
  /// Serializes multi-column appends against snapshots so every snapshot
  /// sees the same row count in every column (unique_ptr: Table stays
  /// movable while AppendableColumn holds its own mutex).
  std::unique_ptr<std::mutex> mu_;
  /// Sticky: set when a mid-row append failure broke row alignment.
  Status table_status_;
};

}  // namespace recomp::store

#endif  // RECOMP_STORE_TABLE_H_
