// A table of appendable columns: row-aligned streaming ingest.
//
// Groups AppendableColumns under one name space and keeps them row-aligned:
// AppendRow/AppendBatch land the same number of rows in every column, and
// Snapshot() cuts every column at the same row count, so a multi-column
// reader sees one consistent prefix of the ingested rows. Columns may pin
// their compression to a classic from the catalog (core/catalog.h) by name,
// or leave the per-chunk analyzer search to choose.

#ifndef RECOMP_STORE_TABLE_H_
#define RECOMP_STORE_TABLE_H_

#include <chrono>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "store/appendable_column.h"
#include "store/recompress.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace recomp::store {

/// One column of a Table.
struct ColumnSpec {
  std::string name;
  TypeId type = TypeId::kUInt32;
  IngestOptions options;
  /// When nonempty, the scheme is looked up in the classic catalog
  /// (CatalogLookup) and pinned as options.descriptor — "RLE", "FOR", ….
  std::string catalog_scheme;
};

/// A row-aligned set of column snapshots: every column is cut at rows().
class TableSnapshot {
 public:
  uint64_t rows() const { return rows_; }
  uint64_t num_columns() const { return columns_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  /// The table data version this snapshot was cut at (see Table::version):
  /// two snapshots with the same version hold the same logical rows, so a
  /// cached snapshot — and any selection vectors computed against it — can
  /// be reused while the version stands. Stamped under the table mutex in
  /// the same critical section that cuts the columns.
  uint64_t version() const { return version_; }

  /// Index of the named column, or KeyError. O(1): the name→index map is
  /// built once when the snapshot is cut, not per lookup — scans resolve
  /// every referenced column through this.
  Result<uint64_t> column_index(const std::string& name) const;

  /// The snapshot of the named column, or KeyError.
  Result<const ColumnSnapshot*> column(const std::string& name) const;

  const ColumnSnapshot& column(uint64_t i) const { return columns_[i]; }

 private:
  friend class Table;
  uint64_t rows_ = 0;
  uint64_t version_ = 0;
  std::vector<std::string> names_;
  std::vector<ColumnSnapshot> columns_;
  std::unordered_map<std::string, uint64_t> index_;
};

/// A growing table. Appends are row-aligned across columns and thread-safe;
/// per-column seal jobs run on the ExecContext handed to Create. The pool
/// must outlive the table.
class Table {
 public:
  /// Validates the specs (nonempty unique names, at least one column,
  /// resolvable catalog schemes) and builds the columns.
  static Result<Table> Create(const std::vector<ColumnSpec>& specs,
                              ExecContext ctx = {});

  // Defined out of line: the defaulted bodies need the complete
  // Maintenance type (unique_ptr member).
  Table(Table&&) noexcept;
  Table& operator=(Table&&) noexcept;

  /// Stops background maintenance (if running) before the columns go away.
  ~Table();

  uint64_t num_columns() const { return columns_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  /// Rows fully appended so far.
  uint64_t num_rows() const;

  /// The table's data version: starts at 0 and increments on every
  /// successful AppendRow/AppendBatch. Sealing and background recompression
  /// do NOT bump it — they change the representation, never the logical
  /// rows — so version equality means "same data", the invariant the query
  /// service's snapshot and selection-vector caches key on.
  uint64_t version() const;

  /// The live column, or KeyError — for per-column appends, snapshots, or
  /// introspection. Per-column appends break row alignment; mixing them
  /// with AppendRow is the caller's responsibility. They also bypass the
  /// table version counter: a caller appending through this handle must not
  /// rely on version() to invalidate snapshot caches.
  Result<AppendableColumn*> column(const std::string& name);

  /// Appends one row: values[i] goes to column i (unsigned columns; each
  /// value must fit its column's type). Arity, value fit, and every
  /// column's sticky status are validated before any column is touched, so
  /// a rejected row leaves every column unchanged. If an append still
  /// fails mid-row (a seal job failing concurrently), the table records the
  /// misalignment as its own sticky error and every later append/snapshot
  /// reports it.
  Status AppendRow(const std::vector<uint64_t>& values);

  /// Appends columns[i] (all the same length) to column i. Same validation
  /// and failure semantics as AppendRow.
  Status AppendBatch(const std::vector<AnyColumn>& columns);

  /// Seals every column's tail (jobs scheduled, not awaited).
  Status Seal();

  /// Flushes every column; reports the first failure after flushing all.
  Status Flush();

  /// A row-aligned snapshot of every column.
  Result<TableSnapshot> Snapshot() const;

  // --- Recompression (store/recompress.h) --------------------------------

  /// One bounded recompression pass over every column: drains the
  /// stored-plain backlog and reswaps sealed chunks the fresh analyzer
  /// beats, within the policy's per-tick budget. Jobs run at low priority
  /// on the table's ExecContext pool; scans and ingest never wait on them.
  Result<RecompressionReport> MaintenanceTick(
      const RecompressionPolicy& policy = {});

  /// Ticks until no column makes further progress: afterwards no
  /// stored-plain backlog remains (short of failing chunks) and no sealed
  /// chunk loses to a fresh choice by the policy's min_gain.
  Result<RecompressionReport> RecompressAll(
      const RecompressionPolicy& policy = {});

  /// Background mode: a maintenance thread runs MaintenanceTick(policy)
  /// every `interval` until StopMaintenance (or destruction). The policy is
  /// validated here, up front, so the background ticks cannot fail; a tick
  /// that somehow did would be skipped, never fatal. Fails if maintenance
  /// is already running.
  Status StartMaintenance(
      RecompressionPolicy policy,
      std::chrono::milliseconds interval = std::chrono::milliseconds(100));

  /// Stops and joins the maintenance thread; a no-op when not running.
  /// Everything the background ticks did stays visible via
  /// maintenance_report().
  void StopMaintenance();

  bool maintenance_running() const;

  /// Accumulated report of every background tick so far (live: readable
  /// while maintenance runs). Manual MaintenanceTick/RecompressAll calls
  /// return their own reports and are not folded in here.
  RecompressionReport maintenance_report() const;

  // --- Observability (src/obs/) ------------------------------------------

  /// Point-in-time capture of the process-wide metric registry — every
  /// subsystem's counters (ingest seals, recompression, scans, fused
  /// decode, pool), not just this table's. Static because the registry is
  /// process-wide; lives here so store users need not reach into obs::.
  static obs::MetricsSnapshot MetricsSnapshot();

  /// Human-readable state dump: per-column shape (rows, chunks, sealed
  /// count, pending seals) followed by the registry's text exposition.
  std::string DebugString() const;

 private:
  Table();  // Out of line: members need the complete Maintenance type.

  /// Background maintenance state, heap-allocated so the thread's view
  /// stays stable while the Table object itself moves (the columns are
  /// stable too: columns_ holds unique_ptrs). Held by shared_ptr so
  /// Stop/report readers can pin the state outside the table mutex — the
  /// join must not block appends and snapshots for a whole tick.
  struct Maintenance;

  /// The table mutex and everything it guards, heap-pinned behind a
  /// unique_ptr so Table stays movable while the mutex (and the thread-
  /// safety contracts naming it) keep a stable address. The mutex
  /// serializes multi-column appends against snapshots so every snapshot
  /// sees the same row count in every column.
  struct LockedState {
    Mutex mu;
    /// Sticky: set when a mid-row append failure broke row alignment.
    Status table_status RECOMP_GUARDED_BY(mu);
    /// Data version; bumped by successful appends, stamped into snapshots.
    uint64_t version RECOMP_GUARDED_BY(mu) = 0;
    /// The guarded part is the *pointer* — replaced by StartMaintenance
    /// while report readers pin it; the state behind it has its own locks.
    std::shared_ptr<Maintenance> maintenance RECOMP_GUARDED_BY(mu);
  };

  /// Refuses ingest when the table is already misaligned or any column's
  /// sticky status is failed.
  Status CheckColumnsHealthyLocked(const LockedState& s) const
      RECOMP_REQUIRES(s.mu);

  /// Passes `append_status` through; when it failed after column 0 already
  /// landed the row, also records the broken alignment in s.table_status.
  Status RecordMisalignmentLocked(LockedState& s, Status append_status,
                                  size_t column) RECOMP_REQUIRES(s.mu);

  std::vector<std::string> names_;
  std::vector<std::unique_ptr<AppendableColumn>> columns_;
  /// Declared after columns_ (destroyed first), and ~Table stops the
  /// maintenance thread before anything else goes away.
  std::unique_ptr<LockedState> state_;
  /// The ExecContext handed to Create; recompression jobs run on its pool.
  ExecContext ctx_;
};

}  // namespace recomp::store

#endif  // RECOMP_STORE_TABLE_H_
