#include "store/table.h"

#include <unordered_set>
#include <utility>

#include "core/catalog.h"
#include "schemes/scheme_internal.h"
#include "util/string_util.h"

namespace recomp::store {

Result<uint64_t> TableSnapshot::column_index(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::KeyError("no column named '" + name + "'");
  }
  return it->second;
}

Result<const ColumnSnapshot*> TableSnapshot::column(
    const std::string& name) const {
  RECOMP_ASSIGN_OR_RETURN(const uint64_t i, column_index(name));
  return &columns_[i];
}

Result<Table> Table::Create(const std::vector<ColumnSpec>& specs,
                            ExecContext ctx) {
  if (specs.empty()) {
    return Status::InvalidArgument("a table needs at least one column");
  }
  std::unordered_set<std::string> seen;
  Table table;
  for (const ColumnSpec& spec : specs) {
    if (spec.name.empty()) {
      return Status::InvalidArgument("column names must be nonempty");
    }
    if (!seen.insert(spec.name).second) {
      return Status::InvalidArgument("duplicate column name '" + spec.name +
                                     "'");
    }
    IngestOptions options = spec.options;
    if (!spec.catalog_scheme.empty()) {
      RECOMP_ASSIGN_OR_RETURN(SchemeDescriptor desc,
                              CatalogLookup(spec.catalog_scheme));
      options.descriptor = std::move(desc);
    }
    table.names_.push_back(spec.name);
    table.columns_.push_back(std::make_unique<AppendableColumn>(
        spec.type, std::move(options), ctx));
  }
  return table;
}

uint64_t Table::num_rows() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return columns_.empty() ? 0 : columns_[0]->size();
}

Result<AppendableColumn*> Table::column(const std::string& name) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return columns_[i].get();
  }
  return Status::KeyError("no column named '" + name + "'");
}

Status Table::CheckColumnsHealthyLocked() {
  RECOMP_RETURN_NOT_OK(table_status_);
  // A column whose seal already failed would reject its append mid-row;
  // refusing the whole row up front keeps the columns aligned. (A seal job
  // failing *between* this check and the appends is caught below and
  // recorded as the table's sticky misalignment error.)
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Status status = columns_[i]->status();
    if (!status.ok()) {
      return Status(status.code(), "column '" + names_[i] +
                                       "' cannot ingest: " + status.message());
    }
  }
  return Status::OK();
}

Status Table::RecordMisalignmentLocked(Status append_status, size_t column) {
  if (append_status.ok() || column == 0) return append_status;
  // Earlier columns of this row already landed: alignment is broken for
  // good, so make every later operation say so instead of misreporting.
  table_status_ = Status::Corruption(
      "table columns are not row-aligned: appending to column '" +
      names_[column] + "' failed mid-row: " + append_status.ToString());
  return append_status;
}

Status Table::AppendRow(const std::vector<uint64_t>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        StringFormat("row has %zu values, table has %zu columns",
                     values.size(), columns_.size()));
  }
  // Pre-validate every value so a rejected row touches no column: appends
  // must stay row-aligned even on failure.
  for (size_t i = 0; i < columns_.size(); ++i) {
    RECOMP_RETURN_NOT_OK(internal::DispatchUnsignedTypeId(
        columns_[i]->type(), [&](auto tag) -> Status {
          using T = typename decltype(tag)::type;
          if (static_cast<uint64_t>(static_cast<T>(values[i])) != values[i]) {
            return Status::InvalidArgument(StringFormat(
                "value %llu does not fit column '%s'",
                static_cast<unsigned long long>(values[i]),
                names_[i].c_str()));
          }
          return Status::OK();
        }));
  }
  std::lock_guard<std::mutex> lock(*mu_);
  RECOMP_RETURN_NOT_OK(CheckColumnsHealthyLocked());
  for (size_t i = 0; i < columns_.size(); ++i) {
    RECOMP_RETURN_NOT_OK(RecordMisalignmentLocked(
        columns_[i]->Append(values[i]), i));
  }
  return Status::OK();
}

Status Table::AppendBatch(const std::vector<AnyColumn>& columns) {
  if (columns.size() != columns_.size()) {
    return Status::InvalidArgument(
        StringFormat("batch has %zu columns, table has %zu",
                     columns.size(), columns_.size()));
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].is_packed() || columns[i].type() != columns_[i]->type()) {
      return Status::InvalidArgument("batch column " + names_[i] +
                                     " has the wrong type");
    }
    if (columns[i].size() != columns[0].size()) {
      return Status::InvalidArgument(
          "batch columns must all have the same length");
    }
  }
  std::lock_guard<std::mutex> lock(*mu_);
  RECOMP_RETURN_NOT_OK(CheckColumnsHealthyLocked());
  for (size_t i = 0; i < columns.size(); ++i) {
    RECOMP_RETURN_NOT_OK(RecordMisalignmentLocked(
        columns_[i]->AppendBatch(columns[i]), i));
  }
  return Status::OK();
}

Status Table::Seal() {
  for (const auto& column : columns_) {
    RECOMP_RETURN_NOT_OK(column->Seal());
  }
  return Status::OK();
}

Status Table::Flush() {
  // Flush every column even after a failure: Wait() must cover them all.
  Status first;
  for (const auto& column : columns_) {
    const Status status = column->Flush();
    if (first.ok() && !status.ok()) first = status;
  }
  return first;
}

Result<TableSnapshot> Table::Snapshot() const {
  std::lock_guard<std::mutex> lock(*mu_);
  RECOMP_RETURN_NOT_OK(table_status_);
  TableSnapshot snap;
  snap.names_ = names_;
  for (uint64_t i = 0; i < names_.size(); ++i) {
    snap.index_.emplace(names_[i], i);
  }
  for (const auto& column : columns_) {
    RECOMP_ASSIGN_OR_RETURN(ColumnSnapshot view, column->Snapshot());
    snap.columns_.push_back(std::move(view));
  }
  snap.rows_ = snap.columns_.empty() ? 0 : snap.columns_[0].size();
  for (const ColumnSnapshot& view : snap.columns_) {
    if (view.size() != snap.rows_) {
      return Status::Corruption("table columns are not row-aligned");
    }
  }
  return snap;
}

}  // namespace recomp::store
