#include "store/table.h"

#include <atomic>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/catalog.h"
#include "schemes/scheme_internal.h"
#include "util/string_util.h"

namespace recomp::store {

/// Everything the background maintenance thread touches, heap-pinned so
/// Table moves do not invalidate it. The column pointers are stable for the
/// same reason (columns_ owns them by unique_ptr); StopMaintenance joins
/// the thread before ~Table releases the columns.
///
/// Guarded state is only touched from methods of this struct, where the
/// thread-safety analysis sees the mutexes as direct members.
struct Table::Maintenance {
  RecompressionPolicy policy;
  std::chrono::milliseconds interval{100};
  ExecContext ctx;
  std::vector<std::pair<std::string, AppendableColumn*>> columns;

  Mutex mu;  ///< Guards stop (with cv).
  CondVar cv;
  bool stop RECOMP_GUARDED_BY(mu) = false;

  mutable Mutex report_mu;
  RecompressionReport accumulated RECOMP_GUARDED_BY(report_mu);

  /// True from StartMaintenance until Stop() has joined: the state a
  /// maintenance_running() reader may poll without touching the thread
  /// object (joinable() racing join() is UB).
  std::atomic<bool> running{false};
  Mutex stop_mu;       ///< Serializes concurrent Stop() calls.
  std::thread thread;  ///< Written once under the table mutex before the
                       ///< state is visible to Stop(); joined under stop_mu.

  /// Signals the loop and joins; idempotent and safe to call from several
  /// threads. Called by StopMaintenance (outside the table mutex, so a
  /// tick-long join never stalls appends or snapshots) and defensively by
  /// the destructor, so a Maintenance can never be destroyed with its
  /// thread still running.
  void Stop() {
    MutexLock stop_lock(&stop_mu);
    if (!thread.joinable()) return;
    {
      MutexLock lock(&mu);
      stop = true;
    }
    cv.NotifyAll();
    thread.join();
    running.store(false, std::memory_order_release);
  }

  ~Maintenance() { Stop(); }

  /// Accumulated report so far (live: callable while the loop runs).
  RecompressionReport ReportCopy() const {
    MutexLock lock(&report_mu);
    return accumulated;
  }

  /// Folds one tick's report into the running total.
  void MergeReport(const RecompressionReport& pass) {
    MutexLock lock(&report_mu);
    accumulated.MergeFrom(pass);
  }

  /// Seeds the total with a predecessor's history (before the thread runs).
  void SeedReport(RecompressionReport history) {
    MutexLock lock(&report_mu);
    accumulated = std::move(history);
  }

  void Loop() {
    Recompressor recompressor(policy, ctx);
    for (;;) {
      RecompressionReport pass;
      for (const auto& [name, column] : columns) {
        Result<RecompressionReport> tick = recompressor.Tick(*column, name);
        if (tick.ok()) {
          pass.MergeFrom(*tick);
        } else {
          // Unreachable while Tick's only rejection is the policy check
          // StartMaintenance shares (RecompressionPolicy::Validate) — but
          // if Tick ever grows another error path, make it visible as a
          // failed attempt instead of silently no-opping forever.
          ++pass.chunks_failed;
        }
      }
      MergeReport(pass);
      const auto deadline = std::chrono::steady_clock::now() + interval;
      MutexLock lock(&mu);
      // Inline wait loop (not a predicate lambda — see util/mutex.h):
      // leave on stop, start the next tick when the deadline passes.
      while (!stop) {
        if (cv.WaitUntil(lock, deadline)) break;
      }
      if (stop) return;
    }
  }
};

Table::Table() : state_(std::make_unique<LockedState>()) {}

Table::Table(Table&&) noexcept = default;

Table& Table::operator=(Table&& other) noexcept {
  if (this == &other) return *this;
  // Not defaulted: the member-wise default would free this table's columns
  // *before* destroying its Maintenance state, leaving a still-running
  // maintenance thread dereferencing freed columns. Stop it first.
  if (state_ != nullptr) StopMaintenance();
  names_ = std::move(other.names_);
  columns_ = std::move(other.columns_);
  // The incoming thread (if any) keeps running: its state and the columns
  // it points at are heap-pinned and just changed owners, not addresses.
  // This table's old state (maintenance already stopped above) is released.
  state_ = std::move(other.state_);
  ctx_ = other.ctx_;
  return *this;
}

Table::~Table() {
  if (state_ != nullptr) StopMaintenance();  // Moved-from tables skip it.
}

Result<uint64_t> TableSnapshot::column_index(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::KeyError("no column named '" + name + "'");
  }
  return it->second;
}

Result<const ColumnSnapshot*> TableSnapshot::column(
    const std::string& name) const {
  RECOMP_ASSIGN_OR_RETURN(const uint64_t i, column_index(name));
  return &columns_[i];
}

Result<Table> Table::Create(const std::vector<ColumnSpec>& specs,
                            ExecContext ctx) {
  if (specs.empty()) {
    return Status::InvalidArgument("a table needs at least one column");
  }
  std::unordered_set<std::string> seen;
  Table table;
  for (const ColumnSpec& spec : specs) {
    if (spec.name.empty()) {
      return Status::InvalidArgument("column names must be nonempty");
    }
    if (!seen.insert(spec.name).second) {
      return Status::InvalidArgument("duplicate column name '" + spec.name +
                                     "'");
    }
    IngestOptions options = spec.options;
    if (!spec.catalog_scheme.empty()) {
      RECOMP_ASSIGN_OR_RETURN(SchemeDescriptor desc,
                              CatalogLookup(spec.catalog_scheme));
      options.descriptor = std::move(desc);
    }
    table.names_.push_back(spec.name);
    table.columns_.push_back(std::make_unique<AppendableColumn>(
        spec.type, std::move(options), ctx));
  }
  table.ctx_ = ctx;
  return table;
}

Result<RecompressionReport> Table::MaintenanceTick(
    const RecompressionPolicy& policy) {
  Recompressor recompressor(policy, ctx_);
  RecompressionReport report;
  for (size_t i = 0; i < columns_.size(); ++i) {
    RECOMP_ASSIGN_OR_RETURN(RecompressionReport pass,
                            recompressor.Tick(*columns_[i], names_[i]));
    report.MergeFrom(pass);
  }
  return report;
}

Result<RecompressionReport> Table::RecompressAll(
    const RecompressionPolicy& policy) {
  Recompressor recompressor(policy, ctx_);
  RecompressionReport report;
  for (size_t i = 0; i < columns_.size(); ++i) {
    RECOMP_ASSIGN_OR_RETURN(RecompressionReport drained,
                            recompressor.RecompressAll(*columns_[i], names_[i]));
    report.MergeFrom(drained);
  }
  return report;
}

Status Table::StartMaintenance(RecompressionPolicy policy,
                               std::chrono::milliseconds interval) {
  // Same validation Recompressor::Tick runs: the background loop's "ticks
  // cannot fail" invariant is anchored to one shared check.
  RECOMP_RETURN_NOT_OK(policy.Validate());
  auto state = std::make_shared<Maintenance>();
  state->policy = std::move(policy);
  state->interval = interval;
  state->ctx = ctx_;
  for (size_t i = 0; i < columns_.size(); ++i) {
    state->columns.emplace_back(names_[i], columns_[i].get());
  }
  // s.mu guards the maintenance pointer itself: maintenance_report() is
  // documented as readable while maintenance runs, so replacing the state
  // here must not race a concurrent reader dereferencing it.
  LockedState& s = *state_;
  MutexLock lock(&s.mu);
  if (s.maintenance != nullptr &&
      s.maintenance->running.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("maintenance is already running");
  }
  if (s.maintenance != nullptr) {
    // A restart keeps the history: fold the previous run's totals in (the
    // previous thread has been joined — running was false — so its
    // accumulated report is quiescent).
    state->SeedReport(s.maintenance->ReportCopy());
  }
  s.maintenance = std::move(state);
  s.maintenance->running.store(true, std::memory_order_release);
  s.maintenance->thread =
      std::thread([m = s.maintenance.get()] { m->Loop(); });
  return Status::OK();
}

void Table::StopMaintenance() {
  // Pin the state under the table mutex, but join OUTSIDE it: a join can
  // wait out a whole in-flight tick, and appends/snapshots must not stall
  // behind it.
  std::shared_ptr<Maintenance> pinned;
  {
    LockedState& s = *state_;
    MutexLock lock(&s.mu);
    pinned = s.maintenance;
  }
  if (pinned != nullptr) pinned->Stop();
}

bool Table::maintenance_running() const {
  std::shared_ptr<Maintenance> pinned;
  {
    LockedState& s = *state_;
    MutexLock lock(&s.mu);
    pinned = s.maintenance;
  }
  return pinned != nullptr && pinned->running.load(std::memory_order_acquire);
}

RecompressionReport Table::maintenance_report() const {
  std::shared_ptr<Maintenance> pinned;
  {
    LockedState& s = *state_;
    MutexLock lock(&s.mu);
    pinned = s.maintenance;
  }
  if (pinned == nullptr) return {};
  return pinned->ReportCopy();
}

uint64_t Table::num_rows() const {
  LockedState& s = *state_;
  MutexLock lock(&s.mu);
  return columns_.empty() ? 0 : columns_[0]->size();
}

uint64_t Table::version() const {
  LockedState& s = *state_;
  MutexLock lock(&s.mu);
  return s.version;
}

obs::MetricsSnapshot Table::MetricsSnapshot() {
  return obs::Registry::Get().Snapshot();
}

std::string Table::DebugString() const {
  std::string out =
      StringFormat("table: %zu columns, %llu rows\n", columns_.size(),
                   static_cast<unsigned long long>(num_rows()));
  for (size_t i = 0; i < columns_.size(); ++i) {
    const AppendableColumn& column = *columns_[i];
    out += StringFormat(
        "  column %-24s %-8s chunks=%llu sealed=%llu pending_seals=%llu\n",
        names_[i].c_str(), TypeIdName(column.type()),
        static_cast<unsigned long long>(column.num_chunks()),
        static_cast<unsigned long long>(column.sealed_chunks()),
        static_cast<unsigned long long>(column.pending_seals()));
  }
  out += MetricsSnapshot().ToText();
  return out;
}

Result<AppendableColumn*> Table::column(const std::string& name) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return columns_[i].get();
  }
  return Status::KeyError("no column named '" + name + "'");
}

Status Table::CheckColumnsHealthyLocked(const LockedState& s) const {
  RECOMP_RETURN_NOT_OK(s.table_status);
  // A column whose seal already failed would reject its append mid-row;
  // refusing the whole row up front keeps the columns aligned. (A seal job
  // failing *between* this check and the appends is caught below and
  // recorded as the table's sticky misalignment error.)
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Status status = columns_[i]->status();
    if (!status.ok()) {
      return Status(status.code(), "column '" + names_[i] +
                                       "' cannot ingest: " + status.message());
    }
  }
  return Status::OK();
}

Status Table::RecordMisalignmentLocked(LockedState& s, Status append_status,
                                       size_t column) {
  if (append_status.ok() || column == 0) return append_status;
  // Earlier columns of this row already landed: alignment is broken for
  // good, so make every later operation say so instead of misreporting.
  s.table_status = Status::Corruption(
      "table columns are not row-aligned: appending to column '" +
      names_[column] + "' failed mid-row: " + append_status.ToString());
  return append_status;
}

Status Table::AppendRow(const std::vector<uint64_t>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        StringFormat("row has %zu values, table has %zu columns",
                     values.size(), columns_.size()));
  }
  // Pre-validate every value so a rejected row touches no column: appends
  // must stay row-aligned even on failure.
  for (size_t i = 0; i < columns_.size(); ++i) {
    RECOMP_RETURN_NOT_OK(internal::DispatchUnsignedTypeId(
        columns_[i]->type(), [&](auto tag) -> Status {
          using T = typename decltype(tag)::type;
          if (static_cast<uint64_t>(static_cast<T>(values[i])) != values[i]) {
            return Status::InvalidArgument(StringFormat(
                "value %llu does not fit column '%s'",
                static_cast<unsigned long long>(values[i]),
                names_[i].c_str()));
          }
          return Status::OK();
        }));
  }
  LockedState& s = *state_;
  MutexLock lock(&s.mu);
  RECOMP_RETURN_NOT_OK(CheckColumnsHealthyLocked(s));
  for (size_t i = 0; i < columns_.size(); ++i) {
    RECOMP_RETURN_NOT_OK(RecordMisalignmentLocked(
        s, columns_[i]->Append(values[i]), i));
  }
  ++s.version;
  return Status::OK();
}

Status Table::AppendBatch(const std::vector<AnyColumn>& columns) {
  if (columns.size() != columns_.size()) {
    return Status::InvalidArgument(
        StringFormat("batch has %zu columns, table has %zu",
                     columns.size(), columns_.size()));
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].is_packed() || columns[i].type() != columns_[i]->type()) {
      return Status::InvalidArgument("batch column " + names_[i] +
                                     " has the wrong type");
    }
    if (columns[i].size() != columns[0].size()) {
      return Status::InvalidArgument(
          "batch columns must all have the same length");
    }
  }
  LockedState& s = *state_;
  MutexLock lock(&s.mu);
  RECOMP_RETURN_NOT_OK(CheckColumnsHealthyLocked(s));
  for (size_t i = 0; i < columns.size(); ++i) {
    RECOMP_RETURN_NOT_OK(RecordMisalignmentLocked(
        s, columns_[i]->AppendBatch(columns[i]), i));
  }
  ++s.version;
  return Status::OK();
}

Status Table::Seal() {
  for (const auto& column : columns_) {
    RECOMP_RETURN_NOT_OK(column->Seal());
  }
  return Status::OK();
}

Status Table::Flush() {
  // Flush every column even after a failure: Wait() must cover them all.
  Status first;
  for (const auto& column : columns_) {
    const Status status = column->Flush();
    if (first.ok() && !status.ok()) first = status;
  }
  return first;
}

Result<TableSnapshot> Table::Snapshot() const {
  LockedState& s = *state_;
  MutexLock lock(&s.mu);
  RECOMP_RETURN_NOT_OK(s.table_status);
  TableSnapshot snap;
  snap.version_ = s.version;
  snap.names_ = names_;
  for (uint64_t i = 0; i < names_.size(); ++i) {
    snap.index_.emplace(names_[i], i);
  }
  for (const auto& column : columns_) {
    RECOMP_ASSIGN_OR_RETURN(ColumnSnapshot view, column->Snapshot());
    snap.columns_.push_back(std::move(view));
  }
  snap.rows_ = snap.columns_.empty() ? 0 : snap.columns_[0].size();
  for (const ColumnSnapshot& view : snap.columns_) {
    if (view.size() != snap.rows_) {
      return Status::Corruption("table columns are not row-aligned");
    }
  }
  return snap;
}

}  // namespace recomp::store
