// Streaming ingest: a column that grows while it is being scanned.
//
// The chunked envelope (core/chunked.h) made the chunk the independent unit
// of compression and scanning; this subsystem makes it the unit of *ingest*.
// An AppendableColumn keeps one mutable, uncompressed tail chunk plus a
// vector of immutable sealed chunks. Appends land in the tail; whenever the
// tail reaches chunk capacity (or Seal() is called) it is rolled into an
// immutable chunk and a seal job — analyzer scheme choice + compression —
// is scheduled on the shared ExecContext pool, so ingest never blocks
// behind compression. Until its job lands, a rolled chunk is served as an
// ID-encoded (stored-plain) envelope; the job then swaps in the compressed
// form. Either form decodes to the same rows, so readers never wait.
//
// Slots stay revisitable after sealing: the background recompressor
// (store/recompress.h) can claim a slot, re-run the analyzer off the scan
// path, and swap in a better envelope via the same pointer-replacement
// mechanism seal jobs use — per-slot access/age statistics (ChunkInfos)
// feed its candidate selection.
//
// Reads go through Snapshot(): a copy-on-write view that shares the sealed
// chunks by reference (O(chunks), no payload copies — see the shared-chunk
// representation in ChunkedCompressedColumn) and copies only the current
// tail rows as one ID chunk with a real min/max zone map. The snapshot is a
// plain ChunkedCompressedColumn, so every chunked exec operator —
// SelectCompressed, Sum/Min/MaxCompressed, GetAt(+Batch), DecompressChunked
// — works on a live column unmodified and agrees bit-identically with
// compressing the same rows once.

#ifndef RECOMP_STORE_APPENDABLE_COLUMN_H_
#define RECOMP_STORE_APPENDABLE_COLUMN_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/analyzer.h"
#include "core/chunked.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace recomp::store {

/// How a column ingests: chunk capacity and how sealed chunks compress.
struct IngestOptions {
  /// Capacity of the tail chunk in rows; reaching it triggers a seal job.
  /// Must be positive.
  uint64_t chunk_rows = 64 * 1024;
  /// Constraints for the per-chunk analyzer search (used when `descriptor`
  /// is unset).
  AnalyzerOptions analyzer;
  /// When set, every sealed chunk compresses with this fixed composition
  /// (e.g. a classic from core/catalog.h) instead of the analyzer's
  /// per-chunk choice.
  std::optional<SchemeDescriptor> descriptor;
};

/// A consistent point-in-time view of an AppendableColumn. Sealed chunks are
/// shared with the live column (copy-on-write); the tail rows are copied
/// into one ID-encoded chunk. The view is a regular ChunkedCompressedColumn:
/// hand it to any chunked operator.
class ColumnSnapshot {
 public:
  ColumnSnapshot() = default;

  const ChunkedCompressedColumn& chunked() const { return view_; }
  uint64_t size() const { return view_.size(); }

  /// Chunks whose background compression had landed when the snapshot was
  /// taken; the rest (rolled-but-not-yet-sealed chunks and the tail) are
  /// served as stored-plain ID envelopes.
  uint64_t sealed_chunks() const { return sealed_; }
  uint64_t unsealed_chunks() const { return unsealed_; }

 private:
  friend class AppendableColumn;
  ChunkedCompressedColumn view_;
  uint64_t sealed_ = 0;
  uint64_t unsealed_ = 0;
};

/// A single growing column. All methods are thread-safe: any number of
/// appenders, sealers, and snapshot readers may run concurrently (appends
/// serialize on an internal mutex; snapshots see a consistent row prefix).
/// The ExecContext's pool, when present, runs the seal jobs; it must outlive
/// the column. Without a usable pool, sealing happens inline on the thread
/// that rolled the tail.
class AppendableColumn {
 public:
  explicit AppendableColumn(TypeId type, IngestOptions options = {},
                            ExecContext ctx = {});

  /// Waits for in-flight seal jobs (does not seal the tail).
  ~AppendableColumn();

  AppendableColumn(const AppendableColumn&) = delete;
  AppendableColumn& operator=(const AppendableColumn&) = delete;

  TypeId type() const { return type_; }

  /// Rows appended so far (sealed chunks + tail).
  uint64_t size() const;

  /// Full chunks rolled off the tail so far (sealed or with a seal job in
  /// flight).
  uint64_t num_chunks() const;

  /// Chunks whose compression job has landed.
  uint64_t sealed_chunks() const;

  /// Seal jobs scheduled on the pool and not yet landed.
  uint64_t pending_seals() const;

  /// The ingest options the column was built with (the recompression policy
  /// consults the pinned descriptor, if any).
  const IngestOptions& options() const { return options_; }

  /// Point-in-time view of one rolled chunk, observed under the column lock:
  /// the slot's current envelope plus the per-chunk access/age statistics
  /// the recompression policy selects candidates from.
  struct ChunkInfo {
    uint64_t slot = 0;
    /// The slot's chunk at observation time (pinned: safe to read after the
    /// lock is released, even if the slot is swapped concurrently).
    std::shared_ptr<const CompressedChunk> chunk;
    /// Compression landed (original seal job or a later recompression). A
    /// false value marks the stored-plain backlog: the chunk still serves
    /// its ID envelope because its seal job is slow, queued, or failed.
    bool sealed = false;
    /// A recompression attempt currently holds this slot's claim.
    bool recompress_pending = false;
    /// Chunks rolled after this one — the roll-order age a policy's
    /// cold-chunk threshold compares against.
    uint64_t age_chunks = 0;
    /// Snapshots that included this chunk (scan-side popularity proxy).
    uint64_t snapshot_accesses = 0;
    /// Successful recompression swaps of this slot so far.
    uint64_t recompress_count = 0;
  };

  /// All rolled chunks' info, in slot (row) order. O(chunks).
  std::vector<ChunkInfo> ChunkInfos() const;

  // --- Recompression handshake (driven by store/recompress.h) ------------
  //
  // A recompression attempt is claim → (analyze + compress off-lock) →
  // Complete or Abort. The claim only excludes *other recompression
  // attempts*; the original seal job may still be in flight, so both the
  // seal landing and CompleteRecompress swap the slot only if it still
  // holds the envelope they started from — whoever lands second observes
  // the pointer changed and drops its result. Readers are never involved:
  // snapshots hold shared_ptr copies, so an in-flight scan keeps the chunk
  // it pinned while new snapshots see the swapped slot.

  /// Claims `slot` for one recompression attempt and returns the observed
  /// chunk, or nullptr when the slot is out of range or already claimed.
  /// `sealed`, when given, receives the slot's sealed state at claim time —
  /// the state candidate selection saw may be stale by now (a seal job can
  /// land in between), and the backlog-vs-revisit distinction must be made
  /// against the claimed envelope.
  std::shared_ptr<const CompressedChunk> TryBeginRecompress(
      uint64_t slot, bool* sealed = nullptr);

  /// Ends a claimed attempt by swapping `replacement` into the slot iff it
  /// still holds `expected`. On swap, marks the slot sealed (a stored-plain
  /// backlog chunk counts as sealed from here on) and bumps its
  /// recompression count. Returns whether the swap happened.
  bool CompleteRecompress(uint64_t slot,
                          const std::shared_ptr<const CompressedChunk>& expected,
                          CompressedChunk replacement);

  /// Ends a claimed attempt without swapping (no gain, or the attempt
  /// failed — the old envelope stays correct either way).
  void AbortRecompress(uint64_t slot);

  /// The ingest/seal status: OK, or the first failure (which every
  /// subsequent append/seal/snapshot also reports). Construction and
  /// ingest failures are permanent; a seal-job failure clears if a later
  /// recompression (store/recompress.h) seals the failed chunk — the
  /// stored-plain data was always correct, so a healed column ingests
  /// again.
  Status status() const;

  /// Appends one value (unsigned columns only; the value must fit the
  /// column type). For bulk ingest prefer AppendBatch.
  Status Append(uint64_t value);

  /// Appends `rows` (a plain column of this column's type) at the end.
  /// Rolls the tail — scheduling seal jobs — each time it reaches capacity.
  Status AppendBatch(const AnyColumn& rows);

  /// Rolls the current (possibly short) tail into a chunk and schedules its
  /// seal job. A no-op when the tail is empty. Returns without waiting for
  /// the job to land.
  Status Seal();

  /// Blocks until every scheduled seal job has landed.
  void WaitForSeals();

  /// Seal() + WaitForSeals(): afterwards every appended row sits in a
  /// compressed sealed chunk. Reports the first seal failure, if any. The
  /// column stays appendable.
  Status Flush();

  /// A consistent copy-on-write view of all rows appended so far; see
  /// ColumnSnapshot. O(chunks) plus one copy of the tail rows.
  Result<ColumnSnapshot> Snapshot() const;

  /// Flush() + v2 wire format of the sealed column (core/serialize.h).
  Result<std::vector<uint8_t>> Serialize();

 private:
  /// One rolled tail awaiting compression. The job reads its rows from the
  /// rolled chunk's immutable stored-plain envelope (shared with slots_ and
  /// any snapshots), so rolling moves the tail instead of copying it.
  struct SealJob {
    uint64_t slot = 0;
    std::shared_ptr<const CompressedChunk> source;
    ZoneMap zone;
  };

  /// Rolls the non-empty tail into slot `slots_.size()` (served as an ID
  /// envelope until its seal job lands) and queues the job description.
  Status RollTailLocked(std::vector<SealJob>* jobs) RECOMP_REQUIRES(mu_);

  /// Hands rolled chunks to the pool (or compresses inline without one).
  /// Must be called WITHOUT mu_ held: inline jobs lock it to land.
  void ScheduleSealJobs(std::vector<SealJob> jobs) RECOMP_EXCLUDES(mu_);

  const TypeId type_;
  const IngestOptions options_;
  const ExecContext ctx_;

  /// Bookkeeping for one slot: seal/claim state plus the access statistics
  /// ChunkInfos reports. Guarded by mu_.
  struct SlotState {
    bool sealed = false;
    bool recompress_pending = false;
    uint64_t access_count = 0;
    uint64_t recompress_count = 0;
    /// This slot's seal-job failure, parked per slot rather than written
    /// straight into a column-wide sticky status: the failure surfaces
    /// immediately (slot_failure_status_ mirrors the first parked failure),
    /// but a recompression that later seals the slot *heals* it — the
    /// stored-plain data was always correct, and once it is compressed
    /// there is nothing left to report.
    Status seal_failure;
  };

  /// First parked per-slot seal failure, in slot order, or OK. Kept in sync
  /// by the seal jobs (set) and CompleteRecompress (recomputed on heal) so
  /// the hot ingest guard stays O(1).
  Status SlotAwareStatusLocked() const RECOMP_REQUIRES(mu_) {
    return seal_status_.ok() ? slot_failure_status_ : seal_status_;
  }

  /// The one lock of the column: every mutable member below is guarded by
  /// it. Held only for O(slots) pointer/bookkeeping work — never across
  /// compression, decompression, or the analyzer (seal and recompression
  /// jobs do the expensive part off-lock and re-lock to land).
  mutable Mutex mu_;
  /// First construction/ingest failure; sticky — once set, appends and
  /// snapshots report it instead of silently diverging from the ingested
  /// data. Seal-job failures live per slot (SlotState::seal_failure, with
  /// slot_failure_status_ as the O(1) mirror) so recompression can heal
  /// them; this status is reserved for failures no re-seal can fix.
  Status seal_status_ RECOMP_GUARDED_BY(mu_);
  /// Mirror of the first parked SlotState::seal_failure, or OK.
  Status slot_failure_status_ RECOMP_GUARDED_BY(mu_);
  /// All full chunks in row order; each slot holds the ID-encoded view
  /// until its seal job swaps in the compressed chunk. Slots are immutable
  /// objects replaced whole (by the seal job or a recompression), so
  /// snapshots share them safely.
  std::vector<std::shared_ptr<const CompressedChunk>> slots_
      RECOMP_GUARDED_BY(mu_);
  /// Parallel to slots_. Mutable: Snapshot() is const but counts accesses.
  mutable std::vector<SlotState> slot_states_ RECOMP_GUARDED_BY(mu_);
  uint64_t sealed_count_ RECOMP_GUARDED_BY(mu_) = 0;
  /// The mutable uncompressed tail: always a plain column of type_ with
  /// fewer than options_.chunk_rows rows.
  AnyColumn tail_ RECOMP_GUARDED_BY(mu_);
  /// Global row index where the tail starts.
  uint64_t tail_begin_ RECOMP_GUARDED_BY(mu_) = 0;

  /// Last member: its destructor waits for seal jobs that capture `this`.
  TaskGroup seal_jobs_;
};

}  // namespace recomp::store

#endif  // RECOMP_STORE_APPENDABLE_COLUMN_H_
