// Background recompression: revisiting scheme choices after the fact.
//
// Sealed chunks keep their first analyzer decision, and chunks rolled while
// a seal job was slow or failed are stuck as stored-plain ID envelopes. The
// paper's core claim — scheme choice should track the data — only pays off
// if those decisions can be corrected over time, so this subsystem re-runs
// the analyzer + compression + zone map *off the scan path* and swaps the
// improved chunk in atomically:
//
//   candidates   RecompressionPolicy ranks the stored-plain backlog first
//                (those chunks pay full-width storage and plain-scan costs),
//                then sealed chunks whose current footprint loses to a fresh
//                analyzer choice by a configurable ratio, using the
//                per-chunk access/age statistics AppendableColumn tracks.
//   execution    Recompressor claims a slot (TryBeginRecompress), schedules
//                a low-priority job on the shared ExecContext pool via
//                TaskGroup — live seal jobs and scan fan-out always go
//                first — and the job decompresses, re-chooses, recompresses,
//                and recomputes the zone map without any column lock held.
//   swap         CompleteRecompress replaces the slot's
//                shared_ptr<const CompressedChunk> iff it still holds the
//                envelope the job started from (the original seal job may
//                land concurrently; whoever lands second drops its result).
//                In-flight snapshots keep scanning the chunk they pinned;
//                the next snapshot sees the improved one. Zero divergence:
//                both envelopes decode to the same rows.
//
// Wiring: store::Table exposes MaintenanceTick() (one bounded pass),
// RecompressAll() (drain until no further progress), and a background mode
// (StartMaintenance) that ticks on its own thread while ingest is live.

#ifndef RECOMP_STORE_RECOMPRESS_H_
#define RECOMP_STORE_RECOMPRESS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "store/appendable_column.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace recomp::store {

/// Candidate selection knobs for one recompression pass.
struct RecompressionPolicy {
  /// Convert stored-plain ID chunks left behind by slow or failed seal jobs
  /// (the backlog). These are always taken when they qualify — they pay
  /// full-width storage today — regardless of min_gain.
  bool drain_stored_plain = true;

  /// Re-run the analyzer on sealed chunks and swap when the fresh choice
  /// wins by min_gain.
  bool revisit_sealed = true;

  /// Also revisit sealed chunks of columns with a pinned descriptor
  /// (IngestOptions::descriptor / catalog-pinned table columns). Off by
  /// default: a pin usually exists on purpose; turn this on to migrate a
  /// column off its pinned scheme in the background. It applies to backlog
  /// draining too: off, the drain finishes the seal job's work with the
  /// pin; on, the analyzer may override it — which is how a column whose
  /// pin cannot represent its rows (failed seal jobs) gets healed, since a
  /// successful re-seal of the failed chunk clears the column's seal
  /// failure.
  bool recompress_pinned = false;

  /// A sealed chunk is reswapped only when
  ///   old_payload_bytes > new_payload_bytes * min_gain,
  /// i.e. the fresh choice is at least this factor smaller. 1.0 means "any
  /// strict improvement"; higher values suppress churn.
  double min_gain = 1.05;

  /// Only chunks with at least this many younger chunks (rolled after them)
  /// are candidates — the cold-data threshold. 0 considers every chunk; a
  /// value around the write working set keeps the recompressor off chunks
  /// whose seal jobs are realistically still in flight.
  uint64_t min_age_chunks = 0;

  /// At most this many chunks are scheduled per column per tick — the
  /// maintenance bandwidth budget.
  uint64_t max_chunks_per_tick = ~uint64_t{0};

  /// Constraints for the fresh analyzer search (e.g. a decompression-cost
  /// budget). Independent of the column's ingest-time AnalyzerOptions: the
  /// usual reason to recompress is exactly that this differs.
  AnalyzerOptions analyzer;

  /// Structural checks (min_gain >= 1.0, so a swap can never grow a chunk).
  /// The one validation both Recompressor::Tick and Table::StartMaintenance
  /// run — shared so the background loop's "ticks cannot fail" invariant
  /// cannot drift out of sync with Tick's actual rejections.
  Status Validate() const;
};

/// One executed swap, for observability.
struct ChunkRecompression {
  std::string column;  ///< Table column name; empty for standalone columns.
  uint64_t slot = 0;
  bool was_stored_plain = false;  ///< Backlog drain vs sealed revisit.
  std::string scheme_before;      ///< Descriptor strings (ToString form).
  std::string scheme_after;
  uint64_t bytes_before = 0;  ///< Payload bytes of the replaced envelope.
  uint64_t bytes_after = 0;
};

/// What one pass (or an accumulation of passes) did.
struct RecompressionReport {
  uint64_t chunks_examined = 0;     ///< Candidates the policy looked at.
  uint64_t chunks_scheduled = 0;    ///< Jobs actually claimed and run.
  uint64_t chunks_reswapped = 0;    ///< Slots swapped to a new envelope.
  uint64_t stored_plain_drained = 0;  ///< Reswaps that sealed backlog chunks.
  uint64_t chunks_kept = 0;   ///< Analyzed but kept (no gain, or lost the
                              ///< race against a landing seal job).
  uint64_t chunks_failed = 0; ///< Job errored; old envelope kept.
  uint64_t bytes_before = 0;  ///< Payload bytes over reswapped chunks only.
  uint64_t bytes_after = 0;
  /// Per-swap detail (scheme before → after), in schedule order.
  std::vector<ChunkRecompression> swaps;

  uint64_t BytesSaved() const {
    return bytes_before > bytes_after ? bytes_before - bytes_after : 0;
  }

  /// Accumulates another pass into this report.
  void MergeFrom(const RecompressionReport& other);

  /// Human-readable multi-line summary (counts, bytes, scheme changes).
  std::string ToString() const;
};

/// Executes recompression passes over AppendableColumns. Safe to use from
/// multiple threads against the same column (slot claims exclude double
/// work). The ExecContext's pool, when present, runs the jobs at low
/// priority; without one, jobs run inline on the calling thread — in both
/// cases off the scan path (readers only ever observe the O(1) slot swap).
///
/// The only state between calls is a fairness cursor: under a per-tick
/// budget, consecutive Tick()s on the same Recompressor rotate where the
/// sealed-candidate scan starts, so chunks beyond the budget window are
/// reached eventually instead of the oldest (possibly unimprovable) chunks
/// being re-priced forever. Reuse one Recompressor for a budgeted tick loop
/// (the Table background mode does); a fresh instance starts oldest-first.
class Recompressor {
 public:
  explicit Recompressor(RecompressionPolicy policy = {}, ExecContext ctx = {});

  const RecompressionPolicy& policy() const { return policy_; }

  /// One bounded pass: selects candidates (stored-plain backlog first, then
  /// sealed chunks oldest-first), schedules up to max_chunks_per_tick jobs,
  /// waits for them, and reports what happened. `column_name` labels the
  /// report's swap entries.
  Result<RecompressionReport> Tick(AppendableColumn& column,
                                   const std::string& column_name = "");

  /// Ticks — with the per-tick budget lifted, so no candidate can starve —
  /// until a pass makes no further progress: the backlog is drained and no
  /// sealed chunk beats min_gain. Returns the accumulated report.
  Result<RecompressionReport> RecompressAll(AppendableColumn& column,
                                            const std::string& column_name = "");

 private:
  const RecompressionPolicy policy_;
  const ExecContext ctx_;
  /// Fairness cursor over sealed candidates; see the class comment. The
  /// only mutable member, and atomic rather than mutex-guarded on purpose:
  /// concurrent Tick()s only need each pass's advance to land eventually
  /// (relaxed ordering — the cursor is a rotation hint, not shared data),
  /// so there is no lock here for the thread-safety analysis to track.
  std::atomic<uint64_t> cursor_{0};
};

}  // namespace recomp::store

#endif  // RECOMP_STORE_RECOMPRESS_H_
