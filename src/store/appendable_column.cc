#include "store/appendable_column.h"

#include <algorithm>
#include <utility>

#include "core/pipeline.h"
#include "core/serialize.h"
#include "obs/metrics.h"
#include "schemes/scheme_internal.h"
#include "util/string_util.h"

namespace recomp::store {

namespace {

/// Seal-path metrics, resolved once. The backlog gauge counts slots still
/// serving their stored-plain form: +1 when a tail rolls, -1 when either a
/// seal job or a recompression seals the slot.
struct StoreMetrics {
  obs::Histogram* seal_ns;
  obs::Counter* seal_completed;
  obs::Counter* seal_cas_lost;
  obs::Counter* seal_failed;
  obs::Gauge* stored_plain_backlog;
  obs::Counter* analyzer_actual_bytes;

  static const StoreMetrics& Get() {
    static const StoreMetrics metrics = [] {
      StoreMetrics m;
      obs::Registry& registry = obs::Registry::Get();
      m.seal_ns = &registry.GetHistogram("store.seal_ns");
      m.seal_completed = &registry.GetCounter("store.seal.completed");
      m.seal_cas_lost = &registry.GetCounter("store.seal.cas_lost");
      m.seal_failed = &registry.GetCounter("store.seal.failed");
      m.stored_plain_backlog =
          &registry.GetGauge("store.stored_plain_backlog");
      m.analyzer_actual_bytes =
          &registry.GetCounter("analyzer.actual_bytes");
      return m;
    }();
    return metrics;
  }
};

Result<AnyColumn> EmptyColumnOfType(TypeId type) {
  return internal::DispatchAnyTypeId(type, [](auto tag) -> Result<AnyColumn> {
    using T = typename decltype(tag)::type;
    return AnyColumn(Column<T>{});
  });
}

/// Wraps plain rows as a stored-plain ID envelope without copying them:
/// exactly the node Compress(rows, Id()) builds (IdScheme stores the input
/// as the terminal "data" part; CompressNode records scheme/n/out_type),
/// minus that path's copy of the rows.
CompressedColumn WrapPlainAsId(AnyColumn rows) {
  CompressedNode node;
  node.scheme = SchemeDescriptor(SchemeKind::kId);
  node.n = rows.size();
  node.out_type = rows.type();
  CompressedPart part;
  part.column = std::move(rows);
  node.parts.emplace("data", std::move(part));
  return CompressedColumn(std::move(node));
}

}  // namespace

AppendableColumn::AppendableColumn(TypeId type, IngestOptions options,
                                   ExecContext ctx)
    : type_(type), options_(std::move(options)), ctx_(ctx) {
  if (options_.chunk_rows == 0) {
    seal_status_ = Status::InvalidArgument("chunk_rows must be positive");
    return;
  }
  if (options_.descriptor.has_value()) {
    const Status valid = options_.descriptor->Validate();
    if (!valid.ok()) {
      seal_status_ = valid;
      return;
    }
  } else if (!TypeIdIsUnsigned(type)) {
    // The analyzer only searches over unsigned data, so without a pinned
    // descriptor every seal job would fail later, async. Fail here instead;
    // signed columns work with an explicit composition (e.g. ZIGZAG).
    seal_status_ = Status::InvalidArgument(
        StringFormat("%s columns need an explicit descriptor (the analyzer "
                     "handles unsigned data only); pin one, e.g. ZIGZAG",
                     TypeIdName(type)));
    return;
  }
  auto tail = EmptyColumnOfType(type);
  if (tail.ok()) {
    tail_ = std::move(*tail);
  } else {
    seal_status_ = tail.status();
  }
}

AppendableColumn::~AppendableColumn() = default;  // TaskGroup waits.

uint64_t AppendableColumn::size() const {
  MutexLock lock(&mu_);
  return tail_begin_ + tail_.size();
}

uint64_t AppendableColumn::num_chunks() const {
  MutexLock lock(&mu_);
  return slots_.size();
}

uint64_t AppendableColumn::sealed_chunks() const {
  MutexLock lock(&mu_);
  return sealed_count_;
}

uint64_t AppendableColumn::pending_seals() const {
  return seal_jobs_.pending();
}

Status AppendableColumn::status() const {
  MutexLock lock(&mu_);
  return SlotAwareStatusLocked();
}

Status AppendableColumn::Append(uint64_t value) {
  // The per-row path stays allocation-free: one dispatch, one locked push.
  std::vector<SealJob> jobs;
  Status status =
      internal::DispatchUnsignedTypeId(type_, [&](auto tag) -> Status {
        using T = typename decltype(tag)::type;
        if (static_cast<uint64_t>(static_cast<T>(value)) != value) {
          return Status::InvalidArgument(
              StringFormat("value %llu does not fit a %s column",
                           static_cast<unsigned long long>(value),
                           TypeIdName(type_)));
        }
        MutexLock lock(&mu_);
        RECOMP_RETURN_NOT_OK(SlotAwareStatusLocked());
        tail_.As<T>().push_back(static_cast<T>(value));
        if (tail_.size() == options_.chunk_rows) {
          RECOMP_RETURN_NOT_OK(RollTailLocked(&jobs));
        }
        return Status::OK();
      });
  ScheduleSealJobs(std::move(jobs));
  return status;
}

Status AppendableColumn::AppendBatch(const AnyColumn& rows) {
  if (rows.is_packed()) {
    return Status::InvalidArgument("appends require a plain column");
  }
  if (rows.type() != type_) {
    return Status::InvalidArgument(
        StringFormat("append type %s differs from column type %s",
                     TypeIdName(rows.type()), TypeIdName(type_)));
  }
  std::vector<SealJob> jobs;
  Status status =
      internal::DispatchAnyTypeId(type_, [&](auto tag) -> Status {
        using T = typename decltype(tag)::type;
        const Column<T>& src = rows.As<T>();
        MutexLock lock(&mu_);
        RECOMP_RETURN_NOT_OK(SlotAwareStatusLocked());
        uint64_t i = 0;
        while (i < src.size()) {
          // Re-fetched each round: RollTailLocked replaces tail_.
          Column<T>& tail = tail_.As<T>();
          const uint64_t take = std::min<uint64_t>(
              options_.chunk_rows - tail.size(), src.size() - i);
          tail.insert(tail.end(), src.begin() + i, src.begin() + i + take);
          i += take;
          if (tail.size() == options_.chunk_rows) {
            RECOMP_RETURN_NOT_OK(RollTailLocked(&jobs));
          }
        }
        return Status::OK();
      });
  // Chunks rolled before a failure are still valid: always schedule.
  ScheduleSealJobs(std::move(jobs));
  return status;
}

Status AppendableColumn::Seal() {
  std::vector<SealJob> jobs;
  Status status;
  {
    MutexLock lock(&mu_);
    RECOMP_RETURN_NOT_OK(SlotAwareStatusLocked());
    if (tail_.size() > 0) status = RollTailLocked(&jobs);
  }
  ScheduleSealJobs(std::move(jobs));
  return status;
}

void AppendableColumn::WaitForSeals() { seal_jobs_.Wait(); }

Status AppendableColumn::Flush() {
  // Wait even when Seal() reports the sticky failure: Flush must always
  // leave the column quiescent (no job still mutating slots_).
  const Status sealed = Seal();
  WaitForSeals();
  RECOMP_RETURN_NOT_OK(sealed);
  MutexLock lock(&mu_);
  return SlotAwareStatusLocked();
}

Result<ColumnSnapshot> AppendableColumn::Snapshot() const {
  ColumnSnapshot snap;
  AnyColumn tail_copy;
  uint64_t tail_begin = 0;
  bool with_tail_chunk = false;
  {
    // The critical section is the row copy alone; the tail's zone map and
    // ID envelope are built after unlocking so appenders never wait behind
    // a reader's O(chunk_rows) work.
    MutexLock lock(&mu_);
    RECOMP_RETURN_NOT_OK(SlotAwareStatusLocked());
    for (uint64_t i = 0; i < slots_.size(); ++i) {
      RECOMP_RETURN_NOT_OK(snap.view_.AppendChunk(slots_[i]));
      // The access statistic the recompression policy reads: how many
      // snapshots included this chunk.
      ++slot_states_[i].access_count;
    }
    snap.sealed_ = sealed_count_;
    snap.unsealed_ = slots_.size() - sealed_count_;
    // A nonempty tail becomes one stored-plain chunk; an empty column
    // yields one empty chunk so the view is well-typed (CompressChunked's
    // convention).
    with_tail_chunk = tail_.size() > 0 || slots_.empty();
    if (with_tail_chunk) {
      tail_copy = tail_;
      tail_begin = tail_begin_;
    }
  }
  if (with_tail_chunk) {
    const ZoneMap zone = ComputeZoneMap(tail_copy, tail_begin);
    RECOMP_RETURN_NOT_OK(snap.view_.AppendChunk(
        CompressedChunk{zone, WrapPlainAsId(std::move(tail_copy))}));
    if (zone.row_count > 0) ++snap.unsealed_;
  }
  return snap;
}

Result<std::vector<uint8_t>> AppendableColumn::Serialize() {
  RECOMP_RETURN_NOT_OK(Flush());
  RECOMP_ASSIGN_OR_RETURN(ColumnSnapshot snap, Snapshot());
  return recomp::Serialize(snap.chunked());
}

Status AppendableColumn::RollTailLocked(std::vector<SealJob>* jobs) {
  SealJob job;
  job.slot = slots_.size();
  job.zone = ComputeZoneMap(tail_, tail_begin_);
  // Until the seal job lands, the chunk is served as a stored-plain ID
  // envelope — same rows, zero decode work, real zone map. The tail moves
  // into the envelope; the job compresses from that shared immutable copy.
  AnyColumn rows = std::move(tail_);
  RECOMP_ASSIGN_OR_RETURN(tail_, EmptyColumnOfType(type_));
  job.source = std::make_shared<const CompressedChunk>(
      CompressedChunk{job.zone, WrapPlainAsId(std::move(rows))});
  tail_begin_ += job.zone.row_count;
  slots_.push_back(job.source);
  slot_states_.emplace_back();
  StoreMetrics::Get().stored_plain_backlog->Add(1);
  jobs->push_back(std::move(job));
  return Status::OK();
}

std::vector<AppendableColumn::ChunkInfo> AppendableColumn::ChunkInfos() const {
  std::vector<ChunkInfo> infos;
  MutexLock lock(&mu_);
  infos.reserve(slots_.size());
  for (uint64_t i = 0; i < slots_.size(); ++i) {
    ChunkInfo info;
    info.slot = i;
    info.chunk = slots_[i];
    info.sealed = slot_states_[i].sealed;
    info.recompress_pending = slot_states_[i].recompress_pending;
    info.age_chunks = slots_.size() - i - 1;
    info.snapshot_accesses = slot_states_[i].access_count;
    info.recompress_count = slot_states_[i].recompress_count;
    infos.push_back(std::move(info));
  }
  return infos;
}

std::shared_ptr<const CompressedChunk> AppendableColumn::TryBeginRecompress(
    uint64_t slot, bool* sealed) {
  MutexLock lock(&mu_);
  if (slot >= slots_.size() || slot_states_[slot].recompress_pending) {
    return nullptr;
  }
  slot_states_[slot].recompress_pending = true;
  if (sealed != nullptr) *sealed = slot_states_[slot].sealed;
  return slots_[slot];
}

bool AppendableColumn::CompleteRecompress(
    uint64_t slot, const std::shared_ptr<const CompressedChunk>& expected,
    CompressedChunk replacement) {
  // Built outside the lock: the swap itself is O(1) pointer work.
  auto chunk =
      std::make_shared<const CompressedChunk>(std::move(replacement));
  MutexLock lock(&mu_);
  SlotState& state = slot_states_[slot];
  state.recompress_pending = false;
  bool swapped = false;
  if (slots_[slot] == expected) {
    slots_[slot] = std::move(chunk);
    if (!state.sealed) {
      // A stored-plain backlog chunk just got its compression: it is sealed
      // from here on (its late seal job, if any, will observe the pointer
      // changed and drop its result).
      state.sealed = true;
      ++sealed_count_;
      StoreMetrics::Get().stored_plain_backlog->Subtract(1);
    }
    ++state.recompress_count;
    swapped = true;
  }
  // Else: the original seal job landed between the claim and here; its
  // result is as correct as ours, so first-lander wins and we drop this
  // one. Either way the slot is sealed now: a seal failure parked on it is
  // healed, and the column-wide mirror is recomputed from what remains.
  if (!state.seal_failure.ok()) {
    state.seal_failure = Status::OK();
    slot_failure_status_ = Status::OK();
    for (const SlotState& other : slot_states_) {
      if (!other.seal_failure.ok()) {
        slot_failure_status_ = other.seal_failure;
        break;
      }
    }
  }
  return swapped;
}

void AppendableColumn::AbortRecompress(uint64_t slot) {
  MutexLock lock(&mu_);
  // Any parked seal failure stays parked (the slot is still unsealed and
  // slot_failure_status_ already surfaces it); only the claim is released.
  slot_states_[slot].recompress_pending = false;
}

void AppendableColumn::ScheduleSealJobs(std::vector<SealJob> jobs) {
  for (SealJob& job : jobs) {
    seal_jobs_.Run(ctx_, [this, job = std::move(job)]() mutable {
      const StoreMetrics& metrics = StoreMetrics::Get();
      const uint64_t start_ns = obs::MonotonicNanos();
      // The expensive part — scheme search + compression — runs without the
      // lock; only the slot swap takes it.
      Result<CompressedColumn> compressed = [&]() -> Result<CompressedColumn> {
        const AnyColumn& rows =
            *job.source->column.root().parts.at("data").column;
        SchemeDescriptor desc;
        if (options_.descriptor.has_value()) {
          desc = *options_.descriptor;
        } else {
          RECOMP_ASSIGN_OR_RETURN(desc,
                                  ChooseScheme(rows, options_.analyzer));
        }
        return Compress(rows, desc);
      }();
      if (compressed.ok() && !options_.descriptor.has_value()) {
        // The realized size of an analyzer choice (see ChooseScheme).
        metrics.analyzer_actual_bytes->Add(compressed->PayloadBytes());
      }
      metrics.seal_ns->Record(obs::MonotonicNanos() - start_ns);
      MutexLock lock(&mu_);
      if (compressed.ok()) {
        if (slots_[job.slot] == job.source) {
          slots_[job.slot] = std::make_shared<const CompressedChunk>(
              CompressedChunk{job.zone, std::move(*compressed)});
          slot_states_[job.slot].sealed = true;
          ++sealed_count_;
          metrics.stored_plain_backlog->Subtract(1);
          metrics.seal_completed->Increment();
        } else {
          // A recompression drained this slot while the job was queued or
          // running; the slot is already sealed with an equivalent (or
          // better) envelope, so the late result is dropped.
          metrics.seal_cas_lost->Increment();
        }
      } else {
        metrics.seal_failed->Increment();
        SlotState& state = slot_states_[job.slot];
        if (!state.sealed) {
          // The slot keeps serving the stored-plain form (still correct);
          // the failure surfaces on the next append/seal/snapshot — parked
          // per slot so a recompression that later seals this chunk heals
          // the column instead of leaving it poisoned forever.
          state.seal_failure = compressed.status();
          if (slot_failure_status_.ok()) {
            slot_failure_status_ = compressed.status();
          }
        }
        // Else: a recompression already sealed the slot; the stale failure
        // is moot.
      }
    });
  }
}

}  // namespace recomp::store
