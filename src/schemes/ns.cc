// NS (null suppression): discard the redundant high-order zero bits of every
// value by bit-packing to a fixed width. The workhorse residual compressor
// of the paper's FOR ≡ STEP + NS decomposition.

#include "columnar/stats.h"
#include "ops/pack.h"
#include "schemes/all_schemes.h"
#include "schemes/scheme_internal.h"
#include "util/bits.h"

namespace recomp::internal {

namespace {

class NsScheme final : public Scheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kNs; }

  std::vector<std::string> PartNames(const SchemeDescriptor&) const override {
    return {"packed"};
  }

  Result<CompressOutput> Compress(const AnyColumn& input,
                                  const SchemeDescriptor& desc) const override {
    return DispatchUnsignedColumn(
        input, [&](const auto& col) -> Result<CompressOutput> {
          using T = typename std::decay_t<decltype(col)>::value_type;
          int width = desc.params.width;
          if (width == 0) {
            uint64_t max = 0;
            for (const T v : col) max = std::max<uint64_t>(max, v);
            width = bits::BitWidth(max);
          }
          RECOMP_ASSIGN_OR_RETURN(PackedColumn packed,
                                  ops::Pack<T>(col, width));
          CompressOutput out;
          out.resolved = SchemeDescriptor(SchemeKind::kNs);
          out.resolved.params.width = width;
          out.parts.emplace("packed", std::move(packed));
          return out;
        });
  }

  Result<AnyColumn> Decompress(const PartsMap& parts,
                               const SchemeDescriptor& desc,
                               const DecompressContext& ctx) const override {
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* packed_any,
                            GetPart(parts, "packed"));
    if (!packed_any->is_packed()) {
      return Status::Corruption("NS 'packed' part is not a packed column");
    }
    const PackedColumn& packed = packed_any->packed();
    if (packed.n != ctx.n) {
      return Status::Corruption("NS packed length differs from envelope");
    }
    if (packed.bit_width != desc.params.width) {
      return Status::Corruption("NS packed width differs from descriptor");
    }
    return DispatchUnsignedTypeId(
        ctx.out_type, [&](auto tag) -> Result<AnyColumn> {
          using T = typename decltype(tag)::type;
          RECOMP_ASSIGN_OR_RETURN(Column<T> out, ops::Unpack<T>(packed));
          return AnyColumn(std::move(out));
        });
  }
};

}  // namespace

const Scheme* GetNsScheme() {
  static const NsScheme scheme;
  return &scheme;
}

}  // namespace recomp::internal
