// DELTA: store the difference of consecutive elements (with an implicit
// leading zero, so deltas[0] = col[0]). Decompression is a single inclusive
// PrefixSum — the operator the paper's RLE ≡ (ID, DELTA) ∘ RPE decomposition
// removes when trading ratio for speed.
//
// Differences are computed in the unsigned domain and wrap mod 2^bits;
// composing with ZIGZAG∘NS turns nearly-sorted data into a narrow column.

#include "ops/prefix_sum.h"
#include "schemes/all_schemes.h"
#include "schemes/scheme_internal.h"

namespace recomp::internal {

namespace {

class DeltaScheme final : public Scheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kDelta; }

  std::vector<std::string> PartNames(const SchemeDescriptor&) const override {
    return {"deltas"};
  }

  Result<CompressOutput> Compress(const AnyColumn& input,
                                  const SchemeDescriptor&) const override {
    return DispatchUnsignedColumn(
        input, [&](const auto& col) -> Result<CompressOutput> {
          using T = typename std::decay_t<decltype(col)>::value_type;
          Column<T> deltas(col.size());
          T prev{0};
          for (uint64_t i = 0; i < col.size(); ++i) {
            deltas[i] = static_cast<T>(col[i] - prev);
            prev = col[i];
          }
          CompressOutput out;
          out.resolved = SchemeDescriptor(SchemeKind::kDelta);
          out.parts.emplace("deltas", std::move(deltas));
          return out;
        });
  }

  Result<AnyColumn> Decompress(const PartsMap& parts, const SchemeDescriptor&,
                               const DecompressContext& ctx) const override {
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* deltas_any,
                            GetPart(parts, "deltas"));
    if (deltas_any->size() != ctx.n) {
      return Status::Corruption("DELTA part length differs from envelope");
    }
    return DispatchUnsignedTypeId(
        ctx.out_type, [&](auto tag) -> Result<AnyColumn> {
          using T = typename decltype(tag)::type;
          if (deltas_any->is_packed() || deltas_any->type() != TypeIdOf<T>()) {
            return Status::Corruption("DELTA 'deltas' part has the wrong type");
          }
          return AnyColumn(ops::PrefixSumInclusive(deltas_any->As<T>()));
        });
  }
};

}  // namespace

const Scheme* GetDeltaScheme() {
  static const DeltaScheme scheme;
  return &scheme;
}

}  // namespace recomp::internal
