// ID: the identity scheme. Storing the column unchanged terminates a
// composition; the paper uses it to make part-wise composition total
// ("(ID for values, DELTA for run_positions) ∘ RPE").

#include "schemes/all_schemes.h"
#include "schemes/scheme_internal.h"

namespace recomp::internal {

namespace {

class IdScheme final : public Scheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kId; }

  std::vector<std::string> PartNames(const SchemeDescriptor&) const override {
    return {"data"};
  }

  Result<CompressOutput> Compress(const AnyColumn& input,
                                  const SchemeDescriptor&) const override {
    if (input.is_packed()) {
      return Status::InvalidArgument("scheme input must be a plain column");
    }
    CompressOutput out;
    out.resolved = SchemeDescriptor(SchemeKind::kId);
    out.parts.emplace("data", input);
    return out;
  }

  Result<AnyColumn> Decompress(const PartsMap& parts, const SchemeDescriptor&,
                               const DecompressContext& ctx) const override {
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* data, GetPart(parts, "data"));
    if (data->size() != ctx.n) {
      return Status::Corruption("ID part length differs from envelope length");
    }
    return *data;
  }
};

}  // namespace

const Scheme* GetIdScheme() {
  static const IdScheme scheme;
  return &scheme;
}

}  // namespace recomp::internal
