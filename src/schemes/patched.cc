// PATCHED: the paper's L0-metric decomposition (§II-B) — data that is
// "really" narrow except for occasional divergent elements splits into a
// `width`-bit base column (low bits of every value) plus a patch list
// holding the exceptions' positions and exact values. This is the
// exception mechanism of PFOR-style schemes.
//
// An auto width is chosen by exact cost minimization over the bit-width
// histogram: bytes(w) = packed_base(w) + patches(w) * (position + value).

#include "schemes/all_schemes.h"
#include "schemes/scheme_internal.h"
#include "util/bits.h"

namespace recomp::internal {

namespace {

class PatchedScheme final : public Scheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kPatched; }

  std::vector<std::string> PartNames(const SchemeDescriptor&) const override {
    return {"base", "patch_positions", "patch_values"};
  }

  Result<CompressOutput> Compress(const AnyColumn& input,
                                  const SchemeDescriptor& desc) const override {
    return DispatchUnsignedColumn(
        input, [&](const auto& col) -> Result<CompressOutput> {
          using T = typename std::decay_t<decltype(col)>::value_type;
          if (col.size() >= (uint64_t{1} << 32)) {
            return Status::OutOfRange(
                "PATCHED supports columns below 2^32 rows");
          }
          int width = desc.params.width;
          if (width == 0) width = ChooseWidth(col);

          const uint64_t mask = bits::LowMask64(width);
          Column<T> base(col.size());
          Column<uint32_t> patch_positions;
          Column<T> patch_values;
          for (uint64_t i = 0; i < col.size(); ++i) {
            base[i] = static_cast<T>(static_cast<uint64_t>(col[i]) & mask);
            if ((static_cast<uint64_t>(col[i]) & ~mask) != 0) {
              patch_positions.push_back(static_cast<uint32_t>(i));
              patch_values.push_back(col[i]);
            }
          }
          CompressOutput out;
          out.resolved = SchemeDescriptor(SchemeKind::kPatched);
          out.resolved.params.width = width;
          out.parts.emplace("base", std::move(base));
          out.parts.emplace("patch_positions", std::move(patch_positions));
          out.parts.emplace("patch_values", std::move(patch_values));
          return out;
        });
  }

  Result<AnyColumn> Decompress(const PartsMap& parts,
                               const SchemeDescriptor& desc,
                               const DecompressContext& ctx) const override {
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* base_any, GetPart(parts, "base"));
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* positions_any,
                            GetPart(parts, "patch_positions"));
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* values_any,
                            GetPart(parts, "patch_values"));
    if (base_any->size() != ctx.n) {
      return Status::Corruption("PATCHED base length differs from envelope");
    }
    if (positions_any->is_packed() ||
        positions_any->type() != TypeId::kUInt32) {
      return Status::Corruption("PATCHED 'patch_positions' must be uint32");
    }
    const Column<uint32_t>& positions = positions_any->As<uint32_t>();
    if (positions.size() != values_any->size()) {
      return Status::Corruption("PATCHED patch arity mismatch");
    }
    const uint64_t mask = bits::LowMask64(desc.params.width);
    return DispatchUnsignedTypeId(
        ctx.out_type, [&](auto tag) -> Result<AnyColumn> {
          using T = typename decltype(tag)::type;
          if (base_any->is_packed() || base_any->type() != TypeIdOf<T>() ||
              values_any->is_packed() || values_any->type() != TypeIdOf<T>()) {
            return Status::Corruption("PATCHED parts have the wrong type");
          }
          Column<T> out = base_any->As<T>();
          const Column<T>& patch_values = values_any->As<T>();
          for (uint64_t p = 0; p < positions.size(); ++p) {
            if (positions[p] >= out.size()) {
              return Status::Corruption("PATCHED position exceeds column");
            }
            // A valid patch only restores high bits the mask removed.
            if ((static_cast<uint64_t>(patch_values[p]) & mask) !=
                static_cast<uint64_t>(out[positions[p]])) {
              return Status::Corruption("PATCHED patch disagrees with base");
            }
            out[positions[p]] = patch_values[p];
          }
          return AnyColumn(std::move(out));
        });
  }

 private:
  /// Exact cost minimization over the bit-width histogram.
  template <typename T>
  static int ChooseWidth(const Column<T>& col) {
    uint64_t histogram[65] = {};
    int max_width = 0;
    for (const T v : col) {
      const int w = bits::BitWidth(static_cast<uint64_t>(v));
      ++histogram[w];
      max_width = std::max(max_width, w);
    }
    // exceptions(w): values needing more than w bits.
    uint64_t exceptions = 0;
    uint64_t best_bytes = ~uint64_t{0};
    int best_width = max_width;
    for (int w = max_width; w >= 0; --w) {
      const uint64_t patch_bytes =
          exceptions * (sizeof(uint32_t) + sizeof(T));
      const uint64_t bytes = bits::PackedByteSize(col.size(), w) + patch_bytes;
      if (bytes < best_bytes) {
        best_bytes = bytes;
        best_width = w;
      }
      exceptions += histogram[w];  // Values of exactly w bits overflow w-1.
    }
    return best_width;
  }
};

}  // namespace

const Scheme* GetPatchedScheme() {
  static const PatchedScheme scheme;
  return &scheme;
}

}  // namespace recomp::internal
