// Shared dispatch helpers for scheme implementations (not a public header).

#ifndef RECOMP_SCHEMES_SCHEME_INTERNAL_H_
#define RECOMP_SCHEMES_SCHEME_INTERNAL_H_

#include <utility>

#include "schemes/scheme.h"
#include "util/string_util.h"

namespace recomp::internal {

/// Tag carrying a static element type through a generic lambda.
template <typename T>
struct TypeTag {
  using type = T;
};

/// Invokes f(Column<T>&) for the unsigned column held by `input`; errors for
/// packed or signed inputs (signed data is normalized with ZIGZAG first).
template <typename F>
auto DispatchUnsignedColumn(const AnyColumn& input, F&& f)
    -> decltype(f(std::declval<const Column<uint32_t>&>())) {
  if (input.is_packed()) {
    return Status::InvalidArgument("scheme input must be a plain column");
  }
  switch (input.type()) {
    case TypeId::kUInt8:
      return f(input.As<uint8_t>());
    case TypeId::kUInt16:
      return f(input.As<uint16_t>());
    case TypeId::kUInt32:
      return f(input.As<uint32_t>());
    case TypeId::kUInt64:
      return f(input.As<uint64_t>());
    default:
      return Status::InvalidArgument(
          StringFormat("%s input is signed; compose with ZIGZAG first",
                       TypeIdName(input.type())));
  }
}

/// Invokes f(Column<T>&) for any plain column type.
template <typename F>
auto DispatchAnyColumn(const AnyColumn& input, F&& f)
    -> decltype(f(std::declval<const Column<uint32_t>&>())) {
  if (input.is_packed()) {
    return Status::InvalidArgument("scheme input must be a plain column");
  }
  switch (input.type()) {
    case TypeId::kUInt8:
      return f(input.As<uint8_t>());
    case TypeId::kUInt16:
      return f(input.As<uint16_t>());
    case TypeId::kUInt32:
      return f(input.As<uint32_t>());
    case TypeId::kUInt64:
      return f(input.As<uint64_t>());
    case TypeId::kInt8:
      return f(input.As<int8_t>());
    case TypeId::kInt16:
      return f(input.As<int16_t>());
    case TypeId::kInt32:
      return f(input.As<int32_t>());
    case TypeId::kInt64:
      return f(input.As<int64_t>());
  }
  return Status::InvalidArgument("unknown column type");
}

/// Invokes f(TypeTag<T>{}) for the unsigned type identified by `t`.
template <typename F>
auto DispatchUnsignedTypeId(TypeId t, F&& f) -> decltype(f(TypeTag<uint32_t>{})) {
  switch (t) {
    case TypeId::kUInt8:
      return f(TypeTag<uint8_t>{});
    case TypeId::kUInt16:
      return f(TypeTag<uint16_t>{});
    case TypeId::kUInt32:
      return f(TypeTag<uint32_t>{});
    case TypeId::kUInt64:
      return f(TypeTag<uint64_t>{});
    default:
      return Status::InvalidArgument(
          StringFormat("expected an unsigned type, got %s", TypeIdName(t)));
  }
}

/// Invokes f(TypeTag<T>{}) for any type id.
template <typename F>
auto DispatchAnyTypeId(TypeId t, F&& f) -> decltype(f(TypeTag<uint32_t>{})) {
  switch (t) {
    case TypeId::kUInt8:
      return f(TypeTag<uint8_t>{});
    case TypeId::kUInt16:
      return f(TypeTag<uint16_t>{});
    case TypeId::kUInt32:
      return f(TypeTag<uint32_t>{});
    case TypeId::kUInt64:
      return f(TypeTag<uint64_t>{});
    case TypeId::kInt8:
      return f(TypeTag<int8_t>{});
    case TypeId::kInt16:
      return f(TypeTag<int16_t>{});
    case TypeId::kInt32:
      return f(TypeTag<int32_t>{});
    case TypeId::kInt64:
      return f(TypeTag<int64_t>{});
  }
  return Status::InvalidArgument("unknown type id");
}

}  // namespace recomp::internal

#endif  // RECOMP_SCHEMES_SCHEME_INTERNAL_H_
