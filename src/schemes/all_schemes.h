// Internal accessors for the per-kind Scheme singletons; the public entry
// point is GetScheme() in schemes/scheme.h.

#ifndef RECOMP_SCHEMES_ALL_SCHEMES_H_
#define RECOMP_SCHEMES_ALL_SCHEMES_H_

#include "schemes/scheme.h"

namespace recomp::internal {

const Scheme* GetIdScheme();
const Scheme* GetZigZagScheme();
const Scheme* GetNsScheme();
const Scheme* GetVByteScheme();
const Scheme* GetDeltaScheme();
const Scheme* GetRpeScheme();
const Scheme* GetDictScheme();
const Scheme* GetStepScheme();
const Scheme* GetPlinScheme();
const Scheme* GetModeledScheme();
const Scheme* GetPatchedScheme();

}  // namespace recomp::internal

#endif  // RECOMP_SCHEMES_ALL_SCHEMES_H_
