// DICT: order-preserving dictionary encoding. The dictionary part is sorted
// ascending, so range predicates translate to code ranges (exploited by
// exec/selection.cc); the codes part is a plain uint32 column, typically
// composed with NS.

#include <algorithm>

#include "schemes/all_schemes.h"
#include "schemes/scheme_internal.h"

namespace recomp::internal {

namespace {

class DictScheme final : public Scheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kDict; }

  std::vector<std::string> PartNames(const SchemeDescriptor&) const override {
    return {"codes", "dictionary"};
  }

  Result<CompressOutput> Compress(const AnyColumn& input,
                                  const SchemeDescriptor&) const override {
    return DispatchAnyColumn(
        input, [&](const auto& col) -> Result<CompressOutput> {
          using T = typename std::decay_t<decltype(col)>::value_type;
          Column<T> dictionary(col.begin(), col.end());
          std::sort(dictionary.begin(), dictionary.end());
          dictionary.erase(std::unique(dictionary.begin(), dictionary.end()),
                           dictionary.end());
          if (dictionary.size() >= (uint64_t{1} << 32)) {
            return Status::OutOfRange("DICT supports below 2^32 distinct values");
          }
          Column<uint32_t> codes(col.size());
          for (uint64_t i = 0; i < col.size(); ++i) {
            codes[i] = static_cast<uint32_t>(
                std::lower_bound(dictionary.begin(), dictionary.end(), col[i]) -
                dictionary.begin());
          }
          CompressOutput out;
          out.resolved = SchemeDescriptor(SchemeKind::kDict);
          out.parts.emplace("codes", std::move(codes));
          out.parts.emplace("dictionary", std::move(dictionary));
          return out;
        });
  }

  Result<AnyColumn> Decompress(const PartsMap& parts, const SchemeDescriptor&,
                               const DecompressContext& ctx) const override {
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* codes_any, GetPart(parts, "codes"));
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* dict_any,
                            GetPart(parts, "dictionary"));
    if (codes_any->is_packed() || codes_any->type() != TypeId::kUInt32) {
      return Status::Corruption("DICT 'codes' must be a uint32 column");
    }
    const Column<uint32_t>& codes = codes_any->As<uint32_t>();
    if (codes.size() != ctx.n) {
      return Status::Corruption("DICT codes length differs from envelope");
    }
    return DispatchAnyTypeId(ctx.out_type, [&](auto tag) -> Result<AnyColumn> {
      using T = typename decltype(tag)::type;
      if (dict_any->is_packed() || dict_any->type() != TypeIdOf<T>()) {
        return Status::Corruption("DICT 'dictionary' part has the wrong type");
      }
      const Column<T>& dictionary = dict_any->As<T>();
      Column<T> out(codes.size());
      for (uint64_t i = 0; i < codes.size(); ++i) {
        if (codes[i] >= dictionary.size()) {
          return Status::Corruption("DICT code exceeds dictionary size");
        }
        out[i] = dictionary[codes[i]];
      }
      return AnyColumn(std::move(out));
    });
  }
};

}  // namespace

const Scheme* GetDictScheme() {
  static const DictScheme scheme;
  return &scheme;
}

}  // namespace recomp::internal
