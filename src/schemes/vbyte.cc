// VBYTE: variable-byte encoding — 7 value bits per byte, high bit set on
// non-final bytes. This realizes the paper's log-metric residual: each value
// pays roughly d(x, 0) = ceil(bits(x) / 7) bytes instead of a global fixed
// width.

#include "schemes/all_schemes.h"
#include "schemes/scheme_internal.h"

namespace recomp::internal {

namespace {

class VByteScheme final : public Scheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kVByte; }

  std::vector<std::string> PartNames(const SchemeDescriptor&) const override {
    return {"stream"};
  }

  Result<CompressOutput> Compress(const AnyColumn& input,
                                  const SchemeDescriptor&) const override {
    return DispatchUnsignedColumn(
        input, [&](const auto& col) -> Result<CompressOutput> {
          using T = typename std::decay_t<decltype(col)>::value_type;
          Column<uint8_t> stream;
          stream.reserve(col.size());
          for (const T value : col) {
            uint64_t v = value;
            while (v >= 0x80) {
              stream.push_back(static_cast<uint8_t>(v) | 0x80);
              v >>= 7;
            }
            stream.push_back(static_cast<uint8_t>(v));
          }
          CompressOutput out;
          out.resolved = SchemeDescriptor(SchemeKind::kVByte);
          out.parts.emplace("stream", std::move(stream));
          return out;
        });
  }

  Result<AnyColumn> Decompress(const PartsMap& parts, const SchemeDescriptor&,
                               const DecompressContext& ctx) const override {
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* stream_any,
                            GetPart(parts, "stream"));
    if (stream_any->is_packed() || stream_any->type() != TypeId::kUInt8) {
      return Status::Corruption("VBYTE 'stream' part must be a uint8 column");
    }
    const Column<uint8_t>& stream = stream_any->As<uint8_t>();
    return DispatchUnsignedTypeId(
        ctx.out_type, [&](auto tag) -> Result<AnyColumn> {
          using T = typename decltype(tag)::type;
          Column<T> out;
          out.reserve(ctx.n);
          uint64_t pos = 0;
          for (uint64_t i = 0; i < ctx.n; ++i) {
            uint64_t v = 0;
            int shift = 0;
            while (true) {
              if (pos >= stream.size() || shift >= 64) {
                return Status::Corruption("VBYTE stream truncated or overlong");
              }
              const uint8_t byte = stream[pos++];
              v |= static_cast<uint64_t>(byte & 0x7F) << shift;
              if ((byte & 0x80) == 0) break;
              shift += 7;
            }
            if (v > std::numeric_limits<T>::max()) {
              return Status::Corruption("VBYTE value exceeds output type");
            }
            out.push_back(static_cast<T>(v));
          }
          if (pos != stream.size()) {
            return Status::Corruption("VBYTE stream has trailing bytes");
          }
          return AnyColumn(std::move(out));
        });
  }
};

}  // namespace

const Scheme* GetVByteScheme() {
  static const VByteScheme scheme;
  return &scheme;
}

}  // namespace recomp::internal
