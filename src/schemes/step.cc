// STEP: fixed-segment-length step functions. As the paper notes, this is
// nearly useless standalone — it only represents columns that are constant
// on every segment — but it is exactly the *model* whose additive pairing
// with NS reconstructs FOR: FOR ≡ STEP + NS.

#include "schemes/all_schemes.h"
#include "schemes/model_fit.h"
#include "schemes/scheme_internal.h"

namespace recomp::internal {

namespace {

/// Default segment length used when segment_length is left auto.
constexpr uint64_t kDefaultSegmentLength = 1024;

class StepScheme final : public Scheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kStep; }

  std::vector<std::string> PartNames(const SchemeDescriptor&) const override {
    return {"refs"};
  }

  Result<CompressOutput> Compress(const AnyColumn& input,
                                  const SchemeDescriptor& desc) const override {
    return DispatchUnsignedColumn(
        input, [&](const auto& col) -> Result<CompressOutput> {
          using T = typename std::decay_t<decltype(col)>::value_type;
          const uint64_t ell = desc.params.segment_length != 0
                                   ? desc.params.segment_length
                                   : kDefaultSegmentLength;
          Column<T> refs = FitStepRefs(col, ell);
          // Standalone STEP is exact: every segment must be constant.
          for (uint64_t i = 0; i < col.size(); ++i) {
            if (col[i] != refs[i / ell]) {
              return Status::InvalidArgument(
                  "column is not a step function at this segment length; "
                  "use MODELED(STEP) for approximate data");
            }
          }
          CompressOutput out;
          out.resolved = SchemeDescriptor(SchemeKind::kStep);
          out.resolved.params.segment_length = ell;
          out.parts.emplace("refs", std::move(refs));
          return out;
        });
  }

  Result<AnyColumn> Decompress(const PartsMap& parts,
                               const SchemeDescriptor& desc,
                               const DecompressContext& ctx) const override {
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* refs_any, GetPart(parts, "refs"));
    const uint64_t ell = desc.params.segment_length;
    if (ell == 0) {
      return Status::Corruption("STEP descriptor lacks a segment length");
    }
    if (refs_any->size() != bits::CeilDiv(ctx.n, ell)) {
      return Status::Corruption("STEP refs arity differs from envelope");
    }
    return DispatchUnsignedTypeId(
        ctx.out_type, [&](auto tag) -> Result<AnyColumn> {
          using T = typename decltype(tag)::type;
          if (refs_any->is_packed() || refs_any->type() != TypeIdOf<T>()) {
            return Status::Corruption("STEP 'refs' part has the wrong type");
          }
          return AnyColumn(EvaluateStep(refs_any->As<T>(), ell, ctx.n));
        });
  }
};

}  // namespace

const Scheme* GetStepScheme() {
  static const StepScheme scheme;
  return &scheme;
}

}  // namespace recomp::internal
