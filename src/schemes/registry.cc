#include "schemes/all_schemes.h"
#include "schemes/scheme.h"

namespace recomp {

const Scheme* GetScheme(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kId:
      return internal::GetIdScheme();
    case SchemeKind::kZigZag:
      return internal::GetZigZagScheme();
    case SchemeKind::kNs:
      return internal::GetNsScheme();
    case SchemeKind::kVByte:
      return internal::GetVByteScheme();
    case SchemeKind::kDelta:
      return internal::GetDeltaScheme();
    case SchemeKind::kRpe:
      return internal::GetRpeScheme();
    case SchemeKind::kDict:
      return internal::GetDictScheme();
    case SchemeKind::kStep:
      return internal::GetStepScheme();
    case SchemeKind::kPlin:
      return internal::GetPlinScheme();
    case SchemeKind::kModeled:
      return internal::GetModeledScheme();
    case SchemeKind::kPatched:
      return internal::GetPatchedScheme();
  }
  return internal::GetIdScheme();
}

Result<const AnyColumn*> GetPart(const PartsMap& parts,
                                 const std::string& name) {
  auto it = parts.find(name);
  if (it == parts.end()) {
    return Status::KeyError("missing compressed part '" + name + "'");
  }
  return &it->second;
}

}  // namespace recomp
