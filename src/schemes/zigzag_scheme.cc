// ZIGZAG: bijective recoding that interleaves negative and non-negative
// values so small-magnitude data (typically DELTA residuals) becomes small
// unsigned data. Signed columns become their unsigned counterpart; unsigned
// columns are reinterpreted as signed first (making wrapped deltas small).

#include "schemes/all_schemes.h"
#include "schemes/scheme_internal.h"
#include "util/zigzag.h"

namespace recomp::internal {

namespace {

class ZigZagScheme final : public Scheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kZigZag; }

  std::vector<std::string> PartNames(const SchemeDescriptor&) const override {
    return {"recoded"};
  }

  Result<CompressOutput> Compress(const AnyColumn& input,
                                  const SchemeDescriptor&) const override {
    return DispatchAnyColumn(input, [&](const auto& col) -> Result<CompressOutput> {
      using T = typename std::decay_t<decltype(col)>::value_type;
      using S = std::make_signed_t<T>;
      using U = std::make_unsigned_t<T>;
      Column<U> recoded(col.size());
      for (uint64_t i = 0; i < col.size(); ++i) {
        recoded[i] = zigzag::Encode(static_cast<S>(col[i]));
      }
      CompressOutput out;
      out.resolved = SchemeDescriptor(SchemeKind::kZigZag);
      out.parts.emplace("recoded", std::move(recoded));
      return out;
    });
  }

  Result<AnyColumn> Decompress(const PartsMap& parts, const SchemeDescriptor&,
                               const DecompressContext& ctx) const override {
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* recoded, GetPart(parts, "recoded"));
    if (recoded->size() != ctx.n) {
      return Status::Corruption("ZIGZAG part length differs from envelope");
    }
    return DispatchAnyTypeId(ctx.out_type, [&](auto tag) -> Result<AnyColumn> {
      using T = typename decltype(tag)::type;
      using U = std::make_unsigned_t<T>;
      if (recoded->type() != TypeIdOf<U>() || recoded->is_packed()) {
        return Status::Corruption("ZIGZAG recoded part has the wrong type");
      }
      const Column<U>& in = recoded->As<U>();
      Column<T> out(in.size());
      for (uint64_t i = 0; i < in.size(); ++i) {
        out[i] = static_cast<T>(zigzag::Decode(in[i]));
      }
      return AnyColumn(std::move(out));
    });
  }
};

}  // namespace

const Scheme* GetZigZagScheme() {
  static const ZigZagScheme scheme;
  return &scheme;
}

}  // namespace recomp::internal
