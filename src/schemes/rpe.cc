// RPE (run-position encoding), §7.2 of Plattner's course book and §II-A of
// the paper: one value per run plus the runs' inclusive end positions (the
// paper's run_positions column, whose last element is n). RLE is the catalog
// composition RPE{positions: DELTA} — the lengths *are* the positions'
// deltas.

#include "ops/run_boundaries.h"
#include "schemes/all_schemes.h"
#include "schemes/scheme_internal.h"

namespace recomp::internal {

namespace {

class RpeScheme final : public Scheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kRpe; }

  std::vector<std::string> PartNames(const SchemeDescriptor&) const override {
    return {"values", "positions"};
  }

  Result<CompressOutput> Compress(const AnyColumn& input,
                                  const SchemeDescriptor&) const override {
    return DispatchAnyColumn(
        input, [&](const auto& col) -> Result<CompressOutput> {
          using T = typename std::decay_t<decltype(col)>::value_type;
          RECOMP_ASSIGN_OR_RETURN(ops::Runs<T> runs, ops::FindRuns(col));
          CompressOutput out;
          out.resolved = SchemeDescriptor(SchemeKind::kRpe);
          out.parts.emplace("values", std::move(runs.values));
          out.parts.emplace("positions", std::move(runs.end_positions));
          return out;
        });
  }

  Result<AnyColumn> Decompress(const PartsMap& parts, const SchemeDescriptor&,
                               const DecompressContext& ctx) const override {
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* values_any,
                            GetPart(parts, "values"));
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* positions_any,
                            GetPart(parts, "positions"));
    if (positions_any->is_packed() ||
        positions_any->type() != TypeId::kUInt32) {
      return Status::Corruption("RPE 'positions' must be a uint32 column");
    }
    const Column<uint32_t>& positions = positions_any->As<uint32_t>();
    if (values_any->size() != positions.size()) {
      return Status::Corruption("RPE values/positions arity mismatch");
    }
    // Positions must be strictly increasing (runs are non-empty) and end
    // exactly at n.
    for (uint64_t r = 0; r < positions.size(); ++r) {
      const uint32_t prev = r == 0 ? 0 : positions[r - 1];
      if (positions[r] <= prev) {
        return Status::Corruption("RPE positions are not strictly increasing");
      }
    }
    if ((positions.empty() && ctx.n != 0) ||
        (!positions.empty() && positions.back() != ctx.n)) {
      return Status::Corruption("RPE last position differs from envelope n");
    }
    return DispatchAnyTypeId(ctx.out_type, [&](auto tag) -> Result<AnyColumn> {
      using T = typename decltype(tag)::type;
      if (values_any->is_packed() || values_any->type() != TypeIdOf<T>()) {
        return Status::Corruption("RPE 'values' part has the wrong type");
      }
      const Column<T>& values = values_any->As<T>();
      Column<T> out(ctx.n);
      uint32_t begin = 0;
      for (uint64_t r = 0; r < values.size(); ++r) {
        const uint32_t end = positions[r];
        std::fill(out.begin() + begin, out.begin() + end, values[r]);
        begin = end;
      }
      return AnyColumn(std::move(out));
    });
  }
};

}  // namespace

const Scheme* GetRpeScheme() {
  static const RpeScheme scheme;
  return &scheme;
}

}  // namespace recomp::internal
