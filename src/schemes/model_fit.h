// Model fitting/evaluation helpers shared by the STEP and PLIN schemes and
// the MODELED combinator (internal header).
//
// A model approximates column values per fixed-length segment; the MODELED
// combinator stores `data - model` as an unsigned residual. Fits always pick
// the intercept as the minimum deviation so residuals are non-negative.

#ifndef RECOMP_SCHEMES_MODEL_FIT_H_
#define RECOMP_SCHEMES_MODEL_FIT_H_

#include <algorithm>
#include <cstdint>

#include "columnar/column.h"
#include "util/bits.h"
#include "util/result.h"

namespace recomp::internal {

/// Fixed-point fractional bits of PLIN slopes.
inline constexpr int kPlinSlopeFractionBits = 16;

/// Per-segment minima: the refs column of a STEP model (the paper's
/// frame-of-reference values).
template <typename T>
Column<T> FitStepRefs(const Column<T>& col, uint64_t ell) {
  Column<T> refs;
  refs.reserve(bits::CeilDiv(col.size(), ell == 0 ? 1 : ell));
  for (uint64_t begin = 0; begin < col.size(); begin += ell) {
    const uint64_t end = std::min<uint64_t>(begin + ell, col.size());
    refs.push_back(*std::min_element(col.begin() + begin, col.begin() + end));
  }
  return refs;
}

/// Evaluates a STEP model: value i is refs[i / ell].
template <typename T>
Column<T> EvaluateStep(const Column<T>& refs, uint64_t ell, uint64_t n) {
  Column<T> out(n);
  for (uint64_t i = 0; i < n; ++i) out[i] = refs[i / ell];
  return out;
}

/// A fitted piecewise-linear model: per segment, an intercept and a
/// fixed-point slope (kPlinSlopeFractionBits fractional bits). The line's
/// value at in-segment offset j is bases[s] + ((slopes[s] * j) >>
/// kPlinSlopeFractionBits), computed with wrapping casts.
template <typename T>
struct PlinFit {
  Column<T> bases;
  Column<int64_t> slopes;
};

/// The line's integer offset at in-segment position j.
inline int64_t PlinLineOffset(int64_t slope_fp, uint64_t j) {
  return (slope_fp * static_cast<int64_t>(j)) >> kPlinSlopeFractionBits;
}

/// Fits a lower-envelope line per segment: slope from the segment endpoints,
/// intercept = min(v[j] - line(j)) so residuals are >= 0. When the fitted
/// slope would make some residual unrepresentable in T (possible on
/// adversarial data: deviations can span almost twice the type's range), the
/// segment falls back to slope 0 — i.e. degenerates to a STEP segment, whose
/// residuals always fit. FitPlin is therefore total.
template <typename T>
Result<PlinFit<T>> FitPlin(const Column<T>& col, uint64_t ell) {
  static_assert(std::is_unsigned_v<T>);
  PlinFit<T> fit;
  const uint64_t n = col.size();
  for (uint64_t begin = 0; begin < n; begin += ell) {
    const uint64_t end = std::min<uint64_t>(begin + ell, n);
    const uint64_t len = end - begin;
    int64_t slope_fp = 0;
    if (len >= 2) {
      const __int128 rise = static_cast<__int128>(col[end - 1]) -
                            static_cast<__int128>(col[begin]);
      __int128 fp = (rise << kPlinSlopeFractionBits) /
                    static_cast<__int128>(len - 1);
      // Keep slope * j safely inside int64 for every j < len.
      const __int128 limit =
          static_cast<__int128>(std::numeric_limits<int64_t>::max()) /
          static_cast<__int128>(len);
      fp = std::clamp<__int128>(fp, -limit, limit);
      slope_fp = static_cast<int64_t>(fp);
    }
    for (int attempt = 0; attempt < 2; ++attempt) {
      __int128 min_dev = 0;
      __int128 max_dev = 0;
      bool first = true;
      for (uint64_t j = 0; j < len; ++j) {
        const __int128 dev =
            static_cast<__int128>(col[begin + j]) -
            static_cast<__int128>(PlinLineOffset(slope_fp, j));
        if (first || dev < min_dev) min_dev = dev;
        if (first || dev > max_dev) max_dev = dev;
        first = false;
      }
      if (max_dev - min_dev >
          static_cast<__int128>(std::numeric_limits<T>::max())) {
        slope_fp = 0;  // Degenerate to a STEP segment; always representable.
        continue;
      }
      fit.bases.push_back(static_cast<T>(static_cast<uint64_t>(min_dev)));
      fit.slopes.push_back(slope_fp);
      break;
    }
  }
  return fit;
}

/// Evaluates a PLIN model with wrapping arithmetic (exact mod 2^bits, which
/// is all residual reconstruction needs).
template <typename T>
Column<T> EvaluatePlin(const PlinFit<T>& fit, uint64_t ell, uint64_t n) {
  Column<T> out(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t seg = i / ell;
    const uint64_t j = i % ell;
    const uint64_t line =
        static_cast<uint64_t>(PlinLineOffset(fit.slopes[seg], j));
    out[i] = static_cast<T>(fit.bases[seg] + static_cast<T>(line));
  }
  return out;
}

}  // namespace recomp::internal

#endif  // RECOMP_SCHEMES_MODEL_FIT_H_
