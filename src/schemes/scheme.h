// The Scheme interface: one column in, named part columns out.
//
// A primitive scheme maps a plain column to a map of "pure" part columns
// (the paper's columnar view of compressed forms) and back. Part-wise
// composition — recursively compressing parts — is the pipeline's job
// (core/pipeline.h), not the schemes'; each scheme only knows its own parts.

#ifndef RECOMP_SCHEMES_SCHEME_H_
#define RECOMP_SCHEMES_SCHEME_H_

#include <map>
#include <string>
#include <vector>

#include "columnar/any_column.h"
#include "core/descriptor.h"
#include "util/result.h"

namespace recomp {

/// Named part columns of one scheme's compressed form.
using PartsMap = std::map<std::string, AnyColumn>;

/// Result of primitive compression: the parts plus the descriptor with all
/// auto parameters resolved to the concrete values decompression needs
/// (children are left empty; the pipeline fills them in).
struct CompressOutput {
  PartsMap parts;
  SchemeDescriptor resolved;
};

/// Envelope facts a scheme may need when reversing: the length and type of
/// the column it must reproduce.
struct DecompressContext {
  uint64_t n = 0;
  TypeId out_type = TypeId::kUInt32;
};

/// A primitive compression scheme (stateless; one singleton per kind).
class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual SchemeKind kind() const = 0;

  /// The part names this scheme produces, in canonical order, given resolved
  /// parameters.
  virtual std::vector<std::string> PartNames(
      const SchemeDescriptor& desc) const = 0;

  /// Compresses a plain column. `desc` is this scheme's own node (children
  /// ignored); zero-valued parameters are resolved from the data and
  /// recorded in the returned descriptor.
  virtual Result<CompressOutput> Compress(const AnyColumn& input,
                                          const SchemeDescriptor& desc) const = 0;

  /// Reverses Compress given fully materialized parts and the resolved
  /// descriptor. This is the *reference* ("fused") decompression; the
  /// operator-plan strategy lives in core/plan_builder.h.
  virtual Result<AnyColumn> Decompress(const PartsMap& parts,
                                       const SchemeDescriptor& desc,
                                       const DecompressContext& ctx) const = 0;
};

/// Returns the singleton implementation for `kind` (never null).
const Scheme* GetScheme(SchemeKind kind);

/// Fetches a part by name, failing with KeyError when absent.
Result<const AnyColumn*> GetPart(const PartsMap& parts, const std::string& name);

}  // namespace recomp

#endif  // RECOMP_SCHEMES_SCHEME_H_
