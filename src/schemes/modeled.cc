// MODELED: the paper's additive decomposition `data = model(i) + residual[i]`
// (§II-B, "FOR ≡ STEPFUNCTION + NS"). The model argument is STEP or PLIN;
// the residual is a non-negative unsigned column (the fits choose minimal
// intercepts), typically composed with NS or PATCHED.
//
// When the model's segment length is left auto, compression tries a ladder
// of candidate lengths and keeps the one minimizing the estimated footprint
// of refs + packed residual — the knob the paper's L∞ discussion exposes.

#include "columnar/stats.h"
#include "schemes/all_schemes.h"
#include "schemes/model_fit.h"
#include "schemes/scheme_internal.h"

namespace recomp::internal {

namespace {

constexpr uint64_t kCandidateSegmentLengths[] = {64, 128, 256, 512, 1024, 4096};

/// Estimated bytes of a STEP-modeled column at segment length ell.
template <typename T>
uint64_t EstimateStepBytes(const Column<T>& col, uint64_t ell) {
  const uint64_t segments = bits::CeilDiv(col.size(), ell);
  const int width = StepResidualWidth(col, ell);
  return segments * sizeof(T) + bits::PackedByteSize(col.size(), width);
}

template <typename T>
Result<CompressOutput> CompressWithModel(const Column<T>& col,
                                         const SchemeDescriptor& model) {
  uint64_t ell = model.params.segment_length;
  if (ell == 0) {
    // Pick the candidate minimizing the estimated footprint. For PLIN the
    // exact fit is priced per candidate; for STEP a stats scan suffices.
    uint64_t best_bytes = ~uint64_t{0};
    for (const uint64_t candidate : kCandidateSegmentLengths) {
      uint64_t estimate;
      if (model.kind == SchemeKind::kStep) {
        estimate = EstimateStepBytes(col, candidate);
      } else {
        auto fit = FitPlin(col, candidate);
        if (!fit.ok()) continue;
        Column<T> eval = EvaluatePlin(*fit, candidate, col.size());
        uint64_t max_residual = 0;
        for (uint64_t i = 0; i < col.size(); ++i) {
          max_residual = std::max<uint64_t>(
              max_residual, static_cast<T>(col[i] - eval[i]));
        }
        const uint64_t segments = bits::CeilDiv(col.size(), candidate);
        estimate = segments * (sizeof(T) + sizeof(int64_t)) +
                   bits::PackedByteSize(col.size(),
                                        bits::BitWidth(max_residual));
      }
      if (estimate < best_bytes) {
        best_bytes = estimate;
        ell = candidate;
      }
    }
    if (ell == 0) {
      return Status::InvalidArgument("no feasible segment length for model");
    }
  }

  CompressOutput out;
  SchemeDescriptor resolved_model(model.kind);
  resolved_model.params.segment_length = ell;

  Column<T> eval;
  if (model.kind == SchemeKind::kStep) {
    Column<T> refs = FitStepRefs(col, ell);
    eval = EvaluateStep(refs, ell, col.size());
    out.parts.emplace("refs", std::move(refs));
  } else {
    RECOMP_ASSIGN_OR_RETURN(PlinFit<T> fit, FitPlin(col, ell));
    eval = EvaluatePlin(fit, ell, col.size());
    out.parts.emplace("bases", std::move(fit.bases));
    out.parts.emplace("slopes", std::move(fit.slopes));
  }

  Column<T> residual(col.size());
  for (uint64_t i = 0; i < col.size(); ++i) {
    residual[i] = static_cast<T>(col[i] - eval[i]);
  }
  out.parts.emplace("residual", std::move(residual));
  out.resolved = Modeled(std::move(resolved_model));
  return out;
}

class ModeledScheme final : public Scheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kModeled; }

  std::vector<std::string> PartNames(
      const SchemeDescriptor& desc) const override {
    if (!desc.args.empty() && desc.args[0].kind == SchemeKind::kPlin) {
      return {"bases", "slopes", "residual"};
    }
    return {"refs", "residual"};
  }

  Result<CompressOutput> Compress(const AnyColumn& input,
                                  const SchemeDescriptor& desc) const override {
    if (desc.args.size() != 1 ||
        (desc.args[0].kind != SchemeKind::kStep &&
         desc.args[0].kind != SchemeKind::kPlin)) {
      return Status::InvalidArgument("MODELED requires a STEP or PLIN model");
    }
    return DispatchUnsignedColumn(
        input, [&](const auto& col) -> Result<CompressOutput> {
          return CompressWithModel(col, desc.args[0]);
        });
  }

  Result<AnyColumn> Decompress(const PartsMap& parts,
                               const SchemeDescriptor& desc,
                               const DecompressContext& ctx) const override {
    if (desc.args.size() != 1) {
      return Status::Corruption("MODELED descriptor lacks its model");
    }
    const SchemeDescriptor& model = desc.args[0];
    const uint64_t ell = model.params.segment_length;
    if (ell == 0) {
      return Status::Corruption("MODELED model lacks a segment length");
    }
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* residual_any,
                            GetPart(parts, "residual"));
    if (residual_any->size() != ctx.n) {
      return Status::Corruption("MODELED residual length differs from envelope");
    }
    return DispatchUnsignedTypeId(
        ctx.out_type, [&](auto tag) -> Result<AnyColumn> {
          using T = typename decltype(tag)::type;
          if (residual_any->is_packed() ||
              residual_any->type() != TypeIdOf<T>()) {
            return Status::Corruption("MODELED residual has the wrong type");
          }
          const Column<T>& residual = residual_any->As<T>();

          Column<T> eval;
          if (model.kind == SchemeKind::kStep) {
            RECOMP_ASSIGN_OR_RETURN(const AnyColumn* refs_any,
                                    GetPart(parts, "refs"));
            if (refs_any->is_packed() || refs_any->type() != TypeIdOf<T>() ||
                refs_any->size() != bits::CeilDiv(ctx.n, ell)) {
              return Status::Corruption("MODELED 'refs' part is malformed");
            }
            eval = EvaluateStep(refs_any->As<T>(), ell, ctx.n);
          } else if (model.kind == SchemeKind::kPlin) {
            RECOMP_ASSIGN_OR_RETURN(const AnyColumn* bases_any,
                                    GetPart(parts, "bases"));
            RECOMP_ASSIGN_OR_RETURN(const AnyColumn* slopes_any,
                                    GetPart(parts, "slopes"));
            const uint64_t segments = bits::CeilDiv(ctx.n, ell);
            if (bases_any->is_packed() || bases_any->type() != TypeIdOf<T>() ||
                bases_any->size() != segments || slopes_any->is_packed() ||
                slopes_any->type() != TypeId::kInt64 ||
                slopes_any->size() != segments) {
              return Status::Corruption("MODELED PLIN parts are malformed");
            }
            PlinFit<T> fit;
            fit.bases = bases_any->As<T>();
            fit.slopes = slopes_any->As<int64_t>();
            eval = EvaluatePlin(fit, ell, ctx.n);
          } else {
            return Status::Corruption("MODELED model kind is not a model");
          }

          Column<T> out(ctx.n);
          for (uint64_t i = 0; i < ctx.n; ++i) {
            out[i] = static_cast<T>(eval[i] + residual[i]);
          }
          return AnyColumn(std::move(out));
        });
  }
};

}  // namespace

const Scheme* GetModeledScheme() {
  static const ModeledScheme scheme;
  return &scheme;
}

}  // namespace recomp::internal
