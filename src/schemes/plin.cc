// PLIN: fixed-segment piecewise-linear functions — the paper's §II-B
// enrichment of the STEP model ("keep an offset from a diagonal line at some
// slope rather than the offset from a horizontal step"). Standalone PLIN is
// exact (residuals must be zero); MODELED(PLIN) is the useful pairing.

#include "schemes/all_schemes.h"
#include "schemes/model_fit.h"
#include "schemes/scheme_internal.h"

namespace recomp::internal {

namespace {

constexpr uint64_t kDefaultSegmentLength = 1024;

class PlinScheme final : public Scheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kPlin; }

  std::vector<std::string> PartNames(const SchemeDescriptor&) const override {
    return {"bases", "slopes"};
  }

  Result<CompressOutput> Compress(const AnyColumn& input,
                                  const SchemeDescriptor& desc) const override {
    return DispatchUnsignedColumn(
        input, [&](const auto& col) -> Result<CompressOutput> {
          using T = typename std::decay_t<decltype(col)>::value_type;
          const uint64_t ell = desc.params.segment_length != 0
                                   ? desc.params.segment_length
                                   : kDefaultSegmentLength;
          RECOMP_ASSIGN_OR_RETURN(PlinFit<T> fit, FitPlin(col, ell));
          Column<T> eval = EvaluatePlin(fit, ell, col.size());
          for (uint64_t i = 0; i < col.size(); ++i) {
            if (col[i] != eval[i]) {
              return Status::InvalidArgument(
                  "column is not piecewise-linear at this segment length; "
                  "use MODELED(PLIN) for approximate data");
            }
          }
          CompressOutput out;
          out.resolved = SchemeDescriptor(SchemeKind::kPlin);
          out.resolved.params.segment_length = ell;
          out.parts.emplace("bases", std::move(fit.bases));
          out.parts.emplace("slopes", std::move(fit.slopes));
          return out;
        });
  }

  Result<AnyColumn> Decompress(const PartsMap& parts,
                               const SchemeDescriptor& desc,
                               const DecompressContext& ctx) const override {
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* bases_any, GetPart(parts, "bases"));
    RECOMP_ASSIGN_OR_RETURN(const AnyColumn* slopes_any,
                            GetPart(parts, "slopes"));
    const uint64_t ell = desc.params.segment_length;
    if (ell == 0) {
      return Status::Corruption("PLIN descriptor lacks a segment length");
    }
    const uint64_t segments = bits::CeilDiv(ctx.n, ell);
    if (bases_any->size() != segments || slopes_any->size() != segments) {
      return Status::Corruption("PLIN part arity differs from envelope");
    }
    if (slopes_any->is_packed() || slopes_any->type() != TypeId::kInt64) {
      return Status::Corruption("PLIN 'slopes' must be an int64 column");
    }
    return DispatchUnsignedTypeId(
        ctx.out_type, [&](auto tag) -> Result<AnyColumn> {
          using T = typename decltype(tag)::type;
          if (bases_any->is_packed() || bases_any->type() != TypeIdOf<T>()) {
            return Status::Corruption("PLIN 'bases' part has the wrong type");
          }
          PlinFit<T> fit;
          fit.bases = bases_any->As<T>();
          fit.slopes = slopes_any->As<int64_t>();
          return AnyColumn(EvaluatePlin(fit, ell, ctx.n));
        });
  }
};

}  // namespace

const Scheme* GetPlinScheme() {
  static const PlinScheme scheme;
  return &scheme;
}

}  // namespace recomp::internal
