// Semi-join evaluated directly on compressed columns.
//
// The paper's §II-B notes the model view "can be used to speed up selections
// (e.g. range queries) and joins". A semi-join against a sorted key set
// (the typical FK ⋉ dimension probe) pushes down the same way selections
// do: DICT probes each *dictionary entry* once instead of each row, RPE
// probes each *run value* once, and MODELED(STEP) skips segments whose
// [ref, ref + 2^w) window contains no key at all.

#ifndef RECOMP_EXEC_JOIN_H_
#define RECOMP_EXEC_JOIN_H_

#include <cstdint>

#include "core/compressed.h"
#include "exec/strategy.h"
#include "util/result.h"

namespace recomp::exec {

/// Result of a semi-join probe.
struct SemiJoinResult {
  /// Ascending positions whose value appears in the key set.
  Column<uint32_t> positions;
  /// kDictProbe, kRleRuns, kStepPruned, or kDecompressScan.
  Strategy strategy = Strategy::kDecompressScan;
  /// Number of key-set membership probes actually performed (rows for the
  /// fallback; dictionary entries / runs / decoded values for pushdowns).
  uint64_t probes = 0;
};

/// Positions of rows whose value occurs in `sorted_keys` (ascending,
/// deduplicated; validated). Always equals the decompress-then-probe
/// reference.
Result<SemiJoinResult> SemiJoinCompressed(const CompressedColumn& compressed,
                                          const Column<uint64_t>& sorted_keys);

}  // namespace recomp::exec

#endif  // RECOMP_EXEC_JOIN_H_
