// Range selection evaluated directly on compressed columns.
//
// "There is no clear distinction between decompression and analytic query
// execution" (paper, Lessons 1): the same columnar view that yields
// decompression plans lets predicates push *into* the compressed form —
// filtering runs instead of rows (RPE/RLE), comparing codes instead of
// values (DICT), and pruning whole segments via the model's L∞ bound
// (MODELED(STEP) — the paper's "speed up selections" claim for FOR).

#ifndef RECOMP_EXEC_SELECTION_H_
#define RECOMP_EXEC_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/chunked.h"
#include "core/compressed.h"
#include "exec/strategy.h"
#include "util/result.h"

namespace recomp::exec {

/// An inclusive range predicate lo <= v <= hi over unsigned values.
struct RangePredicate {
  uint64_t lo = 0;
  uint64_t hi = ~uint64_t{0};

  /// True iff every value this band accepts, `other` would accept too —
  /// the containment order cross-query predicate subsumption is built on
  /// (service/shared_scan.h): when A contains B, B's selection is a subset
  /// of A's, so B can re-filter A's matches instead of the whole chunk.
  bool Contains(const RangePredicate& other) const {
    return lo <= other.lo && other.hi <= hi;
  }

  /// Contains, excluding the band itself (equal bands are the *same*
  /// predicate and belong to the selection cache, not the subsumption
  /// lattice).
  bool StrictlyContains(const RangePredicate& other) const {
    return Contains(other) && (lo != other.lo || hi != other.hi);
  }

  bool operator==(const RangePredicate& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

/// How a selection was executed, for inspection and benchmarks.
struct SelectionStats {
  Strategy strategy = Strategy::kDecompressScan;
  uint64_t runs_examined = 0;     ///< rle-runs strategy.
  uint64_t segments_total = 0;    ///< step-pruned strategy.
  uint64_t segments_skipped = 0;  ///< Disjoint from the predicate: no work.
  uint64_t segments_full = 0;     ///< Contained in the predicate: no decode.
  uint64_t segments_partial = 0;  ///< Overlapping: decoded and tested.
  uint64_t values_decoded = 0;    ///< Residual/code values actually decoded.
};

/// The matching positions plus execution statistics.
struct SelectionResult {
  Column<uint32_t> positions;
  SelectionStats stats;
};

/// Evaluates the predicate over the compressed column, pushing down where
/// the shape allows and falling back to decompress-and-scan otherwise. The
/// positions always equal the decompress-then-filter reference.
Result<SelectionResult> SelectCompressed(const CompressedColumn& compressed,
                                         const RangePredicate& predicate);

/// The per-chunk stats of one executed chunk of a chunked selection.
struct ChunkSelectionStats {
  uint64_t chunk_index = 0;
  SelectionStats stats;
};

/// How a chunked selection was executed: zone-map pruning counts plus how
/// many chunks each per-chunk strategy served.
struct ChunkedSelectionStats {
  uint64_t chunks_total = 0;
  uint64_t chunks_pruned = 0;    ///< Zone map disjoint: chunk never touched.
  uint64_t chunks_full = 0;      ///< Zone map contained: emitted, no decode.
  uint64_t chunks_executed = 0;  ///< Dispatched to a per-chunk strategy.
  /// Executed chunks served per strategy, indexed by Strategy.
  uint64_t strategy_chunks[kNumStrategies] = {};
  /// Values decoded across executed chunks.
  uint64_t values_decoded = 0;
  /// Full stats of each executed chunk, in chunk order.
  std::vector<ChunkSelectionStats> per_chunk;

  /// One-line human-readable rendering, e.g.
  /// "chunks total=8 pruned=5 full=1 executed=2 values_decoded=4096
  ///  [step-pruned=2]" (strategies with zero chunks are omitted).
  std::string ToString() const;
};

/// The matching global positions plus chunk-level execution statistics.
struct ChunkedSelectionResult {
  Column<uint32_t> positions;
  ChunkedSelectionStats stats;
};

/// Chunked overload: prunes whole chunks via their zone maps, dispatches the
/// per-chunk pushdown strategies above only for overlapping chunks, and
/// merges the position lists (offset by each chunk's row_begin). Overlapping
/// chunks execute concurrently under `ctx`, each into its own slot; the
/// merge walks chunks in order, so positions stay sorted and every stats
/// counter matches the sequential path bit-for-bit regardless of thread
/// count. Always equals the whole-column reference.
///
/// This is a thin wrapper over a one-filter exec::Scan (exec/scan.h), which
/// owns the chunk loop; multi-column and filter+gather+aggregate queries
/// should use Scan directly.
Result<ChunkedSelectionResult> SelectCompressed(
    const ChunkedCompressedColumn& chunked, const RangePredicate& predicate,
    const ExecContext& ctx = {});

}  // namespace recomp::exec

#endif  // RECOMP_EXEC_SELECTION_H_
