#include "exec/join.h"

#include <algorithm>

#include "core/fused.h"
#include "core/pipeline.h"
#include "ops/pack.h"
#include "schemes/scheme_internal.h"
#include "util/bits.h"

namespace recomp::exec {

namespace {

using internal::DispatchUnsignedTypeId;

bool KeySetContains(const Column<uint64_t>& keys, uint64_t value) {
  return std::binary_search(keys.begin(), keys.end(), value);
}

/// Any key inside [lo, hi]?
bool KeySetIntersects(const Column<uint64_t>& keys, uint64_t lo, uint64_t hi) {
  auto it = std::lower_bound(keys.begin(), keys.end(), lo);
  return it != keys.end() && *it <= hi;
}

Result<AnyColumn> MaterializePart(const CompressedNode& node,
                                  const std::string& part) {
  auto it = node.parts.find(part);
  if (it == node.parts.end()) {
    return Status::Corruption("envelope lacks part '" + part + "'");
  }
  if (it->second.is_terminal()) return *it->second.column;
  return FusedDecompressNode(*it->second.sub);
}

Result<SemiJoinResult> JoinRuns(const CompressedNode& node,
                                const Column<uint64_t>& keys) {
  RECOMP_ASSIGN_OR_RETURN(AnyColumn values_any,
                          MaterializePart(node, "values"));
  RECOMP_ASSIGN_OR_RETURN(AnyColumn positions_any,
                          MaterializePart(node, "positions"));
  const Column<uint32_t>& positions = positions_any.As<uint32_t>();
  return DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<SemiJoinResult> {
        using T = typename decltype(tag)::type;
        const Column<T>& values = values_any.As<T>();
        SemiJoinResult result;
        result.strategy = Strategy::kRleRuns;
        result.probes = values.size();
        uint32_t begin = 0;
        for (uint64_t r = 0; r < values.size(); ++r) {
          const uint32_t end = positions[r];
          if (KeySetContains(keys, static_cast<uint64_t>(values[r]))) {
            for (uint32_t i = begin; i < end; ++i) {
              result.positions.push_back(i);
            }
          }
          begin = end;
        }
        return result;
      });
}

Result<SemiJoinResult> JoinDict(const CompressedNode& node,
                                const Column<uint64_t>& keys) {
  RECOMP_ASSIGN_OR_RETURN(AnyColumn dict_any,
                          MaterializePart(node, "dictionary"));
  RECOMP_ASSIGN_OR_RETURN(AnyColumn codes_any, MaterializePart(node, "codes"));
  const Column<uint32_t>& codes = codes_any.As<uint32_t>();
  return DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<SemiJoinResult> {
        using T = typename decltype(tag)::type;
        const Column<T>& dict = dict_any.As<T>();
        SemiJoinResult result;
        result.strategy = Strategy::kDictProbe;
        result.probes = dict.size();
        // One probe per dictionary entry, not per row.
        std::vector<bool> qualifies(dict.size());
        bool any = false;
        for (uint64_t d = 0; d < dict.size(); ++d) {
          qualifies[d] = KeySetContains(keys, static_cast<uint64_t>(dict[d]));
          any |= qualifies[d];
        }
        if (!any) return result;
        for (uint64_t i = 0; i < codes.size(); ++i) {
          if (codes[i] < qualifies.size() && qualifies[codes[i]]) {
            result.positions.push_back(static_cast<uint32_t>(i));
          }
        }
        return result;
      });
}

bool IsStepPrunable(const CompressedNode& node) {
  if (node.scheme.kind != SchemeKind::kModeled ||
      node.scheme.args.size() != 1 ||
      node.scheme.args[0].kind != SchemeKind::kStep) {
    return false;
  }
  auto refs = node.parts.find("refs");
  auto residual = node.parts.find("residual");
  if (refs == node.parts.end() || !refs->second.is_terminal() ||
      refs->second.column->is_packed() || residual == node.parts.end() ||
      residual->second.is_terminal() ||
      residual->second.sub->scheme.kind != SchemeKind::kNs) {
    return false;
  }
  auto packed = residual->second.sub->parts.find("packed");
  return packed != residual->second.sub->parts.end() &&
         packed->second.is_terminal() && packed->second.column->is_packed();
}

Result<SemiJoinResult> JoinStepPruned(const CompressedNode& node,
                                      const Column<uint64_t>& keys) {
  const PackedColumn& packed =
      node.parts.at("residual").sub->parts.at("packed").column->packed();
  const uint64_t ell = node.scheme.args[0].params.segment_length;
  const uint64_t mask = bits::LowMask64(packed.bit_width);
  return DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<SemiJoinResult> {
        using T = typename decltype(tag)::type;
        const Column<T>& refs = node.parts.at("refs").column->As<T>();
        SemiJoinResult result;
        result.strategy = Strategy::kStepPruned;
        Column<T> buffer(ell);
        for (uint64_t seg = 0; seg < refs.size(); ++seg) {
          const uint64_t begin = seg * ell;
          const uint64_t end = std::min<uint64_t>(begin + ell, node.n);
          const uint64_t lo = static_cast<uint64_t>(refs[seg]);
          const uint64_t hi = lo + std::min<uint64_t>(mask, ~uint64_t{0} - lo);
          if (!KeySetIntersects(keys, lo, hi)) continue;  // Segment skipped.
          RECOMP_RETURN_NOT_OK(
              ops::UnpackRange(packed, begin, end, buffer.data()));
          result.probes += end - begin;
          for (uint64_t i = begin; i < end; ++i) {
            const uint64_t v = lo + static_cast<uint64_t>(buffer[i - begin]);
            if (KeySetContains(keys, v)) {
              result.positions.push_back(static_cast<uint32_t>(i));
            }
          }
        }
        return result;
      });
}

Result<SemiJoinResult> JoinScan(const CompressedNode& node,
                                const Column<uint64_t>& keys) {
  RECOMP_ASSIGN_OR_RETURN(AnyColumn column, FusedDecompressNode(node));
  return DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<SemiJoinResult> {
        using T = typename decltype(tag)::type;
        const Column<T>& values = column.As<T>();
        SemiJoinResult result;
        result.strategy = Strategy::kDecompressScan;
        result.probes = values.size();
        for (uint64_t i = 0; i < values.size(); ++i) {
          if (KeySetContains(keys, static_cast<uint64_t>(values[i]))) {
            result.positions.push_back(static_cast<uint32_t>(i));
          }
        }
        return result;
      });
}

}  // namespace

Result<SemiJoinResult> SemiJoinCompressed(const CompressedColumn& compressed,
                                          const Column<uint64_t>& sorted_keys) {
  for (uint64_t i = 1; i < sorted_keys.size(); ++i) {
    if (sorted_keys[i] <= sorted_keys[i - 1]) {
      return Status::InvalidArgument(
          "semi-join keys must be sorted and deduplicated");
    }
  }
  const CompressedNode& node = compressed.root();
  if (node.n >= (uint64_t{1} << 32)) {
    return Status::OutOfRange("semi-join supports columns below 2^32 rows");
  }
  if (!TypeIdIsUnsigned(node.out_type)) {
    return Status::InvalidArgument("semi-join requires an unsigned column");
  }
  switch (node.scheme.kind) {
    case SchemeKind::kRpe:
      return JoinRuns(node, sorted_keys);
    case SchemeKind::kDict:
      return JoinDict(node, sorted_keys);
    case SchemeKind::kModeled:
      if (IsStepPrunable(node)) return JoinStepPruned(node, sorted_keys);
      return JoinScan(node, sorted_keys);
    default:
      return JoinScan(node, sorted_keys);
  }
}

}  // namespace recomp::exec
