#include "exec/point_access.h"

#include <algorithm>
#include <map>
#include <optional>

#include "core/fused.h"
#include "core/pipeline.h"
#include "exec/node_access.h"
#include "ops/pack.h"
#include "schemes/scheme_internal.h"

namespace recomp::exec {

namespace {

using internal::DispatchUnsignedTypeId;

/// Terminal plain part, or nullptr.
const AnyColumn* TerminalPart(const CompressedNode& node,
                              const std::string& name) {
  auto it = node.parts.find(name);
  if (it == node.parts.end() || !it->second.is_terminal()) return nullptr;
  return &*it->second.column;
}

/// Terminal packed part under an NS sub-node, or nullptr.
const PackedColumn* NsPackedPart(const CompressedNode& node,
                                 const std::string& name) {
  auto it = node.parts.find(name);
  if (it == node.parts.end() || it->second.is_terminal()) return nullptr;
  const CompressedNode& sub = *it->second.sub;
  if (sub.scheme.kind != SchemeKind::kNs) return nullptr;
  auto packed = sub.parts.find("packed");
  if (packed == sub.parts.end() || !packed->second.is_terminal() ||
      !packed->second.column->is_packed()) {
    return nullptr;
  }
  return &packed->second.column->packed();
}

template <typename T>
uint64_t PlainAt(const AnyColumn& column, uint64_t row) {
  return static_cast<uint64_t>(column.As<T>()[row]);
}

Result<PointResult> Fallback(const CompressedNode& node, uint64_t row) {
  RECOMP_ASSIGN_OR_RETURN(AnyColumn column, FusedDecompressNode(node));
  return DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<PointResult> {
        using T = typename decltype(tag)::type;
        PointResult result;
        result.strategy = Strategy::kDecompressScan;
        result.value = PlainAt<T>(column, row);
        return result;
      });
}

/// The O(1)/O(log runs) access path for `row`, or nullopt when the shape
/// has none (sequential dependencies, composed parts): the caller decides
/// whether to fall back per row (GetAt) or to decompress the whole chunk
/// once for a batch of rows (GetAtBatch).
Result<std::optional<PointResult>> TryDirectAt(const CompressedColumn& compressed,
                                               uint64_t row) {
  const CompressedNode& node = compressed.root();
  if (row >= node.n) {
    return Status::OutOfRange("point access past the end of the column");
  }
  if (!TypeIdIsUnsigned(node.out_type)) {
    return Status::InvalidArgument("point access requires an unsigned column");
  }
  return DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<std::optional<PointResult>> {
        using T = typename decltype(tag)::type;
        PointResult result;

        switch (node.scheme.kind) {
          case SchemeKind::kId: {
            // Plain terminal data (see PlainIdData): a direct array read.
            if (const AnyColumn* data = PlainIdData(node)) {
              result.strategy = Strategy::kPlainScan;
              result.value = PlainAt<T>(*data, row);
              return std::optional<PointResult>(result);
            }
            break;
          }

          case SchemeKind::kNs: {
            auto it = node.parts.find("packed");
            if (it != node.parts.end() && it->second.is_terminal() &&
                it->second.column->is_packed()) {
              result.strategy = Strategy::kNsDirect;
              result.value = static_cast<uint64_t>(
                  ops::UnpackOne<T>(it->second.column->packed(), row));
              return std::optional<PointResult>(result);
            }
            break;
          }

          case SchemeKind::kModeled: {
            // FOR shape: ref + one extracted residual value.
            if (node.scheme.args.size() == 1 &&
                node.scheme.args[0].kind == SchemeKind::kStep) {
              const AnyColumn* refs = TerminalPart(node, "refs");
              const PackedColumn* packed = NsPackedPart(node, "residual");
              const uint64_t ell = node.scheme.args[0].params.segment_length;
              if (refs != nullptr && packed != nullptr && ell != 0 &&
                  !refs->is_packed() && refs->type() == TypeIdOf<T>()) {
                result.strategy = Strategy::kForDirect;
                result.value = static_cast<uint64_t>(static_cast<T>(
                    refs->As<T>()[row / ell] + ops::UnpackOne<T>(*packed, row)));
                return std::optional<PointResult>(result);
              }
            }
            break;
          }

          case SchemeKind::kRpe: {
            const AnyColumn* values = TerminalPart(node, "values");
            const AnyColumn* positions = TerminalPart(node, "positions");
            if (values != nullptr && positions != nullptr &&
                !values->is_packed() && values->type() == TypeIdOf<T>() &&
                !positions->is_packed() &&
                positions->type() == TypeId::kUInt32) {
              // Inclusive end positions are sorted: the row's run is the
              // first position strictly greater than `row`.
              const Column<uint32_t>& pos = positions->As<uint32_t>();
              const uint64_t run =
                  std::upper_bound(pos.begin(), pos.end(),
                                   static_cast<uint32_t>(row)) -
                  pos.begin();
              result.strategy = Strategy::kRpeBinarySearch;
              result.value = PlainAt<T>(*values, run);
              return std::optional<PointResult>(result);
            }
            break;
          }

          case SchemeKind::kDict: {
            const AnyColumn* dictionary = TerminalPart(node, "dictionary");
            const AnyColumn* codes = TerminalPart(node, "codes");
            const PackedColumn* packed_codes = NsPackedPart(node, "codes");
            if (dictionary != nullptr && !dictionary->is_packed() &&
                dictionary->type() == TypeIdOf<T>()) {
              uint32_t code;
              if (codes != nullptr && !codes->is_packed() &&
                  codes->type() == TypeId::kUInt32) {
                code = codes->As<uint32_t>()[row];
              } else if (packed_codes != nullptr) {
                code = ops::UnpackOne<uint32_t>(*packed_codes, row);
              } else {
                break;
              }
              if (code >= dictionary->size()) {
                return Status::Corruption("DICT code exceeds dictionary");
              }
              result.strategy = Strategy::kDictProbe;
              result.value = PlainAt<T>(*dictionary, code);
              return std::optional<PointResult>(result);
            }
            break;
          }

          default:
            break;
        }
        return std::optional<PointResult>();
      });
}

}  // namespace

Result<PointResult> GetAt(const CompressedColumn& compressed, uint64_t row) {
  RECOMP_ASSIGN_OR_RETURN(std::optional<PointResult> direct,
                          TryDirectAt(compressed, row));
  if (direct.has_value()) return *direct;
  return Fallback(compressed.root(), row);
}

Result<PointResult> GetAt(const ChunkedCompressedColumn& chunked, uint64_t row,
                          const ExecContext& /*ctx*/) {
  // A single lookup touches exactly one chunk: nothing to fan out.
  if (row >= chunked.size()) {
    return Status::OutOfRange("point access past the end of the column");
  }
  const CompressedChunk& chunk = chunked.chunk(chunked.ChunkIndexOf(row));
  return GetAt(chunk.column, row - chunk.zone.row_begin);
}

Result<std::vector<PointResult>> GetAtBatch(
    const ChunkedCompressedColumn& chunked, const std::vector<uint64_t>& rows,
    const ExecContext& ctx, uint64_t* chunks_touched) {
  if (chunks_touched != nullptr) *chunks_touched = 0;
  // Validate up front so the reported error is the first failing row in
  // input order, as it was when this ran one GetAt per row.
  for (const uint64_t row : rows) {
    if (row >= chunked.size()) {
      return Status::OutOfRange("point access past the end of the column");
    }
  }

  // Group the requested rows by owning chunk — duplicates and arbitrary
  // order included — so shapes without a direct access path decompress each
  // touched chunk exactly once instead of once per requested row. Groups
  // are visited in ascending chunk order; input order within a group is
  // preserved, so results are deterministic for any thread count.
  std::map<uint64_t, std::vector<uint64_t>> by_chunk;  // chunk → input idxs.
  {
    // Rows usually arrive sorted (scan gathers) or clustered: remember the
    // current chunk's bounds so runs of rows in one chunk cost a bounds
    // check each, not a binary search plus a map lookup.
    std::vector<uint64_t>* group = nullptr;
    uint64_t group_begin = 0, group_end = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (group == nullptr || rows[i] < group_begin || rows[i] >= group_end) {
        const uint64_t c = chunked.ChunkIndexOf(rows[i]);
        const ZoneMap& zone = chunked.chunk(c).zone;
        group_begin = zone.row_begin;
        group_end = zone.row_begin + zone.row_count;
        group = &by_chunk[c];
      }
      group->push_back(i);
    }
  }
  std::vector<uint64_t> touched;                  // Ascending chunk ids.
  std::vector<std::vector<uint64_t>> groups;      // Input indices per chunk.
  touched.reserve(by_chunk.size());
  groups.reserve(by_chunk.size());
  for (auto& [chunk, indices] : by_chunk) {
    touched.push_back(chunk);
    groups.push_back(std::move(indices));
  }
  if (chunks_touched != nullptr) *chunks_touched = touched.size();

  std::vector<PointResult> results(rows.size());
  RECOMP_RETURN_NOT_OK(
      ParallelForOk(ctx, touched.size(), [&](uint64_t g) -> Status {
        const CompressedChunk& chunk = chunked.chunk(touched[g]);
        const std::vector<uint64_t>& indices = groups[g];
        const uint64_t base = chunk.zone.row_begin;

        // Probe the shape once: the direct path exists for every row of a
        // chunk or for none (it depends only on the envelope's shape).
        RECOMP_ASSIGN_OR_RETURN(
            std::optional<PointResult> first,
            TryDirectAt(chunk.column, rows[indices[0]] - base));
        if (first.has_value()) {
          results[indices[0]] = *first;
          for (size_t k = 1; k < indices.size(); ++k) {
            RECOMP_ASSIGN_OR_RETURN(
                std::optional<PointResult> direct,
                TryDirectAt(chunk.column, rows[indices[k]] - base));
            if (!direct.has_value()) {
              return Status::Corruption(
                  "direct point access vanished mid-chunk");
            }
            results[indices[k]] = *direct;
          }
          return Status::OK();
        }

        // No direct path: one decompress serves every requested row of the
        // chunk, each answered exactly as per-row GetAt's fallback would.
        RECOMP_ASSIGN_OR_RETURN(AnyColumn plain, FusedDecompress(chunk.column));
        return DispatchUnsignedTypeId(
            chunk.column.type(), [&](auto tag) -> Status {
              using T = typename decltype(tag)::type;
              for (const uint64_t i : indices) {
                results[i].strategy = Strategy::kDecompressScan;
                results[i].value = PlainAt<T>(plain, rows[i] - base);
              }
              return Status::OK();
            });
      }));
  return results;
}

}  // namespace recomp::exec
