#include "exec/selection.h"

#include <algorithm>

#include "core/fused.h"
#include "core/pipeline.h"
#include "exec/node_access.h"
#include "exec/scan.h"
#include "ops/pack.h"
#include "schemes/scheme_internal.h"
#include "util/bits.h"
#include "util/string_util.h"

namespace recomp::exec {

std::string ChunkedSelectionStats::ToString() const {
  std::string out = StringFormat(
      "chunks total=%llu pruned=%llu full=%llu executed=%llu "
      "values_decoded=%llu",
      static_cast<unsigned long long>(chunks_total),
      static_cast<unsigned long long>(chunks_pruned),
      static_cast<unsigned long long>(chunks_full),
      static_cast<unsigned long long>(chunks_executed),
      static_cast<unsigned long long>(values_decoded));
  bool any = false;
  for (int s = 0; s < kNumStrategies; ++s) {
    if (strategy_chunks[s] == 0) continue;
    out += StringFormat("%s%s=%llu", any ? " " : " [",
                        StrategyName(static_cast<Strategy>(s)),
                        static_cast<unsigned long long>(strategy_chunks[s]));
    any = true;
  }
  if (any) out += "]";
  return out;
}

namespace {

using internal::DispatchUnsignedTypeId;

/// Materializes a part column (terminal: copy; composed: decompress).
Result<AnyColumn> MaterializePart(const CompressedNode& node,
                                  const std::string& part) {
  auto it = node.parts.find(part);
  if (it == node.parts.end()) {
    return Status::Corruption("envelope lacks part '" + part + "'");
  }
  if (it->second.is_terminal()) return *it->second.column;
  return FusedDecompressNode(*it->second.sub);
}

template <typename T>
bool Overlaps(uint64_t seg_lo, uint64_t seg_hi, const RangePredicate& pred) {
  return seg_hi >= pred.lo && seg_lo <= pred.hi;
}

/// RPE / RLE: filter run values, expand qualifying runs.
Result<SelectionResult> SelectRuns(const CompressedNode& node,
                                   const RangePredicate& pred) {
  RECOMP_ASSIGN_OR_RETURN(AnyColumn values_any,
                          MaterializePart(node, "values"));
  RECOMP_ASSIGN_OR_RETURN(AnyColumn positions_any,
                          MaterializePart(node, "positions"));
  if (positions_any.is_packed() || positions_any.type() != TypeId::kUInt32) {
    return Status::Corruption("RPE positions must be uint32");
  }
  const Column<uint32_t>& positions = positions_any.As<uint32_t>();
  return DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<SelectionResult> {
        using T = typename decltype(tag)::type;
        const Column<T>& values = values_any.As<T>();
        SelectionResult result;
        result.stats.strategy = Strategy::kRleRuns;
        result.stats.runs_examined = values.size();
        uint32_t begin = 0;
        for (uint64_t r = 0; r < values.size(); ++r) {
          const uint32_t end = positions[r];
          const uint64_t v = static_cast<uint64_t>(values[r]);
          if (v >= pred.lo && v <= pred.hi) {
            for (uint32_t i = begin; i < end; ++i) {
              result.positions.push_back(i);
            }
          }
          begin = end;
        }
        return result;
      });
}

/// DICT: translate the value range into a code range (order-preserving
/// dictionary), then filter codes.
Result<SelectionResult> SelectDict(const CompressedNode& node,
                                   const RangePredicate& pred) {
  RECOMP_ASSIGN_OR_RETURN(AnyColumn dict_any,
                          MaterializePart(node, "dictionary"));
  RECOMP_ASSIGN_OR_RETURN(AnyColumn codes_any, MaterializePart(node, "codes"));
  if (codes_any.is_packed() || codes_any.type() != TypeId::kUInt32) {
    return Status::Corruption("DICT codes must be uint32");
  }
  const Column<uint32_t>& codes = codes_any.As<uint32_t>();
  return DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<SelectionResult> {
        using T = typename decltype(tag)::type;
        const Column<T>& dict = dict_any.As<T>();
        SelectionResult result;
        result.stats.strategy = Strategy::kDictCodes;
        result.stats.values_decoded = codes.size();
        // First code whose value >= lo; last code whose value <= hi.
        const uint64_t lo_code =
            std::lower_bound(dict.begin(), dict.end(),
                             static_cast<T>(std::min<uint64_t>(
                                 pred.lo, std::numeric_limits<T>::max()))) -
            dict.begin();
        const uint64_t hi_code =
            static_cast<uint64_t>(
                std::upper_bound(dict.begin(), dict.end(),
                                 static_cast<T>(std::min<uint64_t>(
                                     pred.hi, std::numeric_limits<T>::max()))) -
                dict.begin());
        if (pred.lo > static_cast<uint64_t>(std::numeric_limits<T>::max()) ||
            lo_code >= hi_code) {
          return result;  // Empty.
        }
        for (uint64_t i = 0; i < codes.size(); ++i) {
          if (codes[i] >= lo_code && codes[i] < hi_code) {
            result.positions.push_back(static_cast<uint32_t>(i));
          }
        }
        return result;
      });
}

/// MODELED(STEP) with an NS residual: prune whole segments by the model's
/// L∞ bound [ref, ref + (2^w - 1)] before touching any packed bits.
Result<SelectionResult> SelectStepPruned(const CompressedNode& node,
                                         const RangePredicate& pred) {
  const CompressedNode& residual_node = *node.parts.at("residual").sub;
  const PackedColumn& packed =
      residual_node.parts.at("packed").column->packed();
  const uint64_t ell = node.scheme.args[0].params.segment_length;
  const uint64_t mask = bits::LowMask64(packed.bit_width);
  return DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<SelectionResult> {
        using T = typename decltype(tag)::type;
        const Column<T>& refs = node.parts.at("refs").column->As<T>();
        SelectionResult result;
        result.stats.strategy = Strategy::kStepPruned;
        result.stats.segments_total = refs.size();
        Column<T> buffer(ell);
        for (uint64_t seg = 0; seg < refs.size(); ++seg) {
          const uint64_t begin = seg * ell;
          const uint64_t end = std::min<uint64_t>(begin + ell, node.n);
          const uint64_t seg_lo = static_cast<uint64_t>(refs[seg]);
          const uint64_t seg_hi =
              seg_lo + std::min<uint64_t>(mask, ~uint64_t{0} - seg_lo);
          if (seg_hi < pred.lo || seg_lo > pred.hi) {
            ++result.stats.segments_skipped;
            continue;
          }
          if (seg_lo >= pred.lo && seg_hi <= pred.hi) {
            ++result.stats.segments_full;
            for (uint64_t i = begin; i < end; ++i) {
              result.positions.push_back(static_cast<uint32_t>(i));
            }
            continue;
          }
          ++result.stats.segments_partial;
          result.stats.values_decoded += end - begin;
          RECOMP_RETURN_NOT_OK(
              ops::UnpackRange(packed, begin, end, buffer.data()));
          for (uint64_t i = begin; i < end; ++i) {
            const uint64_t v =
                seg_lo + static_cast<uint64_t>(buffer[i - begin]);
            if (v >= pred.lo && v <= pred.hi) {
              result.positions.push_back(static_cast<uint32_t>(i));
            }
          }
        }
        return result;
      });
}

/// Filters a plain column, tagging the result with how the values were
/// obtained: decompressed (fallback) or read in place (ID fast path).
Result<SelectionResult> ScanValues(const AnyColumn& data,
                                   const RangePredicate& pred,
                                   Strategy strategy) {
  return DispatchUnsignedTypeId(
      data.type(), [&](auto tag) -> Result<SelectionResult> {
        using T = typename decltype(tag)::type;
        const Column<T>& values = data.As<T>();
        SelectionResult result;
        result.stats.strategy = strategy;
        result.stats.values_decoded = values.size();
        for (uint64_t i = 0; i < values.size(); ++i) {
          const uint64_t v = static_cast<uint64_t>(values[i]);
          if (v >= pred.lo && v <= pred.hi) {
            result.positions.push_back(static_cast<uint32_t>(i));
          }
        }
        return result;
      });
}

/// Fallback: materialize everything and scan.
Result<SelectionResult> SelectScan(const CompressedNode& node,
                                   const RangePredicate& pred) {
  RECOMP_ASSIGN_OR_RETURN(AnyColumn column, FusedDecompressNode(node));
  return ScanValues(column, pred, Strategy::kDecompressScan);
}

bool IsStepPrunable(const CompressedNode& node) {
  if (node.scheme.kind != SchemeKind::kModeled ||
      node.scheme.args.size() != 1 ||
      node.scheme.args[0].kind != SchemeKind::kStep) {
    return false;
  }
  auto refs = node.parts.find("refs");
  if (refs == node.parts.end() || !refs->second.is_terminal() ||
      refs->second.column->is_packed()) {
    return false;
  }
  auto residual = node.parts.find("residual");
  if (residual == node.parts.end() || residual->second.is_terminal()) {
    return false;
  }
  const CompressedNode& sub = *residual->second.sub;
  if (sub.scheme.kind != SchemeKind::kNs) return false;
  auto packed = sub.parts.find("packed");
  return packed != sub.parts.end() && packed->second.is_terminal() &&
         packed->second.column->is_packed();
}

}  // namespace

Result<SelectionResult> SelectCompressed(const CompressedColumn& compressed,
                                         const RangePredicate& predicate) {
  const CompressedNode& node = compressed.root();
  if (node.n >= (uint64_t{1} << 32)) {
    return Status::OutOfRange("selections support columns below 2^32 rows");
  }
  if (!TypeIdIsUnsigned(node.out_type)) {
    return Status::InvalidArgument(
        "range selection over compressed data requires an unsigned column");
  }
  switch (node.scheme.kind) {
    case SchemeKind::kRpe:
      return SelectRuns(node, predicate);
    case SchemeKind::kDict:
      return SelectDict(node, predicate);
    case SchemeKind::kModeled:
      if (IsStepPrunable(node)) return SelectStepPruned(node, predicate);
      return SelectScan(node, predicate);
    case SchemeKind::kId:
      // Terminal plain data (the streaming store's uncompressed tail
      // chunks): scan in place, no decompress copy.
      if (const AnyColumn* data = PlainIdData(node)) {
        return ScanValues(*data, predicate, Strategy::kPlainScan);
      }
      return SelectScan(node, predicate);
    default:
      return SelectScan(node, predicate);
  }
}

Result<ChunkedSelectionResult> SelectCompressed(
    const ChunkedCompressedColumn& chunked, const RangePredicate& predicate,
    const ExecContext& ctx) {
  // A one-filter scan: the shared driver (exec/scan.cc) owns the chunk
  // loop — zone-map classification, parallel per-chunk execution, ordered
  // merge — and returns the same positions and counters this overload
  // historically produced.
  ScanSpec spec;
  spec.Filter(predicate);
  RECOMP_ASSIGN_OR_RETURN(ScanResult scan, Scan(chunked, spec, ctx));
  ChunkedSelectionResult result;
  result.positions = std::move(scan.positions);
  result.stats = std::move(scan.filters[0].stats);
  return result;
}

}  // namespace recomp::exec
