// Shared envelope-shape probes for the exec operators' fast paths.

#ifndef RECOMP_EXEC_NODE_ACCESS_H_
#define RECOMP_EXEC_NODE_ACCESS_H_

#include "core/compressed.h"

namespace recomp::exec {

/// The terminal plain column behind an ID envelope's "data" part — the
/// streaming store's uncompressed tail chunks — or nullptr when the part is
/// missing, composed, packed, of an unexpected type, or of the wrong length
/// (the length check IdScheme::Decompress would make; a deserialized buffer
/// can claim any n, and the fast path must not index past the real data).
/// Selection, aggregation, and point access all key their in-place kId fast
/// path on this one predicate so the three paths cannot drift apart; shapes
/// it rejects fall back to the decompress path, which validates or errors.
inline const AnyColumn* PlainIdData(const CompressedNode& node) {
  auto it = node.parts.find("data");
  if (it == node.parts.end() || !it->second.is_terminal() ||
      it->second.column->is_packed() ||
      it->second.column->type() != node.out_type ||
      it->second.column->size() != node.n) {
    return nullptr;
  }
  return &*it->second.column;
}

}  // namespace recomp::exec

#endif  // RECOMP_EXEC_NODE_ACCESS_H_
