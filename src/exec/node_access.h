// Shared envelope-shape probes for the exec operators' fast paths.

#ifndef RECOMP_EXEC_NODE_ACCESS_H_
#define RECOMP_EXEC_NODE_ACCESS_H_

#include "core/compressed.h"

namespace recomp::exec {

/// The terminal plain column behind an ID envelope's "data" part — the
/// streaming store's uncompressed tail chunks — or nullptr when the shape
/// does not qualify. Selection, aggregation, and point access all key their
/// in-place kId fast path on this one predicate so the three paths cannot
/// drift apart; shapes it rejects fall back to the decompress path, which
/// validates or errors. The predicate itself lives in core
/// (StoredPlainData) because the store's recompressor keys its stored-plain
/// candidate detection on exactly the same shape.
///
/// Reading `*PlainIdData(...)` in place is safe while the store recompresses
/// concurrently: chunks are immutable once built, and recompression swaps
/// the *slot pointer* (a fresh CompressedChunk object) rather than mutating
/// the chunk a snapshot pinned — the pointer returned here stays valid for
/// the life of the snapshot that produced the node.
inline const AnyColumn* PlainIdData(const CompressedNode& node) {
  return StoredPlainData(node);
}

}  // namespace recomp::exec

#endif  // RECOMP_EXEC_NODE_ACCESS_H_
