#include "exec/aggregate.h"

#include <algorithm>
#include <utility>

#include "core/fused.h"
#include "core/pipeline.h"
#include "exec/node_access.h"
#include "exec/scan.h"
#include "ops/pack.h"
#include "schemes/scheme_internal.h"
#include "util/bits.h"

namespace recomp::exec {

namespace {

using internal::DispatchUnsignedTypeId;

Result<AnyColumn> MaterializePart(const CompressedNode& node,
                                  const std::string& part) {
  auto it = node.parts.find(part);
  if (it == node.parts.end()) {
    return Status::Corruption("envelope lacks part '" + part + "'");
  }
  if (it->second.is_terminal()) return *it->second.column;
  return FusedDecompressNode(*it->second.sub);
}

bool IsStepWithPackedResidual(const CompressedNode& node) {
  if (node.scheme.kind != SchemeKind::kModeled ||
      node.scheme.args.size() != 1 ||
      node.scheme.args[0].kind != SchemeKind::kStep) {
    return false;
  }
  auto refs = node.parts.find("refs");
  auto residual = node.parts.find("residual");
  if (refs == node.parts.end() || !refs->second.is_terminal() ||
      refs->second.column->is_packed() || residual == node.parts.end() ||
      residual->second.is_terminal()) {
    return false;
  }
  const CompressedNode& sub = *residual->second.sub;
  auto packed = sub.parts.find("packed");
  return sub.scheme.kind == SchemeKind::kNs && packed != sub.parts.end() &&
         packed->second.is_terminal() && packed->second.column->is_packed();
}

enum class Kind { kSum, kMin, kMax };

/// Folds a plain column, tagging the result with how the values were
/// obtained: decompressed (fallback) or read in place (ID fast path).
Result<AggregateResult> AggregateValues(const AnyColumn& data, Kind kind,
                                        Strategy strategy) {
  return DispatchUnsignedTypeId(
      data.type(), [&](auto tag) -> Result<AggregateResult> {
        using T = typename decltype(tag)::type;
        const Column<T>& values = data.As<T>();
        if (kind != Kind::kSum && values.empty()) {
          return Status::InvalidArgument("min/max of an empty column");
        }
        AggregateResult result;
        result.strategy = strategy;
        if (kind == Kind::kSum) {
          uint64_t acc = 0;
          for (const T v : values) acc += static_cast<uint64_t>(v);
          result.value = acc;
        } else if (kind == Kind::kMin) {
          result.value = static_cast<uint64_t>(
              *std::min_element(values.begin(), values.end()));
        } else {
          result.value = static_cast<uint64_t>(
              *std::max_element(values.begin(), values.end()));
        }
        return result;
      });
}

Result<AggregateResult> ScanFallback(const CompressedNode& node, Kind kind) {
  RECOMP_ASSIGN_OR_RETURN(AnyColumn column, FusedDecompressNode(node));
  return AggregateValues(column, kind, Strategy::kDecompressScan);
}

Result<AggregateResult> AggregateRuns(const CompressedNode& node, Kind kind) {
  RECOMP_ASSIGN_OR_RETURN(AnyColumn values_any,
                          MaterializePart(node, "values"));
  RECOMP_ASSIGN_OR_RETURN(AnyColumn positions_any,
                          MaterializePart(node, "positions"));
  const Column<uint32_t>& positions = positions_any.As<uint32_t>();
  return DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<AggregateResult> {
        using T = typename decltype(tag)::type;
        const Column<T>& values = values_any.As<T>();
        if (kind != Kind::kSum && values.empty()) {
          return Status::InvalidArgument("min/max of an empty column");
        }
        AggregateResult result;
        result.strategy = Strategy::kRleDot;
        if (kind == Kind::kSum) {
          uint64_t acc = 0;
          uint32_t begin = 0;
          for (uint64_t r = 0; r < values.size(); ++r) {
            acc += static_cast<uint64_t>(values[r]) *
                   static_cast<uint64_t>(positions[r] - begin);
            begin = positions[r];
          }
          result.value = acc;
        } else if (kind == Kind::kMin) {
          result.value = static_cast<uint64_t>(
              *std::min_element(values.begin(), values.end()));
        } else {
          result.value = static_cast<uint64_t>(
              *std::max_element(values.begin(), values.end()));
        }
        return result;
      });
}

Result<AggregateResult> AggregateStep(const CompressedNode& node, Kind kind) {
  const CompressedNode& residual_node = *node.parts.at("residual").sub;
  const PackedColumn& packed =
      residual_node.parts.at("packed").column->packed();
  const uint64_t ell = node.scheme.args[0].params.segment_length;
  return DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<AggregateResult> {
        using T = typename decltype(tag)::type;
        const Column<T>& refs = node.parts.at("refs").column->As<T>();
        if (kind != Kind::kSum && node.n == 0) {
          return Status::InvalidArgument("min/max of an empty column");
        }
        AggregateResult result;
        result.strategy = Strategy::kStepMass;
        RECOMP_ASSIGN_OR_RETURN(Column<T> residuals, ops::Unpack<T>(packed));
        if (kind == Kind::kSum) {
          uint64_t acc = 0;
          for (uint64_t seg = 0; seg < refs.size(); ++seg) {
            const uint64_t begin = seg * ell;
            const uint64_t end = std::min<uint64_t>(begin + ell, node.n);
            acc += static_cast<uint64_t>(refs[seg]) * (end - begin);
          }
          for (const T r : residuals) acc += static_cast<uint64_t>(r);
          result.value = acc;
        } else {
          uint64_t best = kind == Kind::kMin ? ~uint64_t{0} : 0;
          for (uint64_t seg = 0; seg < refs.size(); ++seg) {
            const uint64_t begin = seg * ell;
            const uint64_t end = std::min<uint64_t>(begin + ell, node.n);
            for (uint64_t i = begin; i < end; ++i) {
              const uint64_t v = static_cast<uint64_t>(refs[seg]) +
                                 static_cast<uint64_t>(residuals[i]);
              best = kind == Kind::kMin ? std::min(best, v)
                                        : std::max(best, v);
            }
          }
          result.value = best;
        }
        return result;
      });
}

Result<AggregateResult> AggregateDict(const CompressedNode& node, Kind kind) {
  RECOMP_ASSIGN_OR_RETURN(AnyColumn dict_any,
                          MaterializePart(node, "dictionary"));
  RECOMP_ASSIGN_OR_RETURN(AnyColumn codes_any, MaterializePart(node, "codes"));
  const Column<uint32_t>& codes = codes_any.As<uint32_t>();
  return DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<AggregateResult> {
        using T = typename decltype(tag)::type;
        const Column<T>& dict = dict_any.As<T>();
        if (kind != Kind::kSum && codes.empty()) {
          return Status::InvalidArgument("min/max of an empty column");
        }
        AggregateResult result;
        result.strategy = Strategy::kDictExtrema;
        if (kind == Kind::kSum) {
          uint64_t acc = 0;
          for (const uint32_t c : codes) {
            if (c >= dict.size()) {
              return Status::Corruption("DICT code exceeds dictionary");
            }
            acc += static_cast<uint64_t>(dict[c]);
          }
          result.value = acc;
          result.strategy = Strategy::kDictSum;
        } else {
          // The dictionary is sorted: extrema of codes give extrema of
          // values without touching the dictionary per row.
          const uint32_t code =
              kind == Kind::kMin
                  ? *std::min_element(codes.begin(), codes.end())
                  : *std::max_element(codes.begin(), codes.end());
          if (code >= dict.size()) {
            return Status::Corruption("DICT code exceeds dictionary");
          }
          result.value = static_cast<uint64_t>(dict[code]);
        }
        return result;
      });
}

Result<AggregateResult> AggregateCompressed(const CompressedColumn& compressed,
                                            Kind kind) {
  const CompressedNode& node = compressed.root();
  if (!TypeIdIsUnsigned(node.out_type)) {
    return Status::InvalidArgument(
        "compressed aggregation requires an unsigned column");
  }
  switch (node.scheme.kind) {
    case SchemeKind::kRpe:
      return AggregateRuns(node, kind);
    case SchemeKind::kDict:
      return AggregateDict(node, kind);
    case SchemeKind::kModeled:
      if (IsStepWithPackedResidual(node)) return AggregateStep(node, kind);
      return ScanFallback(node, kind);
    case SchemeKind::kId:
      // Terminal plain data (the streaming store's uncompressed tail
      // chunks): aggregate in place, no decompress copy.
      if (const AnyColumn* data = PlainIdData(node)) {
        return AggregateValues(*data, kind, Strategy::kPlainScan);
      }
      return ScanFallback(node, kind);
    default:
      return ScanFallback(node, kind);
  }
}

}  // namespace

Result<AggregateResult> SumCompressed(const CompressedColumn& compressed) {
  return AggregateCompressed(compressed, Kind::kSum);
}

Result<AggregateResult> MinCompressed(const CompressedColumn& compressed) {
  return AggregateCompressed(compressed, Kind::kMin);
}

Result<AggregateResult> MaxCompressed(const CompressedColumn& compressed) {
  return AggregateCompressed(compressed, Kind::kMax);
}

namespace {

// The chunked overloads are one-aggregate scans: the shared driver
// (exec/scan.cc) owns the chunk loop — zone-map answers, parallel per-chunk
// pushdown, ordered fold — and returns the same value and counters these
// overloads historically produced.
Result<ChunkedAggregateResult> AggregateChunked(
    const ChunkedCompressedColumn& chunked, AggregateOp op,
    const ExecContext& ctx) {
  ScanSpec spec;
  spec.Aggregate(op);
  RECOMP_ASSIGN_OR_RETURN(ScanResult scan, Scan(chunked, spec, ctx));
  return std::move(scan.aggregates[0].agg);
}

}  // namespace

Result<ChunkedAggregateResult> SumCompressed(
    const ChunkedCompressedColumn& chunked, const ExecContext& ctx) {
  return AggregateChunked(chunked, AggregateOp::kSum, ctx);
}

Result<ChunkedAggregateResult> MinCompressed(
    const ChunkedCompressedColumn& chunked, const ExecContext& ctx) {
  return AggregateChunked(chunked, AggregateOp::kMin, ctx);
}

Result<ChunkedAggregateResult> MaxCompressed(
    const ChunkedCompressedColumn& chunked, const ExecContext& ctx) {
  return AggregateChunked(chunked, AggregateOp::kMax, ctx);
}

}  // namespace recomp::exec
