// Aggregates evaluated directly on compressed columns.
//
// SUM over RLE is lengths · values; SUM over FOR is Σ ref·|segment| plus the
// residual mass; MIN/MAX over DICT are dictionary lookups of code extrema.
// Each pushdown is validated against decompress-then-aggregate.

#ifndef RECOMP_EXEC_AGGREGATE_H_
#define RECOMP_EXEC_AGGREGATE_H_

#include "core/chunked.h"
#include "core/compressed.h"
#include "exec/strategy.h"
#include "util/result.h"

namespace recomp::exec {

/// An aggregate value plus how it was computed.
struct AggregateResult {
  uint64_t value = 0;  ///< Sum (mod 2^64) or min/max as uint64.
  Strategy strategy = Strategy::kDecompressScan;
};

/// Σ column, wrapping mod 2^64. Empty columns sum to 0.
Result<AggregateResult> SumCompressed(const CompressedColumn& compressed);

/// Minimum value; fails on empty columns.
Result<AggregateResult> MinCompressed(const CompressedColumn& compressed);

/// Maximum value; fails on empty columns.
Result<AggregateResult> MaxCompressed(const CompressedColumn& compressed);

/// An aggregate over a chunked column plus chunk-level execution counts.
struct ChunkedAggregateResult {
  uint64_t value = 0;            ///< Sum (mod 2^64) or min/max as uint64.
  uint64_t chunks_total = 0;
  uint64_t chunks_pruned = 0;    ///< Answered from the zone map alone.
  uint64_t chunks_executed = 0;  ///< Dispatched to a per-chunk strategy.
  /// Executed chunks served per strategy, indexed by Strategy; zone-map
  /// answers count under kZoneMapOnly.
  uint64_t strategy_chunks[kNumStrategies] = {};
};

/// Chunked Σ: per-chunk pushdown sums merged mod 2^64. Empty columns sum
/// to 0. Chunks execute concurrently under `ctx`, each into its own slot;
/// partials fold in chunk order, so the value and every counter match the
/// sequential path bit-for-bit regardless of thread count. (A thin wrapper
/// over a one-aggregate exec::Scan — see exec/scan.h — as are Min/Max.)
Result<ChunkedAggregateResult> SumCompressed(
    const ChunkedCompressedColumn& chunked, const ExecContext& ctx = {});

/// Chunked minimum: chunks with zone maps are answered without touching
/// their payloads; the rest dispatch per-chunk (concurrently under `ctx`).
/// Fails on empty columns.
Result<ChunkedAggregateResult> MinCompressed(
    const ChunkedCompressedColumn& chunked, const ExecContext& ctx = {});

/// Chunked maximum; see MinCompressed.
Result<ChunkedAggregateResult> MaxCompressed(
    const ChunkedCompressedColumn& chunked, const ExecContext& ctx = {});

}  // namespace recomp::exec

#endif  // RECOMP_EXEC_AGGREGATE_H_
