// Aggregates evaluated directly on compressed columns.
//
// SUM over RLE is lengths · values; SUM over FOR is Σ ref·|segment| plus the
// residual mass; MIN/MAX over DICT are dictionary lookups of code extrema.
// Each pushdown is validated against decompress-then-aggregate.

#ifndef RECOMP_EXEC_AGGREGATE_H_
#define RECOMP_EXEC_AGGREGATE_H_

#include <string>

#include "core/compressed.h"
#include "util/result.h"

namespace recomp::exec {

/// An aggregate value plus how it was computed.
struct AggregateResult {
  uint64_t value = 0;     ///< Sum (mod 2^64) or min/max as uint64.
  std::string strategy;   ///< "rle-dot", "step-mass", "dict-extrema",
                          ///< "decompress-scan".
};

/// Σ column, wrapping mod 2^64. Empty columns sum to 0.
Result<AggregateResult> SumCompressed(const CompressedColumn& compressed);

/// Minimum value; fails on empty columns.
Result<AggregateResult> MinCompressed(const CompressedColumn& compressed);

/// Maximum value; fails on empty columns.
Result<AggregateResult> MaxCompressed(const CompressedColumn& compressed);

}  // namespace recomp::exec

#endif  // RECOMP_EXEC_AGGREGATE_H_
