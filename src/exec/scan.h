// The composable scan: one API for filter → gather → aggregate over
// compressed columns and row-aligned table snapshots.
//
// The paper's "no clear distinction between decompression and query
// execution" stops at single operators unless the operators compose: a real
// query filters on one column, gathers a second, and aggregates a third,
// all over one consistent snapshot. ScanSpec describes that pipeline
// declaratively; exec::Scan executes it chunk-parallel, intersecting
// zone-map pruning across every filter column (a chunk any predicate
// prunes is never touched for *any* column), evaluating surviving
// predicates with the same per-chunk pushdown strategies the free
// functions use (including the kPlainScan ID fast path over live tails),
// intersecting selection vectors, and only then late-materializing the
// projected columns via batch point access — the filter-then-materialize
// pattern of "Revisiting Data Compression in Column-Stores" (PAPERS.md).
//
// The per-operator free functions (SelectCompressed, Sum/Min/MaxCompressed,
// GetAtBatch) remain as thin wrappers over one-filter / one-aggregate specs
// and return bit-identical results; new code should prefer Scan.

#ifndef RECOMP_EXEC_SCAN_H_
#define RECOMP_EXEC_SCAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/chunked.h"
#include "exec/aggregate.h"
#include "exec/point_access.h"
#include "exec/selection.h"
#include "exec/strategy.h"
#include "util/result.h"

namespace recomp::store {
// Forward declaration (store/table.h): keeps the exec headers — which the
// rest of the exec layer includes — from depending on the store subsystem;
// only scan.cc and callers scanning snapshots need the full definition.
class TableSnapshot;
}  // namespace recomp::store

namespace recomp::exec {

/// The aggregate folds a scan can apply to a column.
enum class AggregateOp : int { kSum = 0, kMin, kMax, kCount };

/// Stable display name: "sum", "min", "max", "count".
const char* AggregateOpName(AggregateOp op);

/// A declarative scan over one column or a row-aligned snapshot: up to N
/// conjunctive range filters, a projection list, aggregate folds, and a row
/// limit. Built fluently:
///
///   ScanSpec spec;
///   spec.Filter("date", {lo, hi})
///       .Filter("amount", {0, 999})
///       .Project({"customer"})
///       .Aggregate("amount", AggregateOp::kSum)
///       .Limit(1000);
///
/// The single-column Scan overload addresses its column with the empty
/// name; the nameless Filter/Project/Aggregate overloads spell that.
class ScanSpec {
 public:
  /// No limit: every matching row is returned.
  static constexpr uint64_t kNoLimit = ~uint64_t{0};

  struct FilterSpec {
    std::string column;
    RangePredicate predicate;
  };
  struct AggregateSpec {
    std::string column;
    AggregateOp op = AggregateOp::kSum;
  };

  /// Adds a conjunctive predicate on `column`: a row qualifies only if every
  /// filter accepts it. Filters evaluate in insertion order.
  ScanSpec& Filter(std::string column, RangePredicate predicate) {
    filters_.push_back({std::move(column), predicate});
    return *this;
  }
  ScanSpec& Filter(RangePredicate predicate) {
    return Filter(std::string(), predicate);
  }

  /// Requests the values of `columns` at the selected rows, late-
  /// materialized after all filters ran. Appends to any earlier projection.
  ScanSpec& Project(const std::vector<std::string>& columns) {
    projections_.insert(projections_.end(), columns.begin(), columns.end());
    return *this;
  }
  ScanSpec& Project() { return Project({std::string()}); }

  /// Requests `op` folded over `column` at the selected rows.
  ScanSpec& Aggregate(std::string column, AggregateOp op) {
    aggregates_.push_back({std::move(column), op});
    return *this;
  }
  ScanSpec& Aggregate(AggregateOp op) { return Aggregate(std::string(), op); }

  /// Caps the scan at the first `max_rows` matching rows (in row order).
  /// Projections and aggregates see only those rows. The cap bounds result
  /// size and materialization work; filter evaluation still runs per chunk.
  ScanSpec& Limit(uint64_t max_rows) {
    limit_ = max_rows;
    return *this;
  }

  const std::vector<FilterSpec>& filters() const { return filters_; }
  const std::vector<std::string>& projections() const { return projections_; }
  const std::vector<AggregateSpec>& aggregates() const { return aggregates_; }
  uint64_t limit() const { return limit_; }

 private:
  std::vector<FilterSpec> filters_;
  std::vector<std::string> projections_;
  std::vector<AggregateSpec> aggregates_;
  uint64_t limit_ = kNoLimit;
};

/// How one filter column executed: the same counters the standalone chunked
/// selection reports (zone-map pruning, per-strategy chunk counts, per-chunk
/// stats), each chunk counted at most once. Under a multi-filter spec the
/// counters reflect the intersected pruning: a chunk counts as pruned only
/// for the filters whose zone maps were disjoint, and a chunk whose rows
/// were all pruned away by *other* filters' zone maps records nothing here
/// (its payload was never touched).
struct ScanFilterStats {
  std::string column;
  ChunkedSelectionStats stats;
};

/// How a gather (late materialization) executed: per-row access-path counts
/// and the number of distinct chunks touched. Each touched chunk is
/// decompressed at most once regardless of how many rows land in it.
struct GatherStats {
  uint64_t rows = 0;
  uint64_t chunks_touched = 0;
  /// Rows served per point-access path, indexed by Strategy.
  uint64_t strategy_rows[kNumStrategies] = {};

  /// One-line human-readable rendering, e.g.
  /// "rows=1000 chunks_touched=3 [ns-direct=800 decompress-scan=200]"
  /// (strategies that served zero rows are omitted).
  std::string ToString() const;
};

/// One late-materialization pass over a column: the selected rows' values
/// (plus the access path each row was served by) and the gather counters.
struct GatherResult {
  std::vector<PointResult> points;
  GatherStats stats;
};

/// The per-chunk execution surface of a scan, factored out of the driver so
/// a batch executor can substitute shared decoded buffers for the default
/// per-chunk pushdown strategies (service/shared_scan.h): the driver owns
/// planning (zone-map intersection, range refinement), selection stitching,
/// limits, aggregates, and metrics; the pipeline owns how one (column,
/// chunk) pair is filtered and how one column's rows are materialized.
///
/// Contract: any implementation must return the same positions and values
/// the default produces (SelectCompressed / GetAtBatch) — only the stats
/// describing *how* the work ran may differ. Implementations must be safe
/// to call concurrently from pool workers when the same pipeline serves
/// several scans at once.
class ChunkPipeline {
 public:
  virtual ~ChunkPipeline() = default;

  /// Evaluates `predicate` over chunk `chunk` of column `column`, returning
  /// chunk-local sorted positions. Called only for chunks the zone maps
  /// could neither prune nor contain, each needed pair exactly once.
  virtual Result<SelectionResult> SelectChunk(
      uint64_t column, uint64_t chunk, const RangePredicate& predicate) = 0;

  /// Gathers the values of `column` at the global `rows` (ascending), in
  /// input order.
  virtual Result<GatherResult> GatherRows(uint64_t column,
                                          const std::vector<uint64_t>& rows,
                                          const ExecContext& ctx) = 0;
};

/// One projected column: the selected rows' values in row order, in the
/// column's native type.
struct ScanProjection {
  std::string column;
  AnyColumn values;
  GatherStats gather;
};

/// One aggregate output. `agg.value` is the fold; `rows` is how many rows
/// were folded. Without filters (and without an effective limit) the fold
/// pushes down into the compressed chunks and `agg`'s chunk counters match
/// the standalone chunked aggregate bit for bit; with filters the fold runs
/// over gathered values and `gather` reports the access paths instead.
struct ScanAggregate {
  std::string column;
  AggregateOp op = AggregateOp::kSum;
  uint64_t rows = 0;
  ChunkedAggregateResult agg;
  GatherStats gather;

  uint64_t value() const { return agg.value; }
};

/// The outputs of one executed scan.
struct ScanResult {
  /// Rows in the scanned snapshot/column.
  uint64_t rows_scanned = 0;
  /// Rows passing every filter, before the limit. Equals rows_scanned when
  /// the spec has no filters.
  uint64_t rows_matched = 0;
  /// The matching global row ids in row order, truncated to the limit.
  /// Populated only when the spec has filters; a filterless scan selects
  /// every row implicitly and leaves this empty.
  Column<uint32_t> positions;
  /// Per-filter execution stats, in spec order.
  std::vector<ScanFilterStats> filters;
  /// Projected columns, in spec order.
  std::vector<ScanProjection> projections;
  /// Aggregates, in spec order.
  std::vector<ScanAggregate> aggregates;
};

/// Executes `spec` over a row-aligned table snapshot. Filter, projection,
/// and aggregate columns are looked up by name (KeyError on unknown names).
/// Execution is chunk-parallel under `ctx` over row ranges refined from the
/// filter columns' chunk boundaries; per range, zone-map pruning intersects
/// across all filter columns before any payload is touched, surviving
/// predicates run the per-chunk pushdown strategies, and selection vectors
/// intersect in spec order with short-circuiting. Results — positions,
/// values, aggregates, and every stats counter — are bit-identical for any
/// thread count.
Result<ScanResult> Scan(const store::TableSnapshot& snapshot,
                        const ScanSpec& spec, const ExecContext& ctx = {});

/// Single-column convenience: the same execution over one chunked column,
/// addressed by the empty name ("" — the nameless ScanSpec overloads).
Result<ScanResult> Scan(const ChunkedCompressedColumn& column,
                        const ScanSpec& spec, const ExecContext& ctx = {});

/// The factored entry point: the same driver Scan runs, with the per-chunk
/// work routed through `pipeline` instead of the default pushdown
/// strategies. The pipeline must be built over this snapshot's columns (in
/// snapshot column order). Outputs equal Scan's for any conforming pipeline
/// (ScanOutputsEqual); stats may describe a different execution path.
Result<ScanResult> ScanWithPipeline(const store::TableSnapshot& snapshot,
                                    const ScanSpec& spec,
                                    const ExecContext& ctx,
                                    ChunkPipeline& pipeline);

/// True iff two scan results carry the same *outputs*: scanned/matched row
/// counts, positions, projected values, and aggregate values. Execution
/// stats (strategy counters, chunks pruned/decoded, gather paths) are
/// deliberately excluded — a batched scan served from a shared decoded
/// buffer reports different stats than a solo pushdown scan while being
/// required to produce identical outputs. This is the equality the service
/// tests and bench_e18 assert.
bool ScanOutputsEqual(const ScanResult& a, const ScanResult& b);

/// The canonical identity of a spec's *outputs*: two specs with the same
/// key produce ScanOutputsEqual results against the same snapshot. Filters
/// are order-normalized (a conjunction commutes; the driver intersects, so
/// filter order never changes positions, projections, or aggregates) while
/// projections, aggregates, and the limit keep their order — each is part
/// of the output shape. Column names are length-prefixed so no name can
/// collide with the key's own delimiters. This is the result cache's key
/// (service/result_cache.h).
std::string CanonicalSpecKey(const ScanSpec& spec);

/// FNV-1a of CanonicalSpecKey — a compact spec fingerprint for logs and
/// metrics labels; the cache itself keys on the full canonical string (a
/// 64-bit hash alone could alias two specs).
uint64_t CanonicalSpecHash(const ScanSpec& spec);

}  // namespace recomp::exec

#endif  // RECOMP_EXEC_SCAN_H_
