#include "exec/approx.h"

#include <algorithm>

#include "ops/pack.h"
#include "schemes/scheme_internal.h"
#include "util/bits.h"

namespace recomp::exec {

namespace {

struct StepView {
  const CompressedNode* node = nullptr;
  const PackedColumn* packed = nullptr;
  uint64_t ell = 0;
};

Result<StepView> ViewStep(const CompressedColumn& compressed) {
  const CompressedNode& node = compressed.root();
  if (node.scheme.kind != SchemeKind::kModeled ||
      node.scheme.args.size() != 1 ||
      node.scheme.args[0].kind != SchemeKind::kStep) {
    return Status::InvalidArgument(
        "approximate answering requires a MODELED(STEP) envelope");
  }
  auto refs = node.parts.find("refs");
  auto residual = node.parts.find("residual");
  if (refs == node.parts.end() || !refs->second.is_terminal() ||
      residual == node.parts.end() || residual->second.is_terminal() ||
      residual->second.sub->scheme.kind != SchemeKind::kNs) {
    return Status::InvalidArgument(
        "approximate answering requires refs + NS residual parts");
  }
  auto packed = residual->second.sub->parts.find("packed");
  if (packed == residual->second.sub->parts.end() ||
      !packed->second.is_terminal() || !packed->second.column->is_packed()) {
    return Status::InvalidArgument("NS residual lacks its packed part");
  }
  StepView view;
  view.node = &node;
  view.packed = &packed->second.column->packed();
  view.ell = node.scheme.args[0].params.segment_length;
  if (view.ell == 0) return Status::Corruption("model lacks segment length");
  return view;
}

}  // namespace

Result<ApproxSum> RefineSum(const CompressedColumn& compressed,
                            uint64_t refined_segments) {
  RECOMP_ASSIGN_OR_RETURN(StepView view, ViewStep(compressed));
  const uint64_t mask = bits::LowMask64(view.packed->bit_width);
  return internal::DispatchUnsignedTypeId(
      view.node->out_type, [&](auto tag) -> Result<ApproxSum> {
        using T = typename decltype(tag)::type;
        const Column<T>& refs = view.node->parts.at("refs").column->As<T>();
        ApproxSum result;
        result.total_segments = refs.size();
        result.refined_segments = std::min(refined_segments, refs.size());

        uint64_t lower = 0;
        uint64_t upper = 0;
        Column<T> buffer(view.ell);
        for (uint64_t seg = 0; seg < refs.size(); ++seg) {
          const uint64_t begin = seg * view.ell;
          const uint64_t end =
              std::min<uint64_t>(begin + view.ell, view.node->n);
          const uint64_t len = end - begin;
          const uint64_t base = static_cast<uint64_t>(refs[seg]) * len;
          if (seg < result.refined_segments) {
            RECOMP_RETURN_NOT_OK(
                ops::UnpackRange(*view.packed, begin, end, buffer.data()));
            uint64_t residual_mass = 0;
            for (uint64_t i = 0; i < len; ++i) {
              residual_mass += static_cast<uint64_t>(buffer[i]);
            }
            lower += base + residual_mass;
            upper += base + residual_mass;
          } else {
            lower += base;
            upper += base + mask * len;
          }
        }
        result.lower = lower;
        result.upper = upper;
        return result;
      });
}

Result<ApproxSum> ApproximateSum(const CompressedColumn& compressed) {
  return RefineSum(compressed, 0);
}

}  // namespace recomp::exec
