#include "exec/scan.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <unordered_map>
#include <utility>

#include "exec/point_access.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "schemes/scheme_internal.h"
#include "store/table.h"
#include "util/string_util.h"

namespace recomp::exec {

std::string GatherStats::ToString() const {
  std::string out =
      StringFormat("rows=%llu chunks_touched=%llu",
                   static_cast<unsigned long long>(rows),
                   static_cast<unsigned long long>(chunks_touched));
  bool any = false;
  for (int s = 0; s < kNumStrategies; ++s) {
    if (strategy_rows[s] == 0) continue;
    out += StringFormat("%s%s=%llu", any ? " " : " [",
                        StrategyName(static_cast<Strategy>(s)),
                        static_cast<unsigned long long>(strategy_rows[s]));
    any = true;
  }
  if (any) out += "]";
  return out;
}

const char* AggregateOpName(AggregateOp op) {
  switch (op) {
    case AggregateOp::kSum:
      return "sum";
    case AggregateOp::kMin:
      return "min";
    case AggregateOp::kMax:
      return "max";
    case AggregateOp::kCount:
      return "count";
  }
  return "unknown";
}

namespace {

using internal::DispatchUnsignedTypeId;

/// Resolves spec column names to indices into the bound column list.
using Lookup = std::function<Result<uint64_t>(const std::string&)>;

struct ResolvedFilter {
  uint64_t column = 0;
  RangePredicate predicate;
};

/// What one filter's zone map decided for one chunk of its column.
enum class ChunkAction : uint8_t {
  kNotReached,  ///< Empty, or every owning range was pruned by other filters.
  kPruned,      ///< Zone map disjoint from the predicate: never touched.
  kFull,        ///< Zone map contained in the predicate: no decode.
  kExecute,     ///< Needs the per-chunk pushdown strategy, exactly once.
};

/// Scan metrics, resolved once. Per-strategy counters are split by unit:
/// scan.strategy.* counts filter *chunks* served per pushdown path,
/// gather.strategy.* counts materialized *rows* per point-access path.
struct ScanMetrics {
  obs::Counter* queries;
  obs::Counter* rows_scanned;
  obs::Counter* rows_matched;
  obs::Counter* chunks_pruned;
  obs::Counter* chunks_full;
  obs::Counter* chunks_executed;
  obs::Counter* values_decoded;
  obs::Counter* filter_strategy[kNumStrategies];
  obs::Counter* gather_rows;
  obs::Counter* gather_chunks;
  obs::Counter* gather_strategy[kNumStrategies];
  obs::Histogram* selectivity_permille;

  static const ScanMetrics& Get() {
    static const ScanMetrics metrics = [] {
      ScanMetrics m;
      obs::Registry& registry = obs::Registry::Get();
      m.queries = &registry.GetCounter("scan.queries");
      m.rows_scanned = &registry.GetCounter("scan.rows_scanned");
      m.rows_matched = &registry.GetCounter("scan.rows_matched");
      m.chunks_pruned = &registry.GetCounter("scan.chunks_pruned");
      m.chunks_full = &registry.GetCounter("scan.chunks_full");
      m.chunks_executed = &registry.GetCounter("scan.chunks_executed");
      m.values_decoded = &registry.GetCounter("scan.values_decoded");
      m.gather_rows = &registry.GetCounter("gather.rows");
      m.gather_chunks = &registry.GetCounter("gather.chunks_touched");
      for (int s = 0; s < kNumStrategies; ++s) {
        const char* name = StrategyName(static_cast<Strategy>(s));
        m.filter_strategy[s] =
            &registry.GetCounter(std::string("scan.strategy.") + name);
        m.gather_strategy[s] =
            &registry.GetCounter(std::string("gather.strategy.") + name);
      }
      m.selectivity_permille =
          &registry.GetHistogram("scan.selectivity_permille");
      return m;
    }();
    return metrics;
  }
};

Column<uint32_t> IntersectSorted(const Column<uint32_t>& a,
                                 const Column<uint32_t>& b) {
  Column<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Per-chunk aggregate dispatch (the whole-column pushdown strategies).
Result<AggregateResult> AggregateChunk(const CompressedColumn& column,
                                       AggregateOp op) {
  switch (op) {
    case AggregateOp::kSum:
      return SumCompressed(column);
    case AggregateOp::kMin:
      return MinCompressed(column);
    case AggregateOp::kMax:
      return MaxCompressed(column);
    case AggregateOp::kCount:
      break;
  }
  return Status::InvalidArgument("count needs no per-chunk dispatch");
}

/// The unfiltered aggregate: zone maps answer what they can (min/max of
/// chunks with min/max, count of everything), payload chunks fan out over
/// `ctx`, and partials fold in chunk order — the exact execution (values and
/// counters) the standalone chunked Sum/Min/MaxCompressed historically ran,
/// now the one copy both Scan and those wrappers share.
Result<ChunkedAggregateResult> AggregateWholeColumn(
    const ChunkedCompressedColumn& chunked, AggregateOp op,
    const ExecContext& ctx) {
  ChunkedAggregateResult result;
  const uint64_t num_chunks = chunked.num_chunks();
  result.chunks_total = num_chunks;

  if (op == AggregateOp::kCount) {
    // Row counts live in the zone maps; no payload is ever touched.
    result.value = chunked.size();
    for (uint64_t i = 0; i < num_chunks; ++i) {
      if (chunked.chunk(i).zone.row_count == 0) continue;
      ++result.chunks_pruned;
      ++result.strategy_chunks[static_cast<int>(Strategy::kZoneMapOnly)];
    }
    return result;
  }
  if (op != AggregateOp::kSum && chunked.size() == 0) {
    return Status::InvalidArgument("min/max of an empty column");
  }

  // Which chunks need their payload? Min/max of a chunk with a zone map is
  // the zone map; only SUM (and chunks lacking min/max) touch payloads.
  std::vector<uint64_t> to_execute;
  for (uint64_t i = 0; i < num_chunks; ++i) {
    const CompressedChunk& chunk = chunked.chunk(i);
    if (chunk.zone.row_count == 0) continue;
    if (op != AggregateOp::kSum && chunk.zone.has_minmax) continue;
    to_execute.push_back(i);
  }

  std::vector<AggregateResult> slots;
  RECOMP_RETURN_NOT_OK(VisitIndicesInto(
      ctx, to_execute, &slots, [&](uint64_t i) -> Result<AggregateResult> {
        return AggregateChunk(chunked.chunk(i).column, op);
      }));

  if (op == AggregateOp::kMin) result.value = ~uint64_t{0};
  uint64_t slot = 0;
  for (uint64_t i = 0; i < num_chunks; ++i) {
    const CompressedChunk& chunk = chunked.chunk(i);
    if (chunk.zone.row_count == 0) continue;
    if (op != AggregateOp::kSum && chunk.zone.has_minmax) {
      const uint64_t v =
          op == AggregateOp::kMin ? chunk.zone.min : chunk.zone.max;
      result.value = op == AggregateOp::kMin ? std::min(result.value, v)
                                             : std::max(result.value, v);
      ++result.chunks_pruned;
      ++result.strategy_chunks[static_cast<int>(Strategy::kZoneMapOnly)];
      continue;
    }
    const AggregateResult& sub = slots[slot++];
    ++result.chunks_executed;
    ++result.strategy_chunks[static_cast<int>(sub.strategy)];
    if (op == AggregateOp::kSum) {
      result.value += sub.value;
    } else {
      result.value = op == AggregateOp::kMin
                         ? std::min(result.value, sub.value)
                         : std::max(result.value, sub.value);
    }
  }
  return result;
}

/// The default per-chunk execution: the same pushdown strategies the
/// per-operator free functions run. SelectChunk dispatches the chunk's
/// compressed payload; GatherRows is chunk-grouped batch point access — one
/// decompress per touched chunk.
class DefaultChunkPipeline final : public ChunkPipeline {
 public:
  explicit DefaultChunkPipeline(
      const std::vector<const ChunkedCompressedColumn*>& columns)
      : columns_(columns) {}

  Result<SelectionResult> SelectChunk(uint64_t column, uint64_t chunk,
                                      const RangePredicate& predicate) override {
    return SelectCompressed(columns_[column]->chunk(chunk).column, predicate);
  }

  Result<GatherResult> GatherRows(uint64_t column,
                                  const std::vector<uint64_t>& rows,
                                  const ExecContext& ctx) override {
    GatherResult gather;
    RECOMP_ASSIGN_OR_RETURN(
        gather.points,
        GetAtBatch(*columns_[column], rows, ctx, &gather.stats.chunks_touched));
    gather.stats.rows = rows.size();
    for (const PointResult& point : gather.points) {
      ++gather.stats.strategy_rows[static_cast<int>(point.strategy)];
    }
    return gather;
  }

 private:
  const std::vector<const ChunkedCompressedColumn*>& columns_;
};

/// Prefixes an error with "<role> column '<name>': " so a multi-column spec
/// reports *which* reference failed and in what role. Empty names — the
/// single-column API — pass through untouched, keeping the per-operator
/// wrappers' messages byte-identical to the historical ones.
Status NameColumnError(const char* role, const std::string& name,
                       Status status) {
  if (status.ok() || name.empty()) return status;
  return Status(status.code(), std::string(role) + " column '" + name +
                                   "': " + status.message());
}

/// The scan driver over an already-bound column list. `rows` is the shared
/// row count (every bound column has exactly this many rows). Per-chunk
/// filtering and materialization route through `pipeline`.
Result<ScanResult> ScanColumns(
    const std::vector<const ChunkedCompressedColumn*>& columns,
    const Lookup& lookup, uint64_t rows, const ScanSpec& spec,
    const ExecContext& ctx, ChunkPipeline& pipeline) {
  if (spec.filters().empty() && spec.projections().empty() &&
      spec.aggregates().empty()) {
    return Status::InvalidArgument(
        "empty scan spec: add a filter, projection, or aggregate");
  }

  // Resolve every referenced column up front, naming the role and column in
  // every error so a failing multi-column spec says which reference broke;
  // for the empty-name single-column API the messages stay exactly what the
  // per-operator free functions historically reported.
  std::vector<ResolvedFilter> filters;
  for (const ScanSpec::FilterSpec& f : spec.filters()) {
    Result<uint64_t> resolved = lookup(f.column);
    if (!resolved.ok()) {
      return NameColumnError("filter", f.column, resolved.status());
    }
    const uint64_t idx = *resolved;
    if (!TypeIdIsUnsigned(columns[idx]->type())) {
      return NameColumnError(
          "filter", f.column,
          Status::InvalidArgument("range selection over compressed data "
                                  "requires an unsigned column"));
    }
    filters.push_back({idx, f.predicate});
  }
  std::vector<uint64_t> projections;
  for (const std::string& name : spec.projections()) {
    Result<uint64_t> resolved = lookup(name);
    if (!resolved.ok()) {
      return NameColumnError("projection", name, resolved.status());
    }
    const uint64_t idx = *resolved;
    if (!TypeIdIsUnsigned(columns[idx]->type())) {
      return NameColumnError(
          "projection", name,
          Status::InvalidArgument("point access requires an unsigned column"));
    }
    projections.push_back(idx);
  }
  std::vector<std::pair<uint64_t, AggregateOp>> aggregates;
  for (const ScanSpec::AggregateSpec& a : spec.aggregates()) {
    Result<uint64_t> resolved = lookup(a.column);
    if (!resolved.ok()) {
      return NameColumnError("aggregate", a.column, resolved.status());
    }
    const uint64_t idx = *resolved;
    if (!TypeIdIsUnsigned(columns[idx]->type())) {
      return NameColumnError(
          "aggregate", a.column,
          Status::InvalidArgument(
              "compressed aggregation requires an unsigned column"));
    }
    aggregates.push_back({idx, a.op});
  }
  if ((!filters.empty() || !projections.empty()) &&
      rows >= (uint64_t{1} << 32)) {
    return Status::OutOfRange("selections support columns below 2^32 rows");
  }

  ScanResult result;
  result.rows_scanned = rows;

  if (!filters.empty()) {
    const obs::Span filter_span("scan.filter");
    // Row-range partition: the finest refinement of every filter column's
    // chunk boundaries. Each range lies inside exactly one chunk of every
    // filter column, so a chunk zone map speaks for the whole range; with
    // one filter (or boundary-aligned columns) ranges are exactly the
    // nonempty chunks, which keeps the wrappers bit-identical to the
    // historical per-operator loops.
    std::vector<uint64_t> bounds;
    bounds.push_back(0);
    bounds.push_back(rows);
    for (const ResolvedFilter& f : filters) {
      for (const auto& chunk : columns[f.column]->chunks()) {
        bounds.push_back(chunk->zone.row_begin);
      }
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    const uint64_t num_ranges = bounds.size() < 2 ? 0 : bounds.size() - 1;

    // For each filter, the chunk of its column owning each range.
    std::vector<std::vector<uint64_t>> owner(
        filters.size(), std::vector<uint64_t>(num_ranges, 0));
    for (size_t f = 0; f < filters.size(); ++f) {
      const auto& chunks = columns[filters[f].column]->chunks();
      uint64_t ci = 0;
      for (uint64_t r = 0; r < num_ranges; ++r) {
        while (ci + 1 < chunks.size() &&
               chunks[ci]->zone.row_begin + chunks[ci]->zone.row_count <=
                   bounds[r]) {
          ++ci;
        }
        owner[f][r] = ci;
      }
    }

    // Phase 1 (zone maps only): a range is dead when any filter's owning
    // chunk is disjoint from its predicate — zone-map pruning intersected
    // across all filter columns, so a chunk any predicate prunes is never
    // touched for *any* column. From the live ranges, classify each
    // filter's chunks: a (filter, chunk) pair needs its payload only when
    // the chunk overlaps the predicate without being contained AND owns at
    // least one live range — and each needed pair executes exactly once, no
    // matter how many ranges the chunk spans under misaligned boundaries.
    std::vector<char> dead(num_ranges, 0);
    for (uint64_t r = 0; r < num_ranges; ++r) {
      for (size_t f = 0; f < filters.size(); ++f) {
        const ZoneMap& zone =
            columns[filters[f].column]->chunk(owner[f][r]).zone;
        if (zone.DisjointFrom(filters[f].predicate.lo,
                              filters[f].predicate.hi)) {
          dead[r] = 1;
          break;
        }
      }
    }
    std::vector<std::vector<ChunkAction>> chunk_action(filters.size());
    std::vector<std::vector<size_t>> slot_of(filters.size());
    std::vector<std::pair<size_t, uint64_t>> exec_pairs;
    for (size_t f = 0; f < filters.size(); ++f) {
      const ChunkedCompressedColumn& column = *columns[filters[f].column];
      chunk_action[f].assign(column.num_chunks(), ChunkAction::kNotReached);
      slot_of[f].assign(column.num_chunks(), ~size_t{0});
      for (uint64_t r = 0; r < num_ranges; ++r) {
        const uint64_t c = owner[f][r];
        const ZoneMap& zone = column.chunk(c).zone;
        if (zone.DisjointFrom(filters[f].predicate.lo,
                              filters[f].predicate.hi)) {
          chunk_action[f][c] = ChunkAction::kPruned;
        } else if (!dead[r] &&
                   chunk_action[f][c] == ChunkAction::kNotReached) {
          chunk_action[f][c] = zone.ContainedIn(filters[f].predicate.lo,
                                                filters[f].predicate.hi)
                                   ? ChunkAction::kFull
                                   : ChunkAction::kExecute;
        }
      }
      for (uint64_t c = 0; c < column.num_chunks(); ++c) {
        if (chunk_action[f][c] == ChunkAction::kExecute) {
          slot_of[f][c] = exec_pairs.size();
          exec_pairs.push_back({f, c});
        }
      }
    }

    // Phase 2: run the per-chunk strategies for the needed pairs,
    // concurrently under ctx, each into its own slot.
    std::vector<SelectionResult> slots;
    RECOMP_RETURN_NOT_OK(VisitIndicesInto(
        ctx, static_cast<uint64_t>(exec_pairs.size()), &slots,
        [&](uint64_t p) -> Result<SelectionResult> {
          const auto [f, c] = exec_pairs[p];
          return pipeline.SelectChunk(filters[f].column, c,
                                      filters[f].predicate);
        }));

    // Stats, per filter in chunk order — each chunk counted once, so
    // pruned + full + executed never exceeds chunks_total, and the
    // single-filter wrapper reproduces the historical counters exactly.
    result.filters.resize(filters.size());
    for (size_t f = 0; f < filters.size(); ++f) {
      result.filters[f].column = spec.filters()[f].column;
      ChunkedSelectionStats& stats = result.filters[f].stats;
      stats.chunks_total = columns[filters[f].column]->num_chunks();
      for (uint64_t c = 0; c < chunk_action[f].size(); ++c) {
        switch (chunk_action[f][c]) {
          case ChunkAction::kNotReached:
            break;
          case ChunkAction::kPruned:
            ++stats.chunks_pruned;
            break;
          case ChunkAction::kFull:
            ++stats.chunks_full;
            break;
          case ChunkAction::kExecute: {
            SelectionResult& sub = slots[slot_of[f][c]];
            ++stats.chunks_executed;
            ++stats.strategy_chunks[static_cast<int>(sub.stats.strategy)];
            stats.values_decoded += sub.stats.values_decoded;
            stats.per_chunk.push_back({c, sub.stats});
            break;
          }
        }
      }
    }

    // Phase 3 (sequential, range order): intersect the cached chunk hits,
    // clipped to each live range, in spec order — positions stay sorted and
    // every byte of this result is identical for any thread count.
    const uint64_t limit = spec.limit();
    for (uint64_t r = 0; r < num_ranges; ++r) {
      if (dead[r]) continue;
      const uint64_t begin = bounds[r];
      const uint64_t end = bounds[r + 1];
      Column<uint32_t> sel;
      bool constrained = false;  // sel a strict subset of the range?
      for (size_t f = 0; f < filters.size(); ++f) {
        const uint64_t c = owner[f][r];
        if (chunk_action[f][c] == ChunkAction::kFull) continue;
        if (constrained && sel.empty()) break;
        const SelectionResult& cached = slots[slot_of[f][c]];
        const uint64_t base =
            columns[filters[f].column]->chunk(c).zone.row_begin;
        // The chunk's hits are sorted and chunk-local: binary-search the
        // sub-range belonging to [begin, end) and lift it to global rows.
        const auto first = std::lower_bound(
            cached.positions.begin(), cached.positions.end(),
            static_cast<uint32_t>(begin - base));
        const auto last = std::lower_bound(
            first, cached.positions.end(), static_cast<uint32_t>(end - base));
        Column<uint32_t> hits;
        hits.reserve(last - first);
        for (auto it = first; it != last; ++it) {
          hits.push_back(static_cast<uint32_t>(base + *it));
        }
        if (!constrained) {
          sel = std::move(hits);
          constrained = true;
        } else {
          sel = IntersectSorted(sel, hits);
        }
      }
      if (!constrained) {
        // Every filter was contained: the whole range qualifies. Count it
        // whole and materialize identity positions only up to the limit.
        result.rows_matched += end - begin;
        for (uint64_t row = begin;
             row < end && result.positions.size() < limit; ++row) {
          result.positions.push_back(static_cast<uint32_t>(row));
        }
        continue;
      }
      result.rows_matched += sel.size();
      for (const uint32_t p : sel) {
        if (result.positions.size() >= limit) break;
        result.positions.push_back(p);
      }
    }
  } else {
    result.rows_matched = rows;
  }

  // The rows projections and aggregates see: the (limited) selection, or —
  // with no filters — an identity prefix. A filterless, unlimited aggregate
  // skips the selection entirely and pushes down per chunk.
  const uint64_t take = std::min(spec.limit(), rows);
  const bool pushdown_aggregates = filters.empty() && take == rows;
  std::vector<uint64_t> sel;
  if (!filters.empty()) {
    sel.assign(result.positions.begin(), result.positions.end());
  } else if (!projections.empty() ||
             (!aggregates.empty() && !pushdown_aggregates)) {
    sel.resize(take);
    for (uint64_t i = 0; i < take; ++i) sel[i] = i;
  }

  // Late materialization, one gather per distinct column even when it is
  // both projected and aggregated. The span closes at function exit, so the
  // materialize phase covers projections, aggregates, and the metric fold.
  const obs::Span materialize_span("scan.materialize");
  std::unordered_map<uint64_t, GatherResult> gathers;
  auto gather_for = [&](uint64_t col) -> Result<const GatherResult*> {
    auto it = gathers.find(col);
    if (it != gathers.end()) return &it->second;
    RECOMP_ASSIGN_OR_RETURN(GatherResult gather,
                            pipeline.GatherRows(col, sel, ctx));
    return &gathers.emplace(col, std::move(gather)).first->second;
  };

  for (size_t p = 0; p < projections.size(); ++p) {
    ScanProjection out;
    out.column = spec.projections()[p];
    RECOMP_ASSIGN_OR_RETURN(const GatherResult* gather, gather_for(projections[p]));
    out.gather = gather->stats;
    RECOMP_ASSIGN_OR_RETURN(
        out.values,
        DispatchUnsignedTypeId(
            columns[projections[p]]->type(),
            [&](auto tag) -> Result<AnyColumn> {
              using T = typename decltype(tag)::type;
              Column<T> values(gather->points.size());
              for (size_t i = 0; i < gather->points.size(); ++i) {
                values[i] = static_cast<T>(gather->points[i].value);
              }
              return AnyColumn(std::move(values));
            }));
    result.projections.push_back(std::move(out));
  }

  for (size_t a = 0; a < aggregates.size(); ++a) {
    const auto [col, op] = aggregates[a];
    ScanAggregate out;
    out.column = spec.aggregates()[a].column;
    out.op = op;
    if (pushdown_aggregates) {
      RECOMP_ASSIGN_OR_RETURN(out.agg, AggregateWholeColumn(*columns[col], op, ctx));
      out.rows = rows;
    } else {
      out.rows = sel.size();
      if (op == AggregateOp::kCount) {
        out.agg.value = sel.size();
      } else if (!sel.empty()) {
        RECOMP_ASSIGN_OR_RETURN(const GatherResult* gather, gather_for(col));
        out.gather = gather->stats;
        uint64_t acc = op == AggregateOp::kMin ? ~uint64_t{0} : 0;
        for (const PointResult& point : gather->points) {
          switch (op) {
            case AggregateOp::kSum:
              acc += point.value;
              break;
            case AggregateOp::kMin:
              acc = std::min(acc, point.value);
              break;
            case AggregateOp::kMax:
              acc = std::max(acc, point.value);
              break;
            case AggregateOp::kCount:
              break;
          }
        }
        out.agg.value = acc;
      }
      // Min/max of an empty selection stays 0 with rows == 0: a filtered
      // scan that matches nothing is an answer, not an error (unlike the
      // whole-column min/max of an empty column, which keeps failing).
    }
    result.aggregates.push_back(std::move(out));
  }

  // Fold this query's counters into the process-wide registry — and, when
  // the calling thread carries a ScanProfile, into that profile. Gather
  // stats are folded from the dedup map, not the result entries, so a
  // column both projected and aggregated counts once.
  if (obs::Enabled()) {
    const ScanMetrics& metrics = ScanMetrics::Get();
    metrics.queries->Increment();
    metrics.rows_scanned->Add(result.rows_scanned);
    metrics.rows_matched->Add(result.rows_matched);
    uint64_t chunks_pruned = 0;
    uint64_t chunks_executed = 0;
    uint64_t values_decoded = 0;
    for (const ScanFilterStats& f : result.filters) {
      chunks_pruned += f.stats.chunks_pruned;
      chunks_executed += f.stats.chunks_executed;
      values_decoded += f.stats.values_decoded;
      metrics.chunks_full->Add(f.stats.chunks_full);
      for (int s = 0; s < kNumStrategies; ++s) {
        metrics.filter_strategy[s]->Add(f.stats.strategy_chunks[s]);
      }
    }
    metrics.chunks_pruned->Add(chunks_pruned);
    metrics.chunks_executed->Add(chunks_executed);
    metrics.values_decoded->Add(values_decoded);
    uint64_t gather_rows = 0;
    for (const auto& entry : gathers) {
      const GatherStats& gather_stats = entry.second.stats;
      gather_rows += gather_stats.rows;
      metrics.gather_chunks->Add(gather_stats.chunks_touched);
      for (int s = 0; s < kNumStrategies; ++s) {
        metrics.gather_strategy[s]->Add(gather_stats.strategy_rows[s]);
      }
    }
    metrics.gather_rows->Add(gather_rows);
    if (!result.filters.empty() && result.rows_scanned > 0) {
      metrics.selectivity_permille->Record(result.rows_matched * 1000 /
                                           result.rows_scanned);
    }
    if (obs::ScanProfile* profile = obs::CurrentProfile()) {
      profile->AddCounter("rows_scanned", result.rows_scanned);
      profile->AddCounter("rows_matched", result.rows_matched);
      profile->AddCounter("chunks_pruned", chunks_pruned);
      profile->AddCounter("chunks_executed", chunks_executed);
      profile->AddCounter("values_decoded", values_decoded);
      profile->AddCounter("gather_rows", gather_rows);
    }
  }

  return result;
}

}  // namespace

Result<ScanResult> Scan(const store::TableSnapshot& snapshot,
                        const ScanSpec& spec, const ExecContext& ctx) {
  std::vector<const ChunkedCompressedColumn*> columns;
  columns.reserve(snapshot.num_columns());
  for (uint64_t i = 0; i < snapshot.num_columns(); ++i) {
    columns.push_back(&snapshot.column(i).chunked());
  }
  const Lookup lookup = [&](const std::string& name) -> Result<uint64_t> {
    return snapshot.column_index(name);
  };
  DefaultChunkPipeline pipeline(columns);
  return ScanColumns(columns, lookup, snapshot.rows(), spec, ctx, pipeline);
}

Result<ScanResult> Scan(const ChunkedCompressedColumn& column,
                        const ScanSpec& spec, const ExecContext& ctx) {
  const std::vector<const ChunkedCompressedColumn*> columns{&column};
  const Lookup lookup = [&](const std::string& name) -> Result<uint64_t> {
    if (name.empty()) return uint64_t{0};
    return Status::KeyError("no column named '" + name +
                            "': a single-column scan addresses its column "
                            "with the empty name");
  };
  DefaultChunkPipeline pipeline(columns);
  return ScanColumns(columns, lookup, column.size(), spec, ctx, pipeline);
}

Result<ScanResult> ScanWithPipeline(const store::TableSnapshot& snapshot,
                                    const ScanSpec& spec,
                                    const ExecContext& ctx,
                                    ChunkPipeline& pipeline) {
  std::vector<const ChunkedCompressedColumn*> columns;
  columns.reserve(snapshot.num_columns());
  for (uint64_t i = 0; i < snapshot.num_columns(); ++i) {
    columns.push_back(&snapshot.column(i).chunked());
  }
  const Lookup lookup = [&](const std::string& name) -> Result<uint64_t> {
    return snapshot.column_index(name);
  };
  return ScanColumns(columns, lookup, snapshot.rows(), spec, ctx, pipeline);
}

bool ScanOutputsEqual(const ScanResult& a, const ScanResult& b) {
  if (a.rows_scanned != b.rows_scanned || a.rows_matched != b.rows_matched ||
      a.positions != b.positions) {
    return false;
  }
  if (a.projections.size() != b.projections.size() ||
      a.aggregates.size() != b.aggregates.size()) {
    return false;
  }
  for (size_t i = 0; i < a.projections.size(); ++i) {
    const ScanProjection& pa = a.projections[i];
    const ScanProjection& pb = b.projections[i];
    if (pa.column != pb.column || !(pa.values == pb.values)) return false;
  }
  for (size_t i = 0; i < a.aggregates.size(); ++i) {
    const ScanAggregate& aa = a.aggregates[i];
    const ScanAggregate& ab = b.aggregates[i];
    if (aa.column != ab.column || aa.op != ab.op || aa.rows != ab.rows ||
        aa.agg.value != ab.agg.value) {
      return false;
    }
  }
  return true;
}

std::string CanonicalSpecKey(const ScanSpec& spec) {
  // Length-prefix every column name ("<len>:<name>") so a crafted name
  // containing the section markers cannot forge another spec's key.
  const auto append_name = [](std::string* key, const std::string& name) {
    key->append(std::to_string(name.size()));
    key->push_back(':');
    key->append(name);
  };
  // Filters sort by (column, lo, hi): the driver intersects selections, so
  // any permutation of the same conjunction yields identical outputs.
  std::vector<const ScanSpec::FilterSpec*> filters;
  filters.reserve(spec.filters().size());
  for (const ScanSpec::FilterSpec& f : spec.filters()) filters.push_back(&f);
  std::sort(filters.begin(), filters.end(),
            [](const ScanSpec::FilterSpec* a, const ScanSpec::FilterSpec* b) {
              if (a->column != b->column) return a->column < b->column;
              if (a->predicate.lo != b->predicate.lo) {
                return a->predicate.lo < b->predicate.lo;
              }
              return a->predicate.hi < b->predicate.hi;
            });
  std::string key;
  for (const ScanSpec::FilterSpec* f : filters) {
    key.push_back('f');
    append_name(&key, f->column);
    key.push_back('[');
    key.append(std::to_string(f->predicate.lo));
    key.push_back(',');
    key.append(std::to_string(f->predicate.hi));
    key.push_back(']');
  }
  for (const std::string& column : spec.projections()) {
    key.push_back('p');
    append_name(&key, column);
  }
  for (const ScanSpec::AggregateSpec& agg : spec.aggregates()) {
    key.push_back('a');
    append_name(&key, agg.column);
    key.append(AggregateOpName(agg.op));
  }
  key.push_back('l');
  key.append(std::to_string(spec.limit()));
  return key;
}

uint64_t CanonicalSpecHash(const ScanSpec& spec) {
  const std::string key = CanonicalSpecKey(spec);
  uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return h;
}

}  // namespace recomp::exec
