// Strategy: how an exec operator answered a query over a compressed column.
//
// Every pushdown operator (selection, aggregation, point access, semi-join)
// reports which access path ran so tests, benchmarks, and callers can see
// whether a query was served from the compressed form or fell back to
// decompress-and-scan. The names are stable strings (StrategyName) used in
// golden output; the enum keeps call sites typo-proof.

#ifndef RECOMP_EXEC_STRATEGY_H_
#define RECOMP_EXEC_STRATEGY_H_

namespace recomp::exec {

/// The access path an operator used.
enum class Strategy : int {
  kDecompressScan = 0,  ///< Fallback: materialize, then scan.
  kRleRuns = 1,         ///< RPE/RLE: operate on runs instead of rows.
  kDictCodes = 2,       ///< DICT: compare codes instead of values.
  kStepPruned = 3,      ///< MODELED(STEP): prune segments by the L∞ bound.
  kRleDot = 4,          ///< RLE aggregate: lengths · values.
  kStepMass = 5,        ///< FOR aggregate: Σ ref·|segment| + residual mass.
  kDictSum = 6,         ///< DICT sum: per-row dictionary lookups.
  kDictExtrema = 7,     ///< DICT min/max: dictionary lookup of code extrema.
  kNsDirect = 8,        ///< NS point access: in-place bit extraction.
  kForDirect = 9,       ///< FOR point access: ref + one residual extraction.
  kRpeBinarySearch = 10,///< RPE point access: binary search over positions.
  kDictProbe = 11,      ///< DICT point access / semi-join dictionary probe.
  kZoneMapOnly = 12,    ///< Chunked: answered from zone maps alone.
  kPlainScan = 13,      ///< ID: operate on the stored plain column in place
                        ///< (the streaming store's uncompressed tail chunks).
};

/// Number of strategies.
inline constexpr int kNumStrategies = 14;

/// Stable display name, e.g. "rle-runs" (matches the historical strings).
const char* StrategyName(Strategy s);

}  // namespace recomp::exec

#endif  // RECOMP_EXEC_STRATEGY_H_
