// Approximate and gradually-refined query answering over the model part of
// a compressed column (paper §II-B: "the rough correspondence of the column
// data to a simple model can be used ... in the context of approximate or
// gradual-refinement query processing").
//
// For a MODELED(STEP){residual: NS(w)} column, the refs alone bound every
// value to [ref, ref + 2^w - 1]; summing refs therefore bounds SUM without
// touching the packed residual. Refinement decodes residual segments one at
// a time, monotonically tightening the interval until it collapses to the
// exact answer.

#ifndef RECOMP_EXEC_APPROX_H_
#define RECOMP_EXEC_APPROX_H_

#include "core/compressed.h"
#include "util/result.h"

namespace recomp::exec {

/// A sum interval plus refinement progress. Invariants (tested):
///   lower <= exact <= upper,
///   refining never widens the interval,
///   refined_segments == total_segments implies lower == upper == exact.
struct ApproxSum {
  uint64_t lower = 0;
  uint64_t upper = 0;
  uint64_t refined_segments = 0;
  uint64_t total_segments = 0;

  uint64_t Width() const { return upper - lower; }
  bool IsExact() const { return lower == upper; }
};

/// Model-only bounds (no residual bits touched). Requires a
/// MODELED(STEP){residual: NS} envelope; other shapes fail with
/// InvalidArgument.
Result<ApproxSum> ApproximateSum(const CompressedColumn& compressed);

/// Bounds after exactly decoding the residuals of the first
/// `refined_segments` segments.
Result<ApproxSum> RefineSum(const CompressedColumn& compressed,
                            uint64_t refined_segments);

}  // namespace recomp::exec

#endif  // RECOMP_EXEC_APPROX_H_
