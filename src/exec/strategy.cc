#include "exec/strategy.h"

namespace recomp::exec {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kDecompressScan:
      return "decompress-scan";
    case Strategy::kRleRuns:
      return "rle-runs";
    case Strategy::kDictCodes:
      return "dict-codes";
    case Strategy::kStepPruned:
      return "step-pruned";
    case Strategy::kRleDot:
      return "rle-dot";
    case Strategy::kStepMass:
      return "step-mass";
    case Strategy::kDictSum:
      return "dict-sum";
    case Strategy::kDictExtrema:
      return "dict-extrema";
    case Strategy::kNsDirect:
      return "ns-direct";
    case Strategy::kForDirect:
      return "for-direct";
    case Strategy::kRpeBinarySearch:
      return "rpe-binary-search";
    case Strategy::kDictProbe:
      return "dict-probe";
    case Strategy::kZoneMapOnly:
      return "zone-map-only";
    case Strategy::kPlainScan:
      return "plain-scan";
  }
  return "unknown";
}

}  // namespace recomp::exec
