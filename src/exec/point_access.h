// Point access: read a single row from a compressed column without
// materializing it.
//
// Another consequence of the columnar view: the compressed parts are random-
// access columns, so many shapes answer "what is row i?" in O(1) or
// O(log runs) — NS via in-place bit extraction, FOR via ref + one residual
// extraction, RPE via binary search over run positions, DICT via one code
// plus a dictionary probe. Shapes with sequential dependencies (DELTA,
// VBYTE) legitimately degrade; GetAt reports which access path ran so
// callers (and benchmarks) can see the difference.

#ifndef RECOMP_EXEC_POINT_ACCESS_H_
#define RECOMP_EXEC_POINT_ACCESS_H_

#include <cstdint>
#include <vector>

#include "core/chunked.h"
#include "core/compressed.h"
#include "exec/strategy.h"
#include "util/result.h"

namespace recomp::exec {

/// One row's value plus the access path used.
struct PointResult {
  uint64_t value = 0;  ///< The row's value as uint64.
  Strategy strategy = Strategy::kDecompressScan;
};

/// Returns row `row` of the compressed column. Fails with OutOfRange when
/// row >= size. Always equals Decompress(...)[row].
Result<PointResult> GetAt(const CompressedColumn& compressed, uint64_t row);

/// Chunked overload: locates the owning chunk (binary search over the chunk
/// directory), then runs the whole-column access path inside it — so the
/// cost stays O(1)/O(log runs) per lookup regardless of chunk count. The
/// strategy reports the inner chunk's access path. A single lookup touches
/// one chunk, so `ctx` is accepted for signature uniformity with the other
/// chunked operators (and batch lookups to come) but never fans out.
Result<PointResult> GetAt(const ChunkedCompressedColumn& chunked, uint64_t row,
                          const ExecContext& ctx = {});

/// Batch point access, grouped by owning chunk and fanned out over `ctx`
/// one *chunk* at a time: shapes with a direct access path answer each row
/// in O(1)/O(log runs), and shapes without one decompress each touched
/// chunk exactly once — not once per requested row — no matter how many
/// rows land in it, in whatever order, duplicates included. Results land in
/// input order and agree row-for-row (value and strategy) with per-row
/// GetAt; rows past the end are rejected up front, first in input order.
/// This is the gather engine behind exec::Scan's late materialization.
/// When `chunks_touched` is non-null it receives the number of distinct
/// chunks the batch landed in (the grouping is computed anyway).
Result<std::vector<PointResult>> GetAtBatch(
    const ChunkedCompressedColumn& chunked, const std::vector<uint64_t>& rows,
    const ExecContext& ctx = {}, uint64_t* chunks_touched = nullptr);

}  // namespace recomp::exec

#endif  // RECOMP_EXEC_POINT_ACCESS_H_
