// Column<T>: the library's "pure column" representation.
//
// The paper insists on viewing compressed forms as plain columns, stripped of
// blocks/headers/padding; accordingly a column here is nothing more than a
// SIMD-aligned contiguous vector of fixed-width integers.

#ifndef RECOMP_COLUMNAR_COLUMN_H_
#define RECOMP_COLUMNAR_COLUMN_H_

#include <cstdint>
#include <vector>

#include "util/align.h"

namespace recomp {

/// A contiguous, 64-byte-aligned column of T.
template <typename T>
using Column = std::vector<T, AlignedAllocator<T>>;

/// Builds a Column<T> from an initializer-style std::vector (test helper).
template <typename T>
Column<T> MakeColumn(const std::vector<T>& values) {
  return Column<T>(values.begin(), values.end());
}

/// Raw byte footprint of a column's payload.
template <typename T>
uint64_t ColumnBytes(const Column<T>& col) {
  return col.size() * sizeof(T);
}

}  // namespace recomp

#endif  // RECOMP_COLUMNAR_COLUMN_H_
