#include "columnar/any_column.h"

#include "util/string_util.h"

namespace recomp {

std::string PackedColumn::ToString() const {
  return StringFormat("packed<%s,w=%d>[%llu]", TypeIdName(logical_type),
                      bit_width, static_cast<unsigned long long>(n));
}

TypeId AnyColumn::type() const {
  return std::visit(
      [](const auto& col) -> TypeId {
        using C = std::decay_t<decltype(col)>;
        if constexpr (std::is_same_v<C, PackedColumn>) {
          return col.logical_type;
        } else {
          return TypeIdOf<typename C::value_type>();
        }
      },
      v_);
}

uint64_t AnyColumn::size() const {
  return std::visit(
      [](const auto& col) -> uint64_t {
        using C = std::decay_t<decltype(col)>;
        if constexpr (std::is_same_v<C, PackedColumn>) {
          return col.n;
        } else {
          return col.size();
        }
      },
      v_);
}

uint64_t AnyColumn::ByteSize() const {
  return std::visit(
      [](const auto& col) -> uint64_t {
        using C = std::decay_t<decltype(col)>;
        if constexpr (std::is_same_v<C, PackedColumn>) {
          return col.ByteSize();
        } else {
          return col.size() * sizeof(typename C::value_type);
        }
      },
      v_);
}

std::string AnyColumn::ToString() const {
  if (is_packed()) return packed().ToString();
  return StringFormat("%s[%llu]", TypeIdName(type()),
                      static_cast<unsigned long long>(size()));
}

}  // namespace recomp
