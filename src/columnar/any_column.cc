#include "columnar/any_column.h"

#include "util/string_util.h"

namespace recomp {

std::string PackedColumn::ToString() const {
  return StringFormat("packed<%s,w=%d>[%llu]", TypeIdName(logical_type),
                      bit_width, static_cast<unsigned long long>(n));
}

TypeId AnyColumn::type() const {
  return std::visit(
      [](const auto& col) -> TypeId {
        using C = std::decay_t<decltype(col)>;
        if constexpr (std::is_same_v<C, PackedColumn>) {
          return col.logical_type;
        } else {
          return TypeIdOf<typename C::value_type>();
        }
      },
      v_);
}

uint64_t AnyColumn::size() const {
  return std::visit(
      [](const auto& col) -> uint64_t {
        using C = std::decay_t<decltype(col)>;
        if constexpr (std::is_same_v<C, PackedColumn>) {
          return col.n;
        } else {
          return col.size();
        }
      },
      v_);
}

uint64_t AnyColumn::ByteSize() const {
  return std::visit(
      [](const auto& col) -> uint64_t {
        using C = std::decay_t<decltype(col)>;
        if constexpr (std::is_same_v<C, PackedColumn>) {
          return col.ByteSize();
        } else {
          return col.size() * sizeof(typename C::value_type);
        }
      },
      v_);
}

std::string AnyColumn::ToString() const {
  if (is_packed()) return packed().ToString();
  return StringFormat("%s[%llu]", TypeIdName(type()),
                      static_cast<unsigned long long>(size()));
}

Result<AnyColumn> SliceRows(const AnyColumn& column, uint64_t begin,
                            uint64_t end) {
  if (column.is_packed()) {
    return Status::InvalidArgument("SliceRows requires a plain column");
  }
  if (begin > end || end > column.size()) {
    return Status::OutOfRange(StringFormat(
        "slice [%llu, %llu) out of range for a column of %llu rows",
        static_cast<unsigned long long>(begin),
        static_cast<unsigned long long>(end),
        static_cast<unsigned long long>(column.size())));
  }
  return column.VisitPlain([&](const auto& col) -> Result<AnyColumn> {
    using T = typename std::decay_t<decltype(col)>::value_type;
    return AnyColumn(Column<T>(col.begin() + begin, col.begin() + end));
  });
}

}  // namespace recomp
