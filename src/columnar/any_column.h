// AnyColumn: a type-erased column, the unit of exchange between schemes.
//
// A compressed form is a named map of AnyColumns (the paper's "pure columns"
// view); each part may be a plain integer column of any supported width or a
// bit-packed column.

#ifndef RECOMP_COLUMNAR_ANY_COLUMN_H_
#define RECOMP_COLUMNAR_ANY_COLUMN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "columnar/column.h"
#include "columnar/packed.h"
#include "columnar/type.h"
#include "util/macros.h"
#include "util/result.h"

namespace recomp {

/// A column of any supported physical type, or a bit-packed column.
class AnyColumn {
 public:
  using Variant =
      std::variant<Column<uint8_t>, Column<uint16_t>, Column<uint32_t>,
                   Column<uint64_t>, Column<int8_t>, Column<int16_t>,
                   Column<int32_t>, Column<int64_t>, PackedColumn>;

  /// Default: an empty uint32 column.
  AnyColumn() : v_(Column<uint32_t>{}) {}

  template <typename T>
  AnyColumn(Column<T> col) : v_(std::move(col)) {}  // NOLINT(runtime/explicit)

  AnyColumn(PackedColumn p) : v_(std::move(p)) {}  // NOLINT(runtime/explicit)

  /// True iff this holds a PackedColumn rather than a plain column.
  bool is_packed() const { return std::holds_alternative<PackedColumn>(v_); }

  /// Logical element type (for packed columns, the type values decode to).
  TypeId type() const;

  /// Number of logical elements.
  uint64_t size() const;

  /// Physical payload footprint in bytes (the quantity compression ratios
  /// are computed from).
  uint64_t ByteSize() const;

  /// Typed access; aborts if the held type differs.
  template <typename T>
  const Column<T>& As() const {
    RECOMP_DCHECK(std::holds_alternative<Column<T>>(v_),
                  "AnyColumn::As<T> type mismatch");
    return std::get<Column<T>>(v_);
  }
  template <typename T>
  Column<T>& As() {
    RECOMP_DCHECK(std::holds_alternative<Column<T>>(v_),
                  "AnyColumn::As<T> type mismatch");
    return std::get<Column<T>>(v_);
  }

  /// Packed access; aborts if this is a plain column.
  const PackedColumn& packed() const {
    RECOMP_DCHECK(is_packed(), "AnyColumn::packed on a plain column");
    return std::get<PackedColumn>(v_);
  }

  /// Invokes `f` with the concrete Column<T>&; aborts on packed columns
  /// (callers dispatch on is_packed() first).
  template <typename F>
  decltype(auto) VisitPlain(F&& f) const {
    RECOMP_DCHECK(!is_packed(), "VisitPlain on a packed column");
    return std::visit(
        [&](const auto& col) -> decltype(auto) {
          using C = std::decay_t<decltype(col)>;
          if constexpr (std::is_same_v<C, PackedColumn>) {
            // Unreachable per the DCHECK; keep the type checker happy by
            // recursing on an empty column of the logical type.
            return f(Column<uint32_t>{});
          } else {
            return f(col);
          }
        },
        v_);
  }

  bool operator==(const AnyColumn& other) const { return v_ == other.v_; }

  /// "uint32[1024]" or "packed<uint32,w=7>[1024]".
  std::string ToString() const;

 private:
  Variant v_;
};

/// Copies rows [begin, end) of a plain column into a new column of the same
/// type — the chunking primitive. Errors on packed columns and out-of-range
/// bounds.
Result<AnyColumn> SliceRows(const AnyColumn& column, uint64_t begin,
                            uint64_t end);

}  // namespace recomp

#endif  // RECOMP_COLUMNAR_ANY_COLUMN_H_
