#include "columnar/stats.h"

#include <algorithm>
#include <unordered_set>

#include "util/bits.h"
#include "util/zigzag.h"

namespace recomp {

template <typename T>
ColumnStats ComputeStats(const Column<T>& col) {
  static_assert(std::is_unsigned_v<T>, "stats are computed on unsigned columns");
  ColumnStats s;
  s.n = col.size();
  if (col.empty()) return s;

  s.min = col[0];
  s.max = col[0];
  s.run_count = 1;
  s.sorted_nondecreasing = true;
  s.strictly_increasing = true;
  uint64_t current_run = 1;
  s.max_run_length = 1;

  uint64_t max_zz = zigzag::EncodeDiff<uint64_t>(col[0], 0);

  for (uint64_t i = 1; i < col.size(); ++i) {
    const uint64_t v = col[i];
    const uint64_t prev = col[i - 1];
    s.min = std::min<uint64_t>(s.min, v);
    s.max = std::max<uint64_t>(s.max, v);
    if (v == prev) {
      ++current_run;
      s.strictly_increasing = false;
    } else {
      s.max_run_length = std::max(s.max_run_length, current_run);
      current_run = 1;
      ++s.run_count;
      if (v < prev) {
        s.sorted_nondecreasing = false;
        s.strictly_increasing = false;
      }
    }
    uint64_t zz = zigzag::EncodeDiff<uint64_t>(v, prev);
    int zz_bits = bits::BitWidth(zz);
    s.max_delta_zigzag_bits = std::max(s.max_delta_zigzag_bits, zz_bits);
    max_zz = std::max(max_zz, zz);
  }
  s.max_run_length = std::max(s.max_run_length, current_run);
  s.avg_run_length =
      static_cast<double>(s.n) / static_cast<double>(s.run_count);

  s.value_bits = bits::BitWidth(s.max);
  s.range_bits = bits::BitWidth(s.max - s.min);
  s.max_delta_zigzag_bits_with_head = bits::BitWidth(max_zz);

  std::unordered_set<uint64_t> seen;
  for (const T v : col) {
    seen.insert(static_cast<uint64_t>(v));
    if (seen.size() >= ColumnStats::kDistinctCap) {
      s.distinct_capped = true;
      break;
    }
  }
  s.distinct = seen.size();
  return s;
}

template <typename T>
int StepResidualWidth(const Column<T>& col, uint64_t ell) {
  static_assert(std::is_unsigned_v<T>);
  if (col.empty() || ell == 0) return 0;
  int width = 0;
  for (uint64_t seg = 0; seg * ell < col.size(); ++seg) {
    const uint64_t begin = seg * ell;
    const uint64_t end = std::min<uint64_t>(begin + ell, col.size());
    T lo = col[begin];
    T hi = col[begin];
    for (uint64_t i = begin + 1; i < end; ++i) {
      lo = std::min(lo, col[i]);
      hi = std::max(hi, col[i]);
    }
    width = std::max(width, bits::BitWidth(static_cast<uint64_t>(hi - lo)));
  }
  return width;
}

template <typename T>
int WidthCoveringFraction(const Column<T>& col, double outlier_fraction) {
  static_assert(std::is_unsigned_v<T>);
  if (col.empty()) return 0;
  uint64_t histogram[65] = {};
  for (const T v : col) ++histogram[bits::BitWidth(static_cast<uint64_t>(v))];
  const uint64_t keep = static_cast<uint64_t>(
      static_cast<double>(col.size()) * (1.0 - outlier_fraction));
  uint64_t covered = 0;
  for (int w = 0; w <= 64; ++w) {
    covered += histogram[w];
    if (covered >= keep) return w;
  }
  return 64;
}

#define RECOMP_INSTANTIATE_STATS(T)                                  \
  template ColumnStats ComputeStats<T>(const Column<T>&);            \
  template int StepResidualWidth<T>(const Column<T>&, uint64_t);     \
  template int WidthCoveringFraction<T>(const Column<T>&, double);

RECOMP_INSTANTIATE_STATS(uint8_t)
RECOMP_INSTANTIATE_STATS(uint16_t)
RECOMP_INSTANTIATE_STATS(uint32_t)
RECOMP_INSTANTIATE_STATS(uint64_t)

#undef RECOMP_INSTANTIATE_STATS

}  // namespace recomp
