// PackedColumn: a column whose values occupy `bit_width` bits each,
// stored bit-contiguously (LSB-first) with no per-block headers.
//
// This is the physical output of the NS (null suppression) scheme. The
// pack/unpack kernels live in ops/pack.h; this header is only the container,
// keeping the columnar layer free of kernel dependencies.

#ifndef RECOMP_COLUMNAR_PACKED_H_
#define RECOMP_COLUMNAR_PACKED_H_

#include <cstdint>
#include <string>

#include "columnar/column.h"
#include "columnar/type.h"

namespace recomp {

/// Bit-packed column payload.
struct PackedColumn {
  /// Bit-contiguous payload, LSB-first within each byte. Padded with zero
  /// bits to the next byte boundary.
  Column<uint8_t> bytes;
  /// Width of each value in bits; 0 encodes "all values are zero".
  int bit_width = 0;
  /// Number of logical values.
  uint64_t n = 0;
  /// The element type values decode to.
  TypeId logical_type = TypeId::kUInt32;

  /// Payload footprint in bytes.
  uint64_t ByteSize() const { return bytes.size(); }

  bool operator==(const PackedColumn& other) const {
    return bit_width == other.bit_width && n == other.n &&
           logical_type == other.logical_type && bytes == other.bytes;
  }

  /// "packed<uint32,w=7>[1024]"
  std::string ToString() const;
};

}  // namespace recomp

#endif  // RECOMP_COLUMNAR_PACKED_H_
