// Physical element types of columns.
//
// The library compresses fixed-width integer columns; the paper's schemes are
// defined over integers (dates, keys, measures, dictionary codes).

#ifndef RECOMP_COLUMNAR_TYPE_H_
#define RECOMP_COLUMNAR_TYPE_H_

#include <cstdint>
#include <string>
#include <type_traits>

namespace recomp {

/// Identifier of a column's physical element type.
enum class TypeId : int {
  kUInt8 = 0,
  kUInt16 = 1,
  kUInt32 = 2,
  kUInt64 = 3,
  kInt8 = 4,
  kInt16 = 5,
  kInt32 = 6,
  kInt64 = 7,
};

/// Number of distinct TypeIds.
inline constexpr int kNumTypeIds = 8;

/// Stable lowercase name, e.g. "uint32".
const char* TypeIdName(TypeId t);

/// Parses the result of TypeIdName; returns false on unknown names.
bool TypeIdFromName(const std::string& name, TypeId* out);

/// Width of the type in bytes.
int TypeIdByteWidth(TypeId t);

/// True for the kUInt* family.
bool TypeIdIsUnsigned(TypeId t);

/// The same-width unsigned counterpart (identity for unsigned types).
TypeId TypeIdToUnsigned(TypeId t);

/// Maps a C++ integer type to its TypeId.
template <typename T>
constexpr TypeId TypeIdOf() {
  static_assert(std::is_integral_v<T> && !std::is_same_v<T, bool>,
                "columns hold fixed-width integers");
  if constexpr (std::is_same_v<T, uint8_t>) return TypeId::kUInt8;
  if constexpr (std::is_same_v<T, uint16_t>) return TypeId::kUInt16;
  if constexpr (std::is_same_v<T, uint32_t>) return TypeId::kUInt32;
  if constexpr (std::is_same_v<T, uint64_t>) return TypeId::kUInt64;
  if constexpr (std::is_same_v<T, int8_t>) return TypeId::kInt8;
  if constexpr (std::is_same_v<T, int16_t>) return TypeId::kInt16;
  if constexpr (std::is_same_v<T, int32_t>) return TypeId::kInt32;
  if constexpr (std::is_same_v<T, int64_t>) return TypeId::kInt64;
}

}  // namespace recomp

#endif  // RECOMP_COLUMNAR_TYPE_H_
