#include "columnar/type.h"

namespace recomp {

const char* TypeIdName(TypeId t) {
  switch (t) {
    case TypeId::kUInt8:
      return "uint8";
    case TypeId::kUInt16:
      return "uint16";
    case TypeId::kUInt32:
      return "uint32";
    case TypeId::kUInt64:
      return "uint64";
    case TypeId::kInt8:
      return "int8";
    case TypeId::kInt16:
      return "int16";
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
  }
  return "?";
}

bool TypeIdFromName(const std::string& name, TypeId* out) {
  for (int i = 0; i < kNumTypeIds; ++i) {
    TypeId t = static_cast<TypeId>(i);
    if (name == TypeIdName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

int TypeIdByteWidth(TypeId t) {
  switch (t) {
    case TypeId::kUInt8:
    case TypeId::kInt8:
      return 1;
    case TypeId::kUInt16:
    case TypeId::kInt16:
      return 2;
    case TypeId::kUInt32:
    case TypeId::kInt32:
      return 4;
    case TypeId::kUInt64:
    case TypeId::kInt64:
      return 8;
  }
  return 0;
}

bool TypeIdIsUnsigned(TypeId t) {
  switch (t) {
    case TypeId::kUInt8:
    case TypeId::kUInt16:
    case TypeId::kUInt32:
    case TypeId::kUInt64:
      return true;
    default:
      return false;
  }
}

TypeId TypeIdToUnsigned(TypeId t) {
  switch (t) {
    case TypeId::kInt8:
      return TypeId::kUInt8;
    case TypeId::kInt16:
      return TypeId::kUInt16;
    case TypeId::kInt32:
      return TypeId::kUInt32;
    case TypeId::kInt64:
      return TypeId::kUInt64;
    default:
      return t;
  }
}

}  // namespace recomp
