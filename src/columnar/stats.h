// Column statistics driving scheme selection and the cost model.
//
// Statistics are computed over *unsigned* columns; the compression pipeline
// normalizes signed inputs with the ZIGZAG primitive before analysis, so the
// analyzer only ever reasons about unsigned data.

#ifndef RECOMP_COLUMNAR_STATS_H_
#define RECOMP_COLUMNAR_STATS_H_

#include <cstdint>

#include "columnar/column.h"

namespace recomp {

/// Summary statistics of one column.
struct ColumnStats {
  uint64_t n = 0;

  uint64_t min = 0;
  uint64_t max = 0;

  /// BitWidth(max): bits for NS without any model.
  int value_bits = 0;
  /// BitWidth(max - min): bits for offsets from a single global reference.
  int range_bits = 0;

  /// Number of maximal runs of equal values (0 for the empty column).
  uint64_t run_count = 0;
  uint64_t max_run_length = 0;
  double avg_run_length = 0.0;

  bool sorted_nondecreasing = false;
  bool strictly_increasing = false;

  /// Exact count of distinct values, capped at kDistinctCap.
  uint64_t distinct = 0;
  bool distinct_capped = false;

  /// max over i>0 of BitWidth(zigzag(v[i] - v[i-1])); 0 when n <= 1.
  /// Predicts the NS width of a ZIGZAG∘DELTA residual.
  int max_delta_zigzag_bits = 0;
  /// Same, with v[-1] := 0 included (the library's DELTA convention).
  int max_delta_zigzag_bits_with_head = 0;

  static constexpr uint64_t kDistinctCap = 1u << 16;
};

/// Computes full statistics in two passes over the column.
template <typename T>
ColumnStats ComputeStats(const Column<T>& col);

/// Max over fixed-length segments of BitWidth(seg_max - seg_min): the NS
/// width a MODELED(STEP(ell)) residual needs. Returns 0 for empty input.
template <typename T>
int StepResidualWidth(const Column<T>& col, uint64_t ell);

/// Width (bits) sufficient for at least (1 - outlier_fraction) of the
/// values; the PATCHED base width that leaves ~outlier_fraction patches.
template <typename T>
int WidthCoveringFraction(const Column<T>& col, double outlier_fraction);

}  // namespace recomp

#endif  // RECOMP_COLUMNAR_STATS_H_
