#include "core/serialize.h"

#include <cstring>

#include "obs/metrics.h"
#include "schemes/scheme_internal.h"
#include "util/string_util.h"

namespace recomp {

namespace {

constexpr char kMagic[4] = {'R', 'C', 'M', 'P'};

/// Envelope traffic counters; `chunks` counts only the chunked format's
/// directory entries (a whole-column buffer is one envelope, zero entries).
void CountSerialized(const char* direction, uint64_t bytes, uint64_t chunks) {
  if (!obs::Enabled()) return;
  obs::Registry& registry = obs::Registry::Get();
  registry.GetCounter(std::string("serialize.bytes_") + direction).Add(bytes);
  registry.GetCounter(std::string("serialize.envelopes_") + direction)
      .Increment();
  if (chunks > 0) {
    registry.GetCounter(std::string("serialize.chunks_") + direction)
        .Add(chunks);
  }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }

  void Raw(const void* data, size_t bytes) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + bytes);
  }

  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

 private:
  std::vector<uint8_t>* out_;
};

void WriteColumn(Writer& w, const AnyColumn& column) {
  if (column.is_packed()) {
    const PackedColumn& packed = column.packed();
    w.U8(1);
    w.U8(static_cast<uint8_t>(packed.logical_type));
    w.U16(static_cast<uint16_t>(packed.bit_width));
    w.U64(packed.n);
    w.U64(packed.bytes.size());
    w.Raw(packed.bytes.data(), packed.bytes.size());
    return;
  }
  w.U8(0);
  w.U8(static_cast<uint8_t>(column.type()));
  w.U64(column.size());
  column.VisitPlain([&](const auto& col) {
    w.Raw(col.data(), col.size() * sizeof(typename std::decay_t<
                                          decltype(col)>::value_type));
  });
}

void WriteNode(Writer& w, const CompressedNode& node) {
  w.String(node.scheme.ToString());
  w.U64(node.n);
  w.U8(static_cast<uint8_t>(node.out_type));
  w.U32(static_cast<uint32_t>(node.parts.size()));
  for (const auto& [name, part] : node.parts) {
    w.String(name);
    if (part.is_terminal()) {
      w.U8(0);
      WriteColumn(w, *part.column);
    } else {
      w.U8(1);
      WriteNode(w, *part.sub);
    }
  }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over a byte range. Constructible from a sub-range
/// so independent chunk payloads can be parsed by independent readers (the
/// parallel-deserialization unit).
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& in)
      : Reader(in.data(), in.size()) {}
  Reader(const uint8_t* data, uint64_t size) : data_(data), size_(size) {}

  Result<uint8_t> U8() {
    RECOMP_RETURN_NOT_OK(Need(1));
    return data_[pos_++];
  }
  Result<uint16_t> U16() { return Fixed<uint16_t>(); }
  Result<uint32_t> U32() { return Fixed<uint32_t>(); }
  Result<uint64_t> U64() { return Fixed<uint64_t>(); }

  Result<std::string> String() {
    RECOMP_ASSIGN_OR_RETURN(uint32_t len, U32());
    RECOMP_RETURN_NOT_OK(Need(len));
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  Status ReadRaw(void* out, uint64_t bytes) {
    RECOMP_RETURN_NOT_OK(Need(bytes));
    std::memcpy(out, data_ + pos_, bytes);
    pos_ += bytes;
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == size_; }

  uint64_t Position() const { return pos_; }

  Status Need(uint64_t bytes) const {
    if (size_ - pos_ < bytes) {
      return Status::Corruption(StringFormat(
          "buffer truncated: need %llu bytes at offset %zu",
          static_cast<unsigned long long>(bytes), static_cast<size_t>(pos_)));
    }
    return Status::OK();
  }

 private:
  template <typename T>
  Result<T> Fixed() {
    RECOMP_RETURN_NOT_OK(Need(sizeof(T)));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  uint64_t size_;
  uint64_t pos_ = 0;
};

Result<TypeId> ReadTypeId(Reader& r) {
  RECOMP_ASSIGN_OR_RETURN(uint8_t raw, r.U8());
  if (raw >= kNumTypeIds) {
    return Status::Corruption(StringFormat("unknown type id %u", raw));
  }
  return static_cast<TypeId>(raw);
}

Result<AnyColumn> ReadColumn(Reader& r) {
  RECOMP_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
  if (kind == 1) {
    PackedColumn packed;
    RECOMP_ASSIGN_OR_RETURN(packed.logical_type, ReadTypeId(r));
    RECOMP_ASSIGN_OR_RETURN(uint16_t width, r.U16());
    if (width > 64) {
      return Status::Corruption("packed width exceeds 64 bits");
    }
    packed.bit_width = width;
    RECOMP_ASSIGN_OR_RETURN(packed.n, r.U64());
    RECOMP_ASSIGN_OR_RETURN(uint64_t byte_count, r.U64());
    RECOMP_RETURN_NOT_OK(r.Need(byte_count));
    packed.bytes.resize(byte_count);
    RECOMP_RETURN_NOT_OK(r.ReadRaw(packed.bytes.data(), byte_count));
    return AnyColumn(std::move(packed));
  }
  if (kind != 0) {
    return Status::Corruption("unknown column kind tag");
  }
  RECOMP_ASSIGN_OR_RETURN(TypeId type, ReadTypeId(r));
  RECOMP_ASSIGN_OR_RETURN(uint64_t rows, r.U64());
  if (rows > (uint64_t{1} << 40)) {
    // Reject before any multiplication can wrap or any allocation is tried.
    return Status::Corruption("implausible row count");
  }
  return internal::DispatchAnyTypeId(type, [&](auto tag) -> Result<AnyColumn> {
    using T = typename decltype(tag)::type;
    const uint64_t bytes = rows * sizeof(T);
    RECOMP_RETURN_NOT_OK(r.Need(bytes));
    Column<T> col(rows);
    RECOMP_RETURN_NOT_OK(r.ReadRaw(col.data(), bytes));
    return AnyColumn(std::move(col));
  });
}

Result<CompressedNode> ReadNode(Reader& r, int depth) {
  if (depth > 64) {
    return Status::Corruption("envelope nesting exceeds 64 levels");
  }
  CompressedNode node;
  RECOMP_ASSIGN_OR_RETURN(std::string descriptor, r.String());
  RECOMP_ASSIGN_OR_RETURN(node.scheme, SchemeDescriptor::Parse(descriptor));
  if (!node.scheme.children.empty()) {
    return Status::Corruption(
        "node descriptor must not carry children (structure is in parts)");
  }
  RECOMP_ASSIGN_OR_RETURN(node.n, r.U64());
  RECOMP_ASSIGN_OR_RETURN(node.out_type, ReadTypeId(r));
  RECOMP_ASSIGN_OR_RETURN(uint32_t part_count, r.U32());
  if (part_count > 16) {
    return Status::Corruption("implausible part count");
  }
  for (uint32_t i = 0; i < part_count; ++i) {
    RECOMP_ASSIGN_OR_RETURN(std::string name, r.String());
    if (name.empty() || node.parts.count(name) != 0) {
      return Status::Corruption("empty or duplicate part name");
    }
    RECOMP_ASSIGN_OR_RETURN(uint8_t tag, r.U8());
    CompressedPart part;
    if (tag == 0) {
      RECOMP_ASSIGN_OR_RETURN(AnyColumn column, ReadColumn(r));
      part.column = std::move(column);
    } else if (tag == 1) {
      RECOMP_ASSIGN_OR_RETURN(CompressedNode sub, ReadNode(r, depth + 1));
      part.sub = std::make_unique<CompressedNode>(std::move(sub));
    } else {
      return Status::Corruption("unknown part tag");
    }
    node.parts.emplace(std::move(name), std::move(part));
  }
  return node;
}

uint64_t ColumnSerializedSize(const AnyColumn& column) {
  if (column.is_packed()) {
    return 1 + 1 + 2 + 8 + 8 + column.packed().bytes.size();
  }
  return 1 + 1 + 8 + column.ByteSize();
}

uint64_t NodeSerializedSize(const CompressedNode& node) {
  uint64_t size = 4 + node.scheme.ToString().size() + 8 + 1 + 4;
  for (const auto& [name, part] : node.parts) {
    size += 4 + name.size() + 1;
    size += part.is_terminal() ? ColumnSerializedSize(*part.column)
                               : NodeSerializedSize(*part.sub);
  }
  return size;
}

/// Fixed byte size of one v2 chunk-directory entry.
constexpr uint64_t kDirectoryEntrySize = 8 + 8 + 1 + 8 + 8 + 8;

}  // namespace

Result<std::vector<uint8_t>> Serialize(const CompressedColumn& compressed) {
  std::vector<uint8_t> out;
  out.reserve(SerializedSize(compressed));
  Writer w(&out);
  w.Raw(kMagic, 4);
  w.U16(kSerializedVersion);
  WriteNode(w, compressed.root());
  CountSerialized("written", out.size(), 0);
  return out;
}

Result<std::vector<uint8_t>> Serialize(const ChunkedCompressedColumn& chunked) {
  if (chunked.num_chunks() > (uint64_t{1} << 24)) {
    // Stay within what DeserializeChunked accepts: the writer must never
    // produce a buffer its own reader refuses.
    return Status::InvalidArgument("too many chunks to serialize (> 2^24)");
  }
  std::vector<uint8_t> out;
  out.reserve(SerializedSize(chunked));
  Writer w(&out);
  w.Raw(kMagic, 4);
  w.U16(kSerializedVersionChunked);
  w.U8(static_cast<uint8_t>(chunked.type()));
  w.U64(chunked.size());
  w.U32(static_cast<uint32_t>(chunked.num_chunks()));
  for (const auto& chunk : chunked.chunks()) {
    w.U64(chunk->zone.row_begin);
    w.U64(chunk->zone.row_count);
    w.U8(chunk->zone.has_minmax ? 1 : 0);
    w.U64(chunk->zone.min);
    w.U64(chunk->zone.max);
    w.U64(NodeSerializedSize(chunk->column.root()));
  }
  for (const auto& chunk : chunked.chunks()) {
    WriteNode(w, chunk->column.root());
  }
  CountSerialized("written", out.size(), chunked.num_chunks());
  return out;
}

Result<CompressedColumn> Deserialize(const std::vector<uint8_t>& buffer) {
  Reader r(buffer);
  char magic[4];
  RECOMP_RETURN_NOT_OK(r.ReadRaw(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad magic: not a recomp buffer");
  }
  RECOMP_ASSIGN_OR_RETURN(uint16_t version, r.U16());
  if (version != kSerializedVersion) {
    return Status::Corruption(
        StringFormat("unsupported version %u", version));
  }
  RECOMP_ASSIGN_OR_RETURN(CompressedNode root, ReadNode(r, 0));
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after envelope");
  }
  CountSerialized("read", buffer.size(), 0);
  return CompressedColumn(std::move(root));
}

Result<ChunkedCompressedColumn> DeserializeChunked(
    const std::vector<uint8_t>& buffer, const ExecContext& ctx) {
  Reader r(buffer);
  char magic[4];
  RECOMP_RETURN_NOT_OK(r.ReadRaw(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad magic: not a recomp buffer");
  }
  RECOMP_ASSIGN_OR_RETURN(uint16_t version, r.U16());
  if (version == kSerializedVersion) {
    // A whole-column buffer is the single-chunk special case.
    RECOMP_ASSIGN_OR_RETURN(CompressedNode root, ReadNode(r, 0));
    if (!r.AtEnd()) {
      return Status::Corruption("trailing bytes after envelope");
    }
    CountSerialized("read", buffer.size(), 0);
    return ChunkedCompressedColumn::FromSingle(
        CompressedColumn(std::move(root)));
  }
  if (version != kSerializedVersionChunked) {
    return Status::Corruption(
        StringFormat("unsupported version %u", version));
  }
  RECOMP_ASSIGN_OR_RETURN(TypeId type, ReadTypeId(r));
  RECOMP_ASSIGN_OR_RETURN(uint64_t total_rows, r.U64());
  RECOMP_ASSIGN_OR_RETURN(uint32_t chunk_count, r.U32());
  if (chunk_count > (uint32_t{1} << 24)) {
    return Status::Corruption("implausible chunk count");
  }
  if (chunk_count == 0) {
    // The writer always emits at least one chunk (an empty column is one
    // empty chunk), so an empty directory — with or without claimed rows —
    // is a buffer no Serialize ever produced.
    return Status::Corruption("empty chunk directory");
  }
  // The directory must fit in what remains before any entry is trusted.
  RECOMP_RETURN_NOT_OK(r.Need(chunk_count * kDirectoryEntrySize));
  std::vector<ZoneMap> zones(chunk_count);
  std::vector<uint64_t> node_bytes(chunk_count);
  uint64_t expected_row_begin = 0;
  for (uint32_t i = 0; i < chunk_count; ++i) {
    RECOMP_ASSIGN_OR_RETURN(zones[i].row_begin, r.U64());
    RECOMP_ASSIGN_OR_RETURN(zones[i].row_count, r.U64());
    // Chunks must tile [0, total_rows) in order: a row_begin below the
    // running total is an overlap, above it a gap, either way corrupt.
    if (zones[i].row_begin != expected_row_begin) {
      return Status::Corruption(StringFormat(
          "chunk %u starts at row %llu, expected %llu (directory not "
          "contiguous)",
          i, static_cast<unsigned long long>(zones[i].row_begin),
          static_cast<unsigned long long>(expected_row_begin)));
    }
    if (zones[i].row_count > ~uint64_t{0} - expected_row_begin) {
      return Status::Corruption("chunk row counts overflow");
    }
    expected_row_begin += zones[i].row_count;
    RECOMP_ASSIGN_OR_RETURN(uint8_t has_minmax, r.U8());
    if (has_minmax > 1) {
      return Status::Corruption("zone map flag must be 0 or 1");
    }
    zones[i].has_minmax = has_minmax == 1;
    RECOMP_ASSIGN_OR_RETURN(zones[i].min, r.U64());
    RECOMP_ASSIGN_OR_RETURN(zones[i].max, r.U64());
    if (zones[i].has_minmax && zones[i].min > zones[i].max) {
      return Status::Corruption("zone map min exceeds max");
    }
    RECOMP_ASSIGN_OR_RETURN(node_bytes[i], r.U64());
  }
  if (expected_row_begin != total_rows) {
    return Status::Corruption("directory row counts disagree with the header");
  }
  // Every chunk payload must lie inside the buffer before any is parsed:
  // reject node_bytes offsets that run past the end (or overflow the sum).
  uint64_t payload_bytes = 0;
  std::vector<uint64_t> offsets(chunk_count);
  for (uint32_t i = 0; i < chunk_count; ++i) {
    offsets[i] = payload_bytes;
    if (node_bytes[i] > ~uint64_t{0} - payload_bytes) {
      return Status::Corruption("chunk payload lengths overflow");
    }
    payload_bytes += node_bytes[i];
  }
  RECOMP_RETURN_NOT_OK(r.Need(payload_bytes));
  // The validated directory pins each payload's offset and length, so every
  // chunk parses from its own bounded sub-reader — independently, fanned out
  // over ctx's pool into pre-sized slots. VisitIndicesInto reports the first
  // failing chunk in index order, exactly as a sequential loop would.
  const uint8_t* payloads = buffer.data() + r.Position();
  std::vector<std::shared_ptr<const CompressedChunk>> slots;
  RECOMP_RETURN_NOT_OK(VisitIndicesInto(
      ctx, chunk_count, &slots,
      [&](uint64_t i) -> Result<std::shared_ptr<const CompressedChunk>> {
        Reader chunk_reader(payloads + offsets[i], node_bytes[i]);
        RECOMP_ASSIGN_OR_RETURN(CompressedNode root, ReadNode(chunk_reader, 0));
        if (!chunk_reader.AtEnd()) {
          return Status::Corruption(
              "chunk payload length disagrees with the directory");
        }
        if (root.n != zones[i].row_count) {
          return Status::Corruption(
              "chunk row count disagrees with the directory");
        }
        if (root.out_type != type) {
          return Status::Corruption("chunk type disagrees with the header");
        }
        CompressedChunk chunk;
        chunk.zone = zones[i];
        chunk.column = CompressedColumn(std::move(root));
        return std::make_shared<const CompressedChunk>(std::move(chunk));
      }));
  ChunkedCompressedColumn out;
  for (uint32_t i = 0; i < chunk_count; ++i) {
    RECOMP_RETURN_NOT_OK(out.AppendChunk(std::move(slots[i])));
  }
  if (r.Position() + payload_bytes != buffer.size()) {
    return Status::Corruption("trailing bytes after envelope");
  }
  if (out.size() != total_rows) {
    return Status::Corruption("total row count disagrees with the header");
  }
  CountSerialized("read", buffer.size(), chunk_count);
  return out;
}

uint64_t SerializedSize(const CompressedColumn& compressed) {
  return 4 + 2 + NodeSerializedSize(compressed.root());
}

uint64_t SerializedSize(const ChunkedCompressedColumn& chunked) {
  uint64_t size = 4 + 2 + 1 + 8 + 4;
  for (const auto& chunk : chunked.chunks()) {
    size += kDirectoryEntrySize + NodeSerializedSize(chunk->column.root());
  }
  return size;
}

}  // namespace recomp
