#include "core/chunked.h"

#include <algorithm>

#include "core/fused.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "schemes/scheme_internal.h"
#include "util/string_util.h"

namespace recomp {

ZoneMap ComputeZoneMap(const AnyColumn& slice, uint64_t row_begin) {
  ZoneMap zone;
  zone.row_begin = row_begin;
  zone.row_count = slice.size();
  if (slice.size() == 0) return zone;
  const Status status = internal::DispatchUnsignedColumn(
      slice, [&](const auto& col) -> Status {
        const auto [lo, hi] = std::minmax_element(col.begin(), col.end());
        zone.has_minmax = true;
        zone.min = static_cast<uint64_t>(*lo);
        zone.max = static_cast<uint64_t>(*hi);
        return Status::OK();
      });
  (void)status;
  return zone;
}

uint64_t ChunkedCompressedColumn::PayloadBytes() const {
  uint64_t total = 0;
  for (const auto& chunk : chunks_) {
    total += chunk->column.PayloadBytes();
  }
  return total;
}

double ChunkedCompressedColumn::Ratio() const {
  const uint64_t payload = PayloadBytes();
  if (payload == 0) return 0.0;
  return static_cast<double>(UncompressedBytes()) /
         static_cast<double>(payload);
}

uint64_t ChunkedCompressedColumn::ChunkIndexOf(uint64_t row) const {
  RECOMP_DCHECK(row < n_, "ChunkIndexOf past the end of the column");
  // Last chunk whose row_begin <= row.
  const auto it = std::upper_bound(
      chunks_.begin(), chunks_.end(), row,
      [](uint64_t r, const std::shared_ptr<const CompressedChunk>& c) {
        return r < c->zone.row_begin;
      });
  return static_cast<uint64_t>(it - chunks_.begin()) - 1;
}

ChunkedCompressedColumn ChunkedCompressedColumn::FromSingle(
    CompressedColumn column) {
  ChunkedCompressedColumn out;
  CompressedChunk chunk;
  chunk.zone.row_begin = 0;
  chunk.zone.row_count = column.size();
  chunk.column = std::move(column);
  out.type_ = chunk.column.type();
  out.n_ = chunk.zone.row_count;
  out.chunks_.push_back(
      std::make_shared<const CompressedChunk>(std::move(chunk)));
  return out;
}

Status ChunkedCompressedColumn::AppendChunk(CompressedChunk chunk) {
  return AppendChunk(std::make_shared<const CompressedChunk>(std::move(chunk)));
}

Status ChunkedCompressedColumn::AppendChunk(
    std::shared_ptr<const CompressedChunk> shared) {
  const CompressedChunk& chunk = *shared;
  if (chunk.zone.row_begin != n_) {
    return Status::InvalidArgument(StringFormat(
        "chunk starts at row %llu, expected %llu",
        static_cast<unsigned long long>(chunk.zone.row_begin),
        static_cast<unsigned long long>(n_)));
  }
  if (chunk.zone.row_count != chunk.column.size()) {
    return Status::InvalidArgument(
        "chunk zone map row count disagrees with its envelope");
  }
  if (chunks_.empty()) {
    type_ = chunk.column.type();
  } else if (chunk.column.type() != type_) {
    return Status::InvalidArgument(StringFormat(
        "chunk type %s differs from column type %s",
        TypeIdName(chunk.column.type()), TypeIdName(type_)));
  }
  n_ += chunk.zone.row_count;
  chunks_.push_back(std::move(shared));
  return Status::OK();
}

std::string ChunkedCompressedColumn::ToString() const {
  std::string out = StringFormat(
      "chunked %s n=%llu chunks=%zu (%s, %.2fx)\n", TypeIdName(type_),
      static_cast<unsigned long long>(n_), chunks_.size(),
      HumanBytes(PayloadBytes()).c_str(), Ratio());
  for (size_t i = 0; i < chunks_.size(); ++i) {
    const CompressedChunk& chunk = *chunks_[i];
    out += StringFormat(
        "  [%zu] rows [%llu, %llu) %s", i,
        static_cast<unsigned long long>(chunk.zone.row_begin),
        static_cast<unsigned long long>(chunk.zone.row_begin +
                                        chunk.zone.row_count),
        chunk.column.Descriptor().ToString().c_str());
    if (chunk.zone.has_minmax) {
      out += StringFormat(" zone=[%llu, %llu]",
                          static_cast<unsigned long long>(chunk.zone.min),
                          static_cast<unsigned long long>(chunk.zone.max));
    }
    out += StringFormat(" (%s)\n",
                        HumanBytes(chunk.column.PayloadBytes()).c_str());
  }
  return out;
}

namespace {

/// Shared shape of CompressChunked / CompressChunkedAuto: validate, fan the
/// chunk indices out over `ctx` into pre-sized slots (so workers never
/// contend), compress each slice with the descriptor `choose` picks for it,
/// then assemble in chunk order.
template <typename ChooseFn>
Result<ChunkedCompressedColumn> CompressChunkedImpl(
    const AnyColumn& input, const ChunkingOptions& options,
    const ExecContext& ctx, const ChooseFn& choose) {
  if (options.chunk_rows == 0) {
    return Status::InvalidArgument("chunk_rows must be positive");
  }
  if (input.is_packed()) {
    return Status::InvalidArgument(
        "chunked compression requires a plain column");
  }
  const uint64_t n = input.size();
  // An empty input still yields one empty chunk so the result is well-typed.
  const uint64_t num_chunks =
      n == 0 ? 1 : (n + options.chunk_rows - 1) / options.chunk_rows;
  std::vector<CompressedChunk> slots;
  RECOMP_RETURN_NOT_OK(VisitIndicesInto(
      ctx, num_chunks, &slots, [&](uint64_t i) -> Result<CompressedChunk> {
        const uint64_t begin = i * options.chunk_rows;
        const uint64_t end = std::min<uint64_t>(n, begin + options.chunk_rows);
        RECOMP_ASSIGN_OR_RETURN(AnyColumn slice, SliceRows(input, begin, end));
        RECOMP_ASSIGN_OR_RETURN(SchemeDescriptor desc, choose(slice));
        CompressedChunk chunk;
        chunk.zone = ComputeZoneMap(slice, begin);
        RECOMP_ASSIGN_OR_RETURN(chunk.column, Compress(slice, desc));
        return chunk;
      }));
  ChunkedCompressedColumn out;
  for (CompressedChunk& slot : slots) {
    RECOMP_RETURN_NOT_OK(out.AppendChunk(std::move(slot)));
  }
  return out;
}

}  // namespace

Result<ChunkedCompressedColumn> CompressChunked(const AnyColumn& input,
                                                const SchemeDescriptor& desc,
                                                const ChunkingOptions& options,
                                                const ExecContext& ctx) {
  return CompressChunkedImpl(
      input, options, ctx,
      [&](const AnyColumn&) -> Result<SchemeDescriptor> { return desc; });
}

Result<ChunkedCompressedColumn> CompressChunkedAuto(
    const AnyColumn& input, const ChunkingOptions& options,
    const AnalyzerOptions& analyzer_options, const ExecContext& ctx) {
  // Slice each chunk once and both analyze and compress it, instead of
  // going through ChooseSchemesChunked (which would slice everything a
  // second time just to return descriptors).
  Result<ChunkedCompressedColumn> out = CompressChunkedImpl(
      input, options, ctx,
      [&](const AnyColumn& slice) -> Result<SchemeDescriptor> {
        return ChooseScheme(slice, analyzer_options);
      });
  if (out.ok() && obs::Enabled()) {
    // The realized counterpart of analyzer.estimated_bytes (ChooseScheme):
    // the two drifting apart is the cost model lying.
    static obs::Counter& actual =
        obs::Registry::Get().GetCounter("analyzer.actual_bytes");
    actual.Add(out->PayloadBytes());
  }
  return out;
}

Result<AnyColumn> DecompressChunked(const ChunkedCompressedColumn& chunked,
                                    const ExecContext& ctx) {
  return internal::DispatchAnyTypeId(
      chunked.type(), [&](auto tag) -> Result<AnyColumn> {
        using T = typename decltype(tag)::type;
        // Pre-sized output: every chunk owns the disjoint slice starting at
        // its row_begin, so workers never overlap.
        Column<T> out(chunked.size());
        RECOMP_RETURN_NOT_OK(ParallelForOk(
            ctx, chunked.num_chunks(), [&](uint64_t i) -> Status {
              const CompressedChunk& chunk = chunked.chunk(i);
              RECOMP_ASSIGN_OR_RETURN(AnyColumn part,
                                      FusedDecompress(chunk.column));
              if (part.is_packed() || part.type() != chunked.type()) {
                return Status::Corruption(
                    "chunk decompressed to an unexpected type");
              }
              const Column<T>& values = part.As<T>();
              if (values.size() != chunk.zone.row_count) {
                return Status::Corruption(
                    "chunk decompressed to an unexpected row count");
              }
              std::copy(values.begin(), values.end(),
                        out.begin() + chunk.zone.row_begin);
              return Status::OK();
            }));
        return AnyColumn(std::move(out));
      });
}

}  // namespace recomp
