// A coarse decompression-cost model over descriptors.
//
// The paper's decomposition axis trades compression ratio against
// decompression effort; to search that axis the analyzer needs a price for
// "effort". We charge abstract operator applications per output value:
// every node costs its kind's weight, and work on run-level parts (below
// RPE's values/positions) amortizes by the average run length.

#ifndef RECOMP_CORE_COST_MODEL_H_
#define RECOMP_CORE_COST_MODEL_H_

#include "columnar/stats.h"
#include "core/descriptor.h"

namespace recomp {

enum class FusedShape : int;

/// Relative per-value cost of one application of `kind`'s decompression
/// operator(s). Unitless; calibrated so NS == 1, measured against the
/// materializing per-scheme recursion.
double SchemeKindUnitCost(SchemeKind kind);

/// Multiplier (<= 1) applied to a composite's summed operator cost when its
/// shape decodes through a fused single-pass kernel (core/fused.h): the
/// cascade touches each output value once regardless of plan depth, so the
/// per-operator charges overstate its real price.
double FusedShapeDiscount(FusedShape shape);

/// Estimated decompression cost per output value for the composite `desc`
/// on a column with statistics `stats`.
double EstimateDecompressionCost(const SchemeDescriptor& desc,
                                 const ColumnStats& stats);

}  // namespace recomp

#endif  // RECOMP_CORE_COST_MODEL_H_
