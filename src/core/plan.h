// The decompression plan IR.
//
// The paper's central observation is that decompression *is* a plan of
// ordinary columnar operators (its Algorithms 1 and 2). This IR makes such
// plans first-class: a Plan is a topologically ordered DAG of operator
// nodes over the "pure columns" of a compressed envelope. Plans are built
// from envelopes (plan_builder.h), optionally rewritten by fusion passes
// (plan_optimizer.h), interpreted (plan_executor.h), and rendered as
// paper-style listings for inspection.

#ifndef RECOMP_CORE_PLAN_H_
#define RECOMP_CORE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/type.h"
#include "ops/elementwise.h"
#include "util/status.h"

namespace recomp {

/// The operator vocabulary. The first group is the paper's §II vocabulary;
/// the second group contains decode operators for recodings (NS, ZIGZAG,
/// VBYTE) and model evaluation; the third group exists only as fusion
/// targets of the plan optimizer.
enum class PlanOpKind : int {
  // -- paper §II columnar operators --
  kInput = 0,             ///< A terminal part column of the envelope.
  kPrefixSumInclusive,    ///< The paper's PrefixSum.
  kPrefixSumExclusive,    ///< 0-based variant (Algorithm 2's id column).
  kPopBack,               ///< Drop the last element.
  kConstant,              ///< Constant(value, |inputs[0]|) or (value, imm2).
  kScatter,               ///< Scatter(values, indices) into target column.
  kGather,                ///< Gather(values, indices).
  kElementwise,           ///< Elementwise(bin_op, a, b).
  // -- decode / evaluation operators --
  kUnpack,                ///< NS decode: packed column -> plain column.
  kZigZagDecode,          ///< ZIGZAG decode to type_param.
  kVByteDecode,           ///< VBYTE decode: u8 stream -> imm2 values.
  kEvalPlin,              ///< Piecewise-linear model evaluation (bases, slopes).
  // -- optimizer fusion targets --
  kElementwiseScalar,     ///< Elementwise with an immediate operand.
  kIota,                  ///< 0.. or 1.. sequence (fused Constant+PrefixSum).
  kScatterConst,          ///< Scatter an immediate into fresh zeros.
  kReplicate,             ///< Segment replication (fused Iota+Div+Gather).
};

/// Stable name, e.g. "PrefixSum".
const char* PlanOpKindName(PlanOpKind kind);

/// One operator application. Operands reference earlier nodes by index.
struct PlanNode {
  PlanOpKind op = PlanOpKind::kInput;
  /// Indices of operand nodes (all < this node's index).
  std::vector<int> inputs;

  /// Immediate operand: Constant/ScatterConst value, scalar operand,
  /// Iota start, Replicate/EvalPlin segment length.
  uint64_t imm = 0;
  /// Secondary immediate: explicit output length where no operand's length
  /// applies (Constant, ScatterConst, VByteDecode, Iota, EvalPlin).
  uint64_t imm2 = 0;
  /// Binary operation for kElementwise / kElementwiseScalar.
  ops::BinOp bin_op = ops::BinOp::kAdd;
  /// Output element type for kConstant / kZigZagDecode / kVByteDecode /
  /// kIota (index-producing ops default to uint32).
  TypeId type_param = TypeId::kUInt32;

  /// For kInput: slash-separated path of the part inside the envelope,
  /// e.g. "positions/deltas".
  std::string input_path;
  /// Human-readable slot name used by ToString (mirrors the paper's
  /// variable names, e.g. "run_positions'").
  std::string label;
};

/// A decompression plan: nodes in topological order; the last node is the
/// output column.
struct Plan {
  std::vector<PlanNode> nodes;

  /// Number of non-input operator applications (the paper counts these).
  uint64_t OperatorCount() const;

  /// Paper-style listing, one numbered line per node, e.g.
  ///   1: run_positions <- PrefixSum(lengths)
  std::string ToString() const;

  /// Structural sanity: operand indices in range and acyclic by
  /// construction, exactly one output.
  Status Validate() const;
};

}  // namespace recomp

#endif  // RECOMP_CORE_PLAN_H_
