// The composition pipeline: compress/decompress a column through an
// arbitrary SchemeDescriptor expression.
//
// Compression applies the node's primitive scheme, then recursively
// compresses every part named in `children`; decompression reverses the
// recursion bottom-up using each scheme's fused kernel. (The alternative,
// paper-faithful operator-plan strategy lives in core/plan_builder.h.)
//
// Compress/Decompress operate on one whole column — the single-chunk special
// case of the segment-at-a-time envelope in core/chunked.h, which splits a
// column into fixed-capacity chunks and applies these same functions per
// chunk (optionally with a different descriptor each).

#ifndef RECOMP_CORE_PIPELINE_H_
#define RECOMP_CORE_PIPELINE_H_

#include "columnar/any_column.h"
#include "core/compressed.h"
#include "core/descriptor.h"
#include "util/result.h"

namespace recomp {

/// Compresses `input` (a plain column) with the composite `desc`.
/// Auto parameters are resolved and recorded in the returned envelope.
Result<CompressedColumn> Compress(const AnyColumn& input,
                                  const SchemeDescriptor& desc);

/// Reverses Compress using the schemes' fused kernels.
Result<AnyColumn> Decompress(const CompressedColumn& compressed);

/// Node-level recursion steps (exposed for the rewrite engine and tests).
Result<CompressedNode> CompressNode(const AnyColumn& input,
                                    const SchemeDescriptor& desc);
Result<AnyColumn> DecompressNode(const CompressedNode& node);

}  // namespace recomp

#endif  // RECOMP_CORE_PIPELINE_H_
