// Chunked compressed columns: the segment-at-a-time envelope.
//
// A column is split into fixed-capacity chunks (ChunkingOptions, default
// 64Ki rows), each chunk independently compressed — with one shared
// descriptor (CompressChunked) or a per-chunk descriptor chosen by the
// analyzer (CompressChunkedAuto), so drifting columns stop paying for a
// single whole-column choice. Every chunk carries a zone map (min/max/count
// from columnar/stats) that the exec layer consults to prune whole chunks
// before dispatching any per-chunk strategy.
//
// Independent chunks are also the unit of work everything later
// parallelizes over (scan, append, streaming ingest); a whole-column
// CompressedColumn is exactly the single-chunk special case of this
// envelope (see FromSingle, and CompressChunked with chunk_rows >= n).

#ifndef RECOMP_CORE_CHUNKED_H_
#define RECOMP_CORE_CHUNKED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "columnar/any_column.h"
#include "core/analyzer.h"
#include "core/compressed.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace recomp {

/// How a column is split into chunks.
struct ChunkingOptions {
  /// Capacity of each chunk in rows; the last chunk may be shorter.
  /// Must be positive.
  uint64_t chunk_rows = 64 * 1024;
};

/// Zone map of one chunk: the summary consulted before any payload byte is
/// touched. min/max are valid only when has_minmax is set (nonempty unsigned
/// chunks); chunks without min/max are never pruned, only executed.
struct ZoneMap {
  uint64_t row_begin = 0;
  uint64_t row_count = 0;
  bool has_minmax = false;
  uint64_t min = 0;
  uint64_t max = 0;

  /// True iff no chunk value can fall inside [lo, hi]: skip the chunk.
  bool DisjointFrom(uint64_t lo, uint64_t hi) const {
    return has_minmax && (max < lo || min > hi);
  }

  /// True iff every chunk value falls inside [lo, hi]: emit without decode.
  bool ContainedIn(uint64_t lo, uint64_t hi) const {
    return has_minmax && min >= lo && max <= hi;
  }
};

/// One independently compressed chunk plus its zone map.
struct CompressedChunk {
  ZoneMap zone;
  CompressedColumn column;
};

/// Zone map of a plain slice starting at `row_begin`: one min/max pass
/// (cheap enough for the streaming store to run at tail-roll time, under
/// its column lock). Signed slices get a count-only zone map — the chunked
/// exec operators reject signed columns anyway, matching the whole-column
/// operators.
ZoneMap ComputeZoneMap(const AnyColumn& slice, uint64_t row_begin);

/// A column stored as a sequence of contiguous, independently compressed
/// chunks. Chunks may use different descriptors; the logical column is their
/// concatenation in order.
///
/// Chunks are held by shared, immutable reference: copying the envelope
/// shares the chunk payloads instead of cloning them, so a copy is O(chunks)
/// — the copy-on-write property the streaming store's snapshots build on
/// (store/appendable_column.h). A chunk must never be mutated once appended.
class ChunkedCompressedColumn {
 public:
  ChunkedCompressedColumn() = default;

  /// Total logical row count.
  uint64_t size() const { return n_; }

  /// Element type of the decompressed column.
  TypeId type() const { return type_; }

  uint64_t num_chunks() const { return chunks_.size(); }
  const CompressedChunk& chunk(uint64_t i) const { return *chunks_[i]; }
  const std::vector<std::shared_ptr<const CompressedChunk>>& chunks() const {
    return chunks_;
  }

  /// Footprint of the uncompressed column.
  uint64_t UncompressedBytes() const {
    return n_ * static_cast<uint64_t>(TypeIdByteWidth(type_));
  }

  /// Sum of all chunks' terminal part payloads.
  uint64_t PayloadBytes() const;

  /// UncompressedBytes / PayloadBytes; 0 for empty payloads.
  double Ratio() const;

  /// Index of the chunk containing `row`. Requires row < size().
  uint64_t ChunkIndexOf(uint64_t row) const;

  /// Wraps an existing whole-column envelope as a single chunk. The zone map
  /// records the row count only (no min/max, so nothing is ever pruned);
  /// CompressChunked computes real zone maps because it sees the plain data.
  static ChunkedCompressedColumn FromSingle(CompressedColumn column);

  /// Appends a chunk. Validates contiguity (zone.row_begin == size()),
  /// agreement of zone.row_count with the envelope, and type consistency
  /// with earlier chunks.
  Status AppendChunk(CompressedChunk chunk);

  /// Appends an already-shared chunk without copying its payload — the
  /// snapshot path: a live column and every snapshot of it share sealed
  /// chunks. Same validation as AppendChunk; the chunk must stay immutable.
  Status AppendChunk(std::shared_ptr<const CompressedChunk> chunk);

  /// Per-chunk summary: descriptor, rows, zone bounds, footprint.
  std::string ToString() const;

 private:
  uint64_t n_ = 0;
  TypeId type_ = TypeId::kUInt32;
  std::vector<std::shared_ptr<const CompressedChunk>> chunks_;
};

/// The shared fan-out scaffold of the chunked visitors (compression,
/// deserialization, the exec scan): runs fn(i) for every i in [0, n) —
/// concurrently under `ctx`, each result landing in its own pre-sized slot
/// (*slots)[i] — and returns the first error in index order, exactly the
/// error a sequential loop would surface. Callers merge the slots in index
/// order afterwards, which keeps results bit-identical to the sequential
/// path for any thread count.
template <typename Slot, typename Fn>
Status VisitIndicesInto(const ExecContext& ctx, uint64_t n,
                        std::vector<Slot>* slots, const Fn& fn) {
  slots->clear();
  slots->resize(n);
  return ParallelForOk(ctx, n, [&](uint64_t i) -> Status {
    RECOMP_ASSIGN_OR_RETURN((*slots)[i], fn(i));
    return Status::OK();
  });
}

/// Sparse form: visits only `indices` (e.g. the chunks a zone map could not
/// answer), slot t holding fn(indices[t]).
template <typename Slot, typename Fn>
Status VisitIndicesInto(const ExecContext& ctx,
                        const std::vector<uint64_t>& indices,
                        std::vector<Slot>* slots, const Fn& fn) {
  return VisitIndicesInto(ctx, static_cast<uint64_t>(indices.size()), slots,
                          [&](uint64_t t) { return fn(indices[t]); });
}

/// Compresses `input` (a plain column) chunk-at-a-time, every chunk with the
/// same composite `desc`. An empty input yields one empty chunk so the
/// result is always well-typed. Chunks compress independently, so `ctx` fans
/// them out over its pool; the result is identical for any thread count.
Result<ChunkedCompressedColumn> CompressChunked(
    const AnyColumn& input, const SchemeDescriptor& desc,
    const ChunkingOptions& options = {}, const ExecContext& ctx = {});

/// Compresses `input` chunk-at-a-time, letting the analyzer choose a
/// descriptor *per chunk* (ChooseSchemesChunked): the paper's
/// search-over-compositions run once per segment of the column. The
/// per-chunk analyzer search is embarrassingly parallel under `ctx`.
Result<ChunkedCompressedColumn> CompressChunkedAuto(
    const AnyColumn& input, const ChunkingOptions& options = {},
    const AnalyzerOptions& analyzer_options = {}, const ExecContext& ctx = {});

/// Reverses CompressChunked / CompressChunkedAuto by decompressing every
/// chunk — concurrently under `ctx`, each chunk writing its disjoint slice
/// of the pre-sized output — and concatenating in chunk order.
Result<AnyColumn> DecompressChunked(const ChunkedCompressedColumn& chunked,
                                    const ExecContext& ctx = {});

}  // namespace recomp

#endif  // RECOMP_CORE_CHUNKED_H_
