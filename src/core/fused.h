// Fused decompression kernels.
//
// The operator-plan strategy (plan_executor.h) materializes every
// intermediate column; these kernels decompress selected catalog shapes in
// one pass with no intermediates — the conventional, "monolithic" coding of
// a scheme the paper decomposes. Keeping both strategies lets the
// benchmarks price the columnar formulation against hand fusion.

#ifndef RECOMP_CORE_FUSED_H_
#define RECOMP_CORE_FUSED_H_

#include "core/compressed.h"
#include "util/result.h"

namespace recomp {

/// Shapes with dedicated single-pass kernels.
enum class FusedShape : int {
  kRle = 0,         ///< RPE{positions: DELTA} with plain parts.
  kFor = 1,         ///< MODELED(STEP){residual: NS} with packed residual.
  kDeltaZigZagNs = 2,  ///< DELTA{deltas: ZIGZAG{recoded: NS}}.
  kGeneric = 3,     ///< Anything else: per-scheme reference recursion.
};

/// Classifies which kernel FusedDecompress will use.
FusedShape ClassifyFusedShape(const CompressedNode& node);

/// Single-pass decompression where a specialized kernel exists; otherwise
/// the per-scheme reference recursion (core/pipeline.h). Output always
/// equals Decompress(compressed).
Result<AnyColumn> FusedDecompress(const CompressedColumn& compressed);

}  // namespace recomp

#endif  // RECOMP_CORE_FUSED_H_
