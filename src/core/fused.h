// Fused decompression kernels.
//
// The operator-plan strategy (plan_executor.h) materializes every
// intermediate column; these kernels decompress the analyzer's common
// cascades in one pass with no materialized intermediates — unpack, model
// reconstruction, zigzag decode, and prefix sums happen register-to-register
// (via ops/kernels_avx2.h when ops::HasAvx2()) or in one tight scalar loop.
// Output and error behavior always match the per-scheme reference recursion
// (core/pipeline.h); tests/fused_fuzz_test.cc enforces bit-identical
// agreement across both dispatch paths.

#ifndef RECOMP_CORE_FUSED_H_
#define RECOMP_CORE_FUSED_H_

#include "core/compressed.h"
#include "util/result.h"

namespace recomp {

/// Shapes with dedicated single-pass kernels.
enum class FusedShape : int {
  kRle = 0,             ///< RPE{positions: DELTA} with plain parts.
  kFor = 1,             ///< MODELED(STEP){residual: NS} with packed residual.
  kDeltaZigZagNs = 2,   ///< DELTA{deltas: ZIGZAG{recoded: NS}}.
  kNs = 3,              ///< Plain NS: one packed terminal.
  kRleNs = 4,           ///< RPE{positions: DELTA{deltas: NS}}, any values.
  kPatchedNs = 5,       ///< PATCHED{base: NS} with plain patch lists.
  kPfor = 6,            ///< MODELED(STEP){residual: PATCHED{base: NS}}.
  kDeltaZigZagPatchedNs = 7,  ///< DELTA{ZIGZAG{PATCHED{base: NS}}}.
  kGeneric = 8,         ///< Anything else: per-scheme reference recursion.
};

/// Number of FusedShape enumerators (kGeneric included).
inline constexpr int kNumFusedShapes = 9;

/// Stable lowercase name, e.g. "delta-zz-ns"; used as a metric label
/// (obs/metrics.h), so cardinality stays bounded by the enum.
const char* FusedShapeName(FusedShape shape);

/// Classifies which kernel FusedDecompress will use.
FusedShape ClassifyFusedShape(const CompressedNode& node);

/// Descriptor-tree analog of ClassifyFusedShape: predicts the kernel a
/// column compressed with `desc` would decode through, before any data is
/// compressed. The analyzer's cost model uses this to discount shapes that
/// decode through the fused SIMD cascade.
FusedShape ClassifyFusedDescriptor(const SchemeDescriptor& desc);

/// Single-pass decompression where a specialized kernel exists; otherwise
/// the per-scheme reference recursion (core/pipeline.h). Output always
/// equals Decompress(compressed).
Result<AnyColumn> FusedDecompress(const CompressedColumn& compressed);

/// Node-level entry point (equals DecompressNode(node)); used by exec
/// operators holding sub-trees and by the RLE kernels' values recursion.
Result<AnyColumn> FusedDecompressNode(const CompressedNode& node);

}  // namespace recomp

#endif  // RECOMP_CORE_FUSED_H_
