#include "core/analyzer.h"

#include <algorithm>
#include <array>

#include "columnar/stats.h"
#include "core/catalog.h"
#include "core/cost_model.h"
#include "core/fused.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "schemes/scheme_internal.h"
#include "util/bits.h"
#include "util/zigzag.h"

namespace recomp {

namespace {

/// Derived single-pass statistics beyond ColumnStats.
struct DerivedStats {
  uint64_t raw_width_histogram[65] = {};
  uint64_t delta_width_histogram[65] = {};  // zigzag deltas, incl. head
  int run_value_delta_bits = 0;  // zigzag deltas between consecutive run values
};

template <typename T>
DerivedStats ComputeDerived(const Column<T>& col) {
  DerivedStats d;
  uint64_t prev = 0;
  uint64_t prev_run_value = 0;
  bool first = true;
  for (const T value : col) {
    const uint64_t v = static_cast<uint64_t>(value);
    ++d.raw_width_histogram[bits::BitWidth(v)];
    ++d.delta_width_histogram[bits::BitWidth(
        zigzag::EncodeDiff<uint64_t>(v, prev))];
    if (first || v != prev) {
      d.run_value_delta_bits = std::max(
          d.run_value_delta_bits,
          bits::BitWidth(zigzag::EncodeDiff<uint64_t>(
              v, first ? 0 : prev_run_value)));
      prev_run_value = v;
      first = false;
    }
    prev = v;
  }
  return d;
}

int MaxWidth(const uint64_t histogram[65]) {
  for (int w = 64; w >= 0; --w) {
    if (histogram[w] != 0) return w;
  }
  return 0;
}

/// Exact PATCHED+NS cost from a width histogram (mirrors PatchedScheme).
uint64_t PatchedBytes(const uint64_t histogram[65], uint64_t n,
                      uint64_t value_size) {
  uint64_t exceptions = 0;
  uint64_t best = ~uint64_t{0};
  for (int w = MaxWidth(histogram); w >= 0; --w) {
    const uint64_t bytes = bits::PackedByteSize(n, w) +
                           exceptions * (sizeof(uint32_t) + value_size);
    best = std::min(best, bytes);
    exceptions += histogram[w];
  }
  return best == ~uint64_t{0} ? 0 : best;
}

uint64_t VByteBytes(const uint64_t histogram[65]) {
  uint64_t total = 0;
  for (int w = 0; w <= 64; ++w) {
    total += histogram[w] * static_cast<uint64_t>(
                                w <= 7 ? 1 : bits::CeilDiv(w, 7));
  }
  return total;
}

template <typename T>
std::vector<CandidateEvaluation> BuildCandidates(const Column<T>& col) {
  const uint64_t n = col.size();
  const uint64_t value_size = sizeof(T);
  const ColumnStats stats = ComputeStats(col);
  const DerivedStats derived = ComputeDerived(col);
  std::vector<CandidateEvaluation> out;

  auto add = [&](std::string name, SchemeDescriptor desc, uint64_t bytes) {
    CandidateEvaluation c;
    c.name = std::move(name);
    c.estimated_cost = EstimateDecompressionCost(desc, stats);
    c.descriptor = std::move(desc);
    c.estimated_bytes = bytes;
    out.push_back(std::move(c));
  };

  add("ID", Id(), n * value_size);
  add("NS", Ns(), bits::PackedByteSize(n, stats.value_bits));
  add("PATCHED-NS", Patched().With("base", Ns()),
      PatchedBytes(derived.raw_width_histogram, n, value_size));
  add("VBYTE", VByte(), VByteBytes(derived.raw_width_histogram));

  add("DELTA-NS", MakeDeltaNs(),
      bits::PackedByteSize(n, MaxWidth(derived.delta_width_histogram)));
  add("DELTA-PATCHED-NS",
      Delta().With("deltas",
                   ZigZag().With("recoded", Patched().With("base", Ns()))),
      PatchedBytes(derived.delta_width_histogram, n, value_size));
  add("DELTA-VBYTE", MakeDeltaVByte(),
      VByteBytes(derived.delta_width_histogram));

  if (stats.run_count > 0 && stats.avg_run_length >= 1.5) {
    const int length_bits = bits::BitWidth(stats.max_run_length);
    add("RLE-NS", MakeRleNs(),
        bits::PackedByteSize(stats.run_count,
                             length_bits + stats.value_bits));
    add("RLE-DELTA", MakeRleDelta(),
        bits::PackedByteSize(stats.run_count,
                             length_bits + derived.run_value_delta_bits));
    add("RPE", Rpe(),
        stats.run_count * (sizeof(uint32_t) + value_size));
  }

  if (!stats.distinct_capped && stats.distinct > 0) {
    add("DICT-NS", MakeDictNs(),
        bits::PackedByteSize(
            n, bits::BitWidth(stats.distinct - 1)) +
            stats.distinct * value_size);
  }

  for (const uint64_t ell : {uint64_t{128}, uint64_t{1024}}) {
    const int residual_width = StepResidualWidth(col, ell);
    add("FOR-" + std::to_string(ell), MakeFor(ell),
        bits::CeilDiv(n, ell) * value_size +
            bits::PackedByteSize(n, residual_width));
  }

  // PFOR at ell=1024: price the patched residual exactly via a residual
  // histogram (one extra pass).
  {
    const uint64_t ell = 1024;
    uint64_t residual_histogram[65] = {};
    for (uint64_t begin = 0; begin < n; begin += ell) {
      const uint64_t end = std::min<uint64_t>(begin + ell, n);
      T lo = col[begin];
      for (uint64_t i = begin + 1; i < end; ++i) lo = std::min(lo, col[i]);
      for (uint64_t i = begin; i < end; ++i) {
        ++residual_histogram[bits::BitWidth(
            static_cast<uint64_t>(col[i] - lo))];
      }
    }
    if (n > 0) {
      add("PFOR-1024", MakePfor(ell),
          bits::CeilDiv(n, ell) * value_size +
              PatchedBytes(residual_histogram, n, value_size));
    }
  }

  return out;
}

}  // namespace

Result<std::vector<CandidateEvaluation>> RankCandidates(
    const AnyColumn& input, const AnalyzerOptions& options) {
  return internal::DispatchUnsignedColumn(
      input,
      [&](const auto& col) -> Result<std::vector<CandidateEvaluation>> {
        std::vector<CandidateEvaluation> candidates = BuildCandidates(col);
        std::erase_if(candidates, [&](const CandidateEvaluation& c) {
          return c.estimated_cost > options.max_cost_per_value;
        });
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const auto& a, const auto& b) {
                           return a.estimated_bytes < b.estimated_bytes;
                         });
        if (candidates.empty()) {
          return Status::InvalidArgument(
              "no candidate scheme satisfies the cost budget");
        }
        return candidates;
      });
}

Result<SchemeDescriptor> ChooseScheme(const AnyColumn& input,
                                      const AnalyzerOptions& options) {
  RECOMP_ASSIGN_OR_RETURN(std::vector<CandidateEvaluation> ranked,
                          RankCandidates(input, options));
  if (obs::Enabled()) {
    // Per-choice rollup: how wide each search was, what shape won, and the
    // bytes the cost model promised. analyzer.estimated_bytes pairs with
    // analyzer.actual_bytes (counted where the choice is compressed) to
    // expose cost-model drift in one snapshot.
    obs::Registry& registry = obs::Registry::Get();
    static obs::Counter& choices = registry.GetCounter("analyzer.choices");
    static obs::Counter& considered =
        registry.GetCounter("analyzer.candidates_considered");
    static obs::Counter& estimated =
        registry.GetCounter("analyzer.estimated_bytes");
    static const std::array<obs::Counter*, kNumFusedShapes> chosen = [&] {
      std::array<obs::Counter*, kNumFusedShapes> by_shape{};
      for (int s = 0; s < kNumFusedShapes; ++s) {
        by_shape[static_cast<size_t>(s)] = &registry.GetCounter(
            std::string("analyzer.chosen.") +
            FusedShapeName(static_cast<FusedShape>(s)));
      }
      return by_shape;
    }();
    choices.Increment();
    considered.Add(ranked.size());
    estimated.Add(ranked.front().estimated_bytes);
    const FusedShape shape = ClassifyFusedDescriptor(ranked.front().descriptor);
    chosen[static_cast<size_t>(static_cast<int>(shape))]->Increment();
  }
  return ranked.front().descriptor;
}

Result<std::vector<ChunkSchemeChoice>> ChooseSchemesChunked(
    const AnyColumn& input, uint64_t chunk_rows,
    const AnalyzerOptions& options, const ExecContext& ctx) {
  if (chunk_rows == 0) {
    return Status::InvalidArgument("chunk_rows must be positive");
  }
  if (input.is_packed()) {
    return Status::InvalidArgument("analysis requires a plain column");
  }
  const uint64_t n = input.size();
  const uint64_t num_chunks = n == 0 ? 1 : (n + chunk_rows - 1) / chunk_rows;
  // Chunks are analyzed independently into pre-sized slots; ParallelForOk
  // surfaces the first failure in chunk order.
  std::vector<ChunkSchemeChoice> choices(num_chunks);
  RECOMP_RETURN_NOT_OK(ParallelForOk(ctx, num_chunks, [&](uint64_t i) -> Status {
    const uint64_t begin = i * chunk_rows;
    const uint64_t end = std::min<uint64_t>(n, begin + chunk_rows);
    choices[i].row_begin = begin;
    choices[i].row_count = end - begin;
    RECOMP_ASSIGN_OR_RETURN(AnyColumn slice, SliceRows(input, begin, end));
    RECOMP_ASSIGN_OR_RETURN(choices[i].descriptor,
                            ChooseScheme(slice, options));
    return Status::OK();
  }));
  return choices;
}

Result<std::vector<TrialOutcome>> TrialCompressCandidates(
    const AnyColumn& input, const AnalyzerOptions& options) {
  RECOMP_ASSIGN_OR_RETURN(std::vector<CandidateEvaluation> ranked,
                          RankCandidates(input, options));
  std::vector<TrialOutcome> outcomes;
  outcomes.reserve(ranked.size());
  for (const CandidateEvaluation& candidate : ranked) {
    auto compressed = Compress(input, candidate.descriptor);
    if (!compressed.ok()) continue;  // e.g. DICT over 2^32 distinct values
    TrialOutcome outcome;
    outcome.name = candidate.name;
    outcome.descriptor = candidate.descriptor;
    outcome.estimated_bytes = candidate.estimated_bytes;
    outcome.estimated_cost = candidate.estimated_cost;
    outcome.measured_bytes = compressed->PayloadBytes();
    outcomes.push_back(std::move(outcome));
  }
  std::stable_sort(outcomes.begin(), outcomes.end(),
                   [](const auto& a, const auto& b) {
                     return a.measured_bytes < b.measured_bytes;
                   });
  return outcomes;
}

}  // namespace recomp
