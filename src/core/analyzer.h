// The analyzer: automatic scheme selection over the composition space.
//
// "Why it matters", operationally: once classic schemes decompose into
// primitives, choosing a scheme stops being a pick-from-a-zoo problem and
// becomes a search over compositions. The analyzer scans a column once
// (plus one residual pass for the FOR family), prices a candidate set of
// compositions from the statistics, filters by a decompression-cost budget,
// and ranks by estimated footprint. TrialCompressCandidates grounds the
// estimates by actually compressing.

#ifndef RECOMP_CORE_ANALYZER_H_
#define RECOMP_CORE_ANALYZER_H_

#include <limits>
#include <string>
#include <vector>

#include "columnar/any_column.h"
#include "core/descriptor.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace recomp {

/// One priced candidate composition.
struct CandidateEvaluation {
  std::string name;               ///< Display name (catalog-style).
  SchemeDescriptor descriptor;
  uint64_t estimated_bytes = 0;   ///< Predicted payload footprint.
  double estimated_cost = 0.0;    ///< Predicted decompression ops/value.
};

/// Selection constraints.
struct AnalyzerOptions {
  /// Candidates whose estimated decompression cost (ops/value) exceeds this
  /// are dropped — the paper's ratio-for-speed axis as a knob.
  double max_cost_per_value = std::numeric_limits<double>::infinity();
};

/// Prices the candidate set for `input` (an unsigned plain column) and
/// returns it sorted by estimated footprint, cheapest first.
Result<std::vector<CandidateEvaluation>> RankCandidates(
    const AnyColumn& input, const AnalyzerOptions& options = {});

/// The top-ranked candidate's descriptor.
Result<SchemeDescriptor> ChooseScheme(const AnyColumn& input,
                                      const AnalyzerOptions& options = {});

/// One chunk's scheme choice from ChooseSchemesChunked.
struct ChunkSchemeChoice {
  uint64_t row_begin = 0;
  uint64_t row_count = 0;
  SchemeDescriptor descriptor;
};

/// Per-chunk selection: runs the analyzer independently over consecutive
/// `chunk_rows`-row slices of `input` (the last chunk may be shorter), so a
/// drifting column — runs here, noise there, a sorted stretch at the end —
/// gets a different composition wherever that pays. Errors when chunk_rows
/// is 0; an empty column yields one empty chunk so the choice is total.
/// Chunks are analyzed independently, so `ctx` fans the search out over its
/// pool; the choices are identical for any thread count.
Result<std::vector<ChunkSchemeChoice>> ChooseSchemesChunked(
    const AnyColumn& input, uint64_t chunk_rows,
    const AnalyzerOptions& options = {}, const ExecContext& ctx = {});

/// A candidate with its measured (not estimated) footprint.
struct TrialOutcome {
  std::string name;
  SchemeDescriptor descriptor;
  uint64_t estimated_bytes = 0;
  uint64_t measured_bytes = 0;
  double estimated_cost = 0.0;
};

/// Compresses `input` with every in-budget candidate and reports measured
/// footprints, sorted by measured bytes.
Result<std::vector<TrialOutcome>> TrialCompressCandidates(
    const AnyColumn& input, const AnalyzerOptions& options = {});

}  // namespace recomp

#endif  // RECOMP_CORE_ANALYZER_H_
