#include "core/compressed.h"

#include "util/string_util.h"

namespace recomp {

uint64_t CompressedPart::PayloadBytes() const {
  if (is_terminal()) return column->ByteSize();
  return sub ? sub->PayloadBytes() : 0;
}

CompressedPart CompressedPart::Clone() const {
  CompressedPart copy;
  copy.column = column;
  if (sub) copy.sub = std::make_unique<CompressedNode>(sub->Clone());
  return copy;
}

uint64_t CompressedNode::PayloadBytes() const {
  uint64_t total = 0;
  for (const auto& [name, part] : parts) total += part.PayloadBytes();
  return total;
}

SchemeDescriptor CompressedNode::FullDescriptor() const {
  SchemeDescriptor desc = scheme;
  for (const auto& [name, part] : parts) {
    if (!part.is_terminal() && part.sub) {
      desc.children[name] = part.sub->FullDescriptor();
    }
  }
  return desc;
}

CompressedNode CompressedNode::Clone() const {
  CompressedNode copy;
  copy.scheme = scheme;
  copy.n = n;
  copy.out_type = out_type;
  for (const auto& [name, part] : parts) copy.parts[name] = part.Clone();
  return copy;
}

const AnyColumn* StoredPlainData(const CompressedNode& node) {
  if (node.scheme.kind != SchemeKind::kId) return nullptr;
  const auto it = node.parts.find("data");
  if (it == node.parts.end() || !it->second.is_terminal() ||
      it->second.column->is_packed() ||
      it->second.column->type() != node.out_type ||
      it->second.column->size() != node.n) {
    return nullptr;
  }
  return &*it->second.column;
}

double CompressedColumn::Ratio() const {
  const uint64_t payload = PayloadBytes();
  if (payload == 0) return 0.0;
  return static_cast<double>(UncompressedBytes()) /
         static_cast<double>(payload);
}

namespace {

void DumpNode(const CompressedNode& node, const std::string& indent,
              std::string* out) {
  out->append(StringFormat(
      "%s n=%llu %s (%s)\n", node.scheme.ToString().c_str(),
      static_cast<unsigned long long>(node.n), TypeIdName(node.out_type),
      HumanBytes(node.PayloadBytes()).c_str()));
  for (auto it = node.parts.begin(); it != node.parts.end(); ++it) {
    const bool last = std::next(it) == node.parts.end();
    out->append(indent);
    out->append(last ? "`- " : "|- ");
    out->append(it->first);
    out->append(": ");
    const std::string child_indent = indent + (last ? "   " : "|  ");
    if (it->second.is_terminal()) {
      out->append(it->second.column->ToString());
      out->append(StringFormat(
          " (%s)\n", HumanBytes(it->second.column->ByteSize()).c_str()));
    } else {
      DumpNode(*it->second.sub, child_indent, out);
    }
  }
}

}  // namespace

std::string CompressedColumn::ToString() const {
  std::string out;
  DumpNode(root_, "", &out);
  return out;
}

}  // namespace recomp
