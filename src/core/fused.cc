#include "core/fused.h"

#include "core/pipeline.h"
#include "ops/pack.h"
#include "schemes/scheme_internal.h"
#include "util/bits.h"
#include "util/zigzag.h"

namespace recomp {

namespace {

bool IsTerminalPlain(const CompressedNode& node, const std::string& part) {
  auto it = node.parts.find(part);
  return it != node.parts.end() && it->second.is_terminal() &&
         !it->second.column->is_packed();
}

bool IsTerminalPacked(const CompressedNode& node, const std::string& part) {
  auto it = node.parts.find(part);
  return it != node.parts.end() && it->second.is_terminal() &&
         it->second.column->is_packed();
}

const CompressedNode* SubNode(const CompressedNode& node,
                              const std::string& part) {
  auto it = node.parts.find(part);
  if (it == node.parts.end() || it->second.is_terminal()) return nullptr;
  return it->second.sub.get();
}

}  // namespace

FusedShape ClassifyFusedShape(const CompressedNode& node) {
  if (!TypeIdIsUnsigned(node.out_type)) return FusedShape::kGeneric;

  if (node.scheme.kind == SchemeKind::kRpe) {
    const CompressedNode* positions = SubNode(node, "positions");
    if (positions != nullptr && positions->scheme.kind == SchemeKind::kDelta &&
        IsTerminalPlain(*positions, "deltas") &&
        IsTerminalPlain(node, "values")) {
      return FusedShape::kRle;
    }
  }

  if (node.scheme.kind == SchemeKind::kModeled && node.scheme.args.size() == 1 &&
      node.scheme.args[0].kind == SchemeKind::kStep &&
      IsTerminalPlain(node, "refs")) {
    const CompressedNode* residual = SubNode(node, "residual");
    if (residual != nullptr && residual->scheme.kind == SchemeKind::kNs &&
        IsTerminalPacked(*residual, "packed")) {
      return FusedShape::kFor;
    }
  }

  if (node.scheme.kind == SchemeKind::kDelta) {
    const CompressedNode* zz = SubNode(node, "deltas");
    if (zz != nullptr && zz->scheme.kind == SchemeKind::kZigZag) {
      const CompressedNode* ns = SubNode(*zz, "recoded");
      if (ns != nullptr && ns->scheme.kind == SchemeKind::kNs &&
          IsTerminalPacked(*ns, "packed")) {
        return FusedShape::kDeltaZigZagNs;
      }
    }
  }

  return FusedShape::kGeneric;
}

namespace {

template <typename T>
Result<AnyColumn> FusedRle(const CompressedNode& node) {
  const Column<T>& values = node.parts.at("values").column->As<T>();
  const CompressedNode& positions = *node.parts.at("positions").sub;
  const AnyColumn& lengths_any = *positions.parts.at("deltas").column;
  if (lengths_any.type() != TypeId::kUInt32) {
    return Status::Corruption("fused RLE expects uint32 lengths");
  }
  const Column<uint32_t>& lengths = lengths_any.As<uint32_t>();
  if (lengths.size() != values.size()) {
    return Status::Corruption("fused RLE arity mismatch");
  }
  Column<T> out(node.n);
  uint64_t pos = 0;
  for (uint64_t r = 0; r < values.size(); ++r) {
    const uint64_t end = pos + lengths[r];
    if (end > node.n) return Status::Corruption("fused RLE overruns output");
    std::fill(out.begin() + pos, out.begin() + end, values[r]);
    pos = end;
  }
  if (pos != node.n) return Status::Corruption("fused RLE underfills output");
  return AnyColumn(std::move(out));
}

template <typename T>
Result<AnyColumn> FusedFor(const CompressedNode& node) {
  const Column<T>& refs = node.parts.at("refs").column->As<T>();
  const CompressedNode& residual = *node.parts.at("residual").sub;
  const PackedColumn& packed = residual.parts.at("packed").column->packed();
  const uint64_t ell = node.scheme.args[0].params.segment_length;
  if (packed.n != node.n || ell == 0 ||
      refs.size() != bits::CeilDiv(node.n, ell)) {
    return Status::Corruption("fused FOR arity mismatch");
  }
  // Unpack one segment at a time and add the segment's reference while the
  // values are hot; no full-length intermediate exists.
  RECOMP_ASSIGN_OR_RETURN(Column<T> out, ops::Unpack<T>(packed));
  for (uint64_t seg = 0; seg < refs.size(); ++seg) {
    const uint64_t begin = seg * ell;
    const uint64_t end = std::min<uint64_t>(begin + ell, node.n);
    const T ref = refs[seg];
    for (uint64_t i = begin; i < end; ++i) {
      out[i] = static_cast<T>(out[i] + ref);
    }
  }
  return AnyColumn(std::move(out));
}

template <typename T>
Result<AnyColumn> FusedDeltaZigZagNs(const CompressedNode& node) {
  const CompressedNode& zz = *node.parts.at("deltas").sub;
  const CompressedNode& ns = *zz.parts.at("recoded").sub;
  const PackedColumn& packed = ns.parts.at("packed").column->packed();
  if (packed.n != node.n) {
    return Status::Corruption("fused DELTA arity mismatch");
  }
  RECOMP_ASSIGN_OR_RETURN(Column<T> out, ops::Unpack<T>(packed));
  T acc{0};
  for (auto& v : out) {
    acc = static_cast<T>(acc + static_cast<T>(zigzag::Decode(v)));
    v = acc;
  }
  return AnyColumn(std::move(out));
}

}  // namespace

Result<AnyColumn> FusedDecompress(const CompressedColumn& compressed) {
  const CompressedNode& node = compressed.root();
  const FusedShape shape = ClassifyFusedShape(node);
  if (shape == FusedShape::kGeneric) {
    return DecompressNode(node);
  }
  return internal::DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<AnyColumn> {
        using T = typename decltype(tag)::type;
        switch (shape) {
          case FusedShape::kRle:
            return FusedRle<T>(node);
          case FusedShape::kFor:
            return FusedFor<T>(node);
          case FusedShape::kDeltaZigZagNs:
            return FusedDeltaZigZagNs<T>(node);
          case FusedShape::kGeneric:
            break;
        }
        return DecompressNode(node);
      });
}

}  // namespace recomp
