#include "core/fused.h"

#include <algorithm>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "ops/dispatch.h"
#include "ops/kernels_avx2.h"
#include "ops/pack.h"
#include "schemes/scheme_internal.h"
#include "util/bits.h"
#include "util/zigzag.h"

namespace recomp {

namespace {

bool IsTerminalPlain(const CompressedNode& node, const std::string& part) {
  auto it = node.parts.find(part);
  return it != node.parts.end() && it->second.is_terminal() &&
         !it->second.column->is_packed();
}

bool IsTerminalPacked(const CompressedNode& node, const std::string& part) {
  auto it = node.parts.find(part);
  return it != node.parts.end() && it->second.is_terminal() &&
         it->second.column->is_packed();
}

const CompressedNode* SubNode(const CompressedNode& node,
                              const std::string& part) {
  auto it = node.parts.find(part);
  if (it == node.parts.end() || it->second.is_terminal()) return nullptr;
  return it->second.sub.get();
}

bool IsNsPackedNode(const CompressedNode* node) {
  return node != nullptr && node->scheme.kind == SchemeKind::kNs &&
         IsTerminalPacked(*node, "packed");
}

bool IsPatchedNsNode(const CompressedNode* node) {
  return node != nullptr && node->scheme.kind == SchemeKind::kPatched &&
         IsNsPackedNode(SubNode(*node, "base")) &&
         IsTerminalPlain(*node, "patch_positions") &&
         IsTerminalPlain(*node, "patch_values");
}

const SchemeDescriptor* Child(const SchemeDescriptor& desc,
                              const std::string& part) {
  auto it = desc.children.find(part);
  return it == desc.children.end() ? nullptr : &it->second;
}

bool IsNsLeafDesc(const SchemeDescriptor* desc) {
  return desc != nullptr && desc->kind == SchemeKind::kNs &&
         desc->children.empty();
}

bool IsPatchedNsDesc(const SchemeDescriptor* desc) {
  return desc != nullptr && desc->kind == SchemeKind::kPatched &&
         IsNsLeafDesc(Child(*desc, "base")) &&
         Child(*desc, "patch_positions") == nullptr &&
         Child(*desc, "patch_values") == nullptr;
}

/// Decode counters by FusedShape × dispatch path, resolved once: a fused
/// decode costs two sharded relaxed adds, nothing more. The counters exist
/// even before the first decode (GetCounter creates on lookup), so a
/// snapshot showing `fused.decode.ns.avx2 == 0` while scalar counts grow is
/// the PR-7 dead-kernel regression, now visible instead of silent.
struct DecodeCounters {
  obs::Counter* count[kNumFusedShapes][2];
  obs::Counter* bytes[kNumFusedShapes][2];
  obs::Gauge* avx2_live;

  static const DecodeCounters& Get() {
    static const DecodeCounters counters = [] {
      DecodeCounters c;
      obs::Registry& registry = obs::Registry::Get();
      for (int s = 0; s < kNumFusedShapes; ++s) {
        const std::string shape = FusedShapeName(static_cast<FusedShape>(s));
        c.count[s][0] =
            &registry.GetCounter("fused.decode." + shape + ".scalar");
        c.count[s][1] =
            &registry.GetCounter("fused.decode." + shape + ".avx2");
        c.bytes[s][0] =
            &registry.GetCounter("fused.decoded_bytes." + shape + ".scalar");
        c.bytes[s][1] =
            &registry.GetCounter("fused.decoded_bytes." + shape + ".avx2");
      }
      c.avx2_live = &registry.GetGauge("dispatch.avx2_live");
      return c;
    }();
    return counters;
  }
};

/// Counts one successful node decode under the dispatch mode that served it.
void CountDecode(FusedShape shape, const CompressedNode& node) {
  const DecodeCounters& counters = DecodeCounters::Get();
  const int path = ops::HasAvx2() ? 1 : 0;
  const int s = static_cast<int>(shape);
  counters.count[s][path]->Increment();
  counters.bytes[s][path]->Add(
      node.n * static_cast<uint64_t>(TypeIdByteWidth(node.out_type)));
  counters.avx2_live->Set(path);
}

}  // namespace

const char* FusedShapeName(FusedShape shape) {
  switch (shape) {
    case FusedShape::kRle:
      return "rle";
    case FusedShape::kFor:
      return "for";
    case FusedShape::kDeltaZigZagNs:
      return "delta-zz-ns";
    case FusedShape::kNs:
      return "ns";
    case FusedShape::kRleNs:
      return "rle-ns";
    case FusedShape::kPatchedNs:
      return "patched-ns";
    case FusedShape::kPfor:
      return "pfor";
    case FusedShape::kDeltaZigZagPatchedNs:
      return "delta-zz-patched-ns";
    case FusedShape::kGeneric:
      return "generic";
  }
  return "unknown";
}

FusedShape ClassifyFusedShape(const CompressedNode& node) {
  if (!TypeIdIsUnsigned(node.out_type)) return FusedShape::kGeneric;

  if (node.scheme.kind == SchemeKind::kNs &&
      IsTerminalPacked(node, "packed")) {
    return FusedShape::kNs;
  }

  if (node.scheme.kind == SchemeKind::kRpe) {
    const CompressedNode* positions = SubNode(node, "positions");
    if (positions != nullptr && positions->scheme.kind == SchemeKind::kDelta) {
      if (IsTerminalPlain(*positions, "deltas") &&
          IsTerminalPlain(node, "values")) {
        return FusedShape::kRle;
      }
      // Packed lengths; the values part can be anything decodable — a plain
      // terminal or a sub-tree the kernel recurses into (covering both
      // RLE-NS and RLE-DELTA).
      auto values = node.parts.find("values");
      const bool values_decodable =
          values != node.parts.end() &&
          (values->second.sub != nullptr ||
           (values->second.is_terminal() &&
            !values->second.column->is_packed()));
      if (IsNsPackedNode(SubNode(*positions, "deltas")) && values_decodable) {
        return FusedShape::kRleNs;
      }
    }
  }

  if (node.scheme.kind == SchemeKind::kModeled &&
      node.scheme.args.size() == 1 &&
      node.scheme.args[0].kind == SchemeKind::kStep &&
      IsTerminalPlain(node, "refs")) {
    const CompressedNode* residual = SubNode(node, "residual");
    if (IsNsPackedNode(residual)) return FusedShape::kFor;
    if (IsPatchedNsNode(residual)) return FusedShape::kPfor;
  }

  if (IsPatchedNsNode(&node)) return FusedShape::kPatchedNs;

  if (node.scheme.kind == SchemeKind::kDelta) {
    const CompressedNode* zz = SubNode(node, "deltas");
    if (zz != nullptr && zz->scheme.kind == SchemeKind::kZigZag) {
      const CompressedNode* recoded = SubNode(*zz, "recoded");
      if (IsNsPackedNode(recoded)) return FusedShape::kDeltaZigZagNs;
      if (IsPatchedNsNode(recoded)) return FusedShape::kDeltaZigZagPatchedNs;
    }
  }

  return FusedShape::kGeneric;
}

FusedShape ClassifyFusedDescriptor(const SchemeDescriptor& desc) {
  if (desc.kind == SchemeKind::kNs && desc.children.empty()) {
    return FusedShape::kNs;
  }

  if (desc.kind == SchemeKind::kRpe) {
    const SchemeDescriptor* positions = Child(desc, "positions");
    if (positions != nullptr && positions->kind == SchemeKind::kDelta) {
      const SchemeDescriptor* deltas = Child(*positions, "deltas");
      if (deltas == nullptr && Child(desc, "values") == nullptr) {
        return FusedShape::kRle;
      }
      if (IsNsLeafDesc(deltas)) return FusedShape::kRleNs;
    }
  }

  if (desc.kind == SchemeKind::kModeled && desc.args.size() == 1 &&
      desc.args[0].kind == SchemeKind::kStep &&
      Child(desc, "refs") == nullptr) {
    const SchemeDescriptor* residual = Child(desc, "residual");
    if (IsNsLeafDesc(residual)) return FusedShape::kFor;
    if (IsPatchedNsDesc(residual)) return FusedShape::kPfor;
  }

  if (IsPatchedNsDesc(&desc)) return FusedShape::kPatchedNs;

  if (desc.kind == SchemeKind::kDelta) {
    const SchemeDescriptor* zz = Child(desc, "deltas");
    if (zz != nullptr && zz->kind == SchemeKind::kZigZag) {
      const SchemeDescriptor* recoded = Child(*zz, "recoded");
      if (IsNsLeafDesc(recoded)) return FusedShape::kDeltaZigZagNs;
      if (IsPatchedNsDesc(recoded)) return FusedShape::kDeltaZigZagPatchedNs;
    }
  }

  return FusedShape::kGeneric;
}

namespace {

/// Validates an NS sub-node exactly the way the reference recursion would
/// (envelope length, descriptor width, output type, payload size) and hands
/// back its packed payload for direct kernel consumption.
template <typename T>
Result<const PackedColumn*> ValidatedNsPacked(const CompressedNode& ns,
                                              uint64_t n) {
  if (ns.out_type != TypeIdOf<T>()) {
    return Status::Corruption("fused NS part has the wrong type");
  }
  const PackedColumn& packed = ns.parts.at("packed").column->packed();
  if (ns.n != n || packed.n != n) {
    return Status::Corruption("NS packed length differs from envelope");
  }
  if (packed.bit_width != ns.scheme.params.width) {
    return Status::Corruption("NS packed width differs from descriptor");
  }
  if (packed.bit_width > bits::TypeBits<T>()) {
    return Status::InvalidArgument("cannot unpack width into narrower type");
  }
  if (packed.bytes.size() <
      bits::PackedByteSize(packed.n, packed.bit_width)) {
    return Status::Corruption("packed payload shorter than declared rows");
  }
  return &packed;
}

/// A terminal plain part, type-checked.
template <typename T>
Result<const Column<T>*> PlainPart(const CompressedNode& node,
                                   const std::string& name) {
  const AnyColumn& any = *node.parts.at(name).column;
  if (any.is_packed() || any.type() != TypeIdOf<T>()) {
    return Status::Corruption("fused part '" + name + "' has the wrong type");
  }
  return &any.As<T>();
}

template <typename T>
struct PatchList {
  const Column<uint32_t>* positions;
  const Column<T>* values;
};

template <typename T>
Result<PatchList<T>> GetPatchList(const CompressedNode& patched) {
  RECOMP_ASSIGN_OR_RETURN(const Column<uint32_t>* positions,
                          PlainPart<uint32_t>(patched, "patch_positions"));
  RECOMP_ASSIGN_OR_RETURN(const Column<T>* values,
                          PlainPart<T>(patched, "patch_values"));
  if (positions->size() != values->size()) {
    return Status::Corruption("PATCHED patch arity mismatch");
  }
  return PatchList<T>{positions, values};
}

/// Segment-wise FOR reconstruction: out[i] = unpack(i) + refs[i / ell],
/// register-to-register per segment on the vector path.
template <typename T>
Result<Column<T>> ForReconstruct(const PackedColumn& packed,
                                 const Column<T>& refs, uint64_t ell,
                                 uint64_t n) {
  if constexpr (std::is_same_v<T, uint32_t> || std::is_same_v<T, uint64_t>) {
    if (ops::HasAvx2()) {
      Column<T> out(n);
      for (uint64_t seg = 0; seg < refs.size(); ++seg) {
        const uint64_t begin = seg * ell;
        const uint64_t end = std::min<uint64_t>(begin + ell, n);
        if constexpr (std::is_same_v<T, uint32_t>) {
          ops::avx2::UnpackAddU32(packed.bytes.data(), packed.bytes.size(),
                                  begin, end - begin, packed.bit_width,
                                  refs[seg], out.data() + begin);
        } else {
          ops::avx2::UnpackAddU64(packed.bytes.data(), packed.bytes.size(),
                                  begin, end - begin, packed.bit_width,
                                  refs[seg], out.data() + begin);
        }
      }
      return out;
    }
  }
  RECOMP_ASSIGN_OR_RETURN(Column<T> out, ops::Unpack<T>(packed));
  for (uint64_t seg = 0; seg < refs.size(); ++seg) {
    const uint64_t begin = seg * ell;
    const uint64_t end = std::min<uint64_t>(begin + ell, n);
    const T ref = refs[seg];
    for (uint64_t i = begin; i < end; ++i) {
      out[i] = static_cast<T>(out[i] + ref);
    }
  }
  return out;
}

/// Fused DELTA←ZIGZAG decode of a packed column: unpack + zigzag + running
/// prefix sum in one pass.
template <typename T>
Result<Column<T>> DeltaZigZagReconstruct(const PackedColumn& packed,
                                         uint64_t n) {
  if constexpr (std::is_same_v<T, uint32_t>) {
    if (ops::HasAvx2()) {
      Column<T> out(n);
      ops::avx2::UnpackZigZagPrefixU32(packed.bytes.data(),
                                       packed.bytes.size(), n,
                                       packed.bit_width, out.data());
      return out;
    }
  } else if constexpr (std::is_same_v<T, uint64_t>) {
    if (ops::HasAvx2()) {
      Column<T> out(n);
      ops::avx2::UnpackZigZagPrefixU64(packed.bytes.data(),
                                       packed.bytes.size(), n,
                                       packed.bit_width, out.data());
      return out;
    }
  }
  RECOMP_ASSIGN_OR_RETURN(Column<T> out, ops::Unpack<T>(packed));
  T acc{0};
  for (auto& v : out) {
    acc = static_cast<T>(acc + static_cast<T>(zigzag::Decode(v)));
    v = acc;
  }
  return out;
}

/// In-place zigzag decode + inclusive prefix sum over materialized codes
/// (the tail half of the fused DELTA decode after a patch pass).
template <typename T>
void ZigZagPrefixInPlace(Column<T>* col) {
  if constexpr (std::is_same_v<T, uint32_t>) {
    if (ops::HasAvx2()) {
      ops::avx2::ZigZagPrefixInPlaceU32(col->data(), col->size());
      return;
    }
  } else if constexpr (std::is_same_v<T, uint64_t>) {
    if (ops::HasAvx2()) {
      ops::avx2::ZigZagPrefixInPlaceU64(col->data(), col->size());
      return;
    }
  }
  T acc{0};
  for (auto& v : *col) {
    acc = static_cast<T>(acc + static_cast<T>(zigzag::Decode(v)));
    v = acc;
  }
}

/// Validates patches against the base already in `out` (reference semantics:
/// a patch only restores bits the pack width masked off). `base_of` maps an
/// output slot back to the base value the reference recursion would have
/// compared against.
template <typename T, typename BaseOf>
Status ValidatePatches(const PatchList<T>& patches, uint64_t mask, uint64_t n,
                       BaseOf base_of) {
  const Column<uint32_t>& positions = *patches.positions;
  const Column<T>& values = *patches.values;
  for (uint64_t p = 0; p < positions.size(); ++p) {
    if (positions[p] >= n) {
      return Status::Corruption("PATCHED position exceeds column");
    }
    if ((static_cast<uint64_t>(values[p]) & mask) !=
        static_cast<uint64_t>(base_of(positions[p]))) {
      return Status::Corruption("PATCHED patch disagrees with base");
    }
  }
  return Status::OK();
}

/// Writes the (already validated) patch values into `out`.
template <typename T>
void ScatterPatches(const PatchList<T>& patches, Column<T>* out) {
  const Column<uint32_t>& positions = *patches.positions;
  const Column<T>& values = *patches.values;
  if constexpr (std::is_same_v<T, uint32_t>) {
    ops::avx2::ScatterU32(out->data(), positions.data(), values.data(),
                          positions.size());
  } else if constexpr (std::is_same_v<T, uint64_t>) {
    ops::avx2::ScatterU64(out->data(), positions.data(), values.data(),
                          positions.size());
  } else {
    for (uint64_t p = 0; p < positions.size(); ++p) {
      (*out)[positions[p]] = values[p];
    }
  }
}

template <typename T>
Result<AnyColumn> FusedNs(const CompressedNode& node) {
  RECOMP_ASSIGN_OR_RETURN(const PackedColumn* packed,
                          ValidatedNsPacked<T>(node, node.n));
  RECOMP_ASSIGN_OR_RETURN(Column<T> out, ops::Unpack<T>(*packed));
  return AnyColumn(std::move(out));
}

/// Shared run-expansion tail of the RLE kernels. Reference parity: a zero
/// length means the positions column was not strictly increasing, and a
/// uint32 positions column cannot certify n >= 2^32.
template <typename T>
Result<AnyColumn> ExpandRuns(const Column<uint32_t>& lengths,
                             const Column<T>& values, uint64_t n) {
  if (lengths.size() != values.size()) {
    return Status::Corruption("fused RLE arity mismatch");
  }
  if (n > uint64_t{0xFFFFFFFF}) {
    return Status::Corruption("RPE last position differs from envelope n");
  }
  Column<T> out(n);
  uint64_t pos = 0;
  for (uint64_t r = 0; r < values.size(); ++r) {
    if (lengths[r] == 0) {
      return Status::Corruption("RPE positions are not strictly increasing");
    }
    const uint64_t end = pos + lengths[r];
    if (end > n) return Status::Corruption("fused RLE overruns output");
    std::fill(out.begin() + pos, out.begin() + end, values[r]);
    pos = end;
  }
  if (pos != n) return Status::Corruption("fused RLE underfills output");
  return AnyColumn(std::move(out));
}

template <typename T>
Result<AnyColumn> FusedRle(const CompressedNode& node) {
  const CompressedNode& positions = *node.parts.at("positions").sub;
  if (positions.out_type != TypeId::kUInt32) {
    return Status::Corruption("RPE 'positions' must be a uint32 column");
  }
  RECOMP_ASSIGN_OR_RETURN(const Column<uint32_t>* lengths,
                          PlainPart<uint32_t>(positions, "deltas"));
  if (lengths->size() != positions.n) {
    return Status::Corruption("DELTA part length differs from envelope");
  }
  RECOMP_ASSIGN_OR_RETURN(const Column<T>* values,
                          PlainPart<T>(node, "values"));
  return ExpandRuns(*lengths, *values, node.n);
}

template <typename T>
Result<AnyColumn> FusedRleNs(const CompressedNode& node) {
  const CompressedNode& positions = *node.parts.at("positions").sub;
  if (positions.out_type != TypeId::kUInt32) {
    return Status::Corruption("RPE 'positions' must be a uint32 column");
  }
  const CompressedNode& deltas = *positions.parts.at("deltas").sub;
  RECOMP_ASSIGN_OR_RETURN(const PackedColumn* packed,
                          ValidatedNsPacked<uint32_t>(deltas, positions.n));
  RECOMP_ASSIGN_OR_RETURN(Column<uint32_t> lengths,
                          ops::Unpack<uint32_t>(*packed));

  const CompressedPart& values_part = node.parts.at("values");
  if (values_part.is_terminal()) {
    RECOMP_ASSIGN_OR_RETURN(const Column<T>* values,
                            PlainPart<T>(node, "values"));
    return ExpandRuns(lengths, *values, node.n);
  }
  RECOMP_ASSIGN_OR_RETURN(AnyColumn values_any,
                          FusedDecompressNode(*values_part.sub));
  if (values_any.is_packed() || values_any.type() != TypeIdOf<T>()) {
    return Status::Corruption("RPE 'values' part has the wrong type");
  }
  return ExpandRuns(lengths, values_any.As<T>(), node.n);
}

template <typename T>
Result<AnyColumn> FusedFor(const CompressedNode& node) {
  RECOMP_ASSIGN_OR_RETURN(const Column<T>* refs, PlainPart<T>(node, "refs"));
  const CompressedNode& residual = *node.parts.at("residual").sub;
  const uint64_t ell = node.scheme.args[0].params.segment_length;
  if (ell == 0 || refs->size() != bits::CeilDiv(node.n, ell)) {
    return Status::Corruption("fused FOR arity mismatch");
  }
  RECOMP_ASSIGN_OR_RETURN(const PackedColumn* packed,
                          ValidatedNsPacked<T>(residual, node.n));
  RECOMP_ASSIGN_OR_RETURN(Column<T> out,
                          ForReconstruct(*packed, *refs, ell, node.n));
  return AnyColumn(std::move(out));
}

template <typename T>
Result<AnyColumn> FusedPfor(const CompressedNode& node) {
  RECOMP_ASSIGN_OR_RETURN(const Column<T>* refs_ptr,
                          PlainPart<T>(node, "refs"));
  const Column<T>& refs = *refs_ptr;
  const CompressedNode& patched = *node.parts.at("residual").sub;
  const uint64_t ell = node.scheme.args[0].params.segment_length;
  if (ell == 0 || refs.size() != bits::CeilDiv(node.n, ell)) {
    return Status::Corruption("fused FOR arity mismatch");
  }
  if (patched.n != node.n) {
    return Status::Corruption("MODELED residual length differs from envelope");
  }
  const CompressedNode& base = *patched.parts.at("base").sub;
  RECOMP_ASSIGN_OR_RETURN(const PackedColumn* packed,
                          ValidatedNsPacked<T>(base, node.n));
  RECOMP_ASSIGN_OR_RETURN(Column<T> out,
                          ForReconstruct(*packed, refs, ell, node.n));
  // The patch list describes the *residual* (pre-reference) values: undo the
  // segment reference when validating, re-add it when applying.
  RECOMP_ASSIGN_OR_RETURN(PatchList<T> patches, GetPatchList<T>(patched));
  const uint64_t mask = bits::LowMask64(patched.scheme.params.width);
  Status patch_status = ValidatePatches(
      patches, mask, node.n,
      [&](uint32_t pos) { return static_cast<T>(out[pos] - refs[pos / ell]); });
  if (!patch_status.ok()) return patch_status;
  const Column<uint32_t>& positions = *patches.positions;
  const Column<T>& values = *patches.values;
  for (uint64_t p = 0; p < positions.size(); ++p) {
    out[positions[p]] = static_cast<T>(refs[positions[p] / ell] + values[p]);
  }
  return AnyColumn(std::move(out));
}

template <typename T>
Result<AnyColumn> FusedPatchedNs(const CompressedNode& node) {
  const CompressedNode& base = *node.parts.at("base").sub;
  RECOMP_ASSIGN_OR_RETURN(const PackedColumn* packed,
                          ValidatedNsPacked<T>(base, node.n));
  RECOMP_ASSIGN_OR_RETURN(Column<T> out, ops::Unpack<T>(*packed));
  RECOMP_ASSIGN_OR_RETURN(PatchList<T> patches, GetPatchList<T>(node));
  const uint64_t mask = bits::LowMask64(node.scheme.params.width);
  Status patch_status = ValidatePatches(
      patches, mask, node.n, [&](uint32_t pos) { return out[pos]; });
  if (!patch_status.ok()) return patch_status;
  ScatterPatches(patches, &out);
  return AnyColumn(std::move(out));
}

template <typename T>
Result<AnyColumn> FusedDeltaZigZagNs(const CompressedNode& node) {
  const CompressedNode& zz = *node.parts.at("deltas").sub;
  if (zz.n != node.n) {
    return Status::Corruption("DELTA part length differs from envelope");
  }
  const CompressedNode& ns = *zz.parts.at("recoded").sub;
  RECOMP_ASSIGN_OR_RETURN(const PackedColumn* packed,
                          ValidatedNsPacked<T>(ns, node.n));
  RECOMP_ASSIGN_OR_RETURN(Column<T> out,
                          DeltaZigZagReconstruct<T>(*packed, node.n));
  return AnyColumn(std::move(out));
}

template <typename T>
Result<AnyColumn> FusedDeltaZigZagPatchedNs(const CompressedNode& node) {
  const CompressedNode& zz = *node.parts.at("deltas").sub;
  if (zz.n != node.n) {
    return Status::Corruption("DELTA part length differs from envelope");
  }
  const CompressedNode& patched = *zz.parts.at("recoded").sub;
  if (patched.out_type != TypeIdOf<T>() || patched.n != node.n) {
    return Status::Corruption("ZIGZAG recoded part has the wrong type");
  }
  const CompressedNode& base = *patched.parts.at("base").sub;
  RECOMP_ASSIGN_OR_RETURN(const PackedColumn* packed,
                          ValidatedNsPacked<T>(base, node.n));
  RECOMP_ASSIGN_OR_RETURN(Column<T> codes, ops::Unpack<T>(*packed));
  RECOMP_ASSIGN_OR_RETURN(PatchList<T> patches, GetPatchList<T>(patched));
  const uint64_t mask = bits::LowMask64(patched.scheme.params.width);
  Status patch_status = ValidatePatches(
      patches, mask, node.n, [&](uint32_t pos) { return codes[pos]; });
  if (!patch_status.ok()) return patch_status;
  ScatterPatches(patches, &codes);
  ZigZagPrefixInPlace(&codes);
  return AnyColumn(std::move(codes));
}

}  // namespace

Result<AnyColumn> FusedDecompressNode(const CompressedNode& node) {
  const FusedShape shape = ClassifyFusedShape(node);
  if (shape == FusedShape::kGeneric) {
    Result<AnyColumn> decoded = DecompressNode(node);
    if (decoded.ok() && obs::Enabled()) CountDecode(shape, node);
    return decoded;
  }
  Result<AnyColumn> decoded = internal::DispatchUnsignedTypeId(
      node.out_type, [&](auto tag) -> Result<AnyColumn> {
        using T = typename decltype(tag)::type;
        switch (shape) {
          case FusedShape::kRle:
            return FusedRle<T>(node);
          case FusedShape::kFor:
            return FusedFor<T>(node);
          case FusedShape::kDeltaZigZagNs:
            return FusedDeltaZigZagNs<T>(node);
          case FusedShape::kNs:
            return FusedNs<T>(node);
          case FusedShape::kRleNs:
            return FusedRleNs<T>(node);
          case FusedShape::kPatchedNs:
            return FusedPatchedNs<T>(node);
          case FusedShape::kPfor:
            return FusedPfor<T>(node);
          case FusedShape::kDeltaZigZagPatchedNs:
            return FusedDeltaZigZagPatchedNs<T>(node);
          case FusedShape::kGeneric:
            break;
        }
        return DecompressNode(node);
      });
  if (decoded.ok() && obs::Enabled()) CountDecode(shape, node);
  return decoded;
}

Result<AnyColumn> FusedDecompress(const CompressedColumn& compressed) {
  return FusedDecompressNode(compressed.root());
}

}  // namespace recomp
