// The compressed envelope: a recursive tree of "pure" part columns.
//
// Compressing with a composite descriptor yields a CompressedNode per
// descriptor node; each part is either a terminal column or a nested node
// produced by a child descriptor. The envelope is self-describing: it
// records the resolved descriptor and the length/type each node reproduces.

#ifndef RECOMP_CORE_COMPRESSED_H_
#define RECOMP_CORE_COMPRESSED_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "columnar/any_column.h"
#include "core/descriptor.h"

namespace recomp {

struct CompressedNode;

/// One named part of a compressed form: a terminal column, or the result of
/// compressing that part further with a child descriptor.
struct CompressedPart {
  std::optional<AnyColumn> column;
  std::unique_ptr<CompressedNode> sub;

  bool is_terminal() const { return column.has_value(); }
  uint64_t PayloadBytes() const;
  CompressedPart Clone() const;
};

/// The compressed form produced by one descriptor node.
struct CompressedNode {
  /// This node's scheme with resolved parameters (children always empty;
  /// composition is represented structurally by `parts`).
  SchemeDescriptor scheme;
  /// Length of the column this node decompresses to.
  uint64_t n = 0;
  /// Element type this node decompresses to.
  TypeId out_type = TypeId::kUInt32;
  std::map<std::string, CompressedPart> parts;

  /// Sum of terminal column payloads beneath this node.
  uint64_t PayloadBytes() const;

  /// Reconstructs the full descriptor including children.
  SchemeDescriptor FullDescriptor() const;

  CompressedNode Clone() const;
};

/// The terminal plain column behind a stored-plain ID envelope's "data"
/// part — the shape the streaming store serves for uncompressed tail chunks
/// and for rolled chunks whose seal job has not landed — or nullptr when the
/// node is not that shape: wrong scheme, part missing, composed, packed, of
/// an unexpected type, or of the wrong length (the length check
/// IdScheme::Decompress would make; a deserialized buffer can claim any n,
/// and in-place readers must not index past the real data). The exec fast
/// paths (exec/node_access.h) and the store's recompressor both key on this
/// one predicate so "stored plain" cannot mean different things per layer.
const AnyColumn* StoredPlainData(const CompressedNode& node);

/// A whole compressed column.
class CompressedColumn {
 public:
  CompressedColumn() = default;
  explicit CompressedColumn(CompressedNode root) : root_(std::move(root)) {}

  const CompressedNode& root() const { return root_; }
  CompressedNode& root() { return root_; }

  /// Logical row count.
  uint64_t size() const { return root_.n; }

  /// Element type of the decompressed column.
  TypeId type() const { return root_.out_type; }

  /// Footprint of the uncompressed column.
  uint64_t UncompressedBytes() const {
    return root_.n * static_cast<uint64_t>(TypeIdByteWidth(root_.out_type));
  }

  /// Sum of all terminal part payloads (descriptor metadata excluded; it is
  /// O(nodes), not O(n)).
  uint64_t PayloadBytes() const { return root_.PayloadBytes(); }

  /// UncompressedBytes / PayloadBytes; infinity-free (returns 0 for empty).
  double Ratio() const;

  /// The resolved composite descriptor.
  SchemeDescriptor Descriptor() const { return root_.FullDescriptor(); }

  /// Multi-line structural dump with per-part footprints.
  std::string ToString() const;

  CompressedColumn Clone() const { return CompressedColumn(root_.Clone()); }

 private:
  CompressedNode root_;
};

}  // namespace recomp

#endif  // RECOMP_CORE_COMPRESSED_H_
