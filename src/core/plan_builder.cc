#include "core/plan_builder.h"

#include "util/string_util.h"

namespace recomp {

namespace {

/// Emits operator sequences per scheme, walking the envelope tree.
class Builder {
 public:
  Result<Plan> Build(const CompressedNode& root) {
    RECOMP_ASSIGN_OR_RETURN(int out, EmitNode(root, "", "out"));
    (void)out;
    RECOMP_RETURN_NOT_OK(plan_.Validate());
    return std::move(plan_);
  }

 private:
  int Emit(PlanNode node) {
    plan_.nodes.push_back(std::move(node));
    return static_cast<int>(plan_.nodes.size() - 1);
  }

  int EmitInput(const std::string& path, const std::string& label) {
    PlanNode node;
    node.op = PlanOpKind::kInput;
    node.input_path = path;
    node.label = label;
    return Emit(std::move(node));
  }

  /// Returns the slot holding the materialized content of `part_name`:
  /// an Input node for terminal parts, or the sub-envelope's output.
  Result<int> EmitPart(const CompressedNode& node, const std::string& part_name,
                       const std::string& path_prefix,
                       const std::string& label) {
    auto it = node.parts.find(part_name);
    if (it == node.parts.end()) {
      return Status::Corruption(
          StringFormat("envelope lacks part '%s'", part_name.c_str()));
    }
    const std::string path =
        path_prefix.empty() ? part_name : path_prefix + "/" + part_name;
    if (it->second.is_terminal()) {
      return EmitInput(path, label);
    }
    return EmitNode(*it->second.sub, path, label);
  }

  /// Emits the decompression of `node`; returns the output slot, labeled
  /// `label`.
  Result<int> EmitNode(const CompressedNode& node,
                       const std::string& path_prefix,
                       const std::string& label) {
    switch (node.scheme.kind) {
      case SchemeKind::kId:
        return EmitPart(node, "data", path_prefix, label);

      case SchemeKind::kZigZag: {
        RECOMP_ASSIGN_OR_RETURN(
            int recoded, EmitPart(node, "recoded", path_prefix, "recoded"));
        PlanNode decode;
        decode.op = PlanOpKind::kZigZagDecode;
        decode.inputs = {recoded};
        decode.type_param = node.out_type;
        decode.label = label;
        return Emit(std::move(decode));
      }

      case SchemeKind::kNs: {
        RECOMP_ASSIGN_OR_RETURN(
            int packed, EmitPart(node, "packed", path_prefix, "packed"));
        PlanNode unpack;
        unpack.op = PlanOpKind::kUnpack;
        unpack.inputs = {packed};
        unpack.label = label;
        return Emit(std::move(unpack));
      }

      case SchemeKind::kVByte: {
        RECOMP_ASSIGN_OR_RETURN(
            int stream, EmitPart(node, "stream", path_prefix, "stream"));
        PlanNode decode;
        decode.op = PlanOpKind::kVByteDecode;
        decode.inputs = {stream};
        decode.imm2 = node.n;
        decode.type_param = node.out_type;
        decode.label = label;
        return Emit(std::move(decode));
      }

      case SchemeKind::kDelta: {
        // The paper's DELTA decompression: one inclusive PrefixSum. When
        // this node compresses RPE's positions part, this *is* Algorithm 1
        // line 1.
        RECOMP_ASSIGN_OR_RETURN(
            int deltas, EmitPart(node, "deltas", path_prefix, "deltas"));
        PlanNode scan;
        scan.op = PlanOpKind::kPrefixSumInclusive;
        scan.inputs = {deltas};
        scan.label = label;
        return Emit(std::move(scan));
      }

      case SchemeKind::kRpe: {
        // Algorithm 1, lines 3-8 (line 1 belongs to the DELTA child when
        // present; line 2 is the envelope's n).
        RECOMP_ASSIGN_OR_RETURN(
            int values, EmitPart(node, "values", path_prefix, "values"));
        RECOMP_ASSIGN_OR_RETURN(
            int positions,
            EmitPart(node, "positions", path_prefix, "run_positions"));
        PlanNode pop;
        pop.op = PlanOpKind::kPopBack;
        pop.inputs = {positions};
        pop.label = "run_positions'";
        const int starts = Emit(std::move(pop));

        PlanNode ones;
        ones.op = PlanOpKind::kConstant;
        ones.imm = 1;
        ones.inputs = {starts};  // length = |run_positions'|
        ones.label = "ones";
        const int ones_slot = Emit(std::move(ones));

        PlanNode zeros;
        zeros.op = PlanOpKind::kConstant;
        zeros.imm = 0;
        zeros.imm2 = node.n;
        zeros.label = "zeros";
        const int zeros_slot = Emit(std::move(zeros));

        PlanNode scatter;
        scatter.op = PlanOpKind::kScatter;
        scatter.inputs = {ones_slot, starts, zeros_slot};
        scatter.label = "pos_delta";
        const int pos_delta = Emit(std::move(scatter));

        PlanNode scan;
        scan.op = PlanOpKind::kPrefixSumInclusive;
        scan.inputs = {pos_delta};
        scan.label = "positions";
        const int run_ids = Emit(std::move(scan));

        PlanNode gather;
        gather.op = PlanOpKind::kGather;
        gather.inputs = {values, run_ids};
        gather.label = label;
        return Emit(std::move(gather));
      }

      case SchemeKind::kDict: {
        RECOMP_ASSIGN_OR_RETURN(
            int dictionary,
            EmitPart(node, "dictionary", path_prefix, "dictionary"));
        RECOMP_ASSIGN_OR_RETURN(int codes,
                                EmitPart(node, "codes", path_prefix, "codes"));
        PlanNode gather;
        gather.op = PlanOpKind::kGather;
        gather.inputs = {dictionary, codes};
        gather.label = label;
        return Emit(std::move(gather));
      }

      case SchemeKind::kStep: {
        RECOMP_ASSIGN_OR_RETURN(int refs,
                                EmitPart(node, "refs", path_prefix, "refs"));
        RECOMP_ASSIGN_OR_RETURN(
            int indices,
            EmitSegmentIndices(node.scheme.params.segment_length, node.n));
        PlanNode gather;
        gather.op = PlanOpKind::kGather;
        gather.inputs = {refs, indices};
        gather.label = label;
        return Emit(std::move(gather));
      }

      case SchemeKind::kPlin: {
        RECOMP_ASSIGN_OR_RETURN(int bases,
                                EmitPart(node, "bases", path_prefix, "bases"));
        RECOMP_ASSIGN_OR_RETURN(
            int slopes, EmitPart(node, "slopes", path_prefix, "slopes"));
        PlanNode eval;
        eval.op = PlanOpKind::kEvalPlin;
        eval.inputs = {bases, slopes};
        eval.imm = node.scheme.params.segment_length;
        eval.imm2 = node.n;
        eval.label = label;
        return Emit(std::move(eval));
      }

      case SchemeKind::kModeled: {
        if (node.scheme.args.size() != 1) {
          return Status::Corruption("MODELED envelope lacks its model");
        }
        const SchemeDescriptor& model = node.scheme.args[0];
        RECOMP_ASSIGN_OR_RETURN(
            int residual,
            EmitPart(node, "residual", path_prefix, "offsets"));
        int replicated;
        if (model.kind == SchemeKind::kStep) {
          // Algorithm 2: id generation, ÷ ells, Gather, then the final add.
          RECOMP_ASSIGN_OR_RETURN(int refs,
                                  EmitPart(node, "refs", path_prefix, "refs"));
          RECOMP_ASSIGN_OR_RETURN(
              int indices,
              EmitSegmentIndices(model.params.segment_length, node.n));
          PlanNode gather;
          gather.op = PlanOpKind::kGather;
          gather.inputs = {refs, indices};
          gather.label = "replicated";
          replicated = Emit(std::move(gather));
        } else if (model.kind == SchemeKind::kPlin) {
          RECOMP_ASSIGN_OR_RETURN(
              int bases, EmitPart(node, "bases", path_prefix, "bases"));
          RECOMP_ASSIGN_OR_RETURN(
              int slopes, EmitPart(node, "slopes", path_prefix, "slopes"));
          PlanNode eval;
          eval.op = PlanOpKind::kEvalPlin;
          eval.inputs = {bases, slopes};
          eval.imm = model.params.segment_length;
          eval.imm2 = node.n;
          eval.label = "line";
          replicated = Emit(std::move(eval));
        } else {
          return Status::Corruption("MODELED model kind is not a model");
        }
        PlanNode add;
        add.op = PlanOpKind::kElementwise;
        add.bin_op = ops::BinOp::kAdd;
        add.inputs = {replicated, residual};
        add.label = label;
        return Emit(std::move(add));
      }

      case SchemeKind::kPatched: {
        RECOMP_ASSIGN_OR_RETURN(int base,
                                EmitPart(node, "base", path_prefix, "base"));
        RECOMP_ASSIGN_OR_RETURN(
            int positions,
            EmitPart(node, "patch_positions", path_prefix, "patch_positions"));
        RECOMP_ASSIGN_OR_RETURN(
            int values,
            EmitPart(node, "patch_values", path_prefix, "patch_values"));
        PlanNode scatter;
        scatter.op = PlanOpKind::kScatter;
        scatter.inputs = {values, positions, base};
        scatter.label = label;
        return Emit(std::move(scatter));
      }
    }
    return Status::NotImplemented(
        StringFormat("no plan emission for scheme kind %d",
                     static_cast<int>(node.scheme.kind)));
  }

  /// Algorithm 2, lines 1-4: ones, (exclusive) prefix-sum ids, ells,
  /// elementwise division. We read the paper's `id <- PrefixSum(ones)` as an
  /// exclusive scan so ids are 0-based.
  Result<int> EmitSegmentIndices(uint64_t ell, uint64_t n) {
    if (ell == 0) {
      return Status::Corruption("model lacks a segment length");
    }
    if (n >= (uint64_t{1} << 32)) {
      return Status::OutOfRange("plans support columns below 2^32 rows");
    }
    PlanNode ones;
    ones.op = PlanOpKind::kConstant;
    ones.imm = 1;
    ones.imm2 = n;
    ones.label = "ones";
    const int ones_slot = Emit(std::move(ones));

    PlanNode scan;
    scan.op = PlanOpKind::kPrefixSumExclusive;
    scan.inputs = {ones_slot};
    scan.label = "id";
    const int id = Emit(std::move(scan));

    PlanNode ells;
    ells.op = PlanOpKind::kConstant;
    ells.imm = ell;
    ells.inputs = {id};
    ells.label = "ells";
    const int ells_slot = Emit(std::move(ells));

    PlanNode divide;
    divide.op = PlanOpKind::kElementwise;
    divide.bin_op = ops::BinOp::kDiv;
    divide.inputs = {id, ells_slot};
    divide.label = "ref_indices";
    return Emit(std::move(divide));
  }

  Plan plan_;
};

}  // namespace

Result<Plan> BuildDecompressionPlanForNode(const CompressedNode& node) {
  Builder builder;
  return builder.Build(node);
}

Result<Plan> BuildDecompressionPlan(const CompressedColumn& compressed) {
  return BuildDecompressionPlanForNode(compressed.root());
}

}  // namespace recomp
