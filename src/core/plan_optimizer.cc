#include "core/plan_optimizer.h"

#include <optional>

namespace recomp {

namespace {

bool IsConstant(const Plan& plan, int slot, uint64_t* value) {
  const PlanNode& node = plan.nodes[static_cast<size_t>(slot)];
  if (node.op != PlanOpKind::kConstant) return false;
  *value = node.imm;
  return true;
}

/// One rewrite round; returns true if anything changed.
bool RewriteOnce(Plan* plan) {
  for (size_t i = 0; i < plan->nodes.size(); ++i) {
    PlanNode& node = plan->nodes[i];

    // R1: Elementwise(op, a, Constant(c)) -> ElementwiseScalar(op, a, c).
    // (Divisor/subtrahend must be the constant side; for + and * either
    // side fuses by commutativity.)
    if (node.op == PlanOpKind::kElementwise) {
      uint64_t c = 0;
      if (IsConstant(*plan, node.inputs[1], &c)) {
        node.op = PlanOpKind::kElementwiseScalar;
        node.imm = c;
        node.inputs = {node.inputs[0]};
        return true;
      }
      if ((node.bin_op == ops::BinOp::kAdd ||
           node.bin_op == ops::BinOp::kMul) &&
          IsConstant(*plan, node.inputs[0], &c)) {
        node.op = PlanOpKind::kElementwiseScalar;
        node.imm = c;
        node.inputs = {node.inputs[1]};
        return true;
      }
    }

    // R2: PrefixSum(Constant(1)) -> Iota (inclusive: 1.., exclusive: 0..).
    if (node.op == PlanOpKind::kPrefixSumInclusive ||
        node.op == PlanOpKind::kPrefixSumExclusive) {
      uint64_t c = 0;
      if (IsConstant(*plan, node.inputs[0], &c) && c == 1) {
        const PlanNode& ones = plan->nodes[static_cast<size_t>(node.inputs[0])];
        const bool inclusive = node.op == PlanOpKind::kPrefixSumInclusive;
        node.op = PlanOpKind::kIota;
        node.imm = inclusive ? 1 : 0;
        node.imm2 = ones.imm2;
        node.type_param = ones.type_param;
        node.inputs = ones.inputs;  // Length source, if any.
        return true;
      }
    }

    // R3: Scatter(Constant(v), indices, Constant(0, n)) -> ScatterConst.
    if (node.op == PlanOpKind::kScatter) {
      uint64_t value = 0;
      uint64_t zero = 0;
      if (IsConstant(*plan, node.inputs[0], &value) &&
          IsConstant(*plan, node.inputs[2], &zero) && zero == 0) {
        const PlanNode& zeros = plan->nodes[static_cast<size_t>(node.inputs[2])];
        if (zeros.inputs.empty()) {  // Length known via imm2.
          node.op = PlanOpKind::kScatterConst;
          node.imm = value;
          node.imm2 = zeros.imm2;
          node.type_param = zeros.type_param;
          node.inputs = {node.inputs[1]};
          return true;
        }
      }
    }

    // R4: Gather(values, ElementwiseScalar('/', Iota(0), ell)) -> Replicate.
    if (node.op == PlanOpKind::kGather) {
      const PlanNode& idx = plan->nodes[static_cast<size_t>(node.inputs[1])];
      if (idx.op == PlanOpKind::kElementwiseScalar &&
          idx.bin_op == ops::BinOp::kDiv && idx.imm != 0) {
        const PlanNode& iota =
            plan->nodes[static_cast<size_t>(idx.inputs[0])];
        if (iota.op == PlanOpKind::kIota && iota.imm == 0 &&
            iota.inputs.empty() && iota.imm2 != 0) {
          node.op = PlanOpKind::kReplicate;
          node.imm = idx.imm;
          node.imm2 = iota.imm2;
          node.inputs = {node.inputs[0]};
          return true;
        }
      }
    }
  }
  return false;
}

/// Removes nodes no longer reachable from the output.
Plan DropDeadNodes(const Plan& plan) {
  std::vector<bool> live(plan.nodes.size(), false);
  std::vector<int> stack = {static_cast<int>(plan.nodes.size()) - 1};
  while (!stack.empty()) {
    const int slot = stack.back();
    stack.pop_back();
    if (live[static_cast<size_t>(slot)]) continue;
    live[static_cast<size_t>(slot)] = true;
    for (int in : plan.nodes[static_cast<size_t>(slot)].inputs) {
      stack.push_back(in);
    }
  }
  std::vector<int> remap(plan.nodes.size(), -1);
  Plan out;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    if (!live[i]) continue;
    PlanNode node = plan.nodes[i];
    for (int& in : node.inputs) in = remap[static_cast<size_t>(in)];
    remap[i] = static_cast<int>(out.nodes.size());
    out.nodes.push_back(std::move(node));
  }
  return out;
}

}  // namespace

Result<Plan> OptimizePlan(const Plan& plan) {
  RECOMP_RETURN_NOT_OK(plan.Validate());
  Plan working = plan;
  while (RewriteOnce(&working)) {
  }
  Plan out = DropDeadNodes(working);
  RECOMP_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace recomp
