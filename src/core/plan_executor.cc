#include "core/plan_executor.h"

#include "ops/constant.h"
#include "ops/gather.h"
#include "ops/pack.h"
#include "ops/prefix_sum.h"
#include "ops/scatter.h"
#include "schemes/model_fit.h"
#include "schemes/scheme.h"
#include "schemes/scheme_internal.h"
#include "util/string_util.h"

namespace recomp {

using internal::DispatchAnyColumn;
using internal::DispatchAnyTypeId;
using internal::DispatchUnsignedTypeId;

Result<const AnyColumn*> ResolvePartPath(const CompressedNode& node,
                                         const std::string& path) {
  const CompressedNode* current = &node;
  size_t begin = 0;
  while (true) {
    const size_t slash = path.find('/', begin);
    const std::string component = path.substr(
        begin, slash == std::string::npos ? std::string::npos : slash - begin);
    auto it = current->parts.find(component);
    if (it == current->parts.end()) {
      return Status::KeyError(
          StringFormat("no part '%s' along path '%s'", component.c_str(),
                       path.c_str()));
    }
    if (slash == std::string::npos) {
      if (!it->second.is_terminal()) {
        return Status::KeyError(StringFormat(
            "part path '%s' names a sub-envelope, not a column", path.c_str()));
      }
      return &*it->second.column;
    }
    if (it->second.is_terminal() || !it->second.sub) {
      return Status::KeyError(StringFormat(
          "part path '%s' descends into a terminal column", path.c_str()));
    }
    current = it->second.sub.get();
    begin = slash + 1;
  }
}

namespace {

Result<AnyColumn> EvalPrefixSum(const AnyColumn& in, bool inclusive) {
  return DispatchAnyColumn(in, [&](const auto& col) -> Result<AnyColumn> {
    if (inclusive) return AnyColumn(ops::PrefixSumInclusive(col));
    return AnyColumn(ops::PrefixSumExclusive(col));
  });
}

Result<AnyColumn> EvalPopBack(const AnyColumn& in) {
  return DispatchAnyColumn(in, [&](const auto& col) -> Result<AnyColumn> {
    return AnyColumn(ops::PopBack(col));
  });
}

Result<AnyColumn> EvalConstant(const PlanNode& node, uint64_t length) {
  return DispatchAnyTypeId(node.type_param, [&](auto tag) -> Result<AnyColumn> {
    using T = typename decltype(tag)::type;
    return AnyColumn(ops::Constant(static_cast<T>(node.imm), length));
  });
}

Result<AnyColumn> EvalIota(const PlanNode& node, uint64_t length) {
  return DispatchAnyTypeId(node.type_param, [&](auto tag) -> Result<AnyColumn> {
    using T = typename decltype(tag)::type;
    Column<T> out(length);
    for (uint64_t i = 0; i < length; ++i) {
      out[i] = static_cast<T>(node.imm + i);
    }
    return AnyColumn(std::move(out));
  });
}

Result<AnyColumn> EvalGather(const AnyColumn& values, const AnyColumn& indices) {
  if (indices.is_packed() || indices.type() != TypeId::kUInt32) {
    return Status::InvalidArgument("Gather indices must be a uint32 column");
  }
  const Column<uint32_t>& idx = indices.As<uint32_t>();
  return DispatchAnyColumn(values, [&](const auto& vals) -> Result<AnyColumn> {
    RECOMP_ASSIGN_OR_RETURN(auto out, ops::Gather(vals, idx));
    return AnyColumn(std::move(out));
  });
}

Result<AnyColumn> EvalScatter(const AnyColumn& values, const AnyColumn& indices,
                              const AnyColumn& target) {
  if (indices.is_packed() || indices.type() != TypeId::kUInt32) {
    return Status::InvalidArgument("Scatter indices must be a uint32 column");
  }
  if (values.type() != target.type() || values.is_packed() ||
      target.is_packed()) {
    return Status::InvalidArgument(
        "Scatter values/target must be plain columns of one type");
  }
  const Column<uint32_t>& idx = indices.As<uint32_t>();
  return DispatchAnyColumn(target, [&](const auto& tgt) -> Result<AnyColumn> {
    using T = typename std::decay_t<decltype(tgt)>::value_type;
    auto out = tgt;  // Functional semantics: scatter into a copy.
    RECOMP_RETURN_NOT_OK(ops::ScatterInto(values.As<T>(), idx, &out));
    return AnyColumn(std::move(out));
  });
}

Result<AnyColumn> EvalElementwise(const PlanNode& node, const AnyColumn& a,
                                  const AnyColumn& b) {
  if (a.type() != b.type() || a.is_packed() || b.is_packed()) {
    return Status::InvalidArgument(
        "Elementwise operands must be plain columns of one type");
  }
  return DispatchAnyColumn(a, [&](const auto& lhs) -> Result<AnyColumn> {
    using T = typename std::decay_t<decltype(lhs)>::value_type;
    RECOMP_ASSIGN_OR_RETURN(auto out,
                            ops::Elementwise(node.bin_op, lhs, b.As<T>()));
    return AnyColumn(std::move(out));
  });
}

Result<AnyColumn> EvalElementwiseScalar(const PlanNode& node,
                                        const AnyColumn& a) {
  return DispatchAnyColumn(a, [&](const auto& lhs) -> Result<AnyColumn> {
    using T = typename std::decay_t<decltype(lhs)>::value_type;
    RECOMP_ASSIGN_OR_RETURN(
        auto out,
        ops::ElementwiseScalar(node.bin_op, lhs, static_cast<T>(node.imm)));
    return AnyColumn(std::move(out));
  });
}

Result<AnyColumn> EvalUnpack(const AnyColumn& in) {
  if (!in.is_packed()) {
    return Status::InvalidArgument("Unpack expects a packed column");
  }
  const PackedColumn& packed = in.packed();
  return DispatchUnsignedTypeId(
      TypeIdToUnsigned(packed.logical_type),
      [&](auto tag) -> Result<AnyColumn> {
        using T = typename decltype(tag)::type;
        RECOMP_ASSIGN_OR_RETURN(Column<T> out, ops::Unpack<T>(packed));
        return AnyColumn(std::move(out));
      });
}

Result<AnyColumn> EvalReplicate(const PlanNode& node, const AnyColumn& values) {
  if (node.imm == 0) {
    return Status::InvalidArgument("Replicate needs a segment length");
  }
  return DispatchAnyColumn(values, [&](const auto& vals) -> Result<AnyColumn> {
    using T = typename std::decay_t<decltype(vals)>::value_type;
    Column<T> out(node.imm2);
    for (uint64_t i = 0; i < node.imm2; ++i) {
      const uint64_t seg = i / node.imm;
      if (seg >= vals.size()) {
        return Status::OutOfRange("Replicate runs past its values column");
      }
      out[i] = vals[seg];
    }
    return AnyColumn(std::move(out));
  });
}

Result<AnyColumn> EvalPlinOp(const PlanNode& node, const AnyColumn& bases,
                             const AnyColumn& slopes) {
  if (slopes.is_packed() || slopes.type() != TypeId::kInt64) {
    return Status::InvalidArgument("EvalPlin slopes must be int64");
  }
  return DispatchUnsignedTypeId(
      TypeIdToUnsigned(bases.type()), [&](auto tag) -> Result<AnyColumn> {
        using T = typename decltype(tag)::type;
        if (bases.is_packed() || bases.type() != TypeIdOf<T>()) {
          return Status::InvalidArgument("EvalPlin bases must be unsigned");
        }
        internal::PlinFit<T> fit;
        fit.bases = bases.As<T>();
        fit.slopes = slopes.As<int64_t>();
        const uint64_t segments = bits::CeilDiv(node.imm2, node.imm);
        if (fit.bases.size() != segments || fit.slopes.size() != segments) {
          return Status::OutOfRange("EvalPlin arity mismatch");
        }
        return AnyColumn(internal::EvaluatePlin(fit, node.imm, node.imm2));
      });
}

/// Decode recodings by delegating to the scheme's reference decompression.
Result<AnyColumn> EvalSchemeDecode(SchemeKind kind, const std::string& part,
                                   const AnyColumn& in, uint64_t n,
                                   TypeId out_type) {
  PartsMap parts;
  parts.emplace(part, in);
  DecompressContext ctx;
  ctx.n = n;
  ctx.out_type = out_type;
  return GetScheme(kind)->Decompress(parts, SchemeDescriptor(kind), ctx);
}

}  // namespace

Result<AnyColumn> ExecutePlanForNode(const Plan& plan,
                                     const CompressedNode& root) {
  RECOMP_RETURN_NOT_OK(plan.Validate());
  std::vector<AnyColumn> slots;
  slots.reserve(plan.nodes.size());

  for (const PlanNode& node : plan.nodes) {
    auto in = [&](int i) -> const AnyColumn& {
      return slots[static_cast<size_t>(node.inputs[static_cast<size_t>(i)])];
    };
    Result<AnyColumn> value = [&]() -> Result<AnyColumn> {
      switch (node.op) {
        case PlanOpKind::kInput: {
          RECOMP_ASSIGN_OR_RETURN(const AnyColumn* col,
                                  ResolvePartPath(root, node.input_path));
          return *col;
        }
        case PlanOpKind::kPrefixSumInclusive:
          return EvalPrefixSum(in(0), /*inclusive=*/true);
        case PlanOpKind::kPrefixSumExclusive:
          return EvalPrefixSum(in(0), /*inclusive=*/false);
        case PlanOpKind::kPopBack:
          return EvalPopBack(in(0));
        case PlanOpKind::kConstant:
          return EvalConstant(node,
                              node.inputs.empty() ? node.imm2 : in(0).size());
        case PlanOpKind::kIota:
          return EvalIota(node,
                          node.inputs.empty() ? node.imm2 : in(0).size());
        case PlanOpKind::kScatter:
          return EvalScatter(in(0), in(1), in(2));
        case PlanOpKind::kScatterConst: {
          return DispatchAnyTypeId(
              node.type_param, [&](auto tag) -> Result<AnyColumn> {
                using T = typename decltype(tag)::type;
                const AnyColumn& indices = in(0);
                if (indices.is_packed() ||
                    indices.type() != TypeId::kUInt32) {
                  return Status::InvalidArgument(
                      "ScatterConst indices must be uint32");
                }
                RECOMP_ASSIGN_OR_RETURN(
                    auto out,
                    ops::ScatterConstant(static_cast<T>(node.imm),
                                         indices.As<uint32_t>(), node.imm2));
                return AnyColumn(std::move(out));
              });
        }
        case PlanOpKind::kGather:
          return EvalGather(in(0), in(1));
        case PlanOpKind::kElementwise:
          return EvalElementwise(node, in(0), in(1));
        case PlanOpKind::kElementwiseScalar:
          return EvalElementwiseScalar(node, in(0));
        case PlanOpKind::kUnpack:
          return EvalUnpack(in(0));
        case PlanOpKind::kZigZagDecode:
          return EvalSchemeDecode(SchemeKind::kZigZag, "recoded", in(0),
                                  in(0).size(), node.type_param);
        case PlanOpKind::kVByteDecode:
          return EvalSchemeDecode(SchemeKind::kVByte, "stream", in(0),
                                  node.imm2, node.type_param);
        case PlanOpKind::kEvalPlin:
          return EvalPlinOp(node, in(0), in(1));
        case PlanOpKind::kReplicate:
          return EvalReplicate(node, in(0));
      }
      return Status::NotImplemented("unknown plan op");
    }();
    if (!value.ok()) {
      return Status(value.status().code(),
                    StringFormat("plan node '%s' (%s): %s", node.label.c_str(),
                                 PlanOpKindName(node.op),
                                 value.status().message().c_str()));
    }
    slots.push_back(std::move(*value));
  }
  return std::move(slots.back());
}

Result<AnyColumn> ExecutePlan(const Plan& plan,
                              const CompressedColumn& compressed) {
  return ExecutePlanForNode(plan, compressed.root());
}

}  // namespace recomp
