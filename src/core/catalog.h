// The catalog: classic lightweight schemes as named points in the
// composition space.
//
// The paper's thesis is that the familiar zoo — RLE, FOR, PFOR, DELTA-based
// codecs, dictionary coding — decomposes into a small set of primitives.
// This catalog registers each classic as a descriptor template over
// src/schemes' primitives; nothing here has its own compression code.

#ifndef RECOMP_CORE_CATALOG_H_
#define RECOMP_CORE_CATALOG_H_

#include <string>
#include <vector>

#include "core/descriptor.h"
#include "util/result.h"

namespace recomp {

/// One classic scheme and its decomposition.
struct CatalogEntry {
  std::string name;
  std::string description;
  SchemeDescriptor descriptor;
};

/// All registered classics (stable order).
const std::vector<CatalogEntry>& ClassicCatalog();

/// Looks a classic up by name ("RLE", "FOR", ...).
Result<SchemeDescriptor> CatalogLookup(const std::string& name);

/// RLE: RPE{positions: DELTA} — §II-A. The deltas of the run end positions
/// are exactly the classic run lengths.
SchemeDescriptor MakeRle();

/// RLE with packed parts: lengths through NS, values through NS.
SchemeDescriptor MakeRleNs();

/// The intro's shipped-orders composite: RLE over the dates, DELTA over the
/// run values, everything packed.
SchemeDescriptor MakeRleDelta();

/// FOR: MODELED(STEP(ell)){residual: NS(width)} — §II-B's STEP + NS.
/// Zero parameters resolve from the data.
SchemeDescriptor MakeFor(uint64_t segment_length = 0, int width = 0);

/// PFOR: FOR with an L0-patched residual (§II-B's patch extension).
SchemeDescriptor MakePfor(uint64_t segment_length = 0);

/// LFOR: FOR with the piecewise-linear model (§II-B's slope extension).
SchemeDescriptor MakeLfor(uint64_t segment_length = 0);

/// DELTA + ZIGZAG + NS: the standard sorted-column codec.
SchemeDescriptor MakeDeltaNs();

/// DELTA + ZIGZAG + VBYTE: the log-metric variant.
SchemeDescriptor MakeDeltaVByte();

/// DICT with packed codes.
SchemeDescriptor MakeDictNs();

}  // namespace recomp

#endif  // RECOMP_CORE_CATALOG_H_
