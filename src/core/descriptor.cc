#include "core/descriptor.h"

#include <cctype>

#include "util/string_util.h"

namespace recomp {

const char* SchemeKindName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kId:
      return "ID";
    case SchemeKind::kZigZag:
      return "ZIGZAG";
    case SchemeKind::kNs:
      return "NS";
    case SchemeKind::kVByte:
      return "VBYTE";
    case SchemeKind::kDelta:
      return "DELTA";
    case SchemeKind::kRpe:
      return "RPE";
    case SchemeKind::kDict:
      return "DICT";
    case SchemeKind::kStep:
      return "STEP";
    case SchemeKind::kPlin:
      return "PLIN";
    case SchemeKind::kModeled:
      return "MODELED";
    case SchemeKind::kPatched:
      return "PATCHED";
  }
  return "?";
}

bool SchemeKindFromName(const std::string& name, SchemeKind* out) {
  for (int i = 0; i < kNumSchemeKinds; ++i) {
    SchemeKind k = static_cast<SchemeKind>(i);
    if (name == SchemeKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

SchemeDescriptor&& SchemeDescriptor::With(const std::string& part,
                                          SchemeDescriptor child) && {
  children[part] = std::move(child);
  return std::move(*this);
}

SchemeDescriptor SchemeDescriptor::With(const std::string& part,
                                        SchemeDescriptor child) const& {
  SchemeDescriptor copy = *this;
  copy.children[part] = std::move(child);
  return copy;
}

bool SchemeDescriptor::operator==(const SchemeDescriptor& other) const {
  return kind == other.kind && params == other.params && args == other.args &&
         children == other.children;
}

uint64_t SchemeDescriptor::NodeCount() const {
  uint64_t count = 1;
  for (const auto& a : args) count += a.NodeCount();
  for (const auto& [name, child] : children) count += child.NodeCount();
  return count;
}

std::string SchemeDescriptor::ToString() const {
  std::string out = SchemeKindName(kind);
  if (kind == SchemeKind::kModeled) {
    out += "(";
    out += args.empty() ? std::string("?") : args[0].ToString();
    out += ")";
  } else if (params.width != 0) {
    out += StringFormat("(%d)", params.width);
  } else if (params.segment_length != 0) {
    out += StringFormat("(%llu)",
                        static_cast<unsigned long long>(params.segment_length));
  }
  if (!children.empty()) {
    std::vector<std::string> rendered;
    rendered.reserve(children.size());
    for (const auto& [name, child] : children) {
      rendered.push_back(name + ":" + child.ToString());
    }
    out += "{" + Join(rendered, ",") + "}";
  }
  return out;
}

Status SchemeDescriptor::Validate() const {
  if (kind == SchemeKind::kModeled) {
    if (args.size() != 1) {
      return Status::InvalidArgument("MODELED requires exactly one model arg");
    }
    if (args[0].kind != SchemeKind::kStep && args[0].kind != SchemeKind::kPlin) {
      return Status::InvalidArgument(
          "MODELED model must be STEP or PLIN, got " +
          std::string(SchemeKindName(args[0].kind)));
    }
    if (!args[0].children.empty()) {
      return Status::InvalidArgument(
          "a MODELED model argument cannot itself have children");
    }
    RECOMP_RETURN_NOT_OK(args[0].Validate());
  } else if (!args.empty()) {
    return Status::InvalidArgument(
        StringFormat("%s takes no scheme arguments", SchemeKindName(kind)));
  }
  if (params.width < 0 || params.width > 64) {
    return Status::InvalidArgument(
        StringFormat("width %d outside [0, 64]", params.width));
  }
  const bool takes_width =
      kind == SchemeKind::kNs || kind == SchemeKind::kPatched;
  const bool takes_ell =
      kind == SchemeKind::kStep || kind == SchemeKind::kPlin;
  if (params.width != 0 && !takes_width) {
    return Status::InvalidArgument(
        StringFormat("%s takes no width parameter", SchemeKindName(kind)));
  }
  if (params.segment_length != 0 && !takes_ell) {
    return Status::InvalidArgument(StringFormat(
        "%s takes no segment-length parameter", SchemeKindName(kind)));
  }
  if (kind == SchemeKind::kPlin && params.segment_length == 1) {
    return Status::InvalidArgument("PLIN needs segments of at least 2 values");
  }
  for (const auto& [name, child] : children) {
    if (name.empty()) {
      return Status::InvalidArgument("child part name must be non-empty");
    }
    RECOMP_RETURN_NOT_OK(child.Validate());
  }
  if (kind == SchemeKind::kId && !children.empty()) {
    return Status::InvalidArgument("ID produces no parts to compose with");
  }
  return Status::OK();
}

namespace {

/// Recursive-descent parser over the ToString grammar.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<SchemeDescriptor> Parse() {
    RECOMP_ASSIGN_OR_RETURN(SchemeDescriptor desc, ParseDescriptor());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StringFormat("trailing input at offset %zu in '%s'", pos_,
                       text_.c_str()));
    }
    return desc;
  }

 private:
  Result<SchemeDescriptor> ParseDescriptor() {
    SkipSpace();
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      name += text_[pos_++];
    }
    SchemeDescriptor desc;
    if (!SchemeKindFromName(name, &desc.kind)) {
      return Status::InvalidArgument("unknown scheme name '" + name + "'");
    }
    SkipSpace();
    if (Peek() == '(') {
      ++pos_;
      SkipSpace();
      if (desc.kind == SchemeKind::kModeled) {
        RECOMP_ASSIGN_OR_RETURN(SchemeDescriptor model, ParseDescriptor());
        desc.args.push_back(std::move(model));
      } else {
        RECOMP_ASSIGN_OR_RETURN(uint64_t value, ParseInteger());
        if (desc.kind == SchemeKind::kStep || desc.kind == SchemeKind::kPlin) {
          desc.params.segment_length = value;
        } else {
          desc.params.width = static_cast<int>(value);
        }
      }
      SkipSpace();
      if (Peek() != ')') {
        return Status::InvalidArgument("expected ')' in descriptor");
      }
      ++pos_;
      SkipSpace();
    }
    if (Peek() == '{') {
      ++pos_;
      while (true) {
        SkipSpace();
        std::string part;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          part += text_[pos_++];
        }
        SkipSpace();
        if (part.empty() || Peek() != ':') {
          return Status::InvalidArgument("expected 'part:' inside '{...}'");
        }
        ++pos_;
        RECOMP_ASSIGN_OR_RETURN(SchemeDescriptor child, ParseDescriptor());
        desc.children[part] = std::move(child);
        SkipSpace();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        if (Peek() == '}') {
          ++pos_;
          break;
        }
        return Status::InvalidArgument("expected ',' or '}' in children list");
      }
    }
    return desc;
  }

  Result<uint64_t> ParseInteger() {
    SkipSpace();
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Status::InvalidArgument("expected an integer parameter");
    }
    uint64_t v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + static_cast<uint64_t>(text_[pos_++] - '0');
    }
    return v;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<SchemeDescriptor> SchemeDescriptor::Parse(const std::string& text) {
  Parser parser(text);
  RECOMP_ASSIGN_OR_RETURN(SchemeDescriptor desc, parser.Parse());
  RECOMP_RETURN_NOT_OK(desc.Validate());
  return desc;
}

SchemeDescriptor Id() { return SchemeDescriptor(SchemeKind::kId); }
SchemeDescriptor ZigZag() { return SchemeDescriptor(SchemeKind::kZigZag); }
SchemeDescriptor Ns(int width) {
  SchemeDescriptor d(SchemeKind::kNs);
  d.params.width = width;
  return d;
}
SchemeDescriptor VByte() { return SchemeDescriptor(SchemeKind::kVByte); }
SchemeDescriptor Delta() { return SchemeDescriptor(SchemeKind::kDelta); }
SchemeDescriptor Rpe() { return SchemeDescriptor(SchemeKind::kRpe); }
SchemeDescriptor Dict() { return SchemeDescriptor(SchemeKind::kDict); }
SchemeDescriptor Step(uint64_t segment_length) {
  SchemeDescriptor d(SchemeKind::kStep);
  d.params.segment_length = segment_length;
  return d;
}
SchemeDescriptor Plin(uint64_t segment_length) {
  SchemeDescriptor d(SchemeKind::kPlin);
  d.params.segment_length = segment_length;
  return d;
}
SchemeDescriptor Modeled(SchemeDescriptor model) {
  SchemeDescriptor d(SchemeKind::kModeled);
  d.args.push_back(std::move(model));
  return d;
}
SchemeDescriptor Patched(int width) {
  SchemeDescriptor d(SchemeKind::kPatched);
  d.params.width = width;
  return d;
}

}  // namespace recomp
