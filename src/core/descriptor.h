// SchemeDescriptor: expression trees over compression schemes.
//
// This is the paper's algebra made concrete. A descriptor is either a
// primitive scheme (with parameters), possibly carrying a model argument
// (for the MODELED combinator), and optionally composed part-wise with
// child descriptors that further compress named parts of its output:
//
//   RPE{positions: DELTA}                      -- the paper's RLE
//   MODELED(STEP(128)){residual: NS(7)}        -- the paper's FOR
//
// Descriptors render to and parse from a stable string grammar, so tests
// and tools can exchange them textually.

#ifndef RECOMP_CORE_DESCRIPTOR_H_
#define RECOMP_CORE_DESCRIPTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace recomp {

/// The primitive schemes (and combinators) of the library. Classic composite
/// schemes (RLE, FOR, PFOR, ...) are *not* kinds: they are catalog entries
/// expanding to descriptors over these primitives (see core/catalog.h).
enum class SchemeKind : int {
  kId = 0,       ///< No compression; terminates a composition.
  kZigZag = 1,   ///< Signed<->unsigned bijective recoding.
  kNs = 2,       ///< Null suppression: fixed-width bit packing.
  kVByte = 3,    ///< Variable-byte encoding (the paper's log-metric residual).
  kDelta = 4,    ///< Store differences; decompression is PrefixSum.
  kRpe = 5,      ///< Run-position encoding: values + inclusive end positions.
  kDict = 6,     ///< Sorted dictionary + codes.
  kStep = 7,     ///< Fixed-segment step function (exact; model of FOR).
  kPlin = 8,     ///< Fixed-segment linear function (exact; enriched model).
  kModeled = 9,  ///< data = model(i) + residual  (the paper's "STEP + NS").
  kPatched = 10, ///< L0 decomposition: narrow base + exception patches.
};

/// Number of scheme kinds.
inline constexpr int kNumSchemeKinds = 11;

/// Stable uppercase name used by ToString/Parse (e.g. "NS").
const char* SchemeKindName(SchemeKind kind);

/// Parses the result of SchemeKindName. Returns false on unknown names.
bool SchemeKindFromName(const std::string& name, SchemeKind* out);

/// Per-scheme numeric parameters. A zero value means "resolve automatically
/// at compression time"; the compressed envelope always records the resolved
/// value.
struct SchemeParams {
  /// Bit width: NS, PATCHED.
  int width = 0;
  /// Segment length: STEP, PLIN.
  uint64_t segment_length = 0;

  bool operator==(const SchemeParams&) const = default;
};

/// A scheme expression. See the file comment for the algebra.
struct SchemeDescriptor {
  SchemeKind kind = SchemeKind::kId;
  SchemeParams params;
  /// Scheme arguments of combinators: for kModeled, args[0] is the model
  /// descriptor (kStep or kPlin). Empty otherwise.
  std::vector<SchemeDescriptor> args;
  /// Part-wise composition: further compress the named output parts.
  /// Parts not listed stay as plain columns (implicitly ID).
  std::map<std::string, SchemeDescriptor> children;

  SchemeDescriptor() = default;
  explicit SchemeDescriptor(SchemeKind k, SchemeParams p = {})
      : kind(k), params(p) {}

  /// Builder-style helpers, e.g.
  ///   Rpe().With("positions", Delta().With("deltas", Ns()))
  SchemeDescriptor&& With(const std::string& part, SchemeDescriptor child) &&;
  SchemeDescriptor With(const std::string& part, SchemeDescriptor child) const&;

  bool operator==(const SchemeDescriptor& other) const;

  /// Renders the canonical textual form, e.g.
  /// "MODELED(STEP(128)){residual:NS(7)}".
  std::string ToString() const;

  /// Parses the output of ToString().
  static Result<SchemeDescriptor> Parse(const std::string& text);

  /// Structural checks: args arity matches the kind, children name known
  /// parts, parameters are in-range where specified.
  Status Validate() const;

  /// Total number of descriptor nodes (this node, args, and children).
  uint64_t NodeCount() const;
};

/// Convenience constructors (free functions keep call sites short).
SchemeDescriptor Id();
SchemeDescriptor ZigZag();
SchemeDescriptor Ns(int width = 0);
SchemeDescriptor VByte();
SchemeDescriptor Delta();
SchemeDescriptor Rpe();
SchemeDescriptor Dict();
SchemeDescriptor Step(uint64_t segment_length = 0);
SchemeDescriptor Plin(uint64_t segment_length = 0);
SchemeDescriptor Modeled(SchemeDescriptor model);
SchemeDescriptor Patched(int width = 0);

}  // namespace recomp

#endif  // RECOMP_CORE_DESCRIPTOR_H_
