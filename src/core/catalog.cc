#include "core/catalog.h"

namespace recomp {

SchemeDescriptor MakeRle() { return Rpe().With("positions", Delta()); }

SchemeDescriptor MakeRleNs() {
  return Rpe()
      .With("positions", Delta().With("deltas", Ns()))
      .With("values", Ns());
}

SchemeDescriptor MakeRleDelta() {
  // DELTA over the run values leaves one wide head delta (run_values[0] - 0);
  // PATCHED absorbs it so the packed width reflects the small steps — the
  // paper's L0 patch extension applied inside its own intro example.
  return Rpe()
      .With("positions", Delta().With("deltas", Ns()))
      .With("values",
            Delta().With("deltas", ZigZag().With("recoded",
                                                 Patched().With("base", Ns()))));
}

SchemeDescriptor MakeFor(uint64_t segment_length, int width) {
  return Modeled(Step(segment_length)).With("residual", Ns(width));
}

SchemeDescriptor MakePfor(uint64_t segment_length) {
  return Modeled(Step(segment_length))
      .With("residual", Patched().With("base", Ns()));
}

SchemeDescriptor MakeLfor(uint64_t segment_length) {
  return Modeled(Plin(segment_length)).With("residual", Ns());
}

SchemeDescriptor MakeDeltaNs() {
  return Delta().With("deltas", ZigZag().With("recoded", Ns()));
}

SchemeDescriptor MakeDeltaVByte() {
  return Delta().With("deltas", ZigZag().With("recoded", VByte()));
}

SchemeDescriptor MakeDictNs() { return Dict().With("codes", Ns()); }

const std::vector<CatalogEntry>& ClassicCatalog() {
  static const std::vector<CatalogEntry> kCatalog = {
      {"RLE",
       "run-length encoding == RPE with DELTA-compressed run positions "
       "(paper, §II-A)",
       MakeRle()},
      {"RLE-NS", "RLE with bit-packed lengths and values", MakeRleNs()},
      {"RLE-DELTA",
       "the intro's shipped-orders composite: RLE, then DELTA on run values",
       MakeRleDelta()},
      {"RPE", "run-position encoding: RLE already partially decompressed",
       Rpe()},
      {"FOR",
       "frame of reference == STEP model + NS residual (paper, §II-B)",
       MakeFor()},
      {"PFOR", "FOR with an L0-patched residual", MakePfor()},
      {"LFOR", "FOR with a piecewise-linear model", MakeLfor()},
      {"DELTA-NS", "delta, zigzag, bit-pack", MakeDeltaNs()},
      {"DELTA-VBYTE", "delta, zigzag, variable-byte", MakeDeltaVByte()},
      {"DICT-NS", "sorted dictionary with bit-packed codes", MakeDictNs()},
      {"NS", "plain null suppression", Ns()},
      {"VBYTE", "plain variable-byte", VByte()},
  };
  return kCatalog;
}

Result<SchemeDescriptor> CatalogLookup(const std::string& name) {
  for (const CatalogEntry& entry : ClassicCatalog()) {
    if (entry.name == name) return entry.descriptor;
  }
  return Status::KeyError("no catalog entry named '" + name + "'");
}

}  // namespace recomp
