#include "core/rewrite.h"

#include "core/fused.h"
#include "core/pipeline.h"
#include "util/string_util.h"

namespace recomp {

namespace {

/// Walks `path` and returns the named CompressedPart (mutable).
Result<CompressedPart*> FindPart(CompressedNode* node, const std::string& path) {
  CompressedNode* current = node;
  size_t begin = 0;
  while (true) {
    const size_t slash = path.find('/', begin);
    const std::string component = path.substr(
        begin, slash == std::string::npos ? std::string::npos : slash - begin);
    auto it = current->parts.find(component);
    if (it == current->parts.end()) {
      return Status::KeyError(StringFormat("no part '%s' along path '%s'",
                                           component.c_str(), path.c_str()));
    }
    if (slash == std::string::npos) return &it->second;
    if (it->second.is_terminal() || !it->second.sub) {
      return Status::KeyError(StringFormat(
          "part path '%s' descends into a terminal column", path.c_str()));
    }
    current = it->second.sub.get();
    begin = slash + 1;
  }
}

}  // namespace

Result<CompressedColumn> PeelPart(const CompressedColumn& compressed,
                                  const std::string& path) {
  CompressedColumn out = compressed.Clone();
  RECOMP_ASSIGN_OR_RETURN(CompressedPart * part, FindPart(&out.root(), path));
  if (part->is_terminal()) {
    return Status::InvalidArgument(
        StringFormat("part '%s' is already terminal", path.c_str()));
  }
  RECOMP_ASSIGN_OR_RETURN(AnyColumn column, FusedDecompressNode(*part->sub));
  part->sub.reset();
  part->column = std::move(column);
  return out;
}

Result<CompressedColumn> PushPart(const CompressedColumn& compressed,
                                  const std::string& path,
                                  const SchemeDescriptor& child) {
  RECOMP_RETURN_NOT_OK(child.Validate());
  CompressedColumn out = compressed.Clone();
  RECOMP_ASSIGN_OR_RETURN(CompressedPart * part, FindPart(&out.root(), path));
  if (!part->is_terminal()) {
    return Status::InvalidArgument(StringFormat(
        "part '%s' is already composed; peel it first", path.c_str()));
  }
  if (part->column->is_packed()) {
    return Status::InvalidArgument(StringFormat(
        "part '%s' is bit-packed and cannot be composed further",
        path.c_str()));
  }
  RECOMP_ASSIGN_OR_RETURN(CompressedNode sub,
                          CompressNode(*part->column, child));
  part->column.reset();
  part->sub = std::make_unique<CompressedNode>(std::move(sub));
  return out;
}

namespace {

Status PeelAllInNode(CompressedNode* node) {
  for (auto& [name, part] : node->parts) {
    if (part.is_terminal()) continue;
    RECOMP_ASSIGN_OR_RETURN(AnyColumn column, FusedDecompressNode(*part.sub));
    part.sub.reset();
    part.column = std::move(column);
  }
  return Status::OK();
}

}  // namespace

Result<CompressedColumn> PeelAll(const CompressedColumn& compressed) {
  CompressedColumn out = compressed.Clone();
  RECOMP_RETURN_NOT_OK(PeelAllInNode(&out.root()));
  return out;
}

}  // namespace recomp
