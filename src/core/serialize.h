// Flat binary serialization of compressed columns.
//
// A CompressedColumn round-trips through a self-contained byte buffer so
// compressed data can live in files, buffer pools, or network messages. The
// format keeps the paper's discipline: part payloads are written as raw
// little-endian column bytes with a minimal structural envelope, no
// per-block headers inside the payloads.
//
// Layout (all integers little-endian):
//   magic "RCMP", u16 version, then the root node:
//     node   := descriptor-string (u32 len + bytes, children omitted)
//               u64 n, u8 out_type, u32 part_count, part*
//     part   := u32 name_len + name, u8 tag (0 terminal | 1 sub),
//               tag 0: column; tag 1: node
//     column := u8 kind (0 plain | 1 packed),
//               plain:  u8 type, u64 rows, payload bytes
//               packed: u8 logical_type, u16 bit_width, u64 rows,
//                       u64 byte_count, payload bytes
//
// Deserialization validates structure (magic, version, types, sizes) and
// returns Corruption on any inconsistency; it never trusts lengths without
// bounds checks.

#ifndef RECOMP_CORE_SERIALIZE_H_
#define RECOMP_CORE_SERIALIZE_H_

#include <cstdint>
#include <vector>

#include "core/compressed.h"
#include "util/result.h"

namespace recomp {

/// Serialization wire version written/accepted.
inline constexpr uint16_t kSerializedVersion = 1;

/// Serializes the envelope into a self-contained buffer.
Result<std::vector<uint8_t>> Serialize(const CompressedColumn& compressed);

/// Parses a buffer produced by Serialize. The result decompresses to the
/// original column; structural damage yields Corruption, never UB.
Result<CompressedColumn> Deserialize(const std::vector<uint8_t>& buffer);

/// Exact size Serialize will produce (envelope + payloads), for buffer
/// planning and footprint accounting that includes metadata.
uint64_t SerializedSize(const CompressedColumn& compressed);

}  // namespace recomp

#endif  // RECOMP_CORE_SERIALIZE_H_
