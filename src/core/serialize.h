// Flat binary serialization of compressed columns.
//
// A CompressedColumn round-trips through a self-contained byte buffer so
// compressed data can live in files, buffer pools, or network messages. The
// format keeps the paper's discipline: part payloads are written as raw
// little-endian column bytes with a minimal structural envelope, no
// per-block headers inside the payloads.
//
// v1 layout — one whole-column envelope (all integers little-endian):
//   magic "RCMP", u16 version = 1, then the root node:
//     node   := descriptor-string (u32 len + bytes, children omitted)
//               u64 n, u8 out_type, u32 part_count, part*
//     part   := u32 name_len + name, u8 tag (0 terminal | 1 sub),
//               tag 0: column; tag 1: node
//     column := u8 kind (0 plain | 1 packed),
//               plain:  u8 type, u64 rows, payload bytes
//               packed: u8 logical_type, u16 bit_width, u64 rows,
//                       u64 byte_count, payload bytes
//
// v2 layout — a chunked envelope: a chunk directory followed by one v1 node
// payload per chunk. The directory carries each chunk's zone map and byte
// length, so a reader can prune or seek to a single chunk without parsing
// the others (the hook for parallel chunk scans):
//   magic "RCMP", u16 version = 2,
//   u8 out_type, u64 total_rows, u32 chunk_count,
//   chunk_count * { u64 row_begin, u64 row_count,
//                   u8 has_minmax, u64 min, u64 max, u64 node_bytes },
//   chunk_count * node            (exactly the v1 node encoding)
//
// Deserialization validates structure (magic, version, types, sizes) and
// returns Corruption on any inconsistency; it never trusts lengths without
// bounds checks. The v2 chunk directory is validated whole before any chunk
// payload is parsed: chunks must tile [0, total_rows) contiguously in order
// (no overlaps, no gaps), an empty directory cannot claim rows, and the
// node_bytes lengths must fit inside the buffer — so a parallel reader can
// trust directory offsets without re-deriving them. DeserializeChunked accepts both versions, wrapping a v1
// buffer as a single chunk. Like the raw part payloads, zone-map min/max
// are trusted metadata: the format carries no checksums, so undetectably
// flipped *content* bytes (v1 column data, v2 zone bounds) produce wrong
// query results rather than Corruption — store buffers with integrity
// protection if the medium can corrupt them.

#ifndef RECOMP_CORE_SERIALIZE_H_
#define RECOMP_CORE_SERIALIZE_H_

#include <cstdint>
#include <vector>

#include "core/chunked.h"
#include "core/compressed.h"
#include "util/result.h"

namespace recomp {

/// Wire version written for whole-column envelopes.
inline constexpr uint16_t kSerializedVersion = 1;

/// Wire version written for chunked envelopes.
inline constexpr uint16_t kSerializedVersionChunked = 2;

/// Serializes the whole-column envelope into a self-contained v1 buffer.
Result<std::vector<uint8_t>> Serialize(const CompressedColumn& compressed);

/// Serializes the chunked envelope (directory + per-chunk payloads) into a
/// self-contained v2 buffer.
Result<std::vector<uint8_t>> Serialize(const ChunkedCompressedColumn& chunked);

/// Parses a v1 buffer produced by Serialize(CompressedColumn). The result
/// decompresses to the original column; structural damage yields Corruption,
/// never UB.
Result<CompressedColumn> Deserialize(const std::vector<uint8_t>& buffer);

/// Parses either wire version: a v2 chunked buffer with its zone maps, or a
/// v1 whole-column buffer wrapped as one chunk (count-only zone map). The v2
/// chunk directory is validated sequentially up front; the per-chunk payload
/// parses are independent after that (each chunk's offset and length come
/// from the validated directory), so `ctx` fans them out over its pool. The
/// result — including which error is reported for a corrupt buffer — is
/// identical for any thread count.
Result<ChunkedCompressedColumn> DeserializeChunked(
    const std::vector<uint8_t>& buffer, const ExecContext& ctx = {});

/// Exact size Serialize will produce (envelope + payloads), for buffer
/// planning and footprint accounting that includes metadata.
uint64_t SerializedSize(const CompressedColumn& compressed);

/// Exact size of the v2 buffer Serialize(ChunkedCompressedColumn) produces.
uint64_t SerializedSize(const ChunkedCompressedColumn& chunked);

}  // namespace recomp

#endif  // RECOMP_CORE_SERIALIZE_H_
