#include "core/plan.h"

#include "util/string_util.h"

namespace recomp {

const char* PlanOpKindName(PlanOpKind kind) {
  switch (kind) {
    case PlanOpKind::kInput:
      return "Input";
    case PlanOpKind::kPrefixSumInclusive:
      return "PrefixSum";
    case PlanOpKind::kPrefixSumExclusive:
      return "PrefixSumExcl";
    case PlanOpKind::kPopBack:
      return "PopBack";
    case PlanOpKind::kConstant:
      return "Constant";
    case PlanOpKind::kScatter:
      return "Scatter";
    case PlanOpKind::kGather:
      return "Gather";
    case PlanOpKind::kElementwise:
      return "Elementwise";
    case PlanOpKind::kUnpack:
      return "Unpack";
    case PlanOpKind::kZigZagDecode:
      return "ZigZagDecode";
    case PlanOpKind::kVByteDecode:
      return "VByteDecode";
    case PlanOpKind::kEvalPlin:
      return "EvalPlin";
    case PlanOpKind::kElementwiseScalar:
      return "ElementwiseScalar";
    case PlanOpKind::kIota:
      return "Iota";
    case PlanOpKind::kScatterConst:
      return "ScatterConst";
    case PlanOpKind::kReplicate:
      return "Replicate";
  }
  return "?";
}

uint64_t Plan::OperatorCount() const {
  uint64_t count = 0;
  for (const auto& node : nodes) {
    if (node.op != PlanOpKind::kInput) ++count;
  }
  return count;
}

std::string Plan::ToString() const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const PlanNode& node = nodes[i];
    const std::string name =
        node.label.empty() ? StringFormat("t%zu", i) : node.label;
    out += StringFormat("%2zu: %s <- ", i, name.c_str());
    if (node.op == PlanOpKind::kInput) {
      out += StringFormat("Input(%s)", node.input_path.c_str());
    } else {
      out += PlanOpKindName(node.op);
      out += "(";
      std::vector<std::string> operands;
      if (node.op == PlanOpKind::kElementwise ||
          node.op == PlanOpKind::kElementwiseScalar) {
        operands.push_back(StringFormat("'%s'", ops::BinOpName(node.bin_op)));
      }
      // The paper writes Constant(value, length); keep that operand order.
      if (node.op == PlanOpKind::kConstant ||
          node.op == PlanOpKind::kScatterConst) {
        operands.push_back(
            StringFormat("%llu", static_cast<unsigned long long>(node.imm)));
      }
      for (int in : node.inputs) {
        const PlanNode& dep = nodes[static_cast<size_t>(in)];
        std::string name =
            dep.label.empty() ? StringFormat("t%d", in) : dep.label;
        if (node.op == PlanOpKind::kConstant) name = "|" + name + "|";
        operands.push_back(std::move(name));
      }
      if (node.op == PlanOpKind::kElementwiseScalar) {
        operands.push_back(
            StringFormat("%llu", static_cast<unsigned long long>(node.imm)));
      }
      if (node.op == PlanOpKind::kReplicate ||
          node.op == PlanOpKind::kEvalPlin) {
        operands.push_back(StringFormat(
            "ell=%llu", static_cast<unsigned long long>(node.imm)));
      }
      if (node.imm2 != 0) {
        operands.push_back(
            StringFormat("n=%llu", static_cast<unsigned long long>(node.imm2)));
      }
      out += Join(operands, ", ");
      out += ")";
    }
    out += "\n";
  }
  return out;
}

Status Plan::Validate() const {
  if (nodes.empty()) {
    return Status::InvalidArgument("plan has no nodes");
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int in : nodes[i].inputs) {
      if (in < 0 || static_cast<size_t>(in) >= i) {
        return Status::InvalidArgument(StringFormat(
            "node %zu references operand %d outside [0, %zu)", i, in, i));
      }
    }
    if (nodes[i].op == PlanOpKind::kInput && nodes[i].input_path.empty()) {
      return Status::InvalidArgument(
          StringFormat("input node %zu lacks a part path", i));
    }
  }
  return Status::OK();
}

}  // namespace recomp
