// Interprets a decompression Plan over a compressed envelope.
//
// Each node materializes one intermediate column, exactly as a columnar
// query executor would — this is the paper's "decompression as query
// execution" strategy, in contrast to the fused kernels of core/fused.h.

#ifndef RECOMP_CORE_PLAN_EXECUTOR_H_
#define RECOMP_CORE_PLAN_EXECUTOR_H_

#include "core/compressed.h"
#include "core/plan.h"
#include "util/result.h"

namespace recomp {

/// Evaluates `plan` against the terminal part columns of `compressed`;
/// returns the final node's column.
Result<AnyColumn> ExecutePlan(const Plan& plan,
                              const CompressedColumn& compressed);

/// Node-level entry point.
Result<AnyColumn> ExecutePlanForNode(const Plan& plan,
                                     const CompressedNode& node);

/// Resolves a slash-separated part path (e.g. "positions/deltas") to the
/// terminal column it names.
Result<const AnyColumn*> ResolvePartPath(const CompressedNode& node,
                                         const std::string& path);

}  // namespace recomp

#endif  // RECOMP_CORE_PLAN_EXECUTOR_H_
