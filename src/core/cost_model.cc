#include "core/cost_model.h"

#include <algorithm>

#include "core/fused.h"

namespace recomp {

double SchemeKindUnitCost(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kId:
      return 0.1;  // A copy.
    case SchemeKind::kZigZag:
      return 0.5;  // Shift/xor per value.
    case SchemeKind::kNs:
      return 1.0;  // Unpack; the unit.
    case SchemeKind::kVByte:
      return 4.0;  // Data-dependent branches; no SIMD.
    case SchemeKind::kDelta:
      return 1.0;  // Prefix sum.
    case SchemeKind::kRpe:
      return 1.5;  // Scatter + prefix sum + gather (or run expansion).
    case SchemeKind::kDict:
      return 1.5;  // Gather.
    case SchemeKind::kStep:
      return 1.0;  // Segment replication.
    case SchemeKind::kPlin:
      return 2.0;  // Multiply-shift per value.
    case SchemeKind::kModeled:
      return 1.0;  // The final elementwise add (plus the model's own cost).
    case SchemeKind::kPatched:
      return 1.2;  // Copy plus a sparse scatter.
  }
  return 1.0;
}

double FusedShapeDiscount(FusedShape shape) {
  switch (shape) {
    case FusedShape::kNs:
      return 0.6;  // Width-specialized vector unpack vs the unit's scalar.
    case FusedShape::kFor:
      return 0.4;  // Unpack+add fuses MODELED+STEP+NS into one pass.
    case FusedShape::kDeltaZigZagNs:
      return 0.5;  // Unpack+zigzag+prefix-sum in registers; one pass of three.
    case FusedShape::kPfor:
      return 0.5;  // FOR pass plus a sparse patch loop.
    case FusedShape::kPatchedNs:
      return 0.6;  // Vector unpack plus a sparse scatter.
    case FusedShape::kDeltaZigZagPatchedNs:
      return 0.55;  // Patched unpack, then in-place zigzag+prefix.
    case FusedShape::kRle:
    case FusedShape::kRleNs:
      // Run expansion — the per-value work — stays scalar; only the per-run
      // position reconstruction vectorizes, and that already amortizes.
      return 1.0;
    case FusedShape::kGeneric:
      return 1.0;  // Reference recursion: full price.
  }
  return 1.0;
}

namespace {

double EstimateNode(const SchemeDescriptor& desc, const ColumnStats& stats,
                    double scale) {
  double cost = SchemeKindUnitCost(desc.kind) * scale;
  for (const auto& arg : desc.args) {
    cost += SchemeKindUnitCost(arg.kind) * scale;
  }
  for (const auto& [part, child] : desc.children) {
    double child_scale = scale;
    if (desc.kind == SchemeKind::kRpe) {
      // values/positions are per-run columns: their decompression cost
      // amortizes over the run length.
      child_scale = scale / std::max(1.0, stats.avg_run_length);
    } else if (desc.kind == SchemeKind::kDict && part == "dictionary") {
      child_scale =
          scale * (stats.n == 0
                       ? 1.0
                       : static_cast<double>(stats.distinct) /
                             static_cast<double>(stats.n));
    } else if (desc.kind == SchemeKind::kModeled &&
               (part == "refs" || part == "bases" || part == "slopes")) {
      const uint64_t ell = std::max<uint64_t>(
          1, desc.args.empty() ? 1 : desc.args[0].params.segment_length);
      child_scale = scale / static_cast<double>(ell);
    } else if (desc.kind == SchemeKind::kPatched &&
               (part == "patch_positions" || part == "patch_values")) {
      child_scale = scale * 0.05;  // Patches are sparse by design.
    }
    cost += EstimateNode(child, stats, child_scale);
  }
  return cost;
}

}  // namespace

double EstimateDecompressionCost(const SchemeDescriptor& desc,
                                 const ColumnStats& stats) {
  // The discount applies at the root only: a fused shape decodes in one
  // pass end to end, while a fused sub-tree below a generic parent still
  // pays the parent's materialization.
  return EstimateNode(desc, stats, 1.0) *
         FusedShapeDiscount(ClassifyFusedDescriptor(desc));
}

}  // namespace recomp
