// Envelope rewrites: decomposition and re-composition as executable data
// transformations.
//
// The paper's §II-A move — "suppose that rather than a length column, we
// were instead to hold run_positions" — is PeelPart: decompress one child
// sub-scheme and keep its output as the stored part. RLE-compressed data
// peeled at "positions" *is* RPE-compressed data; no re-compression of the
// full column happens. PushPart is the inverse (re-composition), further
// compressing a stored part.

#ifndef RECOMP_CORE_REWRITE_H_
#define RECOMP_CORE_REWRITE_H_

#include <string>

#include "core/compressed.h"
#include "core/descriptor.h"
#include "util/result.h"

namespace recomp {

/// Partially decompresses the envelope: the sub-scheme at the
/// slash-separated part `path` is decompressed once and its output becomes
/// the stored (terminal) part. The result decompresses to the same column,
/// typically occupying more bytes but needing fewer operators.
Result<CompressedColumn> PeelPart(const CompressedColumn& compressed,
                                  const std::string& path);

/// Re-composes: compresses the terminal part at `path` with `child`. The
/// inverse of PeelPart when `child` matches the peeled scheme.
Result<CompressedColumn> PushPart(const CompressedColumn& compressed,
                                  const std::string& path,
                                  const SchemeDescriptor& child);

/// Fully decompresses every composed part, leaving a one-level envelope
/// (every part terminal) — the maximal decomposition along the paper's
/// ratio-for-speed axis.
Result<CompressedColumn> PeelAll(const CompressedColumn& compressed);

}  // namespace recomp

#endif  // RECOMP_CORE_REWRITE_H_
