// Builds the operator plan that decompresses a compressed envelope.
//
// Each scheme contributes the operator sequence of its decompression
// algorithm; composition concatenates sequences (a child's output column
// feeds the parent's expected part slot). For the catalog's RLE and FOR
// shapes the emitted plans are, node for node, the paper's Algorithm 1 and
// Algorithm 2 — the tests pin this correspondence.

#ifndef RECOMP_CORE_PLAN_BUILDER_H_
#define RECOMP_CORE_PLAN_BUILDER_H_

#include "core/compressed.h"
#include "core/plan.h"
#include "util/result.h"

namespace recomp {

/// Builds the (unoptimized, paper-faithful) decompression plan for
/// `compressed`.
Result<Plan> BuildDecompressionPlan(const CompressedColumn& compressed);

/// Node-level entry point used by the rewrite tests.
Result<Plan> BuildDecompressionPlanForNode(const CompressedNode& node);

}  // namespace recomp

#endif  // RECOMP_CORE_PLAN_BUILDER_H_
