#include "core/pipeline.h"

#include "schemes/scheme.h"
#include "util/string_util.h"

namespace recomp {

Result<CompressedNode> CompressNode(const AnyColumn& input,
                                    const SchemeDescriptor& desc) {
  const Scheme* scheme = GetScheme(desc.kind);
  RECOMP_ASSIGN_OR_RETURN(CompressOutput output,
                          scheme->Compress(input, desc));

  CompressedNode node;
  node.scheme = std::move(output.resolved);
  node.n = input.size();
  node.out_type = input.type();

  for (auto& [name, column] : output.parts) {
    auto child_it = desc.children.find(name);
    if (child_it == desc.children.end()) {
      CompressedPart part;
      part.column = std::move(column);
      node.parts.emplace(name, std::move(part));
      continue;
    }
    if (column.is_packed()) {
      return Status::InvalidArgument(StringFormat(
          "part '%s' of %s is bit-packed and cannot be composed further",
          name.c_str(), SchemeKindName(desc.kind)));
    }
    RECOMP_ASSIGN_OR_RETURN(CompressedNode sub,
                            CompressNode(column, child_it->second));
    CompressedPart part;
    part.sub = std::make_unique<CompressedNode>(std::move(sub));
    node.parts.emplace(name, std::move(part));
  }

  // Reject children naming parts the scheme never produced.
  for (const auto& [name, child] : desc.children) {
    if (node.parts.find(name) == node.parts.end()) {
      return Status::InvalidArgument(StringFormat(
          "%s produces no part named '%s'", SchemeKindName(desc.kind),
          name.c_str()));
    }
  }
  return node;
}

Result<AnyColumn> DecompressNode(const CompressedNode& node) {
  PartsMap parts;
  for (const auto& [name, part] : node.parts) {
    if (part.is_terminal()) {
      parts.emplace(name, *part.column);
    } else if (part.sub) {
      RECOMP_ASSIGN_OR_RETURN(AnyColumn column, DecompressNode(*part.sub));
      parts.emplace(name, std::move(column));
    } else {
      return Status::Corruption("compressed part '" + name + "' is empty");
    }
  }
  const Scheme* scheme = GetScheme(node.scheme.kind);
  DecompressContext ctx;
  ctx.n = node.n;
  ctx.out_type = node.out_type;
  return scheme->Decompress(parts, node.scheme, ctx);
}

Result<CompressedColumn> Compress(const AnyColumn& input,
                                  const SchemeDescriptor& desc) {
  RECOMP_RETURN_NOT_OK(desc.Validate());
  RECOMP_ASSIGN_OR_RETURN(CompressedNode root, CompressNode(input, desc));
  return CompressedColumn(std::move(root));
}

Result<AnyColumn> Decompress(const CompressedColumn& compressed) {
  return DecompressNode(compressed.root());
}

}  // namespace recomp
