// Fusion passes over decompression plans.
//
// The paper-faithful plans materialize every intermediate column (Constant
// columns of ones, id sequences, ...). These classic columnar-algebra
// rewrites remove the avoidable materializations without leaving the
// operator formulation:
//
//   R1  Constant ⨝ Elementwise            -> ElementwiseScalar
//   R2  Constant(1) ⨝ PrefixSum           -> Iota
//   R3  Constant ⨝ Scatter(into Constant0) -> ScatterConst
//   R4  Iota ⨝ Div-by-ell ⨝ Gather         -> Replicate
//
// Benchmarks E2/E4 price the naive plan, the optimized plan, and the fused
// kernels against each other.

#ifndef RECOMP_CORE_PLAN_OPTIMIZER_H_
#define RECOMP_CORE_PLAN_OPTIMIZER_H_

#include "core/plan.h"
#include "util/result.h"

namespace recomp {

/// Applies all fusion rules to fixpoint, then drops dead nodes. The
/// optimized plan computes the same column as the input plan.
Result<Plan> OptimizePlan(const Plan& plan);

}  // namespace recomp

#endif  // RECOMP_CORE_PLAN_OPTIMIZER_H_
