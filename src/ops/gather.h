// Gather: out[i] = values[indices[i]] — the final operator of the paper's
// Algorithm 1 (RLE) and the replication step of Algorithm 2 (FOR).

#ifndef RECOMP_OPS_GATHER_H_
#define RECOMP_OPS_GATHER_H_

#include <cstdint>

#include "columnar/column.h"
#include "util/result.h"

namespace recomp::ops {

/// Bounds-checked gather. Fails with OutOfRange on any index >= |values|.
template <typename T>
Result<Column<T>> Gather(const Column<T>& values,
                         const Column<uint32_t>& indices);

/// Unchecked gather for kernels that construct their own in-range indices.
template <typename T>
Column<T> GatherUnchecked(const Column<T>& values,
                          const Column<uint32_t>& indices);

}  // namespace recomp::ops

#endif  // RECOMP_OPS_GATHER_H_
