// Range selection over plain columns: the reference operator the
// compressed-domain selections in src/exec are validated against.

#ifndef RECOMP_OPS_SELECT_H_
#define RECOMP_OPS_SELECT_H_

#include <cstdint>

#include "columnar/column.h"
#include "util/result.h"

namespace recomp::ops {

/// Positions i (ascending) with lo <= col[i] <= hi. Fails with OutOfRange for
/// columns of 2^32 or more rows (positions are uint32 throughout the library).
template <typename T>
Result<Column<uint32_t>> SelectRange(const Column<T>& col, T lo, T hi);

/// Number of rows with lo <= col[i] <= hi.
template <typename T>
uint64_t CountRange(const Column<T>& col, T lo, T hi);

}  // namespace recomp::ops

#endif  // RECOMP_OPS_SELECT_H_
