// Runtime CPU-feature dispatch for SIMD kernels.
//
// Kernels compiled with -mavx2 live in kernels_avx2.cc; every call site
// consults HasAvx2() (cached) and falls back to the scalar kernel, so the
// library runs correctly on any x86-64 and the two paths can be tested
// against each other.

#ifndef RECOMP_OPS_DISPATCH_H_
#define RECOMP_OPS_DISPATCH_H_

namespace recomp::ops {

/// True iff AVX2 kernels were compiled in and the CPU supports AVX2.
bool HasAvx2();

/// Overrides dispatch for tests/benchmarks: force = true routes every call
/// to the scalar kernels regardless of CPU support.
void ForceScalar(bool force);

/// Current ForceScalar setting.
bool ScalarForced();

/// Benchmark-only knob: routes whole-column u32 unpacks through the
/// first-generation gather kernel (scalar beyond its width limit) instead of
/// the width-generic permute kernels, reproducing the pre-cascade decode so
/// bench_a2 can price the speedup against an honest baseline.
void ForceBaselineUnpack(bool force);

/// Current ForceBaselineUnpack setting.
bool BaselineUnpackForced();

}  // namespace recomp::ops

#endif  // RECOMP_OPS_DISPATCH_H_
