#include "ops/reduce.h"

#include <algorithm>

namespace recomp::ops {

template <typename T>
uint64_t Sum(const Column<T>& col) {
  uint64_t acc = 0;
  for (const T v : col) acc += static_cast<uint64_t>(v);
  return acc;
}

template <typename T>
Result<T> Min(const Column<T>& col) {
  if (col.empty()) return Status::InvalidArgument("Min of an empty column");
  return *std::min_element(col.begin(), col.end());
}

template <typename T>
Result<T> Max(const Column<T>& col) {
  if (col.empty()) return Status::InvalidArgument("Max of an empty column");
  return *std::max_element(col.begin(), col.end());
}

#define RECOMP_INSTANTIATE_REDUCE(T)            \
  template uint64_t Sum<T>(const Column<T>&);   \
  template Result<T> Min<T>(const Column<T>&);  \
  template Result<T> Max<T>(const Column<T>&);

RECOMP_INSTANTIATE_REDUCE(uint8_t)
RECOMP_INSTANTIATE_REDUCE(uint16_t)
RECOMP_INSTANTIATE_REDUCE(uint32_t)
RECOMP_INSTANTIATE_REDUCE(uint64_t)
RECOMP_INSTANTIATE_REDUCE(int8_t)
RECOMP_INSTANTIATE_REDUCE(int16_t)
RECOMP_INSTANTIATE_REDUCE(int32_t)
RECOMP_INSTANTIATE_REDUCE(int64_t)

#undef RECOMP_INSTANTIATE_REDUCE

}  // namespace recomp::ops
