#include "ops/select.h"

#include "util/string_util.h"

namespace recomp::ops {

template <typename T>
Result<Column<uint32_t>> SelectRange(const Column<T>& col, T lo, T hi) {
  if (col.size() >= (uint64_t{1} << 32)) {
    return Status::OutOfRange("SelectRange supports columns below 2^32 rows");
  }
  Column<uint32_t> out;
  for (uint64_t i = 0; i < col.size(); ++i) {
    if (col[i] >= lo && col[i] <= hi) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

template <typename T>
uint64_t CountRange(const Column<T>& col, T lo, T hi) {
  uint64_t count = 0;
  for (const T v : col) count += (v >= lo && v <= hi) ? 1 : 0;
  return count;
}

#define RECOMP_INSTANTIATE_SELECT(T)                                    \
  template Result<Column<uint32_t>> SelectRange<T>(const Column<T>&, T, T); \
  template uint64_t CountRange<T>(const Column<T>&, T, T);

RECOMP_INSTANTIATE_SELECT(uint8_t)
RECOMP_INSTANTIATE_SELECT(uint16_t)
RECOMP_INSTANTIATE_SELECT(uint32_t)
RECOMP_INSTANTIATE_SELECT(uint64_t)
RECOMP_INSTANTIATE_SELECT(int8_t)
RECOMP_INSTANTIATE_SELECT(int16_t)
RECOMP_INSTANTIATE_SELECT(int32_t)
RECOMP_INSTANTIATE_SELECT(int64_t)

#undef RECOMP_INSTANTIATE_SELECT

}  // namespace recomp::ops
