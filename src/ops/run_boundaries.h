// Run detection: the compression-side counterpart of Algorithm 1.
//
// Splits a column into maximal runs of equal values, yielding exactly the
// "pure columns" of the RLE / RPE compressed forms.

#ifndef RECOMP_OPS_RUN_BOUNDARIES_H_
#define RECOMP_OPS_RUN_BOUNDARIES_H_

#include <cstdint>

#include "columnar/column.h"
#include "util/result.h"

namespace recomp::ops {

/// The runs of a column.
template <typename T>
struct Runs {
  /// One representative value per run.
  Column<T> values;
  /// Length of each run; same arity as `values`.
  Column<uint32_t> lengths;
  /// Inclusive end positions: end_positions[r] = lengths[0] + ... + lengths[r]
  /// (the paper's run_positions column; its last element is n).
  Column<uint32_t> end_positions;
};

/// Computes all three run columns in one pass. Fails with OutOfRange for
/// columns of 2^32 or more rows.
template <typename T>
Result<Runs<T>> FindRuns(const Column<T>& col);

}  // namespace recomp::ops

#endif  // RECOMP_OPS_RUN_BOUNDARIES_H_
