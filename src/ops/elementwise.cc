#include "ops/elementwise.h"

#include "ops/dispatch.h"
#include "ops/kernels_avx2.h"
#include "util/string_util.h"

namespace recomp::ops {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
  }
  return "?";
}

namespace {

template <typename T, typename F>
Column<T> Map2(const Column<T>& a, const Column<T>& b, F&& f) {
  Column<T> out(a.size());
  for (uint64_t i = 0; i < a.size(); ++i) out[i] = f(a[i], b[i]);
  return out;
}

template <typename T, typename F>
Column<T> Map1(const Column<T>& a, F&& f) {
  Column<T> out(a.size());
  for (uint64_t i = 0; i < a.size(); ++i) out[i] = f(a[i]);
  return out;
}

}  // namespace

template <typename T>
Result<Column<T>> Elementwise(BinOp op, const Column<T>& a,
                              const Column<T>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument(StringFormat(
        "elementwise '%s' arity mismatch: %llu vs %llu", BinOpName(op),
        static_cast<unsigned long long>(a.size()),
        static_cast<unsigned long long>(b.size())));
  }
  using U = std::make_unsigned_t<T>;
  switch (op) {
    case BinOp::kAdd:
      return Map2(a, b, [](T x, T y) {
        return static_cast<T>(static_cast<U>(x) + static_cast<U>(y));
      });
    case BinOp::kSub:
      return Map2(a, b, [](T x, T y) {
        return static_cast<T>(static_cast<U>(x) - static_cast<U>(y));
      });
    case BinOp::kMul:
      return Map2(a, b, [](T x, T y) {
        return static_cast<T>(static_cast<U>(x) * static_cast<U>(y));
      });
    case BinOp::kDiv: {
      for (uint64_t i = 0; i < b.size(); ++i) {
        if (RECOMP_PREDICT_FALSE(b[i] == 0)) {
          return Status::InvalidArgument(
              StringFormat("division by zero at row %llu",
                           static_cast<unsigned long long>(i)));
        }
      }
      return Map2(a, b, [](T x, T y) { return static_cast<T>(x / y); });
    }
  }
  return Status::InvalidArgument("unknown elementwise op");
}

template <typename T>
Result<Column<T>> ElementwiseScalar(BinOp op, const Column<T>& a, T scalar) {
  using U = std::make_unsigned_t<T>;
  switch (op) {
    case BinOp::kAdd:
      if constexpr (std::is_same_v<T, uint32_t>) {
        if (HasAvx2() && !a.empty()) {
          Column<T> out(a.size());
          avx2::AddConstantU32(a.data(), a.size(), scalar, out.data());
          return out;
        }
      }
      return Map1(a, [scalar](T x) {
        return static_cast<T>(static_cast<U>(x) + static_cast<U>(scalar));
      });
    case BinOp::kSub:
      return Map1(a, [scalar](T x) {
        return static_cast<T>(static_cast<U>(x) - static_cast<U>(scalar));
      });
    case BinOp::kMul:
      return Map1(a, [scalar](T x) {
        return static_cast<T>(static_cast<U>(x) * static_cast<U>(scalar));
      });
    case BinOp::kDiv:
      if (scalar == 0) {
        return Status::InvalidArgument("division by zero scalar");
      }
      return Map1(a, [scalar](T x) { return static_cast<T>(x / scalar); });
  }
  return Status::InvalidArgument("unknown elementwise op");
}

#define RECOMP_INSTANTIATE_ELEMENTWISE(T)                                    \
  template Result<Column<T>> Elementwise<T>(BinOp, const Column<T>&,         \
                                            const Column<T>&);               \
  template Result<Column<T>> ElementwiseScalar<T>(BinOp, const Column<T>&, T);

RECOMP_INSTANTIATE_ELEMENTWISE(uint8_t)
RECOMP_INSTANTIATE_ELEMENTWISE(uint16_t)
RECOMP_INSTANTIATE_ELEMENTWISE(uint32_t)
RECOMP_INSTANTIATE_ELEMENTWISE(uint64_t)
RECOMP_INSTANTIATE_ELEMENTWISE(int8_t)
RECOMP_INSTANTIATE_ELEMENTWISE(int16_t)
RECOMP_INSTANTIATE_ELEMENTWISE(int32_t)
RECOMP_INSTANTIATE_ELEMENTWISE(int64_t)

#undef RECOMP_INSTANTIATE_ELEMENTWISE

}  // namespace recomp::ops
