// PrefixSum: the columnar operator at the heart of Algorithms 1 and 2 of the
// paper (run-position computation, id generation) and of DELTA decompression.
//
// Sums wrap modulo 2^bits, which is exactly what DELTA-decoding of zigzag-
// free unsigned deltas requires.

#ifndef RECOMP_OPS_PREFIX_SUM_H_
#define RECOMP_OPS_PREFIX_SUM_H_

#include "columnar/column.h"

namespace recomp::ops {

/// out[i] = in[0] + ... + in[i]  (inclusive scan).
template <typename T>
Column<T> PrefixSumInclusive(const Column<T>& in);

/// out[i] = in[0] + ... + in[i-1]; out[0] = 0  (exclusive scan).
template <typename T>
Column<T> PrefixSumExclusive(const Column<T>& in);

/// In-place inclusive scan (used by fused kernels to avoid a copy).
template <typename T>
void PrefixSumInclusiveInPlace(Column<T>* col);

}  // namespace recomp::ops

#endif  // RECOMP_OPS_PREFIX_SUM_H_
