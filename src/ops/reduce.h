// Reductions over plain columns; reference implementations for the
// compressed-domain aggregate pushdowns in src/exec.

#ifndef RECOMP_OPS_REDUCE_H_
#define RECOMP_OPS_REDUCE_H_

#include <cstdint>

#include "columnar/column.h"
#include "util/result.h"

namespace recomp::ops {

/// Sum of all values, accumulated in uint64 (wrapping mod 2^64).
template <typename T>
uint64_t Sum(const Column<T>& col);

/// Minimum value; fails on an empty column.
template <typename T>
Result<T> Min(const Column<T>& col);

/// Maximum value; fails on an empty column.
template <typename T>
Result<T> Max(const Column<T>& col);

}  // namespace recomp::ops

#endif  // RECOMP_OPS_REDUCE_H_
