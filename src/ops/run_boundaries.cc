#include "ops/run_boundaries.h"

namespace recomp::ops {

template <typename T>
Result<Runs<T>> FindRuns(const Column<T>& col) {
  if (col.size() >= (uint64_t{1} << 32)) {
    return Status::OutOfRange("FindRuns supports columns below 2^32 rows");
  }
  Runs<T> runs;
  if (col.empty()) return runs;
  uint32_t run_start = 0;
  for (uint32_t i = 1; i < col.size(); ++i) {
    if (col[i] != col[run_start]) {
      runs.values.push_back(col[run_start]);
      runs.lengths.push_back(i - run_start);
      runs.end_positions.push_back(i);
      run_start = i;
    }
  }
  runs.values.push_back(col[run_start]);
  runs.lengths.push_back(static_cast<uint32_t>(col.size()) - run_start);
  runs.end_positions.push_back(static_cast<uint32_t>(col.size()));
  return runs;
}

#define RECOMP_INSTANTIATE_RUNS(T) \
  template Result<Runs<T>> FindRuns<T>(const Column<T>&);

RECOMP_INSTANTIATE_RUNS(uint8_t)
RECOMP_INSTANTIATE_RUNS(uint16_t)
RECOMP_INSTANTIATE_RUNS(uint32_t)
RECOMP_INSTANTIATE_RUNS(uint64_t)
RECOMP_INSTANTIATE_RUNS(int8_t)
RECOMP_INSTANTIATE_RUNS(int16_t)
RECOMP_INSTANTIATE_RUNS(int32_t)
RECOMP_INSTANTIATE_RUNS(int64_t)

#undef RECOMP_INSTANTIATE_RUNS

}  // namespace recomp::ops
