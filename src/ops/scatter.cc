#include "ops/scatter.h"

#include "util/string_util.h"

namespace recomp::ops {

template <typename T>
Status ScatterInto(const Column<T>& values, const Column<uint32_t>& indices,
                   Column<T>* target) {
  if (values.size() != indices.size()) {
    return Status::InvalidArgument(StringFormat(
        "scatter arity mismatch: %llu values vs %llu indices",
        static_cast<unsigned long long>(values.size()),
        static_cast<unsigned long long>(indices.size())));
  }
  for (uint64_t i = 0; i < indices.size(); ++i) {
    if (RECOMP_PREDICT_FALSE(indices[i] >= target->size())) {
      return Status::OutOfRange(StringFormat(
          "scatter index %u at row %llu exceeds |target| = %llu", indices[i],
          static_cast<unsigned long long>(i),
          static_cast<unsigned long long>(target->size())));
    }
    (*target)[indices[i]] = values[i];
  }
  return Status::OK();
}

template <typename T>
Result<Column<T>> ScatterConstant(T value, const Column<uint32_t>& indices,
                                  uint64_t n) {
  Column<T> out(n, T{0});
  for (uint64_t i = 0; i < indices.size(); ++i) {
    if (RECOMP_PREDICT_FALSE(indices[i] >= n)) {
      return Status::OutOfRange(StringFormat(
          "scatter index %u at row %llu exceeds length %llu", indices[i],
          static_cast<unsigned long long>(i),
          static_cast<unsigned long long>(n)));
    }
    out[indices[i]] = value;
  }
  return out;
}

#define RECOMP_INSTANTIATE_SCATTER(T)                                    \
  template Status ScatterInto<T>(const Column<T>&, const Column<uint32_t>&, \
                                 Column<T>*);                            \
  template Result<Column<T>> ScatterConstant<T>(T, const Column<uint32_t>&, \
                                                uint64_t);

RECOMP_INSTANTIATE_SCATTER(uint8_t)
RECOMP_INSTANTIATE_SCATTER(uint16_t)
RECOMP_INSTANTIATE_SCATTER(uint32_t)
RECOMP_INSTANTIATE_SCATTER(uint64_t)
RECOMP_INSTANTIATE_SCATTER(int8_t)
RECOMP_INSTANTIATE_SCATTER(int16_t)
RECOMP_INSTANTIATE_SCATTER(int32_t)
RECOMP_INSTANTIATE_SCATTER(int64_t)

#undef RECOMP_INSTANTIATE_SCATTER

}  // namespace recomp::ops
