// Scatter: out[indices[i]] = values[i] into a pre-existing column — the
// run-boundary marking step of the paper's Algorithm 1.

#ifndef RECOMP_OPS_SCATTER_H_
#define RECOMP_OPS_SCATTER_H_

#include <cstdint>

#include "columnar/column.h"
#include "util/result.h"

namespace recomp::ops {

/// Writes values[i] to (*target)[indices[i]]. Fails with OutOfRange when an
/// index exceeds the target. Later writes win on duplicate indices.
template <typename T>
Status ScatterInto(const Column<T>& values, const Column<uint32_t>& indices,
                   Column<T>* target);

/// Algorithm-1 convenience: returns a fresh zero column of length `n` with
/// `value` scattered at `indices`.
template <typename T>
Result<Column<T>> ScatterConstant(T value, const Column<uint32_t>& indices,
                                  uint64_t n);

}  // namespace recomp::ops

#endif  // RECOMP_OPS_SCATTER_H_
