#include "ops/prefix_sum.h"

#include "ops/dispatch.h"
#include "ops/kernels_avx2.h"

namespace recomp::ops {

template <typename T>
Column<T> PrefixSumInclusive(const Column<T>& in) {
  Column<T> out(in.size());
  if constexpr (std::is_same_v<T, uint32_t>) {
    if (HasAvx2() && !in.empty()) {
      avx2::PrefixSumInclusiveU32(in.data(), in.size(), out.data());
      return out;
    }
  } else if constexpr (std::is_same_v<T, uint64_t>) {
    if (HasAvx2() && !in.empty()) {
      avx2::PrefixSumInclusiveU64(in.data(), in.size(), out.data());
      return out;
    }
  }
  T acc{0};
  for (uint64_t i = 0; i < in.size(); ++i) {
    acc = static_cast<T>(acc + in[i]);
    out[i] = acc;
  }
  return out;
}

template <typename T>
Column<T> PrefixSumExclusive(const Column<T>& in) {
  Column<T> out(in.size());
  T acc{0};
  for (uint64_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc = static_cast<T>(acc + in[i]);
  }
  return out;
}

template <typename T>
void PrefixSumInclusiveInPlace(Column<T>* col) {
  T acc{0};
  for (auto& v : *col) {
    acc = static_cast<T>(acc + v);
    v = acc;
  }
}

#define RECOMP_INSTANTIATE_PREFIX_SUM(T)                      \
  template Column<T> PrefixSumInclusive<T>(const Column<T>&); \
  template Column<T> PrefixSumExclusive<T>(const Column<T>&); \
  template void PrefixSumInclusiveInPlace<T>(Column<T>*);

RECOMP_INSTANTIATE_PREFIX_SUM(uint8_t)
RECOMP_INSTANTIATE_PREFIX_SUM(uint16_t)
RECOMP_INSTANTIATE_PREFIX_SUM(uint32_t)
RECOMP_INSTANTIATE_PREFIX_SUM(uint64_t)
RECOMP_INSTANTIATE_PREFIX_SUM(int8_t)
RECOMP_INSTANTIATE_PREFIX_SUM(int16_t)
RECOMP_INSTANTIATE_PREFIX_SUM(int32_t)
RECOMP_INSTANTIATE_PREFIX_SUM(int64_t)

#undef RECOMP_INSTANTIATE_PREFIX_SUM

}  // namespace recomp::ops
