#include "ops/pack.h"

#include <bit>
#include <cstring>

#include "ops/dispatch.h"
#include "ops/kernels_avx2.h"
#include "util/bits.h"
#include "util/string_util.h"

static_assert(std::endian::native == std::endian::little,
              "packing kernels assume a little-endian target");

namespace recomp::ops {

namespace {

/// Loads up to 8 bytes starting at `p`, zero-extended, without reading past
/// `end`.
inline uint64_t LoadLE64Clamped(const uint8_t* p, const uint8_t* end) {
  uint64_t v = 0;
  const uint64_t avail = static_cast<uint64_t>(end - p);
  std::memcpy(&v, p, avail >= 8 ? 8 : avail);
  return v;
}

template <typename T>
void PackScalar(const T* in, uint64_t n, int width, uint8_t* out) {
  const uint64_t mask = bits::LowMask64(width);
  uint64_t bitpos = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t v = static_cast<uint64_t>(in[i]) & mask;
    uint64_t byte = bitpos >> 3;
    const int shift = bitpos & 7;
    // The first byte may be shared with the previous value's tail: OR into
    // it. Bytes after it belong to this value alone and can be assigned.
    out[byte] |= static_cast<uint8_t>(v << shift);
    v >>= (8 - shift);
    for (int remaining = width - (8 - shift); remaining > 0; remaining -= 8) {
      out[++byte] = static_cast<uint8_t>(v);
      v >>= 8;
    }
    bitpos += width;
  }
}

/// Decodes the single `width`-bit value starting at bit `index * width`.
/// Shared by UnpackOne, UnpackRange's scalar path, and the full unpack; reads
/// past `in_bytes` decode as zero bits.
template <typename T>
T UnpackOneScalar(const uint8_t* in, uint64_t in_bytes, uint64_t index,
                  int width) {
  const uint64_t bitpos = index * static_cast<uint64_t>(width);
  const uint64_t byte = bitpos >> 3;
  if (byte >= in_bytes) return T{0};
  const int shift = static_cast<int>(bitpos & 7);
  uint64_t v = LoadLE64Clamped(in + byte, in + in_bytes) >> shift;
  if (shift + width > 64) {
    // The value straddles 9 bytes (only possible for width > 56).
    v |= static_cast<uint64_t>(in[byte + 8]) << (64 - shift);
  }
  return static_cast<T>(v & bits::LowMask64(width));
}

template <typename T>
void UnpackScalar(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
                  uint64_t n, int width, T* out) {
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = UnpackOneScalar<T>(in, in_bytes, begin + i, width);
  }
}

}  // namespace

template <typename T>
Result<PackedColumn> PackTruncating(const Column<T>& col, int width) {
  if (width < 0 || width > bits::TypeBits<T>()) {
    return Status::InvalidArgument(StringFormat(
        "pack width %d outside [0, %d]", width, bits::TypeBits<T>()));
  }
  PackedColumn out;
  out.bit_width = width;
  out.n = col.size();
  out.logical_type = TypeIdOf<T>();
  out.bytes.assign(bits::PackedByteSize(col.size(), width), 0);
  if (width > 0 && !col.empty()) {
    PackScalar(col.data(), col.size(), width, out.bytes.data());
  }
  return out;
}

template <typename T>
Result<PackedColumn> Pack(const Column<T>& col, int width) {
  if (width < 0 || width > bits::TypeBits<T>()) {
    return Status::InvalidArgument(StringFormat(
        "pack width %d outside [0, %d]", width, bits::TypeBits<T>()));
  }
  const uint64_t mask = bits::LowMask64(width);
  for (uint64_t i = 0; i < col.size(); ++i) {
    if ((static_cast<uint64_t>(col[i]) & ~mask) != 0) {
      return Status::InvalidArgument(
          StringFormat("value at row %llu does not fit in %d bits",
                       static_cast<unsigned long long>(i), width));
    }
  }
  return PackTruncating(col, width);
}

template <typename T>
Result<Column<T>> Unpack(const PackedColumn& packed) {
  if (packed.bit_width > bits::TypeBits<T>()) {
    return Status::InvalidArgument(
        StringFormat("cannot unpack width %d into %d-bit type",
                     packed.bit_width, bits::TypeBits<T>()));
  }
  const uint64_t needed = bits::PackedByteSize(packed.n, packed.bit_width);
  if (packed.bytes.size() < needed) {
    return Status::Corruption(StringFormat(
        "packed payload holds %llu bytes, need %llu",
        static_cast<unsigned long long>(packed.bytes.size()),
        static_cast<unsigned long long>(needed)));
  }
  Column<T> out(packed.n);
  if (packed.bit_width == 0 || packed.n == 0) {
    std::fill(out.begin(), out.end(), T{0});
    return out;
  }
  if constexpr (std::is_same_v<T, uint32_t>) {
    if (HasAvx2()) {
      if (BaselineUnpackForced()) {
        // Pre-cascade decode for bench_a2: the gather kernel where it
        // applied, scalar everywhere else.
        if (packed.bit_width <= avx2::kMaxGatherUnpackWidth) {
          avx2::UnpackU32Gather(packed.bytes.data(), packed.bytes.size(),
                                packed.n, packed.bit_width, out.data());
          return out;
        }
      } else {
        avx2::UnpackU32(packed.bytes.data(), packed.bytes.size(), 0, packed.n,
                        packed.bit_width, out.data());
        return out;
      }
    }
  } else if constexpr (std::is_same_v<T, uint64_t>) {
    if (HasAvx2() && !BaselineUnpackForced()) {
      avx2::UnpackU64(packed.bytes.data(), packed.bytes.size(), 0, packed.n,
                      packed.bit_width, out.data());
      return out;
    }
  }
  UnpackScalar(packed.bytes.data(), packed.bytes.size(), 0, packed.n,
               packed.bit_width, out.data());
  return out;
}

template <typename T>
T UnpackOne(const PackedColumn& packed, uint64_t index) {
  RECOMP_DCHECK(index < packed.n, "UnpackOne index out of range");
  if (packed.bit_width == 0) return T{0};
  return UnpackOneScalar<T>(packed.bytes.data(), packed.bytes.size(), index,
                            packed.bit_width);
}

template <typename T>
Status UnpackRange(const PackedColumn& packed, uint64_t begin, uint64_t end,
                   T* out) {
  if (begin > end || end > packed.n) {
    return Status::OutOfRange("UnpackRange bounds outside the column");
  }
  if (packed.bit_width > bits::TypeBits<T>()) {
    return Status::InvalidArgument("UnpackRange into too-narrow type");
  }
  if (packed.bit_width == 0) {
    std::fill(out, out + (end - begin), T{0});
    return Status::OK();
  }
  const uint64_t needed = bits::PackedByteSize(packed.n, packed.bit_width);
  if (packed.bytes.size() < needed) {
    return Status::Corruption(StringFormat(
        "packed payload holds %llu bytes, need %llu",
        static_cast<unsigned long long>(packed.bytes.size()),
        static_cast<unsigned long long>(needed)));
  }
  // Values are bit-contiguous, so row i starts at bit i * width; decode the
  // requested rows directly (same width-generic kernels as the full unpack)
  // without touching the rest of the payload.
  const uint64_t count = end - begin;
  if constexpr (std::is_same_v<T, uint32_t>) {
    if (HasAvx2() && !BaselineUnpackForced()) {
      avx2::UnpackU32(packed.bytes.data(), packed.bytes.size(), begin, count,
                      packed.bit_width, out);
      return Status::OK();
    }
  } else if constexpr (std::is_same_v<T, uint64_t>) {
    if (HasAvx2() && !BaselineUnpackForced()) {
      avx2::UnpackU64(packed.bytes.data(), packed.bytes.size(), begin, count,
                      packed.bit_width, out);
      return Status::OK();
    }
  }
  UnpackScalar(packed.bytes.data(), packed.bytes.size(), begin, count,
               packed.bit_width, out);
  return Status::OK();
}

#define RECOMP_INSTANTIATE_PACK(T)                                   \
  template Result<PackedColumn> Pack<T>(const Column<T>&, int);      \
  template Result<PackedColumn> PackTruncating<T>(const Column<T>&, int); \
  template Result<Column<T>> Unpack<T>(const PackedColumn&);         \
  template T UnpackOne<T>(const PackedColumn&, uint64_t);            \
  template Status UnpackRange<T>(const PackedColumn&, uint64_t, uint64_t, T*);

RECOMP_INSTANTIATE_PACK(uint8_t)
RECOMP_INSTANTIATE_PACK(uint16_t)
RECOMP_INSTANTIATE_PACK(uint32_t)
RECOMP_INSTANTIATE_PACK(uint64_t)

#undef RECOMP_INSTANTIATE_PACK

}  // namespace recomp::ops
