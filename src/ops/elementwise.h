// Elementwise binary operators over columns (the paper's Elementwise(op, ·, ·))
// plus column ⊗ scalar forms used when one operand is a Constant column —
// the fusion the plan optimizer applies to Algorithm 2's `÷ ells` step.

#ifndef RECOMP_OPS_ELEMENTWISE_H_
#define RECOMP_OPS_ELEMENTWISE_H_

#include <cstdint>
#include <string>

#include "columnar/column.h"
#include "util/result.h"

namespace recomp::ops {

/// The binary operations the plan IR supports. Arithmetic wraps mod 2^bits.
enum class BinOp : int {
  kAdd = 0,
  kSub = 1,
  kMul = 2,
  kDiv = 3,  ///< Unsigned integer division; division by zero is an error.
};

/// Stable name ("+", "-", "*", "/").
const char* BinOpName(BinOp op);

/// out[i] = a[i] op b[i]. Fails on length mismatch or division by zero.
template <typename T>
Result<Column<T>> Elementwise(BinOp op, const Column<T>& a, const Column<T>& b);

/// out[i] = a[i] op scalar. Fails on division by zero.
template <typename T>
Result<Column<T>> ElementwiseScalar(BinOp op, const Column<T>& a, T scalar);

}  // namespace recomp::ops

#endif  // RECOMP_OPS_ELEMENTWISE_H_
