#include "ops/gather.h"

#include "ops/dispatch.h"
#include "ops/kernels_avx2.h"
#include "util/string_util.h"

namespace recomp::ops {

template <typename T>
Column<T> GatherUnchecked(const Column<T>& values,
                          const Column<uint32_t>& indices) {
  Column<T> out(indices.size());
  if constexpr (std::is_same_v<T, uint32_t>) {
    if (HasAvx2() && !indices.empty()) {
      avx2::GatherU32(values.data(), indices.data(), indices.size(),
                      out.data());
      return out;
    }
  }
  for (uint64_t i = 0; i < indices.size(); ++i) {
    out[i] = values[indices[i]];
  }
  return out;
}

template <typename T>
Result<Column<T>> Gather(const Column<T>& values,
                         const Column<uint32_t>& indices) {
  for (uint64_t i = 0; i < indices.size(); ++i) {
    if (RECOMP_PREDICT_FALSE(indices[i] >= values.size())) {
      return Status::OutOfRange(StringFormat(
          "gather index %u at row %llu exceeds |values| = %llu", indices[i],
          static_cast<unsigned long long>(i),
          static_cast<unsigned long long>(values.size())));
    }
  }
  return GatherUnchecked(values, indices);
}

#define RECOMP_INSTANTIATE_GATHER(T)                       \
  template Result<Column<T>> Gather<T>(const Column<T>&,   \
                                       const Column<uint32_t>&); \
  template Column<T> GatherUnchecked<T>(const Column<T>&,  \
                                        const Column<uint32_t>&);

RECOMP_INSTANTIATE_GATHER(uint8_t)
RECOMP_INSTANTIATE_GATHER(uint16_t)
RECOMP_INSTANTIATE_GATHER(uint32_t)
RECOMP_INSTANTIATE_GATHER(uint64_t)
RECOMP_INSTANTIATE_GATHER(int8_t)
RECOMP_INSTANTIATE_GATHER(int16_t)
RECOMP_INSTANTIATE_GATHER(int32_t)
RECOMP_INSTANTIATE_GATHER(int64_t)

#undef RECOMP_INSTANTIATE_GATHER

}  // namespace recomp::ops
