// Bit packing / unpacking: the kernel behind the NS (null suppression)
// scheme and the plan executor's Pack/Unpack operators.
//
// Layout: values are stored LSB-first, bit-contiguously, with zero padding
// to the next byte boundary; no per-block headers (the paper's "pure
// columns" requirement).

#ifndef RECOMP_OPS_PACK_H_
#define RECOMP_OPS_PACK_H_

#include <cstdint>

#include "columnar/column.h"
#include "columnar/packed.h"
#include "util/result.h"

namespace recomp::ops {

/// Packs `col` into `width`-bit values. Fails with InvalidArgument if any
/// value needs more than `width` bits or `width` exceeds the type's width.
template <typename T>
Result<PackedColumn> Pack(const Column<T>& col, int width);

/// Packs, masking values to `width` bits instead of failing (used by the
/// PATCHED combinator, which re-materializes the masked-off high bits from
/// its patch list).
template <typename T>
Result<PackedColumn> PackTruncating(const Column<T>& col, int width);

/// Unpacks into a Column<T>. Fails with Corruption if the payload is shorter
/// than `packed.n * packed.bit_width` bits or the width exceeds T's.
template <typename T>
Result<Column<T>> Unpack(const PackedColumn& packed);

/// Reads the single value at `index` without unpacking the column
/// (random access used by patch application and point lookups).
template <typename T>
T UnpackOne(const PackedColumn& packed, uint64_t index);

/// Unpacks only rows [begin, end) into `out` (which must hold end - begin
/// values). Powers segment-wise access under pruned selections.
template <typename T>
Status UnpackRange(const PackedColumn& packed, uint64_t begin, uint64_t end,
                   T* out);

}  // namespace recomp::ops

#endif  // RECOMP_OPS_PACK_H_
