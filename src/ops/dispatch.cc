#include "ops/dispatch.h"

#include <atomic>

namespace recomp::ops {

namespace {
std::atomic<bool> g_force_scalar{false};

bool DetectAvx2() {
#if defined(RECOMP_COMPILED_AVX2)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}
}  // namespace

bool HasAvx2() {
  static const bool supported = DetectAvx2();
  return supported && !g_force_scalar.load(std::memory_order_relaxed);
}

void ForceScalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool ScalarForced() { return g_force_scalar.load(std::memory_order_relaxed); }

}  // namespace recomp::ops
