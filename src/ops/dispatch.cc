#include "ops/dispatch.h"

#include <atomic>
#include <cstdlib>

namespace recomp::ops {

namespace {
std::atomic<bool> g_force_scalar{false};
std::atomic<bool> g_force_baseline_unpack{false};

bool DetectAvx2() {
#if defined(RECOMP_COMPILED_AVX2)
  // RECOMP_FORCE_SCALAR=1 in the environment pins the whole process to the
  // scalar kernels (the CI matrix leg); unlike ForceScalar() it is sticky —
  // tests that toggle the runtime knob back off still run scalar.
  const char* env = std::getenv("RECOMP_FORCE_SCALAR");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') return false;
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}
}  // namespace

bool HasAvx2() {
  static const bool supported = DetectAvx2();
  return supported && !g_force_scalar.load(std::memory_order_relaxed);
}

void ForceScalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool ScalarForced() { return g_force_scalar.load(std::memory_order_relaxed); }

void ForceBaselineUnpack(bool force) {
  g_force_baseline_unpack.store(force, std::memory_order_relaxed);
}

bool BaselineUnpackForced() {
  return g_force_baseline_unpack.load(std::memory_order_relaxed);
}

}  // namespace recomp::ops
