// AVX2 kernel entry points (definitions in kernels_avx2.cc, compiled with
// -mavx2). Callers must check ops::HasAvx2() before calling; when the build
// disables AVX2 these symbols still exist but delegate to scalar code.

#ifndef RECOMP_OPS_KERNELS_AVX2_H_
#define RECOMP_OPS_KERNELS_AVX2_H_

#include <cstdint>

namespace recomp::ops::avx2 {

/// Maximum bit width the AVX2 gather-based unpacker handles; wider values
/// can straddle more than the 32 bits a lane can shift out of.
inline constexpr int kMaxUnpackWidth = 25;

/// Unpacks `n` `width`-bit values (1 <= width <= kMaxUnpackWidth) from `in`
/// (with `in_bytes` readable bytes) into `out`. Handles the buffer tail by
/// delegating the last values to scalar code.
void UnpackU32(const uint8_t* in, uint64_t in_bytes, uint64_t n, int width,
               uint32_t* out);

/// Inclusive prefix sum of uint32 values, 8 lanes at a time.
void PrefixSumInclusiveU32(const uint32_t* in, uint64_t n, uint32_t* out);

/// out[i] = in[i] + addend.
void AddConstantU32(const uint32_t* in, uint64_t n, uint32_t addend,
                    uint32_t* out);

/// out[i] = values[indices[i]] via vpgatherdd.
void GatherU32(const uint32_t* values, const uint32_t* indices, uint64_t n,
               uint32_t* out);

}  // namespace recomp::ops::avx2

#endif  // RECOMP_OPS_KERNELS_AVX2_H_
