// AVX2 kernel entry points (definitions in kernels_avx2.cc, compiled with
// -mavx2). Callers must check ops::HasAvx2() before calling; when the build
// disables AVX2 these symbols still exist but delegate to scalar code.
//
// The unpack kernels are width-generic: one permute-based routine covers
// every width 1..32 (u32) and 1..64 (u64) at any starting element, so range
// unpacks, whole-column unpacks, and the fused cascade kernels all share the
// same inner loop. The fused entry points (UnpackAdd*, UnpackZigZagPrefix*)
// keep the unpacked lanes in registers through the reconstruction arithmetic
// — no materialized intermediate column exists.

#ifndef RECOMP_OPS_KERNELS_AVX2_H_
#define RECOMP_OPS_KERNELS_AVX2_H_

#include <cstdint>

namespace recomp::ops::avx2 {

/// Maximum bit width the permute-based u32 unpacker handles (all of them).
inline constexpr int kMaxUnpackWidth = 32;

/// Maximum bit width the permute-based u64 unpacker handles (all of them).
inline constexpr int kMaxUnpackWidth64 = 64;

/// Maximum bit width of the first-generation gather-based unpacker, kept as
/// the measured baseline in bench_a2 (wider values can straddle more than
/// the 32 bits a gather lane can shift out of).
inline constexpr int kMaxGatherUnpackWidth = 25;

/// Unpacks `n` `width`-bit values starting at element index `begin` from
/// `in` (with `in_bytes` readable bytes) into `out[0..n)`. Any width in
/// [0, 32]; groups whose 36-byte load window would cross the payload end are
/// delegated to scalar code.
void UnpackU32(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
               uint64_t n, int width, uint32_t* out);

/// u64 variant: any width in [0, 64], four values per vector.
void UnpackU64(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
               uint64_t n, int width, uint64_t* out);

/// First-generation gather-based unpacker (widths 1..kMaxGatherUnpackWidth,
/// begin fixed at 0). Retained as the "pre-cascade" baseline the A2 bench
/// prices the permute kernels against; see ops::ForceBaselineUnpack().
void UnpackU32Gather(const uint8_t* in, uint64_t in_bytes, uint64_t n,
                     int width, uint32_t* out);

/// Fused FOR reconstruction: out[i] = unpack(begin + i) + addend. One pass,
/// register-to-register; powers segment-wise MODELED(STEP) decode.
void UnpackAddU32(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
                  uint64_t n, int width, uint32_t addend, uint32_t* out);
void UnpackAddU64(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
                  uint64_t n, int width, uint64_t addend, uint64_t* out);

/// Fused DELTA←ZIGZAG←NS reconstruction: unpack the whole column, zigzag-
/// decode each lane and running-prefix-sum, all in registers. Sums wrap mod
/// 2^bits exactly like the scalar reference.
void UnpackZigZagPrefixU32(const uint8_t* in, uint64_t in_bytes, uint64_t n,
                           int width, uint32_t* out);
void UnpackZigZagPrefixU64(const uint8_t* in, uint64_t in_bytes, uint64_t n,
                           int width, uint64_t* out);

/// In-place zigzag-decode + inclusive prefix sum (the tail half of the fused
/// DELTA decode, for shapes whose codes were materialized by a patch pass).
void ZigZagPrefixInPlaceU32(uint32_t* data, uint64_t n);
void ZigZagPrefixInPlaceU64(uint64_t* data, uint64_t n);

/// Inclusive prefix sum of uint32 values, 8 lanes at a time.
void PrefixSumInclusiveU32(const uint32_t* in, uint64_t n, uint32_t* out);

/// Inclusive prefix sum of uint64 values, 4 lanes at a time.
void PrefixSumInclusiveU64(const uint64_t* in, uint64_t n, uint64_t* out);

/// out[i] = in[i] + addend.
void AddConstantU32(const uint32_t* in, uint64_t n, uint32_t addend,
                    uint32_t* out);
void AddConstantU64(const uint64_t* in, uint64_t n, uint64_t addend,
                    uint64_t* out);

/// out[i] = values[indices[i]] via vpgatherdd.
void GatherU32(const uint32_t* values, const uint32_t* indices, uint64_t n,
               uint32_t* out);

/// Patched-exception scatter: data[positions[p]] = values[p]. AVX2 has no
/// scatter instruction, so this is the (unrolled) scalar bound; callers
/// validate positions/patch agreement first.
void ScatterU32(uint32_t* data, const uint32_t* positions,
                const uint32_t* values, uint64_t count);
void ScatterU64(uint64_t* data, const uint32_t* positions,
                const uint64_t* values, uint64_t count);

}  // namespace recomp::ops::avx2

#endif  // RECOMP_OPS_KERNELS_AVX2_H_
