// Constant and PopBack: the trivial columnar operators of Algorithm 1.

#ifndef RECOMP_OPS_CONSTANT_H_
#define RECOMP_OPS_CONSTANT_H_

#include <cstdint>

#include "columnar/column.h"

namespace recomp::ops {

/// A column of `n` copies of `value` (the paper's Constant(v, n)).
template <typename T>
Column<T> Constant(T value, uint64_t n) {
  return Column<T>(n, value);
}

/// The column without its last element (the paper's PopBack). Returns an
/// empty column for empty input.
template <typename T>
Column<T> PopBack(const Column<T>& in) {
  if (in.empty()) return {};
  return Column<T>(in.begin(), in.end() - 1);
}

}  // namespace recomp::ops

#endif  // RECOMP_OPS_CONSTANT_H_
