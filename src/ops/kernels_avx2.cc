// AVX2 implementations of the hot decompression kernels.
//
// This translation unit is compiled with -mavx2 (see src/CMakeLists.txt);
// when the build disables AVX2 it compiles to thin forwarding wrappers over
// scalar code so the symbols always exist. All entry points here assume the
// caller checked ops::HasAvx2().

#include "ops/kernels_avx2.h"

#include <cstring>

#include "util/bits.h"
#include "util/macros.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace recomp::ops::avx2 {

namespace {

// Scalar fallbacks used for buffer tails (and for the whole input when the
// build lacks AVX2).

void UnpackU32Tail(const uint8_t* in, uint64_t in_bytes, uint64_t first,
                   uint64_t n, int width, uint32_t* out) {
  const uint64_t mask = bits::LowMask64(width);
  for (uint64_t i = first; i < n; ++i) {
    const uint64_t bitpos = i * static_cast<uint64_t>(width);
    const uint64_t byte = bitpos >> 3;
    const int shift = bitpos & 7;
    uint64_t v = 0;
    const uint64_t avail = in_bytes - byte;
    std::memcpy(&v, in + byte, avail >= 8 ? 8 : avail);
    out[i] = static_cast<uint32_t>((v >> shift) & mask);
  }
}

void PrefixSumTail(const uint32_t* in, uint64_t first, uint64_t n,
                   uint32_t acc, uint32_t* out) {
  for (uint64_t i = first; i < n; ++i) {
    acc += in[i];
    out[i] = acc;
  }
}

}  // namespace

#if defined(__AVX2__)

void UnpackU32(const uint8_t* in, uint64_t in_bytes, uint64_t n, int width,
               uint32_t* out) {
  RECOMP_DCHECK(width >= 1 && width <= kMaxUnpackWidth,
                "AVX2 unpack width out of range");
  // Per 8-lane group: lane j reads 4 bytes at group_byte + ((bit&7)+j*w)/8
  // and shifts right by ((bit&7)+j*w)%8; shift+width <= 7+25 = 32 bits, so a
  // 4-byte load always contains the whole value. The 4-byte gather of the
  // last lane may read past the payload, so groups whose reads could cross
  // the end are delegated to the scalar tail.
  const __m256i lane_bits = _mm256_setr_epi32(0, width, 2 * width, 3 * width,
                                              4 * width, 5 * width, 6 * width,
                                              7 * width);
  const __m256i mask = _mm256_set1_epi32(
      static_cast<int>(bits::LowMask32(width)));
  const __m256i seven = _mm256_set1_epi32(7);

  uint64_t i = 0;
  // Highest in-group byte offset is (7 + 7*width)/8; the gather reads 4
  // bytes there.
  const uint64_t group_reach = static_cast<uint64_t>((7 + 7 * width) / 8) + 4;
  for (; i + 8 <= n; i += 8) {
    const uint64_t bit = i * static_cast<uint64_t>(width);
    const uint64_t group_byte = bit >> 3;
    if (RECOMP_PREDICT_FALSE(group_byte + group_reach > in_bytes)) break;
    const __m256i rel =
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(bit & 7)),
                         lane_bits);
    const __m256i byte_off = _mm256_srli_epi32(rel, 3);
    const __m256i shift = _mm256_and_si256(rel, seven);
    const __m256i loaded = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(in + group_byte), byte_off, 1);
    const __m256i vals =
        _mm256_and_si256(_mm256_srlv_epi32(loaded, shift), mask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vals);
  }
  UnpackU32Tail(in, in_bytes, i, n, width, out);
}

namespace {

/// Inclusive prefix sum within one 8-lane vector.
inline __m256i PrefixSum8(__m256i x) {
  x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
  x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
  // Carry the low half's total (its lane 3) into every lane of the high half.
  const __m256i half_totals = _mm256_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
  const __m256i carry = _mm256_permute2x128_si256(half_totals, half_totals,
                                                  0x08);
  return _mm256_add_epi32(x, carry);
}

}  // namespace

void PrefixSumInclusiveU32(const uint32_t* in, uint64_t n, uint32_t* out) {
  uint64_t i = 0;
  __m256i running = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    x = _mm256_add_epi32(PrefixSum8(x), running);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
    running = _mm256_permutevar8x32_epi32(x, _mm256_set1_epi32(7));
  }
  PrefixSumTail(in, i, n, _mm256_extract_epi32(running, 0), out);
}

void AddConstantU32(const uint32_t* in, uint64_t n, uint32_t addend,
                    uint32_t* out) {
  const __m256i a = _mm256_set1_epi32(static_cast<int>(addend));
  uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi32(x, a));
  }
  for (; i < n; ++i) out[i] = in[i] + addend;
}

void GatherU32(const uint32_t* values, const uint32_t* indices, uint64_t n,
               uint32_t* out) {
  uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(indices + i));
    const __m256i vals = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(values), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vals);
  }
  for (; i < n; ++i) out[i] = values[indices[i]];
}

#else  // !defined(__AVX2__)

void UnpackU32(const uint8_t* in, uint64_t in_bytes, uint64_t n, int width,
               uint32_t* out) {
  UnpackU32Tail(in, in_bytes, 0, n, width, out);
}

void PrefixSumInclusiveU32(const uint32_t* in, uint64_t n, uint32_t* out) {
  PrefixSumTail(in, 0, n, 0, out);
}

void AddConstantU32(const uint32_t* in, uint64_t n, uint32_t addend,
                    uint32_t* out) {
  for (uint64_t i = 0; i < n; ++i) out[i] = in[i] + addend;
}

void GatherU32(const uint32_t* values, const uint32_t* indices, uint64_t n,
               uint32_t* out) {
  for (uint64_t i = 0; i < n; ++i) out[i] = values[indices[i]];
}

#endif  // defined(__AVX2__)

}  // namespace recomp::ops::avx2
