// AVX2 implementations of the hot decompression kernels.
//
// This translation unit is compiled with -mavx2 (see CMakeLists.txt); when
// the build disables AVX2 it compiles to thin forwarding wrappers over
// scalar code so the symbols always exist. All entry points here assume the
// caller checked ops::HasAvx2().
//
// The unpack kernels exploit the layout invariant that 8 consecutive
// width-bit values span exactly `width` bytes, so a group's first value
// starts at a computable byte with a sub-byte remainder of at most 7 bits.
// Two overlapping 32-byte loads plus a dword permute put each lane's window
// in place, and variable shifts extract the value — no gather, any width.
// A lane's window is [32*d, 32*d+64) bits for u32 (d = in-window dword
// index, sub-dword shift s <= 31, s + width <= 63 < 64) and three dwords
// for u64 (s + width <= 31 + 64 < 96). Groups whose 36-byte load window
// would cross the payload end fall back to scalar code.

#include "ops/kernels_avx2.h"

#include <cstring>

#include "util/bits.h"
#include "util/macros.h"
#include "util/zigzag.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace recomp::ops::avx2 {

namespace {

// Scalar fallbacks used for buffer tails (and for the whole input when the
// build lacks AVX2).

/// Unpacks elements [first, n) of the range starting at element `begin`.
template <typename T>
void UnpackScalar(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
                  uint64_t first, uint64_t n, int width, T* out) {
  const uint64_t mask = bits::LowMask64(width);
  const uint64_t uwidth = static_cast<uint64_t>(width);
  for (uint64_t i = first; i < n; ++i) {
    const uint64_t bitpos = (begin + i) * uwidth;
    const uint64_t byte = bitpos >> 3;
    if (RECOMP_PREDICT_FALSE(byte >= in_bytes)) {
      out[i] = T{0};
      continue;
    }
    const int shift = static_cast<int>(bitpos & 7);
    uint64_t v = 0;
    const uint64_t avail = in_bytes - byte;
    std::memcpy(&v, in + byte, avail >= 8 ? 8 : avail);
    v >>= shift;
    if (shift + width > 64) {
      // The value straddles 9 bytes (only possible for width > 56).
      v |= static_cast<uint64_t>(in[byte + 8]) << (64 - shift);
    }
    out[i] = static_cast<T>(v & mask);
  }
}

template <typename T>
void PrefixSumTail(const T* in, uint64_t first, uint64_t n, T acc, T* out) {
  for (uint64_t i = first; i < n; ++i) {
    acc = static_cast<T>(acc + in[i]);
    out[i] = acc;
  }
}

/// In-place zigzag decode + inclusive prefix sum over [first, n).
template <typename T>
void ZigZagPrefixScalar(T* data, uint64_t first, uint64_t n, T acc) {
  for (uint64_t i = first; i < n; ++i) {
    acc = static_cast<T>(acc + static_cast<T>(zigzag::Decode(data[i])));
    data[i] = acc;
  }
}

}  // namespace

// The scatter bound is scalar on AVX2 (no scatter instruction before
// AVX-512); a 4x unroll keeps the stores independent.
void ScatterU32(uint32_t* data, const uint32_t* positions,
                const uint32_t* values, uint64_t count) {
  uint64_t p = 0;
  for (; p + 4 <= count; p += 4) {
    data[positions[p]] = values[p];
    data[positions[p + 1]] = values[p + 1];
    data[positions[p + 2]] = values[p + 2];
    data[positions[p + 3]] = values[p + 3];
  }
  for (; p < count; ++p) data[positions[p]] = values[p];
}

void ScatterU64(uint64_t* data, const uint32_t* positions,
                const uint64_t* values, uint64_t count) {
  uint64_t p = 0;
  for (; p + 4 <= count; p += 4) {
    data[positions[p]] = values[p];
    data[positions[p + 1]] = values[p + 1];
    data[positions[p + 2]] = values[p + 2];
    data[positions[p + 3]] = values[p + 3];
  }
  for (; p < count; ++p) data[positions[p]] = values[p];
}

#if defined(__AVX2__)

namespace {

/// Bytes a group load may touch past the group's first byte: two unaligned
/// 32-byte loads at base and base + 4.
constexpr uint64_t kGroupLoadReach = 36;

/// Width-generic unpack of 8 u32 values per call. Lane j's value starts
/// rel_j = (bit & 7) + j*width bits into the window at byte bit/8; dword
/// d_j = rel_j >> 5 and its successor cover the value, so one permute per
/// load aligns them and (lo >> s) | (hi << (32 - s)) extracts it (a shift
/// count of 32 yields 0, which is exactly the s == 0 case).
class UnpackerU32 {
 public:
  explicit UnpackerU32(int width)
      : lane_bits_(_mm256_setr_epi32(0, width, 2 * width, 3 * width,
                                     4 * width, 5 * width, 6 * width,
                                     7 * width)),
        mask_(_mm256_set1_epi32(static_cast<int>(bits::LowMask32(width)))) {}

  __m256i Group(const uint8_t* in, uint64_t bit) const {
    const uint64_t base = bit >> 3;
    const __m256i rel = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(bit & 7)), lane_bits_);
    const __m256i dword = _mm256_srli_epi32(rel, 5);
    const __m256i shift = _mm256_and_si256(rel, _mm256_set1_epi32(31));
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + base));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + base + 4));
    const __m256i lo = _mm256_permutevar8x32_epi32(v0, dword);
    const __m256i hi = _mm256_permutevar8x32_epi32(v1, dword);
    const __m256i val = _mm256_or_si256(
        _mm256_srlv_epi32(lo, shift),
        _mm256_sllv_epi32(hi, _mm256_sub_epi32(_mm256_set1_epi32(32), shift)));
    return _mm256_and_si256(val, mask_);
  }

 private:
  __m256i lane_bits_;
  __m256i mask_;
};

/// Width-generic unpack of 4 u64 values per call. Each qword lane j needs
/// stream dwords d_j, d_j+1, d_j+2 (s + width <= 95 bits); the pair permute
/// [d_j, d_j+1] builds the low qword window and the overlapping load's
/// permute shifted down by 32 zero-extends dword d_j+2 for the high half.
class UnpackerU64 {
 public:
  explicit UnpackerU64(int width)
      : pair_bits_(_mm256_setr_epi32(0, 0, width, width, 2 * width, 2 * width,
                                     3 * width, 3 * width)),
        mask_(_mm256_set1_epi64x(
            static_cast<long long>(bits::LowMask64(width)))) {}

  __m256i Group(const uint8_t* in, uint64_t bit) const {
    const uint64_t base = bit >> 3;
    const __m256i rel = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(bit & 7)), pair_bits_);
    const __m256i idx =
        _mm256_add_epi32(_mm256_srli_epi32(rel, 5),
                         _mm256_setr_epi32(0, 1, 0, 1, 0, 1, 0, 1));
    // rel holds each lane's value twice; masking per-qword keeps the low
    // copy as that lane's sub-dword shift.
    const __m256i shift = _mm256_and_si256(rel, _mm256_set1_epi64x(31));
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + base));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + base + 4));
    const __m256i lo = _mm256_permutevar8x32_epi32(v0, idx);
    const __m256i hi =
        _mm256_srli_epi64(_mm256_permutevar8x32_epi32(v1, idx), 32);
    const __m256i val = _mm256_or_si256(
        _mm256_srlv_epi64(lo, shift),
        _mm256_sllv_epi64(hi,
                          _mm256_sub_epi64(_mm256_set1_epi64x(64), shift)));
    return _mm256_and_si256(val, mask_);
  }

 private:
  __m256i pair_bits_;
  __m256i mask_;
};

/// Inclusive prefix sum within one 8-lane vector.
inline __m256i PrefixSum8(__m256i x) {
  x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
  x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
  // Carry the low half's total (its lane 3) into every lane of the high half.
  const __m256i half_totals = _mm256_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
  const __m256i carry = _mm256_permute2x128_si256(half_totals, half_totals,
                                                  0x08);
  return _mm256_add_epi32(x, carry);
}

/// Inclusive prefix sum within one 4-lane u64 vector.
inline __m256i PrefixSum4x64(__m256i x) {
  x = _mm256_add_epi64(x, _mm256_slli_si256(x, 8));
  const __m256i low_total = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(1, 1, 1, 1));
  const __m256i carry = _mm256_permute2x128_si256(low_total, low_total, 0x08);
  return _mm256_add_epi64(x, carry);
}

/// (v >> 1) ^ -(v & 1) per u32 lane.
inline __m256i ZigZagDecode32(__m256i v) {
  const __m256i sign = _mm256_sub_epi32(
      _mm256_setzero_si256(), _mm256_and_si256(v, _mm256_set1_epi32(1)));
  return _mm256_xor_si256(_mm256_srli_epi32(v, 1), sign);
}

/// (v >> 1) ^ -(v & 1) per u64 lane.
inline __m256i ZigZagDecode64(__m256i v) {
  const __m256i sign = _mm256_sub_epi64(
      _mm256_setzero_si256(), _mm256_and_si256(v, _mm256_set1_epi64x(1)));
  return _mm256_xor_si256(_mm256_srli_epi64(v, 1), sign);
}

inline uint32_t Lane0U32(__m256i x) {
  return static_cast<uint32_t>(_mm_cvtsi128_si32(_mm256_castsi256_si128(x)));
}

inline uint64_t Lane0U64(__m256i x) {
  return static_cast<uint64_t>(_mm_cvtsi128_si64(_mm256_castsi256_si128(x)));
}

}  // namespace

void UnpackU32(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
               uint64_t n, int width, uint32_t* out) {
  RECOMP_DCHECK(width >= 0 && width <= kMaxUnpackWidth,
                "AVX2 unpack width out of range");
  if (width == 0) {
    std::memset(out, 0, n * sizeof(uint32_t));
    return;
  }
  const UnpackerU32 unpacker(width);
  const uint64_t uwidth = static_cast<uint64_t>(width);
  uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint64_t bit = (begin + i) * uwidth;
    if (RECOMP_PREDICT_FALSE((bit >> 3) + kGroupLoadReach > in_bytes)) break;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        unpacker.Group(in, bit));
  }
  UnpackScalar(in, in_bytes, begin, i, n, width, out);
}

void UnpackU64(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
               uint64_t n, int width, uint64_t* out) {
  RECOMP_DCHECK(width >= 0 && width <= kMaxUnpackWidth64,
                "AVX2 unpack width out of range");
  if (width == 0) {
    std::memset(out, 0, n * sizeof(uint64_t));
    return;
  }
  const UnpackerU64 unpacker(width);
  const uint64_t uwidth = static_cast<uint64_t>(width);
  uint64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t bit = (begin + i) * uwidth;
    if (RECOMP_PREDICT_FALSE((bit >> 3) + kGroupLoadReach > in_bytes)) break;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        unpacker.Group(in, bit));
  }
  UnpackScalar(in, in_bytes, begin, i, n, width, out);
}

void UnpackU32Gather(const uint8_t* in, uint64_t in_bytes, uint64_t n,
                     int width, uint32_t* out) {
  RECOMP_DCHECK(width >= 1 && width <= kMaxGatherUnpackWidth,
                "gather unpack width out of range");
  // Per 8-lane group: lane j reads 4 bytes at group_byte + ((bit&7)+j*w)/8
  // and shifts right by ((bit&7)+j*w)%8; shift+width <= 7+25 = 32 bits, so a
  // 4-byte load always contains the whole value. The 4-byte gather of the
  // last lane may read past the payload, so groups whose reads could cross
  // the end are delegated to the scalar tail.
  const __m256i lane_bits = _mm256_setr_epi32(0, width, 2 * width, 3 * width,
                                              4 * width, 5 * width, 6 * width,
                                              7 * width);
  const __m256i mask = _mm256_set1_epi32(
      static_cast<int>(bits::LowMask32(width)));
  const __m256i seven = _mm256_set1_epi32(7);

  uint64_t i = 0;
  // Highest in-group byte offset is (7 + 7*width)/8; the gather reads 4
  // bytes there.
  const uint64_t group_reach = static_cast<uint64_t>((7 + 7 * width) / 8) + 4;
  for (; i + 8 <= n; i += 8) {
    const uint64_t bit = i * static_cast<uint64_t>(width);
    const uint64_t group_byte = bit >> 3;
    if (RECOMP_PREDICT_FALSE(group_byte + group_reach > in_bytes)) break;
    const __m256i rel =
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(bit & 7)),
                         lane_bits);
    const __m256i byte_off = _mm256_srli_epi32(rel, 3);
    const __m256i shift = _mm256_and_si256(rel, seven);
    const __m256i loaded = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(in + group_byte), byte_off, 1);
    const __m256i vals =
        _mm256_and_si256(_mm256_srlv_epi32(loaded, shift), mask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vals);
  }
  UnpackScalar(in, in_bytes, 0, i, n, width, out);
}

void UnpackAddU32(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
                  uint64_t n, int width, uint32_t addend, uint32_t* out) {
  if (width == 0) {
    for (uint64_t i = 0; i < n; ++i) out[i] = addend;
    return;
  }
  const UnpackerU32 unpacker(width);
  const __m256i a = _mm256_set1_epi32(static_cast<int>(addend));
  const uint64_t uwidth = static_cast<uint64_t>(width);
  uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint64_t bit = (begin + i) * uwidth;
    if (RECOMP_PREDICT_FALSE((bit >> 3) + kGroupLoadReach > in_bytes)) break;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi32(unpacker.Group(in, bit), a));
  }
  UnpackScalar(in, in_bytes, begin, i, n, width, out);
  for (; i < n; ++i) out[i] += addend;
}

void UnpackAddU64(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
                  uint64_t n, int width, uint64_t addend, uint64_t* out) {
  if (width == 0) {
    for (uint64_t i = 0; i < n; ++i) out[i] = addend;
    return;
  }
  const UnpackerU64 unpacker(width);
  const __m256i a = _mm256_set1_epi64x(static_cast<long long>(addend));
  const uint64_t uwidth = static_cast<uint64_t>(width);
  uint64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t bit = (begin + i) * uwidth;
    if (RECOMP_PREDICT_FALSE((bit >> 3) + kGroupLoadReach > in_bytes)) break;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi64(unpacker.Group(in, bit), a));
  }
  UnpackScalar(in, in_bytes, begin, i, n, width, out);
  for (; i < n; ++i) out[i] += addend;
}

void UnpackZigZagPrefixU32(const uint8_t* in, uint64_t in_bytes, uint64_t n,
                           int width, uint32_t* out) {
  if (width == 0) {
    std::memset(out, 0, n * sizeof(uint32_t));
    return;
  }
  const UnpackerU32 unpacker(width);
  const uint64_t uwidth = static_cast<uint64_t>(width);
  __m256i running = _mm256_setzero_si256();
  uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint64_t bit = i * uwidth;
    if (RECOMP_PREDICT_FALSE((bit >> 3) + kGroupLoadReach > in_bytes)) break;
    const __m256i decoded = ZigZagDecode32(unpacker.Group(in, bit));
    const __m256i sums = _mm256_add_epi32(PrefixSum8(decoded), running);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), sums);
    running = _mm256_permutevar8x32_epi32(sums, _mm256_set1_epi32(7));
  }
  UnpackScalar(in, in_bytes, 0, i, n, width, out);
  ZigZagPrefixScalar(out, i, n, Lane0U32(running));
}

void UnpackZigZagPrefixU64(const uint8_t* in, uint64_t in_bytes, uint64_t n,
                           int width, uint64_t* out) {
  if (width == 0) {
    std::memset(out, 0, n * sizeof(uint64_t));
    return;
  }
  const UnpackerU64 unpacker(width);
  const uint64_t uwidth = static_cast<uint64_t>(width);
  __m256i running = _mm256_setzero_si256();
  uint64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t bit = i * uwidth;
    if (RECOMP_PREDICT_FALSE((bit >> 3) + kGroupLoadReach > in_bytes)) break;
    const __m256i decoded = ZigZagDecode64(unpacker.Group(in, bit));
    const __m256i sums = _mm256_add_epi64(PrefixSum4x64(decoded), running);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), sums);
    running = _mm256_permute4x64_epi64(sums, 0xFF);
  }
  UnpackScalar(in, in_bytes, 0, i, n, width, out);
  ZigZagPrefixScalar(out, i, n, Lane0U64(running));
}

void ZigZagPrefixInPlaceU32(uint32_t* data, uint64_t n) {
  __m256i running = _mm256_setzero_si256();
  uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i sums =
        _mm256_add_epi32(PrefixSum8(ZigZagDecode32(v)), running);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(data + i), sums);
    running = _mm256_permutevar8x32_epi32(sums, _mm256_set1_epi32(7));
  }
  ZigZagPrefixScalar(data, i, n, Lane0U32(running));
}

void ZigZagPrefixInPlaceU64(uint64_t* data, uint64_t n) {
  __m256i running = _mm256_setzero_si256();
  uint64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i sums =
        _mm256_add_epi64(PrefixSum4x64(ZigZagDecode64(v)), running);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(data + i), sums);
    running = _mm256_permute4x64_epi64(sums, 0xFF);
  }
  ZigZagPrefixScalar(data, i, n, Lane0U64(running));
}

void PrefixSumInclusiveU32(const uint32_t* in, uint64_t n, uint32_t* out) {
  uint64_t i = 0;
  __m256i running = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    x = _mm256_add_epi32(PrefixSum8(x), running);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
    running = _mm256_permutevar8x32_epi32(x, _mm256_set1_epi32(7));
  }
  PrefixSumTail(in, i, n, Lane0U32(running), out);
}

void PrefixSumInclusiveU64(const uint64_t* in, uint64_t n, uint64_t* out) {
  uint64_t i = 0;
  __m256i running = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    x = _mm256_add_epi64(PrefixSum4x64(x), running);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
    running = _mm256_permute4x64_epi64(x, 0xFF);
  }
  PrefixSumTail(in, i, n, Lane0U64(running), out);
}

void AddConstantU32(const uint32_t* in, uint64_t n, uint32_t addend,
                    uint32_t* out) {
  const __m256i a = _mm256_set1_epi32(static_cast<int>(addend));
  uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi32(x, a));
  }
  for (; i < n; ++i) out[i] = in[i] + addend;
}

void AddConstantU64(const uint64_t* in, uint64_t n, uint64_t addend,
                    uint64_t* out) {
  const __m256i a = _mm256_set1_epi64x(static_cast<long long>(addend));
  uint64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi64(x, a));
  }
  for (; i < n; ++i) out[i] = in[i] + addend;
}

void GatherU32(const uint32_t* values, const uint32_t* indices, uint64_t n,
               uint32_t* out) {
  uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(indices + i));
    const __m256i vals = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(values), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vals);
  }
  for (; i < n; ++i) out[i] = values[indices[i]];
}

#else  // !defined(__AVX2__)

void UnpackU32(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
               uint64_t n, int width, uint32_t* out) {
  UnpackScalar(in, in_bytes, begin, 0, n, width, out);
}

void UnpackU64(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
               uint64_t n, int width, uint64_t* out) {
  UnpackScalar(in, in_bytes, begin, 0, n, width, out);
}

void UnpackU32Gather(const uint8_t* in, uint64_t in_bytes, uint64_t n,
                     int width, uint32_t* out) {
  UnpackScalar(in, in_bytes, 0, 0, n, width, out);
}

void UnpackAddU32(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
                  uint64_t n, int width, uint32_t addend, uint32_t* out) {
  UnpackScalar(in, in_bytes, begin, 0, n, width, out);
  for (uint64_t i = 0; i < n; ++i) out[i] += addend;
}

void UnpackAddU64(const uint8_t* in, uint64_t in_bytes, uint64_t begin,
                  uint64_t n, int width, uint64_t addend, uint64_t* out) {
  UnpackScalar(in, in_bytes, begin, 0, n, width, out);
  for (uint64_t i = 0; i < n; ++i) out[i] += addend;
}

void UnpackZigZagPrefixU32(const uint8_t* in, uint64_t in_bytes, uint64_t n,
                           int width, uint32_t* out) {
  UnpackScalar(in, in_bytes, 0, 0, n, width, out);
  ZigZagPrefixScalar(out, 0, n, uint32_t{0});
}

void UnpackZigZagPrefixU64(const uint8_t* in, uint64_t in_bytes, uint64_t n,
                           int width, uint64_t* out) {
  UnpackScalar(in, in_bytes, 0, 0, n, width, out);
  ZigZagPrefixScalar(out, 0, n, uint64_t{0});
}

void ZigZagPrefixInPlaceU32(uint32_t* data, uint64_t n) {
  ZigZagPrefixScalar(data, 0, n, uint32_t{0});
}

void ZigZagPrefixInPlaceU64(uint64_t* data, uint64_t n) {
  ZigZagPrefixScalar(data, 0, n, uint64_t{0});
}

void PrefixSumInclusiveU32(const uint32_t* in, uint64_t n, uint32_t* out) {
  PrefixSumTail(in, 0, n, uint32_t{0}, out);
}

void PrefixSumInclusiveU64(const uint64_t* in, uint64_t n, uint64_t* out) {
  PrefixSumTail(in, 0, n, uint64_t{0}, out);
}

void AddConstantU32(const uint32_t* in, uint64_t n, uint32_t addend,
                    uint32_t* out) {
  for (uint64_t i = 0; i < n; ++i) out[i] = in[i] + addend;
}

void AddConstantU64(const uint64_t* in, uint64_t n, uint64_t addend,
                    uint64_t* out) {
  for (uint64_t i = 0; i < n; ++i) out[i] = in[i] + addend;
}

void GatherU32(const uint32_t* values, const uint32_t* indices, uint64_t n,
               uint32_t* out) {
  for (uint64_t i = 0; i < n; ++i) out[i] = values[indices[i]];
}

#endif  // defined(__AVX2__)

}  // namespace recomp::ops::avx2
