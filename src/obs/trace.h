// Lightweight scoped tracing: spans with thread-local context that roll up
// into a per-query ScanProfile.
//
// A Span times one scoped section and records the elapsed nanoseconds into
// the registry histogram "span.<name>" (obs/metrics.h). When the calling
// thread has an active ScanProfile (installed with ProfileScope), the span
// additionally lands in that profile, so one query's phases — filter,
// gather, aggregate — read as one record instead of being smeared across
// process-wide histograms:
//
//   obs::ScanProfile profile;
//   {
//     obs::ProfileScope scope(&profile);
//     auto result = exec::Scan(snapshot, spec, ctx);
//   }
//   std::puts(profile.ToString().c_str());
//
// The context is thread-local and does not propagate to pool workers: spans
// opened inside ParallelFor bodies still hit the global histograms, but only
// spans on the installing thread join the profile. Phase timings of the
// chunk-parallel operators therefore measure the fan-out-and-wait from the
// caller's perspective — which is the latency a query actually observes.

#ifndef RECOMP_OBS_TRACE_H_
#define RECOMP_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace recomp::obs {

/// One query's rollup: named phase durations plus named counters (rows,
/// chunks pruned, bytes decoded — whatever the instrumented path reports).
/// Not thread-safe; owned by the querying thread.
class ScanProfile {
 public:
  struct Phase {
    std::string name;
    uint64_t ns = 0;
  };

  /// Appends a timed phase (spans call this on destruction).
  void AddPhase(std::string name, uint64_t ns) {
    phases_.push_back({std::move(name), ns});
  }

  /// Accumulates `delta` under `name` (repeated names add up).
  void AddCounter(const std::string& name, uint64_t delta);

  const std::vector<Phase>& phases() const { return phases_; }
  const std::vector<std::pair<std::string, uint64_t>>& counters() const {
    return counters_;
  }
  uint64_t counter(const std::string& name) const;

  /// Total nanoseconds of the outermost recorded phases (nested spans are
  /// included in their parents' time, so summing everything double-counts;
  /// this sums only phases recorded while no other span was open).
  uint64_t total_ns() const { return total_ns_; }

  /// Multi-line human-readable rendering.
  std::string ToString() const;

 private:
  friend class Span;
  std::vector<Phase> phases_;
  std::vector<std::pair<std::string, uint64_t>> counters_;
  uint64_t total_ns_ = 0;
  /// Open spans on the profile's thread (depth counter; outermost spans
  /// contribute to total_ns_).
  uint64_t open_spans_ = 0;
};

/// The calling thread's active profile, or nullptr.
ScanProfile* CurrentProfile();

/// Installs `profile` as the calling thread's active profile for the scope's
/// lifetime (restores the previous one on destruction; scopes nest).
class ProfileScope {
 public:
  explicit ProfileScope(ScanProfile* profile);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  ScanProfile* previous_;
};

/// Times a scope. On destruction records the elapsed nanoseconds into the
/// registry histogram "span.<name>" and into the thread's active profile
/// (if any). `name` must outlive the span (string literals do).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_;
  ScanProfile* profile_;  ///< Captured at construction.
};

}  // namespace recomp::obs

#endif  // RECOMP_OBS_TRACE_H_
