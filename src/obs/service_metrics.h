// Query-service metrics: the shared bundle behind src/service/.
//
// Lives in obs/ (not service/) because it is pure registry plumbing — the
// same function-local-static bundle pattern as the scan and pool metrics —
// and because two service translation units (the admission/dispatch layer
// and the batch executor) record into the same counters.
//
// The headline derived quantity is the *sharing ratio*:
//   service.chunk_evaluations / service.chunks_decoded
// — how many per-query chunk evaluations each physical decode served. A
// solo scan pins it at 1; a batch of N queries hitting the same chunks
// drives it toward N. bench_e18 reads both counters from a registry
// snapshot to report it.

#ifndef RECOMP_OBS_SERVICE_METRICS_H_
#define RECOMP_OBS_SERVICE_METRICS_H_

#include "obs/metrics.h"

namespace recomp::obs {

/// Service metrics, resolved once (see Get()).
struct ServiceMetrics {
  // Admission control (service.queries.*).
  Counter* admitted;              ///< Accepted into the queue.
  Counter* rejected_queue_full;   ///< Refused: global queue at capacity.
  Counter* rejected_client_limit; ///< Refused: client at max in-flight.
  Counter* deadline_expired;      ///< Deadline passed before execution.
  Counter* succeeded;             ///< Executed and returned a result.
  Counter* failed;                ///< Executed and returned an error.
  /// Deadline passed *during* execution: the result existed but arrived
  /// late, so the client was answered DeadlineExceeded anyway.
  Counter* deadline_missed_in_flight;

  // Batch formation.
  Counter* batches;        ///< Batches dispatched (service.batches).
  Histogram* batch_size;   ///< Queries per batch (service.batch_size).
  /// Windows cut before batch_window elapsed because a queued query's
  /// deadline would not have survived the full hold.
  Counter* window_early_cuts;

  // Shared-scan work accounting.
  Counter* chunks_decoded;     ///< Physical chunk decodes (once per chunk).
  Counter* chunk_evaluations;  ///< Per-query chunk filter evaluations.
  Counter* selection_cache_hits;
  Counter* selection_cache_misses;
  Counter* selection_cache_invalidations;
  Counter* snapshot_cache_hits;
  Counter* snapshot_cache_misses;

  // Result-level cache (service.result_cache.*). dedup_hits counts queries
  // answered by an identical companion *within* their own batch — the
  // in-window complement of a cross-window cache hit.
  Counter* result_cache_hits;
  Counter* result_cache_misses;
  Counter* result_cache_insertions;
  Counter* result_cache_evictions;
  Counter* result_cache_invalidations;
  Counter* result_cache_dedup_hits;

  // Predicate subsumption.
  Counter* subsumed_evaluations;          ///< Evals served from a container.
  Counter* subsumption_values_examined;   ///< Pairs re-filtered doing so.

  // Latency (nanoseconds).
  Histogram* queue_wait_ns;  ///< Submit → batch pickup.
  Histogram* e2e_ns;         ///< Submit → promise fulfilled.

  static const ServiceMetrics& Get();
};

}  // namespace recomp::obs

#endif  // RECOMP_OBS_SERVICE_METRICS_H_
