#include "obs/service_metrics.h"

namespace recomp::obs {

const ServiceMetrics& ServiceMetrics::Get() {
  static const ServiceMetrics metrics = [] {
    ServiceMetrics m;
    Registry& registry = Registry::Get();
    m.admitted = &registry.GetCounter("service.queries.admitted");
    m.rejected_queue_full =
        &registry.GetCounter("service.queries.rejected_queue_full");
    m.rejected_client_limit =
        &registry.GetCounter("service.queries.rejected_client_limit");
    m.deadline_expired =
        &registry.GetCounter("service.queries.deadline_expired");
    m.succeeded = &registry.GetCounter("service.queries.succeeded");
    m.failed = &registry.GetCounter("service.queries.failed");
    m.deadline_missed_in_flight =
        &registry.GetCounter("service.deadline_missed_in_flight");
    m.batches = &registry.GetCounter("service.batches");
    m.batch_size = &registry.GetHistogram("service.batch_size");
    m.window_early_cuts = &registry.GetCounter("service.window_early_cuts");
    m.chunks_decoded = &registry.GetCounter("service.chunks_decoded");
    m.chunk_evaluations = &registry.GetCounter("service.chunk_evaluations");
    m.selection_cache_hits =
        &registry.GetCounter("service.selection_cache.hits");
    m.selection_cache_misses =
        &registry.GetCounter("service.selection_cache.misses");
    m.selection_cache_invalidations =
        &registry.GetCounter("service.selection_cache.invalidations");
    m.snapshot_cache_hits = &registry.GetCounter("service.snapshot_cache.hits");
    m.snapshot_cache_misses =
        &registry.GetCounter("service.snapshot_cache.misses");
    m.result_cache_hits = &registry.GetCounter("service.result_cache.hits");
    m.result_cache_misses = &registry.GetCounter("service.result_cache.misses");
    m.result_cache_insertions =
        &registry.GetCounter("service.result_cache.insertions");
    m.result_cache_evictions =
        &registry.GetCounter("service.result_cache.evictions");
    m.result_cache_invalidations =
        &registry.GetCounter("service.result_cache.invalidations");
    m.result_cache_dedup_hits =
        &registry.GetCounter("service.result_cache.dedup_hits");
    m.subsumed_evaluations =
        &registry.GetCounter("service.subsumed_evaluations");
    m.subsumption_values_examined =
        &registry.GetCounter("service.subsumption.values_examined");
    m.queue_wait_ns = &registry.GetHistogram("service.queue_wait_ns");
    m.e2e_ns = &registry.GetHistogram("service.e2e_ns");
    return m;
  }();
  return metrics;
}

}  // namespace recomp::obs
