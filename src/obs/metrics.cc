#include "obs/metrics.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>

#include "util/bits.h"
#include "util/mutex.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"

namespace recomp::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t MonotonicNanos() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

uint64_t ThreadShardIndex() {
  static std::atomic<uint64_t> next{0};
  thread_local const uint64_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kCounterShards - 1);
  return shard;
}

uint64_t HistogramBucketBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= 64) return ~uint64_t{0};
  return (uint64_t{1} << bucket) - 1;
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  // Rank of the q-quantile among `count` sorted samples, 1-based.
  uint64_t rank = static_cast<uint64_t>(clamped * static_cast<double>(count));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) return HistogramBucketBound(b);
  }
  return HistogramBucketBound(kHistogramBuckets - 1);
}

void Histogram::Record(uint64_t value) {
  if (!Enabled()) return;
  const int bucket = bits::BitWidth(value);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    snap.count += snap.buckets[b];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

int64_t MetricsSnapshot::gauge(const std::string& name) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

HistogramSnapshot MetricsSnapshot::histogram(const std::string& name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return h.hist;
  }
  return {};
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const CounterValue& c : counters) {
    out += StringFormat("counter   %-44s %llu\n", c.name.c_str(),
                        static_cast<unsigned long long>(c.value));
  }
  for (const GaugeValue& g : gauges) {
    out += StringFormat("gauge     %-44s %lld\n", g.name.c_str(),
                        static_cast<long long>(g.value));
  }
  for (const HistogramValue& h : histograms) {
    out += StringFormat(
        "histogram %-44s count=%llu mean=%.0f p50<=%llu p99<=%llu\n",
        h.name.c_str(), static_cast<unsigned long long>(h.hist.count),
        h.hist.Mean(),
        static_cast<unsigned long long>(h.hist.Quantile(0.5)),
        static_cast<unsigned long long>(h.hist.Quantile(0.99)));
  }
  return out;
}

namespace {

/// JSON string escaping for metric names (which are plain identifiers in
/// practice; the escape keeps the output valid regardless).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StringFormat("\\u%04x", static_cast<unsigned>(c));
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const CounterValue& c : counters) {
    out += StringFormat("%s\n    \"%s\": %llu", first ? "" : ",",
                        JsonEscape(c.name).c_str(),
                        static_cast<unsigned long long>(c.value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const GaugeValue& g : gauges) {
    out += StringFormat("%s\n    \"%s\": %lld", first ? "" : ",",
                        JsonEscape(g.name).c_str(),
                        static_cast<long long>(g.value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const HistogramValue& h : histograms) {
    out += StringFormat(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"mean\": %.3f, "
        "\"p50\": %llu, \"p99\": %llu}",
        first ? "" : ",", JsonEscape(h.name).c_str(),
        static_cast<unsigned long long>(h.hist.count),
        static_cast<unsigned long long>(h.hist.sum), h.hist.Mean(),
        static_cast<unsigned long long>(h.hist.Quantile(0.5)),
        static_cast<unsigned long long>(h.hist.Quantile(0.99)));
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

/// Name → metric maps. std::map: stable node addresses (the references the
/// registry hands out) plus name-sorted iteration for free, which is the
/// exposition order Snapshot promises. unique_ptr keeps the metric objects
/// themselves unmovable (they hold atomics).
struct Registry::Impl {
  mutable Mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters
      RECOMP_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Gauge>> gauges RECOMP_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      RECOMP_GUARDED_BY(mu);
};

Registry& Registry::Get() {
  // Leaked on purpose: metric references cached in function-local statics
  // all over the library must stay valid through static destruction.
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

namespace {

/// A name registered as one kind must never come back as another: the two
/// call sites would silently update different metrics under one name.
[[noreturn]] void DieOnKindClash(const std::string& name) {
  std::fprintf(stderr,
               "FATAL obs::Registry: metric '%s' already registered as a "
               "different kind\n",
               name.c_str());
  std::abort();
}

template <typename T, typename Map, typename... Others>
T& GetOrCreate(const std::string& name, Map& map, const Others&... others) {
  if ((... || (others.find(name) != others.end()))) DieOnKindClash(name);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(name, std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::GetCounter(const std::string& name) {
  Impl& state = impl();
  MutexLock lock(&state.mu);
  return GetOrCreate<Counter>(name, state.counters, state.gauges,
                              state.histograms);
}

Gauge& Registry::GetGauge(const std::string& name) {
  Impl& state = impl();
  MutexLock lock(&state.mu);
  return GetOrCreate<Gauge>(name, state.gauges, state.counters,
                            state.histograms);
}

Histogram& Registry::GetHistogram(const std::string& name) {
  Impl& state = impl();
  MutexLock lock(&state.mu);
  return GetOrCreate<Histogram>(name, state.histograms, state.counters,
                                state.gauges);
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snap;
  Impl& state = impl();
  MutexLock lock(&state.mu);
  snap.counters.reserve(state.counters.size());
  for (const auto& [name, counter] : state.counters) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(state.gauges.size());
  for (const auto& [name, gauge] : state.gauges) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(state.histograms.size());
  for (const auto& [name, histogram] : state.histograms) {
    snap.histograms.push_back({name, histogram->Snapshot()});
  }
  return snap;
}

void Registry::ResetForTest() {
  Impl& state = impl();
  MutexLock lock(&state.mu);
  // Reconstruct each metric in place: the storage address — what references
  // cached at call sites point at — must not change, only the values.
  for (auto& [name, counter] : state.counters) {
    counter->~Counter();
    new (counter.get()) Counter();
  }
  for (auto& [name, gauge] : state.gauges) {
    gauge->~Gauge();
    new (gauge.get()) Gauge();
  }
  for (auto& [name, histogram] : state.histograms) {
    histogram->~Histogram();
    new (histogram.get()) Histogram();
  }
}

}  // namespace recomp::obs
