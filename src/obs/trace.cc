#include "obs/trace.h"

#include "obs/metrics.h"
#include "util/string_util.h"

namespace recomp::obs {

namespace {
thread_local ScanProfile* t_current_profile = nullptr;
}  // namespace

void ScanProfile::AddCounter(const std::string& name, uint64_t delta) {
  for (auto& [existing, value] : counters_) {
    if (existing == name) {
      value += delta;
      return;
    }
  }
  counters_.emplace_back(name, delta);
}

uint64_t ScanProfile::counter(const std::string& name) const {
  for (const auto& [existing, value] : counters_) {
    if (existing == name) return value;
  }
  return 0;
}

std::string ScanProfile::ToString() const {
  std::string out = StringFormat("scan profile: total %.3f ms\n",
                                 static_cast<double>(total_ns_) / 1e6);
  for (const Phase& phase : phases_) {
    out += StringFormat("  phase   %-32s %10.3f ms\n", phase.name.c_str(),
                        static_cast<double>(phase.ns) / 1e6);
  }
  for (const auto& [name, value] : counters_) {
    out += StringFormat("  counter %-32s %10llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
  }
  return out;
}

ScanProfile* CurrentProfile() { return t_current_profile; }

ProfileScope::ProfileScope(ScanProfile* profile)
    : previous_(t_current_profile) {
  t_current_profile = profile;
}

ProfileScope::~ProfileScope() { t_current_profile = previous_; }

Span::Span(const char* name)
    : name_(name),
      start_ns_(MonotonicNanos()),
      profile_(t_current_profile) {
  if (profile_ != nullptr) ++profile_->open_spans_;
}

Span::~Span() {
  const uint64_t ns = MonotonicNanos() - start_ns_;
  Registry::Get()
      .GetHistogram(std::string("span.") + name_)
      .Record(ns);
  if (profile_ != nullptr) {
    --profile_->open_spans_;
    if (profile_->open_spans_ == 0) profile_->total_ns_ += ns;
    profile_->AddPhase(name_, ns);
  }
}

}  // namespace recomp::obs
