// Process-wide runtime metrics: sharded counters, gauges, exponential
// histograms, and a registry with point-in-time exposition.
//
// The system's most important decisions happen invisibly at runtime —
// per-chunk scheme choice, fused-shape classification, AVX2-vs-scalar
// dispatch, zone-map pruning, background re-sealing. This registry makes
// them countable without slowing them down:
//
//   Counter    monotone u64, sharded over cache-line-aligned atomic cells so
//              concurrent writers (pool workers, seal jobs, parallel scans)
//              never contend on one hot line. Reads sum the shards.
//   Gauge      a single signed atomic level (queue depth, backlog size).
//   Histogram  exponential power-of-two buckets (bucket i counts values v
//              with BitWidth(v) == i), plus count and sum. Built for
//              latencies in nanoseconds: 65 buckets span 1 ns to ~580 years.
//   Registry   name → metric, created on first use; pointers are stable for
//              the registry's lifetime, so hot paths look a metric up once
//              (function-local static) and update lock-free forever after.
//
// Snapshot() captures every metric at one point in time into a plain struct
// with text and JSON exposition. Updates are relaxed-atomic: a snapshot
// racing writers sees each 64-bit cell untorn and each counter monotone
// across successive snapshots, but no cross-metric ordering is promised.
//
// SetEnabled(false) turns every update into a relaxed load + branch — the
// kill switch the bench overhead gate (bench_a2) prices instrumentation
// against. Values recorded while disabled are dropped, so paired gauge
// updates (inc/dec) can skew if toggled while concurrent work is in flight;
// toggle only around quiesced measurement sections.

#ifndef RECOMP_OBS_METRICS_H_
#define RECOMP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace recomp::obs {

/// Whether metric updates are recorded (default: yes).
bool Enabled();
void SetEnabled(bool enabled);

/// Nanoseconds on the monotonic clock — the registry's shared time base.
uint64_t MonotonicNanos();

/// Counter shard count; a power of two so the thread → shard map is a mask.
inline constexpr uint64_t kCounterShards = 16;

/// This thread's shard index, assigned round-robin on first use.
uint64_t ThreadShardIndex();

/// A monotone counter sharded over cache-line-aligned cells: writers update
/// their thread's shard with one relaxed fetch_add, readers sum all shards.
/// Value() is exact once writers quiesce and never decreases while they run.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) {
    if (!Enabled()) return;
    shards_[ThreadShardIndex()].cell.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.cell.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> cell{0};
  };
  Shard shards_[kCounterShards];
};

/// A signed level. Set/Add/Subtract are single relaxed atomics; unlike a
/// Counter there is no sharding — gauges track levels (queue depth, backlog)
/// whose updates are already serialized by the owning subsystem's lock.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t n) {
    if (!Enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Subtract(int64_t n) { Add(-n); }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Number of histogram buckets: bucket i counts recorded values v with
/// BitWidth(v) == i, i.e. bucket 0 holds zeros and bucket i (i >= 1) holds
/// v in [2^(i-1), 2^i).
inline constexpr int kHistogramBuckets = 65;

/// Upper bound (inclusive) of bucket i: 0 for bucket 0, 2^i - 1 otherwise.
uint64_t HistogramBucketBound(int bucket);

/// A captured histogram. `count` is derived as the sum of `buckets`, so a
/// snapshot is always self-consistent even against concurrent writers;
/// `sum` (and so Mean()) is approximate under concurrency.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t buckets[kHistogramBuckets] = {};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound of the bucket holding the q-quantile (q in [0, 1]); 0 when
  /// empty. Exponential buckets make this an order-of-magnitude estimate.
  uint64_t Quantile(double q) const;
};

/// An exponential-bucket histogram; Record is three relaxed fetch_adds.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);

  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// Everything the registry held at one point in time, each section sorted
/// by name. Plain data: hand it across threads, diff it, serialize it.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    HistogramSnapshot hist;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of the named counter, or 0 when absent (tests diff snapshots, so
  /// "never updated" and "zero" read the same).
  uint64_t counter(const std::string& name) const;
  int64_t gauge(const std::string& name) const;
  /// The named histogram, or an empty one when absent.
  HistogramSnapshot histogram(const std::string& name) const;

  /// Human-readable exposition, one metric per line.
  std::string ToText() const;
  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, p50, p99}}}.
  std::string ToJson() const;
};

/// The process-wide metric registry. Metrics are created on first lookup
/// and never destroyed while the registry lives, so the returned references
/// are stable — cache them in a function-local static at the call site:
///
///   static obs::Counter& chunks = obs::Registry::Get().GetCounter("x.y");
///   chunks.Increment();
///
/// Lookups take the registry mutex; updates through the returned reference
/// are lock-free. A name is permanently one kind: looking it up as another
/// kind aborts (a programming error, not a runtime condition).
class Registry {
 public:
  static Registry& Get();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Point-in-time capture of every metric.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric value in place (names and pointers stay valid).
  /// For tests and tools that want a clean baseline; not thread-safe
  /// against concurrent writers — quiesce first.
  void ResetForTest();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace recomp::obs

#endif  // RECOMP_OBS_METRICS_H_
