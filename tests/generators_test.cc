// Tests that the synthetic generators deliver the structural properties the
// experiments rely on (DESIGN.md §4 substitution table).

#include <gtest/gtest.h>

#include <algorithm>

#include "columnar/stats.h"
#include "gen/generators.h"
#include "util/bits.h"

namespace recomp {
namespace {

TEST(GeneratorsTest, ShippedOrderDatesAreMonotoneWithRuns) {
  Column<uint32_t> col = gen::ShippedOrderDates(50000, 100.0, 1);
  ASSERT_EQ(col.size(), 50000u);
  EXPECT_TRUE(std::is_sorted(col.begin(), col.end()));
  ColumnStats stats = ComputeStats(col);
  // ~100 orders/day -> ~500 runs of ~100.
  EXPECT_GT(stats.avg_run_length, 50.0);
  EXPECT_LT(stats.avg_run_length, 200.0);
  // Consecutive dates step by exactly one day.
  EXPECT_EQ(stats.max_delta_zigzag_bits, bits::BitWidth(2u));
}

TEST(GeneratorsTest, Deterministic) {
  EXPECT_EQ(gen::ShippedOrderDates(1000, 10.0, 7),
            gen::ShippedOrderDates(1000, 10.0, 7));
  EXPECT_NE(gen::ShippedOrderDates(1000, 10.0, 7),
            gen::ShippedOrderDates(1000, 10.0, 8));
  EXPECT_EQ(gen::Uniform(1000, 1 << 20, 3), gen::Uniform(1000, 1 << 20, 3));
}

TEST(GeneratorsTest, SortedRunsShape) {
  Column<uint32_t> col = gen::SortedRuns(20000, 25.0, 3, 2);
  EXPECT_TRUE(std::is_sorted(col.begin(), col.end()));
  ColumnStats stats = ComputeStats(col);
  EXPECT_GT(stats.avg_run_length, 12.0);
  EXPECT_LT(stats.avg_run_length, 50.0);
}

TEST(GeneratorsTest, UniformBounds) {
  Column<uint32_t> col = gen::Uniform(10000, 1000, 3);
  EXPECT_LT(*std::max_element(col.begin(), col.end()), 1000u);
  Column<uint64_t> col64 = gen::Uniform64(10000, uint64_t{1} << 40, 4);
  EXPECT_LT(*std::max_element(col64.begin(), col64.end()), uint64_t{1} << 40);
}

TEST(GeneratorsTest, ZipfSkewAndDomain) {
  Column<uint32_t> col = gen::ZipfValues(50000, 32, 1.2, 5);
  ColumnStats stats = ComputeStats(col);
  EXPECT_LE(stats.distinct, 32u);
  EXPECT_GE(stats.distinct, 16u);  // Skewed but not degenerate.
}

TEST(GeneratorsTest, StepLevelsLocality) {
  Column<uint32_t> col = gen::StepLevels(32768, 256, 24, 6, 6);
  // Within-segment spread is bounded by the noise bits.
  EXPECT_LE(StepResidualWidth(col, 256), 6);
  // Global spread is much wider.
  ColumnStats stats = ComputeStats(col);
  EXPECT_GT(stats.range_bits, 16);
}

TEST(GeneratorsTest, LinearTrendShape) {
  Column<uint32_t> col = gen::LinearTrend(10000, 2.5, 8, 7);
  // De-trended residual must be small: check against a crude line.
  for (uint64_t i = 0; i < col.size(); ++i) {
    const double line = 1000.0 + 2.5 * static_cast<double>(i);
    EXPECT_NEAR(static_cast<double>(col[i]), line, 16.0);
  }
}

TEST(GeneratorsTest, OutlierMixFractions) {
  Column<uint32_t> col = gen::OutlierMix(100000, 8, 28, 0.02, 8);
  uint64_t wide = 0;
  for (uint32_t v : col) wide += bits::BitWidth(v) > 8 ? 1 : 0;
  const double fraction = static_cast<double>(wide) / 100000.0;
  EXPECT_NEAR(fraction, 0.02, 0.005);
}

TEST(GeneratorsTest, OutlierMixZeroAndFull) {
  Column<uint32_t> none = gen::OutlierMix(1000, 8, 28, 0.0, 9);
  for (uint32_t v : none) EXPECT_LE(bits::BitWidth(v), 8);
  Column<uint32_t> all = gen::OutlierMix(1000, 8, 28, 1.0, 10);
  for (uint32_t v : all) EXPECT_GT(bits::BitWidth(v), 8);
}

}  // namespace
}  // namespace recomp
