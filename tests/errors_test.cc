// Failure-injection tests: malformed envelopes, mismatched metadata, and
// misuse of the API surface must yield Status errors (never aborts, wrong
// data, or UB). Complements the per-scheme corruption tests with
// cross-module cases.

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/fused.h"
#include "core/pipeline.h"
#include "core/plan_builder.h"
#include "core/plan_executor.h"
#include "exec/aggregate.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "test_util.h"

namespace recomp {
namespace {

CompressedColumn SampleRle() {
  Column<uint32_t> col = gen::SortedRuns(1000, 10.0, 2, 1);
  auto compressed = Compress(AnyColumn(col), MakeRle());
  EXPECT_OK(compressed.status());
  return std::move(*compressed);
}

TEST(ErrorsTest, MissingPartDetectedByEveryConsumer) {
  CompressedColumn damaged = SampleRle();
  damaged.root().parts.erase("values");

  EXPECT_FALSE(Decompress(damaged).ok());
  EXPECT_FALSE(FusedDecompress(damaged).ok());
  auto plan = BuildDecompressionPlan(damaged);
  EXPECT_FALSE(plan.ok());
  EXPECT_FALSE(exec::SumCompressed(damaged).ok());
}

TEST(ErrorsTest, LengthLieDetected) {
  CompressedColumn damaged = SampleRle();
  damaged.root().n += 1;
  auto via_kernels = Decompress(damaged);
  EXPECT_EQ(via_kernels.status().code(), StatusCode::kCorruption);
  auto fused = FusedDecompress(damaged);
  EXPECT_EQ(fused.status().code(), StatusCode::kCorruption);
}

TEST(ErrorsTest, TypeLieDetected) {
  CompressedColumn damaged = SampleRle();
  damaged.root().out_type = TypeId::kUInt64;  // values part is uint32
  EXPECT_FALSE(Decompress(damaged).ok());
}

TEST(ErrorsTest, PlanAgainstWrongEnvelopeFails) {
  CompressedColumn rle = SampleRle();
  auto plan = BuildDecompressionPlan(rle);
  ASSERT_OK(plan.status());
  // Execute the RLE plan against a FOR envelope: input paths don't resolve.
  Column<uint32_t> col = gen::StepLevels(1000, 128, 16, 4, 2);
  auto for_compressed = Compress(AnyColumn(col), MakeFor(128));
  ASSERT_OK(for_compressed.status());
  auto out = ExecutePlan(*plan, *for_compressed);
  EXPECT_EQ(out.status().code(), StatusCode::kKeyError);
}

TEST(ErrorsTest, ModelSegmentLengthZeroRejected) {
  Column<uint32_t> col{1, 2, 3};
  auto compressed = Compress(AnyColumn(col), MakeFor(4));
  ASSERT_OK(compressed.status());
  CompressedColumn damaged = compressed->Clone();
  damaged.root().scheme.args[0].params.segment_length = 0;
  EXPECT_FALSE(Decompress(damaged).ok());
  EXPECT_FALSE(BuildDecompressionPlan(damaged).ok());
}

TEST(ErrorsTest, NsWidthMismatchDetected) {
  Column<uint32_t> col{1, 2, 3};
  auto compressed = Compress(AnyColumn(col), Ns());
  ASSERT_OK(compressed.status());
  compressed->root().scheme.params.width += 1;
  EXPECT_EQ(Decompress(*compressed).status().code(), StatusCode::kCorruption);
}

TEST(ErrorsTest, SelectionOnDamagedEnvelope) {
  CompressedColumn damaged = SampleRle();
  damaged.root().parts.erase("positions");
  EXPECT_FALSE(
      exec::SelectCompressed(damaged, exec::RangePredicate{0, 100}).ok());
}

TEST(ErrorsTest, StatusMessagesNameTheProblem) {
  // Error texts carry enough context to debug: the part name, the scheme,
  // or the offending value.
  auto missing = Compress(AnyColumn(Column<uint32_t>{1}),
                          Rpe().With("bogus_part", Ns()));
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("bogus_part"), std::string::npos);

  auto too_narrow = Compress(AnyColumn(Column<uint32_t>{1 << 20}), Ns(4));
  ASSERT_FALSE(too_narrow.ok());
  EXPECT_NE(too_narrow.status().message().find("4 bits"), std::string::npos);
}

TEST(ErrorsTest, DeepCorruptionSurfacesFromNestedNodes) {
  Column<uint32_t> col = gen::SortedRuns(500, 8.0, 2, 3);
  auto compressed = Compress(AnyColumn(col), MakeRleDelta());
  ASSERT_OK(compressed.status());
  // Corrupt the innermost packed widths of the values chain.
  CompressedNode* node = compressed->root()
                             .parts.at("values")
                             .sub->parts.at("deltas")
                             .sub.get();
  node->n += 5;
  EXPECT_FALSE(Decompress(*compressed).ok());
}

}  // namespace
}  // namespace recomp
