// Unit tests for the columnar substrate: type ids, Column, AnyColumn,
// PackedColumn.

#include <gtest/gtest.h>

#include "columnar/any_column.h"
#include "columnar/column.h"
#include "columnar/packed.h"
#include "columnar/type.h"

namespace recomp {
namespace {

TEST(TypeIdTest, NamesRoundTrip) {
  for (int i = 0; i < kNumTypeIds; ++i) {
    TypeId t = static_cast<TypeId>(i);
    TypeId parsed;
    ASSERT_TRUE(TypeIdFromName(TypeIdName(t), &parsed)) << TypeIdName(t);
    EXPECT_EQ(parsed, t);
  }
  TypeId out;
  EXPECT_FALSE(TypeIdFromName("float32", &out));
}

TEST(TypeIdTest, ByteWidths) {
  EXPECT_EQ(TypeIdByteWidth(TypeId::kUInt8), 1);
  EXPECT_EQ(TypeIdByteWidth(TypeId::kInt16), 2);
  EXPECT_EQ(TypeIdByteWidth(TypeId::kUInt32), 4);
  EXPECT_EQ(TypeIdByteWidth(TypeId::kInt64), 8);
}

TEST(TypeIdTest, SignednessAndConversion) {
  EXPECT_TRUE(TypeIdIsUnsigned(TypeId::kUInt64));
  EXPECT_FALSE(TypeIdIsUnsigned(TypeId::kInt8));
  EXPECT_EQ(TypeIdToUnsigned(TypeId::kInt32), TypeId::kUInt32);
  EXPECT_EQ(TypeIdToUnsigned(TypeId::kUInt16), TypeId::kUInt16);
}

TEST(TypeIdTest, TypeIdOfMapsCorrectly) {
  EXPECT_EQ(TypeIdOf<uint8_t>(), TypeId::kUInt8);
  EXPECT_EQ(TypeIdOf<int64_t>(), TypeId::kInt64);
  EXPECT_EQ(TypeIdOf<uint32_t>(), TypeId::kUInt32);
}

TEST(ColumnTest, AlignedTo64Bytes) {
  Column<uint32_t> col(1000, 7);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(col.data()) % kColumnAlignment, 0u);
}

TEST(ColumnTest, ColumnBytes) {
  Column<uint16_t> col(10);
  EXPECT_EQ(ColumnBytes(col), 20u);
}

TEST(AnyColumnTest, DefaultIsEmptyUInt32) {
  AnyColumn any;
  EXPECT_EQ(any.type(), TypeId::kUInt32);
  EXPECT_EQ(any.size(), 0u);
  EXPECT_FALSE(any.is_packed());
}

TEST(AnyColumnTest, WrapsTypedColumn) {
  AnyColumn any(Column<int16_t>{1, -2, 3});
  EXPECT_EQ(any.type(), TypeId::kInt16);
  EXPECT_EQ(any.size(), 3u);
  EXPECT_EQ(any.ByteSize(), 6u);
  EXPECT_EQ(any.As<int16_t>()[1], -2);
  EXPECT_EQ(any.ToString(), "int16[3]");
}

TEST(AnyColumnTest, VisitPlainSeesConcreteType) {
  AnyColumn any(Column<uint64_t>{5, 6});
  uint64_t total = any.VisitPlain([](const auto& col) -> uint64_t {
    uint64_t sum = 0;
    for (auto v : col) sum += static_cast<uint64_t>(v);
    return sum;
  });
  EXPECT_EQ(total, 11u);
}

TEST(AnyColumnTest, EqualityByValue) {
  AnyColumn a(Column<uint32_t>{1, 2});
  AnyColumn b(Column<uint32_t>{1, 2});
  AnyColumn c(Column<uint32_t>{1, 3});
  AnyColumn d(Column<uint64_t>{1, 2});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(AnyColumnTest, PackedVariant) {
  PackedColumn packed;
  packed.bit_width = 3;
  packed.n = 5;
  packed.logical_type = TypeId::kUInt16;
  packed.bytes = Column<uint8_t>{0xFF, 0x7F};
  AnyColumn any(packed);
  EXPECT_TRUE(any.is_packed());
  EXPECT_EQ(any.type(), TypeId::kUInt16);
  EXPECT_EQ(any.size(), 5u);
  EXPECT_EQ(any.ByteSize(), 2u);
  EXPECT_EQ(any.ToString(), "packed<uint16,w=3>[5]");
  EXPECT_EQ(any.packed(), packed);
}

TEST(PackedColumnTest, EqualityIncludesWidthAndType) {
  PackedColumn a{{0x01}, 1, 8, TypeId::kUInt32};
  PackedColumn b = a;
  EXPECT_EQ(a, b);
  b.bit_width = 2;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace recomp
