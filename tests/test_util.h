// Shared helpers for recomp tests.

#ifndef RECOMP_TESTS_TEST_UTIL_H_
#define RECOMP_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <future>

#include "columnar/any_column.h"
#include "core/pipeline.h"
#include "util/random.h"
#include "util/thread_pool.h"

#define EXPECT_OK(expr) EXPECT_TRUE((expr).ok()) << (expr).ToString()
#define ASSERT_OK(expr) ASSERT_TRUE((expr).ok()) << (expr).ToString()

namespace recomp::testutil {

/// Compresses `input` with `desc`, decompresses, and asserts the roundtrip
/// reproduces the input exactly. Returns the compressed form for further
/// inspection.
inline CompressedColumn ExpectRoundTrip(const AnyColumn& input,
                                        const SchemeDescriptor& desc) {
  auto compressed = Compress(input, desc);
  EXPECT_TRUE(compressed.ok())
      << desc.ToString() << ": " << compressed.status().ToString();
  if (!compressed.ok()) return CompressedColumn{};
  auto back = Decompress(*compressed);
  EXPECT_TRUE(back.ok()) << desc.ToString() << ": "
                         << back.status().ToString();
  if (back.ok()) {
    EXPECT_TRUE(*back == input)
        << "roundtrip mismatch for " << desc.ToString();
  }
  return std::move(*compressed);
}

/// Sorted column with geometric runs (the paper's shipped-orders shape).
inline Column<uint32_t> RunsColumn(uint64_t n, double new_run_probability,
                                   uint64_t seed) {
  Rng rng(seed);
  Column<uint32_t> col;
  col.reserve(n);
  uint32_t value = 1000;
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(new_run_probability)) {
      value += 1 + static_cast<uint32_t>(rng.Below(3));
    }
    col.push_back(value);
  }
  return col;
}

/// Uniform random column over [0, bound).
template <typename T>
Column<T> UniformColumn(uint64_t n, uint64_t bound, uint64_t seed) {
  Rng rng(seed);
  Column<T> col;
  col.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    col.push_back(static_cast<T>(rng.Below(bound)));
  }
  return col;
}

/// Occupies `workers` workers of `pool` until Release() is called (idempotent,
/// and called by the destructor so a failing ASSERT cannot leave the pool
/// wedged): work submitted behind the blockers stays queued — e.g. seal jobs,
/// which is exactly the stored-plain backlog the recompression tests need.
/// Declare it AFTER any object whose destructor waits on the pool (such as an
/// AppendableColumn), so the gate opens before that destructor runs.
class PoolBlocker {
 public:
  PoolBlocker(ThreadPool& pool, uint64_t workers) {
    std::shared_future<void> gate = release_.get_future().share();
    for (uint64_t i = 0; i < workers; ++i) {
      pool.Submit([gate] { gate.wait(); });
    }
  }
  void Release() {
    if (!released_) release_.set_value();
    released_ = true;
  }
  ~PoolBlocker() { Release(); }

 private:
  std::promise<void> release_;
  bool released_ = false;
};

}  // namespace recomp::testutil

#endif  // RECOMP_TESTS_TEST_UTIL_H_
