// Background recompression lifecycle: the Recompressor must drain the
// stored-plain backlog (rolled chunks whose seal job is stuck or queued),
// reswap sealed chunks a fresh analyzer choice beats by the policy's gain
// threshold, honor every policy knob (age, budget, pin handling), and never
// disturb readers: an in-flight snapshot keeps the exact chunk objects it
// pinned while the slots swap under it.

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/chunked.h"
#include "exec/aggregate.h"
#include "exec/point_access.h"
#include "exec/selection.h"
#include "store/appendable_column.h"
#include "store/recompress.h"
#include "store/table.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

using store::AppendableColumn;
using store::IngestOptions;
using store::RecompressionPolicy;
using store::RecompressionReport;
using store::Recompressor;
using store::Table;

using testutil::PoolBlocker;

TEST(RecompressionTest, DrainsStoredPlainBacklog) {
  // A 1-worker pool wedged by a blocker: every rolled chunk stays a
  // stored-plain ID envelope. A sequential-context recompressor must seal
  // the whole backlog itself, and the late seal jobs — released afterwards
  // — must observe the swapped slots and drop their results.
  ThreadPool pool(1);
  const Column<uint32_t> rows = testutil::RunsColumn(4096, 0.03, 11);
  AppendableColumn column(TypeId::kUInt32, {512}, ExecContext{&pool, 1});
  // Declared after the column: destroyed (and released) first, so an early
  // test failure cannot leave ~AppendableColumn waiting on a wedged pool.
  PoolBlocker blocker(pool, 1);
  ASSERT_OK(column.AppendBatch(AnyColumn(rows)));

  ASSERT_EQ(column.num_chunks(), 8u);
  ASSERT_EQ(column.sealed_chunks(), 0u);
  for (const auto& info : column.ChunkInfos()) {
    EXPECT_FALSE(info.sealed);
    ASSERT_TRUE(StoredPlainData(info.chunk->column.root()) != nullptr)
        << "slot " << info.slot;
  }

  Recompressor recompressor({}, ExecContext{});  // Inline, off the pool.
  auto report = recompressor.Tick(column);
  ASSERT_OK(report.status());
  EXPECT_EQ(report->chunks_examined, 8u);
  EXPECT_EQ(report->chunks_scheduled, 8u);
  EXPECT_EQ(report->chunks_reswapped, 8u);
  EXPECT_EQ(report->stored_plain_drained, 8u);
  EXPECT_EQ(report->chunks_failed, 0u);
  EXPECT_GT(report->BytesSaved(), 0u);  // Runs compress well below plain.
  EXPECT_EQ(column.sealed_chunks(), 8u);

  // Release the wedged seal jobs: they must lose the pointer CAS, not
  // double-count sealed chunks or clobber the recompressed envelopes.
  blocker.Release();
  column.WaitForSeals();
  ASSERT_OK(column.status());
  EXPECT_EQ(column.sealed_chunks(), 8u);
  for (const auto& info : column.ChunkInfos()) {
    EXPECT_TRUE(info.sealed);
    EXPECT_EQ(info.recompress_count, 1u) << "slot " << info.slot;
  }

  auto snap = column.Snapshot();
  ASSERT_OK(snap.status());
  auto back = DecompressChunked(snap->chunked());
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == AnyColumn(rows));

  // Fixpoint: a second pass finds nothing left to do at default min_gain.
  auto again = recompressor.Tick(column);
  ASSERT_OK(again.status());
  EXPECT_EQ(again->chunks_reswapped, 0u);
}

TEST(RecompressionTest, BacklogOfPinnedColumnHonorsThePin) {
  // Draining a pinned column's backlog finishes the seal job's work with
  // the pinned descriptor — it does not second-guess the pin.
  ThreadPool pool(1);
  IngestOptions options;
  options.chunk_rows = 256;
  options.descriptor = MakeRle();
  AppendableColumn column(TypeId::kUInt32, options, ExecContext{&pool, 1});
  PoolBlocker blocker(pool, 1);  // After the column; see above.
  const Column<uint32_t> rows = testutil::RunsColumn(1024, 0.05, 13);
  ASSERT_OK(column.AppendBatch(AnyColumn(rows)));
  ASSERT_EQ(column.sealed_chunks(), 0u);

  Recompressor recompressor({}, ExecContext{});
  auto report = recompressor.Tick(column);
  ASSERT_OK(report.status());
  EXPECT_EQ(report->stored_plain_drained, 4u);
  for (const auto& info : column.ChunkInfos()) {
    EXPECT_EQ(info.chunk->column.Descriptor().kind, MakeRle().kind);
  }
  blocker.Release();
  column.WaitForSeals();
  auto back = DecompressChunked(column.Snapshot()->chunked());
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == AnyColumn(rows));
}

TEST(RecompressionTest, ReswapsSealedChunksAFreshChoiceBeats) {
  // Ingest pinned to plain NS; the data is run-heavy, so a fresh analyzer
  // finds a much smaller composition. recompress_pinned lets the pass
  // migrate the column off its pin.
  IngestOptions options;
  options.chunk_rows = 512;
  options.descriptor = Ns();
  AppendableColumn column(TypeId::kUInt32, options);  // Inline seals.
  const Column<uint32_t> rows = testutil::RunsColumn(4096, 0.02, 17);
  ASSERT_OK(column.AppendBatch(AnyColumn(rows)));
  ASSERT_OK(column.Flush());
  const uint64_t bytes_pinned = column.Snapshot()->chunked().PayloadBytes();

  RecompressionPolicy policy;
  policy.recompress_pinned = true;
  policy.min_gain = 1.0;
  Recompressor recompressor(policy, ExecContext{});
  auto report = recompressor.RecompressAll(column);
  ASSERT_OK(report.status());
  EXPECT_EQ(report->chunks_reswapped, 8u);
  EXPECT_EQ(report->stored_plain_drained, 0u);
  EXPECT_EQ(report->swaps.size(), 8u);
  for (const auto& swap : report->swaps) {
    EXPECT_EQ(swap.scheme_before.substr(0, 2), "NS");
    EXPECT_NE(swap.scheme_after.substr(0, 2), "NS");
    EXPECT_LT(swap.bytes_after, swap.bytes_before);
  }

  auto snap = column.Snapshot();
  ASSERT_OK(snap.status());
  EXPECT_LT(snap->chunked().PayloadBytes(), bytes_pinned);
  EXPECT_EQ(snap->chunked().PayloadBytes(), report->bytes_after);
  auto back = DecompressChunked(snap->chunked());
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == AnyColumn(rows));

  // The report's ToString carries the scheme migration for observability.
  const std::string text = report->ToString();
  EXPECT_NE(text.find("reswapped=8"), std::string::npos) << text;
  EXPECT_NE(text.find("NS"), std::string::npos) << text;
}

TEST(RecompressionTest, PolicyKnobsGateCandidates) {
  IngestOptions options;
  options.chunk_rows = 256;
  options.descriptor = Ns();
  const Column<uint32_t> rows = testutil::RunsColumn(2048, 0.02, 19);

  // Pinned columns are skipped by default (the pin exists on purpose).
  {
    AppendableColumn column(TypeId::kUInt32, options);
    ASSERT_OK(column.AppendBatch(AnyColumn(rows)));
    ASSERT_OK(column.Flush());
    Recompressor recompressor({}, ExecContext{});
    auto report = recompressor.Tick(column);
    ASSERT_OK(report.status());
    EXPECT_EQ(report->chunks_examined, 8u);
    EXPECT_EQ(report->chunks_scheduled, 0u);
  }

  // An impossible gain threshold keeps everything.
  {
    AppendableColumn column(TypeId::kUInt32, options);
    ASSERT_OK(column.AppendBatch(AnyColumn(rows)));
    ASSERT_OK(column.Flush());
    RecompressionPolicy policy;
    policy.recompress_pinned = true;
    policy.min_gain = 1e9;
    Recompressor recompressor(policy, ExecContext{});
    auto report = recompressor.Tick(column);
    ASSERT_OK(report.status());
    EXPECT_EQ(report->chunks_reswapped, 0u);
    EXPECT_EQ(report->chunks_kept, 8u);
  }

  // min_age_chunks excludes the young end of the column.
  {
    AppendableColumn column(TypeId::kUInt32, options);
    ASSERT_OK(column.AppendBatch(AnyColumn(rows)));
    ASSERT_OK(column.Flush());
    RecompressionPolicy policy;
    policy.recompress_pinned = true;
    policy.min_gain = 1.0;
    policy.min_age_chunks = 6;  // Only slots 0 and 1 have 6+ younger chunks.
    Recompressor recompressor(policy, ExecContext{});
    auto report = recompressor.Tick(column);
    ASSERT_OK(report.status());
    EXPECT_EQ(report->chunks_scheduled, 2u);
    EXPECT_EQ(report->chunks_reswapped, 2u);
  }

  // The per-tick budget bounds one pass; RecompressAll still drains.
  {
    AppendableColumn column(TypeId::kUInt32, options);
    ASSERT_OK(column.AppendBatch(AnyColumn(rows)));
    ASSERT_OK(column.Flush());
    RecompressionPolicy policy;
    policy.recompress_pinned = true;
    policy.min_gain = 1.0;
    policy.max_chunks_per_tick = 3;
    Recompressor recompressor(policy, ExecContext{});
    auto tick = recompressor.Tick(column);
    ASSERT_OK(tick.status());
    EXPECT_EQ(tick->chunks_scheduled, 3u);
    auto all = recompressor.RecompressAll(column);
    ASSERT_OK(all.status());
    EXPECT_EQ(all->chunks_reswapped, 5u);  // The remaining chunks.
  }

  // min_gain below 1 is rejected (a swap must never grow a chunk).
  {
    AppendableColumn column(TypeId::kUInt32, {256});
    RecompressionPolicy policy;
    policy.min_gain = 0.5;
    Recompressor recompressor(policy, ExecContext{});
    EXPECT_FALSE(recompressor.Tick(column).ok());
  }
}

TEST(RecompressionTest, RecompressionHealsAFailedSealPin) {
  // NS(1) cannot represent the ingested values: the seal jobs fail (inline
  // — no pool) and the column refuses further ingest. Draining the backlog
  // with the pin still in force fails the same way; a policy that may
  // override pins re-seals the chunks with the analyzer's choice, and the
  // column heals: status clears and ingest resumes, because the
  // stored-plain rows were correct all along.
  IngestOptions options;
  options.chunk_rows = 16;
  options.descriptor = Ns(1);
  AppendableColumn column(TypeId::kUInt32, options);
  const Column<uint32_t> wide(32, 1000);  // Needs 10 bits.
  ASSERT_OK(column.AppendBatch(AnyColumn(wide)));
  EXPECT_FALSE(column.status().ok());
  EXPECT_FALSE(column.Snapshot().ok());
  EXPECT_FALSE(column.Append(1).ok());

  // Honoring the pin cannot help: both chunks fail again, status stays.
  Recompressor pinned_drain({}, ExecContext{});
  auto failed = pinned_drain.Tick(column);
  ASSERT_OK(failed.status());
  EXPECT_EQ(failed->chunks_failed, 2u);
  EXPECT_FALSE(column.status().ok());

  // Overriding the pin re-seals both chunks and heals the column.
  RecompressionPolicy policy;
  policy.recompress_pinned = true;
  Recompressor healer(policy, ExecContext{});
  auto report = healer.RecompressAll(column);
  ASSERT_OK(report.status());
  EXPECT_EQ(report->stored_plain_drained, 2u);
  ASSERT_OK(column.status());
  EXPECT_EQ(column.sealed_chunks(), 2u);

  ASSERT_OK(column.Append(7));
  auto snap = column.Snapshot();
  ASSERT_OK(snap.status());
  auto back = DecompressChunked(snap->chunked());
  ASSERT_OK(back.status());
  Column<uint32_t> expected = wide;
  expected.push_back(7);
  EXPECT_TRUE(*back == AnyColumn(expected));
}

TEST(RecompressionTest, InFlightSnapshotKeepsPinnedChunksAcrossSwap) {
  // The snapshot-pinning guarantee the scan layer relies on: a snapshot
  // taken before recompression keeps the exact chunk objects it pinned —
  // same pointers, same descriptors — while new snapshots see the swapped
  // envelopes. Both answer queries identically.
  IngestOptions options;
  options.chunk_rows = 512;
  options.descriptor = Ns();
  AppendableColumn column(TypeId::kUInt32, options);
  const Column<uint32_t> rows = testutil::RunsColumn(2048, 0.02, 23);
  ASSERT_OK(column.AppendBatch(AnyColumn(rows)));
  ASSERT_OK(column.Flush());

  auto before = column.Snapshot();
  ASSERT_OK(before.status());
  std::vector<const CompressedChunk*> pinned;
  for (const auto& chunk : before->chunked().chunks()) {
    pinned.push_back(chunk.get());
  }

  RecompressionPolicy policy;
  policy.recompress_pinned = true;
  policy.min_gain = 1.0;
  Recompressor recompressor(policy, ExecContext{});
  auto report = recompressor.RecompressAll(column);
  ASSERT_OK(report.status());
  ASSERT_EQ(report->chunks_reswapped, 4u);

  // The old snapshot still holds the original objects, byte for byte.
  for (size_t i = 0; i < pinned.size(); ++i) {
    EXPECT_EQ(before->chunked().chunks()[i].get(), pinned[i]);
    EXPECT_EQ(before->chunked().chunk(i).column.Descriptor().kind,
              SchemeKind::kNs);
  }
  auto after = column.Snapshot();
  ASSERT_OK(after.status());
  for (uint64_t i = 0; i < after->chunked().num_chunks(); ++i) {
    EXPECT_NE(after->chunked().chunks()[i].get(), pinned[i]);
    EXPECT_NE(after->chunked().chunk(i).column.Descriptor().kind,
              SchemeKind::kNs);
  }

  auto sum_before = exec::SumCompressed(before->chunked());
  auto sum_after = exec::SumCompressed(after->chunked());
  ASSERT_OK(sum_before.status());
  ASSERT_OK(sum_after.status());
  EXPECT_EQ(sum_before->value, sum_after->value);
  auto back_before = DecompressChunked(before->chunked());
  auto back_after = DecompressChunked(after->chunked());
  ASSERT_OK(back_before.status());
  ASSERT_OK(back_after.status());
  EXPECT_TRUE(*back_before == *back_after);
}

TEST(RecompressionTest, ChunkStatsTrackAgeAccessesAndSwaps) {
  AppendableColumn column(TypeId::kUInt32, {128});
  const Column<uint32_t> rows = testutil::RunsColumn(512, 0.05, 29);
  ASSERT_OK(column.AppendBatch(AnyColumn(rows)));
  ASSERT_OK(column.Flush());

  auto infos = column.ChunkInfos();
  ASSERT_EQ(infos.size(), 4u);
  for (uint64_t i = 0; i < infos.size(); ++i) {
    EXPECT_EQ(infos[i].slot, i);
    EXPECT_EQ(infos[i].age_chunks, infos.size() - i - 1);
    EXPECT_EQ(infos[i].snapshot_accesses, 0u);
    EXPECT_EQ(infos[i].recompress_count, 0u);
    EXPECT_TRUE(infos[i].sealed);
    EXPECT_FALSE(infos[i].recompress_pending);
  }

  // Every snapshot that includes a chunk counts as one access.
  for (int s = 0; s < 3; ++s) ASSERT_OK(column.Snapshot().status());
  for (const auto& info : column.ChunkInfos()) {
    EXPECT_EQ(info.snapshot_accesses, 3u);
  }

  // The tail chunk a snapshot copies is not a rolled slot: appending a few
  // rows and snapshotting again bumps only the rolled chunks' counters.
  ASSERT_OK(column.Append(1));
  ASSERT_OK(column.Snapshot().status());
  infos = column.ChunkInfos();
  ASSERT_EQ(infos.size(), 4u);
  for (const auto& info : infos) EXPECT_EQ(info.snapshot_accesses, 4u);
}

TEST(RecompressionTest, TableMaintenanceTickAndRecompressAll) {
  ThreadPool pool(2);
  auto table = Table::Create(
      {
          {"keys", TypeId::kUInt32, {256}, "NS"},
          {"values", TypeId::kUInt32, {256}, ""},
      },
      ExecContext{&pool, 1});
  ASSERT_OK(table.status());
  const Column<uint32_t> keys = testutil::RunsColumn(2048, 0.02, 31);
  const Column<uint32_t> values = testutil::RunsColumn(2048, 0.04, 37);
  ASSERT_OK(table->AppendBatch({AnyColumn(keys), AnyColumn(values)}));
  ASSERT_OK(table->Flush());

  // Default policy: the analyzer-sealed column is already optimal, and the
  // pinned column is skipped — a tick is a no-op.
  auto tick = table->MaintenanceTick();
  ASSERT_OK(tick.status());
  EXPECT_EQ(tick->chunks_examined, 16u);
  EXPECT_EQ(tick->chunks_reswapped, 0u);

  // recompress_pinned migrates "keys" off NS; swap entries carry the
  // column name.
  RecompressionPolicy policy;
  policy.recompress_pinned = true;
  policy.min_gain = 1.0;
  auto report = table->RecompressAll(policy);
  ASSERT_OK(report.status());
  EXPECT_EQ(report->chunks_reswapped, 8u);
  for (const auto& swap : report->swaps) {
    EXPECT_EQ(swap.column, "keys");
  }

  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  auto back = DecompressChunked((*snap->column("keys"))->chunked());
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == AnyColumn(keys));
}

TEST(RecompressionTest, TableBackgroundMaintenanceLifecycle) {
  ThreadPool pool(2);
  auto table = Table::Create(
      {
          {"k", TypeId::kUInt32, {128}, "NS"},
      },
      ExecContext{&pool, 1});
  ASSERT_OK(table.status());

  RecompressionPolicy policy;
  policy.recompress_pinned = true;
  policy.min_gain = 1.0;
  EXPECT_FALSE(table->maintenance_running());
  EXPECT_FALSE(table->StartMaintenance({.min_gain = 0.5}).ok());
  ASSERT_OK(table->StartMaintenance(policy, std::chrono::milliseconds(1)));
  EXPECT_TRUE(table->maintenance_running());
  EXPECT_FALSE(table->StartMaintenance(policy).ok());  // Already running.

  const Column<uint32_t> rows = testutil::RunsColumn(1024, 0.02, 41);
  ASSERT_OK(table->AppendBatch({AnyColumn(rows)}));
  ASSERT_OK(table->Flush());

  // The background thread must reswap all 8 pinned chunks eventually.
  for (int spin = 0; spin < 10000; ++spin) {
    if (table->maintenance_report().chunks_reswapped >= 8) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  table->StopMaintenance();
  EXPECT_FALSE(table->maintenance_running());
  table->StopMaintenance();  // Idempotent.

  const RecompressionReport report = table->maintenance_report();
  // >= and not ==: a chunk the maintenance thread caught as stored-plain
  // backlog drains to the pinned NS form first and migrates off the pin in
  // a later tick — two legitimate swaps for one slot.
  EXPECT_GE(report.chunks_reswapped, 8u);
  EXPECT_GT(report.BytesSaved(), 0u);

  // A restart keeps the accumulated history.
  ASSERT_OK(table->StartMaintenance(policy, std::chrono::milliseconds(1)));
  table->StopMaintenance();
  EXPECT_GE(table->maintenance_report().chunks_reswapped, 8u);

  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  auto back = DecompressChunked((*snap->column("k"))->chunked());
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == AnyColumn(rows));
}

}  // namespace
}  // namespace recomp
