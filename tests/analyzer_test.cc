// Tests for the analyzer: scheme selection over the composition space.

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

using testutil::RunsColumn;
using testutil::UniformColumn;

/// Does the ranked list put `name` first?
std::string TopChoice(const Column<uint32_t>& col) {
  auto ranked = RankCandidates(AnyColumn(col));
  EXPECT_TRUE(ranked.ok()) << ranked.status().ToString();
  return ranked.ok() ? ranked->front().name : "";
}

TEST(AnalyzerTest, PicksRunSchemesForRunData) {
  Column<uint32_t> col = RunsColumn(50000, 0.005, 31);  // ~200-value runs
  const std::string top = TopChoice(col);
  EXPECT_TRUE(top == "RLE-DELTA" || top == "RLE-NS") << top;
}

TEST(AnalyzerTest, PicksDictForSparseHeavyDomain) {
  // Few distinct, large, unordered values: DICT wins; delta/NS/FOR do not.
  Rng rng(32);
  Column<uint32_t> col;
  for (int i = 0; i < 50000; ++i) {
    col.push_back(0x10000019u * (1 + static_cast<uint32_t>(rng.Below(13))));
  }
  EXPECT_EQ(TopChoice(col), "DICT-NS");
}

TEST(AnalyzerTest, PicksDeltaForSortedData) {
  Rng rng(33);
  Column<uint32_t> col;
  uint32_t v = 0;
  for (int i = 0; i < 50000; ++i) {
    v += 1 + static_cast<uint32_t>(rng.Below(3));  // strictly increasing
    col.push_back(v);
  }
  const std::string top = TopChoice(col);
  EXPECT_TRUE(top.rfind("DELTA", 0) == 0) << top;
}

TEST(AnalyzerTest, PicksForFamilyForLocalizedData) {
  // Values jump around globally but vary little within segments.
  Rng rng(34);
  Column<uint32_t> col;
  uint32_t level = 0;
  for (int i = 0; i < 65536; ++i) {
    if (i % 1024 == 0) level = static_cast<uint32_t>(rng.Below(1u << 28));
    col.push_back(level + static_cast<uint32_t>(rng.Below(64)));
  }
  const std::string top = TopChoice(col);
  EXPECT_TRUE(top.rfind("FOR", 0) == 0 || top.rfind("PFOR", 0) == 0) << top;
}

TEST(AnalyzerTest, NarrowUniformPrefersNsFamily) {
  Column<uint32_t> col = UniformColumn<uint32_t>(50000, 256, 35);
  const std::string top = TopChoice(col);
  // NS and FOR with tiny refs are equivalent here; both acceptable, as is a
  // degenerate PATCHED with no patches.
  EXPECT_TRUE(top == "NS" || top.rfind("FOR", 0) == 0 ||
              top == "PATCHED-NS" || top == "PFOR-1024")
      << top;
}

TEST(AnalyzerTest, EstimatesTrackMeasurementsWithinFactorTwo) {
  const std::vector<Column<uint32_t>> workloads = {
      RunsColumn(30000, 0.01, 36),
      UniformColumn<uint32_t>(30000, 1 << 12, 37),
  };
  for (const auto& col : workloads) {
    auto outcomes = TrialCompressCandidates(AnyColumn(col));
    ASSERT_OK(outcomes.status());
    for (const TrialOutcome& outcome : *outcomes) {
      if (outcome.measured_bytes < 512) continue;  // Noise floor.
      const double ratio = static_cast<double>(outcome.estimated_bytes) /
                           static_cast<double>(outcome.measured_bytes);
      EXPECT_GT(ratio, 0.5) << outcome.name;
      EXPECT_LT(ratio, 2.0) << outcome.name;
    }
  }
}

TEST(AnalyzerTest, TrialBestIsNoWorseThanClassicBaselines) {
  Column<uint32_t> col = RunsColumn(30000, 0.02, 38);
  auto outcomes = TrialCompressCandidates(AnyColumn(col));
  ASSERT_OK(outcomes.status());
  uint64_t ns_bytes = 0;
  for (const auto& outcome : *outcomes) {
    if (outcome.name == "NS") ns_bytes = outcome.measured_bytes;
  }
  ASSERT_GT(ns_bytes, 0u);
  EXPECT_LE(outcomes->front().measured_bytes, ns_bytes);
}

TEST(AnalyzerTest, CostBudgetFiltersExpensiveSchemes) {
  Column<uint32_t> col = UniformColumn<uint32_t>(10000, 1000, 39);
  AnalyzerOptions strict;
  strict.max_cost_per_value = 1.0;  // NS-level budget.
  auto ranked = RankCandidates(AnyColumn(col), strict);
  ASSERT_OK(ranked.status());
  for (const auto& candidate : *ranked) {
    EXPECT_LE(candidate.estimated_cost, 1.0) << candidate.name;
    EXPECT_NE(candidate.name, "VBYTE");  // VBYTE costs ~4.
  }
}

TEST(AnalyzerTest, FusedDiscountAdmitsDeltaNsUnderTightBudget) {
  // Sorted data with tiny deltas: DELTA-NS is the smallest candidate by
  // bytes, but its operator-sum cost (2.5) used to blow a 1.5 budget and
  // the analyzer settled for NS. The fused-cascade discount prices the
  // single-pass decode under the same budget, flipping the winner.
  Rng rng(40);
  Column<uint32_t> col;
  uint32_t v = 0;
  for (int i = 0; i < 50000; ++i) {
    v += 1 + static_cast<uint32_t>(rng.Below(3));
    col.push_back(v);
  }
  AnalyzerOptions budget;
  budget.max_cost_per_value = 1.5;
  auto ranked = RankCandidates(AnyColumn(col), budget);
  ASSERT_OK(ranked.status());
  EXPECT_EQ(ranked->front().name, "DELTA-NS");
  for (const auto& candidate : *ranked) {
    EXPECT_LE(candidate.estimated_cost, 1.5) << candidate.name;
  }
}

TEST(AnalyzerTest, ImpossibleBudgetErrors) {
  Column<uint32_t> col{1, 2, 3};
  AnalyzerOptions impossible;
  impossible.max_cost_per_value = 0.0;
  EXPECT_FALSE(RankCandidates(AnyColumn(col), impossible).ok());
}

TEST(AnalyzerTest, SignedInputRejected) {
  EXPECT_FALSE(RankCandidates(AnyColumn(Column<int32_t>{1})).ok());
}

TEST(AnalyzerTest, ChooseSchemeRoundTrips) {
  for (uint64_t seed : {41u, 42u, 43u}) {
    Column<uint32_t> col = RunsColumn(20000, 0.05, seed);
    auto desc = ChooseScheme(AnyColumn(col));
    ASSERT_OK(desc.status());
    testutil::ExpectRoundTrip(AnyColumn(col), *desc);
  }
}

}  // namespace
}  // namespace recomp
