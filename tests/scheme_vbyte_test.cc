// Tests for the VBYTE (variable-byte) scheme.

#include <gtest/gtest.h>

#include "schemes/scheme.h"
#include "test_util.h"

namespace recomp {
namespace {

using testutil::ExpectRoundTrip;
using testutil::UniformColumn;

TEST(VByteSchemeTest, KnownEncoding) {
  Column<uint32_t> col{0, 127, 128, 300};
  auto compressed = Compress(AnyColumn(col), VByte());
  ASSERT_OK(compressed.status());
  const auto& stream =
      compressed->root().parts.at("stream").column->As<uint8_t>();
  // 0 -> [0x00]; 127 -> [0x7F]; 128 -> [0x80, 0x01]; 300 -> [0xAC, 0x02].
  EXPECT_EQ(stream, (Column<uint8_t>{0x00, 0x7F, 0x80, 0x01, 0xAC, 0x02}));
}

TEST(VByteSchemeTest, RoundTrips) {
  ExpectRoundTrip(AnyColumn(Column<uint32_t>{}), VByte());
  ExpectRoundTrip(AnyColumn(Column<uint32_t>{~uint32_t{0}}), VByte());
  ExpectRoundTrip(AnyColumn(Column<uint64_t>{~uint64_t{0}, 0, 1}), VByte());
  ExpectRoundTrip(AnyColumn(UniformColumn<uint32_t>(5000, ~uint32_t{0}, 41)),
                  VByte());
  ExpectRoundTrip(AnyColumn(UniformColumn<uint8_t>(1000, 256, 42)), VByte());
}

TEST(VByteSchemeTest, SmallValuesCostOneByte) {
  Column<uint32_t> col = UniformColumn<uint32_t>(1000, 128, 43);
  auto compressed = Compress(AnyColumn(col), VByte());
  ASSERT_OK(compressed.status());
  EXPECT_EQ(compressed->PayloadBytes(), 1000u);
  EXPECT_DOUBLE_EQ(compressed->Ratio(), 4.0);
}

TEST(VByteSchemeTest, TruncatedStreamDetected) {
  Column<uint32_t> col{300, 300};
  auto compressed = Compress(AnyColumn(col), VByte());
  ASSERT_OK(compressed.status());
  auto& stream = compressed->root().parts.at("stream").column->As<uint8_t>();
  stream.pop_back();
  EXPECT_EQ(Decompress(*compressed).status().code(), StatusCode::kCorruption);
}

TEST(VByteSchemeTest, TrailingBytesDetected) {
  Column<uint32_t> col{1};
  auto compressed = Compress(AnyColumn(col), VByte());
  ASSERT_OK(compressed.status());
  auto& stream = compressed->root().parts.at("stream").column->As<uint8_t>();
  stream.push_back(0x00);
  EXPECT_EQ(Decompress(*compressed).status().code(), StatusCode::kCorruption);
}

TEST(VByteSchemeTest, OverlongValueForTypeDetected) {
  // Encode a uint64 value, then lie about the output type via the envelope.
  Column<uint64_t> col{uint64_t{1} << 40};
  auto compressed = Compress(AnyColumn(col), VByte());
  ASSERT_OK(compressed.status());
  compressed->root().out_type = TypeId::kUInt16;
  EXPECT_EQ(Decompress(*compressed).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace recomp
