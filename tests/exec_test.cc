// Tests for query execution on compressed data: selection pushdown,
// aggregate pushdown, and approximate/gradually-refined answering. Every
// pushdown is validated against the decompress-then-execute reference over
// randomized predicates (DESIGN.md invariant 4).

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/pipeline.h"
#include "exec/aggregate.h"
#include "exec/approx.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "ops/reduce.h"
#include "ops/select.h"
#include "test_util.h"
#include "util/bits.h"

namespace recomp {
namespace {

using exec::RangePredicate;

/// Reference: decompress, then filter.
Column<uint32_t> ReferenceSelect(const CompressedColumn& compressed,
                                 const RangePredicate& pred) {
  auto column = Decompress(compressed);
  EXPECT_OK(column.status());
  auto positions = ops::SelectRange<uint32_t>(
      column->As<uint32_t>(), static_cast<uint32_t>(pred.lo),
      static_cast<uint32_t>(std::min<uint64_t>(pred.hi, ~uint32_t{0})));
  EXPECT_OK(positions.status());
  return *positions;
}

TEST(SelectionTest, RleRunsStrategy) {
  Column<uint32_t> col = gen::SortedRuns(20000, 50.0, 3, 61);
  auto compressed = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(compressed.status());
  RangePredicate pred{1100, 1200};
  auto result = exec::SelectCompressed(*compressed, pred);
  ASSERT_OK(result.status());
  EXPECT_EQ(result->stats.strategy, exec::Strategy::kRleRuns);
  EXPECT_GT(result->stats.runs_examined, 0u);
  EXPECT_EQ(result->positions, ReferenceSelect(*compressed, pred));
}

TEST(SelectionTest, DictCodesStrategy) {
  Column<uint32_t> col = gen::ZipfValues(20000, 64, 1.1, 62);
  auto compressed = Compress(AnyColumn(col), MakeDictNs());
  ASSERT_OK(compressed.status());
  for (uint64_t lo : {0ull, 1000ull, 3000000000ull}) {
    RangePredicate pred{lo, lo + 500000000};
    auto result = exec::SelectCompressed(*compressed, pred);
    ASSERT_OK(result.status());
    EXPECT_EQ(result->stats.strategy, exec::Strategy::kDictCodes);
    EXPECT_EQ(result->positions, ReferenceSelect(*compressed, pred));
  }
}

TEST(SelectionTest, DictEmptyAndFullRanges) {
  Column<uint32_t> col{10, 20, 30, 20};
  auto compressed = Compress(AnyColumn(col), MakeDictNs());
  ASSERT_OK(compressed.status());
  auto none = exec::SelectCompressed(*compressed, RangePredicate{40, 50});
  ASSERT_OK(none.status());
  EXPECT_TRUE(none->positions.empty());
  auto all = exec::SelectCompressed(*compressed, RangePredicate{0, ~uint64_t{0}});
  ASSERT_OK(all.status());
  EXPECT_EQ(all->positions.size(), 4u);
}

TEST(SelectionTest, StepPrunedStrategySkipsSegments) {
  // Strong segment locality: most segments miss a narrow predicate.
  Column<uint32_t> col = gen::StepLevels(65536, 512, 24, 6, 63);
  auto compressed = Compress(AnyColumn(col), MakeFor(512));
  ASSERT_OK(compressed.status());
  RangePredicate pred{1u << 20, (1u << 20) + (1u << 16)};
  auto result = exec::SelectCompressed(*compressed, pred);
  ASSERT_OK(result.status());
  EXPECT_EQ(result->stats.strategy, exec::Strategy::kStepPruned);
  EXPECT_GT(result->stats.segments_skipped, result->stats.segments_partial);
  EXPECT_LT(result->stats.values_decoded, col.size() / 4);
  EXPECT_EQ(result->positions, ReferenceSelect(*compressed, pred));
}

TEST(SelectionTest, StepPrunedFullSegments) {
  // A predicate covering everything: every segment is emitted without
  // decoding a single residual bit.
  Column<uint32_t> col = gen::StepLevels(8192, 256, 20, 5, 64);
  auto compressed = Compress(AnyColumn(col), MakeFor(256));
  ASSERT_OK(compressed.status());
  auto result =
      exec::SelectCompressed(*compressed, RangePredicate{0, ~uint64_t{0}});
  ASSERT_OK(result.status());
  EXPECT_EQ(result->stats.segments_full, result->stats.segments_total);
  EXPECT_EQ(result->stats.values_decoded, 0u);
  EXPECT_EQ(result->positions.size(), col.size());
}

TEST(SelectionTest, FallbackMatchesReference) {
  Column<uint32_t> col = gen::Uniform(10000, 1 << 16, 65);
  auto compressed = Compress(AnyColumn(col), MakeDeltaNs());
  ASSERT_OK(compressed.status());
  RangePredicate pred{100, 30000};
  auto result = exec::SelectCompressed(*compressed, pred);
  ASSERT_OK(result.status());
  EXPECT_EQ(result->stats.strategy, exec::Strategy::kDecompressScan);
  EXPECT_EQ(result->positions, ReferenceSelect(*compressed, pred));
}

TEST(SelectionTest, RandomizedPredicatesAcrossStrategies) {
  Rng rng(66);
  const std::vector<std::pair<const char*, SchemeDescriptor>> cases = {
      {"rle", MakeRle()},
      {"dict", MakeDictNs()},
      {"for", MakeFor(128)},
      {"delta", MakeDeltaNs()},
  };
  Column<uint32_t> col = gen::SortedRuns(8000, 10.0, 2, 67);
  for (const auto& [name, desc] : cases) {
    auto compressed = Compress(AnyColumn(col), desc);
    ASSERT_OK(compressed.status()) << name;
    for (int trial = 0; trial < 10; ++trial) {
      uint64_t a = rng.Range(900, 3000);
      uint64_t b = rng.Range(900, 3000);
      RangePredicate pred{std::min(a, b), std::max(a, b)};
      auto result = exec::SelectCompressed(*compressed, pred);
      ASSERT_OK(result.status()) << name;
      EXPECT_EQ(result->positions, ReferenceSelect(*compressed, pred))
          << name << " [" << pred.lo << "," << pred.hi << "]";
    }
  }
}

TEST(SelectionTest, SignedColumnsRejected) {
  auto compressed = Compress(AnyColumn(Column<int32_t>{1, 2}), Rpe());
  ASSERT_OK(compressed.status());
  EXPECT_FALSE(exec::SelectCompressed(*compressed, RangePredicate{}).ok());
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

void ExpectAggregatesMatch(const Column<uint32_t>& col,
                           const SchemeDescriptor& desc,
                           exec::Strategy expected_sum_strategy) {
  auto compressed = Compress(AnyColumn(col), desc);
  ASSERT_OK(compressed.status());
  auto sum = exec::SumCompressed(*compressed);
  ASSERT_OK(sum.status());
  EXPECT_EQ(sum->value, ops::Sum(col));
  EXPECT_EQ(sum->strategy, expected_sum_strategy);
  auto min = exec::MinCompressed(*compressed);
  auto max = exec::MaxCompressed(*compressed);
  ASSERT_OK(min.status());
  ASSERT_OK(max.status());
  EXPECT_EQ(min->value, *ops::Min(col));
  EXPECT_EQ(max->value, *ops::Max(col));
}

TEST(AggregateTest, RleDotProduct) {
  ExpectAggregatesMatch(gen::SortedRuns(20000, 30.0, 3, 71), MakeRle(),
                        exec::Strategy::kRleDot);
}

TEST(AggregateTest, StepMass) {
  ExpectAggregatesMatch(gen::StepLevels(30000, 256, 20, 6, 72), MakeFor(256),
                        exec::Strategy::kStepMass);
}

TEST(AggregateTest, DictStrategies) {
  ExpectAggregatesMatch(gen::ZipfValues(20000, 100, 1.0, 73), MakeDictNs(),
                        exec::Strategy::kDictSum);
}

TEST(AggregateTest, FallbackScan) {
  ExpectAggregatesMatch(gen::Uniform(10000, 1 << 20, 74), MakeDeltaNs(),
                        exec::Strategy::kDecompressScan);
}

TEST(AggregateTest, EmptyColumn) {
  auto compressed = Compress(AnyColumn(Column<uint32_t>{}), MakeRle());
  ASSERT_OK(compressed.status());
  auto sum = exec::SumCompressed(*compressed);
  ASSERT_OK(sum.status());
  EXPECT_EQ(sum->value, 0u);
  EXPECT_FALSE(exec::MinCompressed(*compressed).ok());
  EXPECT_FALSE(exec::MaxCompressed(*compressed).ok());
}

TEST(AggregateTest, SumWrapsModulo64) {
  Column<uint64_t> col(3, ~uint64_t{0});
  auto compressed = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(compressed.status());
  auto sum = exec::SumCompressed(*compressed);
  ASSERT_OK(sum.status());
  EXPECT_EQ(sum->value, 3 * ~uint64_t{0});  // Wrapped, matching ops::Sum.
}

// ---------------------------------------------------------------------------
// Approximate / gradually-refined answering
// ---------------------------------------------------------------------------

TEST(ApproxTest, BoundsContainExactAndRefinementConverges) {
  Column<uint32_t> col = gen::StepLevels(65536, 512, 22, 8, 81);
  auto compressed = Compress(AnyColumn(col), MakeFor(512));
  ASSERT_OK(compressed.status());
  const uint64_t exact = ops::Sum(col);

  auto coarse = exec::ApproximateSum(*compressed);
  ASSERT_OK(coarse.status());
  EXPECT_LE(coarse->lower, exact);
  EXPECT_GE(coarse->upper, exact);
  EXPECT_FALSE(coarse->IsExact());

  uint64_t previous_width = coarse->Width();
  for (uint64_t k : {32u, 64u, 96u, 128u}) {
    auto refined = exec::RefineSum(*compressed, k);
    ASSERT_OK(refined.status());
    EXPECT_LE(refined->lower, exact);
    EXPECT_GE(refined->upper, exact);
    EXPECT_LE(refined->Width(), previous_width);
    previous_width = refined->Width();
  }

  auto full = exec::RefineSum(*compressed, coarse->total_segments);
  ASSERT_OK(full.status());
  EXPECT_TRUE(full->IsExact());
  EXPECT_EQ(full->lower, exact);
}

TEST(ApproxTest, ErrorBoundIsTheAdvertisedLInfinity) {
  // The model-only interval width is exactly n * (2^w - 1).
  Column<uint32_t> col = gen::StepLevels(4096, 128, 20, 7, 82);
  auto compressed = Compress(AnyColumn(col), MakeFor(128));
  ASSERT_OK(compressed.status());
  const int w =
      compressed->Descriptor().children.at("residual").params.width;
  auto coarse = exec::ApproximateSum(*compressed);
  ASSERT_OK(coarse.status());
  EXPECT_EQ(coarse->Width(), col.size() * (bits::LowMask64(w)));
}

TEST(ApproxTest, WrongShapeRejected) {
  Column<uint32_t> col = gen::Uniform(100, 100, 83);
  auto compressed = Compress(AnyColumn(col), Ns());
  ASSERT_OK(compressed.status());
  EXPECT_FALSE(exec::ApproximateSum(*compressed).ok());
}

TEST(ApproxTest, ExactWhenResidualWidthZero) {
  // A perfect step function has a 0-bit residual: the model alone is exact.
  Column<uint32_t> col;
  for (uint32_t i = 0; i < 2048; ++i) col.push_back(100 * (i / 256));
  auto compressed = Compress(AnyColumn(col), MakeFor(256));
  ASSERT_OK(compressed.status());
  auto coarse = exec::ApproximateSum(*compressed);
  ASSERT_OK(coarse.status());
  EXPECT_TRUE(coarse->IsExact());
  EXPECT_EQ(coarse->lower, ops::Sum(col));
}

}  // namespace
}  // namespace recomp
