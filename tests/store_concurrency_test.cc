// Concurrent append-while-scan: snapshot readers race AppendBatch/Seal on a
// live AppendableColumn. Every snapshot must be a consistent prefix of the
// appended rows — verified against the plain reference — and the whole test
// must be TSan-clean (the CI thread-sanitizer job runs Store*). Plus a
// randomized fuzz case: arbitrary interleavings of AppendBatch/Seal/
// Snapshot under arbitrary thread counts must match the sealed-column
// oracle (CompressChunkedAuto over the same rows) bit for bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/chunked.h"
#include "exec/aggregate.h"
#include "exec/point_access.h"
#include "exec/scan.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "store/appendable_column.h"
#include "store/table.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

using exec::RangePredicate;
using store::AppendableColumn;
using store::ColumnSnapshot;

TEST(StoreConcurrencyTest, SnapshotScansRaceAppendsAndSeals) {
  constexpr uint64_t kRows = 40 * 1024;
  constexpr uint64_t kChunkRows = 2048;
  const Column<uint32_t> rows =
      gen::Uniform(kRows, uint64_t{1} << 20, 20240511);
  // Prefix sums let readers verify SUM over any prefix in O(1).
  std::vector<uint64_t> prefix_sum(kRows + 1, 0);
  for (uint64_t i = 0; i < kRows; ++i) {
    prefix_sum[i + 1] = prefix_sum[i] + rows[i];
  }

  ThreadPool pool(4);
  AppendableColumn column(TypeId::kUInt32, {kChunkRows},
                          ExecContext{&pool, 1});

  std::atomic<bool> done{false};
  std::atomic<uint64_t> snapshots_taken{0};

  auto reader = [&](uint64_t seed) {
    Rng rng(seed);
    while (!done.load(std::memory_order_acquire)) {
      auto snap = column.Snapshot();
      ASSERT_OK(snap.status());
      const uint64_t n = snap->size();
      ASSERT_LE(n, kRows);
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);

      // SUM over the snapshot == prefix sum of the appended rows.
      auto sum = exec::SumCompressed(snap->chunked());
      ASSERT_OK(sum.status());
      ASSERT_EQ(sum->value, prefix_sum[n]) << "snapshot rows " << n;

      if (n == 0) continue;
      // Random point probes against the reference.
      for (int p = 0; p < 8; ++p) {
        const uint64_t row = rng.Below(n);
        auto point = exec::GetAt(snap->chunked(), row);
        ASSERT_OK(point.status());
        ASSERT_EQ(point->value, rows[row]) << "row " << row;
      }
      // One range selection against the reference filter over the prefix.
      const uint64_t lo = rng.Below(uint64_t{1} << 20);
      const uint64_t hi = lo + rng.Below(uint64_t{1} << 18);
      auto selection =
          exec::SelectCompressed(snap->chunked(), RangePredicate{lo, hi});
      ASSERT_OK(selection.status());
      uint64_t expected = 0, at = 0;
      for (uint64_t i = 0; i < n; ++i) {
        if (rows[i] >= lo && rows[i] <= hi) {
          ASSERT_LT(at, selection->positions.size());
          ASSERT_EQ(selection->positions[at], i);
          ++expected;
          ++at;
        }
      }
      ASSERT_EQ(selection->positions.size(), expected);
    }
  };

  std::vector<std::thread> readers;
  for (uint64_t t = 0; t < 3; ++t) {
    readers.emplace_back(reader, 100 + t);
  }

  // The writer: uneven batches, occasional explicit seals.
  {
    Rng rng(7);
    uint64_t at = 0;
    while (at < kRows) {
      const uint64_t take =
          std::min<uint64_t>(1 + rng.Below(3000), kRows - at);
      Column<uint32_t> batch(rows.begin() + at, rows.begin() + at + take);
      ASSERT_OK(column.AppendBatch(AnyColumn(batch)));
      at += take;
      if (rng.Bernoulli(0.15)) ASSERT_OK(column.Seal());
    }
  }
  ASSERT_OK(column.Flush());
  // On an oversubscribed machine the writer can finish before a reader
  // thread is ever scheduled; keep the column live until every reader has
  // observed at least one snapshot so the assertions below mean something.
  for (int spin = 0; spin < 10000 && snapshots_taken.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(snapshots_taken.load(), 0u);
  EXPECT_EQ(column.size(), kRows);
  EXPECT_EQ(column.pending_seals(), 0u);

  // After the dust settles: the final column equals the reference.
  auto snap = column.Snapshot();
  ASSERT_OK(snap.status());
  EXPECT_EQ(snap->unsealed_chunks(), 0u);
  auto back = DecompressChunked(snap->chunked());
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == AnyColumn(rows));
}

TEST(StoreConcurrencyTest, ConcurrentAppendersInterleaveWholeBatches) {
  // Batches from racing appenders may interleave in any order, but each
  // batch must stay contiguous and nothing may be lost: the multiset of
  // batch sums and the total size must come out exact.
  constexpr uint64_t kBatch = 257;
  constexpr uint64_t kBatchesPerWriter = 40;
  ThreadPool pool(4);
  AppendableColumn column(TypeId::kUInt32, {1024}, ExecContext{&pool, 1});

  auto writer = [&](uint32_t tag) {
    for (uint64_t b = 0; b < kBatchesPerWriter; ++b) {
      Column<uint32_t> batch(kBatch, tag);
      ASSERT_OK(column.AppendBatch(AnyColumn(batch)));
    }
  };
  std::vector<std::thread> writers;
  for (uint32_t t = 1; t <= 3; ++t) writers.emplace_back(writer, t * 1000);
  for (std::thread& t : writers) t.join();
  ASSERT_OK(column.Flush());

  ASSERT_EQ(column.size(), 3 * kBatchesPerWriter * kBatch);
  auto snap = column.Snapshot();
  ASSERT_OK(snap.status());
  auto back = DecompressChunked(snap->chunked());
  ASSERT_OK(back.status());
  const Column<uint32_t>& values = back->As<uint32_t>();
  // Every value present the exact number of times...
  uint64_t counts[4] = {};
  for (const uint32_t v : values) {
    ASSERT_EQ(v % 1000, 0u);
    ASSERT_GE(v / 1000, 1u);
    ASSERT_LE(v / 1000, 3u);
    ++counts[v / 1000];
  }
  for (int t = 1; t <= 3; ++t) {
    EXPECT_EQ(counts[t], kBatchesPerWriter * kBatch);
  }
  // ...and each batch contiguous: runs of equal values have lengths that
  // are multiples of kBatch (neighboring equal-tag batches merge runs).
  uint64_t run = 1;
  for (uint64_t i = 1; i <= values.size(); ++i) {
    if (i < values.size() && values[i] == values[i - 1]) {
      ++run;
    } else {
      EXPECT_EQ(run % kBatch, 0u) << "at row " << i;
      run = 1;
    }
  }
}

TEST(StoreConcurrencyTest, FuzzLiveColumnMatchesSealedOracle) {
  // Random chunk size, thread count, batch sizes, and interleaving of
  // AppendBatch/Seal/Snapshot: at every step the live snapshot must answer
  // exactly like CompressChunkedAuto over the same prefix, and the flushed
  // column must answer exactly like the oracle over all rows.
  Rng rng(97531);
  for (int round = 0; round < 8; ++round) {
    const uint64_t n = 500 + rng.Below(6000);
    Column<uint32_t> rows;
    switch (rng.Below(3)) {
      case 0:
        rows = gen::SortedRuns(n, 1.0 + rng.NextDouble() * 30, 3, rng.Next());
        break;
      case 1:
        rows = gen::Uniform(n, uint64_t{1} << (1 + rng.Below(30)), rng.Next());
        break;
      default:
        rows = gen::StepLevels(n, 64 << rng.Below(4), 20, rng.Below(10),
                               rng.Next());
        break;
    }
    const uint64_t chunk_rows = 16 + rng.Below(1500);
    ThreadPool pool(1 + rng.Below(4));
    AppendableColumn column(TypeId::kUInt32, {chunk_rows},
                            ExecContext{&pool, 1});

    uint64_t at = 0;
    while (at < rows.size()) {
      const uint64_t take =
          std::min<uint64_t>(1 + rng.Below(900), rows.size() - at);
      Column<uint32_t> batch(rows.begin() + at, rows.begin() + at + take);
      ASSERT_OK(column.AppendBatch(AnyColumn(batch)));
      at += take;
      if (rng.Bernoulli(0.2)) ASSERT_OK(column.Seal());
      if (rng.Bernoulli(0.3)) {
        const Column<uint32_t> prefix(rows.begin(), rows.begin() + at);
        auto snap = column.Snapshot();
        ASSERT_OK(snap.status());
        ASSERT_EQ(snap->size(), at);
        auto oracle = CompressChunkedAuto(AnyColumn(prefix), {chunk_rows});
        ASSERT_OK(oracle.status());

        const uint64_t a = rng.Below(uint64_t{1} << 32);
        const uint64_t b = rng.Below(uint64_t{1} << 32);
        const RangePredicate pred{std::min(a, b), std::max(a, b)};
        auto live_sel = exec::SelectCompressed(snap->chunked(), pred);
        auto ref_sel = exec::SelectCompressed(*oracle, pred);
        ASSERT_OK(live_sel.status());
        ASSERT_OK(ref_sel.status());
        ASSERT_EQ(live_sel->positions, ref_sel->positions);

        auto live_sum = exec::SumCompressed(snap->chunked());
        auto ref_sum = exec::SumCompressed(*oracle);
        ASSERT_OK(live_sum.status());
        ASSERT_OK(ref_sum.status());
        ASSERT_EQ(live_sum->value, ref_sum->value);

        auto live_min = exec::MinCompressed(snap->chunked());
        auto ref_min = exec::MinCompressed(*oracle);
        ASSERT_OK(live_min.status());
        ASSERT_OK(ref_min.status());
        ASSERT_EQ(live_min->value, ref_min->value);

        auto live_max = exec::MaxCompressed(snap->chunked());
        auto ref_max = exec::MaxCompressed(*oracle);
        ASSERT_OK(live_max.status());
        ASSERT_OK(ref_max.status());
        ASSERT_EQ(live_max->value, ref_max->value);

        std::vector<uint64_t> probe;
        for (int p = 0; p < 16; ++p) probe.push_back(rng.Below(at));
        auto live_batch = exec::GetAtBatch(snap->chunked(), probe);
        auto ref_batch = exec::GetAtBatch(*oracle, probe);
        ASSERT_OK(live_batch.status());
        ASSERT_OK(ref_batch.status());
        for (size_t p = 0; p < probe.size(); ++p) {
          ASSERT_EQ((*live_batch)[p].value, (*ref_batch)[p].value);
        }
      }
    }

    ASSERT_OK(column.Flush());
    auto snap = column.Snapshot();
    ASSERT_OK(snap.status());
    auto back = DecompressChunked(snap->chunked());
    ASSERT_OK(back.status());
    ASSERT_TRUE(*back == AnyColumn(rows)) << "round " << round;
  }
}

TEST(StoreConcurrencyTest, ScansRaceTableAppendsAndSeals) {
  // Multi-column scans (filter + gather + aggregate via exec::Scan) race
  // AppendBatch/Seal on a live table. Deterministic column contents — k[i]
  // = i, v[i] = 3i + 1 — let every reader verify a whole scan result over
  // whatever row prefix its snapshot caught, with closed-form expectations.
  // Runs under the CI ThreadSanitizer job (Scan*/Store* filter).
  constexpr uint64_t kRows = 24 * 1024;
  constexpr uint64_t kChunkRows = 1024;
  constexpr uint64_t kKeyCap = 5000;  // Filter: k < kKeyCap.

  ThreadPool pool(4);
  auto table = store::Table::Create(
      {
          {"k", TypeId::kUInt32, {kChunkRows}, ""},
          {"v", TypeId::kUInt32, {kChunkRows + 300}, ""},  // Misaligned.
      },
      ExecContext{&pool, 1});
  ASSERT_OK(table.status());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> scans_run{0};

  auto reader = [&]() {
    exec::ScanSpec spec;
    spec.Filter("k", RangePredicate{0, kKeyCap - 1})
        .Project({"v"})
        .Aggregate("v", exec::AggregateOp::kSum)
        .Aggregate("k", exec::AggregateOp::kCount);
    while (!done.load(std::memory_order_acquire)) {
      auto snap = table->Snapshot();
      ASSERT_OK(snap.status());
      const uint64_t n = snap->rows();
      auto result = exec::Scan(*snap, spec);
      ASSERT_OK(result.status());
      scans_run.fetch_add(1, std::memory_order_relaxed);

      const uint64_t matches = std::min(n, kKeyCap);
      ASSERT_EQ(result->rows_matched, matches) << "snapshot rows " << n;
      ASSERT_EQ(result->positions.size(), matches);
      const Column<uint32_t>& v =
          result->projections[0].values.As<uint32_t>();
      ASSERT_EQ(v.size(), matches);
      for (uint64_t i = 0; i < matches; ++i) {
        ASSERT_EQ(result->positions[i], i);
        ASSERT_EQ(v[i], 3 * i + 1);
      }
      // Σ (3i + 1) for i in [0, matches).
      const uint64_t expected_sum =
          matches == 0 ? 0 : 3 * (matches * (matches - 1) / 2) + matches;
      ASSERT_EQ(result->aggregates[0].value(), expected_sum);
      ASSERT_EQ(result->aggregates[1].value(), matches);
    }
  };

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) readers.emplace_back(reader);

  {
    Rng rng(31);
    uint64_t at = 0;
    while (at < kRows) {
      const uint64_t take = std::min<uint64_t>(1 + rng.Below(2500), kRows - at);
      Column<uint32_t> k, v;
      for (uint64_t i = at; i < at + take; ++i) {
        k.push_back(static_cast<uint32_t>(i));
        v.push_back(static_cast<uint32_t>(3 * i + 1));
      }
      ASSERT_OK(table->AppendBatch({AnyColumn(k), AnyColumn(v)}));
      at += take;
      if (rng.Bernoulli(0.2)) ASSERT_OK(table->Seal());
    }
  }
  ASSERT_OK(table->Flush());
  // See SnapshotScansRaceAppendsAndSeals: let slow-starting readers catch
  // the live table at least once.
  for (int spin = 0; spin < 10000 && scans_run.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(scans_run.load(), 0u);
  EXPECT_EQ(table->num_rows(), kRows);
}

}  // namespace
}  // namespace recomp
