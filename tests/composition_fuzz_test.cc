// Randomized-composition property tests: generate arbitrary valid
// descriptor trees over the primitive set, compress random workloads, and
// enforce the library's global invariants —
//   (1) roundtrip losslessness,
//   (2) agreement of the operator-plan strategy with the fused kernels,
//   (3) ToString/Parse stability of every resolved descriptor,
//   (4) serialization roundtrip of every envelope.
// This sweeps corners of the composition space no hand-written test lists.

#include <gtest/gtest.h>

#include "core/chunked.h"
#include "core/pipeline.h"
#include "core/plan_builder.h"
#include "core/plan_executor.h"
#include "core/plan_optimizer.h"
#include "core/serialize.h"
#include "exec/aggregate.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

/// Uniformly picks one element.
template <typename T, size_t N>
const T& Pick(Rng& rng, const T (&options)[N]) {
  return options[rng.Below(N)];
}

/// A random descriptor valid for any unsigned column. `depth` bounds
/// nesting; children are attached with probability `compose_p`.
SchemeDescriptor RandomDescriptor(Rng& rng, int depth, double compose_p = 0.7) {
  const SchemeKind kinds[] = {
      SchemeKind::kId,    SchemeKind::kZigZag,  SchemeKind::kNs,
      SchemeKind::kVByte, SchemeKind::kDelta,   SchemeKind::kRpe,
      SchemeKind::kDict,  SchemeKind::kModeled, SchemeKind::kPatched,
  };
  SchemeKind kind = Pick(rng, kinds);
  if (depth <= 0) {
    // Terminals only.
    const SchemeKind leaves[] = {SchemeKind::kId, SchemeKind::kNs,
                                 SchemeKind::kVByte};
    kind = Pick(rng, leaves);
  }

  SchemeDescriptor desc(kind);
  auto child = [&](const char* part) {
    if (rng.NextDouble() < compose_p) {
      desc.children[part] = RandomDescriptor(rng, depth - 1, compose_p * 0.7);
    }
  };
  switch (kind) {
    case SchemeKind::kZigZag:
      child("recoded");
      break;
    case SchemeKind::kDelta:
      child("deltas");
      break;
    case SchemeKind::kRpe:
      child("values");
      child("positions");
      break;
    case SchemeKind::kDict:
      child("codes");
      child("dictionary");
      break;
    case SchemeKind::kModeled: {
      const uint64_t ells[] = {0, 64, 256, 1024};
      SchemeDescriptor model(rng.Bernoulli(0.5) ? SchemeKind::kStep
                                                : SchemeKind::kPlin);
      model.params.segment_length = Pick(rng, ells);
      desc.args.push_back(std::move(model));
      child("residual");
      break;
    }
    case SchemeKind::kPatched:
      child("base");
      child("patch_positions");
      child("patch_values");
      break;
    default:
      break;
  }
  return desc;
}

Column<uint32_t> RandomWorkload(Rng& rng) {
  const uint64_t n = 500 + rng.Below(4000);
  switch (rng.Below(4)) {
    case 0:
      return gen::SortedRuns(n, 1.0 + rng.NextDouble() * 30, 3, rng.Next());
    case 1:
      return gen::Uniform(n, uint64_t{1} << (1 + rng.Below(32)), rng.Next());
    case 2:
      return gen::StepLevels(n, 64 << rng.Below(4), 20, rng.Below(10),
                             rng.Next());
    default:
      return gen::OutlierMix(n, 4 + rng.Below(8), 28, rng.NextDouble() * 0.2,
                             rng.Next());
  }
}

class CompositionFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompositionFuzz, InvariantsHold) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const SchemeDescriptor desc = RandomDescriptor(rng, 3);
    ASSERT_OK(desc.Validate()) << desc.ToString();
    const Column<uint32_t> col = RandomWorkload(rng);
    const AnyColumn input(col);

    auto compressed = Compress(input, desc);
    ASSERT_OK(compressed.status()) << desc.ToString();

    // (1) roundtrip.
    auto back = Decompress(*compressed);
    ASSERT_OK(back.status()) << desc.ToString();
    ASSERT_TRUE(*back == input) << desc.ToString();

    // (2) plan strategy agrees (also after optimization).
    auto plan = BuildDecompressionPlan(*compressed);
    ASSERT_OK(plan.status()) << desc.ToString();
    auto via_plan = ExecutePlan(*plan, *compressed);
    ASSERT_OK(via_plan.status())
        << desc.ToString() << "\n" << plan->ToString();
    ASSERT_TRUE(*via_plan == input) << desc.ToString();
    auto optimized = OptimizePlan(*plan);
    ASSERT_OK(optimized.status()) << desc.ToString();
    auto via_optimized = ExecutePlan(*optimized, *compressed);
    ASSERT_OK(via_optimized.status()) << desc.ToString();
    ASSERT_TRUE(*via_optimized == input) << desc.ToString();

    // (3) resolved descriptor string is a parse fixpoint.
    const SchemeDescriptor resolved = compressed->Descriptor();
    auto reparsed = SchemeDescriptor::Parse(resolved.ToString());
    ASSERT_OK(reparsed.status()) << resolved.ToString();
    ASSERT_TRUE(*reparsed == resolved) << resolved.ToString();

    // (4) serialization roundtrip.
    auto buffer = Serialize(*compressed);
    ASSERT_OK(buffer.status()) << desc.ToString();
    auto restored = Deserialize(*buffer);
    ASSERT_OK(restored.status()) << desc.ToString();
    auto from_bytes = Decompress(*restored);
    ASSERT_OK(from_bytes.status()) << desc.ToString();
    ASSERT_TRUE(*from_bytes == input) << desc.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositionFuzz,
                         ::testing::Range<uint64_t>(1000, 1016));

TEST(CompositionFuzzTest, ChunkedRoundTripWithRandomChunkSizes) {
  // The chunked envelope must hold the same invariants chunk-at-a-time:
  // roundtrip losslessness and v2 serialization stability, across chunk
  // sizes covering n < chunk, n == chunk, and n % chunk != 0.
  Rng rng(8888);
  for (int round = 0; round < 24; ++round) {
    const SchemeDescriptor desc = RandomDescriptor(rng, 2);
    ASSERT_OK(desc.Validate()) << desc.ToString();
    const Column<uint32_t> col = RandomWorkload(rng);
    const AnyColumn input(col);
    uint64_t chunk_rows;
    switch (round % 3) {
      case 0:  // n < chunk: the single-chunk special case.
        chunk_rows = col.size() + 1 + rng.Below(1000);
        break;
      case 1:  // n == chunk exactly.
        chunk_rows = col.size();
        break;
      default:  // Multiple chunks with a ragged tail (n % chunk != 0).
        chunk_rows = 2 + rng.Below(col.size() / 2);
        while (col.size() % chunk_rows == 0) ++chunk_rows;
        break;
    }

    auto chunked = CompressChunked(input, desc, {chunk_rows});
    ASSERT_OK(chunked.status()) << desc.ToString() << " chunk " << chunk_rows;
    ASSERT_EQ(chunked->num_chunks(),
              (col.size() + chunk_rows - 1) / chunk_rows);
    auto back = DecompressChunked(*chunked);
    ASSERT_OK(back.status()) << desc.ToString();
    ASSERT_TRUE(*back == input) << desc.ToString() << " chunk " << chunk_rows;

    auto buffer = Serialize(*chunked);
    ASSERT_OK(buffer.status()) << desc.ToString();
    ASSERT_EQ(buffer->size(), SerializedSize(*chunked));
    auto restored = DeserializeChunked(*buffer);
    ASSERT_OK(restored.status()) << desc.ToString();
    auto from_bytes = DecompressChunked(*restored);
    ASSERT_OK(from_bytes.status()) << desc.ToString();
    ASSERT_TRUE(*from_bytes == input)
        << desc.ToString() << " chunk " << chunk_rows;
  }
}

TEST(CompositionFuzzTest, ParallelAgreementMatchesSequential) {
  // Random column + random chunking + random thread count and grain: the
  // parallel path must be bit-identical to the sequential path — positions,
  // aggregates, pruning counters, and the decompressed column.
  Rng rng(13131);
  for (int round = 0; round < 10; ++round) {
    const SchemeDescriptor desc = RandomDescriptor(rng, 2);
    ASSERT_OK(desc.Validate()) << desc.ToString();
    const Column<uint32_t> col = RandomWorkload(rng);
    const AnyColumn input(col);
    const uint64_t chunk_rows = 2 + rng.Below(col.size());
    ThreadPool pool(1 + rng.Below(8));
    const ExecContext ctx{&pool, 1 + rng.Below(4)};

    auto seq = CompressChunked(input, desc, {chunk_rows});
    auto par = CompressChunked(input, desc, {chunk_rows}, ctx);
    ASSERT_OK(seq.status()) << desc.ToString();
    ASSERT_OK(par.status()) << desc.ToString();
    ASSERT_EQ(seq->num_chunks(), par->num_chunks());

    auto seq_back = DecompressChunked(*seq);
    auto par_back = DecompressChunked(*par, ctx);
    ASSERT_OK(seq_back.status()) << desc.ToString();
    ASSERT_OK(par_back.status()) << desc.ToString();
    ASSERT_TRUE(*seq_back == input) << desc.ToString();
    ASSERT_TRUE(*par_back == input) << desc.ToString();

    const uint64_t a = rng.Below(uint64_t{1} << 32);
    const uint64_t b = rng.Below(uint64_t{1} << 32);
    const exec::RangePredicate pred{std::min(a, b), std::max(a, b)};
    auto seq_sel = exec::SelectCompressed(*seq, pred);
    auto par_sel = exec::SelectCompressed(*seq, pred, ctx);
    ASSERT_OK(seq_sel.status()) << desc.ToString();
    ASSERT_OK(par_sel.status()) << desc.ToString();
    ASSERT_EQ(seq_sel->positions, par_sel->positions) << desc.ToString();
    ASSERT_EQ(seq_sel->stats.chunks_pruned, par_sel->stats.chunks_pruned);
    ASSERT_EQ(seq_sel->stats.chunks_full, par_sel->stats.chunks_full);
    ASSERT_EQ(seq_sel->stats.chunks_executed, par_sel->stats.chunks_executed);
    ASSERT_EQ(seq_sel->stats.values_decoded, par_sel->stats.values_decoded);

    auto seq_sum = exec::SumCompressed(*seq);
    auto par_sum = exec::SumCompressed(*seq, ctx);
    ASSERT_OK(seq_sum.status()) << desc.ToString();
    ASSERT_OK(par_sum.status()) << desc.ToString();
    ASSERT_EQ(seq_sum->value, par_sum->value) << desc.ToString();

    auto seq_min = exec::MinCompressed(*seq);
    auto par_min = exec::MinCompressed(*seq, ctx);
    ASSERT_OK(seq_min.status()) << desc.ToString();
    ASSERT_OK(par_min.status()) << desc.ToString();
    ASSERT_EQ(seq_min->value, par_min->value) << desc.ToString();

    auto seq_max = exec::MaxCompressed(*seq);
    auto par_max = exec::MaxCompressed(*seq, ctx);
    ASSERT_OK(seq_max.status()) << desc.ToString();
    ASSERT_OK(par_max.status()) << desc.ToString();
    ASSERT_EQ(seq_max->value, par_max->value) << desc.ToString();
  }
}

TEST(CompositionFuzzTest, OptimizerIsIdempotent) {
  Rng rng(77);
  for (int round = 0; round < 30; ++round) {
    const SchemeDescriptor desc = RandomDescriptor(rng, 3);
    const Column<uint32_t> col = RandomWorkload(rng);
    auto compressed = Compress(AnyColumn(col), desc);
    ASSERT_OK(compressed.status());
    auto plan = BuildDecompressionPlan(*compressed);
    ASSERT_OK(plan.status());
    auto once = OptimizePlan(*plan);
    ASSERT_OK(once.status());
    auto twice = OptimizePlan(*once);
    ASSERT_OK(twice.status());
    EXPECT_EQ(once->ToString(), twice->ToString()) << desc.ToString();
  }
}

}  // namespace
}  // namespace recomp
