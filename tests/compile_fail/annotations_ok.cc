// MUST COMPILE cleanly under clang -Wthread-safety -Werror.
//
// The positive control for the compile-fail harness: exercises the same
// constructs the *_fail.cc cases break — guarded members, MutexLock scopes,
// REQUIRES helpers, TryLock — but with every contract satisfied. If this
// case starts failing, the harness is rejecting correct code and the
// WILL_FAIL cases prove nothing.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  int IncrementLocked() RECOMP_REQUIRES(mu_) { return ++value_; }

  int Increment() {
    recomp::MutexLock lock(&mu_);
    return IncrementLocked();
  }

  int IncrementIfFree() {
    if (!mu_.TryLock()) return -1;
    const int result = ++value_;
    mu_.Unlock();
    return result;
  }

 private:
  recomp::Mutex mu_;
  int value_ RECOMP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.IncrementIfFree() >= 0 ? 0 : 1;
}
