// MUST NOT COMPILE under clang -Wthread-safety -Werror.
//
// Calls a RECOMP_REQUIRES(mu) function without holding mu — the contract
// the store's *Locked() helpers (e.g. AppendableColumn::RollTailLocked)
// rely on. Registered by CMake as a compile-fail ctest case (WILL_FAIL).

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  int IncrementLocked() RECOMP_REQUIRES(mu_) { return ++value_; }

  recomp::Mutex mu_;

 private:
  int value_ RECOMP_GUARDED_BY(mu_) = 0;
};

int CallLockedHelperUnlocked() {
  Counter counter;
  return counter.IncrementLocked();  // error: calling without holding mu_
}

}  // namespace

int main() { return CallLockedHelperUnlocked(); }
