// MUST NOT COMPILE under clang -Wthread-safety -Werror.
//
// Acquires a Mutex on one path and returns without releasing it: the
// analysis requires every path out of a function to leave each capability
// in the same state it was entered with (unless annotated otherwise).
// Registered by CMake as a compile-fail ctest case (WILL_FAIL).

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

recomp::Mutex g_mu;
int g_value RECOMP_GUARDED_BY(g_mu) = 0;

int LockWithoutUnlock(bool touch) {
  g_mu.Lock();
  if (touch) {
    const int seen = g_value;
    g_mu.Unlock();
    return seen;
  }
  return 0;  // error: g_mu still held when the function returns
}

}  // namespace

int main() { return LockWithoutUnlock(false); }
