// MUST NOT COMPILE under clang -Wthread-safety -Werror.
//
// Reads and writes a RECOMP_GUARDED_BY member without holding its mutex.
// Registered by CMake as a compile-fail ctest case (WILL_FAIL): if this
// translation unit ever compiles on a clang build, the annotation macros or
// the Mutex wrapper have silently stopped enforcing the lock contracts.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Account {
  recomp::Mutex mu;
  long balance RECOMP_GUARDED_BY(mu) = 0;
};

long UnguardedReadAndWrite() {
  Account account;
  account.balance += 1;  // error: writing without holding account.mu
  return account.balance;  // error: reading without holding account.mu
}

}  // namespace

int main() { return static_cast<int>(UnguardedReadAndWrite()); }
