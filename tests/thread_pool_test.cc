// Tests for the fixed-size thread pool and ParallelFor: every index runs
// exactly once, completion is awaited, grain-size control partitions
// deterministically, and the sequential path (no pool) is byte-for-byte the
// plain loop.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <vector>

#include "util/thread_pool.h"

namespace recomp {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<uint64_t> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destruction drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPoolTest, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, SingleThreadPoolStillRunsTasks) {
  std::atomic<uint64_t> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(count.load(), 10u);
}

void ExpectCoversAllIndicesOnce(const ExecContext& ctx, uint64_t n) {
  std::vector<std::atomic<uint32_t>> hits(n);
  for (auto& h : hits) h.store(0);
  ParallelFor(ctx, n, [&](uint64_t i) {
    ASSERT_LT(i, n);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroThreadsRunsSubmittedTasksInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  // No workers: Submit must execute inline, not queue forever.
  uint64_t count = 0;
  std::thread::id ran_on;
  pool.Submit([&] {
    ++count;
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  // And a zero-thread pool is a valid sequential ExecContext.
  EXPECT_FALSE((ExecContext{&pool, 1}).parallel());
  EXPECT_FALSE((ExecContext{&pool, 1}).async());
  ExpectCoversAllIndicesOnce(ExecContext{&pool, 1}, 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  for (const uint64_t n : {0ull, 1ull, 2ull, 7ull, 64ull, 1000ull}) {
    for (const uint64_t grain : {1ull, 3ull, 16ull, 10000ull}) {
      ExpectCoversAllIndicesOnce(ExecContext{&pool, grain}, n);
    }
  }
}

TEST(ThreadPoolTest, ParallelForWithoutPoolRunsInIndexOrder) {
  std::vector<uint64_t> order;
  ParallelFor(ExecContext{}, 10, [&](uint64_t i) { order.push_back(i); });
  std::vector<uint64_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForBlocksUntilAllWorkIsDone) {
  ThreadPool pool(4);
  // A visible (non-atomic) sum guarded only by ParallelFor's completion:
  // under TSan this also proves the latch publishes the workers' writes.
  std::vector<uint64_t> squares(512, 0);
  ParallelFor(ExecContext{&pool, 8}, squares.size(),
              [&](uint64_t i) { squares[i] = i * i; });
  uint64_t total = 0;
  for (uint64_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
    total += squares[i];
  }
  const uint64_t n = squares.size();
  EXPECT_EQ(total, (n - 1) * n * (2 * n - 1) / 6);
}

TEST(ThreadPoolTest, ExecContextParallelPredicate) {
  EXPECT_FALSE(ExecContext{}.parallel());
  EXPECT_FALSE(ExecContext{}.async());
  ThreadPool one(1);
  EXPECT_FALSE((ExecContext{&one, 1}).parallel());
  EXPECT_TRUE((ExecContext{&one, 1}).async());
  ThreadPool two(2);
  EXPECT_TRUE((ExecContext{&two, 1}).parallel());
}

TEST(TaskGroupTest, WaitBlocksUntilEveryTaskFinished) {
  ThreadPool pool(4);
  const ExecContext ctx{&pool, 1};
  TaskGroup group;
  // Non-atomic slots published only by Wait(): under TSan this also proves
  // the completion wait synchronizes with the workers' writes.
  std::vector<uint64_t> slots(256, 0);
  for (uint64_t i = 0; i < slots.size(); ++i) {
    group.Run(ctx, [&slots, i] { slots[i] = i + 1; });
  }
  group.Wait();
  EXPECT_EQ(group.pending(), 0u);
  for (uint64_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], i + 1) << "task " << i;
  }
}

TEST(TaskGroupTest, RunsInlineWithoutAPool) {
  TaskGroup group;
  uint64_t count = 0;
  group.Run(ExecContext{}, [&] { ++count; });
  EXPECT_EQ(count, 1u);  // Already ran: no pool means inline.
  EXPECT_EQ(group.pending(), 0u);
  group.Wait();  // A no-op, not a hang.
}

TEST(TaskGroupTest, ReusableAcrossWaits) {
  ThreadPool pool(2);
  const ExecContext ctx{&pool, 1};
  TaskGroup group;
  std::atomic<uint64_t> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      group.Run(ctx, [&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
    EXPECT_EQ(count.load(), 10u * (batch + 1));
  }
}

TEST(ThreadPoolTest, LowPriorityTasksRunAfterQueuedNormalWork) {
  // With the single worker wedged, queue low-priority work first and normal
  // work second: the worker must drain the normal queue before touching the
  // low queue, regardless of submission order — the property that keeps the
  // store's recompression jobs behind live seal jobs.
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.Submit([gate] { gate.wait(); });

  std::mutex mu;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    pool.Submit(
        [&mu, &order, i] {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(100 + i);  // Low batch.
        },
        TaskPriority::kLow);
  }
  for (int i = 0; i < 3; ++i) {
    pool.Submit([&mu, &order, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);  // Normal batch, submitted later.
    });
  }

  TaskGroup fence;
  release.set_value();
  fence.Run(ExecContext{&pool, 1}, [] {}, TaskPriority::kLow);
  fence.Wait();  // Low-priority fence: everything above has drained.

  std::lock_guard<std::mutex> lock(mu);
  const std::vector<int> expected = {0, 1, 2, 100, 101, 102};
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, HighPriorityTasksJumpAheadOfQueuedNormalAndLowWork) {
  // With the single worker wedged, queue normal and low work first and high
  // work last: the worker must still drain high → normal → low — the
  // property that lets the query service's batch scans overtake a burst of
  // queued seal jobs.
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  // The worker must be provably wedged before the batches below are
  // queued: the gate task sits at normal priority, so a high task already
  // queued by the time the worker first dequeues would run ahead of the
  // gate and corrupt the observed order.
  std::promise<void> wedged;
  pool.Submit([gate, &wedged] {
    wedged.set_value();
    gate.wait();
  });
  wedged.get_future().wait();

  std::mutex mu;
  std::vector<int> order;
  for (int i = 0; i < 2; ++i) {
    pool.Submit(
        [&mu, &order, i] {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(200 + i);  // Low batch.
        },
        TaskPriority::kLow);
  }
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&mu, &order, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(100 + i);  // Normal batch.
    });
  }
  for (int i = 0; i < 2; ++i) {
    pool.Submit(
        [&mu, &order, i] {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(i);  // High batch, submitted last.
        },
        TaskPriority::kHigh);
  }

  TaskGroup fence;
  release.set_value();
  fence.Run(ExecContext{&pool, 1}, [] {}, TaskPriority::kLow);
  fence.Wait();  // Low-priority fence: everything above has drained.

  std::lock_guard<std::mutex> lock(mu);
  const std::vector<int> expected = {0, 1, 100, 101, 200, 201};
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ExecContextPriorityRoutesParallelForSubmits) {
  // A kHigh ExecContext must submit its fan-out at kHigh: wedge both
  // workers, queue a normal marker, then ParallelFor at kHigh from another
  // thread — the queued fan-out ranges must all overtake the marker.
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  // Both workers must be provably wedged before anything else is
  // submitted: a kHigh task queued while a worker is still on its way to
  // its gate task would be drained first (high beats normal), and the
  // queue-depth wait below would never be satisfied.
  std::promise<void> wedged_a, wedged_b;
  pool.Submit([gate, &wedged_a] {
    wedged_a.set_value();
    gate.wait();
  });
  pool.Submit([gate, &wedged_b] {
    wedged_b.set_value();
    gate.wait();
  });
  wedged_a.get_future().wait();
  wedged_b.get_future().wait();

  std::mutex mu;
  std::vector<int> order;
  pool.Submit([&mu, &order] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(999);  // Normal marker, queued first.
  });

  ExecContext high{&pool, 1, TaskPriority::kHigh};
  std::thread runner([&] {
    // Four indices → three submitted tasks (the runner thread takes the
    // first range itself); the submitted ranges must overtake the marker.
    ParallelFor(high, 4, [&](uint64_t i) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(static_cast<int>(i));
    });
  });
  // Wait until the fan-out is queued behind the wedge, then release.
  while (pool.queue_depth(TaskPriority::kHigh) < 3) {
    std::this_thread::yield();
  }
  release.set_value();
  runner.join();

  TaskGroup fence;
  fence.Run(ExecContext{&pool, 1}, [] {}, TaskPriority::kLow);
  fence.Wait();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order.back(), 999)
      << "high-priority fan-out should run before the queued normal marker";
}

TEST(ThreadPoolTest, ZeroThreadsRunsLowPriorityInline) {
  ThreadPool pool(0);
  bool ran = false;
  pool.Submit([&ran] { ran = true; }, TaskPriority::kLow);
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, IntrospectionReportsQueueDepthsAndActiveWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.queue_depth(TaskPriority::kNormal), 0u);
  EXPECT_EQ(pool.queue_depth(TaskPriority::kLow), 0u);

  // Wedge the single worker: everything submitted behind it stays queued,
  // so the depths are deterministic while the gate is closed.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> entered;
  pool.Submit([gate, &entered] {
    entered.set_value();
    gate.wait();
  });
  entered.get_future().wait();  // The worker is now *running* the blocker.
  EXPECT_EQ(pool.active_workers(), 1u);

  for (int i = 0; i < 3; ++i) pool.Submit([] {});
  for (int i = 0; i < 2; ++i) pool.Submit([] {}, TaskPriority::kLow);
  EXPECT_EQ(pool.queue_depth(TaskPriority::kNormal), 3u);
  EXPECT_EQ(pool.queue_depth(TaskPriority::kLow), 2u);

  release.set_value();
  TaskGroup fence;
  fence.Run(ExecContext{&pool, 1}, [] {}, TaskPriority::kLow);
  fence.Wait();  // Low-priority fence: both queues have drained.
  EXPECT_EQ(pool.queue_depth(TaskPriority::kNormal), 0u);
  EXPECT_EQ(pool.queue_depth(TaskPriority::kLow), 0u);
}

TEST(ThreadPoolTest, ZeroThreadPoolReportsEmptyIntrospection) {
  ThreadPool pool(0);
  pool.Submit([] {});  // Runs inline; nothing ever queues.
  EXPECT_EQ(pool.queue_depth(TaskPriority::kNormal), 0u);
  EXPECT_EQ(pool.queue_depth(TaskPriority::kLow), 0u);
  EXPECT_EQ(pool.active_workers(), 0u);
}

TEST(ThreadPoolTest, DestructorDrainsPendingLowPriorityWork) {
  // Wedge the single worker, stack up low-priority work behind it, then
  // destroy the pool while that work is still queued. The destructor's
  // contract is drain-then-join — background recompression jobs already
  // submitted must run, not vanish — so every task must have executed by
  // the time the destructor returns.
  std::atomic<int> ran{0};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  {
    ThreadPool pool(1);
    pool.Submit([gate] { gate.wait(); });
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); }, TaskPriority::kLow);
    }
    release.set_value();
    // ~ThreadPool runs here with (up to) 16 low-priority tasks pending.
  }
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace recomp
