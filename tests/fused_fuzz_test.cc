// Fuzz-style agreement tests for the fused decode cascade (core/fused.h):
// for every FusedShape with a dedicated kernel, across random widths,
// lengths, and exception densities, FusedDecompress must agree bit for bit
// with the per-scheme reference recursion under both dispatch paths
// (ForceScalar on and off). Randomly damaged envelopes must behave
// identically too: both decoders succeed with the same bytes, or both fail.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/catalog.h"
#include "core/fused.h"
#include "core/pipeline.h"
#include "ops/dispatch.h"
#include "util/bits.h"
#include "util/random.h"

namespace recomp {
namespace {

struct ShapeSpec {
  const char* name;
  FusedShape expected;
  SchemeDescriptor desc;
  AnyColumn data;
};

Column<uint32_t> RandomMasked(Rng& rng, uint64_t n, int width) {
  Column<uint32_t> col;
  const uint32_t mask = bits::LowMask32(width);
  for (uint64_t i = 0; i < n; ++i) {
    col.push_back(static_cast<uint32_t>(rng.Next()) & mask);
  }
  return col;
}

/// Mostly `base_width`-bit values with `density` of full-width outliers.
Column<uint32_t> OutlierData(Rng& rng, uint64_t n, int base_width,
                             double density) {
  Column<uint32_t> col = RandomMasked(rng, n, base_width);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Below(1000) < static_cast<uint64_t>(density * 1000)) {
      col[i] = static_cast<uint32_t>(rng.Next());
    }
  }
  return col;
}

Column<uint32_t> RunData(Rng& rng, uint64_t n, uint64_t max_run, int width) {
  Column<uint32_t> col;
  const uint32_t mask = bits::LowMask32(width);
  while (col.size() < n) {
    const uint64_t len = std::min<uint64_t>(1 + rng.Below(max_run),
                                            n - col.size());
    const uint32_t v = static_cast<uint32_t>(rng.Next()) & mask;
    for (uint64_t i = 0; i < len; ++i) col.push_back(v);
  }
  return col;
}

/// One random instance of every fused shape.
std::vector<ShapeSpec> BuildSpecs(uint64_t seed) {
  Rng rng(seed);
  std::vector<ShapeSpec> specs;
  const uint64_t n = 1 + rng.Below(4000);
  const int width = static_cast<int>(rng.Below(33));
  const uint64_t ell = uint64_t{16} << rng.Below(4);  // 16..128
  const double density =
      std::vector<double>{0.0, 0.01, 0.1, 0.5}[rng.Below(4)];

  specs.push_back({"NS", FusedShape::kNs, Ns(),
                   AnyColumn(RandomMasked(rng, n, width))});
  {
    Column<uint64_t> wide;
    const uint64_t mask = bits::LowMask64(static_cast<int>(rng.Below(65)));
    for (uint64_t i = 0; i < n; ++i) wide.push_back(rng.Next() & mask);
    specs.push_back(
        {"NS-u64", FusedShape::kNs, Ns(), AnyColumn(std::move(wide))});
  }
  specs.push_back({"FOR", FusedShape::kFor, MakeFor(ell),
                   AnyColumn(RandomMasked(rng, n, width))});
  specs.push_back({"PFOR", FusedShape::kPfor, MakePfor(ell),
                   AnyColumn(OutlierData(rng, n, 6, density))});
  specs.push_back({"DELTA-ZZ-NS", FusedShape::kDeltaZigZagNs, MakeDeltaNs(),
                   AnyColumn(RandomMasked(rng, n, width))});
  {
    Column<uint64_t> sorted;
    uint64_t acc = rng.Next() & bits::LowMask64(40);
    for (uint64_t i = 0; i < n; ++i) {
      acc += rng.Below(1 + (uint64_t{1} << rng.Below(20)));
      sorted.push_back(acc);
    }
    specs.push_back({"DELTA-ZZ-NS-u64", FusedShape::kDeltaZigZagNs,
                     MakeDeltaNs(), AnyColumn(std::move(sorted))});
  }
  specs.push_back({"PATCHED-NS", FusedShape::kPatchedNs,
                   Patched().With("base", Ns()),
                   AnyColumn(OutlierData(rng, n, 7, density))});
  specs.push_back(
      {"DELTA-ZZ-PATCHED-NS", FusedShape::kDeltaZigZagPatchedNs,
       Delta().With("deltas",
                    ZigZag().With("recoded", Patched().With("base", Ns()))),
       AnyColumn(OutlierData(rng, n, 5, density))});
  specs.push_back({"RLE", FusedShape::kRle, MakeRle(),
                   AnyColumn(RunData(rng, n, 40, width))});
  specs.push_back({"RLE-NS", FusedShape::kRleNs, MakeRleNs(),
                   AnyColumn(RunData(rng, n, 40, width))});
  specs.push_back({"RLE-DELTA", FusedShape::kRleNs, MakeRleDelta(),
                   AnyColumn(RunData(rng, n, 40, width))});
  return specs;
}

/// Decodes with both entry points under the given dispatch mode; asserts
/// agreement and returns the fused result.
void ExpectAgreement(const ShapeSpec& spec, const CompressedColumn& compressed,
                     bool scalar) {
  ops::ForceScalar(scalar);
  Result<AnyColumn> fused = FusedDecompress(compressed);
  Result<AnyColumn> reference = Decompress(compressed);
  ops::ForceScalar(false);
  ASSERT_TRUE(fused.ok()) << spec.name << ": " << fused.status().ToString();
  ASSERT_TRUE(reference.ok())
      << spec.name << ": " << reference.status().ToString();
  EXPECT_TRUE(*fused == spec.data) << spec.name << " scalar=" << scalar;
  EXPECT_TRUE(*fused == *reference) << spec.name << " scalar=" << scalar;
}

/// Collects every terminal packed part (mutation targets).
void CollectPackedParts(CompressedNode* node,
                        std::vector<CompressedPart*>* out) {
  for (auto& [name, part] : node->parts) {
    if (part.is_terminal()) {
      if (part.column->is_packed()) out->push_back(&part);
    } else {
      CollectPackedParts(part.sub.get(), out);
    }
  }
}

/// Corruption agreement: a damaged envelope must decode identically through
/// both entry points — same bytes, or failure on both.
void ExpectCorruptionAgreement(const ShapeSpec& spec,
                               const CompressedColumn& compressed, Rng& rng) {
  for (const bool truncate : {false, true}) {
    CompressedColumn damaged = compressed.Clone();
    std::vector<CompressedPart*> targets;
    CollectPackedParts(&damaged.root(), &targets);
    if (targets.empty()) return;
    CompressedPart* target = targets[rng.Below(targets.size())];
    PackedColumn packed = target->column->packed();
    if (packed.bytes.empty()) continue;
    if (truncate) {
      packed.bytes.pop_back();
    } else {
      const uint64_t byte = rng.Below(packed.bytes.size());
      packed.bytes[byte] ^= static_cast<uint8_t>(1u << rng.Below(8));
    }
    target->column = AnyColumn(std::move(packed));

    for (const bool scalar : {false, true}) {
      ops::ForceScalar(scalar);
      Result<AnyColumn> fused = FusedDecompress(damaged);
      Result<AnyColumn> reference = Decompress(damaged);
      ops::ForceScalar(false);
      ASSERT_EQ(fused.ok(), reference.ok())
          << spec.name << " truncate=" << truncate << " scalar=" << scalar
          << " fused=" << fused.status().ToString()
          << " reference=" << reference.status().ToString();
      if (fused.ok()) {
        EXPECT_TRUE(*fused == *reference)
            << spec.name << " truncate=" << truncate << " scalar=" << scalar;
      }
    }
  }
}

class FusedFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FusedFuzz, KernelsAgreeWithReferenceRecursion) {
  Rng rng(90000 + GetParam());
  for (ShapeSpec& spec : BuildSpecs(GetParam())) {
    ASSERT_EQ(ClassifyFusedDescriptor(spec.desc), spec.expected) << spec.name;
    Result<CompressedColumn> compressed = Compress(spec.data, spec.desc);
    ASSERT_TRUE(compressed.ok())
        << spec.name << ": " << compressed.status().ToString();
    EXPECT_EQ(ClassifyFusedShape(compressed->root()), spec.expected)
        << spec.name;
    ExpectAgreement(spec, *compressed, /*scalar=*/false);
    ExpectAgreement(spec, *compressed, /*scalar=*/true);
    ExpectCorruptionAgreement(spec, *compressed, rng);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedFuzz, ::testing::Range(uint64_t{0},
                                                            uint64_t{12}));

}  // namespace
}  // namespace recomp
