// Tests for DELTA (and its classic composition DELTA ∘ ZIGZAG ∘ NS).

#include <gtest/gtest.h>

#include "schemes/scheme.h"
#include "test_util.h"
#include "util/bits.h"

namespace recomp {
namespace {

using testutil::ExpectRoundTrip;
using testutil::RunsColumn;
using testutil::UniformColumn;

TEST(DeltaSchemeTest, KnownDeltas) {
  Column<uint32_t> col{10, 12, 11, 11};
  auto compressed = Compress(AnyColumn(col), Delta());
  ASSERT_OK(compressed.status());
  const auto& part = compressed->root().parts.at("deltas");
  ASSERT_TRUE(part.is_terminal());
  // v[-1] = 0 convention: deltas[0] = 10; 11-12 wraps.
  EXPECT_EQ(part.column->As<uint32_t>(),
            (Column<uint32_t>{10, 2, ~uint32_t{0}, 0}));
}

TEST(DeltaSchemeTest, RoundTripsArbitraryData) {
  // Wrapping makes DELTA a bijection: random data roundtrips too.
  ExpectRoundTrip(AnyColumn(UniformColumn<uint32_t>(1000, ~uint32_t{0}, 7)),
                  Delta());
  ExpectRoundTrip(AnyColumn(UniformColumn<uint64_t>(1000, ~uint64_t{0}, 8)),
                  Delta());
  ExpectRoundTrip(AnyColumn(Column<uint8_t>{255, 0, 128, 1}), Delta());
}

TEST(DeltaSchemeTest, EmptyAndSingle) {
  ExpectRoundTrip(AnyColumn(Column<uint32_t>{}), Delta());
  ExpectRoundTrip(AnyColumn(Column<uint32_t>{12345}), Delta());
}

TEST(DeltaSchemeTest, SortedDataPacksNarrow) {
  // Monotone dates: DELTA ∘ ZIGZAG ∘ NS shrinks, but the large head delta
  // (v[0] - 0 = 1000) forces NS's global width up to 11 bits.
  Column<uint32_t> col = RunsColumn(10000, 0.05, 9);
  SchemeDescriptor desc =
      Delta().With("deltas", ZigZag().With("recoded", Ns()));
  CompressedColumn c = ExpectRoundTrip(AnyColumn(col), desc);
  EXPECT_GT(c.Ratio(), 2.5);

  // The paper's L0 lesson applies: PATCHED absorbs the single wide head
  // delta, letting the base width drop to the 3 bits the steps need.
  SchemeDescriptor patched_desc = Delta().With(
      "deltas", ZigZag().With("recoded", Patched().With("base", Ns())));
  CompressedColumn p = ExpectRoundTrip(AnyColumn(col), patched_desc);
  EXPECT_LT(p.PayloadBytes(), c.PayloadBytes());
  EXPECT_GT(p.Ratio(), 8.0);
}

TEST(DeltaSchemeTest, DeltaOfDeltaForLinearData) {
  // Second-order delta turns an arithmetic progression into near-constants.
  Column<uint32_t> col;
  for (uint32_t i = 0; i < 4096; ++i) col.push_back(1000 + 7 * i);
  SchemeDescriptor desc = Delta().With(
      "deltas", Delta().With("deltas", ZigZag().With("recoded", Ns())));
  CompressedColumn c = ExpectRoundTrip(AnyColumn(col), desc);
  EXPECT_GT(c.Ratio(), 2.0);
}

TEST(DeltaSchemeTest, SignedInputRejected) {
  EXPECT_FALSE(Compress(AnyColumn(Column<int32_t>{1, 2}), Delta()).ok());
}

TEST(VByteUnderDeltaTest, LogMetricResidual) {
  // The paper's variable-width alternative to NS under DELTA.
  Column<uint32_t> col = RunsColumn(5000, 0.1, 10);
  SchemeDescriptor desc =
      Delta().With("deltas", ZigZag().With("recoded", VByte()));
  CompressedColumn c = ExpectRoundTrip(AnyColumn(col), desc);
  // Small deltas cost one byte each.
  EXPECT_LE(c.PayloadBytes(), 5000u + 8);
}

}  // namespace
}  // namespace recomp
