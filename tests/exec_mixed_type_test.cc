// Exec-layer coverage for non-uint32 element types and ragged geometries:
// the pushdowns and approximations dispatch per type and must stay exact on
// uint8/uint16/uint64 columns and on segment counts that don't divide n.

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/pipeline.h"
#include "exec/aggregate.h"
#include "exec/approx.h"
#include "exec/point_access.h"
#include "exec/selection.h"
#include "ops/reduce.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

TEST(MixedTypeTest, Uint64SelectionThroughDict) {
  Rng rng(1);
  Column<uint64_t> col;
  for (int i = 0; i < 5000; ++i) {
    col.push_back((uint64_t{1} << 40) + rng.Below(64) * 1000000007ull);
  }
  auto compressed = Compress(AnyColumn(col), MakeDictNs());
  ASSERT_OK(compressed.status());
  exec::RangePredicate pred{uint64_t{1} << 40,
                            (uint64_t{1} << 40) + 30000000000ull};
  auto result = exec::SelectCompressed(*compressed, pred);
  ASSERT_OK(result.status());
  Column<uint32_t> expected;
  for (uint64_t i = 0; i < col.size(); ++i) {
    if (col[i] >= pred.lo && col[i] <= pred.hi) {
      expected.push_back(static_cast<uint32_t>(i));
    }
  }
  EXPECT_EQ(result->positions, expected);
}

TEST(MixedTypeTest, Uint8RunsEndToEnd) {
  Rng rng(2);
  Column<uint8_t> col;
  uint8_t v = 0;
  for (int i = 0; i < 3000; ++i) {
    if (rng.Bernoulli(0.05)) v = static_cast<uint8_t>(rng.Below(256));
    col.push_back(v);
  }
  auto compressed = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(compressed.status());
  auto sum = exec::SumCompressed(*compressed);
  ASSERT_OK(sum.status());
  EXPECT_EQ(sum->value, ops::Sum(col));
  auto point = exec::GetAt(*compressed, 1500);
  ASSERT_OK(point.status());
  EXPECT_EQ(point->value, col[1500]);
}

TEST(MixedTypeTest, Uint16ForAggregates) {
  Rng rng(3);
  Column<uint16_t> col;
  uint16_t level = 0;
  for (int i = 0; i < 10000; ++i) {
    if (i % 500 == 0) level = static_cast<uint16_t>(rng.Below(60000));
    col.push_back(static_cast<uint16_t>(
        std::min<uint32_t>(65535, level + rng.Below(16))));
  }
  auto compressed = Compress(AnyColumn(col), MakeFor(500));
  ASSERT_OK(compressed.status());
  auto sum = exec::SumCompressed(*compressed);
  auto min = exec::MinCompressed(*compressed);
  auto max = exec::MaxCompressed(*compressed);
  ASSERT_OK(sum.status());
  ASSERT_OK(min.status());
  ASSERT_OK(max.status());
  EXPECT_EQ(sum->value, ops::Sum(col));
  EXPECT_EQ(min->value, *ops::Min(col));
  EXPECT_EQ(max->value, *ops::Max(col));
  EXPECT_EQ(sum->strategy, exec::Strategy::kStepMass);
}

TEST(MixedTypeTest, ApproxSumWithRaggedTail) {
  // n deliberately not a multiple of ell: the final short segment must be
  // weighted by its true length in both bounds.
  Rng rng(4);
  Column<uint32_t> col;
  for (int i = 0; i < 10000 + 137; ++i) {
    col.push_back(1000 + static_cast<uint32_t>(rng.Below(64)));
  }
  auto compressed = Compress(AnyColumn(col), MakeFor(512));
  ASSERT_OK(compressed.status());
  const uint64_t exact = ops::Sum(col);
  auto coarse = exec::ApproximateSum(*compressed);
  ASSERT_OK(coarse.status());
  EXPECT_LE(coarse->lower, exact);
  EXPECT_GE(coarse->upper, exact);
  auto full = exec::RefineSum(*compressed, coarse->total_segments);
  ASSERT_OK(full.status());
  EXPECT_EQ(full->lower, exact);
  EXPECT_EQ(full->upper, exact);
}

TEST(MixedTypeTest, RefineBeyondTotalClamps) {
  Column<uint32_t> col(1000, 7);
  auto compressed = Compress(AnyColumn(col), MakeFor(128));
  ASSERT_OK(compressed.status());
  auto refined = exec::RefineSum(*compressed, 1u << 20);
  ASSERT_OK(refined.status());
  EXPECT_EQ(refined->refined_segments, refined->total_segments);
  EXPECT_TRUE(refined->IsExact());
}

TEST(MixedTypeTest, Uint64ApproxBoundsSaturate) {
  // Values near 2^40 with a wide residual: interval arithmetic must not
  // wrap in uint64 for this magnitude.
  Rng rng(5);
  Column<uint64_t> col;
  for (int i = 0; i < 4096; ++i) {
    col.push_back((uint64_t{1} << 40) + rng.Below(1u << 16));
  }
  auto compressed = Compress(AnyColumn(col), MakeFor(256));
  ASSERT_OK(compressed.status());
  const uint64_t exact = ops::Sum(col);
  auto coarse = exec::ApproximateSum(*compressed);
  ASSERT_OK(coarse.status());
  EXPECT_LE(coarse->lower, exact);
  EXPECT_GE(coarse->upper, exact);
}

}  // namespace
}  // namespace recomp
