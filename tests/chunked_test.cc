// Tests for chunked compressed columns: chunked <-> whole-column agreement
// for every exec operator on mixed-shape data, zone-map pruning, per-chunk
// scheme selection, and the v1/v2 serialization roundtrips.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/catalog.h"
#include "core/chunked.h"
#include "core/pipeline.h"
#include "core/serialize.h"
#include "exec/aggregate.h"
#include "exec/point_access.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

using exec::RangePredicate;

constexpr uint64_t kChunk = 4096;

/// A drifting column: runs, then noise, then a sorted stretch — the shape
/// where one whole-column scheme choice leaves ratio on the table.
Column<uint32_t> MixedShapes(uint64_t part, uint64_t seed) {
  Column<uint32_t> out = gen::SortedRuns(part, 40.0, 2, seed);
  Column<uint32_t> noise = gen::Uniform(part, uint64_t{1} << 24, seed + 1);
  out.insert(out.end(), noise.begin(), noise.end());
  for (uint64_t i = 0; i < part; ++i) {
    out.push_back((uint32_t{1} << 25) + static_cast<uint32_t>(3 * i));
  }
  return out;
}

/// Reference: decompress every chunk, filter the plain rows.
Column<uint32_t> ReferenceSelect(const Column<uint32_t>& col,
                                 const RangePredicate& pred) {
  Column<uint32_t> positions;
  for (uint64_t i = 0; i < col.size(); ++i) {
    if (col[i] >= pred.lo && col[i] <= pred.hi) {
      positions.push_back(static_cast<uint32_t>(i));
    }
  }
  return positions;
}

TEST(ChunkedTest, RoundTripsAcrossChunkBoundaryShapes) {
  // n < chunk, n == chunk, n % chunk != 0, n % chunk == 0.
  const uint64_t sizes[] = {kChunk - 1, kChunk, kChunk + 1, 3 * kChunk + 77,
                            4 * kChunk};
  for (const uint64_t n : sizes) {
    const Column<uint32_t> col = gen::SortedRuns(n, 12.0, 3, n);
    const AnyColumn input(col);
    auto chunked = CompressChunked(input, MakeRle(), {kChunk});
    ASSERT_OK(chunked.status()) << n;
    EXPECT_EQ(chunked->size(), n);
    EXPECT_EQ(chunked->num_chunks(), (n + kChunk - 1) / kChunk);
    auto back = DecompressChunked(*chunked);
    ASSERT_OK(back.status()) << n;
    EXPECT_TRUE(*back == input) << n;
  }
}

TEST(ChunkedTest, EmptyColumnIsOneEmptyChunk) {
  const AnyColumn input((Column<uint32_t>{}));
  auto chunked = CompressChunked(input, MakeRle(), {kChunk});
  ASSERT_OK(chunked.status());
  EXPECT_EQ(chunked->num_chunks(), 1u);
  EXPECT_EQ(chunked->size(), 0u);
  auto back = DecompressChunked(*chunked);
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == input);

  auto sum = exec::SumCompressed(*chunked);
  ASSERT_OK(sum.status());
  EXPECT_EQ(sum->value, 0u);
  EXPECT_FALSE(exec::MinCompressed(*chunked).ok());
  EXPECT_FALSE(exec::MaxCompressed(*chunked).ok());
  auto selection = exec::SelectCompressed(*chunked, RangePredicate{});
  ASSERT_OK(selection.status());
  EXPECT_TRUE(selection->positions.empty());
  EXPECT_FALSE(exec::GetAt(*chunked, 0).ok());

  auto auto_chunked = CompressChunkedAuto(input, {kChunk});
  ASSERT_OK(auto_chunked.status());
  EXPECT_EQ(auto_chunked->num_chunks(), 1u);
  EXPECT_EQ(auto_chunked->size(), 0u);
}

TEST(ChunkedTest, ZeroChunkRowsRejected) {
  const AnyColumn input(Column<uint32_t>{1, 2, 3});
  EXPECT_FALSE(CompressChunked(input, MakeRle(), {0}).ok());
  EXPECT_FALSE(CompressChunkedAuto(input, {0}).ok());
}

TEST(ChunkedTest, ZoneMapsMatchChunkExtrema) {
  const Column<uint32_t> col = MixedShapes(kChunk, 17);
  auto chunked = CompressChunked(AnyColumn(col), Ns(), {kChunk});
  ASSERT_OK(chunked.status());
  for (uint64_t i = 0; i < chunked->num_chunks(); ++i) {
    const ZoneMap& zone = chunked->chunk(i).zone;
    ASSERT_TRUE(zone.has_minmax);
    const auto begin = col.begin() + zone.row_begin;
    const auto end = begin + zone.row_count;
    EXPECT_EQ(zone.min, *std::min_element(begin, end)) << i;
    EXPECT_EQ(zone.max, *std::max_element(begin, end)) << i;
  }
}

TEST(ChunkedTest, AutoPicksDifferentDescriptorsPerChunk) {
  const Column<uint32_t> col = MixedShapes(2 * kChunk, 23);
  const AnyColumn input(col);
  auto chunked = CompressChunkedAuto(input, {kChunk});
  ASSERT_OK(chunked.status());
  std::set<std::string> descriptors;
  for (const auto& chunk : chunked->chunks()) {
    descriptors.insert(chunk->column.Descriptor().ToString());
  }
  EXPECT_GE(descriptors.size(), 2u) << chunked->ToString();
  auto back = DecompressChunked(*chunked);
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == input);
}

TEST(ChunkedTest, ChooseSchemesChunkedMatchesAutoCompression) {
  const Column<uint32_t> col = MixedShapes(kChunk, 19);
  const AnyColumn input(col);
  auto choices = ChooseSchemesChunked(input, kChunk);
  ASSERT_OK(choices.status());
  auto chunked = CompressChunkedAuto(input, {kChunk});
  ASSERT_OK(chunked.status());
  ASSERT_EQ(choices->size(), chunked->num_chunks());
  uint64_t expected_begin = 0;
  for (uint64_t i = 0; i < choices->size(); ++i) {
    const ChunkSchemeChoice& choice = (*choices)[i];
    EXPECT_EQ(choice.row_begin, expected_begin);
    EXPECT_EQ(choice.row_count, chunked->chunk(i).zone.row_count);
    // The standalone entry point and the auto compressor agree on the
    // resolved composition's shape (parameters resolve at compress time).
    EXPECT_EQ(choice.descriptor.kind,
              chunked->chunk(i).column.Descriptor().kind);
    expected_begin += choice.row_count;
  }
  EXPECT_EQ(expected_begin, col.size());

  auto empty = ChooseSchemesChunked(AnyColumn(Column<uint32_t>{}), kChunk);
  ASSERT_OK(empty.status());
  ASSERT_EQ(empty->size(), 1u);
  EXPECT_EQ((*empty)[0].row_count, 0u);
  EXPECT_FALSE(ChooseSchemesChunked(input, 0).ok());
}

TEST(ChunkedTest, WholeColumnIsTheSingleChunkSpecialCase) {
  const Column<uint32_t> col = gen::SortedRuns(10000, 20.0, 3, 29);
  auto whole = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(whole.status());
  auto chunked = CompressChunked(AnyColumn(col), MakeRle(), {col.size()});
  ASSERT_OK(chunked.status());
  ASSERT_EQ(chunked->num_chunks(), 1u);
  EXPECT_EQ(chunked->chunk(0).column.Descriptor(), whole->Descriptor());
  EXPECT_EQ(chunked->PayloadBytes(), whole->PayloadBytes());

  const ChunkedCompressedColumn wrapped =
      ChunkedCompressedColumn::FromSingle(whole->Clone());
  EXPECT_EQ(wrapped.num_chunks(), 1u);
  EXPECT_EQ(wrapped.size(), col.size());
  auto back = DecompressChunked(wrapped);
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == AnyColumn(col));
}

// ---------------------------------------------------------------------------
// Chunked <-> whole-column operator agreement
// ---------------------------------------------------------------------------

void ExpectOperatorsAgree(const Column<uint32_t>& col,
                          const ChunkedCompressedColumn& chunked) {
  // Selection over randomized predicates.
  Rng rng(101);
  const uint64_t hi_bound = uint64_t{1} << 26;
  for (int trial = 0; trial < 12; ++trial) {
    uint64_t a = rng.Below(hi_bound);
    uint64_t b = rng.Below(hi_bound);
    RangePredicate pred{std::min(a, b), std::max(a, b)};
    auto result = exec::SelectCompressed(chunked, pred);
    ASSERT_OK(result.status());
    EXPECT_EQ(result->positions, ReferenceSelect(col, pred))
        << "[" << pred.lo << "," << pred.hi << "]";
  }

  // Aggregates.
  uint64_t ref_sum = 0;
  for (const uint32_t v : col) ref_sum += v;
  auto sum = exec::SumCompressed(chunked);
  auto min = exec::MinCompressed(chunked);
  auto max = exec::MaxCompressed(chunked);
  ASSERT_OK(sum.status());
  ASSERT_OK(min.status());
  ASSERT_OK(max.status());
  EXPECT_EQ(sum->value, ref_sum);
  EXPECT_EQ(min->value, *std::min_element(col.begin(), col.end()));
  EXPECT_EQ(max->value, *std::max_element(col.begin(), col.end()));

  // Point access, including every chunk boundary.
  std::vector<uint64_t> rows = {0, col.size() - 1, col.size() / 2};
  for (uint64_t i = 0; i < chunked.num_chunks(); ++i) {
    rows.push_back(chunked.chunk(i).zone.row_begin);
  }
  for (int trial = 0; trial < 20; ++trial) rows.push_back(rng.Below(col.size()));
  for (const uint64_t row : rows) {
    auto point = exec::GetAt(chunked, row);
    ASSERT_OK(point.status()) << row;
    EXPECT_EQ(point->value, col[row]) << row;
  }
}

TEST(ChunkedTest, OperatorsAgreeWithSharedDescriptor) {
  const Column<uint32_t> col = MixedShapes(kChunk + 123, 31);
  for (const SchemeDescriptor& desc :
       {MakeRle(), MakeFor(256), Ns(), MakeDeltaNs()}) {
    auto chunked = CompressChunked(AnyColumn(col), desc, {kChunk});
    ASSERT_OK(chunked.status()) << desc.ToString();
    ExpectOperatorsAgree(col, *chunked);
  }
}

TEST(ChunkedTest, OperatorsAgreeWithAutoDescriptors) {
  const Column<uint32_t> col = MixedShapes(kChunk + 123, 37);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  ExpectOperatorsAgree(col, *chunked);
}

TEST(ChunkedTest, ZoneMapsPruneChunksOnSortedRuns) {
  // Globally sorted data: chunk value ranges are nearly disjoint, so a
  // narrow predicate must skip most chunks without touching their payloads.
  const Column<uint32_t> col = gen::SortedRuns(16 * kChunk, 25.0, 3, 41);
  auto chunked = CompressChunked(AnyColumn(col), MakeRle(), {kChunk});
  ASSERT_OK(chunked.status());
  const uint32_t pivot = col[col.size() / 2];
  RangePredicate pred{pivot, pivot + 5};
  auto result = exec::SelectCompressed(*chunked, pred);
  ASSERT_OK(result.status());
  EXPECT_EQ(result->positions, ReferenceSelect(col, pred));
  EXPECT_EQ(result->stats.chunks_total, chunked->num_chunks());
  EXPECT_GE(result->stats.chunks_pruned, 1u);
  EXPECT_GE(result->stats.chunks_pruned, chunked->num_chunks() - 3);
  EXPECT_LE(result->stats.chunks_executed, 3u);

  // A predicate covering everything: chunks are emitted from zone maps
  // alone, with no per-chunk dispatch at all.
  auto all = exec::SelectCompressed(*chunked, RangePredicate{});
  ASSERT_OK(all.status());
  EXPECT_EQ(all->positions.size(), col.size());
  EXPECT_EQ(all->stats.chunks_full, chunked->num_chunks());
  EXPECT_EQ(all->stats.values_decoded, 0u);
}

TEST(ChunkedTest, ChunkedStatsReportPerChunkStrategies) {
  const Column<uint32_t> col = MixedShapes(kChunk, 43);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  // A predicate overlapping every zone forces per-chunk dispatch.
  const uint64_t lo = 1;
  auto result = exec::SelectCompressed(*chunked, RangePredicate{lo, lo + (1u << 25)});
  ASSERT_OK(result.status());
  uint64_t strategy_total = 0;
  for (int s = 0; s < exec::kNumStrategies; ++s) {
    strategy_total += result->stats.strategy_chunks[s];
  }
  EXPECT_EQ(strategy_total, result->stats.chunks_executed);
  EXPECT_EQ(result->stats.per_chunk.size(), result->stats.chunks_executed);

  // Min/max never touch payloads when every chunk has a zone map.
  auto min = exec::MinCompressed(*chunked);
  ASSERT_OK(min.status());
  EXPECT_EQ(min->chunks_executed, 0u);
  EXPECT_EQ(min->chunks_pruned, chunked->num_chunks());
  EXPECT_EQ(min->strategy_chunks[static_cast<int>(
                exec::Strategy::kZoneMapOnly)],
            chunked->num_chunks());
}

TEST(ChunkedTest, SignedColumnsRejectedByChunkedOperators) {
  auto chunked = CompressChunked(AnyColumn(Column<int32_t>{1, -2, 3}),
                                 Rpe(), {kChunk});
  ASSERT_OK(chunked.status());
  EXPECT_FALSE(chunked->chunk(0).zone.has_minmax);
  EXPECT_FALSE(exec::SelectCompressed(*chunked, RangePredicate{}).ok());
  EXPECT_FALSE(exec::SumCompressed(*chunked).ok());
}

// ---------------------------------------------------------------------------
// Serialization v2
// ---------------------------------------------------------------------------

TEST(ChunkedTest, SerializeV2RoundTrip) {
  const Column<uint32_t> col = MixedShapes(kChunk + 200, 47);
  const AnyColumn input(col);
  auto chunked = CompressChunkedAuto(input, {kChunk});
  ASSERT_OK(chunked.status());
  auto buffer = Serialize(*chunked);
  ASSERT_OK(buffer.status());
  EXPECT_EQ(buffer->size(), SerializedSize(*chunked));
  auto restored = DeserializeChunked(*buffer);
  ASSERT_OK(restored.status());
  ASSERT_EQ(restored->num_chunks(), chunked->num_chunks());
  for (uint64_t i = 0; i < restored->num_chunks(); ++i) {
    const ZoneMap& a = chunked->chunk(i).zone;
    const ZoneMap& b = restored->chunk(i).zone;
    EXPECT_EQ(a.row_begin, b.row_begin);
    EXPECT_EQ(a.row_count, b.row_count);
    EXPECT_EQ(a.has_minmax, b.has_minmax);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    EXPECT_EQ(chunked->chunk(i).column.Descriptor(),
              restored->chunk(i).column.Descriptor());
  }
  auto back = DecompressChunked(*restored);
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == input);
}

TEST(ChunkedTest, DeserializeChunkedReadsV1Buffers) {
  const Column<uint32_t> col = gen::SortedRuns(5000, 15.0, 2, 53);
  auto whole = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(whole.status());
  auto buffer = Serialize(*whole);
  ASSERT_OK(buffer.status());
  auto restored = DeserializeChunked(*buffer);
  ASSERT_OK(restored.status());
  EXPECT_EQ(restored->num_chunks(), 1u);
  EXPECT_EQ(restored->size(), col.size());
  EXPECT_FALSE(restored->chunk(0).zone.has_minmax);
  auto back = DecompressChunked(*restored);
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == AnyColumn(col));
}

TEST(ChunkedTest, DeserializeRejectsV2ForWholeColumnReader) {
  auto chunked =
      CompressChunked(AnyColumn(Column<uint32_t>{1, 2, 3}), Ns(), {2});
  ASSERT_OK(chunked.status());
  auto buffer = Serialize(*chunked);
  ASSERT_OK(buffer.status());
  EXPECT_EQ(Deserialize(*buffer).status().code(), StatusCode::kCorruption);
}

TEST(ChunkedTest, V2EveryTruncationRejected) {
  const Column<uint32_t> col = gen::SortedRuns(2000, 8.0, 2, 59);
  auto chunked = CompressChunked(AnyColumn(col), MakeRle(), {512});
  ASSERT_OK(chunked.status());
  auto buffer = Serialize(*chunked);
  ASSERT_OK(buffer.status());
  for (size_t len = 0; len < buffer->size(); len += 7) {
    std::vector<uint8_t> prefix(buffer->begin(), buffer->begin() + len);
    EXPECT_FALSE(DeserializeChunked(prefix).ok()) << "prefix length " << len;
  }
  std::vector<uint8_t> extended = *buffer;
  extended.push_back(0);
  EXPECT_EQ(DeserializeChunked(extended).status().code(),
            StatusCode::kCorruption);
}

TEST(ChunkedTest, V2RandomBitFlipsNeverCrash) {
  const Column<uint32_t> col = gen::SortedRuns(600, 6.0, 2, 61);
  auto chunked = CompressChunked(AnyColumn(col), MakeRleNs(), {256});
  ASSERT_OK(chunked.status());
  auto buffer = Serialize(*chunked);
  ASSERT_OK(buffer.status());
  Rng rng(67);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> corrupted = *buffer;
    corrupted[rng.Below(corrupted.size())] ^=
        static_cast<uint8_t>(1 + rng.Below(255));
    auto restored = DeserializeChunked(corrupted);
    if (restored.ok()) {
      auto back = DecompressChunked(*restored);  // Either is acceptable.
      (void)back;
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace recomp
