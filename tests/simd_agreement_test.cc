// Property tests pinning the AVX2 kernels to the scalar reference: for every
// supported width and awkward length, both dispatch paths must agree bit for
// bit. When the host lacks AVX2 these tests degenerate to scalar-vs-scalar
// and still pass.

#include <gtest/gtest.h>

#include "ops/dispatch.h"
#include "ops/elementwise.h"
#include "ops/gather.h"
#include "ops/pack.h"
#include "ops/prefix_sum.h"
#include "util/bits.h"
#include "util/random.h"

namespace recomp {
namespace {

/// Runs `f()` once with SIMD allowed and once forced-scalar; returns the pair.
template <typename F>
auto BothPaths(F&& f) {
  ops::ForceScalar(false);
  auto simd = f();
  ops::ForceScalar(true);
  auto scalar = f();
  ops::ForceScalar(false);
  return std::make_pair(std::move(simd), std::move(scalar));
}

class UnpackAgreement : public ::testing::TestWithParam<int> {};

TEST_P(UnpackAgreement, Agrees) {
  const int width = GetParam();
  Rng rng(500 + width);
  for (uint64_t n : {1u, 7u, 8u, 9u, 64u, 100u, 4096u, 4100u}) {
    Column<uint32_t> col;
    const uint32_t mask = bits::LowMask32(width);
    for (uint64_t i = 0; i < n; ++i) {
      col.push_back(static_cast<uint32_t>(rng.Next()) & mask);
    }
    auto packed = ops::Pack(col, width);
    ASSERT_TRUE(packed.ok());
    auto [simd, scalar] = BothPaths([&] {
      auto out = ops::Unpack<uint32_t>(*packed);
      return out.ok() ? *std::move(out) : Column<uint32_t>{};
    });
    EXPECT_EQ(simd, scalar) << "width=" << width << " n=" << n;
    EXPECT_EQ(simd, col);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, UnpackAgreement, ::testing::Range(0, 33));

TEST(PrefixSumAgreement, RandomLengths) {
  Rng rng(42);
  for (uint64_t n : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 1000u, 100000u}) {
    Column<uint32_t> col;
    for (uint64_t i = 0; i < n; ++i) {
      col.push_back(static_cast<uint32_t>(rng.Next()));
    }
    auto [simd, scalar] =
        BothPaths([&] { return ops::PrefixSumInclusive(col); });
    EXPECT_EQ(simd, scalar) << "n=" << n;
  }
}

TEST(AddConstantAgreement, RandomLengths) {
  Rng rng(43);
  for (uint64_t n : {0u, 1u, 8u, 9u, 1000u}) {
    Column<uint32_t> col;
    for (uint64_t i = 0; i < n; ++i) {
      col.push_back(static_cast<uint32_t>(rng.Next()));
    }
    auto [simd, scalar] = BothPaths([&] {
      auto out =
          ops::ElementwiseScalar<uint32_t>(ops::BinOp::kAdd, col, 0xDEADBEEF);
      return out.ok() ? *std::move(out) : Column<uint32_t>{};
    });
    EXPECT_EQ(simd, scalar) << "n=" << n;
  }
}

TEST(GatherAgreement, RandomIndices) {
  Rng rng(44);
  Column<uint32_t> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<uint32_t>(rng.Next()));
  }
  for (uint64_t n : {0u, 1u, 8u, 9u, 5000u}) {
    Column<uint32_t> indices;
    for (uint64_t i = 0; i < n; ++i) {
      indices.push_back(static_cast<uint32_t>(rng.Below(values.size())));
    }
    auto [simd, scalar] =
        BothPaths([&] { return ops::GatherUnchecked(values, indices); });
    EXPECT_EQ(simd, scalar) << "n=" << n;
  }
}

TEST(DispatchTest, ForceScalarToggles) {
  ops::ForceScalar(true);
  EXPECT_TRUE(ops::ScalarForced());
  EXPECT_FALSE(ops::HasAvx2());
  ops::ForceScalar(false);
  EXPECT_FALSE(ops::ScalarForced());
}

}  // namespace
}  // namespace recomp
