// Property tests pinning the AVX2 kernels to the scalar reference: for every
// supported width and awkward length, both dispatch paths must agree bit for
// bit. When the host lacks AVX2 these tests degenerate to scalar-vs-scalar
// and still pass.

#include <gtest/gtest.h>

#include "ops/dispatch.h"
#include "ops/elementwise.h"
#include "ops/gather.h"
#include "ops/kernels_avx2.h"
#include "ops/pack.h"
#include "ops/prefix_sum.h"
#include "util/bits.h"
#include "util/random.h"
#include "util/zigzag.h"

namespace recomp {
namespace {

/// Runs `f()` once with SIMD allowed and once forced-scalar; returns the pair.
template <typename F>
auto BothPaths(F&& f) {
  ops::ForceScalar(false);
  auto simd = f();
  ops::ForceScalar(true);
  auto scalar = f();
  ops::ForceScalar(false);
  return std::make_pair(std::move(simd), std::move(scalar));
}

class UnpackAgreement : public ::testing::TestWithParam<int> {};

TEST_P(UnpackAgreement, Agrees) {
  const int width = GetParam();
  Rng rng(500 + width);
  for (uint64_t n : {1u, 7u, 8u, 9u, 64u, 100u, 4096u, 4100u}) {
    Column<uint32_t> col;
    const uint32_t mask = bits::LowMask32(width);
    for (uint64_t i = 0; i < n; ++i) {
      col.push_back(static_cast<uint32_t>(rng.Next()) & mask);
    }
    auto packed = ops::Pack(col, width);
    ASSERT_TRUE(packed.ok());
    auto [simd, scalar] = BothPaths([&] {
      auto out = ops::Unpack<uint32_t>(*packed);
      return out.ok() ? *std::move(out) : Column<uint32_t>{};
    });
    EXPECT_EQ(simd, scalar) << "width=" << width << " n=" << n;
    EXPECT_EQ(simd, col);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, UnpackAgreement, ::testing::Range(0, 33));

class UnpackAgreement64 : public ::testing::TestWithParam<int> {};

TEST_P(UnpackAgreement64, Agrees) {
  const int width = GetParam();
  Rng rng(700 + width);
  for (uint64_t n : {1u, 3u, 4u, 5u, 64u, 100u, 4096u, 4100u}) {
    Column<uint64_t> col;
    const uint64_t mask = bits::LowMask64(width);
    for (uint64_t i = 0; i < n; ++i) col.push_back(rng.Next() & mask);
    auto packed = ops::Pack(col, width);
    ASSERT_TRUE(packed.ok());
    auto [simd, scalar] = BothPaths([&] {
      auto out = ops::Unpack<uint64_t>(*packed);
      return out.ok() ? *std::move(out) : Column<uint64_t>{};
    });
    EXPECT_EQ(simd, scalar) << "width=" << width << " n=" << n;
    EXPECT_EQ(simd, col);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, UnpackAgreement64,
                         ::testing::Range(0, 65));

// The fused kernels are exercised directly against references computed in
// the test: when the build lacks AVX2 they compile to scalar forwarders and
// the comparisons still hold.

TEST(FusedKernelAgreement, UnpackAddMatchesUnpackPlusAdd) {
  Rng rng(45);
  for (int width : {0, 1, 5, 13, 27, 32}) {
    const uint32_t mask = bits::LowMask32(width);
    Column<uint32_t> col;
    for (int i = 0; i < 3000; ++i) {
      col.push_back(static_cast<uint32_t>(rng.Next()) & mask);
    }
    auto packed = ops::Pack(col, width);
    ASSERT_TRUE(packed.ok());
    const uint32_t addend = static_cast<uint32_t>(rng.Next());
    for (uint64_t begin : {0u, 3u, 17u, 2999u}) {
      const uint64_t n = col.size() - begin;
      Column<uint32_t> out(n);
      ops::avx2::UnpackAddU32(packed->bytes.data(), packed->bytes.size(),
                              begin, n, width, addend, out.data());
      for (uint64_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], static_cast<uint32_t>(col[begin + i] + addend))
            << "width=" << width << " begin=" << begin << " i=" << i;
      }
    }
  }
}

TEST(FusedKernelAgreement, UnpackAddMatchesUnpackPlusAdd64) {
  Rng rng(46);
  for (int width : {0, 1, 7, 33, 51, 64}) {
    const uint64_t mask = bits::LowMask64(width);
    Column<uint64_t> col;
    for (int i = 0; i < 1000; ++i) col.push_back(rng.Next() & mask);
    auto packed = ops::Pack(col, width);
    ASSERT_TRUE(packed.ok());
    const uint64_t addend = rng.Next();
    for (uint64_t begin : {0u, 3u, 17u, 999u}) {
      const uint64_t n = col.size() - begin;
      Column<uint64_t> out(n);
      ops::avx2::UnpackAddU64(packed->bytes.data(), packed->bytes.size(),
                              begin, n, width, addend, out.data());
      for (uint64_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], col[begin + i] + addend)
            << "width=" << width << " begin=" << begin << " i=" << i;
      }
    }
  }
}

TEST(FusedKernelAgreement, UnpackZigZagPrefixDecodesDeltaCascade) {
  Rng rng(47);
  for (int width : {1, 4, 11, 23, 32}) {
    // Original values whose zigzag deltas fit `width` bits.
    Column<uint32_t> original;
    Column<uint32_t> codes;
    uint32_t prev = 0;
    const uint32_t half = bits::LowMask32(width - 1);
    for (int i = 0; i < 3000; ++i) {
      const int64_t delta =
          static_cast<int64_t>(rng.Below(2 * uint64_t{half} + 1)) - half;
      const uint32_t v = prev + static_cast<uint32_t>(delta);
      codes.push_back(zigzag::EncodeDiff<uint32_t>(v, prev));
      original.push_back(v);
      prev = v;
    }
    auto packed = ops::Pack(codes, width);
    ASSERT_TRUE(packed.ok());
    Column<uint32_t> out(original.size());
    ops::avx2::UnpackZigZagPrefixU32(packed->bytes.data(),
                                     packed->bytes.size(), out.size(), width,
                                     out.data());
    EXPECT_EQ(out, original) << "width=" << width;

    // The in-place tail half must agree given materialized codes.
    Column<uint32_t> in_place = codes;
    ops::avx2::ZigZagPrefixInPlaceU32(in_place.data(), in_place.size());
    EXPECT_EQ(in_place, original) << "width=" << width;
  }
}

TEST(FusedKernelAgreement, UnpackZigZagPrefixDecodesDeltaCascade64) {
  Rng rng(48);
  for (int width : {1, 9, 33, 47, 64}) {
    Column<uint64_t> original;
    Column<uint64_t> codes;
    uint64_t prev = 0;
    const uint64_t mask = bits::LowMask64(width);
    for (int i = 0; i < 1000; ++i) {
      // Any code below 2^width zigzag-decodes to a valid (wrapping) delta.
      const uint64_t code = rng.Next() & mask;
      codes.push_back(code);
      const uint64_t delta =
          static_cast<uint64_t>(zigzag::Decode<uint64_t>(code));
      const uint64_t v = prev + delta;
      original.push_back(v);
      prev = v;
    }
    auto packed = ops::Pack(codes, width);
    ASSERT_TRUE(packed.ok());
    Column<uint64_t> out(original.size());
    ops::avx2::UnpackZigZagPrefixU64(packed->bytes.data(),
                                     packed->bytes.size(), out.size(), width,
                                     out.data());
    EXPECT_EQ(out, original) << "width=" << width;

    Column<uint64_t> in_place = codes;
    ops::avx2::ZigZagPrefixInPlaceU64(in_place.data(), in_place.size());
    EXPECT_EQ(in_place, original) << "width=" << width;
  }
}

TEST(FusedKernelAgreement, ScatterAppliesPatches) {
  Rng rng(49);
  Column<uint32_t> data32(500, 7);
  Column<uint64_t> data64(500, 9);
  Column<uint32_t> expect32 = data32;
  Column<uint64_t> expect64 = data64;
  Column<uint32_t> positions;
  Column<uint32_t> values32;
  Column<uint64_t> values64;
  for (int p = 0; p < 60; ++p) {
    const uint32_t pos = static_cast<uint32_t>(rng.Below(500));
    positions.push_back(pos);
    values32.push_back(static_cast<uint32_t>(rng.Next()));
    values64.push_back(rng.Next());
    expect32[pos] = values32.back();
    expect64[pos] = values64.back();
  }
  ops::avx2::ScatterU32(data32.data(), positions.data(), values32.data(),
                        positions.size());
  ops::avx2::ScatterU64(data64.data(), positions.data(), values64.data(),
                        positions.size());
  EXPECT_EQ(data32, expect32);
  EXPECT_EQ(data64, expect64);
}

TEST(PrefixSumAgreement, RandomLengths) {
  Rng rng(42);
  for (uint64_t n : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 1000u, 100000u}) {
    Column<uint32_t> col;
    for (uint64_t i = 0; i < n; ++i) {
      col.push_back(static_cast<uint32_t>(rng.Next()));
    }
    auto [simd, scalar] =
        BothPaths([&] { return ops::PrefixSumInclusive(col); });
    EXPECT_EQ(simd, scalar) << "n=" << n;
  }
}

TEST(PrefixSumAgreement, RandomLengths64) {
  Rng rng(52);
  for (uint64_t n : {0u, 1u, 3u, 4u, 5u, 15u, 16u, 17u, 1000u, 100000u}) {
    Column<uint64_t> col;
    for (uint64_t i = 0; i < n; ++i) col.push_back(rng.Next());
    auto [simd, scalar] =
        BothPaths([&] { return ops::PrefixSumInclusive(col); });
    EXPECT_EQ(simd, scalar) << "n=" << n;
  }
}

TEST(AddConstantAgreement, RandomLengths) {
  Rng rng(43);
  for (uint64_t n : {0u, 1u, 8u, 9u, 1000u}) {
    Column<uint32_t> col;
    for (uint64_t i = 0; i < n; ++i) {
      col.push_back(static_cast<uint32_t>(rng.Next()));
    }
    auto [simd, scalar] = BothPaths([&] {
      auto out =
          ops::ElementwiseScalar<uint32_t>(ops::BinOp::kAdd, col, 0xDEADBEEF);
      return out.ok() ? *std::move(out) : Column<uint32_t>{};
    });
    EXPECT_EQ(simd, scalar) << "n=" << n;
  }
}

TEST(GatherAgreement, RandomIndices) {
  Rng rng(44);
  Column<uint32_t> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<uint32_t>(rng.Next()));
  }
  for (uint64_t n : {0u, 1u, 8u, 9u, 5000u}) {
    Column<uint32_t> indices;
    for (uint64_t i = 0; i < n; ++i) {
      indices.push_back(static_cast<uint32_t>(rng.Below(values.size())));
    }
    auto [simd, scalar] =
        BothPaths([&] { return ops::GatherUnchecked(values, indices); });
    EXPECT_EQ(simd, scalar) << "n=" << n;
  }
}

TEST(DispatchTest, ForceScalarToggles) {
  ops::ForceScalar(true);
  EXPECT_TRUE(ops::ScalarForced());
  EXPECT_FALSE(ops::HasAvx2());
  ops::ForceScalar(false);
  EXPECT_FALSE(ops::ScalarForced());
}

}  // namespace
}  // namespace recomp
