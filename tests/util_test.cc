// Unit tests for the utility substrate: Status/Result, bit utilities,
// zigzag recoding, deterministic PRNG, and string helpers.

#include <gtest/gtest.h>

#include <set>

#include "util/bits.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/zigzag.h"

namespace recomp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad width");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("boom");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kCorruption);
  EXPECT_EQ(t.message(), "boom");
  EXPECT_EQ(s, t);
}

TEST(StatusTest, EachFactoryMapsToItsCode) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::KeyError("x").code(), StatusCode::kKeyError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterViaMacro(int v) {
  RECOMP_ASSIGN_OR_RETURN(int half, HalveEven(v));
  RECOMP_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterViaMacro(8), 2);
  EXPECT_EQ(QuarterViaMacro(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(QuarterViaMacro(5).status().code(), StatusCode::kInvalidArgument);
}

TEST(BitsTest, BitWidthBoundaries) {
  EXPECT_EQ(bits::BitWidth<uint32_t>(0), 0);
  EXPECT_EQ(bits::BitWidth<uint32_t>(1), 1);
  EXPECT_EQ(bits::BitWidth<uint32_t>(2), 2);
  EXPECT_EQ(bits::BitWidth<uint32_t>(255), 8);
  EXPECT_EQ(bits::BitWidth<uint32_t>(256), 9);
  EXPECT_EQ(bits::BitWidth<uint32_t>(~uint32_t{0}), 32);
  EXPECT_EQ(bits::BitWidth<uint64_t>(~uint64_t{0}), 64);
  EXPECT_EQ(bits::BitWidth<uint8_t>(uint8_t{128}), 8);
}

TEST(BitsTest, LowMasks) {
  EXPECT_EQ(bits::LowMask64(0), 0u);
  EXPECT_EQ(bits::LowMask64(1), 1u);
  EXPECT_EQ(bits::LowMask64(63), (uint64_t{1} << 63) - 1);
  EXPECT_EQ(bits::LowMask64(64), ~uint64_t{0});
  EXPECT_EQ(bits::LowMask32(32), ~uint32_t{0});
  EXPECT_EQ(bits::LowMask32(5), 31u);
}

TEST(BitsTest, CeilDivAndRoundUp) {
  EXPECT_EQ(bits::CeilDiv(0, 8), 0u);
  EXPECT_EQ(bits::CeilDiv(1, 8), 1u);
  EXPECT_EQ(bits::CeilDiv(8, 8), 1u);
  EXPECT_EQ(bits::CeilDiv(9, 8), 2u);
  EXPECT_EQ(bits::RoundUp(13, 8), 16u);
  EXPECT_EQ(bits::RoundUp(16, 8), 16u);
}

TEST(BitsTest, PackedByteSize) {
  EXPECT_EQ(bits::PackedByteSize(0, 7), 0u);
  EXPECT_EQ(bits::PackedByteSize(8, 1), 1u);
  EXPECT_EQ(bits::PackedByteSize(9, 1), 2u);
  EXPECT_EQ(bits::PackedByteSize(3, 7), 3u);   // 21 bits -> 3 bytes
  EXPECT_EQ(bits::PackedByteSize(4, 64), 32u);
}

TEST(ZigZagTest, KnownValues) {
  EXPECT_EQ(zigzag::Encode<int32_t>(0), 0u);
  EXPECT_EQ(zigzag::Encode<int32_t>(-1), 1u);
  EXPECT_EQ(zigzag::Encode<int32_t>(1), 2u);
  EXPECT_EQ(zigzag::Encode<int32_t>(-2), 3u);
  EXPECT_EQ(zigzag::Encode<int32_t>(2), 4u);
}

TEST(ZigZagTest, RoundTripExtremes) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(zigzag::Decode(zigzag::Encode(v)), v);
  }
  for (int32_t v : {std::numeric_limits<int32_t>::min(),
                    std::numeric_limits<int32_t>::max(), -12345, 12345}) {
    EXPECT_EQ(zigzag::Decode(zigzag::Encode(v)), v);
  }
}

TEST(ZigZagTest, SmallDiffsEncodeSmall) {
  // Wrapped diff of neighbors is small in zigzag space regardless of sign.
  EXPECT_LE(zigzag::EncodeDiff<uint64_t>(100, 97), 6u);
  EXPECT_LE(zigzag::EncodeDiff<uint64_t>(97, 100), 6u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += (a.Next() != b.Next());
  EXPECT_GT(differing, 0);
}

TEST(RngTest, BelowStaysBelow) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Range(3, 6));
  EXPECT_EQ(seen, (std::set<uint64_t>{3, 4, 5, 6}));
}

TEST(RngTest, GeometricAtLeastOneAndMeanSane) {
  Rng rng(99);
  double total = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t g = rng.Geometric(0.25);
    EXPECT_GE(g, 1u);
    total += static_cast<double>(g);
  }
  // Mean of Geometric(0.25) is 4; allow generous tolerance.
  EXPECT_NEAR(total / kSamples, 4.0, 0.25);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, RankZeroMostFrequent) {
  Rng rng(42);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
}

TEST(ZipfTest, SamplesInUniverse) {
  Rng rng(42);
  ZipfSampler zipf(16, 0.8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 16u);
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StringFormat("a=%d b=%s", 3, "xy"), "a=3 b=xy");
  EXPECT_EQ(StringFormat("%s", ""), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KiB");
  EXPECT_EQ(HumanBytes(3u << 20), "3.00 MiB");
}

}  // namespace
}  // namespace recomp
