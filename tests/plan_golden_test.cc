// Golden-listing tests: the rendered decompression plans for the catalog's
// RLE and FOR are pinned, token for token, to the paper's Algorithm 1 and
// Algorithm 2 (modulo the named Input lines and the Unpack that the paper's
// prose treats as part of NS). Any drift in the builder or the renderer
// fails loudly here.

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/pipeline.h"
#include "core/plan_builder.h"
#include "gen/generators.h"
#include "test_util.h"

namespace recomp {
namespace {

TEST(PlanGoldenTest, Algorithm1Listing) {
  Column<uint32_t> col = gen::SortedRuns(100000, 25.0, 3, 1);
  auto compressed = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(compressed.status());
  auto plan = BuildDecompressionPlan(*compressed);
  ASSERT_OK(plan.status());
  EXPECT_EQ(plan->ToString(),
            " 0: values <- Input(values)\n"
            " 1: deltas <- Input(positions/deltas)\n"
            " 2: run_positions <- PrefixSum(deltas)\n"
            " 3: run_positions' <- PopBack(run_positions)\n"
            " 4: ones <- Constant(1, |run_positions'|)\n"
            " 5: zeros <- Constant(0, n=100000)\n"
            " 6: pos_delta <- Scatter(ones, run_positions', zeros)\n"
            " 7: positions <- PrefixSum(pos_delta)\n"
            " 8: out <- Gather(values, positions)\n");
}

TEST(PlanGoldenTest, Algorithm2Listing) {
  Column<uint32_t> col = gen::StepLevels(65536, 128, 20, 6, 2);
  auto compressed = Compress(AnyColumn(col), MakeFor(128));
  ASSERT_OK(compressed.status());
  auto plan = BuildDecompressionPlan(*compressed);
  ASSERT_OK(plan.status());
  EXPECT_EQ(plan->ToString(),
            " 0: packed <- Input(residual/packed)\n"
            " 1: offsets <- Unpack(packed)\n"
            " 2: refs <- Input(refs)\n"
            " 3: ones <- Constant(1, n=65536)\n"
            " 4: id <- PrefixSumExcl(ones)\n"
            " 5: ells <- Constant(128, |id|)\n"
            " 6: ref_indices <- Elementwise('/', id, ells)\n"
            " 7: replicated <- Gather(refs, ref_indices)\n"
            " 8: out <- Elementwise('+', replicated, offsets)\n");
}

TEST(PlanGoldenTest, RpeListingIsAlgorithm1SansLine1) {
  Column<uint32_t> col = gen::SortedRuns(1000, 10.0, 2, 3);
  auto compressed = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(compressed.status());
  auto plan = BuildDecompressionPlan(*compressed);
  ASSERT_OK(plan.status());
  const std::string listing = plan->ToString();
  // No PrefixSum over deltas: the positions column arrives stored.
  EXPECT_EQ(listing.find("PrefixSum(deltas)"), std::string::npos);
  EXPECT_NE(listing.find("run_positions <- Input(positions)"),
            std::string::npos);
}

}  // namespace
}  // namespace recomp
