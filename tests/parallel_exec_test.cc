// Parallel chunked execution: for every thread count and grain size, the
// parallel path must produce results bit-identical to the sequential path —
// positions, aggregate values, and every stats counter — plus zone-map edge
// cases (all chunks pruned, contained-emit without decode, empty chunks,
// chunks without min/max) where sequential and parallel must agree.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/catalog.h"
#include "core/chunked.h"
#include "core/pipeline.h"
#include "exec/aggregate.h"
#include "exec/point_access.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace recomp {
namespace {

using exec::RangePredicate;

constexpr uint64_t kChunk = 1024;

/// A drifting column: runs, then noise, then a sorted stretch.
Column<uint32_t> MixedShapes(uint64_t part, uint64_t seed) {
  Column<uint32_t> out = gen::SortedRuns(part, 40.0, 2, seed);
  Column<uint32_t> noise = gen::Uniform(part, uint64_t{1} << 24, seed + 1);
  out.insert(out.end(), noise.begin(), noise.end());
  for (uint64_t i = 0; i < part; ++i) {
    out.push_back((uint32_t{1} << 25) + static_cast<uint32_t>(3 * i));
  }
  return out;
}

void ExpectSelectionsIdentical(const exec::ChunkedSelectionResult& a,
                               const exec::ChunkedSelectionResult& b) {
  EXPECT_EQ(a.positions, b.positions);
  EXPECT_EQ(a.stats.chunks_total, b.stats.chunks_total);
  EXPECT_EQ(a.stats.chunks_pruned, b.stats.chunks_pruned);
  EXPECT_EQ(a.stats.chunks_full, b.stats.chunks_full);
  EXPECT_EQ(a.stats.chunks_executed, b.stats.chunks_executed);
  EXPECT_EQ(a.stats.values_decoded, b.stats.values_decoded);
  for (int s = 0; s < exec::kNumStrategies; ++s) {
    EXPECT_EQ(a.stats.strategy_chunks[s], b.stats.strategy_chunks[s]) << s;
  }
  ASSERT_EQ(a.stats.per_chunk.size(), b.stats.per_chunk.size());
  for (size_t i = 0; i < a.stats.per_chunk.size(); ++i) {
    EXPECT_EQ(a.stats.per_chunk[i].chunk_index, b.stats.per_chunk[i].chunk_index);
    EXPECT_EQ(static_cast<int>(a.stats.per_chunk[i].stats.strategy),
              static_cast<int>(b.stats.per_chunk[i].stats.strategy));
    EXPECT_EQ(a.stats.per_chunk[i].stats.values_decoded,
              b.stats.per_chunk[i].stats.values_decoded);
  }
}

void ExpectAggregatesIdentical(const exec::ChunkedAggregateResult& a,
                               const exec::ChunkedAggregateResult& b) {
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.chunks_total, b.chunks_total);
  EXPECT_EQ(a.chunks_pruned, b.chunks_pruned);
  EXPECT_EQ(a.chunks_executed, b.chunks_executed);
  for (int s = 0; s < exec::kNumStrategies; ++s) {
    EXPECT_EQ(a.strategy_chunks[s], b.strategy_chunks[s]) << s;
  }
}

/// Runs every chunked operator sequentially and under `ctx`, asserting
/// bit-identical outcomes.
void ExpectParallelAgreesWithSequential(const ChunkedCompressedColumn& chunked,
                                        const ExecContext& ctx,
                                        const std::vector<RangePredicate>& preds) {
  for (const RangePredicate& pred : preds) {
    auto seq = exec::SelectCompressed(chunked, pred);
    auto par = exec::SelectCompressed(chunked, pred, ctx);
    ASSERT_OK(seq.status());
    ASSERT_OK(par.status());
    ExpectSelectionsIdentical(*seq, *par);
  }

  auto seq_sum = exec::SumCompressed(chunked);
  auto par_sum = exec::SumCompressed(chunked, ctx);
  ASSERT_OK(seq_sum.status());
  ASSERT_OK(par_sum.status());
  ExpectAggregatesIdentical(*seq_sum, *par_sum);

  if (chunked.size() > 0) {
    auto seq_min = exec::MinCompressed(chunked);
    auto par_min = exec::MinCompressed(chunked, ctx);
    ASSERT_OK(seq_min.status());
    ASSERT_OK(par_min.status());
    ExpectAggregatesIdentical(*seq_min, *par_min);

    auto seq_max = exec::MaxCompressed(chunked);
    auto par_max = exec::MaxCompressed(chunked, ctx);
    ASSERT_OK(seq_max.status());
    ASSERT_OK(par_max.status());
    ExpectAggregatesIdentical(*seq_max, *par_max);
  }

  auto seq_back = DecompressChunked(chunked);
  auto par_back = DecompressChunked(chunked, ctx);
  ASSERT_OK(seq_back.status());
  ASSERT_OK(par_back.status());
  EXPECT_TRUE(*seq_back == *par_back);
}

TEST(ParallelExecTest, EveryThreadCountMatchesSequential) {
  const Column<uint32_t> col = MixedShapes(2 * kChunk + 123, 71);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  const std::vector<RangePredicate> preds = {
      {0, ~uint64_t{0}},                      // Everything (full chunks).
      {1u << 25, (1u << 25) + 500},           // The sorted tail.
      {5, 1u << 23},                          // Partial overlap everywhere.
      {~uint64_t{0} - 1, ~uint64_t{0}},       // Nothing.
  };
  for (const uint64_t threads : {1ull, 2ull, 4ull, 8ull}) {
    ThreadPool pool(threads);
    for (const uint64_t grain : {1ull, 4ull}) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads
                                      << " grain=" << grain);
      ExpectParallelAgreesWithSequential(*chunked, ExecContext{&pool, grain},
                                         preds);
    }
  }
}

TEST(ParallelExecTest, ParallelCompressionMatchesSequential) {
  const Column<uint32_t> col = MixedShapes(kChunk + 321, 73);
  const AnyColumn input(col);
  ThreadPool pool(4);
  const ExecContext ctx{&pool, 1};

  // Shared descriptor.
  auto seq = CompressChunked(input, MakeRle(), {kChunk});
  auto par = CompressChunked(input, MakeRle(), {kChunk}, ctx);
  ASSERT_OK(seq.status());
  ASSERT_OK(par.status());
  ASSERT_EQ(seq->num_chunks(), par->num_chunks());
  for (uint64_t i = 0; i < seq->num_chunks(); ++i) {
    EXPECT_EQ(seq->chunk(i).zone.row_begin, par->chunk(i).zone.row_begin);
    EXPECT_EQ(seq->chunk(i).zone.min, par->chunk(i).zone.min);
    EXPECT_EQ(seq->chunk(i).zone.max, par->chunk(i).zone.max);
    EXPECT_EQ(seq->chunk(i).column.Descriptor(),
              par->chunk(i).column.Descriptor());
    EXPECT_EQ(seq->chunk(i).column.PayloadBytes(),
              par->chunk(i).column.PayloadBytes());
  }

  // Per-chunk analyzer choice: the embarrassingly parallel search must pick
  // the same descriptors chunk for chunk.
  auto seq_auto = CompressChunkedAuto(input, {kChunk});
  auto par_auto = CompressChunkedAuto(input, {kChunk}, {}, ctx);
  ASSERT_OK(seq_auto.status());
  ASSERT_OK(par_auto.status());
  ASSERT_EQ(seq_auto->num_chunks(), par_auto->num_chunks());
  for (uint64_t i = 0; i < seq_auto->num_chunks(); ++i) {
    EXPECT_EQ(seq_auto->chunk(i).column.Descriptor(),
              par_auto->chunk(i).column.Descriptor());
  }

  // The standalone per-chunk chooser agrees with itself under a pool.
  auto seq_choices = ChooseSchemesChunked(input, kChunk);
  auto par_choices = ChooseSchemesChunked(input, kChunk, {}, ctx);
  ASSERT_OK(seq_choices.status());
  ASSERT_OK(par_choices.status());
  ASSERT_EQ(seq_choices->size(), par_choices->size());
  for (size_t i = 0; i < seq_choices->size(); ++i) {
    EXPECT_EQ((*seq_choices)[i].row_begin, (*par_choices)[i].row_begin);
    EXPECT_EQ((*seq_choices)[i].row_count, (*par_choices)[i].row_count);
    EXPECT_TRUE((*seq_choices)[i].descriptor == (*par_choices)[i].descriptor);
  }

  // Roundtrip through the parallel compressor and decompressor.
  auto back = DecompressChunked(*par_auto, ctx);
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == input);
}

TEST(ParallelExecTest, GetAtAcceptsContextAndBatchMatchesPointwise) {
  const Column<uint32_t> col = MixedShapes(kChunk, 79);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  ThreadPool pool(4);
  const ExecContext ctx{&pool, 8};

  Rng rng(83);
  std::vector<uint64_t> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(rng.Below(col.size()));
  auto batch = exec::GetAtBatch(*chunked, rows, ctx);
  ASSERT_OK(batch.status());
  ASSERT_EQ(batch->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    auto point = exec::GetAt(*chunked, rows[i], ctx);
    ASSERT_OK(point.status());
    EXPECT_EQ(point->value, col[rows[i]]);
    EXPECT_EQ((*batch)[i].value, point->value);
    EXPECT_EQ(static_cast<int>((*batch)[i].strategy),
              static_cast<int>(point->strategy));
  }

  // Out-of-range rows fail, sequentially and in a batch.
  EXPECT_FALSE(exec::GetAt(*chunked, col.size(), ctx).ok());
  EXPECT_FALSE(exec::GetAtBatch(*chunked, {0, col.size()}, ctx).ok());
}

// ---------------------------------------------------------------------------
// Zone-map edge cases: sequential and parallel must agree.
// ---------------------------------------------------------------------------

TEST(ParallelExecTest, AllChunksPrunedSelection) {
  // Values live in [1000, ~2^14); a predicate far above prunes every chunk.
  const Column<uint32_t> col = gen::SortedRuns(8 * kChunk, 20.0, 3, 89);
  auto chunked = CompressChunked(AnyColumn(col), MakeRle(), {kChunk});
  ASSERT_OK(chunked.status());
  ThreadPool pool(4);
  const RangePredicate nothing{uint64_t{1} << 40, uint64_t{1} << 41};
  for (const ExecContext& ctx : {ExecContext{}, ExecContext{&pool, 1}}) {
    auto result = exec::SelectCompressed(*chunked, nothing, ctx);
    ASSERT_OK(result.status());
    EXPECT_TRUE(result->positions.empty());
    EXPECT_EQ(result->stats.chunks_pruned, chunked->num_chunks());
    EXPECT_EQ(result->stats.chunks_executed, 0u);
    EXPECT_EQ(result->stats.values_decoded, 0u);
  }
}

TEST(ParallelExecTest, ContainedChunksEmitWithoutDecoding) {
  const Column<uint32_t> col = gen::SortedRuns(4 * kChunk, 20.0, 3, 97);
  auto chunked = CompressChunked(AnyColumn(col), MakeRle(), {kChunk});
  ASSERT_OK(chunked.status());
  ThreadPool pool(4);
  for (const ExecContext& ctx : {ExecContext{}, ExecContext{&pool, 1}}) {
    auto result = exec::SelectCompressed(*chunked, RangePredicate{}, ctx);
    ASSERT_OK(result.status());
    EXPECT_EQ(result->positions.size(), col.size());
    EXPECT_EQ(result->stats.chunks_full, chunked->num_chunks());
    EXPECT_EQ(result->stats.values_decoded, 0u);
    // Positions are the identity, in order.
    for (uint32_t i = 0; i < result->positions.size(); ++i) {
      ASSERT_EQ(result->positions[i], i);
    }
  }
}

/// A chunked column with hand-built irregularities: a normal chunk, an empty
/// chunk, a chunk without min/max, then another normal chunk.
ChunkedCompressedColumn IrregularChunks(const Column<uint32_t>& a,
                                        const Column<uint32_t>& b,
                                        const Column<uint32_t>& c) {
  ChunkedCompressedColumn out;
  uint64_t row = 0;
  auto append = [&](const Column<uint32_t>& values, bool with_minmax) {
    CompressedChunk chunk;
    chunk.zone.row_begin = row;
    chunk.zone.row_count = values.size();
    if (with_minmax && !values.empty()) {
      chunk.zone.has_minmax = true;
      chunk.zone.min = *std::min_element(values.begin(), values.end());
      chunk.zone.max = *std::max_element(values.begin(), values.end());
    }
    auto compressed = Compress(AnyColumn(values), Ns());
    EXPECT_OK(compressed.status());
    chunk.column = std::move(*compressed);
    EXPECT_OK(out.AppendChunk(std::move(chunk)));
    row += values.size();
  };
  append(a, true);
  append({}, true);       // Empty chunk: skipped by every operator.
  append(b, false);       // No min/max: never pruned, always executed.
  append(c, true);
  return out;
}

TEST(ParallelExecTest, EmptyAndMinMaxlessChunksAgree) {
  Column<uint32_t> a, b, c;
  for (uint32_t i = 0; i < 500; ++i) a.push_back(100 + i % 50);
  for (uint32_t i = 0; i < 300; ++i) b.push_back(10000 + (i * 37) % 2000);
  for (uint32_t i = 0; i < 400; ++i) c.push_back(50000 + i);
  Column<uint32_t> all = a;
  all.insert(all.end(), b.begin(), b.end());
  all.insert(all.end(), c.begin(), c.end());

  const ChunkedCompressedColumn chunked = IrregularChunks(a, b, c);
  ASSERT_EQ(chunked.num_chunks(), 4u);
  ASSERT_EQ(chunked.size(), all.size());

  ThreadPool pool(3);
  const std::vector<RangePredicate> preds = {
      {0, ~uint64_t{0}},    // Everything.
      {100, 149},           // Only chunk a (b still executes: no zone map).
      {50000, 50100},       // Only chunk c.
      {1, 2},               // Nothing, but b still executes.
  };
  for (const uint64_t grain : {1ull, 2ull}) {
    ExpectParallelAgreesWithSequential(chunked, ExecContext{&pool, grain},
                                       preds);
  }

  // The minmax-less chunk is executed even when its values cannot match.
  auto nothing = exec::SelectCompressed(chunked, RangePredicate{1, 2});
  ASSERT_OK(nothing.status());
  EXPECT_TRUE(nothing->positions.empty());
  EXPECT_EQ(nothing->stats.chunks_executed, 1u);
  EXPECT_EQ(nothing->stats.chunks_pruned, 2u);

  // Min/max must fall back to payloads for the minmax-less chunk only.
  auto min = exec::MinCompressed(chunked);
  auto max = exec::MaxCompressed(chunked);
  ASSERT_OK(min.status());
  ASSERT_OK(max.status());
  EXPECT_EQ(min->value, *std::min_element(all.begin(), all.end()));
  EXPECT_EQ(max->value, *std::max_element(all.begin(), all.end()));
  EXPECT_EQ(min->chunks_executed, 1u);

  // Selection equals the plain reference over the concatenation.
  for (const RangePredicate& pred : preds) {
    auto result = exec::SelectCompressed(chunked, pred);
    ASSERT_OK(result.status());
    Column<uint32_t> expected;
    for (uint64_t i = 0; i < all.size(); ++i) {
      if (all[i] >= pred.lo && all[i] <= pred.hi) {
        expected.push_back(static_cast<uint32_t>(i));
      }
    }
    EXPECT_EQ(result->positions, expected);
  }
}

TEST(ParallelExecTest, MinChunksPerTaskZeroBehavesLikeOne) {
  const Column<uint32_t> col = MixedShapes(kChunk, 101);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk / 4});
  ASSERT_OK(chunked.status());
  ThreadPool pool(2);
  ExpectParallelAgreesWithSequential(*chunked, ExecContext{&pool, 0},
                                     {RangePredicate{}});
}

}  // namespace
}  // namespace recomp
